#!/usr/bin/env python3
"""Docs/tree cross-reference linter.

Usage: scripts/lint_docs.py [repo-root]   (default: parent of scripts/)

Walks README.md, DESIGN.md, EXPERIMENTS.md, ROADMAP.md, and docs/*.md and
verifies that everything they point at actually exists in the tree:

  * binary paths (`./build/bench/<name>`, `./build/tools/<name>`, ...) have
    a matching source file under bench/, tools/, or examples/;
  * `--flag` references name a flag some binary parses (`Flags::get_*`),
    modulo a small allowlist of external tools' flags (cmake/ctest);
  * `ELMO_<X>` environment variables map to a parsed flag key (util::Flags
    reads `ELMO_<KEY>` for `--<key>`) or appear literally in the sources
    (macros like ELMO_METRIC / ELMO_NO_METRICS, getenv'd vars);
  * `DESIGN.md §N` anchors — in the docs AND in source comments — name a
    numbered `## N.` section that exists in DESIGN.md.

Exit status 0 when every reference resolves, 1 otherwise (each stale
reference is reported with file:line).
"""

import pathlib
import re
import sys

DOC_FILES = ["README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md"]
DOC_GLOBS = ["docs/*.md"]
SOURCE_GLOBS = [
    "src/**/*.cc", "src/**/*.h", "bench/**/*.cc", "tools/**/*.cc",
    "examples/**/*.cpp", "tests/**/*.cc",
]

BINARY_RE = re.compile(r"(?:\./)?build/(bench|tools|examples)/([a-z0-9_]+)")
# Lookbehind keeps markdown heading anchors (`#...-pool--deterministic-merge`)
# from reading as flags: a real `--flag` is never glued to a word character.
FLAG_RE = re.compile(r"(?<![\w-])--([a-z][a-z0-9_-]*)")
ENV_RE = re.compile(r"ELMO_([A-Z0-9_]+)")
SECTION_REF_RE = re.compile(r"DESIGN\.md[^§\n]{0,10}§\s*(\d+)")
SECTION_DEF_RE = re.compile(r"^## (\d+)\.", re.MULTILINE)
GET_FLAG_RE = re.compile(r'get_(?:int|string|bool|double)\(\s*"([A-Za-z0-9_]+)"')

# Flags that belong to external tools the docs legitimately invoke, plus
# repo scripts' own argparse-style flags (not routed through util::Flags).
EXTERNAL_FLAGS = {"build", "test-dir", "output-on-failure", "incidents"}


def iter_doc_files(root: pathlib.Path):
    for name in DOC_FILES:
        path = root / name
        if path.is_file():
            yield path
    for pattern in DOC_GLOBS:
        yield from sorted(root.glob(pattern))


def collect_tree_facts(root: pathlib.Path):
    """Scans the sources once for flag keys and literal ELMO_ identifiers."""
    flag_keys = set()
    elmo_idents = set()
    for pattern in SOURCE_GLOBS:
        for path in root.glob(pattern):
            text = path.read_text(errors="replace")
            for key in GET_FLAG_RE.findall(text):
                flag_keys.add(key.upper())
            for ident in ENV_RE.findall(text):
                elmo_idents.add(ident)
    return flag_keys, elmo_idents


def design_sections(root: pathlib.Path):
    design = root / "DESIGN.md"
    if not design.is_file():
        return set()
    return set(SECTION_DEF_RE.findall(design.read_text(errors="replace")))


def lint_file(path, rel, flag_keys, elmo_idents, sections, root, errors,
              docs_mode):
    for lineno, line in enumerate(path.read_text(errors="replace")
                                  .splitlines(), 1):
        def err(msg):
            errors.append(f"{rel}:{lineno}: {msg}")

        for section in SECTION_REF_RE.findall(line):
            if section not in sections:
                err(f"DESIGN.md §{section} does not exist "
                    f"(sections: {', '.join(sorted(sections, key=int))})")

        if not docs_mode:
            continue  # sources are only checked for DESIGN.md anchors

        for kind, name in BINARY_RE.findall(line):
            ext = ".cpp" if kind == "examples" else ".cc"
            if not (root / kind / (name + ext)).is_file():
                err(f"binary build/{kind}/{name} has no source "
                    f"{kind}/{name}{ext}")

        for flag in FLAG_RE.findall(line):
            key = flag.replace("-", "_").upper()
            if key not in flag_keys and flag not in EXTERNAL_FLAGS:
                err(f"--{flag} is not parsed by any binary "
                    f"(no Flags::get_*(\"{key}\") in the tree)")

        for ident in ENV_RE.findall(line):
            if ident not in flag_keys and ident not in elmo_idents:
                err(f"ELMO_{ident} matches no flag key and no source "
                    "identifier")


def main() -> int:
    root = pathlib.Path(sys.argv[1] if len(sys.argv) > 1
                        else pathlib.Path(__file__).resolve().parent.parent)
    flag_keys, elmo_idents = collect_tree_facts(root)
    sections = design_sections(root)

    errors = []
    checked = 0
    for path in iter_doc_files(root):
        lint_file(path, path.relative_to(root), flag_keys, elmo_idents,
                  sections, root, errors, docs_mode=True)
        checked += 1
    for pattern in SOURCE_GLOBS:
        for path in sorted(root.glob(pattern)):
            lint_file(path, path.relative_to(root), flag_keys, elmo_idents,
                      sections, root, errors, docs_mode=False)
            checked += 1

    for error in errors:
        print(error)
    if errors:
        print(f"lint_docs: {len(errors)} stale reference(s) "
              f"across {checked} file(s)")
        return 1
    print(f"lint_docs: {checked} file(s) clean "
          f"({len(flag_keys)} flag keys, {len(sections)} DESIGN.md sections)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
