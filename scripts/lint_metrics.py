#!/usr/bin/env python3
"""Strict linter for the Prometheus text exposition our tools emit.

Usage: scripts/lint_metrics.py <file> [<file> ...]   ("-" reads stdin)

Validates the contract CI smoke jobs rely on (docs/BENCH_SCHEMA.md,
DESIGN.md §9):

  * every sample line parses as `name[{labels}] value`;
  * metric names match [a-zA-Z_:][a-zA-Z0-9_:]*;
  * every sample is preceded by a `# TYPE` line for its family;
  * TYPE is one of counter / gauge / histogram;
  * no family is declared or sampled twice (series within one family are
    fine, duplicate identical series are not);
  * counters and gauges are finite numbers; counters are non-negative;
  * histogram families expose _bucket series with strictly increasing `le`
    bounds ending in +Inf, cumulative (non-decreasing) bucket counts, and
    a _sum/_count pair with _count equal to the +Inf bucket;
  * the exposition includes elmo_uptime_seconds.

Exit status 0 when every file is clean, 1 otherwise.
"""

import math
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$"
)
VALID_TYPES = {"counter", "gauge", "histogram"}


def base_family(name: str, types: dict) -> str:
    """Maps histogram series names back to their declared family."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            if types.get(base) == "histogram":
                return base
    return name


def parse_value(raw: str):
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    try:
        return float(raw)
    except ValueError:
        return None


def lint(path: str, text: str) -> list:
    errors = []

    def err(lineno, msg):
        errors.append(f"{path}:{lineno}: {msg}")

    types = {}          # family -> type
    samples = {}        # family -> list of (lineno, name, labels, value)
    seen_series = set() # (name, labels) duplicates
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                err(lineno, f"malformed comment line: {line!r}")
                continue
            if parts[1] == "TYPE":
                if len(parts) != 4:
                    err(lineno, f"malformed TYPE line: {line!r}")
                    continue
                _, _, name, mtype = parts
                if not NAME_RE.match(name):
                    err(lineno, f"invalid metric name {name!r}")
                if mtype not in VALID_TYPES:
                    err(lineno, f"invalid type {mtype!r} for {name}")
                if name in types:
                    err(lineno, f"duplicate TYPE declaration for {name}")
                if name in samples:
                    err(lineno, f"TYPE for {name} appears after its samples")
                types[name] = mtype
            continue

        m = SAMPLE_RE.match(line)
        if not m:
            err(lineno, f"unparseable sample line: {line!r}")
            continue
        name, labels, raw = m.group("name"), m.group("labels"), m.group("value")
        value = parse_value(raw)
        if value is None:
            err(lineno, f"non-numeric value {raw!r} for {name}")
            continue
        family = base_family(name, types)
        if family not in types:
            err(lineno, f"sample {name} has no preceding # TYPE {family}")
            continue
        key = (name, labels or "")
        if key in seen_series:
            err(lineno, f"duplicate series {name}{{{labels or ''}}}")
        seen_series.add(key)
        samples.setdefault(family, []).append((lineno, name, labels, value))

    for family, mtype in types.items():
        rows = samples.get(family, [])
        if not rows:
            errors.append(f"{path}: family {family} declared but never sampled")
            continue
        if mtype in ("counter", "gauge"):
            for lineno, name, labels, value in rows:
                if labels is not None:
                    err(lineno, f"{mtype} {name} must not carry labels")
                if not math.isfinite(value):
                    err(lineno, f"{mtype} {name} value is not finite")
                elif mtype == "counter" and value < 0:
                    err(lineno, f"counter {name} is negative ({value})")
            continue

        # Histogram: ordered buckets, +Inf terminal, _sum/_count coherence.
        buckets, hsum, hcount = [], None, None
        for lineno, name, labels, value in rows:
            if name == family + "_bucket":
                lm = re.match(r'^le="([^"]+)"$', labels or "")
                if not lm:
                    err(lineno, f"bucket of {family} lacks an le label")
                    continue
                bound = parse_value(lm.group(1))
                if bound is None:
                    err(lineno, f"bucket of {family} has bad bound {labels!r}")
                    continue
                buckets.append((lineno, bound, value))
            elif name == family + "_sum":
                hsum = (lineno, value)
            elif name == family + "_count":
                hcount = (lineno, value)
            else:
                err(lineno, f"unexpected series {name} in histogram {family}")
        if not buckets:
            errors.append(f"{path}: histogram {family} has no buckets")
            continue
        for (l1, b1, c1), (l2, b2, c2) in zip(buckets, buckets[1:]):
            if not b1 < b2:
                err(l2, f"histogram {family} bounds not increasing "
                        f"({b1} then {b2})")
            if c2 < c1:
                err(l2, f"histogram {family} bucket counts not cumulative "
                        f"({c1} then {c2})")
        if buckets[-1][1] != math.inf:
            err(buckets[-1][0], f"histogram {family} last bucket is not +Inf")
        if hsum is None:
            errors.append(f"{path}: histogram {family} missing _sum")
        if hcount is None:
            errors.append(f"{path}: histogram {family} missing _count")
        elif hcount[1] != buckets[-1][2]:
            err(hcount[0], f"histogram {family} _count ({hcount[1]}) != +Inf "
                           f"bucket ({buckets[-1][2]})")

    if "elmo_uptime_seconds" not in types:
        errors.append(f"{path}: missing elmo_uptime_seconds")
    return errors


def main(argv):
    paths = argv[1:] or ["-"]
    failed = False
    for path in paths:
        text = sys.stdin.read() if path == "-" else open(path).read()
        errors = lint("<stdin>" if path == "-" else path, text)
        for e in errors:
            print(e, file=sys.stderr)
        if errors:
            failed = True
        else:
            families = len([l for l in text.splitlines()
                            if l.startswith("# TYPE ")])
            print(f"{path}: OK ({families} metric families)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
