#!/usr/bin/env python3
"""Strict linter for the Prometheus text exposition our tools emit.

Usage: scripts/lint_metrics.py <file> [<file> ...]   ("-" reads stdin)
       scripts/lint_metrics.py --incidents <file> [<file> ...]

With --incidents, files are instead validated against the incident-report
JSON schema obs::HealthMonitor::render_json() emits (DESIGN.md §14, what
`tools/healthmon --json=<path>` writes):

  * top level: window (int >= 0), open (int >= 0), incidents (array);
  * per incident: non-empty class string; severity in info / warning /
    critical; element and summary strings; first_window / last_window /
    windows_active / flaps ints >= 0 with last_window >= first_window and
    windows_active >= 1; open bool; evidence array; optional explanation
    string; optional trace_ids as a non-empty array of ints >= 1 (the
    contributing causal-trace IDs, DESIGN.md §15);
  * per evidence entry: series string, observed and threshold numbers,
    note string;
  * the top-level open count matches the incidents marked open.

Validates the contract CI smoke jobs rely on (docs/BENCH_SCHEMA.md,
DESIGN.md §9):

  * every sample line parses as `name[{labels}] value`;
  * metric names match [a-zA-Z_:][a-zA-Z0-9_:]*;
  * every sample is preceded by a `# TYPE` line for its family;
  * TYPE is one of counter / gauge / histogram;
  * no family is declared or sampled twice (series within one family are
    fine, duplicate identical series are not);
  * counters and gauges are finite numbers; counters are non-negative;
  * histogram families expose _bucket series with strictly increasing `le`
    bounds ending in +Inf, cumulative (non-decreasing) bucket counts, and
    a _sum/_count pair with _count equal to the +Inf bucket;
  * the exposition includes elmo_uptime_seconds.

Exit status 0 when every file is clean, 1 otherwise.
"""

import json
import math
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$"
)
VALID_TYPES = {"counter", "gauge", "histogram"}


def base_family(name: str, types: dict) -> str:
    """Maps histogram series names back to their declared family."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            if types.get(base) == "histogram":
                return base
    return name


def parse_value(raw: str):
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    try:
        return float(raw)
    except ValueError:
        return None


def lint(path: str, text: str) -> list:
    errors = []

    def err(lineno, msg):
        errors.append(f"{path}:{lineno}: {msg}")

    types = {}          # family -> type
    samples = {}        # family -> list of (lineno, name, labels, value)
    seen_series = set() # (name, labels) duplicates
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                err(lineno, f"malformed comment line: {line!r}")
                continue
            if parts[1] == "TYPE":
                if len(parts) != 4:
                    err(lineno, f"malformed TYPE line: {line!r}")
                    continue
                _, _, name, mtype = parts
                if not NAME_RE.match(name):
                    err(lineno, f"invalid metric name {name!r}")
                if mtype not in VALID_TYPES:
                    err(lineno, f"invalid type {mtype!r} for {name}")
                if name in types:
                    err(lineno, f"duplicate TYPE declaration for {name}")
                if name in samples:
                    err(lineno, f"TYPE for {name} appears after its samples")
                types[name] = mtype
            continue

        m = SAMPLE_RE.match(line)
        if not m:
            err(lineno, f"unparseable sample line: {line!r}")
            continue
        name, labels, raw = m.group("name"), m.group("labels"), m.group("value")
        value = parse_value(raw)
        if value is None:
            err(lineno, f"non-numeric value {raw!r} for {name}")
            continue
        family = base_family(name, types)
        if family not in types:
            err(lineno, f"sample {name} has no preceding # TYPE {family}")
            continue
        key = (name, labels or "")
        if key in seen_series:
            err(lineno, f"duplicate series {name}{{{labels or ''}}}")
        seen_series.add(key)
        samples.setdefault(family, []).append((lineno, name, labels, value))

    for family, mtype in types.items():
        rows = samples.get(family, [])
        if not rows:
            errors.append(f"{path}: family {family} declared but never sampled")
            continue
        if mtype in ("counter", "gauge"):
            for lineno, name, labels, value in rows:
                if labels is not None:
                    err(lineno, f"{mtype} {name} must not carry labels")
                if not math.isfinite(value):
                    err(lineno, f"{mtype} {name} value is not finite")
                elif mtype == "counter" and value < 0:
                    err(lineno, f"counter {name} is negative ({value})")
            continue

        # Histogram: ordered buckets, +Inf terminal, _sum/_count coherence.
        buckets, hsum, hcount = [], None, None
        for lineno, name, labels, value in rows:
            if name == family + "_bucket":
                lm = re.match(r'^le="([^"]+)"$', labels or "")
                if not lm:
                    err(lineno, f"bucket of {family} lacks an le label")
                    continue
                bound = parse_value(lm.group(1))
                if bound is None:
                    err(lineno, f"bucket of {family} has bad bound {labels!r}")
                    continue
                buckets.append((lineno, bound, value))
            elif name == family + "_sum":
                hsum = (lineno, value)
            elif name == family + "_count":
                hcount = (lineno, value)
            else:
                err(lineno, f"unexpected series {name} in histogram {family}")
        if not buckets:
            errors.append(f"{path}: histogram {family} has no buckets")
            continue
        for (l1, b1, c1), (l2, b2, c2) in zip(buckets, buckets[1:]):
            if not b1 < b2:
                err(l2, f"histogram {family} bounds not increasing "
                        f"({b1} then {b2})")
            if c2 < c1:
                err(l2, f"histogram {family} bucket counts not cumulative "
                        f"({c1} then {c2})")
        if buckets[-1][1] != math.inf:
            err(buckets[-1][0], f"histogram {family} last bucket is not +Inf")
        if hsum is None:
            errors.append(f"{path}: histogram {family} missing _sum")
        if hcount is None:
            errors.append(f"{path}: histogram {family} missing _count")
        elif hcount[1] != buckets[-1][2]:
            err(hcount[0], f"histogram {family} _count ({hcount[1]}) != +Inf "
                           f"bucket ({buckets[-1][2]})")

    if "elmo_uptime_seconds" not in types:
        errors.append(f"{path}: missing elmo_uptime_seconds")
    return errors


SEVERITIES = {"info", "warning", "critical"}


def _is_count(v):
    return isinstance(v, int) and not isinstance(v, bool) and v >= 0


def _is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def lint_incidents(path: str, text: str) -> list:
    """Validates a HealthMonitor::render_json() incident report."""
    errors = []

    def err(msg):
        errors.append(f"{path}: {msg}")

    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        return [f"{path}: not valid JSON: {exc}"]
    if not isinstance(doc, dict):
        return [f"{path}: top level must be an object"]

    if not _is_count(doc.get("window")):
        err("window must be an int >= 0")
    if not _is_count(doc.get("open")):
        err("open must be an int >= 0")
    incidents = doc.get("incidents")
    if not isinstance(incidents, list):
        err("incidents must be an array")
        return errors

    open_seen = 0
    for i, inc in enumerate(incidents):
        where = f"incidents[{i}]"
        if not isinstance(inc, dict):
            err(f"{where} must be an object")
            continue
        if not (isinstance(inc.get("class"), str) and inc["class"]):
            err(f"{where}.class must be a non-empty string")
        if inc.get("severity") not in SEVERITIES:
            err(f"{where}.severity must be one of {sorted(SEVERITIES)}")
        for key in ("element", "summary"):
            if not isinstance(inc.get(key), str):
                err(f"{where}.{key} must be a string")
        for key in ("first_window", "last_window", "windows_active", "flaps"):
            if not _is_count(inc.get(key)):
                err(f"{where}.{key} must be an int >= 0")
        if (_is_count(inc.get("first_window"))
                and _is_count(inc.get("last_window"))
                and inc["last_window"] < inc["first_window"]):
            err(f"{where}: last_window < first_window")
        if _is_count(inc.get("windows_active")) and inc["windows_active"] < 1:
            err(f"{where}.windows_active must be >= 1")
        if not isinstance(inc.get("open"), bool):
            err(f"{where}.open must be a bool")
        elif inc["open"]:
            open_seen += 1
        if "explanation" in inc and not isinstance(inc["explanation"], str):
            err(f"{where}.explanation must be a string")
        if "trace_ids" in inc:
            # Optional causal-trace join (DESIGN.md §15): the install/window
            # trace IDs that contributed to the incident, attached by the
            # driver when an obs::Tracer was live.
            tids = inc["trace_ids"]
            if (not isinstance(tids, list) or not tids
                    or not all(_is_count(t) and t >= 1 for t in tids)):
                err(f"{where}.trace_ids must be a non-empty array of "
                    "ints >= 1")
        evidence = inc.get("evidence")
        if not isinstance(evidence, list):
            err(f"{where}.evidence must be an array")
            continue
        for e, ev in enumerate(evidence):
            ewhere = f"{where}.evidence[{e}]"
            if not isinstance(ev, dict):
                err(f"{ewhere} must be an object")
                continue
            if not isinstance(ev.get("series"), str):
                err(f"{ewhere}.series must be a string")
            for key in ("observed", "threshold"):
                if not _is_number(ev.get(key)):
                    err(f"{ewhere}.{key} must be a number")
            if not isinstance(ev.get("note"), str):
                err(f"{ewhere}.note must be a string")

    if _is_count(doc.get("open")) and doc["open"] != open_seen:
        err(f"open count {doc['open']} != {open_seen} incident(s) "
            "marked open")
    return errors


def main(argv):
    args = argv[1:]
    incidents_mode = bool(args) and args[0] == "--incidents"
    if incidents_mode:
        args = args[1:]
    paths = args or ["-"]
    failed = False
    for path in paths:
        text = sys.stdin.read() if path == "-" else open(path).read()
        label = "<stdin>" if path == "-" else path
        if incidents_mode:
            errors = lint_incidents(label, text)
        else:
            errors = lint(label, text)
        for e in errors:
            print(e, file=sys.stderr)
        if errors:
            failed = True
        elif incidents_mode:
            count = len(json.loads(text)["incidents"])
            print(f"{path}: OK ({count} incident(s))")
        else:
            families = len([l for l in text.splitlines()
                            if l.startswith("# TYPE ")])
            print(f"{path}: OK ({families} metric families)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
