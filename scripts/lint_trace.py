#!/usr/bin/env python3
"""Strict linter for the chrome://tracing JSON the FlightRecorder emits.

Usage: scripts/lint_trace.py <file> [<file> ...]   ("-" reads stdin)

Validates the contract CI smoke jobs rely on (DESIGN.md §9):

  * the file parses as JSON with a `traceEvents` list;
  * every event carries `name`, `ph`, and `pid`, with `ph` one of
    M / X / C / i;
  * X (duration) events carry numeric `ts`, a non-negative `dur`, and a
    `tid`; i (instant) events carry `ts` and a scope `s`; C (counter)
    events carry `ts` and a numeric `args` payload;
  * timestamps are monotonic (non-decreasing) within each (pid, tid) lane —
    the walk is single-threaded per lane, so regressions mean clock misuse;
  * the `elmo_recorder_stats` metadata event is present and consistent:
    its `events` count equals the number of recorded (X + i) events, and
    `dropped` > 0 is only legal when the buffer filled (events ==
    max_events).

Exit status 0 when every file is clean, 1 otherwise.
"""

import json
import sys

VALID_PHASES = {"M", "X", "C", "i"}


def is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def lint(path, text):
    errors = []

    def err(i, msg):
        errors.append(f"{path}: event #{i}: {msg}")

    try:
        doc = json.loads(text)
    except json.JSONDecodeError as ex:
        return [f"{path}: not valid JSON: {ex}"]
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        return [f"{path}: missing traceEvents list"]

    stats = None
    recorded = 0            # X + i events actually in the buffer
    last_ts = {}            # (pid, tid) -> last seen ts
    for i, ev in enumerate(doc["traceEvents"]):
        if not isinstance(ev, dict):
            err(i, "event is not an object")
            continue
        for field in ("name", "ph", "pid"):
            if field not in ev:
                err(i, f"missing required field {field!r}")
        ph = ev.get("ph")
        if ph not in VALID_PHASES:
            err(i, f"unknown phase {ph!r}")
            continue

        if ph == "M":
            if ev.get("name") == "elmo_recorder_stats":
                stats = ev.get("args")
            continue

        if not is_number(ev.get("ts")):
            err(i, f"{ph} event lacks a numeric ts")
            continue
        if ph == "X":
            recorded += 1
            if "tid" not in ev:
                err(i, "X event lacks a tid")
            if not is_number(ev.get("dur")) or ev["dur"] < 0:
                err(i, "X event lacks a non-negative dur")
        elif ph == "i":
            recorded += 1
            if ev.get("s") not in ("g", "p", "t"):
                err(i, f"instant event has bad scope {ev.get('s')!r}")
        elif ph == "C":
            args = ev.get("args")
            if not isinstance(args, dict) or not all(
                    is_number(v) for v in args.values()):
                err(i, "counter event args must be numeric")

        lane = (ev.get("pid"), ev.get("tid"))
        if lane in last_ts and ev["ts"] < last_ts[lane]:
            err(i, f"ts regressed in lane pid={lane[0]} tid={lane[1]} "
                   f"({last_ts[lane]} then {ev['ts']})")
        last_ts[lane] = ev["ts"]

    if stats is None:
        errors.append(f"{path}: missing elmo_recorder_stats metadata event")
        return errors
    for field in ("events", "dropped", "max_events"):
        if not is_number(stats.get(field)):
            errors.append(
                f"{path}: elmo_recorder_stats lacks numeric {field!r}")
            return errors
    if stats["events"] != recorded:
        errors.append(
            f"{path}: elmo_recorder_stats says {stats['events']} events, "
            f"trace holds {recorded}")
    if stats["events"] > stats["max_events"]:
        errors.append(
            f"{path}: {stats['events']} events exceed the declared bound "
            f"{stats['max_events']}")
    if stats["dropped"] > 0 and stats["events"] != stats["max_events"]:
        errors.append(
            f"{path}: {stats['dropped']} events dropped but the buffer "
            f"never filled ({stats['events']}/{stats['max_events']})")
    return errors


def main(argv):
    paths = argv[1:] or ["-"]
    failed = False
    for path in paths:
        text = sys.stdin.read() if path == "-" else open(path).read()
        errors = lint("<stdin>" if path == "-" else path, text)
        for e in errors:
            print(e, file=sys.stderr)
        if errors:
            failed = True
        else:
            doc = json.loads(text)
            print(f"{path}: OK ({len(doc['traceEvents'])} trace events)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
