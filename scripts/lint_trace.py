#!/usr/bin/env python3
"""Strict linter for the chrome://tracing JSON the observability stores emit.

Usage: scripts/lint_trace.py <file> [<file> ...]   ("-" reads stdin)

Validates the contract CI smoke jobs rely on (DESIGN.md §9 and §15), for
both the FlightRecorder (pid 1), the causal Tracer (pid 2), and the merged
unified export that carries both:

  * the file parses as JSON with a `traceEvents` list;
  * every event carries `name`, `ph`, and `pid`, with `ph` one of
    M / X / C / i / s / f;
  * X (duration) events carry numeric `ts`, a non-negative `dur`, and a
    `tid`; i (instant) events carry `ts` and a scope `s`; C (counter)
    events carry `ts` and a numeric `args` payload; f (flow end) events
    carry `bp` == "e";
  * timestamps are monotonic (non-decreasing) within each (pid, tid) lane —
    each store appends chronologically, so regressions mean clock misuse;
  * every s/f flow pair matches exactly once by (pid, id), with the "f"
    endpoint not earlier than its "s" source;
  * causal structure (events with a numeric `args.span`): a closed child
    span lies inside its closed parent span's interval (same pid, any
    lane — installs parent under the wire-lane flush), and every non-zero
    `parent` / `from_span` / `to_span` reference resolves to a recorded
    span or instant unless the event is flagged `orphan`;
  * per-pid accounting metadata is present and consistent:
      - `elmo_recorder_stats` (the FlightRecorder): `events` equals the
        recorded X + i count on its pid;
      - `elmo_tracer_stats` (the Tracer): `spans` equals the X count,
        `instants` the i count, and `flows` both the s and the f count on
        its pid;
      - for both, `dropped` > 0 is only legal when the buffer filled
        (recorded events == max_events).

Exit status 0 when every file is clean, 1 otherwise.
"""

import json
import sys

VALID_PHASES = {"M", "X", "C", "i", "s", "f"}

# %.3f microsecond timestamps round each endpoint independently; a closed
# child may overhang its parent by up to one rounding step per endpoint.
TS_EPS = 0.002


def is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def lint(path, text):
    errors = []

    def err(i, msg):
        errors.append(f"{path}: event #{i}: {msg}")

    try:
        doc = json.loads(text)
    except json.JSONDecodeError as ex:
        return [f"{path}: not valid JSON: {ex}"]
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        return [f"{path}: missing traceEvents list"]

    recorder_stats = {}     # pid -> args of elmo_recorder_stats
    tracer_stats = {}       # pid -> args of elmo_tracer_stats
    counts = {}             # pid -> {"X": n, "i": n, "s": n, "f": n}
    last_ts = {}            # (pid, tid) -> last seen ts
    spans = {}              # (pid, span_id) -> (index, ts, end or None)
    flow_ends = {}          # (pid, id) -> {"s": [...], "f": [...]} of (i, ts)
    deferred = []           # causal checks resolved after the full pass

    for i, ev in enumerate(doc["traceEvents"]):
        if not isinstance(ev, dict):
            err(i, "event is not an object")
            continue
        for field in ("name", "ph", "pid"):
            if field not in ev:
                err(i, f"missing required field {field!r}")
        ph = ev.get("ph")
        if ph not in VALID_PHASES:
            err(i, f"unknown phase {ph!r}")
            continue
        pid = ev.get("pid")

        if ph == "M":
            if ev.get("name") == "elmo_recorder_stats":
                recorder_stats[pid] = ev.get("args")
            elif ev.get("name") == "elmo_tracer_stats":
                tracer_stats[pid] = ev.get("args")
            continue

        if not is_number(ev.get("ts")):
            err(i, f"{ph} event lacks a numeric ts")
            continue
        ts = ev["ts"]
        counts.setdefault(pid, {"X": 0, "i": 0, "s": 0, "f": 0})
        args = ev.get("args") if isinstance(ev.get("args"), dict) else {}

        if ph == "X":
            counts[pid]["X"] += 1
            if "tid" not in ev:
                err(i, "X event lacks a tid")
            if not is_number(ev.get("dur")) or ev["dur"] < 0:
                err(i, "X event lacks a non-negative dur")
            elif is_number(args.get("span")):
                end = None if args.get("open") else ts + ev["dur"]
                spans[(pid, args["span"])] = (i, ts, end)
                if is_number(args.get("parent")) and args["parent"] != 0:
                    deferred.append(("enclose", i, pid, args["parent"],
                                     ts, end, bool(args.get("orphan"))))
        elif ph == "i":
            counts[pid]["i"] += 1
            if ev.get("s") not in ("g", "p", "t"):
                err(i, f"instant event has bad scope {ev.get('s')!r}")
            if is_number(args.get("span")):
                spans[(pid, args["span"])] = (i, ts, ts)
        elif ph == "C":
            if not args or not all(is_number(v) for v in args.values()):
                err(i, "counter event args must be numeric")
        elif ph in ("s", "f"):
            counts[pid][ph] += 1
            if not is_number(ev.get("id")):
                err(i, f"{ph} flow event lacks a numeric id")
                continue
            if ph == "f" and ev.get("bp") != "e":
                err(i, 'f flow event lacks bp == "e"')
            ends = flow_ends.setdefault((pid, ev["id"]), {"s": [], "f": []})
            ends[ph].append((i, ts))
            if ph == "s":  # both halves carry the same args; check once
                for field in ("from_span", "to_span"):
                    if is_number(args.get(field)) and args[field] != 0:
                        deferred.append(("resolve", i, pid, args[field],
                                         field, bool(args.get("orphan"))))

        lane = (pid, ev.get("tid"))
        if lane in last_ts and ts < last_ts[lane]:
            err(i, f"ts regressed in lane pid={lane[0]} tid={lane[1]} "
                   f"({last_ts[lane]} then {ts})")
        last_ts[lane] = ts

    # --- deferred causal checks ---------------------------------------------
    for check in deferred:
        if check[0] == "enclose":
            _, i, pid, parent, ts, end, orphan = check
            hit = spans.get((pid, parent))
            if hit is None:
                if not orphan:
                    err(i, f"span parent {parent} not recorded on pid {pid} "
                           f"and event not flagged orphan")
                continue
            _, pts, pend = hit
            if ts < pts - TS_EPS:
                err(i, f"child span starts at {ts} before its parent ({pts})")
            if end is not None and pend is not None and end > pend + TS_EPS:
                err(i, f"child span ends at {end} after its parent ({pend})")
        else:
            _, i, pid, span, field, orphan = check
            if (pid, span) not in spans and not orphan:
                err(i, f"flow {field} {span} not recorded on pid {pid} "
                       f"and flow not flagged orphan")

    for (pid, fid), ends in flow_ends.items():
        if len(ends["s"]) != 1 or len(ends["f"]) != 1:
            errors.append(
                f"{path}: flow id {fid} on pid {pid} has {len(ends['s'])} "
                f"source(s) and {len(ends['f'])} end(s); want exactly 1+1")
            continue
        if ends["f"][0][1] < ends["s"][0][1]:
            errors.append(
                f"{path}: flow id {fid} on pid {pid} ends at "
                f"{ends['f'][0][1]} before its source {ends['s'][0][1]}")

    # --- per-pid accounting --------------------------------------------------
    def check_bounds(label, pid, stats, recorded):
        ok = True
        for field in ("dropped", "max_events"):
            if not is_number(stats.get(field)):
                errors.append(f"{path}: {label} lacks numeric {field!r}")
                ok = False
        if not ok:
            return
        if recorded > stats["max_events"]:
            errors.append(
                f"{path}: pid {pid} holds {recorded} events, exceeding the "
                f"declared bound {stats['max_events']}")
        if stats["dropped"] > 0 and recorded != stats["max_events"]:
            errors.append(
                f"{path}: pid {pid} dropped {stats['dropped']} events but "
                f"the buffer never filled ({recorded}/{stats['max_events']})")

    for pid, n in counts.items():
        rec, trc = recorder_stats.get(pid), tracer_stats.get(pid)
        if rec is not None:
            if not is_number(rec.get("events")):
                errors.append(
                    f"{path}: elmo_recorder_stats lacks numeric 'events'")
            else:
                if rec["events"] != n["X"] + n["i"]:
                    errors.append(
                        f"{path}: elmo_recorder_stats says {rec['events']} "
                        f"events, pid {pid} holds {n['X'] + n['i']}")
                check_bounds("elmo_recorder_stats", pid, rec, rec["events"])
            if n["s"] or n["f"]:
                errors.append(
                    f"{path}: pid {pid} is a recorder but carries flow events")
        elif trc is not None:
            clean = True
            for field in ("spans", "instants", "flows", "orphans"):
                if not is_number(trc.get(field)):
                    errors.append(
                        f"{path}: elmo_tracer_stats lacks numeric {field!r}")
                    clean = False
            if clean:
                for field, have in (("spans", n["X"]), ("instants", n["i"])):
                    if trc[field] != have:
                        errors.append(
                            f"{path}: elmo_tracer_stats says {trc[field]} "
                            f"{field}, pid {pid} holds {have}")
                for ph in ("s", "f"):
                    if trc["flows"] != n[ph]:
                        errors.append(
                            f"{path}: elmo_tracer_stats says {trc['flows']} "
                            f"flows, pid {pid} holds {n[ph]} {ph!r} events")
                recorded = trc["spans"] + trc["instants"] + trc["flows"]
                check_bounds("elmo_tracer_stats", pid, trc, recorded)
        else:
            errors.append(
                f"{path}: pid {pid} carries events but no "
                f"elmo_recorder_stats / elmo_tracer_stats metadata")

    if not counts and not recorder_stats and not tracer_stats:
        errors.append(f"{path}: trace holds no events and no accounting")
    return errors


def main(argv):
    paths = argv[1:] or ["-"]
    failed = False
    for path in paths:
        text = sys.stdin.read() if path == "-" else open(path).read()
        errors = lint("<stdin>" if path == "-" else path, text)
        for e in errors:
            print(e, file=sys.stderr)
        if errors:
            failed = True
        else:
            doc = json.loads(text)
            print(f"{path}: OK ({len(doc['traceEvents'])} trace events)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
