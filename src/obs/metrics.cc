#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <deque>
#include <map>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

namespace elmo::obs {
namespace {

std::uint64_t to_bits(double v) noexcept { return std::bit_cast<std::uint64_t>(v); }
double from_bits(std::uint64_t b) noexcept { return std::bit_cast<double>(b); }

// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*
std::string sanitize(std::string_view name) {
  std::string out{name};
  for (auto& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(out.begin(), '_');
  return out;
}

std::string fmt_value(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

const char* kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "?";
}

// Per-(thread, histogram) storage. Bounds are copied in so the hot path
// never reads the (mutex-guarded, growable) definition table.
struct HistCell {
  explicit HistCell(const std::vector<double>& b)
      : bounds(b), counts(b.size() + 1) {}

  const std::vector<double> bounds;
  std::vector<std::atomic<std::uint64_t>> counts;  // per bound, then +Inf
  std::atomic<std::uint64_t> observations{0};
  std::atomic<std::uint64_t> sum_bits{0};  // double payload

  void observe(double v) noexcept {
    const auto it = std::lower_bound(bounds.begin(), bounds.end(), v);
    const auto idx = static_cast<std::size_t>(it - bounds.begin());
    counts[idx].fetch_add(1, std::memory_order_relaxed);
    observations.fetch_add(1, std::memory_order_relaxed);
    auto cur = sum_bits.load(std::memory_order_relaxed);
    while (!sum_bits.compare_exchange_weak(cur, to_bits(from_bits(cur) + v),
                                           std::memory_order_relaxed)) {
    }
  }

  void reset() noexcept {
    for (auto& c : counts) c.store(0, std::memory_order_relaxed);
    observations.store(0, std::memory_order_relaxed);
    sum_bits.store(0, std::memory_order_relaxed);
  }
};

// One thread's private cells. deque: growth never moves existing atomics.
struct Shard {
  std::deque<std::atomic<std::uint64_t>> counters;       // by counter slot
  std::vector<std::unique_ptr<HistCell>> hists;          // by histogram slot
};

std::atomic<std::uint64_t> g_epoch_source{1};

class SinkImpl;

}  // namespace

struct MetricsRegistry::Impl {
  struct Def {
    std::string name;
    std::string help;
    MetricKind kind = MetricKind::kCounter;
    std::uint32_t slot = 0;  // kind-local index
    std::vector<double> bounds;  // histogram only
  };

  mutable std::mutex mutex_;
  std::vector<Def> defs_;
  std::unordered_map<std::string, Id> by_name_;
  std::uint32_t num_counters_ = 0;
  std::uint32_t num_gauges_ = 0;
  std::uint32_t num_hists_ = 0;
  std::deque<std::atomic<std::uint64_t>> gauges_;  // double payloads
  std::vector<std::shared_ptr<Shard>> shards_;
  std::vector<std::pair<std::string, Collector>> collectors_;
  std::chrono::steady_clock::time_point start_ = std::chrono::steady_clock::now();
  const std::uint64_t epoch_ =
      g_epoch_source.fetch_add(1, std::memory_order_relaxed);

  // Thread-local cache: (registry, epoch) -> shard + raw cell pointers. The
  // epoch is globally unique per registry instance, so a stale entry for a
  // destroyed registry can never match a live one, even at the same address.
  struct TlsEntry {
    const Impl* impl = nullptr;
    std::uint64_t epoch = 0;
    std::shared_ptr<Shard> shard;  // keeps the cells alive past the registry
    std::vector<std::atomic<std::uint64_t>*> counter_cells;  // by Id
    std::vector<std::atomic<std::uint64_t>*> gauge_cells;    // by Id
    std::vector<HistCell*> hist_cells;                       // by Id
  };
  static std::vector<TlsEntry>& tls_entries() {
    thread_local std::vector<TlsEntry> entries;
    return entries;
  }

  TlsEntry& tls() {
    auto& entries = tls_entries();
    for (auto& e : entries) {
      if (e.impl == this && e.epoch == epoch_) return e;
    }
    // Bound stale entries (destroyed registries) before adding a new one.
    if (entries.size() > 8) {
      entries.erase(std::remove_if(entries.begin(), entries.end(),
                                   [&](const TlsEntry& e) {
                                     return e.impl != this || e.epoch != epoch_;
                                   }),
                    entries.end());
    }
    auto& e = entries.emplace_back();
    e.impl = this;
    e.epoch = epoch_;
    {
      std::lock_guard lk{mutex_};
      e.shard = std::make_shared<Shard>();
      shards_.push_back(e.shard);
    }
    return e;
  }

  Id register_metric(std::string_view raw_name, std::string_view help,
                     MetricKind kind, std::vector<double> bounds) {
    const auto name = sanitize(raw_name);
    std::lock_guard lk{mutex_};
    if (const auto it = by_name_.find(name); it != by_name_.end()) {
      const auto& def = defs_[it->second];
      if (def.kind != kind) {
        throw std::invalid_argument{"MetricsRegistry: metric '" + name +
                                    "' re-registered as a different kind"};
      }
      if (kind == MetricKind::kHistogram && def.bounds != bounds) {
        throw std::invalid_argument{"MetricsRegistry: histogram '" + name +
                                    "' re-registered with different bounds"};
      }
      return it->second;
    }
    if (kind == MetricKind::kHistogram) {
      if (bounds.empty() || !std::is_sorted(bounds.begin(), bounds.end()) ||
          std::adjacent_find(bounds.begin(), bounds.end()) != bounds.end()) {
        throw std::invalid_argument{
            "MetricsRegistry: histogram bounds must be strictly increasing "
            "and non-empty"};
      }
    }
    Def def;
    def.name = name;
    def.help = std::string{help};
    def.kind = kind;
    def.bounds = std::move(bounds);
    switch (kind) {
      case MetricKind::kCounter:
        def.slot = num_counters_++;
        break;
      case MetricKind::kGauge:
        def.slot = num_gauges_++;
        while (gauges_.size() < num_gauges_) gauges_.emplace_back(0);
        break;
      case MetricKind::kHistogram:
        def.slot = num_hists_++;
        break;
    }
    const auto id = static_cast<Id>(defs_.size());
    defs_.push_back(std::move(def));
    by_name_.emplace(name, id);
    return id;
  }

  std::atomic<std::uint64_t>* counter_cell(Id id) {
    auto& e = tls();
    if (id < e.counter_cells.size() && e.counter_cells[id] != nullptr) {
      return e.counter_cells[id];
    }
    std::lock_guard lk{mutex_};
    if (id >= defs_.size() || defs_[id].kind != MetricKind::kCounter) {
      return nullptr;
    }
    const auto slot = defs_[id].slot;
    while (e.shard->counters.size() <= slot) e.shard->counters.emplace_back(0);
    if (e.counter_cells.size() <= id) e.counter_cells.resize(id + 1, nullptr);
    e.counter_cells[id] = &e.shard->counters[slot];
    return e.counter_cells[id];
  }

  std::atomic<std::uint64_t>* gauge_cell(Id id) {
    auto& e = tls();
    if (id < e.gauge_cells.size() && e.gauge_cells[id] != nullptr) {
      return e.gauge_cells[id];
    }
    std::lock_guard lk{mutex_};
    if (id >= defs_.size() || defs_[id].kind != MetricKind::kGauge) {
      return nullptr;
    }
    if (e.gauge_cells.size() <= id) e.gauge_cells.resize(id + 1, nullptr);
    e.gauge_cells[id] = &gauges_[defs_[id].slot];
    return e.gauge_cells[id];
  }

  HistCell* hist_cell(Id id) {
    auto& e = tls();
    if (id < e.hist_cells.size() && e.hist_cells[id] != nullptr) {
      return e.hist_cells[id];
    }
    std::lock_guard lk{mutex_};
    if (id >= defs_.size() || defs_[id].kind != MetricKind::kHistogram) {
      return nullptr;
    }
    const auto slot = defs_[id].slot;
    if (e.shard->hists.size() <= slot) e.shard->hists.resize(slot + 1);
    if (e.shard->hists[slot] == nullptr) {
      e.shard->hists[slot] = std::make_unique<HistCell>(defs_[id].bounds);
    }
    if (e.hist_cells.size() <= id) e.hist_cells.resize(id + 1, nullptr);
    e.hist_cells[id] = e.shard->hists[slot].get();
    return e.hist_cells[id];
  }
};

namespace {

class SinkImpl final : public CollectorSink {
 public:
  explicit SinkImpl(std::vector<MetricSample>& out) : out_{out} {}
  void counter(std::string_view name, double value,
               std::string_view help) override {
    push(name, value, help, MetricKind::kCounter);
  }
  void gauge(std::string_view name, double value,
             std::string_view help) override {
    push(name, value, help, MetricKind::kGauge);
  }

 private:
  void push(std::string_view name, double value, std::string_view help,
            MetricKind kind) {
    MetricSample s;
    s.name = sanitize(name);
    s.help = std::string{help};
    s.kind = kind;
    s.value = value;
    out_.push_back(std::move(s));
  }
  std::vector<MetricSample>& out_;
};

}  // namespace

MetricsRegistry::MetricsRegistry(bool enabled)
    : enabled_{enabled}, impl_{std::make_unique<Impl>()} {}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Id MetricsRegistry::counter(std::string_view name,
                                             std::string_view help) {
  return impl_->register_metric(name, help, MetricKind::kCounter, {});
}

MetricsRegistry::Id MetricsRegistry::gauge(std::string_view name,
                                           std::string_view help) {
  return impl_->register_metric(name, help, MetricKind::kGauge, {});
}

MetricsRegistry::Id MetricsRegistry::histogram(std::string_view name,
                                               std::vector<double> bounds,
                                               std::string_view help) {
  return impl_->register_metric(name, help, MetricKind::kHistogram,
                                std::move(bounds));
}

void MetricsRegistry::add(Id id, std::uint64_t delta) {
  if (!enabled()) return;
  if (auto* cell = impl_->counter_cell(id)) {
    cell->fetch_add(delta, std::memory_order_relaxed);
  }
}

void MetricsRegistry::gauge_set(Id id, double value) {
  if (!enabled()) return;
  if (auto* cell = impl_->gauge_cell(id)) {
    cell->store(to_bits(value), std::memory_order_relaxed);
  }
}

void MetricsRegistry::gauge_max(Id id, double value) {
  if (!enabled()) return;
  if (auto* cell = impl_->gauge_cell(id)) {
    auto cur = cell->load(std::memory_order_relaxed);
    while (from_bits(cur) < value &&
           !cell->compare_exchange_weak(cur, to_bits(value),
                                        std::memory_order_relaxed)) {
    }
  }
}

void MetricsRegistry::observe(Id id, double value) {
  if (!enabled()) return;
  if (auto* cell = impl_->hist_cell(id)) cell->observe(value);
}

void MetricsRegistry::register_collector(std::string name, Collector fn) {
  std::lock_guard lk{impl_->mutex_};
  for (auto& [n, f] : impl_->collectors_) {
    if (n == name) {
      f = std::move(fn);
      return;
    }
  }
  impl_->collectors_.emplace_back(std::move(name), std::move(fn));
}

void MetricsRegistry::unregister_collector(std::string_view name) {
  std::lock_guard lk{impl_->mutex_};
  auto& cs = impl_->collectors_;
  cs.erase(std::remove_if(cs.begin(), cs.end(),
                          [&](const auto& c) { return c.first == name; }),
           cs.end());
}

Snapshot MetricsRegistry::snapshot() const {
  Snapshot snap;
  std::vector<MetricSample> collected;
  std::vector<Collector> collectors;
  {
    std::lock_guard lk{impl_->mutex_};
    snap.uptime_seconds = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - impl_->start_)
                              .count();
    for (const auto& def : impl_->defs_) {
      MetricSample s;
      s.name = def.name;
      s.help = def.help;
      s.kind = def.kind;
      switch (def.kind) {
        case MetricKind::kCounter: {
          std::uint64_t total = 0;
          for (const auto& shard : impl_->shards_) {
            if (def.slot < shard->counters.size()) {
              total +=
                  shard->counters[def.slot].load(std::memory_order_relaxed);
            }
          }
          s.value = static_cast<double>(total);
          break;
        }
        case MetricKind::kGauge:
          s.value = from_bits(
              impl_->gauges_[def.slot].load(std::memory_order_relaxed));
          break;
        case MetricKind::kHistogram: {
          s.bounds = def.bounds;
          s.buckets.assign(def.bounds.size() + 1, 0);
          double sum = 0;
          for (const auto& shard : impl_->shards_) {
            if (def.slot >= shard->hists.size() ||
                shard->hists[def.slot] == nullptr) {
              continue;
            }
            const auto& cell = *shard->hists[def.slot];
            for (std::size_t b = 0; b < s.buckets.size(); ++b) {
              s.buckets[b] += cell.counts[b].load(std::memory_order_relaxed);
            }
            s.observations +=
                cell.observations.load(std::memory_order_relaxed);
            sum += from_bits(cell.sum_bits.load(std::memory_order_relaxed));
          }
          s.sum = sum;
          break;
        }
      }
      snap.metrics.push_back(std::move(s));
    }
    collectors.reserve(impl_->collectors_.size());
    for (const auto& [name, fn] : impl_->collectors_) collectors.push_back(fn);
  }
  // Collectors run outside the lock (they read foreign component state and
  // may take their own locks).
  SinkImpl sink{collected};
  for (const auto& fn : collectors) fn(sink);
  // Merge collector samples: sum into an existing same-kind sample, append
  // otherwise.
  for (auto& extra : collected) {
    bool merged = false;
    for (auto& s : snap.metrics) {
      if (s.name == extra.name && s.kind == extra.kind &&
          s.kind != MetricKind::kHistogram) {
        s.value += extra.value;
        merged = true;
        break;
      }
    }
    if (!merged) snap.metrics.push_back(std::move(extra));
  }
  std::sort(snap.metrics.begin(), snap.metrics.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard lk{impl_->mutex_};
  for (const auto& shard : impl_->shards_) {
    for (auto& c : shard->counters) c.store(0, std::memory_order_relaxed);
    for (auto& h : shard->hists) {
      if (h != nullptr) h->reset();
    }
  }
  for (auto& g : impl_->gauges_) g.store(0, std::memory_order_relaxed);
  impl_->start_ = std::chrono::steady_clock::now();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry{/*enabled=*/false};
  return *registry;
}

const MetricSample* Snapshot::find(std::string_view name) const {
  for (const auto& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

double Snapshot::value(std::string_view name) const {
  const auto* m = find(name);
  return m != nullptr ? m->value : 0.0;
}

std::string Snapshot::prometheus() const {
  std::string out;
  auto line = [&out](const std::string& s) {
    out += s;
    out += '\n';
  };
  line("# HELP elmo_uptime_seconds Seconds since registry creation or reset");
  line("# TYPE elmo_uptime_seconds gauge");
  line("elmo_uptime_seconds " + fmt_value(uptime_seconds));
  for (const auto& m : metrics) {
    if (!m.help.empty()) line("# HELP " + m.name + " " + escape(m.help));
    line("# TYPE " + m.name + " " + kind_name(m.kind));
    if (m.kind != MetricKind::kHistogram) {
      line(m.name + " " + fmt_value(m.value));
      continue;
    }
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < m.bounds.size(); ++b) {
      cum += m.buckets[b];
      line(m.name + "_bucket{le=\"" + fmt_value(m.bounds[b]) + "\"} " +
           std::to_string(cum));
    }
    cum += m.buckets.back();
    line(m.name + "_bucket{le=\"+Inf\"} " + std::to_string(cum));
    line(m.name + "_sum " + fmt_value(m.sum));
    line(m.name + "_count " + std::to_string(m.observations));
  }
  return out;
}

std::string Snapshot::json() const {
  std::string out = "{\n  \"uptime_seconds\": " + fmt_value(uptime_seconds) +
                    ",\n  \"metrics\": [";
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    const auto& m = metrics[i];
    out += i ? ",\n    " : "\n    ";
    out += "{\"name\": \"" + m.name + "\", \"kind\": \"" + kind_name(m.kind) +
           "\"";
    if (!m.help.empty()) out += ", \"help\": \"" + escape(m.help) + "\"";
    if (m.kind != MetricKind::kHistogram) {
      out += ", \"value\": " + fmt_value(m.value) + "}";
      continue;
    }
    out += ", \"count\": " + std::to_string(m.observations) +
           ", \"sum\": " + fmt_value(m.sum) + ", \"buckets\": [";
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < m.bounds.size(); ++b) {
      cum += m.buckets[b];
      out += "{\"le\": " + fmt_value(m.bounds[b]) +
             ", \"count\": " + std::to_string(cum) + "}, ";
    }
    cum += m.buckets.back();
    out += "{\"le\": \"+Inf\", \"count\": " + std::to_string(cum) + "}]}";
  }
  out += "\n  ]\n}\n";
  return out;
}

bool write_metrics(const std::string& path, const Snapshot& snap) {
  const bool json = path.size() >= 5 && path.ends_with(".json");
  const auto text = json ? snap.json() : snap.prometheus();
  if (path == "-") {
    std::fwrite(text.data(), 1, text.size(), stderr);
    return true;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "write_metrics: cannot open %s\n", path.c_str());
    return false;
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return true;
}

std::vector<double> latency_bounds() {
  return {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0};
}

}  // namespace elmo::obs
