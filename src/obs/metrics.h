// Fleet telemetry: a lock-cheap metrics registry (counters, gauges,
// fixed-bucket histograms) with per-thread sharding.
//
// Design (DESIGN.md §9):
//   * Registration (`counter`/`gauge`/`histogram`) returns a stable integer
//     Id. Registering an existing name returns the existing Id, so
//     independent modules can share a metric by name.
//   * Writes go to per-thread shards: each thread owns a private cell per
//     counter/histogram, cached as a raw pointer in thread-local storage, so
//     the hot path is one relaxed-atomic add with no locks and no hashing.
//     The registry mutex is touched only on the first write of a (thread,
//     metric) pair and on scrape.
//   * Gauges are registry-level cells (last-write-wins set, or a monotone
//     `gauge_max` high-water mark); they do not shard.
//   * `snapshot()` aggregates all shards, invokes registered pull-model
//     collectors (components export internal counters at scrape time
//     without paying anything per event), and renders to a Prometheus-style
//     text exposition or a JSON dump.
//   * Disabled registries (`set_enabled(false)`) turn every write into a
//     single relaxed bool load. The global registry starts disabled; benches
//     enable it when `--metrics=<path>` is given. `ELMO_METRIC(stmt)`
//     compiles out entirely under -DELMO_NO_METRICS.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace elmo::obs {

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

// One aggregated metric at scrape time.
struct MetricSample {
  std::string name;
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  double value = 0;  // counter / gauge
  // Histogram only. `buckets` holds per-bucket (non-cumulative) counts, one
  // per bound plus the trailing +Inf bucket; bucket i counts observations
  // v <= bounds[i].
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;
  std::uint64_t observations = 0;
  double sum = 0;
};

struct Snapshot {
  double uptime_seconds = 0;  // since registry creation or last reset()
  std::vector<MetricSample> metrics;  // sorted by name

  // Prometheus text exposition format (HELP/TYPE comments, cumulative
  // histogram buckets with le labels, _sum/_count series).
  std::string prometheus() const;
  // {"uptime_seconds": ..., "metrics": [{...}, ...]} with cumulative
  // histogram buckets, mirroring the exposition.
  std::string json() const;

  const MetricSample* find(std::string_view name) const;
  // Convenience: counter/gauge value, or 0 when absent.
  double value(std::string_view name) const;
};

// Pull-model collectors push one-shot samples into this at scrape time.
class CollectorSink {
 public:
  virtual ~CollectorSink() = default;
  virtual void counter(std::string_view name, double value,
                       std::string_view help = {}) = 0;
  virtual void gauge(std::string_view name, double value,
                     std::string_view help = {}) = 0;
};

class MetricsRegistry {
 public:
  using Id = std::uint32_t;

  explicit MetricsRegistry(bool enabled = true);
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // --- registration (idempotent by name; kind mismatch throws) ------------
  Id counter(std::string_view name, std::string_view help = {});
  Id gauge(std::string_view name, std::string_view help = {});
  // `bounds` are strictly increasing upper bounds; an implicit +Inf bucket
  // is appended. Re-registering must pass identical bounds.
  Id histogram(std::string_view name, std::vector<double> bounds,
               std::string_view help = {});

  // --- writes (no-ops while disabled) -------------------------------------
  void add(Id id, std::uint64_t delta = 1);
  void gauge_set(Id id, double value);
  void gauge_max(Id id, double value);  // monotone high-water mark
  void observe(Id id, double value);

  // --- pull-model collectors ----------------------------------------------
  // Re-registering a name replaces the previous collector. The collector
  // must stay valid until unregistered (or the registry is destroyed); it
  // is invoked outside the registry lock.
  using Collector = std::function<void(CollectorSink&)>;
  void register_collector(std::string name, Collector fn);
  void unregister_collector(std::string_view name);

  // --- scrape --------------------------------------------------------------
  Snapshot snapshot() const;
  // Zeroes every cell and restarts the uptime clock. Collectors stay.
  void reset();

  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }

  // Process-wide registry; starts disabled.
  static MetricsRegistry& global();

 private:
  struct Impl;
  friend struct Impl;

  std::atomic<bool> enabled_;
  std::unique_ptr<Impl> impl_;
};

// Writes `snap` to `path`: "-" means stderr; a ".json" suffix selects the
// JSON dump, anything else the Prometheus text exposition. Returns false
// (with a perror-style message on stderr) when the file cannot be written.
bool write_metrics(const std::string& path, const Snapshot& snap);

// Shared bucket ladder for wall-clock spans: 1µs .. 100s, decades.
std::vector<double> latency_bounds();

}  // namespace elmo::obs

// Runtime-gated instrumentation statement: `stmt` may refer to the global
// registry as `reg`. Compiles away entirely under -DELMO_NO_METRICS;
// otherwise costs one relaxed load while metrics are disabled.
#if defined(ELMO_NO_METRICS)
#define ELMO_METRIC(stmt) ((void)0)
#else
#define ELMO_METRIC(stmt)                                        \
  do {                                                           \
    auto& reg = ::elmo::obs::MetricsRegistry::global();          \
    if (reg.enabled()) {                                         \
      stmt;                                                      \
    }                                                            \
  } while (0)
#endif
