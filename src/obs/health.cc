#include "obs/health.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace elmo::obs {

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarning:
      return "warning";
    case Severity::kCritical:
      return "critical";
  }
  return "unknown";
}

namespace {

std::string fmt_num(double v) {
  char buf[48];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.6g", v);
  }
  return buf;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

HealthMonitor::HealthMonitor(const TimeSeriesStore& store,
                             HealthMonitorOptions opts)
    : store_{store}, opts_{opts} {}

void HealthMonitor::add_detector(std::unique_ptr<Detector> detector) {
  detectors_.push_back(std::move(detector));
}

std::vector<std::size_t> HealthMonitor::tick() {
  std::vector<std::size_t> opened;
  const std::uint64_t win = store_.window();  // completed windows so far
  if (win < opts_.warmup_windows) return opened;

  scratch_.clear();
  for (const auto& detector : detectors_) {
    detector->scan(store_, scratch_);
  }

  for (auto& f : scratch_) {
    const auto key = std::pair{f.klass, f.element};
    const auto it = index_.find(key);
    if (it == index_.end()) {
      Incident inc;
      inc.id = incidents_.size();
      inc.klass = std::move(f.klass);
      inc.severity = f.severity;
      inc.element = std::move(f.element);
      inc.summary = std::move(f.summary);
      inc.evidence = std::move(f.evidence);
      inc.first_window = win;
      inc.last_window = win;
      inc.windows_active = 1;
      index_.emplace(key, incidents_.size());
      opened.push_back(incidents_.size());
      incidents_.push_back(std::move(inc));
      continue;
    }
    Incident& inc = incidents_[it->second];
    if (inc.last_window == win) {
      // A second finding for the same (class, element) in one tick: merge
      // evidence-wise, don't double-count the window.
      inc.severity = std::max(inc.severity, f.severity);
      continue;
    }
    const bool reopened = !inc.open;
    if (reopened) {
      inc.open = true;
      ++inc.flaps;
      opened.push_back(it->second);
    } else if (win > inc.last_window + 1) {
      ++inc.flaps;  // quiet gap while still open: a flap, not a new incident
    }
    inc.last_window = win;
    ++inc.windows_active;
    inc.severity = std::max(inc.severity, f.severity);
    inc.summary = std::move(f.summary);
    inc.evidence = std::move(f.evidence);
  }

  for (auto& inc : incidents_) {
    if (inc.open && win >= inc.last_window + opts_.close_after) {
      inc.open = false;
    }
  }
  return opened;
}

std::size_t HealthMonitor::open_count() const {
  std::size_t n = 0;
  for (const auto& inc : incidents_) n += inc.open ? 1 : 0;
  return n;
}

bool HealthMonitor::has_incident(std::string_view klass) const {
  return std::any_of(incidents_.begin(), incidents_.end(),
                     [&](const Incident& inc) { return inc.klass == klass; });
}

void HealthMonitor::attach_explanation(std::size_t index, std::string text) {
  if (index < incidents_.size()) {
    incidents_[index].explanation = std::move(text);
  }
}

void HealthMonitor::attach_traces(std::size_t index,
                                  std::vector<std::uint64_t> trace_ids) {
  if (index < incidents_.size()) {
    incidents_[index].trace_ids = std::move(trace_ids);
  }
}

std::string HealthMonitor::render_text() const {
  std::ostringstream out;
  out << "health: " << incidents_.size() << " incident(s), " << open_count()
      << " open, window " << store_.window() << "\n";
  for (const auto& inc : incidents_) {
    out << "[" << to_string(inc.severity) << "] " << inc.klass << " @ "
        << inc.element << "  windows " << inc.first_window << ".."
        << inc.last_window << " (active " << inc.windows_active << ", flaps "
        << inc.flaps << ") " << (inc.open ? "OPEN" : "closed") << "\n";
    out << "       " << inc.summary << "\n";
    for (const auto& e : inc.evidence) {
      out << "       - " << e.series << ": observed " << fmt_num(e.observed)
          << ", threshold " << fmt_num(e.threshold);
      if (!e.note.empty()) out << " (" << e.note << ")";
      out << "\n";
    }
    if (!inc.explanation.empty()) {
      out << "       --- first affected send ---\n";
      std::istringstream lines{inc.explanation};
      std::string line;
      while (std::getline(lines, line)) out << "       " << line << "\n";
    }
  }
  return out.str();
}

std::string HealthMonitor::render_json() const {
  std::ostringstream out;
  out << "{\n  \"window\": " << store_.window()
      << ",\n  \"open\": " << open_count() << ",\n  \"incidents\": [";
  for (std::size_t i = 0; i < incidents_.size(); ++i) {
    const auto& inc = incidents_[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"class\": \"" << json_escape(inc.klass)
        << "\", \"severity\": \"" << to_string(inc.severity)
        << "\", \"element\": \"" << json_escape(inc.element)
        << "\", \"summary\": \"" << json_escape(inc.summary)
        << "\",\n     \"first_window\": " << inc.first_window
        << ", \"last_window\": " << inc.last_window
        << ", \"windows_active\": " << inc.windows_active
        << ", \"flaps\": " << inc.flaps << ", \"open\": "
        << (inc.open ? "true" : "false") << ",\n     \"evidence\": [";
    for (std::size_t e = 0; e < inc.evidence.size(); ++e) {
      const auto& ev = inc.evidence[e];
      out << (e == 0 ? "\n" : ",\n");
      out << "       {\"series\": \"" << json_escape(ev.series)
          << "\", \"observed\": " << fmt_num(ev.observed)
          << ", \"threshold\": " << fmt_num(ev.threshold) << ", \"note\": \""
          << json_escape(ev.note) << "\"}";
    }
    out << (inc.evidence.empty() ? "]" : "\n     ]");
    if (!inc.explanation.empty()) {
      out << ",\n     \"explanation\": \"" << json_escape(inc.explanation)
          << "\"";
    }
    if (!inc.trace_ids.empty()) {
      out << ",\n     \"trace_ids\": [";
      for (std::size_t t = 0; t < inc.trace_ids.size(); ++t) {
        out << (t == 0 ? "" : ", ") << inc.trace_ids[t];
      }
      out << "]";
    }
    out << "}";
  }
  out << (incidents_.empty() ? "]" : "\n  ]") << "\n}\n";
  return out.str();
}

// --- built-in detectors ----------------------------------------------------

namespace {

// Per-window delta of `name`, or nullopt without two samples.
std::optional<double> win_delta(const TimeSeriesStore& ts,
                                std::string_view name) {
  return ts.delta(name, 1);
}

// Conservation-law gray-loss localizer: for each layer, copies accounted on
// links INTO it minus packets the layer processed. On a healthy fabric the
// two are exactly equal (the walk enqueues every non-lost copy); any
// deficit is the loss model (or a real gray link) eating copies in flight.
class LossRateDetector final : public Detector {
 public:
  explicit LossRateDetector(LossRateOptions opts) : opts_{opts} {}
  const char* name() const override { return "loss-rate"; }

  void scan(const TimeSeriesStore& ts, std::vector<Finding>& out) override {
    struct LayerIn {
      const char* element;
      const char* tx_a;          // links into the layer...
      const char* tx_b;          // ...from the other direction (may be null)
      const char* arrived;       // the layer's arrival counter
    };
    static constexpr LayerIn kLayers[] = {
        {"layer-in:leaf", "elmo_link_host_leaf_tx_total",
         "elmo_link_spine_leaf_tx_total", "elmo_dp_leaf_packets_in_total"},
        {"layer-in:spine", "elmo_link_leaf_spine_tx_total",
         "elmo_link_core_spine_tx_total", "elmo_dp_spine_packets_in_total"},
        {"layer-in:core", "elmo_link_spine_core_tx_total", nullptr,
         "elmo_dp_core_packets_in_total"},
        {"layer-in:host", "elmo_link_leaf_host_tx_total", nullptr,
         "elmo_dp_host_received_total"},
    };
    for (const auto& layer : kLayers) {
      const auto tx_a = win_delta(ts, layer.tx_a);
      const auto arrived = win_delta(ts, layer.arrived);
      if (!tx_a || !arrived) continue;
      double tx = *tx_a;
      if (layer.tx_b != nullptr) {
        const auto tx_b = win_delta(ts, layer.tx_b);
        if (!tx_b) continue;
        tx += *tx_b;
      }
      if (tx < opts_.min_transmissions) continue;
      const double lost = tx - *arrived;
      const double rate = lost / tx;
      if (rate < opts_.min_rate) continue;
      Finding f;
      f.klass = kLinkLossClass;
      f.severity = rate >= opts_.critical_rate ? Severity::kCritical
                                               : Severity::kWarning;
      f.element = layer.element;
      f.summary = "links into " +
                  std::string{layer.element + sizeof("layer-in:") - 1} +
                  " lost " + fmt_num(lost) + " of " + fmt_num(tx) +
                  " copies this window (" + fmt_num(rate * 100.0) + "%)";
      f.evidence.push_back(Evidence{"derived:loss_rate", rate, opts_.min_rate,
                                    "lost / transmitted, one window"});
      f.evidence.push_back(Evidence{layer.tx_a, *tx_a, 0, "delta"});
      if (layer.tx_b != nullptr) {
        f.evidence.push_back(
            Evidence{layer.tx_b, tx - *tx_a, 0, "delta"});
      }
      f.evidence.push_back(Evidence{layer.arrived, *arrived, 0, "delta"});
      out.push_back(std::move(f));
    }
  }

 private:
  LossRateOptions opts_;
};

class StuckElementDetector final : public Detector {
 public:
  explicit StuckElementDetector(StuckElementOptions opts) : opts_{opts} {}
  const char* name() const override { return "stuck-element"; }

  void scan(const TimeSeriesStore& ts, std::vector<Finding>& out) override {
    struct Layer {
      const char* element;
      const char* in;
      const char* egress;
    };
    static constexpr Layer kLayers[] = {
        {"layer:leaf", "elmo_dp_leaf_packets_in_total",
         "elmo_dp_leaf_copies_out_total"},
        {"layer:spine", "elmo_dp_spine_packets_in_total",
         "elmo_dp_spine_copies_out_total"},
        {"layer:core", "elmo_dp_core_packets_in_total",
         "elmo_dp_core_copies_out_total"},
    };
    for (const auto& layer : kLayers) {
      // Every one of the last `windows` per-window deltas must show traffic
      // entering the layer and nothing leaving it.
      if (ts.samples(layer.in) < opts_.windows + 1) continue;
      bool stuck = true;
      double ingress = 0;
      for (std::uint64_t w = 0; w < opts_.windows && stuck; ++w) {
        const auto* in_new = ts.at(layer.in, w);
        const auto* in_old = ts.at(layer.in, w + 1);
        const auto* out_new = ts.at(layer.egress, w);
        const auto* out_old = ts.at(layer.egress, w + 1);
        if (in_new == nullptr || in_old == nullptr || out_new == nullptr ||
            out_old == nullptr) {
          stuck = false;
          break;
        }
        const double din = in_new->value - in_old->value;
        const double dout = out_new->value - out_old->value;
        if (din < opts_.min_ingress || dout != 0) stuck = false;
        if (w == 0) ingress = din;
      }
      if (!stuck) continue;
      Finding f;
      f.klass = kStuckElementClass;
      f.severity = Severity::kCritical;
      f.element = layer.element;
      f.summary = std::string{layer.element + sizeof("layer:") - 1} +
                  " layer ingests traffic but emitted zero copies for " +
                  fmt_num(static_cast<double>(opts_.windows)) + " window(s)";
      f.evidence.push_back(Evidence{layer.in, ingress, opts_.min_ingress,
                                    "per-window ingress"});
      f.evidence.push_back(Evidence{layer.egress, 0, 0,
                                    "per-window egress, expected > 0"});
      out.push_back(std::move(f));
    }
  }

 private:
  StuckElementOptions opts_;
};

class FanoutAnomalyDetector final : public Detector {
 public:
  explicit FanoutAnomalyDetector(FanoutAnomalyOptions opts) : opts_{opts} {}
  const char* name() const override { return "fanout-anomaly"; }

  void scan(const TimeSeriesStore& ts, std::vector<Finding>& out) override {
    const auto expected = win_delta(ts, "elmo_expect_vm_deliveries_total");
    const auto actual = win_delta(ts, "elmo_dp_host_vm_deliveries_total");
    if (!expected || !actual || *expected < opts_.min_expected) return;
    const double ratio = *actual / *expected;
    const double deviation = std::abs(1.0 - ratio);
    if (deviation <= opts_.tolerance) return;
    Finding f;
    f.klass = kFanoutAnomalyClass;
    f.severity = deviation >= opts_.critical_ratio ? Severity::kCritical
                                                   : Severity::kWarning;
    f.element = "hosts";
    f.summary = "VM deliveries " + fmt_num(*actual) + " vs analytic " +
                "expectation " + fmt_num(*expected) + " this window (" +
                fmt_num(ratio) + "x)";
    f.evidence.push_back(Evidence{"derived:delivery_ratio_deviation",
                                  deviation, opts_.tolerance,
                                  "|1 - delivered/expected|"});
    f.evidence.push_back(Evidence{"elmo_dp_host_vm_deliveries_total", *actual,
                                  0, "delta"});
    f.evidence.push_back(Evidence{"elmo_expect_vm_deliveries_total",
                                  *expected, 0, "delta"});
    out.push_back(std::move(f));
  }

 private:
  FanoutAnomalyOptions opts_;
};

class ChurnLagDetector final : public Detector {
 public:
  explicit ChurnLagDetector(ChurnLagOptions opts) : opts_{opts} {}
  const char* name() const override { return "churn-lag"; }

  void scan(const TimeSeriesStore& ts, std::vector<Finding>& out) override {
    // EWMA over the p99 series smooths one-off spikes; min_samples is the
    // warm-up gate (no verdicts off a cold series).
    const auto smoothed = ts.ewma_value("elmo_stream_install_lag_p99_seconds",
                                        opts_.alpha, opts_.min_samples);
    if (!smoothed || *smoothed <= opts_.budget_seconds) return;
    Finding f;
    f.klass = kChurnLagClass;
    f.severity = *smoothed > 2.0 * opts_.budget_seconds ? Severity::kCritical
                                                        : Severity::kWarning;
    f.element = "stream:install-lag";
    f.summary = "install-lag p99 EWMA " + fmt_num(*smoothed) +
                "s breaches the " + fmt_num(opts_.budget_seconds) +
                "s budget";
    f.evidence.push_back(Evidence{"elmo_stream_install_lag_p99_seconds",
                                  *smoothed, opts_.budget_seconds,
                                  "EWMA(alpha=" + fmt_num(opts_.alpha) + ")"});
    out.push_back(std::move(f));
  }

 private:
  ChurnLagOptions opts_;
};

}  // namespace

std::unique_ptr<Detector> make_loss_rate_detector(LossRateOptions opts) {
  return std::make_unique<LossRateDetector>(opts);
}

std::unique_ptr<Detector> make_stuck_element_detector(
    StuckElementOptions opts) {
  return std::make_unique<StuckElementDetector>(opts);
}

std::unique_ptr<Detector> make_fanout_anomaly_detector(
    FanoutAnomalyOptions opts) {
  return std::make_unique<FanoutAnomalyDetector>(opts);
}

std::unique_ptr<Detector> make_churn_lag_detector(ChurnLagOptions opts) {
  return std::make_unique<ChurnLagDetector>(opts);
}

void add_default_detectors(HealthMonitor& monitor) {
  monitor.add_detector(make_loss_rate_detector());
  monitor.add_detector(make_stuck_element_detector());
  monitor.add_detector(make_fanout_anomaly_detector());
  monitor.add_detector(make_churn_lag_detector());
}

}  // namespace elmo::obs
