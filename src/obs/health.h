// Gray-failure health monitoring over metric time series (DESIGN.md §14).
//
// A HealthMonitor runs pluggable Detectors over the consecutive per-window
// deltas buffered in a TimeSeriesStore. Each tick(), every detector scans
// the store and reports zero or more Findings — conditions that hold in the
// window that just closed. The monitor folds findings into durable Incident
// records, deduplicated by (class, element): a condition that persists for
// ten windows is ONE incident with windows_active == 10, and a condition
// that oscillates (fires, goes quiet, fires again) is ONE incident with a
// flap count, not K copies. Incidents close after `close_after` quiet
// windows and silently reopen (flap++) if the condition returns.
//
// The four built-in detectors read the series sim::Fabric::sample_into()
// and the verify/healthmon drivers export:
//
//   loss-rate       elmo_link_<from>_<to>_tx_total vs the next layer's
//                   arrival counters: a conservation-law asymmetry between
//                   copies put on the wire towards a layer and packets that
//                   layer processed localizes gray loss to "links into X".
//   stuck-element   elmo_dp_<layer>_packets_in_total advancing while
//                   elmo_dp_<layer>_copies_out_total is flat for N windows.
//   fanout-anomaly  elmo_dp_host_vm_deliveries_total diverging from the
//                   analytic expectation series the driver appends
//                   (elmo_expect_vm_deliveries_total).
//   churn-lag       EWMA of elmo_stream_install_lag_p99_seconds breaching
//                   an install-lag budget.
//
// Incidents render as pretty text (render_text) and as a JSON document
// (render_json) whose schema scripts/lint_metrics.py --incidents enforces.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/timeseries.h"

namespace elmo::obs {

enum class Severity : std::uint8_t { kInfo, kWarning, kCritical };
const char* to_string(Severity severity);

// Classes minted by the built-in detectors. Plain strings so out-of-tree
// detectors can add their own without touching this header.
inline constexpr const char* kLinkLossClass = "link-loss";
inline constexpr const char* kStuckElementClass = "stuck-element";
inline constexpr const char* kFanoutAnomalyClass = "fanout-anomaly";
inline constexpr const char* kChurnLagClass = "churn-lag";

// One series comparison that contributed to a finding: the exact delta the
// detector observed and the threshold it crossed.
struct Evidence {
  std::string series;
  double observed = 0;
  double threshold = 0;
  std::string note;
};

// A condition one detector saw in the current window. Findings are
// ephemeral; the monitor folds them into Incidents.
struct Finding {
  std::string klass;
  Severity severity = Severity::kWarning;
  std::string element;  // suspected element/layer, e.g. "layer-in:leaf"
  std::string summary;
  std::vector<Evidence> evidence;
};

class Detector {
 public:
  virtual ~Detector() = default;
  virtual const char* name() const = 0;
  // Reports every condition that holds NOW (newest window of `store`).
  // Idempotent per window; the monitor handles dedup and persistence.
  virtual void scan(const TimeSeriesStore& store,
                    std::vector<Finding>& out) = 0;
};

// Durable record of one (class, element) condition over its lifetime.
struct Incident {
  std::uint64_t id = 0;
  std::string klass;
  Severity severity = Severity::kInfo;  // max over all reports
  std::string element;
  std::string summary;             // latest report's wording
  std::vector<Evidence> evidence;  // latest report's evidence
  std::uint64_t first_window = 0;
  std::uint64_t last_window = 0;    // newest window the condition held in
  std::uint64_t windows_active = 0; // windows the condition actually held
  std::uint64_t flaps = 0;          // re-fires after >= 1 quiet window
  bool open = true;
  // Optional rendered verify::explain_send for an affected send, attached
  // by the driver (tools/healthmon) when provenance is available.
  std::string explanation;
  // Optional causal-trace IDs (DESIGN.md §15) of the sampling windows and
  // installs that contributed to this incident, attached by the driver when
  // an obs::Tracer is live — join them against the trace export to see what
  // the fabric was doing when the detector fired.
  std::vector<std::uint64_t> trace_ids;
};

struct HealthMonitorOptions {
  // Detectors do not run before this many windows have completed — the
  // store-wide warm-up gate (per-detector EWMA warm-ups stack on top).
  std::uint64_t warmup_windows = 3;
  // Open incidents close after this many consecutive quiet windows.
  std::uint64_t close_after = 3;
};

class HealthMonitor {
 public:
  explicit HealthMonitor(const TimeSeriesStore& store,
                         HealthMonitorOptions opts = {});

  void add_detector(std::unique_ptr<Detector> detector);
  std::size_t detector_count() const noexcept { return detectors_.size(); }

  // Runs every detector against the store's newest completed window. Call
  // once per window, after TimeSeriesStore::advance()/ingest(). Returns the
  // indices (into incidents()) of incidents opened OR reopened this tick.
  std::vector<std::size_t> tick();

  const std::vector<Incident>& incidents() const noexcept {
    return incidents_;
  }
  std::size_t open_count() const;
  bool has_incident(std::string_view klass) const;
  void attach_explanation(std::size_t index, std::string text);
  // Replaces the incident's contributing-trace list (see Incident::trace_ids).
  void attach_traces(std::size_t index, std::vector<std::uint64_t> trace_ids);

  // Human-readable incident timeline.
  std::string render_text() const;
  // JSON document; schema linted by scripts/lint_metrics.py --incidents.
  std::string render_json() const;

 private:
  const TimeSeriesStore& store_;
  HealthMonitorOptions opts_;
  std::vector<std::unique_ptr<Detector>> detectors_;
  std::vector<Incident> incidents_;
  std::map<std::pair<std::string, std::string>, std::size_t> index_;
  std::vector<Finding> scratch_;  // reused across ticks
};

// --- built-in detectors ----------------------------------------------------

struct LossRateOptions {
  double min_rate = 0.005;      // fire at >= 0.5% per-window loss
  double critical_rate = 0.05;  // escalate to kCritical at >= 5%
  double min_transmissions = 50;  // ignore windows with less traffic
};
std::unique_ptr<Detector> make_loss_rate_detector(LossRateOptions opts = {});

struct StuckElementOptions {
  std::uint64_t windows = 2;  // consecutive in>0 / out==0 windows to fire
  double min_ingress = 1;     // per-window ingress to count as "nonzero"
};
std::unique_ptr<Detector> make_stuck_element_detector(
    StuckElementOptions opts = {});

struct FanoutAnomalyOptions {
  double tolerance = 0.002;      // |1 - delivered/expected| to fire
  double critical_ratio = 0.05;  // deviation for kCritical
  double min_expected = 64;      // per-window expected deliveries to judge
};
std::unique_ptr<Detector> make_fanout_anomaly_detector(
    FanoutAnomalyOptions opts = {});

struct ChurnLagOptions {
  double budget_seconds = 0.050;  // install-lag p99 budget
  double alpha = 0.5;             // EWMA smoothing over the p99 series
  std::size_t min_samples = 3;    // EWMA warm-up before any verdict
};
std::unique_ptr<Detector> make_churn_lag_detector(ChurnLagOptions opts = {});

// All four built-ins with default options.
void add_default_detectors(HealthMonitor& monitor);

}  // namespace elmo::obs
