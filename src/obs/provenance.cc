#include "obs/provenance.h"

#include <sstream>

namespace elmo::obs {

const char* to_string(RuleClass rule) {
  switch (rule) {
    case RuleClass::kNone:
      return "none";
    case RuleClass::kSource:
      return "source";
    case RuleClass::kPRule:
      return "p-rule";
    case RuleClass::kUpstream:
      return "upstream";
    case RuleClass::kSRule:
      return "s-rule";
    case RuleClass::kDefault:
      return "default p-rule";
    case RuleClass::kHostDeliver:
      return "deliver";
    case RuleClass::kHostDiscard:
      return "discard";
    case RuleClass::kDrop:
      return "drop";
  }
  return "?";
}

SendTrace make_trace(std::uint32_t group, std::uint32_t src_host,
                     std::size_t bytes) {
  SendTrace trace;
  trace.group = group;
  trace.src_host = src_host;
  ProvHop root;
  root.layer = topo::Layer::kHost;
  root.node = src_host;
  root.bytes_in = bytes;
  root.decision.rule = RuleClass::kSource;
  trace.hops.push_back(std::move(root));
  return trace;
}

std::size_t add_hop(SendTrace& trace, topo::Layer layer, std::uint32_t node,
                    std::size_t parent, std::size_t bytes_in) {
  auto& hops = trace.hops;
  const std::size_t index = hops.size();
  ProvHop hop;
  hop.layer = layer;
  hop.node = node;
  hop.parent = parent;
  hop.bytes_in = bytes_in;
  hops.push_back(std::move(hop));
  if (parent != kNoProvParent) hops[parent].children.push_back(index);
  return index;
}

void add_lost(SendTrace& trace, topo::Layer layer, std::uint32_t node,
              std::size_t parent) {
  auto& hops = trace.hops;
  const std::size_t index = hops.size();
  ProvHop hop;
  hop.layer = layer;
  hop.node = node;
  hop.parent = parent;
  hop.lost = true;
  hops.push_back(std::move(hop));
  if (parent != kNoProvParent) hops[parent].children.push_back(index);
}

std::size_t ProvenanceLog::begin_send(std::uint32_t group,
                                      std::uint32_t src_host,
                                      std::size_t bytes) {
  sends_.push_back(make_trace(group, src_host, bytes));
  open_ = kNoProvParent;
  return 0;
}

std::size_t ProvenanceLog::begin_hop(topo::Layer layer, std::uint32_t node,
                                     std::size_t parent,
                                     std::size_t bytes_in) {
  open_ = add_hop(sends_.back(), layer, node, parent, bytes_in);
  return open_;
}

void ProvenanceLog::lost_copy(topo::Layer layer, std::uint32_t node,
                              std::size_t parent) {
  add_lost(sends_.back(), layer, node, parent);
}

void ProvenanceLog::record_decision(const HopDecision& decision) {
  if (sends_.empty() || open_ == kNoProvParent) return;
  sends_.back().hops[open_].decision = decision;
}

void ProvenanceLog::append_trace(SendTrace&& trace) {
  sends_.push_back(std::move(trace));
  open_ = kNoProvParent;
}

void ProvenanceLog::clear() {
  sends_.clear();
  open_ = kNoProvParent;
}

namespace {

std::string node_name(topo::Layer layer, std::uint32_t node) {
  switch (layer) {
    case topo::Layer::kHost:
      return "host" + std::to_string(node);
    case topo::Layer::kLeaf:
      return "L" + std::to_string(node);
    case topo::Layer::kSpine:
      return "S" + std::to_string(node);
    case topo::Layer::kCore:
      return "C" + std::to_string(node);
  }
  return "?";
}

void render_hop(const SendTrace& trace, std::size_t index, std::size_t depth,
                std::ostringstream& out) {
  const auto& hop = trace.hops[index];
  out << std::string(2 * depth, ' ') << node_name(hop.layer, hop.node);
  if (hop.lost) {
    out << "  [lost in flight]\n";
    return;
  }
  if (index == 0) {
    out << "  [source, " << hop.bytes_in << "B on wire]\n";
  } else {
    out << "  [" << describe(hop.decision) << ", " << hop.bytes_in
        << "B in]\n";
  }
  for (const auto child : hop.children) {
    render_hop(trace, child, depth + 1, out);
  }
}

}  // namespace

std::string describe(const HopDecision& decision) {
  std::ostringstream out;
  out << to_string(decision.rule);
  if (decision.legacy) out << " (legacy)";
  if (decision.rule == RuleClass::kPRule && decision.prule_index >= 0) {
    out << " #" << decision.prule_index;
    if (decision.prule_shared) out << " shared";
  }
  if (decision.bitmap.any()) out << " ports=" << decision.bitmap.to_string();
  if (decision.rule == RuleClass::kUpstream) {
    if (decision.multipath) {
      out << " up=multipath";
    } else if (decision.up_bitmap.any()) {
      out << " up=" << decision.up_bitmap.to_string();
    }
  }
  if (decision.egress.any()) {
    out << " egress=" << decision.egress.to_string();
  }
  if (decision.popped_bytes > 0) {
    out << " popped " << decision.popped_bytes << "B";
  }
  if (decision.rule == RuleClass::kHostDeliver) {
    out << " (" << decision.vm_deliveries << " VMs)";
  }
  return out.str();
}

std::string render_trace(const SendTrace& trace) {
  std::ostringstream out;
  out << "send group=" << trace.group << " from host" << trace.src_host
      << " (" << (trace.hops.empty() ? 0 : trace.hops.size() - 1)
      << " hops)\n";
  if (!trace.hops.empty()) render_hop(trace, 0, 0, out);
  return out.str();
}

}  // namespace elmo::obs
