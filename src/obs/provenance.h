// Per-packet decision provenance (DESIGN.md §10).
//
// A ProvenanceLog is an optional, walk-attached record of every forwarding
// decision one multicast packet triggered on its way from the source
// hypervisor to each receiving host: per hop, the rule class that matched
// (parser-matched p-rule / upstream rule / group-table s-rule / default
// p-rule), the rule bitmap before and after masking (multipath collapses the
// upstream bitmap to one picked port), the Elmo header bytes the hop popped,
// and the egress set. The hops form a tree rooted at the source host — the
// packet's decision tree — which tools/explain joins against the delivery
// oracle to attribute every delivered copy (and every wasted one) to the
// encoding decision that caused it.
//
// Attachment is strictly opt-in and zero-cost when detached: a forwarding
// element with no sink pays one null-pointer test per process() call, and a
// fabric with no log pays one per work item; no bitmap is copied and no
// allocation happens unless a log is listening. The walk is single-threaded
// (FIFO event queue), so the log keeps one "open hop" cursor that the
// data-plane decision callback writes through.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "net/bitmap.h"
#include "topology/clos.h"

namespace elmo::obs {

// Index sentinel for "no parent hop" (the root of a send's decision tree).
inline constexpr std::size_t kNoProvParent = static_cast<std::size_t>(-1);

// Which pipeline stage produced a hop's emissions (paper §4.1 ingress
// control flow, in match priority order).
enum class RuleClass : std::uint8_t {
  kNone = 0,      // no decision recorded (root, or element without hook)
  kSource,        // the sending hypervisor (root of the tree)
  kPRule,         // parser-matched p-rule (or the sender's core bitmap)
  kUpstream,      // this layer's upstream rule
  kSRule,         // group-table lookup (s-rule spillover or legacy chip)
  kDefault,       // lossy default p-rule fallback
  kHostDeliver,   // hypervisor decapsulated and delivered to local VMs
  kHostDiscard,   // hypervisor had no local members (a wasted copy)
  kDrop,          // no rule matched, or the switch is down
};

const char* to_string(RuleClass rule);

// One forwarding decision, filled by the element that made it.
struct HopDecision {
  RuleClass rule = RuleClass::kNone;
  int prule_index = -1;     // matched p-rule's index in its layer section
  bool prule_shared = false;  // matched p-rule lists >1 switch id (merged)
  bool legacy = false;        // legacy chip: group-table only
  bool multipath = false;     // upstream rule deferred to ECMP/HULA masking
  net::PortBitmap bitmap;     // rule bitmap before masking (downstream side)
  net::PortBitmap up_bitmap;  // upstream rule's up bitmap before masking
  net::PortBitmap egress;     // ports actually replicated to, after masking
                              // (uplinks offset by the downstream port count)
  std::size_t popped_bytes = 0;   // Elmo header bytes removed at this hop
  std::uint32_t vm_deliveries = 0;  // host hops: local member VMs served
};

// Decision callback the data plane writes through; implemented by
// ProvenanceLog. Elements hold a nullable pointer to it (forwarding.h).
class ProvenanceSink {
 public:
  virtual ~ProvenanceSink() = default;
  virtual void record_decision(const HopDecision& decision) = 0;
};

// One node of a send's decision tree: a packet replica arriving somewhere.
struct ProvHop {
  topo::Layer layer = topo::Layer::kHost;
  std::uint32_t node = 0;         // switch / host id within the layer
  std::size_t parent = kNoProvParent;
  std::size_t bytes_in = 0;       // wire size of the copy on arrival
  bool lost = false;              // dropped by the loss model in flight
  HopDecision decision;
  std::vector<std::size_t> children;
};

// The decision tree of one multicast send. hops[0] is the source host.
struct SendTrace {
  std::uint32_t group = 0;
  std::uint32_t src_host = 0;
  std::vector<ProvHop> hops;
};

// Trace-building primitives shared by ProvenanceLog's live cursor and the
// batched walk, which assembles one SendTrace per send off to the side and
// appends finished traces in send order (DESIGN.md §12).
SendTrace make_trace(std::uint32_t group, std::uint32_t src_host,
                     std::size_t bytes);
std::size_t add_hop(SendTrace& trace, topo::Layer layer, std::uint32_t node,
                    std::size_t parent, std::size_t bytes_in);
void add_lost(SendTrace& trace, topo::Layer layer, std::uint32_t node,
              std::size_t parent);

class ProvenanceLog final : public ProvenanceSink {
 public:
  // Starts a new trace rooted at the sending host; returns the root index.
  std::size_t begin_send(std::uint32_t group, std::uint32_t src_host,
                         std::size_t bytes);

  // Appends a hop to the current trace, links it under `parent`, and opens
  // it for the next record_decision() call. Returns the hop's index.
  std::size_t begin_hop(topo::Layer layer, std::uint32_t node,
                        std::size_t parent, std::size_t bytes_in);

  // Records a copy the loss model dropped in flight to (`layer`, `node`).
  void lost_copy(topo::Layer layer, std::uint32_t node, std::size_t parent);

  // Writes into the hop most recently opened by begin_hop(). Ignored when
  // no trace or hop is open (elements driven outside a fabric walk).
  void record_decision(const HopDecision& decision) override;

  // Appends a trace assembled elsewhere (the batched walk builds per-send
  // traces locally and commits them in send order). Closes any open hop.
  void append_trace(SendTrace&& trace);

  const std::vector<SendTrace>& sends() const noexcept { return sends_; }
  bool empty() const noexcept { return sends_.empty(); }
  const SendTrace& last() const { return sends_.back(); }

  void clear();

 private:
  std::vector<SendTrace> sends_;
  std::size_t open_ = kNoProvParent;  // hop index the next decision targets
};

// Compact one-line description of a decision ("default p-rule ports=0110,
// popped 12B") shared by the plain and the oracle-annotated renderers.
std::string describe(const HopDecision& decision);

// Plain-text decision tree (no oracle join; tools/explain renders the
// annotated version via verify::SendExplanation).
std::string render_trace(const SendTrace& trace);

}  // namespace elmo::obs
