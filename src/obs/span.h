// RAII wall-clock span: observes elapsed seconds into a histogram on
// destruction. Costs two steady_clock reads when the registry is enabled and
// nothing (not even a clock read) when it is disabled at construction.
//
// The named constructor additionally mirrors the span onto the process-wide
// obs::Tracer (the "phases" lane of the unified timeline, DESIGN.md §15)
// when one is installed via set_global_tracer. With no tracer installed the
// extra cost is one relaxed atomic load — the documented zero-cost disabled
// path is preserved.
#pragma once

#include <chrono>
#include <optional>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace elmo::obs {

class Span {
 public:
  Span(MetricsRegistry& reg, MetricsRegistry::Id hist) noexcept
      : reg_{&reg}, hist_{hist}, armed_{reg.enabled()} {
    if (armed_) start_ = std::chrono::steady_clock::now();
  }

  // Tracer-emitting variant: `name` must be a string literal. The trace
  // span joins `parent`'s trace when given, else starts a fresh one.
  Span(MetricsRegistry& reg, MetricsRegistry::Id hist, const char* name,
       TraceContext parent = {}) noexcept
      : reg_{&reg}, hist_{hist}, armed_{reg.enabled()} {
    if (Tracer* t = global_tracer(); t != nullptr) {
      tracer_ = t;
      tctx_ = t->begin_span(name, TraceLane::kPhase, parent);
    }
    if (armed_) start_ = std::chrono::steady_clock::now();
  }

  ~Span() { finish(); }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // Ends the span early; subsequent destruction is a no-op.
  double finish() noexcept {
    if (tracer_ != nullptr) {
      tracer_->end_span(tctx_);
      tracer_ = nullptr;
    }
    if (!armed_) return 0;
    armed_ = false;
    const auto elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    reg_->observe(hist_, elapsed);
    return elapsed;
  }

 private:
  MetricsRegistry* reg_;
  MetricsRegistry::Id hist_;
  bool armed_;
  Tracer* tracer_ = nullptr;
  TraceContext tctx_{};
  std::chrono::steady_clock::time_point start_{};
};

// Arms a phase span whenever anyone is listening: the global registry (for
// the histogram) or the global tracer (for the timeline). With both off
// this is two relaxed loads and no clock read.
inline void arm_phase_span(std::optional<Span>& span, const char* name,
                           MetricsRegistry::Id hist,
                           TraceContext parent = {}) noexcept {
  auto& reg = MetricsRegistry::global();
  if (reg.enabled() || global_tracer() != nullptr) {
    span.emplace(reg, hist, name, parent);
  }
}

}  // namespace elmo::obs
