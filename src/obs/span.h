// RAII wall-clock span: observes elapsed seconds into a histogram on
// destruction. Costs two steady_clock reads when the registry is enabled and
// nothing (not even a clock read) when it is disabled at construction.
#pragma once

#include <chrono>

#include "obs/metrics.h"

namespace elmo::obs {

class Span {
 public:
  Span(MetricsRegistry& reg, MetricsRegistry::Id hist) noexcept
      : reg_{&reg}, hist_{hist}, armed_{reg.enabled()} {
    if (armed_) start_ = std::chrono::steady_clock::now();
  }
  ~Span() { finish(); }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // Ends the span early; subsequent destruction is a no-op.
  double finish() noexcept {
    if (!armed_) return 0;
    armed_ = false;
    const auto elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    reg_->observe(hist_, elapsed);
    return elapsed;
  }

 private:
  MetricsRegistry* reg_;
  MetricsRegistry::Id hist_;
  bool armed_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace elmo::obs
