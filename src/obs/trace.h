// Causal tracing across the control and data planes (DESIGN.md §15).
//
// obs::Tracer is a bounded, mutex-guarded span store with explicit causal
// structure: every record carries a trace ID (one per churn event / flush /
// tool phase), a span ID, and a parent-span link, so a join can be followed
// from ingest through incremental re-encode, delta diff, p4rt framing and
// per-switch install to the first data-plane delivery that proves the new
// tree is live (the join-to-first-packet "time-to-effect" loop closed by
// sim::Fabric).
//
// Design constraints, mirroring the FlightRecorder (DESIGN.md §9):
//   * Opt-in observer: producers hold a raw `Tracer*` and test it for null
//     before doing any work — a detached tracer costs one branch.
//   * Bounded: at most `max_events` records are kept. A begin_span on a
//     full buffer returns a context with span_id == 0 (the drop sentinel)
//     and bumps `dropped`; children recorded under a dropped parent are
//     counted as `orphans` and exported parentless so the timeline stays
//     well-formed. end_span on a dropped context is a no-op.
//   * Names and attribute keys are `const char*` string literals; attrs are
//     numeric and capped at kMaxTraceAttrs per record — recording never
//     allocates beyond the (reserved) record vector.
//
// Export is chrome://tracing JSON on process id 2 (the FlightRecorder owns
// pid 1), one thread lane per TraceLane, with "s"/"f" flow events carrying
// the cross-lane causal edges. sim::unified_trace_json (flight_recorder.h)
// merges both stores onto a shared clock for the single-timeline view.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <mutex>
#include <string>
#include <vector>

namespace elmo::obs {

// A (trace, span) pair that travels with the work. span_id == 0 with a
// non-zero trace_id marks a span that was dropped by the bounded buffer —
// safe to pass around, ignored by end_span, flagged by children as orphan.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;

  explicit operator bool() const noexcept { return trace_id != 0; }
};

// Timeline lanes (chrome://tracing tids under pid 2). Control-plane event
// handling, wire framing, per-switch installs, data-plane effects, and the
// pre-existing obs::Span phase spans each get their own swimlane.
enum class TraceLane : std::uint8_t {
  kControl = 0,
  kWire = 1,
  kInstall = 2,
  kData = 3,
  kPhase = 4,
};
inline constexpr std::size_t kTraceLaneCount = 5;
const char* to_string(TraceLane lane) noexcept;

// Numeric key/value annotation; `key` must be a string literal (or have
// static storage duration) — the tracer stores the pointer, not a copy.
struct TraceAttr {
  const char* key = "";
  double value = 0;
};
inline constexpr std::size_t kMaxTraceAttrs = 4;

// One closed time-to-effect measurement (recorded by sim::Fabric when a
// data-plane delivery closes a join/leave watch; see fabric.h).
struct TteRecord {
  std::uint64_t trace_id = 0;  // the churn event's trace
  bool leave = false;          // false: join-to-first-delivery
  std::uint32_t group = 0;     // group address
  std::uint32_t host = 0;
  double tte_seconds = 0;      // leave with no stale delivery: 0
  bool stale_seen = false;     // leave only: a stale copy was delivered
};

// Everything the tracer remembers about one record. Public so tools
// (trace_query) can snapshot and re-join without reparsing JSON.
struct SpanRecord {
  enum class Kind : std::uint8_t { kSpan, kInstant, kFlow };

  Kind kind = Kind::kSpan;
  TraceLane lane = TraceLane::kControl;
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;      // spans/instants: own id; flows: flow id
  std::uint64_t parent_span = 0;  // spans/instants: parent; flows: TO span
  std::uint64_t link_span = 0;    // flows: FROM span
  TraceLane link_lane = TraceLane::kControl;  // flows: FROM lane
  const char* name = "";
  double ts_us = 0;
  double dur_us = -1;  // spans only; -1 while still open
  bool orphan = false;  // parent was dropped before this was recorded
  std::uint8_t nattrs = 0;
  TraceAttr attrs[kMaxTraceAttrs];
};

struct TracerStats {
  std::uint64_t spans = 0;
  std::uint64_t instants = 0;
  std::uint64_t flows = 0;
  std::uint64_t dropped = 0;  // records refused because the buffer was full
  std::uint64_t orphans = 0;  // children recorded under a dropped parent
  std::uint64_t open_spans = 0;
  std::uint64_t max_events = 0;
};

class Tracer {
 public:
  explicit Tracer(std::size_t max_events = kDefaultMaxEvents);

  // Microseconds since this tracer was constructed (steady clock).
  double now_us() const noexcept;
  std::chrono::steady_clock::time_point origin() const noexcept {
    return origin_;
  }

  // Opens a span. With a null parent (trace_id == 0) a fresh trace is
  // minted and the span is its root; otherwise the span joins the parent's
  // trace. Returns the context to thread through child work and end_span.
  TraceContext begin_span(const char* name, TraceLane lane,
                          TraceContext parent = {},
                          std::initializer_list<TraceAttr> attrs = {});
  void end_span(const TraceContext& span);

  // Point-in-time event in `parent`'s trace (or a fresh trace if null).
  // Returns a context usable as a flow endpoint.
  TraceContext instant(const char* name, TraceLane lane,
                       TraceContext parent = {},
                       std::initializer_list<TraceAttr> attrs = {});

  // Cross-lane causal edge `from` -> `to` (chrome s/f flow event pair).
  // Both endpoints must name recorded spans/instants; dropped endpoints
  // (span_id == 0) are recorded as orphaned so accounting still reconciles.
  void flow(const TraceContext& from, TraceLane from_lane,
            const TraceContext& to, TraceLane to_lane);

  TracerStats stats() const;
  std::vector<SpanRecord> snapshot() const;
  void clear();

  // Tracer-only chrome://tracing document (pid 2). For the merged
  // control+data timeline use sim::unified_trace_json.
  std::string chrome_trace_json() const;
  // Appends this tracer's metadata + events (pid 2) to an in-progress
  // chrome JSON event array; `first` tracks comma placement and `ts_offset_us`
  // shifts every timestamp (clock alignment for merged exports).
  void append_chrome_events(std::string& out, bool& first,
                            double ts_offset_us) const;

  static constexpr std::size_t kDefaultMaxEvents = 1 << 16;

 private:
  TraceContext record(SpanRecord::Kind kind, const char* name, TraceLane lane,
                      TraceContext parent,
                      std::initializer_list<TraceAttr> attrs);

  mutable std::mutex mu_;
  std::vector<SpanRecord> records_;
  std::size_t max_events_;
  std::uint64_t next_trace_ = 0;
  std::uint64_t next_span_ = 0;
  std::uint64_t spans_ = 0;
  std::uint64_t instants_ = 0;
  std::uint64_t flows_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t orphans_ = 0;
  std::uint64_t open_ = 0;
  std::chrono::steady_clock::time_point origin_;
};

// Process-wide tracer hook for obs::Span's tracer-emitting constructor
// (span.h): tools that want controller/cluster/pool phase spans on the
// unified timeline install their Tracer here for the run. Null by default;
// the disabled path stays one relaxed atomic load.
void set_global_tracer(Tracer* tracer) noexcept;
Tracer* global_tracer() noexcept;

}  // namespace elmo::obs
