#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>

namespace elmo::obs {

namespace {

std::atomic<Tracer*> g_tracer{nullptr};

// chrome://tracing wants decimal microseconds; fixed 3 digits keeps the
// files diffable (same convention as the FlightRecorder).
void append_us(std::string& out, double us) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", us);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

void append_attr_value(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  out += buf;
}

}  // namespace

const char* to_string(TraceLane lane) noexcept {
  switch (lane) {
    case TraceLane::kControl: return "control";
    case TraceLane::kWire: return "wire";
    case TraceLane::kInstall: return "install";
    case TraceLane::kData: return "data";
    case TraceLane::kPhase: return "phases";
  }
  return "?";
}

Tracer::Tracer(std::size_t max_events)
    : max_events_{max_events == 0 ? 1 : max_events},
      origin_{std::chrono::steady_clock::now()} {
  records_.reserve(std::min<std::size_t>(max_events_, 4096));
}

double Tracer::now_us() const noexcept {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - origin_)
      .count();
}

TraceContext Tracer::record(SpanRecord::Kind kind, const char* name,
                            TraceLane lane, TraceContext parent,
                            std::initializer_list<TraceAttr> attrs) {
  const double now = now_us();
  std::lock_guard<std::mutex> lock{mu_};
  const std::uint64_t trace =
      parent.trace_id != 0 ? parent.trace_id : ++next_trace_;
  if (records_.size() >= max_events_) {
    ++dropped_;
    return TraceContext{trace, 0};
  }
  SpanRecord rec;
  rec.kind = kind;
  rec.lane = lane;
  rec.trace_id = trace;
  rec.span_id = ++next_span_;
  rec.name = name;
  rec.ts_us = now;
  rec.dur_us = kind == SpanRecord::Kind::kSpan ? -1 : 0;
  if (parent.trace_id != 0 && parent.span_id == 0) {
    rec.orphan = true;  // parent fell to the bounded buffer
    ++orphans_;
  } else {
    rec.parent_span = parent.span_id;
  }
  for (const auto& a : attrs) {
    if (rec.nattrs >= kMaxTraceAttrs) break;
    rec.attrs[rec.nattrs++] = a;
  }
  if (kind == SpanRecord::Kind::kSpan) {
    ++spans_;
    ++open_;
  } else {
    ++instants_;
  }
  records_.push_back(rec);
  return TraceContext{trace, rec.span_id};
}

TraceContext Tracer::begin_span(const char* name, TraceLane lane,
                                TraceContext parent,
                                std::initializer_list<TraceAttr> attrs) {
  return record(SpanRecord::Kind::kSpan, name, lane, parent, attrs);
}

void Tracer::end_span(const TraceContext& span) {
  if (span.span_id == 0) return;  // dropped at begin; already accounted
  const double now = now_us();
  std::lock_guard<std::mutex> lock{mu_};
  // Spans close in near-LIFO order; scan from the tail.
  for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
    if (it->span_id == span.span_id) {
      if (it->kind == SpanRecord::Kind::kSpan && it->dur_us < 0) {
        it->dur_us = now - it->ts_us;
        --open_;
      }
      return;
    }
  }
}

TraceContext Tracer::instant(const char* name, TraceLane lane,
                             TraceContext parent,
                             std::initializer_list<TraceAttr> attrs) {
  return record(SpanRecord::Kind::kInstant, name, lane, parent, attrs);
}

void Tracer::flow(const TraceContext& from, TraceLane from_lane,
                  const TraceContext& to, TraceLane to_lane) {
  const double now = now_us();
  std::lock_guard<std::mutex> lock{mu_};
  if (records_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  SpanRecord rec;
  rec.kind = SpanRecord::Kind::kFlow;
  rec.lane = to_lane;
  rec.link_lane = from_lane;
  rec.trace_id = to.trace_id != 0 ? to.trace_id : from.trace_id;
  rec.span_id = ++next_span_;  // doubles as the chrome flow id
  rec.parent_span = to.span_id;
  rec.link_span = from.span_id;
  rec.name = "flow";
  rec.ts_us = now;
  rec.dur_us = 0;
  if (from.span_id == 0 || to.span_id == 0) {
    rec.orphan = true;  // an endpoint fell to the bounded buffer
    ++orphans_;
  }
  ++flows_;
  records_.push_back(rec);
}

TracerStats Tracer::stats() const {
  std::lock_guard<std::mutex> lock{mu_};
  TracerStats s;
  s.spans = spans_;
  s.instants = instants_;
  s.flows = flows_;
  s.dropped = dropped_;
  s.orphans = orphans_;
  s.open_spans = open_;
  s.max_events = max_events_;
  return s;
}

std::vector<SpanRecord> Tracer::snapshot() const {
  std::lock_guard<std::mutex> lock{mu_};
  return records_;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock{mu_};
  records_.clear();
  spans_ = instants_ = flows_ = dropped_ = orphans_ = open_ = 0;
}

void Tracer::append_chrome_events(std::string& out, bool& first,
                                  double ts_offset_us) const {
  std::lock_guard<std::mutex> lock{mu_};
  const double now = now_us();
  auto emit = [&](const std::string& event) {
    if (!first) out += ",\n";
    first = false;
    out += "  ";
    out += event;
  };

  emit("{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 2, "
       "\"args\": {\"name\": \"elmo_trace\"}}");
  for (std::size_t lane = 0; lane < kTraceLaneCount; ++lane) {
    std::string ev = "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 2, "
                     "\"tid\": ";
    append_u64(ev, lane);
    ev += ", \"args\": {\"name\": \"";
    ev += to_string(static_cast<TraceLane>(lane));
    ev += "\"}}";
    emit(ev);
  }
  {
    // Accounting record the trace linter reconciles against the exported
    // event counts (scripts/lint_trace.py).
    std::string ev =
        "{\"name\": \"elmo_tracer_stats\", \"ph\": \"M\", \"pid\": 2, "
        "\"args\": {\"spans\": ";
    append_u64(ev, spans_);
    ev += ", \"instants\": ";
    append_u64(ev, instants_);
    ev += ", \"flows\": ";
    append_u64(ev, flows_);
    ev += ", \"dropped\": ";
    append_u64(ev, dropped_);
    ev += ", \"orphans\": ";
    append_u64(ev, orphans_);
    ev += ", \"open_spans\": ";
    append_u64(ev, open_);
    ev += ", \"max_events\": ";
    append_u64(ev, max_events_);
    ev += "}}";
    emit(ev);
  }

  auto common_args = [&](std::string& ev, const SpanRecord& rec) {
    ev += "\"trace\": ";
    append_u64(ev, rec.trace_id);
    ev += ", \"span\": ";
    append_u64(ev, rec.span_id);
    ev += ", \"parent\": ";
    append_u64(ev, rec.parent_span);
    if (rec.orphan) ev += ", \"orphan\": 1";
    for (std::uint8_t i = 0; i < rec.nattrs; ++i) {
      ev += ", \"";
      ev += rec.attrs[i].key;
      ev += "\": ";
      append_attr_value(ev, rec.attrs[i].value);
    }
  };

  for (const auto& rec : records_) {
    std::string ev = "{\"name\": \"";
    ev += rec.name;
    ev += "\", ";
    switch (rec.kind) {
      case SpanRecord::Kind::kSpan: {
        const bool open = rec.dur_us < 0;
        ev += "\"ph\": \"X\", \"pid\": 2, \"tid\": ";
        append_u64(ev, static_cast<std::uint64_t>(rec.lane));
        ev += ", \"ts\": ";
        append_us(ev, rec.ts_us + ts_offset_us);
        ev += ", \"dur\": ";
        append_us(ev, open ? now - rec.ts_us : rec.dur_us);
        ev += ", \"args\": {";
        common_args(ev, rec);
        if (open) ev += ", \"open\": 1";
        ev += "}}";
        break;
      }
      case SpanRecord::Kind::kInstant: {
        ev += "\"ph\": \"i\", \"s\": \"t\", \"pid\": 2, \"tid\": ";
        append_u64(ev, static_cast<std::uint64_t>(rec.lane));
        ev += ", \"ts\": ";
        append_us(ev, rec.ts_us + ts_offset_us);
        ev += ", \"args\": {";
        common_args(ev, rec);
        ev += "}}";
        break;
      }
      case SpanRecord::Kind::kFlow: {
        // Causal edge: "s" on the source lane, "f" on the destination lane,
        // paired by id (= the flow record's span id).
        std::string base = "\"cat\": \"causal\", \"id\": ";
        append_u64(base, rec.span_id);
        base += ", \"pid\": 2, \"ts\": ";
        append_us(base, rec.ts_us + ts_offset_us);
        base += ", \"args\": {\"trace\": ";
        append_u64(base, rec.trace_id);
        base += ", \"from_span\": ";
        append_u64(base, rec.link_span);
        base += ", \"to_span\": ";
        append_u64(base, rec.parent_span);
        if (rec.orphan) base += ", \"orphan\": 1";
        base += "}}";

        std::string s_ev = ev;  // "{\"name\": \"flow\", "
        s_ev += "\"ph\": \"s\", \"tid\": ";
        append_u64(s_ev, static_cast<std::uint64_t>(rec.link_lane));
        s_ev += ", ";
        s_ev += base;
        emit(s_ev);

        ev += "\"ph\": \"f\", \"bp\": \"e\", \"tid\": ";
        append_u64(ev, static_cast<std::uint64_t>(rec.lane));
        ev += ", ";
        ev += base;
        break;
      }
    }
    emit(ev);
  }
}

std::string Tracer::chrome_trace_json() const {
  std::string out = "{\"traceEvents\": [\n";
  bool first = true;
  append_chrome_events(out, first, 0.0);
  out += "\n]}\n";
  return out;
}

void set_global_tracer(Tracer* tracer) noexcept {
  g_tracer.store(tracer, std::memory_order_relaxed);
}

Tracer* global_tracer() noexcept {
  return g_tracer.load(std::memory_order_relaxed);
}

}  // namespace elmo::obs
