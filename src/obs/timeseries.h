// Fixed-capacity metric time series for health monitoring (DESIGN.md §14).
//
// A TimeSeriesStore keeps the last K samples of any number of named scalar
// series in per-series ring buffers. Values arrive in "sampling windows":
// the producer appends one value per series (directly via append(), or for
// a whole MetricsRegistry scrape via ingest()), then closes the window with
// advance(). Every sample carries the monotonic index of the window it was
// taken in, so consumers (HealthMonitor detectors, tools/metrics_dump
// --watch) can compute per-window deltas, rates, and EWMAs without caring
// how often the producer ticks.
//
// Hot-path contract: once the series set is stable, append() performs a
// transparent (no std::string construction) hash lookup and one ring write
// — no allocation. Only the first sighting of a new series name allocates
// (the ring buffer and the map node). Rings never grow or shrink; capacity
// is fixed at construction.
//
// The store is NOT thread-safe; concurrent producers must scrape through a
// thread-safe MetricsRegistry snapshot and ingest() from a single sampling
// thread (that is how the TSan-covered health tests drive it).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace elmo::obs {

struct Snapshot;

// One buffered observation of one series.
struct TsSample {
  std::uint64_t window = 0;  // monotonic sampling-window index
  double t = 0;              // seconds since store creation, at append time
  double value = 0;
};

class TimeSeriesStore {
 public:
  explicit TimeSeriesStore(std::size_t capacity = 64);

  std::size_t capacity() const noexcept { return capacity_; }
  // Completed sampling windows. Samples appended now are stamped with this
  // index; advance() increments it.
  std::uint64_t window() const noexcept { return window_; }
  std::size_t series_count() const noexcept { return series_.size(); }

  // Records `value` for `name` under the current window. A second append to
  // the same series within one window overwrites the sample (keeping its
  // timestamp), so re-scrapes within a window stay idempotent.
  void append(std::string_view name, double value);

  // Closes the current sampling window; returns the index of the window
  // that just completed.
  std::uint64_t advance() { return window_++; }

  // Scrapes `snap` into the store — one append per counter/gauge (value)
  // and histogram (observation count) — then closes the window. Returns
  // the completed window index.
  std::uint64_t ingest(const Snapshot& snap);

  // --- queries (all keyed by series name; allocation-free lookups) --------

  // Samples currently buffered for `name` (0 when unknown).
  std::size_t samples(std::string_view name) const;
  // The newest sample, or the one `back` windows of history earlier
  // (back == 0 is the newest). nullptr when out of range.
  const TsSample* last(std::string_view name) const { return at(name, 0); }
  const TsSample* at(std::string_view name, std::size_t back) const;

  // value(newest) - value(newest - back). nullopt without enough samples.
  std::optional<double> delta(std::string_view name,
                              std::size_t back = 1) const;
  // delta over the wall-clock span of the same two samples, per second.
  std::optional<double> rate(std::string_view name,
                             std::size_t back = 1) const;
  // EWMA over the buffered sample VALUES, oldest to newest:
  //   e_0 = v_0;  e_i = alpha * v_i + (1 - alpha) * e_{i-1}.
  // nullopt until at least `min_samples` samples are buffered (the warm-up
  // gate HealthMonitor detectors rely on).
  std::optional<double> ewma_value(std::string_view name, double alpha,
                                   std::size_t min_samples = 2) const;
  // Same EWMA over consecutive sample DELTAS (v_i - v_{i-1}).
  std::optional<double> ewma_delta(std::string_view name, double alpha,
                                   std::size_t min_samples = 2) const;

  // All series names, sorted. Allocates; not for the sampling path.
  std::vector<std::string> names() const;

 private:
  struct Ring {
    std::vector<TsSample> buf;  // fixed capacity, set at creation
    std::size_t head = 0;       // next write slot
    std::size_t count = 0;      // live samples (<= buf.size())

    void push(const TsSample& s) {
      buf[head] = s;
      head = (head + 1) % buf.size();
      if (count < buf.size()) ++count;
    }
    // back == 0 is the newest sample; precondition back < count.
    const TsSample& from_newest(std::size_t back) const {
      return buf[(head + buf.size() - 1 - back) % buf.size()];
    }
    TsSample& newest() { return buf[(head + buf.size() - 1) % buf.size()]; }
  };

  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };

  double now_seconds() const;
  const Ring* find(std::string_view name) const;

  std::size_t capacity_;
  std::uint64_t window_ = 0;
  std::chrono::steady_clock::time_point epoch_;
  // unique_ptr payloads keep Ring addresses stable across rehashes, so the
  // sampling path can cache nothing and still be allocation-free.
  std::unordered_map<std::string, std::unique_ptr<Ring>, StringHash,
                     std::equal_to<>>
      series_;
};

}  // namespace elmo::obs
