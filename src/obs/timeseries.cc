#include "obs/timeseries.h"

#include <algorithm>

#include "obs/metrics.h"

namespace elmo::obs {

TimeSeriesStore::TimeSeriesStore(std::size_t capacity)
    : capacity_{std::max<std::size_t>(capacity, 2)},
      epoch_{std::chrono::steady_clock::now()} {}

double TimeSeriesStore::now_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

void TimeSeriesStore::append(std::string_view name, double value) {
  auto it = series_.find(name);
  if (it == series_.end()) {
    auto ring = std::make_unique<Ring>();
    ring->buf.resize(capacity_);
    it = series_.emplace(std::string{name}, std::move(ring)).first;
  }
  Ring& ring = *it->second;
  if (ring.count > 0 && ring.newest().window == window_) {
    ring.newest().value = value;  // re-scrape within one window
    return;
  }
  ring.push(TsSample{window_, now_seconds(), value});
}

std::uint64_t TimeSeriesStore::ingest(const Snapshot& snap) {
  for (const auto& m : snap.metrics) {
    const double value = m.kind == MetricKind::kHistogram
                             ? static_cast<double>(m.observations)
                             : m.value;
    append(m.name, value);
  }
  return advance();
}

const TimeSeriesStore::Ring* TimeSeriesStore::find(
    std::string_view name) const {
  const auto it = series_.find(name);
  return it == series_.end() ? nullptr : it->second.get();
}

std::size_t TimeSeriesStore::samples(std::string_view name) const {
  const auto* ring = find(name);
  return ring == nullptr ? 0 : ring->count;
}

const TsSample* TimeSeriesStore::at(std::string_view name,
                                    std::size_t back) const {
  const auto* ring = find(name);
  if (ring == nullptr || back >= ring->count) return nullptr;
  return &ring->from_newest(back);
}

std::optional<double> TimeSeriesStore::delta(std::string_view name,
                                             std::size_t back) const {
  const auto* ring = find(name);
  if (ring == nullptr || back == 0 || back >= ring->count) return std::nullopt;
  return ring->from_newest(0).value - ring->from_newest(back).value;
}

std::optional<double> TimeSeriesStore::rate(std::string_view name,
                                            std::size_t back) const {
  const auto* ring = find(name);
  if (ring == nullptr || back == 0 || back >= ring->count) return std::nullopt;
  const auto& a = ring->from_newest(back);
  const auto& b = ring->from_newest(0);
  const double dt = b.t - a.t;
  if (dt <= 0) return std::nullopt;
  return (b.value - a.value) / dt;
}

std::optional<double> TimeSeriesStore::ewma_value(
    std::string_view name, double alpha, std::size_t min_samples) const {
  const auto* ring = find(name);
  if (ring == nullptr || ring->count < std::max<std::size_t>(min_samples, 1)) {
    return std::nullopt;
  }
  double e = ring->from_newest(ring->count - 1).value;
  for (std::size_t i = ring->count - 1; i-- > 0;) {
    e = alpha * ring->from_newest(i).value + (1.0 - alpha) * e;
  }
  return e;
}

std::optional<double> TimeSeriesStore::ewma_delta(
    std::string_view name, double alpha, std::size_t min_samples) const {
  const auto* ring = find(name);
  if (ring == nullptr || ring->count < 2 ||
      ring->count < std::max<std::size_t>(min_samples, 2)) {
    return std::nullopt;
  }
  auto delta_at = [&](std::size_t back) {  // back indexes the NEWER sample
    return ring->from_newest(back).value - ring->from_newest(back + 1).value;
  };
  double e = delta_at(ring->count - 2);
  for (std::size_t i = ring->count - 2; i-- > 0;) {
    e = alpha * delta_at(i) + (1.0 - alpha) * e;
  }
  return e;
}

std::vector<std::string> TimeSeriesStore::names() const {
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [name, ring] : series_) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace elmo::obs
