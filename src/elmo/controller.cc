#include "elmo/controller.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <optional>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/span.h"
#include "util/rng.h"

namespace elmo {
namespace {

// Controller telemetry (DESIGN.md §9): phase histograms feed the spans around
// create_groups, the counters the membership-churn entry points. Registered
// once on first use.
struct ControllerMetricIds {
  obs::MetricsRegistry::Id encode_seconds;
  obs::MetricsRegistry::Id merge_seconds;
  obs::MetricsRegistry::Id tree_seconds;
  obs::MetricsRegistry::Id groups_created;
  obs::MetricsRegistry::Id speculative_commits;
  obs::MetricsRegistry::Id serial_reencodes;
  obs::MetricsRegistry::Id joins;
  obs::MetricsRegistry::Id leaves;
  obs::MetricsRegistry::Id failures;
  ControllerMetricIds() {
    auto& reg = obs::MetricsRegistry::global();
    encode_seconds = reg.histogram(
        "elmo_controller_encode_seconds", obs::latency_bounds(),
        "Parallel speculative encode phase of create_groups, per batch");
    merge_seconds = reg.histogram(
        "elmo_controller_merge_seconds", obs::latency_bounds(),
        "Deterministic in-order merge phase of create_groups, per batch");
    tree_seconds = reg.histogram(
        "elmo_controller_tree_seconds", obs::latency_bounds(),
        "Multicast tree construction, per group");
    groups_created =
        reg.counter("elmo_controller_groups_created_total", "Groups created");
    speculative_commits = reg.counter(
        "elmo_controller_speculative_commits_total",
        "Bulk-encode groups whose speculative s-rule reservations committed");
    serial_reencodes = reg.counter(
        "elmo_controller_serial_reencodes_total",
        "Bulk-encode groups that fell back to a serial re-encode");
    joins = reg.counter("elmo_controller_joins_total", "Membership joins");
    leaves = reg.counter("elmo_controller_leaves_total", "Membership leaves");
    failures = reg.counter("elmo_controller_failures_total",
                           "Switch failures handled (spine or core)");
  }
};

ControllerMetricIds& controller_metric_ids() {
  static ControllerMetricIds ids;
  return ids;
}

std::uint64_t group_flow_hash(GroupId group) {
  std::uint64_t s = 0x9e3779b97f4a7c15ULL ^ (static_cast<std::uint64_t>(group) << 1);
  return util::splitmix64(s);
}

// Per-layer s-rule maps for diffing (logical switch id -> bitmap).
std::map<std::uint32_t, const net::PortBitmap*> srule_map(
    const LayerEncoding& layer) {
  std::map<std::uint32_t, const net::PortBitmap*> out;
  for (const auto& [id, bitmap] : layer.s_rules) out.emplace(id, &bitmap);
  return out;
}

}  // namespace

std::vector<topo::HostId> GroupState::receiver_hosts() const {
  std::vector<topo::HostId> hosts;
  hosts.reserve(members.size());
  for (const auto& m : members) {
    if (can_receive(m.role)) hosts.push_back(m.host);
  }
  return hosts;
}

std::vector<topo::HostId> GroupState::sender_hosts() const {
  std::vector<topo::HostId> hosts;
  hosts.reserve(members.size());
  for (const auto& m : members) {
    if (can_send(m.role)) hosts.push_back(m.host);
  }
  return hosts;
}

Controller::Controller(const topo::ClosTopology& topology,
                       const EncoderConfig& config, UpdateSink* sink)
    : topo_{&topology},
      encoder_{make_encoder(topology, config)},
      srule_space_{topology, config.srule_capacity},
      sink_{sink} {}

GroupState& Controller::state(GroupId group) {
  if (group >= groups_.size() || !groups_[group]) {
    throw std::out_of_range{"Controller: unknown group " +
                            std::to_string(group)};
  }
  return *groups_[group];
}

const GroupState& Controller::group(GroupId group) const {
  return const_cast<Controller*>(this)->state(group);
}

bool Controller::has_group(GroupId group) const {
  return group < groups_.size() && groups_[group].has_value();
}

void Controller::reencode(GroupState& g) {
  if (g.tree) {
    encoder_->release(g.encoding, *g.tree, srule_space_);
  }
  const auto receivers = g.receiver_hosts();
  g.tree = std::make_unique<MulticastTree>(*topo_, receivers);
  g.encoding = encoder_->encode(
      *g.tree, &srule_space_,
      legacy_leaves_.empty() ? nullptr : &legacy_leaves_);
}

void Controller::emit_srule_diffs(const GroupEncoding& before,
                                  const GroupEncoding& after) {
  if (sink_ == nullptr) return;
  auto diff = [&](const LayerEncoding& b, const LayerEncoding& a,
                  auto&& update) {
    const auto before_map = srule_map(b);
    const auto after_map = srule_map(a);
    for (const auto& [id, bitmap] : before_map) {
      const auto it = after_map.find(id);
      if (it == after_map.end() || !(*it->second == *bitmap)) update(id);
    }
    for (const auto& [id, bitmap] : after_map) {
      (void)bitmap;
      if (!before_map.contains(id)) update(id);
    }
  };
  diff(before.spine, after.spine, [&](std::uint32_t pod) {
    // A logical-spine s-rule lives in every physical spine of the pod.
    for (std::size_t plane = 0; plane < topo_->params().spines_per_pod;
         ++plane) {
      sink_->network_switch_update(topo::Layer::kSpine,
                                   topo_->spine_at(pod, plane));
    }
  });
  diff(before.leaf, after.leaf, [&](std::uint32_t leaf) {
    sink_->network_switch_update(topo::Layer::kLeaf, leaf);
  });
}

void Controller::notify_senders(const GroupState& g,
                                std::unordered_set<topo::HostId>& touched) {
  for (const auto& m : g.members) {
    if (can_send(m.role)) touched.insert(m.host);
  }
}

GroupId Controller::create_group(std::uint32_t tenant,
                                 std::span<const Member> members) {
  const auto id = static_cast<GroupId>(groups_.size());
  GroupState g;
  g.tenant = tenant;
  g.address = net::Ipv4Address::multicast_group(id);
  g.members.assign(members.begin(), members.end());
  groups_.emplace_back(std::move(g));
  ++live_groups_;
  ELMO_METRIC(reg.add(controller_metric_ids().groups_created));
  reencode(*groups_.back());

  if (sink_ != nullptr) {
    // Initial installation: every member hypervisor gets its flow rule;
    // senders additionally receive the header template (same update).
    std::unordered_set<topo::HostId> touched;
    for (const auto& m : groups_.back()->members) touched.insert(m.host);
    for (const auto host : touched) sink_->hypervisor_update(host);
    emit_srule_diffs(GroupEncoding{}, groups_.back()->encoding);
  }
  return id;
}

std::vector<GroupId> Controller::create_groups(
    std::span<const GroupSpec> specs, util::ThreadPool* pool,
    BulkLoadStats* stats) {
  using clock = std::chrono::steady_clock;
  std::vector<GroupId> ids;
  ids.reserve(specs.size());
  if (specs.empty()) return ids;

  const auto base = groups_.size();
  groups_.resize(base + specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    ids.push_back(static_cast<GroupId>(base + i));
  }

  // Per-group staging produced by the parallel phase. `denied` records any
  // speculative reservation refusal: the encoding then contains a
  // capacity-forced default (or an uncovered legacy leaf) the serial order
  // might not have produced, so the merge pass must not trust it.
  struct Staged {
    GroupEncoding encoding;
    bool denied = false;
  };
  std::vector<Staged> staged(specs.size());
  ConcurrentSRuleCounters speculative{srule_space_};
  const auto* legacy = legacy_leaves_.empty() ? nullptr : &legacy_leaves_;

  const auto encode_start = clock::now();
  auto encode_one = [&](std::size_t i) {
    const auto& spec = specs[i];
    auto& slot = groups_[base + i].emplace();
    slot.tenant = spec.tenant;
    slot.address =
        net::Ipv4Address::multicast_group(static_cast<GroupId>(base + i));
    slot.members.assign(spec.members.begin(), spec.members.end());
    {
      std::optional<obs::Span> tree_span;
      obs::arm_phase_span(tree_span, "controller:tree",
                          controller_metric_ids().tree_seconds);
      slot.tree =
          std::make_unique<MulticastTree>(*topo_, slot.receiver_hosts());
    }

    auto& st = staged[i];
    TreeEncoder::SRuleReservers reservers;
    reservers.leaf = [&speculative, &st](std::uint32_t leaf) {
      const bool ok = speculative.try_reserve_leaf(leaf);
      if (!ok) st.denied = true;
      return ok;
    };
    reservers.pod_spines = [&speculative, &st](std::uint32_t pod) {
      const bool ok = speculative.try_reserve_pod_spines(pod);
      if (!ok) st.denied = true;
      return ok;
    };
    st.encoding = encoder_->encode_with(*slot.tree, reservers, legacy);
  };
  if (pool != nullptr) {
    pool->parallel_for(0, specs.size(), encode_one);
  } else {
    for (std::size_t i = 0; i < specs.size(); ++i) encode_one(i);
  }
  const auto merge_start = clock::now();

  // Deterministic merge: in group-id order, commit each speculative
  // encoding by replaying its reservations against the authoritative
  // space. Any disagreement (denial during the parallel phase, or a
  // reservation the serial order cannot grant) falls back to a plain
  // serial encode — at that point the space state equals what a pure
  // serial run would have seen for this group, so the fallback result is
  // the serial result.
  auto try_apply = [&](const GroupEncoding& enc) {
    std::size_t pods_done = 0;
    for (const auto& [pod, bitmap] : enc.spine.s_rules) {
      (void)bitmap;
      if (!srule_space_.try_reserve_pod_spines(pod)) break;
      ++pods_done;
    }
    std::size_t leaves_done = 0;
    if (pods_done == enc.spine.s_rules.size()) {
      for (const auto& [leaf, bitmap] : enc.leaf.s_rules) {
        (void)bitmap;
        if (!srule_space_.try_reserve_leaf(leaf)) break;
        ++leaves_done;
      }
      if (leaves_done == enc.leaf.s_rules.size()) return true;
    }
    for (std::size_t p = 0; p < pods_done; ++p) {
      srule_space_.release_pod_spines(enc.spine.s_rules[p].first);
    }
    for (std::size_t l = 0; l < leaves_done; ++l) {
      srule_space_.release_leaf(enc.leaf.s_rules[l].first);
    }
    return false;
  };

  std::size_t commits = 0;
  std::size_t reencodes = 0;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    auto& g = *groups_[base + i];
    auto& st = staged[i];
    if (!st.denied && try_apply(st.encoding)) {
      g.encoding = std::move(st.encoding);
      ++commits;
    } else {
      g.encoding = encoder_->encode(*g.tree, &srule_space_, legacy);
      ++reencodes;
    }
    ++live_groups_;
    if (sink_ != nullptr) {
      std::unordered_set<topo::HostId> touched;
      for (const auto& m : g.members) touched.insert(m.host);
      for (const auto host : touched) sink_->hypervisor_update(host);
      emit_srule_diffs(GroupEncoding{}, g.encoding);
    }
  }
  const auto merge_end = clock::now();

  if (stats != nullptr) {
    stats->groups += specs.size();
    stats->speculative_commits += commits;
    stats->serial_reencodes += reencodes;
    stats->encode_seconds +=
        std::chrono::duration<double>(merge_start - encode_start).count();
    stats->merge_seconds +=
        std::chrono::duration<double>(merge_end - merge_start).count();
  }
  ELMO_METRIC({
    const auto& m = controller_metric_ids();
    reg.observe(m.encode_seconds, std::chrono::duration<double>(
                                      merge_start - encode_start)
                                      .count());
    reg.observe(m.merge_seconds,
                std::chrono::duration<double>(merge_end - merge_start).count());
    reg.add(m.groups_created, specs.size());
    reg.add(m.speculative_commits, commits);
    reg.add(m.serial_reencodes, reencodes);
  });
  return ids;
}

void Controller::remove_group(GroupId group) {
  auto& g = state(group);
  if (g.tree) encoder_->release(g.encoding, *g.tree, srule_space_);
  emit_srule_diffs(g.encoding, GroupEncoding{});
  if (sink_ != nullptr) {
    for (const auto& m : g.members) sink_->hypervisor_update(m.host);
  }
  groups_[group].reset();
  --live_groups_;
}

void Controller::join(GroupId group, const Member& member) {
  auto& g = state(group);
  const GroupEncoding before = g.encoding;
  const bool downstream_affected = can_receive(member.role);
  g.members.push_back(member);
  ELMO_METRIC(reg.add(controller_metric_ids().joins));

  std::unordered_set<topo::HostId> touched;
  touched.insert(member.host);  // flow rule (plus header template if sender)

  if (downstream_affected) {
    reencode(g);
    emit_srule_diffs(before, g.encoding);
    // The tree changed, so downstream p-rules and/or upstream rules of every
    // sender's header template changed.
    notify_senders(g, touched);
  }
  // A sender-only join changes nothing downstream: only the new sender's
  // hypervisor is updated (paper §5.1.3a).

  if (sink_ != nullptr) {
    for (const auto host : touched) sink_->hypervisor_update(host);
  }
}

Member Controller::leave(GroupId group, topo::HostId host) {
  return leave_matching(group, host, [&](const Member& m) {
    return m.host == host;
  });
}

Member Controller::leave(GroupId group, topo::HostId host, std::uint32_t vm) {
  return leave_matching(group, host, [&](const Member& m) {
    return m.host == host && m.vm == vm;
  });
}

template <typename Pred>
Member Controller::leave_matching(GroupId group, topo::HostId host,
                                  Pred&& pred) {
  auto& g = state(group);
  const auto it = std::find_if(g.members.begin(), g.members.end(), pred);
  if (it == g.members.end()) {
    throw std::invalid_argument{"Controller::leave: host not a member"};
  }
  const Member removed = *it;
  const bool downstream_affected = can_receive(it->role);
  g.members.erase(it);
  ELMO_METRIC(reg.add(controller_metric_ids().leaves));

  std::unordered_set<topo::HostId> touched;
  touched.insert(host);  // flow rule removal

  if (downstream_affected) {
    const GroupEncoding before = g.encoding;
    reencode(g);
    emit_srule_diffs(before, g.encoding);
    notify_senders(g, touched);
  }

  if (sink_ != nullptr) {
    for (const auto h : touched) sink_->hypervisor_update(h);
  }
  return removed;
}

Controller::FailureImpact Controller::fail_spine(topo::SpineId spine) {
  failures_.fail_spine(spine);
  ELMO_METRIC(reg.add(controller_metric_ids().failures));
  const auto pod = topo_->pod_of_spine(spine);
  const auto plane = topo_->plane_of_spine(spine);

  FailureImpact impact;
  for (GroupId id = 0; id < groups_.size(); ++id) {
    if (!groups_[id]) continue;
    const auto& g = *groups_[id];
    if (!g.tree || !g.tree->spans_multiple_leaves()) continue;
    // The group's flows traverse this spine if their multipath hash selects
    // its plane and the group touches its pod.
    if (group_flow_hash(id) % topo_->params().spines_per_pod != plane) {
      continue;
    }
    const bool touches_pod =
        std::any_of(g.members.begin(), g.members.end(), [&](const Member& m) {
          return topo_->pod_of_host(m.host) == pod;
        });
    if (!touches_pod) continue;
    ++impact.groups_affected;
    // Re-issue upstream rules (multipath off) to every sender hypervisor.
    std::unordered_set<topo::HostId> touched;
    notify_senders(g, touched);
    impact.hypervisor_updates += touched.size();
    if (sink_ != nullptr) {
      for (const auto host : touched) sink_->hypervisor_update(host);
    }
  }
  return impact;
}

Controller::FailureImpact Controller::fail_core(topo::CoreId core) {
  failures_.fail_core(core);
  ELMO_METRIC(reg.add(controller_metric_ids().failures));
  const auto plane = topo_->plane_of_core(core);

  FailureImpact impact;
  for (GroupId id = 0; id < groups_.size(); ++id) {
    if (!groups_[id]) continue;
    const auto& g = *groups_[id];
    if (!g.tree || !g.tree->spans_multiple_pods()) continue;
    if (group_flow_hash(id) % topo_->params().spines_per_pod != plane) {
      continue;
    }
    ++impact.groups_affected;
    std::unordered_set<topo::HostId> touched;
    notify_senders(g, touched);
    impact.hypervisor_updates += touched.size();
    if (sink_ != nullptr) {
      for (const auto host : touched) sink_->hypervisor_update(host);
    }
  }
  return impact;
}

void Controller::restore_spine(topo::SpineId spine) {
  failures_.restore_spine(spine);
}

void Controller::restore_core(topo::CoreId core) {
  failures_.restore_core(core);
}

std::vector<std::uint8_t> Controller::header_for(GroupId group,
                                                 topo::HostId sender) const {
  const auto& g = const_cast<Controller*>(this)->state(group);
  const auto route = g.tree->sender_route(sender, failures_);
  return encoder_->codec().serialize(route.encoding, g.encoding);
}

}  // namespace elmo
