// Multicast tree of a group on the (logical) Clos topology (paper §3.1).
//
// The downstream tree is sender-independent: per member leaf, the bitmap of
// host ports to deliver on; per member pod, the bitmap of leaf ports the
// pod's logical spine must fan out to; and the set of member pods the
// logical core must reach. Upstream rules are sender-specific and computed
// on demand (including the §3.3 failure path: multipath off + explicit
// upstream ports chosen by greedy set cover).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "elmo/rules.h"
#include "net/bitmap.h"
#include "topology/clos.h"

namespace elmo {

struct LeafTreeEntry {
  topo::LeafId leaf = 0;
  net::PortBitmap host_ports;  // domain: hosts_per_leaf
};

struct PodTreeEntry {
  topo::PodId pod = 0;
  net::PortBitmap leaf_ports;  // domain: leaves_per_pod
};

// Result of computing a sender's upstream rules under failures: some member
// pods may be unreachable through any alive spine/core combination, in which
// case the hypervisor degrades to unicast for those members (§3.3).
struct SenderRoute {
  SenderEncoding encoding;
  std::vector<topo::PodId> unreachable_pods;
};

class MulticastTree {
 public:
  MulticastTree(const topo::ClosTopology& topology,
                std::span<const topo::HostId> member_hosts);

  const topo::ClosTopology& topology() const noexcept { return *topo_; }

  std::span<const LeafTreeEntry> leaves() const noexcept { return leaves_; }
  std::span<const PodTreeEntry> pods() const noexcept { return pods_; }
  const net::PortBitmap& member_pods() const noexcept { return member_pods_; }

  std::size_t num_members() const noexcept { return num_members_; }
  std::size_t num_leaves() const noexcept { return leaves_.size(); }
  std::size_t num_pods() const noexcept { return pods_.size(); }

  bool spans_multiple_leaves() const noexcept {
    return leaves_.size() > 1;
  }
  bool spans_multiple_pods() const noexcept { return pods_.size() > 1; }

  const LeafTreeEntry* find_leaf(topo::LeafId leaf) const;
  const PodTreeEntry* find_pod(topo::PodId pod) const;
  bool is_member(topo::HostId host) const;

  // Upstream rules + sender-specific core bitmap for `sender` (any host, in
  // the group or not). With no failures the multipath flag is set; with
  // failures explicit upstream ports are chosen so that every member pod
  // stays reachable where possible.
  SenderRoute sender_route(topo::HostId sender,
                           const topo::FailureSet& failures) const;

  SenderEncoding sender_encoding(topo::HostId sender) const {
    return sender_route(sender, topo::FailureSet{}).encoding;
  }

 private:
  const topo::ClosTopology* topo_;
  std::vector<LeafTreeEntry> leaves_;  // sorted by leaf id
  std::vector<PodTreeEntry> pods_;     // sorted by pod id
  net::PortBitmap member_pods_;        // domain: num_pods
  std::size_t num_members_ = 0;
};

}  // namespace elmo
