// Algorithm 1 (paper §3.2): expressing one downstream layer of a multicast
// tree as p-rules, s-rules and a default p-rule.
//
// The p-rule sharing subproblem — pick K switches whose bitmaps' union has
// minimum cardinality — is MIN-K-UNION, NP-hard; we use the standard greedy
// approximation (seed with the most shareable bitmap, accrete the candidate
// that grows the union least, subject to the redundancy bound R). Identical
// bitmaps are hash-grouped first: sharing them is always free, and at R = 0
// it is the only sharing the bound admits.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "elmo/rules.h"
#include "net/bitmap.h"

namespace elmo {

// One switch's forwarding requirement within a layer.
struct LayerInput {
  std::uint32_t switch_id = 0;  // logical id (pod id or global leaf id)
  net::PortBitmap bitmap;       // required output ports
};

struct ClusteringLimits {
  std::size_t hmax = 30;            // max p-rules for this layer
  std::size_t kmax = 2;             // max switch ids per p-rule
  std::size_t redundancy_limit = 0; // R
  RedundancyMode mode = RedundancyMode::kSumOverRule;  // §3.2 prose
};

// Called when a switch spills out of the p-rule budget. Returns true if an
// s-rule slot was reserved for `switch_id` (Fmax not yet exhausted there);
// false maps the switch onto the default p-rule instead.
using SRuleReserver = std::function<bool(std::uint32_t switch_id)>;

// Runs Algorithm 1 for one layer. `inputs` need not be sorted. The returned
// encoding preserves the invariant checked by tests: every input switch is
// covered by exactly one of {p-rule, s-rule, default rule}, and each
// covering bitmap is a superset of the input bitmap.
LayerEncoding cluster_layer(std::span<const LayerInput> inputs,
                            const ClusteringLimits& limits,
                            const SRuleReserver& reserve_srule);

// Greedy approximate MIN-K-UNION over `bitmaps`: returns indices of up to K
// bitmaps whose union is (approximately) smallest, always including `seed`.
// Exposed separately for unit testing.
std::vector<std::size_t> approx_min_k_union(
    std::span<const net::PortBitmap> bitmaps, std::size_t seed, std::size_t k);

}  // namespace elmo
