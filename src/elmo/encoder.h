// GroupEncoder: the Elmo TreeEncoder — turns a multicast tree into Elmo's
// p-/s-/default rules via Algorithm 1.
//
// This ties together the header budget arithmetic (Hmax derivation, in the
// TreeEncoder base), Algorithm 1 per downstream layer, and Fmax accounting.
// The result is the sender-independent GroupEncoding; per-sender upstream
// rules come from MulticastTree::sender_route. Alternative schemes live in
// bert_encoder.h / p3fa_encoder.h; pick by config via make_encoder().
#pragma once

#include "elmo/tree_encoder.h"

namespace elmo {

class GroupEncoder final : public TreeEncoder {
 public:
  GroupEncoder(const topo::ClosTopology& topology, const EncoderConfig& config)
      : TreeEncoder{topology, config} {}

  std::string_view name() const noexcept override { return "elmo"; }
  EncoderKind kind() const noexcept override { return EncoderKind::kElmo; }
  EncoderCapabilities capabilities() const noexcept override {
    return EncoderCapabilities{.honors_redundancy_limit = true,
                               .exact_srule_bitmaps = true,
                               .bounded_egress_diversity = false};
  }

  GroupEncoding encode_with(const MulticastTree& tree,
                            const SRuleReservers& reservers,
                            const std::vector<bool>* legacy_leaf
                            = nullptr) const override;
};

}  // namespace elmo
