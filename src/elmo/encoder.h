// GroupEncoder: turns a multicast tree into Elmo's p-/s-/default rules.
//
// This is the controller-side entry point tying together the header budget
// arithmetic (Hmax derivation), Algorithm 1 per downstream layer, and Fmax
// accounting. The result is the sender-independent GroupEncoding; per-sender
// upstream rules come from MulticastTree::sender_route.
#pragma once

#include <optional>

#include "elmo/clustering.h"
#include "elmo/header.h"
#include "elmo/rules.h"
#include "elmo/srule_space.h"
#include "elmo/tree.h"

namespace elmo {

class GroupEncoder {
 public:
  GroupEncoder(const topo::ClosTopology& topology, const EncoderConfig& config);

  const EncoderConfig& config() const noexcept { return config_; }
  const HeaderCodec& codec() const noexcept { return codec_; }
  std::size_t hmax_leaf() const noexcept { return hmax_leaf_; }
  std::size_t hmax_spine() const noexcept { return config_.hmax_spine; }

  // Encodes the downstream layers of `tree`. When `space` is non-null,
  // spill-over switches reserve s-rule entries against Fmax; a null space
  // disables s-rules entirely (ablation of design D5: default-p-rule only).
  //
  // `legacy_leaf` (optional, indexed by global leaf id) marks leaves whose
  // switches cannot parse Elmo headers (paper §7, incremental deployment):
  // those leaves are forced into s-rules — their group tables remain the
  // scalability bottleneck — and never appear in p-rules or defaults.
  GroupEncoding encode(const MulticastTree& tree, SRuleSpace* space,
                       const std::vector<bool>* legacy_leaf = nullptr) const;

  // Capacity hooks for encode_with: how spill-over switches reserve their
  // group-table entry. Empty functions disable s-rules (as a null space
  // does). The parallel pipelines pass ConcurrentSRuleCounters-backed
  // lambdas here and reconcile against the authoritative space afterwards.
  struct SRuleReservers {
    SRuleReserver leaf;        // called with a global leaf id
    SRuleReserver pod_spines;  // called with a pod id
  };

  // encode() with caller-supplied reservation hooks; encode(space, ...) is
  // exactly encode_with over the space's own try_reserve methods.
  GroupEncoding encode_with(const MulticastTree& tree,
                            const SRuleReservers& reservers,
                            const std::vector<bool>* legacy_leaf
                            = nullptr) const;

  // Releases the s-rule reservations a previous encode() made (controller
  // re-encoding path under churn).
  void release(const GroupEncoding& encoding, const MulticastTree& tree,
               SRuleSpace& space) const;

  // Serialized header size for `sender`, in bytes (exact, via the codec).
  std::size_t header_bytes(const MulticastTree& tree,
                           const GroupEncoding& encoding,
                           topo::HostId sender) const;

 private:
  const topo::ClosTopology* topo_;
  EncoderConfig config_;
  HeaderCodec codec_;
  std::size_t hmax_leaf_;
};

}  // namespace elmo
