// TreeEncoder: the abstract contract between the controller and a tree
// encoding scheme (DESIGN.md §11).
//
// A tree encoder turns the downstream layers of a MulticastTree into the
// sender-independent GroupEncoding (p-rules, s-rules, default p-rule). All
// encoders share the wire format (header.h), the Fmax accounting hooks
// (SRuleReservers), and the §7 legacy-leaf semantics; they differ only in
// how switches are packed into p-rules:
//
//   elmo — Algorithm 1: exact-bitmap sharing, extra traffic bounded by R;
//   bert — member clustering (arXiv 2008.04454 flavour): greedy smallest-
//          union groups of up to Kmax switches, trading spurious single
//          copies for fewer header bytes; R is ignored;
//   p3fa — egress-diversity quantization (arXiv 2109.02834 flavour): the
//          layer's bitmaps are merged down to at most E distinct egress
//          classes before rule packing, bounding switch egress diversity.
//
// Contract every implementation must keep (enforced by the differential
// fuzz oracle, tests/elmo/encoder_matrix_test.cc and
// tests/verify/encoder_equivalence_test.cc):
//   * coverage — every tree switch lands in exactly one of {p-rule, s-rule,
//     default}, and its covering bitmap is a superset of its input bitmap;
//   * partition — no switch id appears in two p-rules of one layer (a
//     superset bitmap may deliver single spurious copies, never duplicates);
//   * s-rules carry exact input bitmaps and each one corresponds to exactly
//     one successful reserver call, so release() restores the pre-encode
//     Fmax watermark;
//   * determinism — the output is a pure function of (tree, config, legacy
//     mask, reservation outcomes); no iteration-order or clock dependence.
//     This is what lets the controller encode speculatively in parallel and
//     merge deterministically (DESIGN.md §5).
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "elmo/clustering.h"
#include "elmo/header.h"
#include "elmo/rules.h"
#include "elmo/srule_space.h"
#include "elmo/tree.h"

namespace elmo {

// What a scheme promises about its output; benches report these alongside
// the measured numbers so a reader can tell policy from accident.
struct EncoderCapabilities {
  bool honors_redundancy_limit = false;   // R bounds extra traffic per rule
  bool exact_srule_bitmaps = true;        // s-rules carry exact input bitmaps
  bool bounded_egress_diversity = false;  // caps distinct bitmaps per layer
};

class TreeEncoder {
 public:
  // Validates `config` against the topology (throws std::invalid_argument
  // on impossible configs — see validate_encoder_config).
  TreeEncoder(const topo::ClosTopology& topology, const EncoderConfig& config);
  virtual ~TreeEncoder() = default;

  TreeEncoder(const TreeEncoder&) = delete;
  TreeEncoder& operator=(const TreeEncoder&) = delete;

  virtual std::string_view name() const noexcept = 0;
  virtual EncoderKind kind() const noexcept = 0;
  virtual EncoderCapabilities capabilities() const noexcept = 0;

  const EncoderConfig& config() const noexcept { return config_; }
  const HeaderCodec& codec() const noexcept { return codec_; }
  const topo::ClosTopology& topology() const noexcept { return *topo_; }
  std::size_t hmax_leaf() const noexcept { return hmax_leaf_; }
  std::size_t hmax_spine() const noexcept { return config_.hmax_spine; }

  // Capacity hooks for encode_with: how spill-over switches reserve their
  // group-table entry. Empty functions disable s-rules (as a null space
  // does). The parallel pipelines pass ConcurrentSRuleCounters-backed
  // lambdas here and reconcile against the authoritative space afterwards.
  struct SRuleReservers {
    SRuleReserver leaf;        // called with a global leaf id
    SRuleReserver pod_spines;  // called with a pod id
  };

  // Encodes the downstream layers of `tree`. When `space` is non-null,
  // spill-over switches reserve s-rule entries against Fmax; a null space
  // disables s-rules entirely (ablation of design D5: default-p-rule only).
  //
  // `legacy_leaf` (optional, indexed by global leaf id) marks leaves whose
  // switches cannot parse Elmo headers (paper §7, incremental deployment):
  // those leaves are forced into s-rules — their group tables remain the
  // scalability bottleneck — and never appear in p-rules or defaults.
  GroupEncoding encode(const MulticastTree& tree, SRuleSpace* space,
                       const std::vector<bool>* legacy_leaf = nullptr) const;

  // encode() with caller-supplied reservation hooks; encode(space, ...) is
  // exactly encode_with over the space's own try_reserve methods.
  virtual GroupEncoding encode_with(const MulticastTree& tree,
                                    const SRuleReservers& reservers,
                                    const std::vector<bool>* legacy_leaf
                                    = nullptr) const = 0;

  // Releases the s-rule reservations a previous encode() made (controller
  // re-encoding path under churn). Base implementation releases one slot
  // per recorded s-rule, which is correct for every encoder that keeps the
  // one-reservation-per-s-rule contract.
  virtual void release(const GroupEncoding& encoding,
                       const MulticastTree& tree, SRuleSpace& space) const;

  // Serialized header size for `sender`, in bytes (exact, via the codec).
  virtual std::size_t header_bytes(const MulticastTree& tree,
                                   const GroupEncoding& encoding,
                                   topo::HostId sender) const;

 protected:
  // Per-layer inputs shared by all schemes. The leaf builder applies the §7
  // legacy policy: legacy leaves are reserved first (exact bitmaps), pulled
  // out of the clustering inputs, and appended after the scheme's own
  // s-rules — identical semantics across encoders.
  std::vector<LayerInput> spine_inputs(const MulticastTree& tree) const;

  struct LeafInputs {
    std::vector<LayerInput> inputs;  // upgraded leaves, for rule packing
    std::vector<std::pair<std::uint32_t, net::PortBitmap>> legacy_srules;
  };
  LeafInputs leaf_inputs(const MulticastTree& tree,
                         const SRuleReservers& reservers,
                         const std::vector<bool>* legacy_leaf) const;

  // Kmax for the spine layer (config value, 0 = all pods).
  std::size_t spine_kmax() const noexcept {
    return config_.kmax_spine == 0 ? topo_->num_pods() : config_.kmax_spine;
  }

  const topo::ClosTopology* topo_;
  EncoderConfig config_;
  HeaderCodec codec_;
  std::size_t hmax_leaf_;
};

// Rejects impossible configs with a descriptive std::invalid_argument:
// zero hmax/kmax, per-layer rule counts beyond the 7-bit wire field, a
// header budget too small to fit even one leaf p-rule at this topology's
// bitmap widths (when hmax_leaf is derived), zero P3FA egress classes.
// Called by every TreeEncoder constructor.
void validate_encoder_config(const topo::ClosTopology& topology,
                             const EncoderConfig& config);

// Instantiates the encoder selected by config.encoder.
std::unique_ptr<TreeEncoder> make_encoder(const topo::ClosTopology& topology,
                                          const EncoderConfig& config);

const char* to_string(EncoderKind kind) noexcept;
// Parses "elmo" / "bert" / "p3fa" (throws std::invalid_argument otherwise).
EncoderKind parse_encoder_kind(std::string_view name);

}  // namespace elmo
