#include "elmo/clustering.h"

#include <algorithm>
#include <limits>
#include <optional>
#include <stdexcept>
#include <unordered_map>

#include "obs/metrics.h"
#include "obs/span.h"

namespace elmo {
namespace {

struct ClusteringMetricIds {
  obs::MetricsRegistry::Id cluster_seconds;
  obs::MetricsRegistry::Id min_k_union_merges;
  ClusteringMetricIds() {
    auto& reg = obs::MetricsRegistry::global();
    cluster_seconds = reg.histogram(
        "elmo_controller_cluster_seconds", obs::latency_bounds(),
        "MIN-K-UNION p-rule clustering (Algorithm 1), per layer encode");
    min_k_union_merges = reg.counter(
        "elmo_controller_min_k_union_merges_total",
        "Overflow rules greedily merged into kept p-rules");
  }
};

ClusteringMetricIds& clustering_metric_ids() {
  static ClusteringMetricIds ids;
  return ids;
}

// A candidate p-rule under construction: an output bitmap plus the switches
// it covers (with their original input bitmaps, needed for the redundancy
// bound and for exact s-rule spills).
struct ProtoRule {
  net::PortBitmap bitmap;                       // OR of member inputs
  std::vector<std::uint32_t> switch_ids;        // members
  std::vector<const net::PortBitmap*> inputs;   // members' exact bitmaps
  std::size_t min_pop = 0;                      // min popcount over inputs
  std::size_t sum_pop = 0;                      // sum of popcounts

  bool feasible_with(const net::PortBitmap& candidate_union,
                     std::size_t extra_members, std::size_t extra_min_pop,
                     std::size_t extra_sum_pop,
                     const ClusteringLimits& limits) const {
    const std::size_t union_pop = candidate_union.popcount();
    switch (limits.mode) {
      case RedundancyMode::kPerSwitch:
        return union_pop - std::min(min_pop, extra_min_pop) <=
               limits.redundancy_limit;
      case RedundancyMode::kSumOverRule: {
        const std::size_t members = switch_ids.size() + extra_members;
        return union_pop * members - (sum_pop + extra_sum_pop) <=
               limits.redundancy_limit;
      }
    }
    return false;
  }
};

}  // namespace

std::vector<std::size_t> approx_min_k_union(
    std::span<const net::PortBitmap> bitmaps, std::size_t seed,
    std::size_t k) {
  if (seed >= bitmaps.size()) {
    throw std::out_of_range{"approx_min_k_union: bad seed"};
  }
  std::vector<std::size_t> chosen{seed};
  std::vector<bool> used(bitmaps.size(), false);
  used[seed] = true;
  net::PortBitmap accumulated = bitmaps[seed];
  while (chosen.size() < k) {
    std::size_t best = bitmaps.size();
    std::size_t best_union = std::numeric_limits<std::size_t>::max();
    for (std::size_t i = 0; i < bitmaps.size(); ++i) {
      if (used[i]) continue;
      const std::size_t union_size = (accumulated | bitmaps[i]).popcount();
      if (union_size < best_union) {
        best_union = union_size;
        best = i;
      }
    }
    if (best == bitmaps.size()) break;
    used[best] = true;
    chosen.push_back(best);
    accumulated |= bitmaps[best];
  }
  return chosen;
}

// Algorithm 1, with bitmap sharing applied on demand (paper D3: sharing
// exists "to further reduce header sizes"): exact rules are formed first
// (identical bitmaps always share — zero redundancy), and only when the
// layer overflows Hmax are overflow rules merged into the kept rules via
// the greedy MIN-K-UNION step, subject to the redundancy bound R. Whatever
// still does not fit spills to s-rules while Fmax allows, then to the
// default p-rule.
LayerEncoding cluster_layer(std::span<const LayerInput> inputs,
                            const ClusteringLimits& limits,
                            const SRuleReserver& reserve_srule) {
  LayerEncoding out;
  if (inputs.empty()) return out;
  if (limits.kmax == 0) throw std::invalid_argument{"cluster_layer: kmax == 0"};

  std::optional<obs::Span> span;
  obs::arm_phase_span(span, "encode:cluster_layer",
                      clustering_metric_ids().cluster_seconds);

  // --- Phase 1: exact rules; identical bitmaps share (in kmax chunks) -----
  std::unordered_map<net::PortBitmap, std::vector<const LayerInput*>,
                     net::PortBitmapHash>
      identical;
  for (const auto& input : inputs) {
    identical[input.bitmap].push_back(&input);
  }
  std::vector<ProtoRule> rules;
  rules.reserve(identical.size());
  for (const auto& [bitmap, members] : identical) {
    for (std::size_t at = 0; at < members.size(); at += limits.kmax) {
      ProtoRule rule;
      rule.bitmap = bitmap;
      const auto take = std::min(limits.kmax, members.size() - at);
      const auto pop = bitmap.popcount();
      rule.min_pop = pop;
      for (std::size_t i = 0; i < take; ++i) {
        rule.switch_ids.push_back(members[at + i]->switch_id);
        rule.inputs.push_back(&members[at + i]->bitmap);
        rule.sum_pop += pop;
      }
      rules.push_back(std::move(rule));
    }
  }

  // Densest rules first: they are the most valuable header residents and the
  // most attractive merge targets.
  std::sort(rules.begin(), rules.end(),
            [](const ProtoRule& a, const ProtoRule& b) {
              if (a.switch_ids.size() != b.switch_ids.size()) {
                return a.switch_ids.size() > b.switch_ids.size();
              }
              return a.bitmap.popcount() < b.bitmap.popcount();
            });

  // --- Phase 2: merge overflow rules into the kept set under R ------------
  const std::size_t kept = std::min(limits.hmax, rules.size());
  std::vector<ProtoRule> overflow_spill;
  for (std::size_t oi = kept; oi < rules.size(); ++oi) {
    ProtoRule& overflow = rules[oi];
    std::size_t best_base = kept;
    std::size_t best_union = std::numeric_limits<std::size_t>::max();
    net::PortBitmap best_bitmap;
    for (std::size_t bi = 0; bi < kept && limits.redundancy_limit > 0; ++bi) {
      ProtoRule& base = rules[bi];
      if (base.switch_ids.size() + overflow.switch_ids.size() > limits.kmax) {
        continue;
      }
      auto candidate = base.bitmap | overflow.bitmap;
      const auto union_pop = candidate.popcount();
      if (union_pop >= best_union) continue;
      if (!base.feasible_with(candidate, overflow.switch_ids.size(),
                              overflow.min_pop, overflow.sum_pop, limits)) {
        continue;
      }
      best_union = union_pop;
      best_base = bi;
      best_bitmap = std::move(candidate);
    }
    if (best_base < kept) {
      ProtoRule& base = rules[best_base];
      base.bitmap = std::move(best_bitmap);
      base.switch_ids.insert(base.switch_ids.end(),
                             overflow.switch_ids.begin(),
                             overflow.switch_ids.end());
      base.inputs.insert(base.inputs.end(), overflow.inputs.begin(),
                         overflow.inputs.end());
      base.min_pop = std::min(base.min_pop, overflow.min_pop);
      base.sum_pop += overflow.sum_pop;
      ELMO_METRIC(reg.add(clustering_metric_ids().min_k_union_merges));
    } else {
      overflow_spill.push_back(std::move(overflow));
    }
  }

  // --- Phase 3: emit p-rules; spill the rest (Algorithm 1 lines 11-15) ----
  for (std::size_t i = 0; i < kept; ++i) {
    out.p_rules.push_back(
        PRule{std::move(rules[i].bitmap), std::move(rules[i].switch_ids)});
  }
  for (const auto& spilled : overflow_spill) {
    for (std::size_t m = 0; m < spilled.switch_ids.size(); ++m) {
      const auto switch_id = spilled.switch_ids[m];
      const auto& exact = *spilled.inputs[m];
      if (reserve_srule && reserve_srule(switch_id)) {
        out.s_rules.emplace_back(switch_id, exact);
      } else {
        if (!out.default_rule) {
          out.default_rule = net::PortBitmap{exact.size()};
        }
        *out.default_rule |= exact;
      }
    }
  }
  return out;
}

}  // namespace elmo
