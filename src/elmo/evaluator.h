// Analytic forwarding walk over a group's Elmo encoding.
//
// Reproduces, hop by hop, exactly what the data plane does to one packet —
// upstream rules at the sender's leaf/spine, the sender-specific core
// bitmap, p-rule / s-rule / default-rule lookup at every downstream switch,
// per-layer header popping — and accounts wire bytes on every link plus
// delivery outcomes (exactly-once to members, spurious copies from shared
// bitmaps and default rules).
//
// This is the engine behind Figures 4/5 (traffic overhead): it is
// cross-validated against the packet-level data plane in
// tests/sim/crosscheck_test.cc, and is fast enough to sweep hundreds of
// thousands of groups.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "elmo/encoder.h"
#include "elmo/header.h"
#include "elmo/rules.h"
#include "elmo/tree.h"
#include "net/headers.h"

namespace elmo {

struct DeliveryReport {
  std::size_t members_expected = 0;  // receivers (members minus the sender)
  std::size_t members_reached = 0;
  std::size_t duplicate_deliveries = 0;
  std::size_t spurious_deliveries = 0;  // non-member hosts that got a copy

  // Cause split of the excess copies (duplicates + spurious), by the rule
  // class the delivering leaf matched — the analytic mirror of
  // verify::RedundancyBreakdown, cheap enough for full-fabric sweeps.
  std::size_t excess_via_default = 0;       // default p-rule egress
  std::size_t excess_via_shared_prule = 0;  // p-rule bit beyond the exact tree
  std::size_t excess_via_srule = 0;         // group-table (s-rule) egress
  std::size_t excess_via_exact = 0;         // exact-bitmap egress (dups only)

  std::size_t total_excess() const noexcept {
    return duplicate_deliveries + spurious_deliveries;
  }

  bool exactly_once() const noexcept {
    return members_reached == members_expected && duplicate_deliveries == 0;
  }
};

struct TrafficReport {
  std::uint64_t elmo_wire_bytes = 0;
  std::uint64_t ideal_wire_bytes = 0;
  std::uint64_t elmo_link_transmissions = 0;
  std::uint64_t ideal_link_transmissions = 0;
  std::size_t header_bytes_at_source = 0;  // serialized Elmo header size
  DeliveryReport delivery;

  double overhead_ratio() const noexcept {
    return ideal_wire_bytes == 0
               ? 1.0
               : static_cast<double>(elmo_wire_bytes) /
                     static_cast<double>(ideal_wire_bytes);
  }
};

class TrafficEvaluator {
 public:
  explicit TrafficEvaluator(const topo::ClosTopology& topology)
      : topo_{&topology}, codec_{topology} {}

  // Walks one packet of `payload_bytes` (the tenant packet, before the VXLAN
  // outer headers) from `sender`. `flow_hash` seeds the multipath choice.
  // `legacy_leaf` (optional, indexed by global leaf id) marks leaves whose
  // switches cannot parse Elmo headers: like the real chip, they forward
  // from their group table only — never from a p-rule or the default rule.
  TrafficReport evaluate(const MulticastTree& tree,
                         const GroupEncoding& encoding, topo::HostId sender,
                         std::size_t payload_bytes,
                         std::uint64_t flow_hash = 0,
                         const topo::FailureSet* failures = nullptr,
                         const std::vector<bool>* legacy_leaf = nullptr) const;

  // Ideal-multicast accounting only (bytes over the exact tree, no Elmo
  // header): the denominator of the paper's traffic-overhead ratio.
  static std::uint64_t ideal_transmissions(const MulticastTree& tree,
                                           topo::HostId sender);

 private:
  const topo::ClosTopology* topo_;
  HeaderCodec codec_;
};

}  // namespace elmo
