#include "elmo/tree.h"

#include <algorithm>
#include <map>

namespace elmo {

MulticastTree::MulticastTree(const topo::ClosTopology& topology,
                             std::span<const topo::HostId> member_hosts)
    : topo_{&topology}, member_pods_{topology.num_pods()} {
  std::map<topo::LeafId, net::PortBitmap> by_leaf;
  for (const auto host : member_hosts) {
    const auto leaf = topology.leaf_of_host(host);
    auto [it, inserted] =
        by_leaf.try_emplace(leaf, topology.leaf_down_ports());
    const auto port = topology.host_port_on_leaf(host);
    if (it->second.test(port)) continue;  // duplicate member host
    it->second.set(port);
    ++num_members_;
  }

  std::map<topo::PodId, net::PortBitmap> by_pod;
  leaves_.reserve(by_leaf.size());
  for (auto& [leaf, ports] : by_leaf) {
    const auto pod = topology.pod_of_leaf(leaf);
    auto [it, inserted] =
        by_pod.try_emplace(pod, topology.spine_down_ports());
    it->second.set(topology.leaf_index_in_pod(leaf));
    leaves_.push_back(LeafTreeEntry{leaf, std::move(ports)});
  }
  pods_.reserve(by_pod.size());
  for (auto& [pod, leaf_ports] : by_pod) {
    member_pods_.set(pod);
    pods_.push_back(PodTreeEntry{pod, std::move(leaf_ports)});
  }
}

const LeafTreeEntry* MulticastTree::find_leaf(topo::LeafId leaf) const {
  const auto it = std::lower_bound(
      leaves_.begin(), leaves_.end(), leaf,
      [](const LeafTreeEntry& e, topo::LeafId id) { return e.leaf < id; });
  return (it != leaves_.end() && it->leaf == leaf) ? &*it : nullptr;
}

const PodTreeEntry* MulticastTree::find_pod(topo::PodId pod) const {
  const auto it = std::lower_bound(
      pods_.begin(), pods_.end(), pod,
      [](const PodTreeEntry& e, topo::PodId id) { return e.pod < id; });
  return (it != pods_.end() && it->pod == pod) ? &*it : nullptr;
}

bool MulticastTree::is_member(topo::HostId host) const {
  const auto* entry = find_leaf(topo_->leaf_of_host(host));
  return entry != nullptr && entry->host_ports.test(topo_->host_port_on_leaf(host));
}

SenderRoute MulticastTree::sender_route(
    topo::HostId sender, const topo::FailureSet& failures) const {
  const auto& t = *topo_;
  const auto sender_leaf = t.leaf_of_host(sender);
  const auto sender_pod = t.pod_of_leaf(sender_leaf);
  const auto sender_port = t.host_port_on_leaf(sender);

  SenderRoute route;
  auto& enc = route.encoding;

  // --- u-leaf: local receivers minus the sender's own port ----------------
  enc.u_leaf.down = net::PortBitmap{t.leaf_down_ports()};
  if (const auto* local = find_leaf(sender_leaf)) {
    enc.u_leaf.down = local->host_ports;
    enc.u_leaf.down.set(sender_port, false);
  }
  enc.u_leaf.up = net::PortBitmap{t.leaf_up_ports()};

  // Which member pods (other than the sender's) must the core fan out to?
  std::vector<topo::PodId> other_pods;
  for (const auto& pod : pods_) {
    if (pod.pod != sender_pod) other_pods.push_back(pod.pod);
  }

  // Does the packet need to leave the sender's leaf at all?
  const bool beyond_leaf =
      !other_pods.empty() ||
      std::any_of(leaves_.begin(), leaves_.end(), [&](const LeafTreeEntry& e) {
        return e.leaf != sender_leaf &&
               t.pod_of_leaf(e.leaf) == sender_pod;
      });
  if (!beyond_leaf) {
    enc.u_leaf.multipath = false;
    return route;  // group confined to the sender's rack
  }

  // --- u-spine: other member leaves in the sender's pod -------------------
  UpstreamRule u_spine;
  u_spine.down = net::PortBitmap{t.spine_down_ports()};
  if (const auto* pod_entry = find_pod(sender_pod)) {
    u_spine.down = pod_entry->leaf_ports;
    u_spine.down.set(t.leaf_index_in_pod(sender_leaf), false);
  }
  u_spine.up = net::PortBitmap{t.spine_up_ports()};

  if (failures.empty()) {
    // Fast path: the fabric's multipath scheme handles spine/core choice.
    enc.u_leaf.multipath = true;
    u_spine.multipath = !other_pods.empty();
    enc.u_spine = std::move(u_spine);
    if (!other_pods.empty()) {
      enc.core_pods = net::PortBitmap{t.core_ports()};
      for (const auto pod : other_pods) enc.core_pods->set(pod);
    }
    return route;
  }

  // --- §3.3 failure path: multipath off, explicit upstream ports ----------
  // Greedy set cover: choose spines of the sender's pod (and upstream core
  // ports) so that every other member pod is reachable. A spine s (plane k)
  // covers pod p through core c of plane k iff s, c and spine_at(p, k) are
  // all alive.
  enc.u_leaf.multipath = false;
  u_spine.multipath = false;

  std::vector<bool> pod_covered(other_pods.size(), other_pods.empty());
  bool chose_any_spine = false;

  // A spine with an alive plane is also needed to reach same-pod leaves.
  const bool need_same_pod_fanout = u_spine.down.any();

  auto covers = [&](std::size_t plane, topo::PodId pod) {
    if (failures.spine_failed(t.spine_at(pod, plane))) return false;
    for (std::size_t ci = 0; ci < t.spine_up_ports(); ++ci) {
      if (!failures.core_failed(t.core_at(plane, ci))) return true;
    }
    return false;
  };

  while (true) {
    // Pick the alive spine covering the most uncovered pods.
    std::size_t best_plane = t.leaf_up_ports();
    std::size_t best_gain = 0;
    for (std::size_t plane = 0; plane < t.leaf_up_ports(); ++plane) {
      if (failures.spine_failed(t.spine_at(sender_pod, plane))) continue;
      std::size_t gain = 0;
      for (std::size_t i = 0; i < other_pods.size(); ++i) {
        if (!pod_covered[i] && covers(plane, other_pods[i])) ++gain;
      }
      if (!chose_any_spine && need_same_pod_fanout && gain == 0 &&
          best_gain == 0 && best_plane == t.leaf_up_ports()) {
        best_plane = plane;  // any alive spine reaches same-pod leaves
      }
      if (gain > best_gain) {
        best_gain = gain;
        best_plane = plane;
      }
    }
    if (best_plane == t.leaf_up_ports()) break;  // nothing else to gain
    if (best_gain == 0 && chose_any_spine) break;

    enc.u_leaf.up.set(best_plane);
    chose_any_spine = true;
    if (best_gain > 0) {
      // Pick one alive core in this plane for the u-spine upstream port.
      for (std::size_t ci = 0; ci < t.spine_up_ports(); ++ci) {
        if (!failures.core_failed(t.core_at(best_plane, ci))) {
          u_spine.up.set(ci);
          break;
        }
      }
      for (std::size_t i = 0; i < other_pods.size(); ++i) {
        if (!pod_covered[i] && covers(best_plane, other_pods[i])) {
          pod_covered[i] = true;
        }
      }
    }
    if (std::all_of(pod_covered.begin(), pod_covered.end(),
                    [](bool c) { return c; }) &&
        (chose_any_spine || !need_same_pod_fanout)) {
      break;
    }
  }

  for (std::size_t i = 0; i < other_pods.size(); ++i) {
    if (!pod_covered[i]) route.unreachable_pods.push_back(other_pods[i]);
  }

  enc.u_spine = std::move(u_spine);
  if (!other_pods.empty()) {
    enc.core_pods = net::PortBitmap{t.core_ports()};
    for (std::size_t i = 0; i < other_pods.size(); ++i) {
      if (pod_covered[i]) enc.core_pods->set(other_pods[i]);
    }
  }
  return route;
}

}  // namespace elmo
