#include "elmo/churn.h"

#include <algorithm>
#include <stdexcept>

namespace elmo {

CountingSink::CountingSink(const topo::ClosTopology& topology)
    : hypervisor_(topology.num_hosts(), 0),
      leaf_(topology.num_leaves(), 0),
      spine_(topology.num_spines(), 0),
      core_(topology.num_cores(), 0) {}

void CountingSink::hypervisor_update(topo::HostId host) {
  ++hypervisor_.at(host);
}

void CountingSink::network_switch_update(topo::Layer layer, std::uint32_t id) {
  switch (layer) {
    case topo::Layer::kLeaf:
      ++leaf_.at(id);
      break;
    case topo::Layer::kSpine:
      ++spine_.at(id);
      break;
    case topo::Layer::kCore:
      ++core_.at(id);
      break;
    case topo::Layer::kHost:
      throw std::invalid_argument{"CountingSink: host is not a network switch"};
  }
}

void CountingSink::reset() {
  std::fill(hypervisor_.begin(), hypervisor_.end(), 0);
  std::fill(leaf_.begin(), leaf_.end(), 0);
  std::fill(spine_.begin(), spine_.end(), 0);
  std::fill(core_.begin(), core_.end(), 0);
}

CountingSink::Rates CountingSink::rates_of(
    std::span<const std::uint64_t> counts, double seconds) {
  Rates rates;
  if (counts.empty() || seconds <= 0.0) return rates;
  std::uint64_t peak = 0;
  for (const auto c : counts) {
    rates.total += c;
    peak = std::max(peak, c);
  }
  rates.avg = static_cast<double>(rates.total) /
              static_cast<double>(counts.size()) / seconds;
  rates.max = static_cast<double>(peak) / seconds;
  return rates;
}

CountingSink::Rates CountingSink::hypervisor_rates(double seconds) const {
  return rates_of(hypervisor_, seconds);
}
CountingSink::Rates CountingSink::leaf_rates(double seconds) const {
  return rates_of(leaf_, seconds);
}
CountingSink::Rates CountingSink::spine_rates(double seconds) const {
  return rates_of(spine_, seconds);
}
CountingSink::Rates CountingSink::core_rates(double seconds) const {
  return rates_of(core_, seconds);
}

ChurnSimulator::ChurnSimulator(Controller& controller,
                               const cloud::Cloud& cloud,
                               std::span<const GroupId> groups)
    : ChurnSimulator{controller, cloud.tenants(), groups} {}

ChurnSimulator::ChurnSimulator(Controller& controller,
                               std::span<const cloud::Tenant> tenants,
                               std::span<const GroupId> groups)
    : controller_{&controller},
      tenants_{tenants},
      groups_{groups.begin(), groups.end()} {
  membership_.reserve(groups_.size());
  cumulative_weight_.reserve(groups_.size());
  double cumulative = 0.0;
  for (const auto id : groups_) {
    const auto& g = controller.group(id);
    std::unordered_set<std::uint32_t> vms;
    vms.reserve(g.members.size() * 2);
    for (const auto& m : g.members) vms.insert(m.vm);
    membership_.push_back(std::move(vms));
    cumulative += static_cast<double>(g.members.size());
    cumulative_weight_.push_back(cumulative);
  }
  if (groups_.empty()) {
    throw std::invalid_argument{"ChurnSimulator: no groups"};
  }
}

double ChurnSimulator::run(const ChurnParams& params, util::Rng& rng) {
  for (std::size_t e = 0; e < params.events; ++e) {
    step(params.min_group_size, rng);
  }
  return static_cast<double>(params.events) / params.events_per_second;
}

void ChurnSimulator::step(std::size_t min_group_size, util::Rng& rng) {
  // Pick a group with probability proportional to its (initial) size.
  const double target = rng.uniform(0.0, cumulative_weight_.back());
  const auto it = std::lower_bound(cumulative_weight_.begin(),
                                   cumulative_weight_.end(), target);
  const auto gi = static_cast<std::size_t>(it - cumulative_weight_.begin());
  const auto id = groups_[gi];

  const auto& g = controller_->group(id);
  const auto tenant_size = tenants_[g.tenant].size();
  const bool can_grow = membership_[gi].size() < tenant_size;
  const bool must_grow = g.members.size() <= min_group_size;

  if ((must_grow || rng.bernoulli(0.5)) && can_grow) {
    do_join(gi, rng);
  } else if (g.members.size() > min_group_size) {
    do_leave(gi, rng);
  }
  // Else: group pinned at min size and tenant exhausted — no event.
}

void ChurnSimulator::do_join(std::size_t gi, util::Rng& rng) {
  const auto id = groups_[gi];
  const auto& g = controller_->group(id);
  const auto& tenant = tenants_[g.tenant];

  std::uint32_t vm;
  do {
    vm = static_cast<std::uint32_t>(rng.index(tenant.size()));
  } while (membership_[gi].contains(vm));
  membership_[gi].insert(vm);

  Member member;
  member.vm = vm;
  member.host = tenant.vm_hosts[vm];
  member.role = static_cast<MemberRole>(rng.index(3));
  controller_->join(id, member);
  ++joins_;
}

void ChurnSimulator::do_leave(std::size_t gi, util::Rng& rng) {
  const auto id = groups_[gi];
  const auto& g = controller_->group(id);
  const auto victim = g.members[rng.index(g.members.size())];
  // Leave by (host, vm): leaving by host alone removes the *first* member on
  // that host, which desyncs this mirror whenever two VMs of the group share
  // a host (co-located placement, P >= 2).
  const auto removed = controller_->leave(id, victim.host, victim.vm);
  membership_[gi].erase(removed.vm);
  ++leaves_;
}

}  // namespace elmo
