#include "elmo/churn.h"

#include <algorithm>
#include <stdexcept>

namespace elmo {

CountingSink::CountingSink(const topo::ClosTopology& topology)
    : hypervisor_(topology.num_hosts(), 0),
      leaf_(topology.num_leaves(), 0),
      spine_(topology.num_spines(), 0),
      core_(topology.num_cores(), 0) {}

void CountingSink::hypervisor_update(topo::HostId host) {
  ++hypervisor_.at(host);
}

void CountingSink::network_switch_update(topo::Layer layer, std::uint32_t id) {
  switch (layer) {
    case topo::Layer::kLeaf:
      ++leaf_.at(id);
      break;
    case topo::Layer::kSpine:
      ++spine_.at(id);
      break;
    case topo::Layer::kCore:
      ++core_.at(id);
      break;
    case topo::Layer::kHost:
      throw std::invalid_argument{"CountingSink: host is not a network switch"};
  }
}

void CountingSink::reset() {
  std::fill(hypervisor_.begin(), hypervisor_.end(), 0);
  std::fill(leaf_.begin(), leaf_.end(), 0);
  std::fill(spine_.begin(), spine_.end(), 0);
  std::fill(core_.begin(), core_.end(), 0);
}

CountingSink::Rates CountingSink::rates_of(
    std::span<const std::uint64_t> counts, double seconds) {
  if (seconds <= 0.0) {
    throw std::invalid_argument{
        "CountingSink: rates over a non-positive duration"};
  }
  Rates rates;
  if (counts.empty()) return rates;
  std::uint64_t peak = 0;
  for (const auto c : counts) {
    rates.total += c;
    peak = std::max(peak, c);
  }
  rates.avg = static_cast<double>(rates.total) /
              static_cast<double>(counts.size()) / seconds;
  rates.max = static_cast<double>(peak) / seconds;
  return rates;
}

CountingSink::Rates CountingSink::hypervisor_rates(double seconds) const {
  return rates_of(hypervisor_, seconds);
}
CountingSink::Rates CountingSink::leaf_rates(double seconds) const {
  return rates_of(leaf_, seconds);
}
CountingSink::Rates CountingSink::spine_rates(double seconds) const {
  return rates_of(spine_, seconds);
}
CountingSink::Rates CountingSink::core_rates(double seconds) const {
  return rates_of(core_, seconds);
}

ChurnSimulator::ChurnSimulator(Controller& controller,
                               const cloud::Cloud& cloud,
                               std::span<const GroupId> groups)
    : ChurnSimulator{controller, cloud.tenants(), groups} {}

ChurnSimulator::ChurnSimulator(Controller& controller,
                               std::span<const cloud::Tenant> tenants,
                               std::span<const GroupId> groups)
    : controller_{&controller},
      tenants_{tenants},
      groups_{groups.begin(), groups.end()} {
  if (groups_.empty()) {
    throw std::invalid_argument{"ChurnSimulator: no groups"};
  }
  membership_.reserve(groups_.size());
  weights_ = util::FenwickTree{groups_.size()};
  for (std::size_t gi = 0; gi < groups_.size(); ++gi) {
    const auto& g = controller.group(groups_[gi]);
    std::unordered_set<std::uint32_t> vms;
    vms.reserve(g.members.size() * 2);
    for (const auto& m : g.members) vms.insert(m.vm);
    membership_.push_back(std::move(vms));
    weights_.add(gi, static_cast<std::int64_t>(g.members.size()));
  }
}

double ChurnSimulator::run(const ChurnParams& params, util::Rng& rng) {
  std::size_t effective = 0;
  for (std::size_t e = 0; e < params.events; ++e) {
    if (step(params.min_group_size, rng)) ++effective;
  }
  // No-op attempts are not events: returning the full-attempt duration would
  // understate every updates/sec rate computed against it.
  return static_cast<double>(effective) / params.events_per_second;
}

bool ChurnSimulator::step(std::size_t min_group_size, util::Rng& rng) {
  // Pick a group with probability proportional to its *live* size: weights_
  // moves on every join/leave, so long campaigns keep sampling the actual
  // size distribution instead of the snapshot taken at construction.
  const auto gi = weights_.upper_bound(
      rng.index(static_cast<std::size_t>(weights_.total())));
  const auto id = groups_[gi];

  const auto& g = controller_->group(id);
  const auto tenant_size = tenants_[g.tenant].size();
  const bool can_grow = membership_[gi].size() < tenant_size;
  const bool must_grow = g.members.size() <= min_group_size;

  if ((must_grow || rng.bernoulli(0.5)) && can_grow) {
    do_join(gi, rng);
    return true;
  }
  if (g.members.size() > min_group_size) {
    do_leave(gi, rng);
    return true;
  }
  // Group pinned at min size and tenant exhausted — nothing was mutated.
  ++noop_events_;
  return false;
}

void ChurnSimulator::do_join(std::size_t gi, util::Rng& rng) {
  const auto id = groups_[gi];
  const auto& g = controller_->group(id);
  const auto& tenant = tenants_[g.tenant];

  std::uint32_t vm;
  do {
    vm = static_cast<std::uint32_t>(rng.index(tenant.size()));
  } while (membership_[gi].contains(vm));
  membership_[gi].insert(vm);

  Member member;
  member.vm = vm;
  member.host = tenant.vm_hosts[vm];
  member.role = static_cast<MemberRole>(rng.index(3));
  if (driver_ != nullptr) {
    driver_->join(id, member);
  } else {
    controller_->join(id, member);
  }
  weights_.add(gi, 1);
  ++joins_;
}

void ChurnSimulator::do_leave(std::size_t gi, util::Rng& rng) {
  const auto id = groups_[gi];
  const auto& g = controller_->group(id);
  const auto victim = g.members[rng.index(g.members.size())];
  // Leave by (host, vm): leaving by host alone removes the *first* member on
  // that host, which desyncs this mirror whenever two VMs of the group share
  // a host (co-located placement, P >= 2).
  const auto removed = driver_ != nullptr
                           ? driver_->leave(id, victim.host, victim.vm)
                           : controller_->leave(id, victim.host, victim.vm);
  membership_[gi].erase(removed.vm);
  weights_.add(gi, -1);
  ++leaves_;
}

}  // namespace elmo
