// Logically-centralized Elmo controller (paper §2).
//
// Owns group membership, computes multicast trees and encodings, tracks
// s-rule capacity, and emits rule updates towards hypervisor and network
// switches through an UpdateSink. The sink abstraction is what Table 2
// measures: every call corresponds to one switch needing a (batched) rule
// update for one event — hypervisors absorb header-template changes, leaf
// and spine switches only see s-rule changes, cores hold no multicast state
// at all.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <unordered_set>
#include <vector>

#include "elmo/evaluator.h"
#include "elmo/tree_encoder.h"
#include "elmo/rules.h"
#include "elmo/srule_space.h"
#include "elmo/tree.h"
#include "net/headers.h"
#include "topology/clos.h"
#include "util/thread_pool.h"

namespace elmo {

using GroupId = std::uint32_t;

enum class MemberRole : std::uint8_t { kSender, kReceiver, kBoth };

inline bool can_send(MemberRole role) noexcept {
  return role != MemberRole::kReceiver;
}
inline bool can_receive(MemberRole role) noexcept {
  return role != MemberRole::kSender;
}

struct Member {
  topo::HostId host = 0;
  std::uint32_t vm = 0;  // tenant-local VM index
  MemberRole role = MemberRole::kBoth;
};

// Receives the controller's rule updates. One call = one switch touched by
// one reconfiguration event.
class UpdateSink {
 public:
  virtual ~UpdateSink() = default;
  virtual void hypervisor_update(topo::HostId /*host*/) {}
  virtual void network_switch_update(topo::Layer /*layer*/,
                                     std::uint32_t /*physical_switch_id*/) {}
};

struct GroupState {
  std::uint32_t tenant = 0;
  net::Ipv4Address address;
  std::vector<Member> members;
  std::unique_ptr<MulticastTree> tree;  // over receiving members
  GroupEncoding encoding;

  std::vector<topo::HostId> receiver_hosts() const;
  std::vector<topo::HostId> sender_hosts() const;
};

class Controller {
 public:
  Controller(const topo::ClosTopology& topology, const EncoderConfig& config,
             UpdateSink* sink = nullptr);

  // Swap the update sink (e.g., attach counting only after initial load).
  void set_sink(UpdateSink* sink) noexcept { sink_ = sink; }

  // Incremental deployment (§7): mark leaves whose switches are legacy
  // (group-table only). Affects groups encoded afterwards.
  void set_legacy_leaves(std::vector<bool> legacy) {
    legacy_leaves_ = std::move(legacy);
  }
  const std::vector<bool>& legacy_leaves() const noexcept {
    return legacy_leaves_;
  }

  // --- group lifecycle (tenant-facing API, paper §2) ----------------------
  GroupId create_group(std::uint32_t tenant, std::span<const Member> members);

  // Bulk creation request for create_groups; `members` must stay alive for
  // the duration of the call.
  struct GroupSpec {
    std::uint32_t tenant = 0;
    std::span<const Member> members;
  };

  struct BulkLoadStats {
    std::size_t groups = 0;
    // Groups whose speculative encoding committed verbatim vs. groups the
    // merge pass re-encoded serially (speculative Fmax disagreement — only
    // possible with a finite srule_capacity near exhaustion).
    std::size_t speculative_commits = 0;
    std::size_t serial_reencodes = 0;
    double encode_seconds = 0;  // parallel phase (tree build + Algorithm 1)
    double merge_seconds = 0;   // deterministic in-order reconciliation
  };

  // Creates all `specs` as consecutive group ids. Per-group tree
  // construction and Algorithm 1 run in parallel on `pool` against
  // speculative sharded Fmax counters; a serial in-order merge pass then
  // commits reservations against the authoritative SRuleSpace, re-encoding
  // any group whose speculative capacity decisions cannot be reproduced.
  // The resulting p-rules, s-rules and occupancies are bit-identical to
  // calling create_group in a loop, at any thread count (pool == nullptr or
  // 1 thread included); see DESIGN.md §5 for the argument.
  std::vector<GroupId> create_groups(std::span<const GroupSpec> specs,
                                     util::ThreadPool* pool = nullptr,
                                     BulkLoadStats* stats = nullptr);

  void remove_group(GroupId group);
  void join(GroupId group, const Member& member);
  // Removes the first member found on `host` and returns it. Ambiguous when
  // several members of the group share a host — prefer the (host, vm)
  // overload anywhere co-location is possible.
  Member leave(GroupId group, topo::HostId host);
  // Removes exactly the member (host, vm); throws std::invalid_argument if
  // that pair is not in the group.
  Member leave(GroupId group, topo::HostId host, std::uint32_t vm);

  // --- failure handling (§3.3) --------------------------------------------
  // Marks the switch failed, recomputes upstream rules for affected groups
  // (multipath off, explicit ports) and reports how many were affected and
  // how many hypervisor updates were issued.
  struct FailureImpact {
    std::size_t groups_affected = 0;
    std::size_t hypervisor_updates = 0;
  };
  FailureImpact fail_spine(topo::SpineId spine);
  FailureImpact fail_core(topo::CoreId core);
  void restore_spine(topo::SpineId spine);
  void restore_core(topo::CoreId core);
  const topo::FailureSet& failures() const noexcept { return failures_; }

  // --- observers -----------------------------------------------------------
  const GroupState& group(GroupId group) const;
  bool has_group(GroupId group) const;
  std::size_t num_groups() const noexcept { return live_groups_; }
  const TreeEncoder& encoder() const noexcept { return *encoder_; }
  SRuleSpace& srule_space() noexcept { return srule_space_; }
  const topo::ClosTopology& topology() const noexcept { return *topo_; }

  // Serialized Elmo header a given sender's hypervisor would push.
  std::vector<std::uint8_t> header_for(GroupId group,
                                       topo::HostId sender) const;

 private:
  GroupState& state(GroupId group);
  template <typename Pred>
  Member leave_matching(GroupId group, topo::HostId host, Pred&& pred);
  void reencode(GroupState& g);  // recompute tree+encoding, s-rule diffs
  void emit_srule_diffs(const GroupEncoding& before,
                        const GroupEncoding& after);
  void notify_senders(const GroupState& g,
                      std::unordered_set<topo::HostId>& touched);

  const topo::ClosTopology* topo_;
  std::unique_ptr<TreeEncoder> encoder_;  // scheme picked by config.encoder
  SRuleSpace srule_space_;
  UpdateSink* sink_;
  topo::FailureSet failures_;
  std::vector<bool> legacy_leaves_;
  std::vector<std::optional<GroupState>> groups_;
  std::size_t live_groups_ = 0;
};

}  // namespace elmo
