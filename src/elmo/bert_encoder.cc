#include "elmo/bert_encoder.h"

#include <algorithm>

namespace elmo {

// Greedy member clustering for one layer. Deterministic: inputs are sorted
// (densest bitmap first, switch id breaking ties), each cluster seeds from
// the first unassigned switch, and approx_min_k_union breaks its ties by
// lowest index — so the output is a pure function of the inputs.
LayerEncoding BertEncoder::encode_layer(
    std::vector<LayerInput> inputs, std::size_t hmax, std::size_t kmax,
    const SRuleReserver& reserve_srule) const {
  LayerEncoding out;
  if (inputs.empty()) return out;

  std::sort(inputs.begin(), inputs.end(),
            [](const LayerInput& a, const LayerInput& b) {
              const auto pa = a.bitmap.popcount();
              const auto pb = b.bitmap.popcount();
              if (pa != pb) return pa > pb;
              return a.switch_id < b.switch_id;
            });

  std::vector<LayerInput> remaining = std::move(inputs);
  while (out.p_rules.size() < hmax && !remaining.empty()) {
    std::vector<net::PortBitmap> bitmaps;
    bitmaps.reserve(remaining.size());
    for (const auto& input : remaining) bitmaps.push_back(input.bitmap);
    const auto chosen = approx_min_k_union(bitmaps, /*seed=*/0, kmax);

    PRule rule;
    rule.bitmap = net::PortBitmap{bitmaps.front().size()};
    for (const auto idx : chosen) {
      rule.bitmap |= remaining[idx].bitmap;
      rule.switch_ids.push_back(remaining[idx].switch_id);
    }
    std::sort(rule.switch_ids.begin(), rule.switch_ids.end());
    out.p_rules.push_back(std::move(rule));

    auto sorted = chosen;
    std::sort(sorted.begin(), sorted.end(), std::greater<>{});
    for (const auto idx : sorted) {
      remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(idx));
    }
  }

  // Whatever did not fit in the header spills with its exact bitmap.
  for (const auto& input : remaining) {
    if (reserve_srule && reserve_srule(input.switch_id)) {
      out.s_rules.emplace_back(input.switch_id, input.bitmap);
    } else {
      if (!out.default_rule) {
        out.default_rule = net::PortBitmap{input.bitmap.size()};
      }
      *out.default_rule |= input.bitmap;
    }
  }
  return out;
}

GroupEncoding BertEncoder::encode_with(
    const MulticastTree& tree, const SRuleReservers& reservers,
    const std::vector<bool>* legacy_leaf) const {
  GroupEncoding out;
  out.spine = encode_layer(spine_inputs(tree), config_.hmax_spine,
                           spine_kmax(), reservers.pod_spines);

  auto leaf = leaf_inputs(tree, reservers, legacy_leaf);
  out.leaf = encode_layer(std::move(leaf.inputs), hmax_leaf_, config_.kmax,
                          reservers.leaf);
  out.leaf.s_rules.insert(out.leaf.s_rules.end(), leaf.legacy_srules.begin(),
                          leaf.legacy_srules.end());
  return out;
}

}  // namespace elmo
