#include "elmo/header.h"

#include <stdexcept>

namespace elmo {
namespace {

constexpr unsigned kTagBits = 3;
constexpr unsigned kCountBits = 7;
static_assert(kMaxRulesPerLayer == (1u << kCountBits) - 1,
              "kMaxRulesPerLayer must match the wire count field width");

void write_upstream(net::BitWriter& out, const UpstreamRule& rule) {
  out.write_bool(rule.multipath);
  for (std::size_t p = 0; p < rule.up.size(); ++p) out.write_bool(rule.up.test(p));
  for (std::size_t p = 0; p < rule.down.size(); ++p) {
    out.write_bool(rule.down.test(p));
  }
}

}  // namespace

void HeaderCodec::write_bitmap(net::BitWriter& out,
                               const net::PortBitmap& bitmap) const {
  for (std::size_t p = 0; p < bitmap.size(); ++p) out.write_bool(bitmap.test(p));
}

net::PortBitmap HeaderCodec::read_bitmap(net::BitReader& in,
                                         std::size_t ports) const {
  net::PortBitmap bitmap{ports};
  for (std::size_t p = 0; p < ports; ++p) {
    if (in.read_bool()) bitmap.set(p);
  }
  return bitmap;
}

void HeaderCodec::write_rule_layer(
    net::BitWriter& out, SectionTag tag, const std::vector<PRule>& rules,
    const std::optional<net::PortBitmap>& default_rule,
    unsigned id_bits) const {
  if (rules.empty() && !default_rule) return;  // omit empty section
  if (rules.size() > kMaxRulesPerLayer) {
    throw std::length_error{"HeaderCodec: too many p-rules in one layer"};
  }
  out.write(static_cast<std::uint64_t>(tag), kTagBits);
  out.write_bool(default_rule.has_value());
  out.write(rules.size(), kCountBits);
  for (const auto& rule : rules) {
    if (rule.switch_ids.empty()) {
      throw std::invalid_argument{"HeaderCodec: p-rule without switch ids"};
    }
    write_bitmap(out, rule.bitmap);
    for (std::size_t i = 0; i < rule.switch_ids.size(); ++i) {
      out.write(rule.switch_ids[i], id_bits);
      out.write_bool(i + 1 < rule.switch_ids.size());
    }
  }
  if (default_rule) write_bitmap(out, *default_rule);
  out.align_to_byte();
}

std::vector<std::uint8_t> HeaderCodec::serialize(
    const SenderEncoding& sender, const GroupEncoding& group) const {
  net::BitWriter out;

  out.write(static_cast<std::uint64_t>(SectionTag::kULeaf), kTagBits);
  write_upstream(out, sender.u_leaf);
  out.align_to_byte();

  if (sender.u_spine) {
    out.write(static_cast<std::uint64_t>(SectionTag::kUSpine), kTagBits);
    write_upstream(out, *sender.u_spine);
    out.align_to_byte();
  }

  if (sender.core_pods) {
    out.write(static_cast<std::uint64_t>(SectionTag::kCore), kTagBits);
    write_bitmap(out, *sender.core_pods);
    out.align_to_byte();
  }

  write_rule_layer(out, SectionTag::kSpineRules, group.spine.p_rules,
                   group.spine.default_rule, topo_->pod_id_bits());
  write_rule_layer(out, SectionTag::kLeafRules, group.leaf.p_rules,
                   group.leaf.default_rule, topo_->leaf_id_bits());

  out.write(static_cast<std::uint64_t>(SectionTag::kEnd), kTagBits);
  out.align_to_byte();
  return out.take();
}

ParsedHeader HeaderCodec::parse(std::span<const std::uint8_t> data) const {
  ParsedHeader header;
  net::BitReader in{data};

  auto read_upstream = [&](std::size_t up_ports, std::size_t down_ports) {
    UpstreamRule rule;
    rule.multipath = in.read_bool();
    rule.up = read_bitmap(in, up_ports);
    rule.down = read_bitmap(in, down_ports);
    return rule;
  };

  auto read_rule_layer = [&](std::size_t ports, unsigned id_bits,
                             std::vector<PRule>& rules,
                             std::optional<net::PortBitmap>& default_rule) {
    const bool has_default = in.read_bool();
    const auto count = in.read(kCountBits);
    for (std::uint64_t r = 0; r < count; ++r) {
      PRule rule;
      rule.bitmap = read_bitmap(in, ports);
      bool more = true;
      while (more) {
        rule.switch_ids.push_back(static_cast<std::uint32_t>(in.read(id_bits)));
        more = in.read_bool();
      }
      rules.push_back(std::move(rule));
    }
    if (has_default) default_rule = read_bitmap(in, ports);
  };

  while (true) {
    if (in.bits_remaining() < kTagBits) {
      throw std::out_of_range{"ElmoHeader: missing END section"};
    }
    const auto tag = static_cast<SectionTag>(in.read(kTagBits));
    switch (tag) {
      case SectionTag::kEnd:
        in.align_to_byte();
        return header;
      case SectionTag::kULeaf:
        header.u_leaf =
            read_upstream(topo_->leaf_up_ports(), topo_->leaf_down_ports());
        break;
      case SectionTag::kUSpine:
        header.u_spine =
            read_upstream(topo_->spine_up_ports(), topo_->spine_down_ports());
        break;
      case SectionTag::kCore:
        header.core_pods = read_bitmap(in, topo_->core_ports());
        break;
      case SectionTag::kSpineRules:
        read_rule_layer(topo_->spine_down_ports(), topo_->pod_id_bits(),
                        header.spine_rules, header.spine_default);
        break;
      case SectionTag::kLeafRules:
        read_rule_layer(topo_->leaf_down_ports(), topo_->leaf_id_bits(),
                        header.leaf_rules, header.leaf_default);
        break;
      default:
        throw std::invalid_argument{"ElmoHeader: unknown section tag"};
    }
    in.align_to_byte();
  }
}

std::vector<SectionExtent> HeaderCodec::scan_sections(
    std::span<const std::uint8_t> data) const {
  std::vector<SectionExtent> extents;
  net::BitReader in{data};

  auto skip_bitmap = [&](std::size_t ports) { in.read(static_cast<unsigned>(ports)); };
  auto skip_rule_layer = [&](std::size_t ports, unsigned id_bits) {
    const bool has_default = in.read_bool();
    const auto count = in.read(kCountBits);
    for (std::uint64_t r = 0; r < count; ++r) {
      skip_bitmap(ports);
      while (true) {
        in.read(id_bits);
        if (!in.read_bool()) break;
      }
    }
    if (has_default) skip_bitmap(ports);
  };

  while (true) {
    SectionExtent extent;
    extent.begin = in.byte_position();
    if (in.bits_remaining() < kTagBits) {
      throw std::out_of_range{"ElmoHeader: missing END section"};
    }
    extent.tag = static_cast<SectionTag>(in.read(kTagBits));
    switch (extent.tag) {
      case SectionTag::kEnd:
        break;
      case SectionTag::kULeaf:
        in.read(1);
        skip_bitmap(topo_->leaf_up_ports());
        skip_bitmap(topo_->leaf_down_ports());
        break;
      case SectionTag::kUSpine:
        in.read(1);
        skip_bitmap(topo_->spine_up_ports());
        skip_bitmap(topo_->spine_down_ports());
        break;
      case SectionTag::kCore:
        skip_bitmap(topo_->core_ports());
        break;
      case SectionTag::kSpineRules:
        skip_rule_layer(topo_->spine_down_ports(), topo_->pod_id_bits());
        break;
      case SectionTag::kLeafRules:
        skip_rule_layer(topo_->leaf_down_ports(), topo_->leaf_id_bits());
        break;
      default:
        throw std::invalid_argument{"ElmoHeader: unknown section tag"};
    }
    in.align_to_byte();
    extent.end = in.byte_position();
    extents.push_back(extent);
    if (extent.tag == SectionTag::kEnd) return extents;
  }
}

std::size_t HeaderCodec::header_length(
    std::span<const std::uint8_t> data) const {
  return scan_sections(data).back().end;
}

std::size_t HeaderCodec::max_header_bytes(std::size_t hmax_spine,
                                          std::size_t hmax_leaf,
                                          std::size_t kmax_spine,
                                          std::size_t kmax_leaf) const {
  const auto& t = *topo_;
  if (kmax_spine == 0) kmax_spine = t.num_pods();
  auto rule_bits = [&](std::size_t ports, unsigned id_bits, std::size_t k) {
    return ports + k * (id_bits + 1);
  };
  std::size_t bits = 0;
  bits += section_bits(1 + t.leaf_up_ports() + t.leaf_down_ports());   // U_LEAF
  bits += section_bits(1 + t.spine_up_ports() + t.spine_down_ports()); // U_SPINE
  bits += section_bits(t.core_ports());                                // CORE
  bits += section_bits(1 + kCountBits +
                       hmax_spine * rule_bits(t.spine_down_ports(),
                                              t.pod_id_bits(), kmax_spine) +
                       t.spine_down_ports());  // spine layer + default
  bits += section_bits(1 + kCountBits +
                       hmax_leaf * rule_bits(t.leaf_down_ports(),
                                             t.leaf_id_bits(), kmax_leaf) +
                       t.leaf_down_ports());   // leaf layer + default
  bits += section_bits(0);                     // END
  return bits / 8;
}

std::size_t HeaderCodec::derive_hmax_leaf(const EncoderConfig& cfg) const {
  if (cfg.hmax_leaf_override > 0) {
    return std::min(cfg.hmax_leaf_override, kMaxRulesPerLayer);
  }
  const std::size_t budget = cfg.header_budget_bytes;
  std::size_t hmax = 1;
  while (hmax < kMaxRulesPerLayer &&
         max_header_bytes(cfg.hmax_spine, hmax + 1, cfg.kmax_spine,
                          cfg.kmax) <= budget) {
    ++hmax;
  }
  return hmax;
}

}  // namespace elmo
