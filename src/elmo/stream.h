// Streaming control plane (ROADMAP "long-running controller service"):
// consumes Join / Leave / HostFail events, re-encodes only the affected
// group (Controller::join/leave are already incremental), and pushes the
// *delta* between the previously-installed rules and the new encoding over
// the p4rt wire channel into a live sim::Fabric — instead of re-pushing
// whole-group state per event like compile_install.
//
// Delta computation keeps a compact mirror of what the fabric holds: one
// 64-bit content hash per installed hypervisor flow (group, host) and per
// installed s-rule (group, layer, physical switch). After each event the
// affected group's desired state is rebuilt from the controller (exactly
// mirroring Fabric::install_group semantics) and diffed against the mirror;
// only changed entries become rule updates.
//
// Updates are coalesced and batched: pending updates are keyed by rule
// location, a newer update for the same key overwrites the older one (the
// wire sees only the final state), and the batch is flushed through
// p4rt::encode/decode/apply_updates when it reaches
// ControlPlaneOptions::flush_threshold (or on an explicit flush()). Per-
// event ingest-to-install lag is recorded at flush time.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "elmo/churn.h"
#include "elmo/controller.h"
#include "obs/trace.h"
#include "p4rt/runtime.h"
#include "sim/fabric.h"
#include "util/stats.h"

namespace elmo::stream {

// One membership mutation arriving at the controller.
struct Event {
  enum class Kind : std::uint8_t { kJoin, kLeave, kHostFail };
  Kind kind = Kind::kJoin;
  GroupId group = 0;      // kJoin / kLeave
  Member member;          // kJoin: joiner; kLeave: (host, vm) of the leaver
  topo::HostId host = 0;  // kHostFail: every member VM on this host leaves
};

struct ControlPlaneOptions {
  // Pending rule updates that trigger an automatic flush. 1 = install every
  // event immediately; larger values trade install lag for batching.
  std::size_t flush_threshold = 64;
};

struct ControlPlaneStats {
  std::uint64_t events = 0;
  std::uint64_t joins = 0;
  std::uint64_t leaves = 0;
  std::uint64_t host_fails = 0;
  // Events whose re-encode left every installed rule untouched.
  std::uint64_t clean_events = 0;

  std::uint64_t flushes = 0;
  std::uint64_t batches_encoded = 0;
  std::uint64_t wire_bytes = 0;
  std::uint64_t updates_applied = 0;
  // A pending update overwritten by a newer one for the same rule before it
  // ever reached the wire (the value of coalescing).
  std::uint64_t updates_coalesced = 0;

  // Per-layer applied-update counters (what Table 2 attributes per switch).
  std::uint64_t flow_adds = 0;
  std::uint64_t flow_dels = 0;
  std::uint64_t leaf_srule_adds = 0;
  std::uint64_t leaf_srule_dels = 0;
  std::uint64_t spine_srule_adds = 0;
  std::uint64_t spine_srule_dels = 0;

  // Ingest-to-install latency of each event, measured when its flush lands.
  util::Distribution install_lag_seconds;
};

class ControlPlane final : public MembershipDriver {
 public:
  ControlPlane(Controller& controller, sim::Fabric& fabric,
               ControlPlaneOptions options = {});

  // --- event ingestion -----------------------------------------------------
  void ingest(const Event& event);
  // MembershipDriver: lets a ChurnSimulator stream through this plane.
  void join(GroupId group, const Member& member) override;
  Member leave(GroupId group, topo::HostId host, std::uint32_t vm) override;
  // Every member VM hosted on `host` leaves its group (the host died).
  // Returns the number of memberships evicted.
  std::size_t host_fail(topo::HostId host);

  // Drains pending updates into the fabric through the wire channel.
  // Returns the number of rule updates applied.
  std::size_t flush();
  std::size_t pending() const noexcept { return pending_.size(); }

  // --- mirror management ---------------------------------------------------
  // Adopts a group that is ALREADY installed in the fabric (e.g. bulk load
  // via create_groups + install_group) without emitting any updates: the
  // mirror is seeded from the controller's current state.
  void track_group(GroupId group);
  // Re-diffs a group against the mirror, emitting whatever it takes to make
  // the fabric match the controller (full install for untracked groups,
  // full removal if the controller no longer has the group). Use after
  // out-of-band controller mutations, e.g. fail_spine header recomputes.
  void refresh(GroupId group);
  // Refreshes every tracked group (failure handling touches many groups).
  void refresh_all();

  const ControlPlaneStats& stats() const noexcept { return stats_; }
  const Controller& controller() const noexcept { return *controller_; }

  // --- causal tracing (DESIGN.md §15) --------------------------------------
  // Attaches a tracer to the plane AND its fabric (nullptr detaches both; not
  // owned). While attached, every churn event opens a trace — a root span on
  // the control lane with "reencode" / "delta_diff" children — each flush
  // gets a wire-lane trace with p4rt framing children and per-update install
  // spans, cross-linked by flow events, and join/leave events arm the
  // fabric's time-to-effect watches. Detached (the default), ingest pays one
  // null test per event and flush keeps its single apply_updates call.
  void set_tracer(obs::Tracer* tracer) noexcept {
    tracer_ = tracer;
    fabric_->set_tracer(tracer);
  }
  obs::Tracer* tracer() const noexcept { return tracer_; }

 private:
  // Rule location keys; std::map keeps flush order deterministic.
  using FlowKey = std::pair<std::uint32_t, topo::HostId>;  // (group addr, host)
  // (group addr, layer, physical switch)
  using SRuleKey = std::tuple<std::uint32_t, std::uint8_t, std::uint32_t>;
  struct PendingKey {
    bool is_flow = true;
    FlowKey flow{};
    SRuleKey srule{};
    bool operator<(const PendingKey& other) const {
      if (is_flow != other.is_flow) return is_flow;  // flows first
      if (is_flow) return flow < other.flow;
      return srule < other.srule;
    }
  };

  struct GroupMirror {
    std::uint32_t address = 0;  // group IPv4, captured at first install
    std::map<topo::HostId, std::uint64_t> flow_hash;
    std::map<std::pair<std::uint8_t, std::uint32_t>, std::uint64_t> srule_hash;
  };

  // Rebuilds `group`'s desired rules from the controller and queues the
  // delta against the mirror. `seed_only` populates the mirror without
  // queueing (track_group).
  void diff_group(GroupId group, bool seed_only);
  void queue(PendingKey key, p4rt::Update update);
  void note_applied(const p4rt::Update& update);
  void maybe_auto_flush();
  void index_membership(GroupId group, topo::HostId host, bool present);

  // Tracing helpers; all no-ops when tracer_ is null.
  obs::TraceContext trace_event_begin(
      const char* name, std::initializer_list<obs::TraceAttr> attrs);
  obs::TraceContext trace_child_begin(const char* name,
                                      const obs::TraceContext& root);
  void trace_end(const obs::TraceContext& span);
  void trace_event_end(const obs::TraceContext& root);

  Controller* controller_;
  sim::Fabric* fabric_;
  ControlPlaneOptions options_;
  ControlPlaneStats stats_;

  std::unordered_map<GroupId, GroupMirror> mirror_;
  // Hosts with at least one member VM of a group — drives host_fail.
  std::unordered_map<topo::HostId, std::unordered_set<GroupId>> host_groups_;

  std::map<PendingKey, p4rt::Update> pending_;
  // Ingest timestamps of events awaiting their flush.
  std::vector<std::chrono::steady_clock::time_point> pending_event_times_;

  // Tracing state: the in-flight event's root context (stamped onto every
  // update the event queues) and the per-pending-rule contexts, aligned with
  // pending_ so flush can attribute each install to its causing event even
  // across coalescing (newest event wins, like the update itself).
  obs::Tracer* tracer_ = nullptr;
  obs::TraceContext event_ctx_{};
  std::map<PendingKey, obs::TraceContext> pending_ctx_;
};

// Canonical 64-bit digest of every installed hypervisor flow and s-rule in
// the fabric. Two fabrics with the same installed state digest equal; the
// equivalence tests use this to pin "streamed deltas == fresh batch
// install" byte-for-byte. local_vms are sorted before hashing: streamed
// joins append members in event order while a batch install follows the
// final member order, and the VM *set* — not its order — is the installed
// state (delivery behavior is order-independent).
std::uint64_t fabric_state_digest(const sim::Fabric& fabric);

}  // namespace elmo::stream
