#include "elmo/tree_encoder.h"

#include <stdexcept>

#include "elmo/bert_encoder.h"
#include "elmo/encoder.h"
#include "elmo/p3fa_encoder.h"

namespace elmo {

TreeEncoder::TreeEncoder(const topo::ClosTopology& topology,
                         const EncoderConfig& config)
    : topo_{&topology},
      config_{config},
      codec_{topology},
      hmax_leaf_{0} {
  validate_encoder_config(topology, config);
  hmax_leaf_ = codec_.derive_hmax_leaf(config);
}

GroupEncoding TreeEncoder::encode(const MulticastTree& tree, SRuleSpace* space,
                                  const std::vector<bool>* legacy_leaf) const {
  SRuleReservers reservers;
  if (space != nullptr) {
    reservers.leaf = [space](std::uint32_t leaf) {
      return space->try_reserve_leaf(leaf);
    };
    reservers.pod_spines = [space](std::uint32_t pod) {
      return space->try_reserve_pod_spines(pod);
    };
  }
  return encode_with(tree, reservers, legacy_leaf);
}

void TreeEncoder::release(const GroupEncoding& encoding,
                          const MulticastTree& tree, SRuleSpace& space) const {
  (void)tree;
  for (const auto& [pod, bitmap] : encoding.spine.s_rules) {
    (void)bitmap;
    space.release_pod_spines(pod);
  }
  for (const auto& [leaf, bitmap] : encoding.leaf.s_rules) {
    (void)bitmap;
    space.release_leaf(leaf);
  }
}

std::size_t TreeEncoder::header_bytes(const MulticastTree& tree,
                                      const GroupEncoding& encoding,
                                      topo::HostId sender) const {
  const auto sender_enc = tree.sender_encoding(sender);
  return codec_.serialize(sender_enc, encoding).size();
}

std::vector<LayerInput> TreeEncoder::spine_inputs(
    const MulticastTree& tree) const {
  std::vector<LayerInput> inputs;
  inputs.reserve(tree.pods().size());
  for (const auto& pod : tree.pods()) {
    inputs.push_back(LayerInput{pod.pod, pod.leaf_ports});
  }
  return inputs;
}

TreeEncoder::LeafInputs TreeEncoder::leaf_inputs(
    const MulticastTree& tree, const SRuleReservers& reservers,
    const std::vector<bool>* legacy_leaf) const {
  LeafInputs out;
  out.inputs.reserve(tree.leaves().size());
  for (const auto& leaf : tree.leaves()) {
    if (legacy_leaf != nullptr && leaf.leaf < legacy_leaf->size() &&
        (*legacy_leaf)[leaf.leaf]) {
      // Legacy switches only understand group tables: force an s-rule.
      // If their table is full the leaf stays uncovered (the paper's
      // incremental-deployment bottleneck); we do NOT put it in the
      // default p-rule, which a legacy chip cannot read either.
      if (reservers.leaf && reservers.leaf(leaf.leaf)) {
        out.legacy_srules.emplace_back(leaf.leaf, leaf.host_ports);
      }
      continue;
    }
    out.inputs.push_back(LayerInput{leaf.leaf, leaf.host_ports});
  }
  return out;
}

void validate_encoder_config(const topo::ClosTopology& topology,
                             const EncoderConfig& config) {
  if (config.hmax_spine == 0) {
    throw std::invalid_argument{
        "EncoderConfig: hmax_spine must be >= 1 — a zero spine p-rule budget "
        "cannot cover any member pod"};
  }
  if (config.kmax == 0) {
    throw std::invalid_argument{
        "EncoderConfig: kmax must be >= 1 — a p-rule carries at least one "
        "switch id"};
  }
  if (config.hmax_spine > kMaxRulesPerLayer) {
    throw std::invalid_argument{
        "EncoderConfig: hmax_spine exceeds the wire format's 7-bit rule "
        "count (max 127 p-rules per layer)"};
  }
  if (config.hmax_leaf_override > kMaxRulesPerLayer) {
    throw std::invalid_argument{
        "EncoderConfig: hmax_leaf_override exceeds the wire format's 7-bit "
        "rule count (max 127 p-rules per layer)"};
  }
  if (config.hmax_leaf_override == 0) {
    // Hmax for the leaf layer is derived from the budget: the budget must
    // fit at least one leaf p-rule at this topology's bitmap widths, or the
    // derivation would silently emit headers that overflow it.
    const HeaderCodec codec{topology};
    const auto min_bytes = codec.max_header_bytes(
        config.hmax_spine, /*hmax_leaf=*/1, config.kmax_spine, config.kmax);
    if (min_bytes > config.header_budget_bytes) {
      throw std::invalid_argument{
          "EncoderConfig: header_budget_bytes (" +
          std::to_string(config.header_budget_bytes) +
          ") cannot fit one leaf p-rule at this topology's bitmap widths — "
          "worst-case header is " + std::to_string(min_bytes) +
          " bytes; raise the budget or set hmax_leaf_override"};
    }
  }
  if (config.encoder == EncoderKind::kP3fa &&
      config.p3fa_egress_classes == 0) {
    throw std::invalid_argument{
        "EncoderConfig: p3fa_egress_classes must be >= 1 — zero egress "
        "classes cannot express any forwarding"};
  }
}

std::unique_ptr<TreeEncoder> make_encoder(const topo::ClosTopology& topology,
                                          const EncoderConfig& config) {
  switch (config.encoder) {
    case EncoderKind::kElmo:
      return std::make_unique<GroupEncoder>(topology, config);
    case EncoderKind::kBert:
      return std::make_unique<BertEncoder>(topology, config);
    case EncoderKind::kP3fa:
      return std::make_unique<P3faEncoder>(topology, config);
  }
  throw std::invalid_argument{"make_encoder: unknown EncoderKind"};
}

const char* to_string(EncoderKind kind) noexcept {
  switch (kind) {
    case EncoderKind::kElmo:
      return "elmo";
    case EncoderKind::kBert:
      return "bert";
    case EncoderKind::kP3fa:
      return "p3fa";
  }
  return "unknown";
}

EncoderKind parse_encoder_kind(std::string_view name) {
  if (name == "elmo") return EncoderKind::kElmo;
  if (name == "bert") return EncoderKind::kBert;
  if (name == "p3fa") return EncoderKind::kP3fa;
  throw std::invalid_argument{"unknown encoder kind: \"" + std::string{name} +
                              "\" (expected elmo, bert, or p3fa)"};
}

}  // namespace elmo
