#include "elmo/srule_space.h"

#include <stdexcept>

namespace elmo {

SRuleSpace::SRuleSpace(const topo::ClosTopology& topology, std::size_t fmax)
    : topo_{&topology},
      fmax_{fmax},
      leaf_rules_(topology.num_leaves(), 0),
      spine_rules_(topology.num_spines(), 0) {}

bool SRuleSpace::try_reserve_leaf(topo::LeafId leaf) {
  auto& used = leaf_rules_.at(leaf);
  if (used >= fmax_) return false;
  ++used;
  return true;
}

void SRuleSpace::release_leaf(topo::LeafId leaf) {
  auto& used = leaf_rules_.at(leaf);
  if (used == 0) throw std::logic_error{"SRuleSpace: leaf release underflow"};
  --used;
}

bool SRuleSpace::try_reserve_pod_spines(topo::PodId pod) {
  for (std::size_t plane = 0; plane < topo_->params().spines_per_pod;
       ++plane) {
    if (spine_rules_.at(topo_->spine_at(pod, plane)) >= fmax_) return false;
  }
  for (std::size_t plane = 0; plane < topo_->params().spines_per_pod;
       ++plane) {
    ++spine_rules_[topo_->spine_at(pod, plane)];
  }
  return true;
}

void SRuleSpace::release_pod_spines(topo::PodId pod) {
  for (std::size_t plane = 0; plane < topo_->params().spines_per_pod;
       ++plane) {
    auto& used = spine_rules_.at(topo_->spine_at(pod, plane));
    if (used == 0) {
      throw std::logic_error{"SRuleSpace: spine release underflow"};
    }
    --used;
  }
}

ConcurrentSRuleCounters::ConcurrentSRuleCounters(const SRuleSpace& space)
    : topo_{&space.topology()},
      fmax_{space.fmax()},
      leaf_rules_(space.leaf_occupancies().size()),
      spine_rules_(space.spine_occupancies().size()) {
  for (std::size_t i = 0; i < leaf_rules_.size(); ++i) {
    leaf_rules_[i].store(space.leaf_occupancies()[i],
                         std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i < spine_rules_.size(); ++i) {
    spine_rules_[i].store(space.spine_occupancies()[i],
                          std::memory_order_relaxed);
  }
}

bool ConcurrentSRuleCounters::try_reserve_leaf(topo::LeafId leaf) noexcept {
  auto& used = leaf_rules_[leaf];
  if (used.fetch_add(1, std::memory_order_relaxed) >= fmax_) {
    used.fetch_sub(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

bool ConcurrentSRuleCounters::try_reserve_pod_spines(
    topo::PodId pod) noexcept {
  const auto planes = topo_->params().spines_per_pod;
  for (std::size_t plane = 0; plane < planes; ++plane) {
    auto& used = spine_rules_[topo_->spine_at(pod, plane)];
    if (used.fetch_add(1, std::memory_order_relaxed) >= fmax_) {
      used.fetch_sub(1, std::memory_order_relaxed);
      for (std::size_t undo = 0; undo < plane; ++undo) {
        spine_rules_[topo_->spine_at(pod, undo)].fetch_sub(
            1, std::memory_order_relaxed);
      }
      return false;
    }
  }
  return true;
}

util::OnlineStats SRuleSpace::leaf_stats() const {
  util::OnlineStats stats;
  for (const auto used : leaf_rules_) stats.add(used);
  return stats;
}

util::OnlineStats SRuleSpace::spine_stats() const {
  util::OnlineStats stats;
  for (const auto used : spine_rules_) stats.add(used);
  return stats;
}

}  // namespace elmo
