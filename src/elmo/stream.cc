#include "elmo/stream.h"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.h"

namespace elmo::stream {
namespace {

// FNV-1a over the rule content; the mirror stores one hash per installed
// rule instead of the rule itself (1M groups × several rules each).
struct ContentHash {
  std::uint64_t h = 1469598103934665603ull;
  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ull;
    }
  }
  void u32(std::uint32_t v) { bytes(&v, sizeof v); }
  void u64(std::uint64_t v) { bytes(&v, sizeof v); }
};

std::uint64_t flow_hash(const p4rt::Update& u) {
  ContentHash hash;
  hash.u32(u.vni);
  hash.u64(u.local_vms.size());
  for (const auto vm : u.local_vms) hash.u32(vm);
  hash.u64(u.elmo_header.size());
  hash.bytes(u.elmo_header.data(), u.elmo_header.size());
  return hash.h;
}

std::uint64_t bitmap_hash(const net::PortBitmap& bitmap) {
  ContentHash hash;
  hash.u64(bitmap.size());
  for (const auto word : bitmap.words()) hash.u64(word);
  return hash.h;
}

struct StreamMetricIds {
  obs::MetricsRegistry::Id events;
  obs::MetricsRegistry::Id updates;
  obs::MetricsRegistry::Id updates_hypervisor;
  obs::MetricsRegistry::Id updates_leaf;
  obs::MetricsRegistry::Id updates_spine;
  obs::MetricsRegistry::Id coalesced;
  obs::MetricsRegistry::Id flushes;
  obs::MetricsRegistry::Id wire_bytes;
  obs::MetricsRegistry::Id install_lag;
  StreamMetricIds() {
    auto& reg = obs::MetricsRegistry::global();
    events = reg.counter("elmo_stream_events_total",
                         "Membership events ingested by the control plane");
    updates = reg.counter("elmo_stream_updates_total",
                          "Delta rule updates applied to the fabric");
    updates_hypervisor =
        reg.counter("elmo_stream_updates_hypervisor_total",
                    "Hypervisor flow updates applied (adds + dels)");
    updates_leaf = reg.counter("elmo_stream_updates_leaf_total",
                               "Leaf s-rule updates applied (adds + dels)");
    updates_spine = reg.counter("elmo_stream_updates_spine_total",
                                "Spine s-rule updates applied (adds + dels)");
    coalesced = reg.counter(
        "elmo_stream_updates_coalesced_total",
        "Pending updates overwritten by a newer update before flushing");
    flushes = reg.counter("elmo_stream_flushes_total",
                          "Update batches pushed over the wire channel");
    wire_bytes = reg.counter("elmo_stream_wire_bytes_total",
                             "p4rt wire bytes crossing the control channel");
    install_lag = reg.histogram(
        "elmo_stream_install_lag_seconds", obs::latency_bounds(),
        "Ingest-to-install latency of one membership event");
  }
};

StreamMetricIds& stream_metric_ids() {
  static StreamMetricIds ids;
  return ids;
}

const char* install_span_name(p4rt::UpdateKind kind) {
  switch (kind) {
    case p4rt::UpdateKind::kHypervisorFlowAdd: return "install:flow_add";
    case p4rt::UpdateKind::kHypervisorFlowDel: return "install:flow_del";
    case p4rt::UpdateKind::kSRuleAdd: return "install:srule_add";
    case p4rt::UpdateKind::kSRuleDel: return "install:srule_del";
  }
  return "install";
}

// Install target: the host for flows, the physical switch for s-rules.
double install_target(const p4rt::Update& u) {
  const bool is_flow = u.kind == p4rt::UpdateKind::kHypervisorFlowAdd ||
                       u.kind == p4rt::UpdateKind::kHypervisorFlowDel;
  return is_flow ? static_cast<double>(u.host)
                 : static_cast<double>(u.switch_id);
}

}  // namespace

ControlPlane::ControlPlane(Controller& controller, sim::Fabric& fabric,
                           ControlPlaneOptions options)
    : controller_{&controller}, fabric_{&fabric}, options_{options} {
  if (options_.flush_threshold == 0) {
    throw std::invalid_argument{"ControlPlane: flush_threshold must be >= 1"};
  }
}

void ControlPlane::ingest(const Event& event) {
  switch (event.kind) {
    case Event::Kind::kJoin:
      join(event.group, event.member);
      break;
    case Event::Kind::kLeave:
      leave(event.group, event.member.host, event.member.vm);
      break;
    case Event::Kind::kHostFail:
      host_fail(event.host);
      break;
  }
}

void ControlPlane::join(GroupId group, const Member& member) {
  pending_event_times_.push_back(std::chrono::steady_clock::now());
  ++stats_.events;
  ++stats_.joins;
  ELMO_METRIC(reg.add(stream_metric_ids().events));
  const auto root = trace_event_begin(
      "churn:join", {{"group", static_cast<double>(group)},
                     {"host", static_cast<double>(member.host)},
                     {"vm", static_cast<double>(member.vm)}});
  const auto queued_before = stats_.updates_coalesced + pending_.size();
  auto span = trace_child_begin("reencode", root);
  controller_->join(group, member);
  trace_end(span);
  span = trace_child_begin("delta_diff", root);
  diff_group(group, /*seed_only=*/false);
  trace_end(span);
  if (stats_.updates_coalesced + pending_.size() == queued_before) {
    ++stats_.clean_events;
  }
  if (tracer_ != nullptr) {
    // Arm the time-to-effect watch: it arms for real when the flow install
    // lands and closes at the first delivery over the fresh rule.
    fabric_->trace_watch(net::Ipv4Address{mirror_[group].address},
                         member.host, root, /*leave=*/false);
  }
  trace_event_end(root);
  maybe_auto_flush();
}

Member ControlPlane::leave(GroupId group, topo::HostId host, std::uint32_t vm) {
  pending_event_times_.push_back(std::chrono::steady_clock::now());
  ++stats_.events;
  ++stats_.leaves;
  ELMO_METRIC(reg.add(stream_metric_ids().events));
  const auto root = trace_event_begin(
      "churn:leave", {{"group", static_cast<double>(group)},
                      {"host", static_cast<double>(host)},
                      {"vm", static_cast<double>(vm)}});
  std::uint32_t addr = 0;
  if (tracer_ != nullptr) {
    const auto mit = mirror_.find(group);
    if (mit != mirror_.end()) addr = mit->second.address;
  }
  const auto queued_before = stats_.updates_coalesced + pending_.size();
  auto span = trace_child_begin("reencode", root);
  auto removed = controller_->leave(group, host, vm);
  trace_end(span);
  span = trace_child_begin("delta_diff", root);
  diff_group(group, /*seed_only=*/false);
  trace_end(span);
  if (stats_.updates_coalesced + pending_.size() == queued_before) {
    ++stats_.clean_events;
  }
  if (tracer_ != nullptr && addr != 0) {
    // Watch only when this leave takes the host's flow out entirely — that
    // is the removal whose time-to-effect (stale deliveries until the
    // FlowDel lands) is measurable at the fabric.
    const auto mit = mirror_.find(group);
    const bool flow_gone =
        mit == mirror_.end() || !mit->second.flow_hash.contains(host);
    if (flow_gone) {
      fabric_->trace_watch(net::Ipv4Address{addr}, host, root,
                           /*leave=*/true);
    }
  }
  trace_event_end(root);
  maybe_auto_flush();
  return removed;
}

std::size_t ControlPlane::host_fail(topo::HostId host) {
  pending_event_times_.push_back(std::chrono::steady_clock::now());
  ++stats_.events;
  ++stats_.host_fails;
  ELMO_METRIC(reg.add(stream_metric_ids().events));
  const auto root = trace_event_begin(
      "churn:host_fail", {{"host", static_cast<double>(host)}});

  std::size_t evicted = 0;
  const auto it = host_groups_.find(host);
  if (it != host_groups_.end()) {
    // Copy: diff_group edits the index under us.
    const std::vector<GroupId> groups{it->second.begin(), it->second.end()};
    for (const auto group : groups) {
      if (!controller_->has_group(group)) continue;
      std::uint32_t addr = 0;
      if (tracer_ != nullptr) {
        const auto mit = mirror_.find(group);
        if (mit != mirror_.end()) addr = mit->second.address;
      }
      // Collect first: Controller::leave invalidates member iteration.
      std::vector<std::uint32_t> vms;
      for (const auto& m : controller_->group(group).members) {
        if (m.host == host) vms.push_back(m.vm);
      }
      auto span = trace_child_begin("reencode", root);
      for (const auto vm : vms) {
        controller_->leave(group, host, vm);
        ++evicted;
      }
      trace_end(span);
      span = trace_child_begin("delta_diff", root);
      diff_group(group, /*seed_only=*/false);
      trace_end(span);
      if (tracer_ != nullptr && addr != 0) {
        const auto mit = mirror_.find(group);
        const bool flow_gone =
            mit == mirror_.end() || !mit->second.flow_hash.contains(host);
        if (flow_gone) {
          fabric_->trace_watch(net::Ipv4Address{addr}, host, root,
                               /*leave=*/true);
        }
      }
    }
  }
  trace_event_end(root);
  maybe_auto_flush();
  return evicted;
}

obs::TraceContext ControlPlane::trace_event_begin(
    const char* name, std::initializer_list<obs::TraceAttr> attrs) {
  if (tracer_ == nullptr) return {};
  const auto root =
      tracer_->begin_span(name, obs::TraceLane::kControl, {}, attrs);
  event_ctx_ = root;
  return root;
}

obs::TraceContext ControlPlane::trace_child_begin(
    const char* name, const obs::TraceContext& root) {
  if (tracer_ == nullptr) return {};
  return tracer_->begin_span(name, obs::TraceLane::kControl, root);
}

void ControlPlane::trace_end(const obs::TraceContext& span) {
  if (tracer_ != nullptr) tracer_->end_span(span);
}

void ControlPlane::trace_event_end(const obs::TraceContext& root) {
  if (tracer_ == nullptr) return;
  tracer_->end_span(root);
  event_ctx_ = {};
}

void ControlPlane::track_group(GroupId group) {
  diff_group(group, /*seed_only=*/true);
}

void ControlPlane::refresh(GroupId group) {
  diff_group(group, /*seed_only=*/false);
  maybe_auto_flush();
}

void ControlPlane::refresh_all() {
  // Collect first: diff_group may erase empty mirrors under us.
  std::vector<GroupId> groups;
  groups.reserve(mirror_.size());
  for (const auto& [group, m] : mirror_) groups.push_back(group);
  std::sort(groups.begin(), groups.end());
  for (const auto group : groups) diff_group(group, /*seed_only=*/false);
  maybe_auto_flush();
}

void ControlPlane::diff_group(GroupId group, bool seed_only) {
  auto& mirror = mirror_[group];
  const bool live = controller_->has_group(group);

  // Desired hypervisor flows, built exactly like Fabric::install_group.
  std::map<topo::HostId, p4rt::Update> flows;
  std::map<std::pair<std::uint8_t, std::uint32_t>, p4rt::Update> srules;
  if (live) {
    const auto& g = controller_->group(group);
    mirror.address = g.address.value;
    for (const auto& member : g.members) {
      const auto [it, inserted] = flows.try_emplace(member.host);
      auto& u = it->second;
      if (inserted) {
        u.kind = p4rt::UpdateKind::kHypervisorFlowAdd;
        u.host = member.host;
        u.group = g.address;
        u.vni = g.tenant;
      }
      if (can_receive(member.role)) u.local_vms.push_back(member.vm);
      if (can_send(member.role) && u.elmo_header.empty()) {
        u.elmo_header = controller_->header_for(group, member.host);
      }
    }
    for (const auto& [leaf, bitmap] : g.encoding.leaf.s_rules) {
      p4rt::Update u;
      u.kind = p4rt::UpdateKind::kSRuleAdd;
      u.layer = topo::Layer::kLeaf;
      u.switch_id = leaf;
      u.group = g.address;
      u.ports = bitmap;
      srules.emplace(
          std::pair{static_cast<std::uint8_t>(topo::Layer::kLeaf), leaf},
          std::move(u));
    }
    const auto& t = controller_->topology();
    for (const auto& [pod, bitmap] : g.encoding.spine.s_rules) {
      for (std::size_t plane = 0; plane < t.params().spines_per_pod; ++plane) {
        const auto spine = t.spine_at(pod, plane);
        p4rt::Update u;
        u.kind = p4rt::UpdateKind::kSRuleAdd;
        u.layer = topo::Layer::kSpine;
        u.switch_id = spine;
        u.group = g.address;
        u.ports = bitmap;
        srules.emplace(
            std::pair{static_cast<std::uint8_t>(topo::Layer::kSpine), spine},
            std::move(u));
      }
    }
  }

  const net::Ipv4Address address{mirror.address};

  // Flows: adds/changes, then removals of hosts no longer holding a flow.
  for (auto& [host, update] : flows) {
    const auto hash = flow_hash(update);
    const auto it = mirror.flow_hash.find(host);
    if (it != mirror.flow_hash.end() && it->second == hash) continue;
    mirror.flow_hash[host] = hash;
    index_membership(group, host, true);
    if (!seed_only) {
      queue(PendingKey{true, FlowKey{address.value, host}, {}},
            std::move(update));
    }
  }
  for (auto it = mirror.flow_hash.begin(); it != mirror.flow_hash.end();) {
    const auto host = it->first;
    if (flows.contains(host)) {
      ++it;
      continue;
    }
    it = mirror.flow_hash.erase(it);
    index_membership(group, host, false);
    if (!seed_only) {
      p4rt::Update del;
      del.kind = p4rt::UpdateKind::kHypervisorFlowDel;
      del.host = host;
      del.group = address;
      queue(PendingKey{true, FlowKey{address.value, host}, {}},
            std::move(del));
    }
  }

  // S-rules, same shape.
  for (auto& [key, update] : srules) {
    const auto hash = bitmap_hash(update.ports);
    const auto it = mirror.srule_hash.find(key);
    if (it != mirror.srule_hash.end() && it->second == hash) continue;
    mirror.srule_hash[key] = hash;
    if (!seed_only) {
      queue(PendingKey{false, {}, SRuleKey{address.value, key.first,
                                           key.second}},
            std::move(update));
    }
  }
  for (auto it = mirror.srule_hash.begin(); it != mirror.srule_hash.end();) {
    if (srules.contains(it->first)) {
      ++it;
      continue;
    }
    const auto [layer, switch_id] = it->first;
    it = mirror.srule_hash.erase(it);
    if (!seed_only) {
      p4rt::Update del;
      del.kind = p4rt::UpdateKind::kSRuleDel;
      del.layer = static_cast<topo::Layer>(layer);
      del.switch_id = switch_id;
      del.group = address;
      queue(PendingKey{false, {}, SRuleKey{address.value, layer, switch_id}},
            std::move(del));
    }
  }

  if (!live && mirror.flow_hash.empty() && mirror.srule_hash.empty()) {
    mirror_.erase(group);
  }
}

void ControlPlane::queue(PendingKey key, p4rt::Update update) {
  if (tracer_ != nullptr && event_ctx_.trace_id != 0) {
    // Attribute the pending rule to the event that (last) produced it.
    pending_ctx_.insert_or_assign(key, event_ctx_);
  }
  const auto [it, inserted] = pending_.insert_or_assign(std::move(key),
                                                        std::move(update));
  (void)it;
  if (!inserted) {
    ++stats_.updates_coalesced;
    ELMO_METRIC(reg.add(stream_metric_ids().coalesced));
  }
}

void ControlPlane::note_applied(const p4rt::Update& update) {
  switch (update.kind) {
    case p4rt::UpdateKind::kHypervisorFlowAdd:
      ++stats_.flow_adds;
      ELMO_METRIC(reg.add(stream_metric_ids().updates_hypervisor));
      break;
    case p4rt::UpdateKind::kHypervisorFlowDel:
      ++stats_.flow_dels;
      ELMO_METRIC(reg.add(stream_metric_ids().updates_hypervisor));
      break;
    case p4rt::UpdateKind::kSRuleAdd:
      if (update.layer == topo::Layer::kLeaf) {
        ++stats_.leaf_srule_adds;
        ELMO_METRIC(reg.add(stream_metric_ids().updates_leaf));
      } else {
        ++stats_.spine_srule_adds;
        ELMO_METRIC(reg.add(stream_metric_ids().updates_spine));
      }
      break;
    case p4rt::UpdateKind::kSRuleDel:
      if (update.layer == topo::Layer::kLeaf) {
        ++stats_.leaf_srule_dels;
        ELMO_METRIC(reg.add(stream_metric_ids().updates_leaf));
      } else {
        ++stats_.spine_srule_dels;
        ELMO_METRIC(reg.add(stream_metric_ids().updates_spine));
      }
      break;
  }
}

void ControlPlane::maybe_auto_flush() {
  if (pending_.size() >= options_.flush_threshold) flush();
}

std::size_t ControlPlane::flush() {
  if (pending_.empty() && pending_event_times_.empty()) return 0;

  std::size_t applied = 0;
  if (!pending_.empty()) {
    const bool traced = tracer_ != nullptr;
    std::vector<p4rt::Update> batch;
    std::vector<obs::TraceContext> ctxs;  // aligned with batch when traced
    batch.reserve(pending_.size());
    if (traced) ctxs.reserve(pending_.size());
    for (auto& [key, update] : pending_) {
      if (traced) {
        const auto cit = pending_ctx_.find(key);
        ctxs.push_back(cit != pending_ctx_.end() ? cit->second
                                                 : obs::TraceContext{});
      }
      batch.push_back(std::move(update));
    }
    pending_.clear();
    pending_ctx_.clear();

    obs::TraceContext flush_ctx{};
    if (traced) {
      flush_ctx = tracer_->begin_span(
          "flush", obs::TraceLane::kWire, {},
          {{"updates", static_cast<double>(batch.size())}});
      // One causal edge per distinct contributing churn event.
      std::vector<std::uint64_t> seen;
      for (const auto& ctx : ctxs) {
        if (ctx.trace_id == 0) continue;
        if (std::find(seen.begin(), seen.end(), ctx.trace_id) != seen.end()) {
          continue;
        }
        seen.push_back(ctx.trace_id);
        tracer_->flow(ctx, obs::TraceLane::kControl, flush_ctx,
                      obs::TraceLane::kWire);
      }
    }

    obs::TraceContext span{};
    if (traced) {
      span = tracer_->begin_span("p4rt_encode", obs::TraceLane::kWire,
                                 flush_ctx);
    }
    const auto wire = p4rt::encode(batch);
    if (traced) {
      tracer_->end_span(span);
      span = tracer_->begin_span("p4rt_decode", obs::TraceLane::kWire,
                                 flush_ctx);
    }
    const auto decoded = p4rt::decode(wire);
    if (traced) tracer_->end_span(span);

    if (!traced) {
      p4rt::apply_updates(*fabric_, decoded);
    } else {
      // Per-update install spans. decode preserves batch order, so
      // decoded[i] pairs with ctxs[i]; flow installs also poke the fabric's
      // time-to-effect watches.
      for (std::size_t i = 0; i < decoded.size(); ++i) {
        const auto& u = decoded[i];
        const auto ictx = tracer_->begin_span(
            install_span_name(u.kind), obs::TraceLane::kInstall, flush_ctx,
            {{"group", static_cast<double>(u.group.value)},
             {"target", install_target(u)}});
        p4rt::apply_update(*fabric_, u);
        tracer_->end_span(ictx);
        if (i < ctxs.size() && ctxs[i].trace_id != 0) {
          tracer_->flow(ctxs[i], obs::TraceLane::kControl, ictx,
                        obs::TraceLane::kInstall);
        }
        if (u.kind == p4rt::UpdateKind::kHypervisorFlowAdd ||
            u.kind == p4rt::UpdateKind::kHypervisorFlowDel) {
          fabric_->trace_rule_installed(
              u.group, u.host, ictx,
              u.kind == p4rt::UpdateKind::kHypervisorFlowDel);
        }
      }
    }

    applied = decoded.size();
    stats_.wire_bytes += wire.size();
    stats_.updates_applied += applied;
    ++stats_.batches_encoded;
    for (const auto& u : decoded) note_applied(u);
    ELMO_METRIC({
      reg.add(stream_metric_ids().wire_bytes, wire.size());
      reg.add(stream_metric_ids().updates, applied);
    });
    if (traced) tracer_->end_span(flush_ctx);
  }

  ++stats_.flushes;
  ELMO_METRIC(reg.add(stream_metric_ids().flushes));

  const auto now = std::chrono::steady_clock::now();
  for (const auto stamp : pending_event_times_) {
    const auto lag = std::chrono::duration<double>(now - stamp).count();
    stats_.install_lag_seconds.add(lag);
    ELMO_METRIC(reg.observe(stream_metric_ids().install_lag, lag));
  }
  pending_event_times_.clear();
  return applied;
}

std::uint64_t fabric_state_digest(const sim::Fabric& fabric) {
  const auto& t = fabric.topology();
  ContentHash digest;

  auto hash_switch_table = [&digest](const dp::NetworkSwitch& sw,
                                     std::uint64_t tag) {
    std::vector<std::uint32_t> groups;
    groups.reserve(sw.srules().size());
    for (const auto& [addr, bitmap] : sw.srules()) {
      (void)bitmap;
      groups.push_back(addr);
    }
    std::sort(groups.begin(), groups.end());
    for (const auto addr : groups) {
      digest.u64(tag);
      digest.u32(addr);
      digest.u64(bitmap_hash(*sw.srule(net::Ipv4Address{addr})));
    }
  };

  for (topo::HostId h = 0; h < t.num_hosts(); ++h) {
    const auto& hv = fabric.hypervisor(h);
    std::vector<std::uint32_t> groups;
    groups.reserve(hv.flows().size());
    for (const auto& [addr, flow] : hv.flows()) {
      (void)flow;
      groups.push_back(addr);
    }
    std::sort(groups.begin(), groups.end());
    for (const auto addr : groups) {
      const auto* flow = hv.flow(net::Ipv4Address{addr});
      digest.u64(0xf10f'0000'0000'0000ull | h);
      digest.u32(addr);
      digest.u32(flow->vni);
      auto vms = flow->local_vms;
      std::sort(vms.begin(), vms.end());
      digest.u64(vms.size());
      for (const auto vm : vms) digest.u32(vm);
      digest.u64(flow->elmo_header.size());
      digest.bytes(flow->elmo_header.data(), flow->elmo_header.size());
    }
  }
  for (topo::LeafId l = 0; l < t.num_leaves(); ++l) {
    hash_switch_table(fabric.leaf(l), 0x1eaf'0000'0000'0000ull | l);
  }
  for (topo::SpineId s = 0; s < t.num_spines(); ++s) {
    hash_switch_table(fabric.spine(s), 0x5071'0000'0000'0000ull | s);
  }
  return digest.h;
}

void ControlPlane::index_membership(GroupId group, topo::HostId host,
                                    bool present) {
  if (present) {
    host_groups_[host].insert(group);
    return;
  }
  const auto it = host_groups_.find(host);
  if (it == host_groups_.end()) return;
  it->second.erase(group);
  if (it->second.empty()) host_groups_.erase(it);
}

}  // namespace elmo::stream
