#include "elmo/encoder.h"

#include "elmo/clustering.h"

namespace elmo {

GroupEncoding GroupEncoder::encode_with(
    const MulticastTree& tree, const SRuleReservers& reservers,
    const std::vector<bool>* legacy_leaf) const {
  GroupEncoding out;

  // --- spine layer (logical spines, one per member pod) -------------------
  {
    const auto inputs = spine_inputs(tree);
    ClusteringLimits limits{
        .hmax = config_.hmax_spine,
        .kmax = spine_kmax(),
        .redundancy_limit = config_.redundancy_limit,
        .mode = config_.redundancy_mode,
    };
    out.spine = cluster_layer(inputs, limits, reservers.pod_spines);
  }

  // --- leaf layer ----------------------------------------------------------
  {
    const auto leaf = leaf_inputs(tree, reservers, legacy_leaf);
    ClusteringLimits limits{
        .hmax = hmax_leaf_,
        .kmax = config_.kmax,
        .redundancy_limit = config_.redundancy_limit,
        .mode = config_.redundancy_mode,
    };
    out.leaf = cluster_layer(leaf.inputs, limits, reservers.leaf);
    out.leaf.s_rules.insert(out.leaf.s_rules.end(),
                            leaf.legacy_srules.begin(),
                            leaf.legacy_srules.end());
  }

  return out;
}

}  // namespace elmo
