#include "elmo/encoder.h"

namespace elmo {

GroupEncoder::GroupEncoder(const topo::ClosTopology& topology,
                           const EncoderConfig& config)
    : topo_{&topology},
      config_{config},
      codec_{topology},
      hmax_leaf_{codec_.derive_hmax_leaf(config)} {}

GroupEncoding GroupEncoder::encode(const MulticastTree& tree,
                                   SRuleSpace* space,
                                   const std::vector<bool>* legacy_leaf) const {
  SRuleReservers reservers;
  if (space != nullptr) {
    reservers.leaf = [space](std::uint32_t leaf) {
      return space->try_reserve_leaf(leaf);
    };
    reservers.pod_spines = [space](std::uint32_t pod) {
      return space->try_reserve_pod_spines(pod);
    };
  }
  return encode_with(tree, reservers, legacy_leaf);
}

GroupEncoding GroupEncoder::encode_with(
    const MulticastTree& tree, const SRuleReservers& reservers,
    const std::vector<bool>* legacy_leaf) const {
  GroupEncoding out;

  // --- spine layer (logical spines, one per member pod) -------------------
  {
    std::vector<LayerInput> inputs;
    inputs.reserve(tree.pods().size());
    for (const auto& pod : tree.pods()) {
      inputs.push_back(LayerInput{pod.pod, pod.leaf_ports});
    }
    ClusteringLimits limits{
        .hmax = config_.hmax_spine,
        .kmax = config_.kmax_spine == 0 ? topo_->num_pods()
                                        : config_.kmax_spine,
        .redundancy_limit = config_.redundancy_limit,
        .mode = config_.redundancy_mode,
    };
    out.spine = cluster_layer(inputs, limits, reservers.pod_spines);
  }

  // --- leaf layer ----------------------------------------------------------
  {
    std::vector<LayerInput> inputs;
    std::vector<std::pair<std::uint32_t, net::PortBitmap>> legacy_srules;
    inputs.reserve(tree.leaves().size());
    for (const auto& leaf : tree.leaves()) {
      if (legacy_leaf != nullptr && leaf.leaf < legacy_leaf->size() &&
          (*legacy_leaf)[leaf.leaf]) {
        // Legacy switches only understand group tables: force an s-rule.
        // If their table is full the leaf stays uncovered (the paper's
        // incremental-deployment bottleneck); we do NOT put it in the
        // default p-rule, which a legacy chip cannot read either.
        if (reservers.leaf && reservers.leaf(leaf.leaf)) {
          legacy_srules.emplace_back(leaf.leaf, leaf.host_ports);
        }
        continue;
      }
      inputs.push_back(LayerInput{leaf.leaf, leaf.host_ports});
    }
    ClusteringLimits limits{
        .hmax = hmax_leaf_,
        .kmax = config_.kmax,
        .redundancy_limit = config_.redundancy_limit,
        .mode = config_.redundancy_mode,
    };
    out.leaf = cluster_layer(inputs, limits, reservers.leaf);
    out.leaf.s_rules.insert(out.leaf.s_rules.end(), legacy_srules.begin(),
                            legacy_srules.end());
  }

  return out;
}

void GroupEncoder::release(const GroupEncoding& encoding,
                           const MulticastTree& tree,
                           SRuleSpace& space) const {
  (void)tree;
  for (const auto& [pod, bitmap] : encoding.spine.s_rules) {
    (void)bitmap;
    space.release_pod_spines(pod);
  }
  for (const auto& [leaf, bitmap] : encoding.leaf.s_rules) {
    (void)bitmap;
    space.release_leaf(leaf);
  }
}

std::size_t GroupEncoder::header_bytes(const MulticastTree& tree,
                                       const GroupEncoding& encoding,
                                       topo::HostId sender) const {
  const auto sender_enc = tree.sender_encoding(sender);
  return codec_.serialize(sender_enc, encoding).size();
}

}  // namespace elmo
