#include "elmo/p3fa_encoder.h"

#include <algorithm>
#include <limits>

namespace elmo {
namespace {

// One egress class under quantization: the shared (union) bitmap plus the
// member switches with their exact bitmaps (kept for precise s-rule spill).
struct EgressClass {
  net::PortBitmap bitmap;
  std::vector<const LayerInput*> members;
};

}  // namespace

// Deterministic throughout: inputs are sorted by switch id, classes keep
// first-appearance order, and all ties break toward the lowest index.
LayerEncoding P3faEncoder::encode_layer(
    std::vector<LayerInput> inputs, std::size_t hmax, std::size_t kmax,
    const SRuleReserver& reserve_srule) const {
  LayerEncoding out;
  if (inputs.empty()) return out;

  std::sort(inputs.begin(), inputs.end(),
            [](const LayerInput& a, const LayerInput& b) {
              return a.switch_id < b.switch_id;
            });

  // Seed one class per distinct exact bitmap (first-appearance order).
  std::vector<EgressClass> classes;
  for (const auto& input : inputs) {
    auto it = std::find_if(classes.begin(), classes.end(),
                           [&](const EgressClass& c) {
                             return c.bitmap == input.bitmap;
                           });
    if (it == classes.end()) {
      classes.push_back(EgressClass{input.bitmap, {&input}});
    } else {
      it->members.push_back(&input);
    }
  }

  // Quantize down to at most E classes: repeatedly dissolve the smallest
  // class into the neighbour whose union bitmap grows least. O(C^2) overall.
  const std::size_t max_classes = config_.p3fa_egress_classes;
  while (classes.size() > max_classes) {
    std::size_t victim = 0;
    for (std::size_t i = 1; i < classes.size(); ++i) {
      const auto& a = classes[i];
      const auto& v = classes[victim];
      if (a.members.size() < v.members.size() ||
          (a.members.size() == v.members.size() &&
           a.bitmap.popcount() < v.bitmap.popcount())) {
        victim = i;
      }
    }
    std::size_t target = classes.size();
    std::size_t best_union = std::numeric_limits<std::size_t>::max();
    for (std::size_t i = 0; i < classes.size(); ++i) {
      if (i == victim) continue;
      const auto union_pop =
          (classes[i].bitmap | classes[victim].bitmap).popcount();
      if (union_pop < best_union) {
        best_union = union_pop;
        target = i;
      }
    }
    auto& dst = classes[target];
    auto& src = classes[victim];
    dst.bitmap |= src.bitmap;
    dst.members.insert(dst.members.end(), src.members.begin(),
                       src.members.end());
    classes.erase(classes.begin() + static_cast<std::ptrdiff_t>(victim));
  }

  // Pack classes into p-rules, largest class first: a class of m switches
  // costs ceil(m / kmax) rules, all sharing the class bitmap. Switches that
  // overflow Hmax spill with their exact bitmaps.
  std::sort(classes.begin(), classes.end(),
            [](const EgressClass& a, const EgressClass& b) {
              if (a.members.size() != b.members.size()) {
                return a.members.size() > b.members.size();
              }
              return a.members.front()->switch_id <
                     b.members.front()->switch_id;
            });

  std::vector<const LayerInput*> spill;
  for (auto& cls : classes) {
    std::sort(cls.members.begin(), cls.members.end(),
              [](const LayerInput* a, const LayerInput* b) {
                return a->switch_id < b->switch_id;
              });
    for (std::size_t at = 0; at < cls.members.size(); at += kmax) {
      const auto take = std::min(kmax, cls.members.size() - at);
      if (out.p_rules.size() >= hmax) {
        for (std::size_t i = 0; i < take; ++i) {
          spill.push_back(cls.members[at + i]);
        }
        continue;
      }
      PRule rule;
      rule.bitmap = cls.bitmap;
      for (std::size_t i = 0; i < take; ++i) {
        rule.switch_ids.push_back(cls.members[at + i]->switch_id);
      }
      out.p_rules.push_back(std::move(rule));
    }
  }

  std::sort(spill.begin(), spill.end(),
            [](const LayerInput* a, const LayerInput* b) {
              return a->switch_id < b->switch_id;
            });
  for (const auto* input : spill) {
    if (reserve_srule && reserve_srule(input->switch_id)) {
      out.s_rules.emplace_back(input->switch_id, input->bitmap);
    } else {
      if (!out.default_rule) {
        out.default_rule = net::PortBitmap{input->bitmap.size()};
      }
      *out.default_rule |= input->bitmap;
    }
  }
  return out;
}

GroupEncoding P3faEncoder::encode_with(
    const MulticastTree& tree, const SRuleReservers& reservers,
    const std::vector<bool>* legacy_leaf) const {
  GroupEncoding out;
  out.spine = encode_layer(spine_inputs(tree), config_.hmax_spine,
                           spine_kmax(), reservers.pod_spines);

  auto leaf = leaf_inputs(tree, reservers, legacy_leaf);
  out.leaf = encode_layer(std::move(leaf.inputs), hmax_leaf_, config_.kmax,
                          reservers.leaf);
  out.leaf.s_rules.insert(out.leaf.s_rules.end(), leaf.legacy_srules.begin(),
                          leaf.legacy_srules.end());
  return out;
}

}  // namespace elmo
