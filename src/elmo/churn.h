// Group-membership churn driver and update-rate accounting (paper §5.1.3a,
// Table 2).
//
// Join/leave events are generated with per-group frequency proportional to
// group size; joining VMs are drawn uniformly from the tenant's VMs not in
// the group, leaving members uniformly from current members; each member
// carries a random role (sender / receiver / both). The CountingSink
// attributes every controller-issued rule update to the switch that received
// it so the bench can report average and maximum per-switch update rates.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_set>
#include <vector>

#include "cloud/cloud.h"
#include "elmo/controller.h"
#include "util/fenwick.h"
#include "util/rng.h"
#include "util/stats.h"

namespace elmo {

class CountingSink final : public UpdateSink {
 public:
  explicit CountingSink(const topo::ClosTopology& topology);

  void hypervisor_update(topo::HostId host) override;
  void network_switch_update(topo::Layer layer, std::uint32_t id) override;

  void reset();

  struct Rates {
    double avg = 0.0;  // mean updates/sec across all switches of the type
    double max = 0.0;  // the busiest switch of the type
    std::uint64_t total = 0;
  };
  // `seconds` is the simulated wall-clock the counted events span. Throws
  // std::invalid_argument when seconds <= 0 — a miswired bench used to get
  // silent all-zero rates and record them as data.
  Rates hypervisor_rates(double seconds) const;
  Rates leaf_rates(double seconds) const;
  Rates spine_rates(double seconds) const;
  Rates core_rates(double seconds) const;

 private:
  static Rates rates_of(std::span<const std::uint64_t> counts, double seconds);

  std::vector<std::uint64_t> hypervisor_;
  std::vector<std::uint64_t> leaf_;
  std::vector<std::uint64_t> spine_;
  std::vector<std::uint64_t> core_;
};

struct ChurnParams {
  std::size_t events = 100'000;
  double events_per_second = 1000.0;  // the paper's churn intensity
  std::size_t min_group_size = 5;
};

// Where ChurnSimulator routes the membership mutations it generates. The
// default routes straight into the Controller (batch semantics); the
// streaming ControlPlane implements this to ingest the same events as
// coalesced delta installs.
class MembershipDriver {
 public:
  virtual ~MembershipDriver() = default;
  virtual void join(GroupId group, const Member& member) = 0;
  virtual Member leave(GroupId group, topo::HostId host, std::uint32_t vm) = 0;
};

class ChurnSimulator {
 public:
  // `groups` are controller group ids; `cloud` provides the tenant VM pools
  // joins are drawn from.
  ChurnSimulator(Controller& controller, const cloud::Cloud& cloud,
                 std::span<const GroupId> groups);

  // Same, over an explicit tenant table (must outlive the simulator). Lets
  // tests and the verify harness drive churn over hand-built placements,
  // including tenants with several VMs on one host (vm_hosts entries may
  // repeat), which the Cloud placer never produces.
  ChurnSimulator(Controller& controller, std::span<const cloud::Tenant> tenants,
                 std::span<const GroupId> groups);

  // Routes subsequent events through `driver` instead of the Controller
  // directly (nullptr restores the default). The driver must mutate the same
  // Controller this simulator reads its group state from.
  void set_driver(MembershipDriver* driver) noexcept { driver_ = driver; }

  // Runs `params.events` event attempts; returns the *effective* simulated
  // duration in seconds — attempts that were silent no-ops (group pinned at
  // min size with its tenant exhausted) are excluded, so rates computed
  // against this duration are not diluted under tight tenant packing.
  double run(const ChurnParams& params, util::Rng& rng);

  // One join-or-leave event (the body of run()'s loop), for callers that
  // validate invariants between events. Returns false when the attempt was
  // a no-op (nothing was mutated).
  bool step(std::size_t min_group_size, util::Rng& rng);

  std::size_t joins() const noexcept { return joins_; }
  std::size_t leaves() const noexcept { return leaves_; }
  // Attempts that mutated nothing (counted, never silently folded into
  // event totals or rate denominators).
  std::size_t noop_events() const noexcept { return noop_events_; }

  // Tenant-local VM indices the simulator believes are in group `gi` (index
  // into the constructor's group list, not a GroupId).
  const std::unordered_set<std::uint32_t>& membership(std::size_t gi) const {
    return membership_.at(gi);
  }
  GroupId group_id(std::size_t gi) const { return groups_.at(gi); }
  std::size_t num_groups() const noexcept { return groups_.size(); }

  // Live sampling weight of group `gi` (its current size). Kept in lockstep
  // with joins/leaves via a Fenwick tree so long campaigns stay
  // size-proportional as groups grow and shrink.
  std::uint64_t sampling_weight(std::size_t gi) const {
    return weights_.weight(gi);
  }

 private:
  void do_join(std::size_t group_index, util::Rng& rng);
  void do_leave(std::size_t group_index, util::Rng& rng);

  Controller* controller_;
  std::span<const cloud::Tenant> tenants_;
  std::vector<GroupId> groups_;
  MembershipDriver* driver_ = nullptr;
  // Tenant-local VM indices currently in each group (parallel to groups_).
  std::vector<std::unordered_set<std::uint32_t>> membership_;
  util::FenwickTree weights_;
  std::size_t joins_ = 0;
  std::size_t leaves_ = 0;
  std::size_t noop_events_ = 0;
};

}  // namespace elmo
