#include "elmo/evaluator.h"

#include <vector>

namespace elmo {

TrafficReport TrafficEvaluator::evaluate(const MulticastTree& tree,
                                         const GroupEncoding& encoding,
                                         topo::HostId sender,
                                         std::size_t payload_bytes,
                                         std::uint64_t flow_hash,
                                         const topo::FailureSet* failures,
                                         const std::vector<bool>* legacy_leaf) const {
  const auto& t = *topo_;
  const topo::FailureSet no_failures;
  const auto& fails = failures != nullptr ? *failures : no_failures;

  const auto route = tree.sender_route(sender, fails);
  const auto& senc = route.encoding;

  const auto header = codec_.serialize(senc, encoding);
  const auto extents = codec_.scan_sections(header);
  const std::size_t total = extents.back().end;

  // Bytes of Elmo header left on the wire once every section before the
  // first one the next hop needs has been popped. Sections are serialized in
  // ascending tag order with END last, so scan for the first tag >= needed.
  auto remaining_from = [&](SectionTag first_needed) -> std::size_t {
    for (const auto& e : extents) {
      if (e.tag == SectionTag::kEnd ||
          static_cast<int>(e.tag) >= static_cast<int>(first_needed)) {
        return total - e.begin;
      }
    }
    return 0;
  };

  TrafficReport report;
  report.header_bytes_at_source = total;

  auto wire = [&](std::size_t elmo_bytes) {
    return static_cast<std::uint64_t>(net::kOuterHeaderBytes + elmo_bytes +
                                      payload_bytes);
  };
  auto count = [&](std::size_t elmo_bytes) {
    report.elmo_wire_bytes += wire(elmo_bytes);
    ++report.elmo_link_transmissions;
  };

  report.delivery.members_expected =
      tree.num_members() - (tree.is_member(sender) ? 1 : 0);
  std::unordered_set<topo::HostId> reached;
  reached.reserve(tree.num_members() * 2);

  // Which rule class produced a delivery, for the excess-cause split.
  enum class CopyVia { kExact, kSharedPRule, kSRule, kDefault };
  auto deliver = [&](topo::HostId host, CopyVia via) {
    count(0);  // leaf->host: egress invalidated all p-rules
    bool excess = true;
    if (host != sender && tree.is_member(host)) {
      if (reached.insert(host).second) {
        ++report.delivery.members_reached;
        excess = false;
      } else {
        ++report.delivery.duplicate_deliveries;
      }
    } else {
      ++report.delivery.spurious_deliveries;
    }
    if (!excess) return;
    switch (via) {
      case CopyVia::kExact:
        ++report.delivery.excess_via_exact;
        break;
      case CopyVia::kSharedPRule:
        ++report.delivery.excess_via_shared_prule;
        break;
      case CopyVia::kSRule:
        ++report.delivery.excess_via_srule;
        break;
      case CopyVia::kDefault:
        ++report.delivery.excess_via_default;
        break;
    }
  };

  // Per-switch lookup state for the downstream layers.
  std::unordered_map<std::uint32_t, const net::PortBitmap*> spine_prule;
  std::unordered_map<std::uint32_t, const net::PortBitmap*> leaf_prule;
  for (const auto& rule : encoding.spine.p_rules) {
    for (const auto id : rule.switch_ids) spine_prule[id] = &rule.bitmap;
  }
  for (const auto& rule : encoding.leaf.p_rules) {
    for (const auto id : rule.switch_ids) leaf_prule[id] = &rule.bitmap;
  }
  std::unordered_map<std::uint32_t, const net::PortBitmap*> spine_srule;
  std::unordered_map<std::uint32_t, const net::PortBitmap*> leaf_srule;
  for (const auto& [id, bitmap] : encoding.spine.s_rules) {
    spine_srule[id] = &bitmap;
  }
  for (const auto& [id, bitmap] : encoding.leaf.s_rules) {
    leaf_srule[id] = &bitmap;
  }
  // Exact per-leaf tree bitmaps, to tell a shared p-rule's superset bits
  // from its exact bits when attributing excess copies.
  std::unordered_map<std::uint32_t, const net::PortBitmap*> exact_leaf;
  for (const auto& leaf : tree.leaves()) {
    exact_leaf[leaf.leaf] = &leaf.host_ports;
  }

  const std::size_t leaf_stage = remaining_from(SectionTag::kLeafRules);

  // Downstream leaf processing: p-rule match, else s-rule, else default.
  // A legacy leaf cannot parse the header at all, so only its group table
  // (s-rule) applies — falling through to the default p-rule here would
  // deliver copies the real switch drops.
  auto process_leaf_down = [&](topo::LeafId leaf) {
    const bool legacy = legacy_leaf != nullptr && leaf < legacy_leaf->size() &&
                        (*legacy_leaf)[leaf];
    const net::PortBitmap* bitmap = nullptr;
    CopyVia via = CopyVia::kDefault;
    bool from_prule = false;
    if (const auto it = leaf_prule.find(leaf);
        !legacy && it != leaf_prule.end()) {
      bitmap = it->second;
      from_prule = true;
    } else if (const auto sit = leaf_srule.find(leaf); sit != leaf_srule.end()) {
      bitmap = sit->second;
      via = CopyVia::kSRule;
    } else if (!legacy && encoding.leaf.default_rule) {
      bitmap = &*encoding.leaf.default_rule;
      via = CopyVia::kDefault;
    }
    if (bitmap == nullptr) return;
    const net::PortBitmap* exact = nullptr;
    if (from_prule) {
      const auto eit = exact_leaf.find(leaf);
      exact = eit != exact_leaf.end() ? eit->second : nullptr;
    }
    bitmap->for_each_set([&](std::size_t port) {
      if (from_prule) {
        via = (exact != nullptr && exact->test(port)) ? CopyVia::kExact
                                                      : CopyVia::kSharedPRule;
      }
      deliver(t.host_at(leaf, port), via);
    });
  };

  // Downstream spine processing for a pod the core fanned out to.
  auto process_pod_down = [&](topo::PodId pod) {
    const net::PortBitmap* bitmap = nullptr;
    if (const auto it = spine_prule.find(pod); it != spine_prule.end()) {
      bitmap = it->second;
    } else if (const auto sit = spine_srule.find(pod); sit != spine_srule.end()) {
      bitmap = sit->second;
    } else if (encoding.spine.default_rule) {
      bitmap = &*encoding.spine.default_rule;
    }
    if (bitmap == nullptr) return;
    bitmap->for_each_set([&](std::size_t leaf_port) {
      count(leaf_stage);  // spine->leaf
      process_leaf_down(t.leaf_at(pod, leaf_port));
    });
  };

  const auto sender_leaf = t.leaf_of_host(sender);
  const auto sender_pod = t.pod_of_leaf(sender_leaf);

  count(total);  // host->leaf: hypervisor pushed the full header

  // --- upstream leaf -------------------------------------------------------
  senc.u_leaf.down.for_each_set([&](std::size_t port) {
    deliver(t.host_at(sender_leaf, port), CopyVia::kExact);
  });

  std::vector<std::size_t> up_planes;
  if (senc.u_leaf.multipath) {
    up_planes.push_back(flow_hash % t.leaf_up_ports());
  } else {
    senc.u_leaf.up.for_each_set(
        [&](std::size_t plane) { up_planes.push_back(plane); });
  }

  const std::size_t after_uleaf = remaining_from(SectionTag::kUSpine);
  const std::size_t after_uspine = remaining_from(SectionTag::kCore);
  const std::size_t after_core = remaining_from(SectionTag::kSpineRules);

  for (const auto plane : up_planes) {
    count(after_uleaf);  // leaf->spine
    if (fails.spine_failed(t.spine_at(sender_pod, plane))) continue;  // lost
    if (!senc.u_spine) continue;

    // Upstream spine: serve other member leaves of the sender's pod.
    senc.u_spine->down.for_each_set([&](std::size_t leaf_port) {
      count(leaf_stage);
      process_leaf_down(t.leaf_at(sender_pod, leaf_port));
    });

    if (!senc.core_pods || senc.core_pods->none()) continue;

    std::vector<std::size_t> core_ports;
    if (senc.u_spine->multipath) {
      core_ports.push_back((flow_hash >> 8) % t.spine_up_ports());
    } else {
      senc.u_spine->up.for_each_set(
          [&](std::size_t port) { core_ports.push_back(port); });
    }

    for (const auto core_port : core_ports) {
      count(after_uspine);  // spine->core
      const auto core = t.core_at(plane, core_port);
      if (fails.core_failed(core)) continue;  // lost
      senc.core_pods->for_each_set([&](std::size_t pod) {
        count(after_core);  // core->spine
        if (fails.spine_failed(
                t.spine_at(static_cast<topo::PodId>(pod), plane))) {
          return;  // delivered into a dead switch
        }
        process_pod_down(static_cast<topo::PodId>(pod));
      });
    }
  }

  report.ideal_link_transmissions = ideal_transmissions(tree, sender);
  report.ideal_wire_bytes = report.ideal_link_transmissions * wire(0);
  return report;
}

std::uint64_t TrafficEvaluator::ideal_transmissions(const MulticastTree& tree,
                                                    topo::HostId sender) {
  const auto& t = tree.topology();
  const auto sender_leaf = t.leaf_of_host(sender);
  const auto sender_pod = t.pod_of_leaf(sender_leaf);
  const bool sender_is_member = tree.is_member(sender);

  std::uint64_t hops = 1;  // host->leaf

  // Deliveries (leaf->host edges).
  for (const auto& leaf : tree.leaves()) {
    std::uint64_t deliveries = leaf.host_ports.popcount();
    if (leaf.leaf == sender_leaf && sender_is_member) --deliveries;
    hops += deliveries;
  }

  const bool beyond_leaf =
      tree.num_leaves() > 1 ||
      (tree.num_leaves() == 1 && tree.leaves()[0].leaf != sender_leaf);
  if (!beyond_leaf) return hops;

  hops += 1;  // sender leaf->spine

  // spine->leaf edges.
  for (const auto& pod : tree.pods()) {
    std::uint64_t fanout = pod.leaf_ports.popcount();
    if (pod.pod == sender_pod &&
        pod.leaf_ports.test(t.leaf_index_in_pod(sender_leaf))) {
      --fanout;  // the sender's own leaf already has the packet
    }
    hops += fanout;
  }

  // Core edges for multi-pod groups.
  std::uint64_t other_pods = 0;
  for (const auto& pod : tree.pods()) {
    if (pod.pod != sender_pod) ++other_pods;
  }
  if (other_pods > 0) {
    hops += 1;           // spine->core
    hops += other_pods;  // core->spine, one per remote member pod
  }
  return hops;
}

}  // namespace elmo
