// Bit-exact Elmo header codec (paper Fig. 2).
//
// Wire format. The header is a sequence of byte-aligned *sections*, each
// introduced by a 3-bit tag and zero-padded to a byte boundary so network
// switches can pop whole sections without shifting bits (paper D2d):
//
//   header        := section*  END
//   section       := tag(3) body pad-to-byte
//   END           := tag 0
//   U_LEAF  (1)   := multipath(1) up_bitmap(leaf uplinks) down_bitmap(hosts)
//   U_SPINE (2)   := multipath(1) up_bitmap(spine uplinks) down_bitmap(leaf ports)
//   CORE    (3)   := pod_bitmap(pods)
//   SPINE_RULES(4):= has_default(1) count(7) rule* [default_bitmap]
//   LEAF_RULES (5):= has_default(1) count(7) rule* [default_bitmap]
//   rule          := bitmap(layer ports) ( id(id_bits) next_id(1) )+
//
// Identifier widths derive from the topology: pod ids at the spine layer,
// global leaf ids at the leaf layer. All size numbers reported by benches
// come from this codec, not from closed-form estimates.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "elmo/rules.h"
#include "net/bitio.h"
#include "topology/clos.h"

namespace elmo {

// Wire limit: the rule-layer count field is 7 bits, so no layer can carry
// more than 127 p-rules. Encoder configs are validated against this.
inline constexpr std::size_t kMaxRulesPerLayer = 127;

enum class SectionTag : std::uint8_t {
  kEnd = 0,
  kULeaf = 1,
  kUSpine = 2,
  kCore = 3,
  kSpineRules = 4,
  kLeafRules = 5,
};

// Fully decoded header (tests and hypervisor-side debugging).
struct ParsedHeader {
  std::optional<UpstreamRule> u_leaf;
  std::optional<UpstreamRule> u_spine;
  std::optional<net::PortBitmap> core_pods;
  std::vector<PRule> spine_rules;
  std::optional<net::PortBitmap> spine_default;
  std::vector<PRule> leaf_rules;
  std::optional<net::PortBitmap> leaf_default;
};

// Byte extent of one section inside a serialized header.
struct SectionExtent {
  SectionTag tag = SectionTag::kEnd;
  std::size_t begin = 0;  // byte offset of the tag
  std::size_t end = 0;    // one past the section's last byte
};

class HeaderCodec {
 public:
  explicit HeaderCodec(const topo::ClosTopology& topology)
      : topo_{&topology} {}

  // ---- serialization ---------------------------------------------------
  std::vector<std::uint8_t> serialize(const SenderEncoding& sender,
                                      const GroupEncoding& group) const;

  ParsedHeader parse(std::span<const std::uint8_t> data) const;

  // Section boundaries (used by switches to pop consumed layers). The END
  // tag is included as the final extent.
  std::vector<SectionExtent> scan_sections(
      std::span<const std::uint8_t> data) const;

  // Total header length in bytes (up to and including the END tag byte).
  std::size_t header_length(std::span<const std::uint8_t> data) const;

  // ---- layout / budget arithmetic ---------------------------------------
  // Worst-case byte size of a header with the given rule-layer shape.
  std::size_t max_header_bytes(std::size_t hmax_spine, std::size_t hmax_leaf,
                               std::size_t kmax_spine,
                               std::size_t kmax_leaf) const;

  // Largest Hmax for the leaf layer that keeps the worst-case header within
  // the budget (>= 1). Honors cfg.hmax_leaf_override.
  std::size_t derive_hmax_leaf(const EncoderConfig& cfg) const;

  const topo::ClosTopology& topology() const noexcept { return *topo_; }

 private:
  std::size_t section_bits(std::size_t body_bits) const noexcept {
    return ((3 + body_bits + 7) / 8) * 8;  // tag + body, byte padded
  }
  void write_bitmap(net::BitWriter& out, const net::PortBitmap& bitmap) const;
  net::PortBitmap read_bitmap(net::BitReader& in, std::size_t ports) const;
  void write_rule_layer(net::BitWriter& out, SectionTag tag,
                        const std::vector<PRule>& rules,
                        const std::optional<net::PortBitmap>& default_rule,
                        unsigned id_bits) const;

  const topo::ClosTopology* topo_;
};

}  // namespace elmo
