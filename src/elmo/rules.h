// Rule and encoding types for Elmo's source-routed multicast (paper §3).
//
// A multicast group's forwarding policy is expressed as:
//   * p-rules   — carried in the packet header; a port bitmap plus the list
//                 of (logical) switch identifiers that should apply it;
//   * s-rules   — classic group-table entries installed in network switches
//                 for the switches that did not fit in the header budget;
//   * a default p-rule — the OR of the bitmaps of every switch mapped to
//                 neither, appended last in its layer.
//
// Downstream rules are shared by all senders of a group; upstream rules (and
// the core bitmap) are sender-specific (paper Fig. 3b).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "net/bitmap.h"
#include "topology/clos.h"

namespace elmo {

// A packet rule: output-port bitmap shared by `switch_ids` (logical ids:
// pod ids at the spine layer, global leaf ids at the leaf layer).
struct PRule {
  net::PortBitmap bitmap;
  std::vector<std::uint32_t> switch_ids;

  bool operator==(const PRule&) const = default;
};

// Upstream rule (paper Fig. 2b, type = u): downstream ports to serve local
// receivers on the way up, explicit upstream ports for failure re-routing,
// and the multipath flag selecting the fabric's ECMP/CONGA/HULA scheme.
struct UpstreamRule {
  net::PortBitmap down;  // host ports (leaf) or leaf ports (spine)
  net::PortBitmap up;    // used only when multipath == false
  bool multipath = false;
};

// One downstream layer's encoding (spine or leaf layer).
struct LayerEncoding {
  std::vector<PRule> p_rules;
  std::optional<net::PortBitmap> default_rule;
  // Switches that spilled into group tables: (logical switch id, bitmap).
  std::vector<std::pair<std::uint32_t, net::PortBitmap>> s_rules;

  bool operator==(const LayerEncoding&) const = default;
};

// Sender-independent (shared) part of a group's encoding.
struct GroupEncoding {
  LayerEncoding spine;  // ids are pod ids; bitmaps over a pod's leaf ports
  LayerEncoding leaf;   // ids are global leaf ids; bitmaps over host ports

  std::size_t p_rule_count() const noexcept {
    return spine.p_rules.size() + leaf.p_rules.size();
  }
  std::size_t s_rule_count() const noexcept {
    return spine.s_rules.size() + leaf.s_rules.size();
  }
  bool uses_default() const noexcept {
    return spine.default_rule.has_value() || leaf.default_rule.has_value();
  }

  bool operator==(const GroupEncoding&) const = default;
};

// Sender-specific part: upstream rules plus the core bitmap listing the
// *other* member pods this sender's packets must fan out to.
struct SenderEncoding {
  UpstreamRule u_leaf;
  std::optional<UpstreamRule> u_spine;         // absent if group fits one leaf
  std::optional<net::PortBitmap> core_pods;    // absent if group fits one pod
};

enum class RedundancyMode : std::uint8_t {
  kPerSwitch,    // Algorithm 1 as written: dist(b_i, out) <= R for every i
  kSumOverRule,  // §3.2 prose: sum of distances over the rule <= R
};

// Which tree-encoding scheme turns a multicast tree into rules. All kinds
// share the header codec and the p-/s-/default-rule carrier format; they
// differ in how switches are packed into p-rules (see tree_encoder.h).
enum class EncoderKind : std::uint8_t {
  kElmo = 0,  // Algorithm 1: exact-bitmap sharing bounded by R
  kBert = 1,  // member clustering: smallest-union groups, R ignored
  kP3fa = 2,  // egress-diversity quantization: at most E distinct bitmaps
};

inline constexpr EncoderKind kAllEncoderKinds[] = {
    EncoderKind::kElmo, EncoderKind::kBert, EncoderKind::kP3fa};

// Knobs of the encoder (paper constants R, Hmax, Kmax, Fmax).
struct EncoderConfig {
  // Total header budget; Hmax for the leaf layer is derived from it unless
  // hmax_leaf_override is set.
  std::size_t header_budget_bytes = 325;
  // Spine-layer p-rules: enough for the pods a pod-local placement touches
  // (a 5,000-VM tenant at P=1 spans multiple pods).
  std::size_t hmax_spine = 6;
  std::size_t hmax_leaf_override = 0;  // 0 = derive from budget
  std::size_t kmax = 2;                // max switch ids sharing one leaf p-rule
  // Spine-layer Kmax (0 = all pods). Pod ids are only a few bits, so a
  // spine p-rule can list several pods cheaply.
  std::size_t kmax_spine = 4;
  std::size_t redundancy_limit = 0;    // R
  // §3.2 prose: R bounds the SUM of Hamming distances over a shared rule.
  RedundancyMode redundancy_mode = RedundancyMode::kSumOverRule;
  // Fmax: group-table entries available per network switch.
  std::size_t srule_capacity = std::numeric_limits<std::size_t>::max();
  // Which encoding scheme make_encoder() instantiates.
  EncoderKind encoder = EncoderKind::kElmo;
  // P3FA only: max distinct egress bitmaps per downstream layer (E).
  std::size_t p3fa_egress_classes = 4;
};

}  // namespace elmo
