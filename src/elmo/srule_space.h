// Group-table (s-rule) capacity accounting across the fabric.
//
// s-rules live in real switch group tables, a resource shared by all groups
// (Fmax per switch, paper §3.2). A spine-layer rule is logical — the packet
// may arrive at any physical spine of the pod depending on the multipath
// hash — so reserving a pod's spine rule consumes one entry in *every*
// physical spine of that pod.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "topology/clos.h"
#include "util/stats.h"

namespace elmo {

class SRuleSpace {
 public:
  SRuleSpace(const topo::ClosTopology& topology, std::size_t fmax);

  std::size_t fmax() const noexcept { return fmax_; }
  const topo::ClosTopology& topology() const noexcept { return *topo_; }

  // Reserve / release one entry at a leaf switch.
  bool try_reserve_leaf(topo::LeafId leaf);
  void release_leaf(topo::LeafId leaf);

  // Reserve / release one entry in every physical spine of `pod`.
  bool try_reserve_pod_spines(topo::PodId pod);
  void release_pod_spines(topo::PodId pod);

  std::size_t leaf_occupancy(topo::LeafId leaf) const {
    return leaf_rules_.at(leaf);
  }
  std::size_t spine_occupancy(topo::SpineId spine) const {
    return spine_rules_.at(spine);
  }

  util::OnlineStats leaf_stats() const;
  util::OnlineStats spine_stats() const;
  std::span<const std::uint32_t> leaf_occupancies() const noexcept {
    return leaf_rules_;
  }
  std::span<const std::uint32_t> spine_occupancies() const noexcept {
    return spine_rules_;
  }

 private:
  const topo::ClosTopology* topo_;
  std::size_t fmax_;
  std::vector<std::uint32_t> leaf_rules_;
  std::vector<std::uint32_t> spine_rules_;
};

// Thread-safe *speculative* Fmax accounting for the parallel encode phase
// (DESIGN.md §5). Counters are sharded per switch (one atomic each), seeded
// from a snapshot of the authoritative SRuleSpace, and admit with fetch-add
// (over-admissions rolled back). The view is advisory only: because worker
// interleaving is arbitrary, a speculative admit/deny may disagree with what
// the serial group order would have decided, so the deterministic merge pass
// re-validates every reservation against the authoritative space and
// serially re-encodes any group whose speculative decisions cannot be
// committed verbatim. Final occupancies are therefore bit-identical to a
// serial run at any thread count.
class ConcurrentSRuleCounters {
 public:
  explicit ConcurrentSRuleCounters(const SRuleSpace& space);

  std::size_t fmax() const noexcept { return fmax_; }

  bool try_reserve_leaf(topo::LeafId leaf) noexcept;
  bool try_reserve_pod_spines(topo::PodId pod) noexcept;

 private:
  const topo::ClosTopology* topo_;
  std::size_t fmax_;
  std::vector<std::atomic<std::uint32_t>> leaf_rules_;
  std::vector<std::atomic<std::uint32_t>> spine_rules_;
};

}  // namespace elmo
