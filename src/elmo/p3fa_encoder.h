// P3faEncoder: low-egress-diversity tree encoder (arXiv 2109.02834 flavour).
//
// P3FA's observation is that switch forwarding state (and reconfiguration
// churn) scales with the number of DISTINCT egress port sets a switch must
// express, not with the number of groups. This encoder quantizes each
// downstream layer to at most E distinct egress bitmaps (config
// p3fa_egress_classes) before rule packing: classes start as the layer's
// distinct exact bitmaps and are agglomeratively merged — smallest class
// first, into the class whose union grows least — until at most E remain.
// Every switch in a class shares the class bitmap, so p-rules compress well
// (many switch ids per identical bitmap) at the cost of spurious single
// copies where the class bitmap is a strict superset. Switches that still
// overflow Hmax spill with their EXACT bitmaps (s-rules stay precise).
#pragma once

#include "elmo/tree_encoder.h"

namespace elmo {

class P3faEncoder final : public TreeEncoder {
 public:
  P3faEncoder(const topo::ClosTopology& topology, const EncoderConfig& config)
      : TreeEncoder{topology, config} {}

  std::string_view name() const noexcept override { return "p3fa"; }
  EncoderKind kind() const noexcept override { return EncoderKind::kP3fa; }
  EncoderCapabilities capabilities() const noexcept override {
    return EncoderCapabilities{.honors_redundancy_limit = false,
                               .exact_srule_bitmaps = true,
                               .bounded_egress_diversity = true};
  }

  GroupEncoding encode_with(const MulticastTree& tree,
                            const SRuleReservers& reservers,
                            const std::vector<bool>* legacy_leaf
                            = nullptr) const override;

 private:
  LayerEncoding encode_layer(std::vector<LayerInput> inputs, std::size_t hmax,
                             std::size_t kmax,
                             const SRuleReserver& reserve_srule) const;
};

}  // namespace elmo
