// BertEncoder: member-clustering tree encoder (arXiv 2008.04454 flavour).
//
// Where Elmo's Algorithm 1 only shares a p-rule when the redundancy bound R
// admits it, Bert-style encoding clusters aggressively: each downstream
// layer is greedily partitioned into groups of up to Kmax switches with the
// (approximately) smallest bitmap union, seeded from the densest unassigned
// switch — the same MIN-K-UNION greedy as clustering.h, but applied
// unconditionally. The result is fewer, wider p-rules: smaller headers and
// less s-rule spill, paid for with spurious single-copy deliveries (never
// duplicates — the groups partition the layer's switches, and a superset
// bitmap can only add egress ports). R is ignored by design; the bake-off
// quantifies the trade.
#pragma once

#include "elmo/tree_encoder.h"

namespace elmo {

class BertEncoder final : public TreeEncoder {
 public:
  BertEncoder(const topo::ClosTopology& topology, const EncoderConfig& config)
      : TreeEncoder{topology, config} {}

  std::string_view name() const noexcept override { return "bert"; }
  EncoderKind kind() const noexcept override { return EncoderKind::kBert; }
  EncoderCapabilities capabilities() const noexcept override {
    return EncoderCapabilities{.honors_redundancy_limit = false,
                               .exact_srule_bitmaps = true,
                               .bounded_egress_diversity = false};
  }

  GroupEncoding encode_with(const MulticastTree& tree,
                            const SRuleReservers& reservers,
                            const std::vector<bool>* legacy_leaf
                            = nullptr) const override;

 private:
  LayerEncoding encode_layer(std::vector<LayerInput> inputs, std::size_t hmax,
                             std::size_t kmax,
                             const SRuleReserver& reserve_srule) const;
};

}  // namespace elmo
