// Controller state snapshot / restore.
//
// The paper's logically-centralized controller keeps its group directory in
// "fault-tolerant distributed directory systems" (§2). This module provides
// the serialization half of that story: a compact, versioned byte image of
// every group's durable state (tenant, membership, roles). Restoring into a
// fresh controller deterministically reproduces group ids, addresses, trees,
// encodings and s-rule reservations — verified byte-for-byte against the
// original's issued headers in tests.
//
// Only durable state is serialized; trees and encodings are derived data and
// are recomputed on restore (they are pure functions of membership).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "elmo/controller.h"

namespace elmo {

// Serializes every live group of `controller` (including id gaps left by
// removed groups, so ids and addresses survive).
std::vector<std::uint8_t> snapshot(const Controller& controller);

// Replays a snapshot into `controller`, which must be freshly constructed
// (no groups) over the same topology and encoder configuration. Throws
// std::invalid_argument on a malformed or version-mismatched image and
// std::logic_error if the controller is not empty.
void restore(Controller& controller, std::span<const std::uint8_t> image);

}  // namespace elmo
