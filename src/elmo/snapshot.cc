#include "elmo/snapshot.h"

#include <stdexcept>

namespace elmo {
namespace {

constexpr std::uint32_t kMagic = 0x454c4d4f;  // "ELMO"
constexpr std::uint16_t kVersion = 1;

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  put_u16(out, static_cast<std::uint16_t>(v >> 16));
  put_u16(out, static_cast<std::uint16_t>(v));
}

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_{data} {}

  std::uint16_t u16() {
    require(2);
    const std::uint16_t v = static_cast<std::uint16_t>(
        (data_[at_] << 8) | data_[at_ + 1]);
    at_ += 2;
    return v;
  }
  std::uint32_t u32() {
    const auto hi = u16();
    return (static_cast<std::uint32_t>(hi) << 16) | u16();
  }
  std::uint8_t u8() {
    require(1);
    return data_[at_++];
  }
  bool done() const noexcept { return at_ == data_.size(); }

 private:
  void require(std::size_t n) {
    if (at_ + n > data_.size()) {
      throw std::invalid_argument{"snapshot: truncated image"};
    }
  }
  std::span<const std::uint8_t> data_;
  std::size_t at_ = 0;
};

}  // namespace

std::vector<std::uint8_t> snapshot(const Controller& controller) {
  std::vector<std::uint8_t> out;
  put_u32(out, kMagic);
  put_u16(out, kVersion);

  // Find the highest ever-assigned id by probing has_group over the dense
  // id space (ids are assigned sequentially; gaps are tombstones).
  std::uint32_t id_limit = 0;
  {
    // num_groups() counts live groups; scan until we have seen them all.
    std::size_t seen = 0;
    std::uint32_t id = 0;
    while (seen < controller.num_groups()) {
      if (controller.has_group(id)) ++seen;
      ++id;
      if (id > (1u << 26)) {
        throw std::logic_error{"snapshot: runaway id scan"};
      }
    }
    id_limit = id;
  }

  put_u32(out, id_limit);
  for (std::uint32_t id = 0; id < id_limit; ++id) {
    if (!controller.has_group(id)) {
      out.push_back(0);  // tombstone
      continue;
    }
    out.push_back(1);
    const auto& g = controller.group(id);
    put_u32(out, g.tenant);
    put_u32(out, static_cast<std::uint32_t>(g.members.size()));
    for (const auto& m : g.members) {
      put_u32(out, m.host);
      put_u32(out, m.vm);
      out.push_back(static_cast<std::uint8_t>(m.role));
    }
  }
  return out;
}

void restore(Controller& controller, std::span<const std::uint8_t> image) {
  if (controller.num_groups() != 0) {
    throw std::logic_error{"restore: controller already has groups"};
  }
  Reader in{image};
  if (in.u32() != kMagic) {
    throw std::invalid_argument{"snapshot: bad magic"};
  }
  if (in.u16() != kVersion) {
    throw std::invalid_argument{"snapshot: unsupported version"};
  }
  const auto id_limit = in.u32();
  for (std::uint32_t id = 0; id < id_limit; ++id) {
    const auto live = in.u8();
    if (live == 0) {
      // Recreate the tombstone so later ids (and their multicast addresses)
      // line up with the original controller.
      const auto placeholder = controller.create_group(0, {});
      controller.remove_group(placeholder);
      continue;
    }
    if (live != 1) throw std::invalid_argument{"snapshot: bad record tag"};
    const auto tenant = in.u32();
    const auto member_count = in.u32();
    std::vector<Member> members;
    members.reserve(member_count);
    for (std::uint32_t m = 0; m < member_count; ++m) {
      Member member;
      member.host = in.u32();
      member.vm = in.u32();
      const auto role = in.u8();
      if (role > 2) throw std::invalid_argument{"snapshot: bad role"};
      member.role = static_cast<MemberRole>(role);
      members.push_back(member);
    }
    const auto new_id = controller.create_group(tenant, members);
    if (new_id != id) {
      throw std::logic_error{"restore: id drift (controller not fresh?)"};
    }
  }
  if (!in.done()) {
    throw std::invalid_argument{"snapshot: trailing bytes"};
  }
}

}  // namespace elmo
