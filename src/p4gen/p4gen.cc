#include "p4gen/p4gen.h"

#include <sstream>

namespace elmo::p4gen {
namespace {

// Small helper collecting generated lines with indentation.
class P4Writer {
 public:
  void line(const std::string& text = "") {
    for (int i = 0; i < indent_; ++i) out_ << "    ";
    out_ << text << "\n";
  }
  void open(const std::string& text) {
    line(text + " {");
    ++indent_;
  }
  void close(const std::string& suffix = "") {
    --indent_;
    line("}" + suffix);
  }
  std::string str() const { return out_.str(); }

 private:
  std::ostringstream out_;
  int indent_ = 0;
};

void emit_outer_headers(P4Writer& w) {
  w.open("header ethernet_t");
  w.line("bit<48> dst_addr;");
  w.line("bit<48> src_addr;");
  w.line("bit<16> ether_type;");
  w.close();
  w.line();
  w.open("header ipv4_t");
  w.line("bit<4>  version;");
  w.line("bit<4>  ihl;");
  w.line("bit<8>  dscp;");
  w.line("bit<16> total_len;");
  w.line("bit<16> identification;");
  w.line("bit<16> flags_frag;");
  w.line("bit<8>  ttl;");
  w.line("bit<8>  protocol;");
  w.line("bit<16> checksum;");
  w.line("bit<32> src_addr;");
  w.line("bit<32> dst_addr;");
  w.close();
  w.line();
  w.open("header udp_t");
  w.line("bit<16> src_port;");
  w.line("bit<16> dst_port;");
  w.line("bit<16> length;");
  w.line("bit<16> checksum;");
  w.close();
  w.line();
  w.open("header vxlan_t");
  w.line("bit<7>  flags;");
  w.line("bit<1>  elmo_present;  // reserved bit 0x01: Elmo rules follow");
  w.line("bit<24> reserved1;");
  w.line("bit<24> vni;");
  w.line("bit<8>  reserved2;");
  w.close();
}

void emit_elmo_headers(P4Writer& w, const P4Widths& widths,
                       const P4Options& opt) {
  w.line("// --- Elmo sections (Fig. 2). Each section is byte-aligned; the");
  w.line("// 3-bit tag is modelled in the `type` field of each header. ---");
  w.line();
  w.open("header elmo_tag_t");
  w.line("bit<3> tag;  // 0 END, 1 U_LEAF, 2 U_SPINE, 3 CORE, 4 SPINE, 5 LEAF");
  w.close();
  w.line();
  w.open("header elmo_u_leaf_t");
  w.line("bit<1>  multipath;");
  w.line("bit<" + std::to_string(widths.leaf_up_ports) + "> up_ports;");
  w.line("bit<" + std::to_string(widths.leaf_ports) + "> down_ports;");
  w.close();
  w.line();
  w.open("header elmo_u_spine_t");
  w.line("bit<1>  multipath;");
  w.line("bit<" + std::to_string(widths.spine_up_ports) + "> up_ports;");
  w.line("bit<" + std::to_string(widths.spine_ports) + "> down_ports;");
  w.close();
  w.line();
  w.open("header elmo_core_t");
  w.line("bit<" + std::to_string(widths.core_ports) + "> pod_bitmap;");
  w.close();
  w.line();
  w.line("// One p-rule slot per parser state; Hmax_spine = " +
         std::to_string(opt.hmax_spine) + ", Hmax_leaf = " +
         std::to_string(opt.hmax_leaf) + ".");
  w.open("header elmo_spine_rule_t");
  w.line("bit<" + std::to_string(widths.spine_ports) + "> bitmap;");
  w.line("bit<" + std::to_string(widths.pod_id_bits) + "> id0;");
  w.line("bit<1>  next_id;");
  w.line("bit<1>  next_rule;");
  w.close();
  w.line();
  w.open("header elmo_leaf_rule_t");
  w.line("bit<" + std::to_string(widths.leaf_ports) + "> bitmap;");
  w.line("bit<" + std::to_string(widths.leaf_id_bits) + "> id0;");
  w.line("bit<1>  next_id;");
  w.line("bit<1>  next_rule;");
  w.close();
}

void emit_metadata(P4Writer& w, const P4Widths& widths) {
  w.open("struct elmo_metadata_t");
  w.line("bit<1>  matched;        // parser found our p-rule");
  w.line("bit<1>  has_default;");
  w.line("bit<" + std::to_string(std::max(widths.leaf_ports,
                                          widths.spine_ports)) +
         "> bitmap;  // match-and-set result");
  w.line("bit<" + std::to_string(std::max(widths.leaf_ports,
                                          widths.spine_ports)) +
         "> default_bitmap;");
  w.line("bit<1>  upstream;");
  w.line("bit<1>  multipath;");
  w.close();
}

}  // namespace

P4Options P4Options::from_config(const EncoderConfig& cfg,
                                 std::size_t derived_hmax_leaf) {
  P4Options opt;
  opt.hmax_spine = cfg.hmax_spine;
  opt.hmax_leaf = derived_hmax_leaf;
  opt.kmax = cfg.kmax;
  opt.kmax_spine = cfg.kmax_spine;
  return opt;
}

P4Widths P4Widths::of(const topo::ClosTopology& t) {
  P4Widths w;
  w.leaf_ports = static_cast<unsigned>(t.leaf_down_ports());
  w.leaf_up_ports = static_cast<unsigned>(t.leaf_up_ports());
  w.spine_ports = static_cast<unsigned>(t.spine_down_ports());
  w.spine_up_ports = static_cast<unsigned>(t.spine_up_ports());
  w.core_ports = static_cast<unsigned>(t.core_ports());
  w.leaf_id_bits = t.leaf_id_bits();
  w.pod_id_bits = t.pod_id_bits();
  return w;
}

std::string network_switch_program(const topo::ClosTopology& topology,
                                   const P4Options& opt) {
  const auto widths = P4Widths::of(topology);
  P4Writer w;

  w.line("// Elmo network-switch program (generated).");
  w.line("// Fabric: " + std::to_string(topology.num_pods()) + " pods x " +
         std::to_string(topology.params().leaves_per_pod) + " leaves x " +
         std::to_string(topology.params().hosts_per_leaf) + " hosts (" +
         std::to_string(topology.num_hosts()) + " hosts).");
  w.line("#include <core.p4>");
  w.line("#include <v1model.p4>");
  w.line();
  w.line("// Role is fixed per deployment tier at compile time.");
  w.line("#define ROLE_LEAF  0");
  w.line("#define ROLE_SPINE 1");
  w.line("#define ROLE_CORE  2");
  w.line();
  emit_outer_headers(w);
  w.line();
  emit_elmo_headers(w, widths, opt);
  w.line();
  emit_metadata(w, widths);
  w.line();

  // Headers struct with unrolled p-rule slots.
  w.open("struct headers_t");
  w.line("ethernet_t ethernet;");
  w.line("ipv4_t ipv4;");
  w.line("udp_t udp;");
  w.line("vxlan_t vxlan;");
  w.line("elmo_u_leaf_t u_leaf;");
  w.line("elmo_u_spine_t u_spine;");
  w.line("elmo_core_t core;");
  for (std::size_t i = 0; i < opt.hmax_spine; ++i) {
    w.line("elmo_spine_rule_t spine_rule_" + std::to_string(i) + ";");
  }
  w.line("elmo_spine_rule_t spine_default;");
  for (std::size_t i = 0; i < opt.hmax_leaf; ++i) {
    w.line("elmo_leaf_rule_t leaf_rule_" + std::to_string(i) + ";");
  }
  w.line("elmo_leaf_rule_t leaf_default;");
  w.close();
  w.line();

  // ---- parser: the match-and-set over p-rules (paper §4.1) ----------------
  w.open("parser ElmoParser(packet_in pkt, out headers_t hdr,");
  w.line("                  inout elmo_metadata_t meta,");
  w.line("                  inout standard_metadata_t std_meta)");
  w.close("");  // close the signature brace opened by open(); reopen body
  w.open("");
  w.open("state start");
  w.line("pkt.extract(hdr.ethernet);");
  w.line("transition select(hdr.ethernet.ether_type) {");
  w.line("    0x0800: parse_ipv4;");
  w.line("    default: accept;");
  w.line("}");
  w.close();
  w.open("state parse_ipv4");
  w.line("pkt.extract(hdr.ipv4);");
  w.line("transition select(hdr.ipv4.protocol) { 17: parse_udp; default: accept; }");
  w.close();
  w.open("state parse_udp");
  w.line("pkt.extract(hdr.udp);");
  w.line("transition select(hdr.udp.dst_port) { 4789: parse_vxlan; default: accept; }");
  w.close();
  w.open("state parse_vxlan");
  w.line("pkt.extract(hdr.vxlan);");
  w.line("transition select(hdr.vxlan.elmo_present) { 1: parse_elmo_section; default: accept; }");
  w.close();
  w.open("state parse_elmo_section");
  w.line("transition select(pkt.lookahead<bit<3>>()) {");
  w.line("    1: parse_u_leaf;");
  w.line("    2: parse_u_spine;");
  w.line("    3: parse_core;");
  w.line("    4: parse_spine_rule_0;");
  w.line("    5: parse_leaf_rule_0;");
  w.line("    default: accept;  // END");
  w.line("}");
  w.close();
  w.open("state parse_u_leaf");
  w.line("pkt.extract(hdr.u_leaf);");
  w.line("#if ROLE == ROLE_LEAF");
  w.line("meta.upstream = 1; meta.multipath = hdr.u_leaf.multipath;");
  w.line("#endif");
  w.line("transition parse_elmo_section;");
  w.close();
  w.open("state parse_u_spine");
  w.line("pkt.extract(hdr.u_spine);");
  w.line("#if ROLE == ROLE_SPINE");
  w.line("meta.upstream = 1; meta.multipath = hdr.u_spine.multipath;");
  w.line("#endif");
  w.line("transition parse_elmo_section;");
  w.close();
  w.open("state parse_core");
  w.line("pkt.extract(hdr.core);");
  w.line("transition parse_elmo_section;");
  w.close();

  auto emit_rule_chain = [&](const std::string& layer, std::size_t hmax,
                             const std::string& role_guard) {
    for (std::size_t i = 0; i < hmax; ++i) {
      const auto name = layer + "_rule_" + std::to_string(i);
      w.open("state parse_" + name);
      w.line("pkt.extract(hdr." + name + ");");
      w.line("#if ROLE == " + role_guard);
      w.line("// match-and-set: compare our identifier inside the parser");
      w.line("if (hdr." + name + ".id0 == SWITCH_ID && meta.matched == 0) {");
      w.line("    meta.matched = 1;");
      w.line("    meta.bitmap = hdr." + name + ".bitmap;");
      w.line("}");
      w.line("#endif");
      if (i + 1 < hmax) {
        w.line("transition select(hdr." + name + ".next_rule) {");
        w.line("    1: parse_" + layer + "_rule_" + std::to_string(i + 1) +
               ";");
        w.line("    default: parse_" + layer + "_maybe_default;");
        w.line("}");
      } else {
        w.line("transition parse_" + layer + "_maybe_default;");
      }
      w.close();
    }
    w.open("state parse_" + layer + "_maybe_default");
    w.line("transition select(pkt.lookahead<bit<1>>()) {");
    w.line("    1: parse_" + layer + "_default;");
    w.line("    default: parse_elmo_section;");
    w.line("}");
    w.close();
    w.open("state parse_" + layer + "_default");
    w.line("pkt.extract(hdr." + layer + "_default);");
    w.line("#if ROLE == " + role_guard);
    w.line("meta.has_default = 1;");
    w.line("meta.default_bitmap = hdr." + layer + "_default.bitmap;");
    w.line("#endif");
    w.line("transition parse_elmo_section;");
    w.close();
  };
  emit_rule_chain("spine", opt.hmax_spine, "ROLE_SPINE");
  emit_rule_chain("leaf", opt.hmax_leaf, "ROLE_LEAF");
  w.close();  // parser
  w.line();

  // ---- ingress: control flow of §4.1 ---------------------------------------
  w.open("control ElmoIngress(inout headers_t hdr,");
  w.line("                    inout elmo_metadata_t meta,");
  w.line("                    inout standard_metadata_t std_meta)");
  w.close("");
  w.open("");
  w.line("action bitmap_port_select(bit<" +
         std::to_string(std::max(widths.leaf_ports, widths.spine_ports)) +
         "> ports) {");
  w.line("    // queue-manager primitive: replicate to the ports in `ports`");
  w.line("    std_meta.mcast_grp = 0;  // bits delivered as metadata (§4.1)");
  w.line("}");
  w.line("action forward_group(bit<16> mcast_group) { std_meta.mcast_grp = mcast_group; }");
  w.line("action drop() { mark_to_drop(std_meta); }");
  w.line();
  w.open("table group_table");
  w.line("key = { hdr.ipv4.dst_addr: exact; }  // s-rules");
  w.line("actions = { forward_group; drop; }");
  w.line("size = " + std::to_string(opt.group_table_size) + ";");
  w.line("default_action = drop();");
  w.close();
  w.line();
  w.open("apply");
  w.line("if (meta.upstream == 1) {");
  w.line("    // upstream rule: downstream ports + multipath/explicit uplinks");
  w.line("    bitmap_port_select(meta.bitmap);");
  w.line("} else if (meta.matched == 1) {");
  w.line("    bitmap_port_select(meta.bitmap);          // p-rule hit");
  w.line("} else if (group_table.apply().hit) {");
  w.line("    // s-rule hit: queue manager expands the group id");
  w.line("} else if (meta.has_default == 1) {");
  w.line("    bitmap_port_select(meta.default_bitmap);  // default p-rule");
  w.line("} else {");
  w.line("    drop();");
  w.line("}");
  w.close();
  w.close();  // ingress
  w.line();

  // ---- egress: pop consumed sections --------------------------------------
  w.open("control ElmoEgress(inout headers_t hdr,");
  w.line("                   inout elmo_metadata_t meta,");
  w.line("                   inout standard_metadata_t std_meta)");
  w.close("");
  w.open("");
  w.open("apply");
  w.line("#if ROLE == ROLE_LEAF");
  w.line("if (std_meta.egress_port < " + std::to_string(widths.leaf_ports) +
         ") {");
  w.line("    // towards hosts: invalidate every Elmo header (§4.1)");
  w.line("    hdr.u_leaf.setInvalid(); hdr.u_spine.setInvalid(); hdr.core.setInvalid();");
  for (std::size_t i = 0; i < opt.hmax_spine; ++i) {
    w.line("    hdr.spine_rule_" + std::to_string(i) + ".setInvalid();");
  }
  w.line("    hdr.spine_default.setInvalid();");
  for (std::size_t i = 0; i < opt.hmax_leaf; ++i) {
    w.line("    hdr.leaf_rule_" + std::to_string(i) + ".setInvalid();");
  }
  w.line("    hdr.leaf_default.setInvalid();");
  w.line("    hdr.vxlan.elmo_present = 0;");
  w.line("} else {");
  w.line("    hdr.u_leaf.setInvalid();  // upstream copy: pop our layer");
  w.line("}");
  w.line("#elif ROLE == ROLE_SPINE");
  w.line("if (std_meta.egress_port < " + std::to_string(widths.spine_ports) +
         ") {");
  w.line("    // down to a leaf: pop everything before the leaf layer");
  w.line("    hdr.u_spine.setInvalid(); hdr.core.setInvalid();");
  for (std::size_t i = 0; i < opt.hmax_spine; ++i) {
    w.line("    hdr.spine_rule_" + std::to_string(i) + ".setInvalid();");
  }
  w.line("    hdr.spine_default.setInvalid();");
  w.line("} else {");
  w.line("    hdr.u_spine.setInvalid();");
  w.line("}");
  w.line("#else  // ROLE_CORE");
  w.line("hdr.core.setInvalid();");
  w.line("#endif");
  w.close();
  w.close();
  w.line();
  w.line("// deparser / checksum controls elided: emit() of valid headers only.");
  return w.str();
}

std::string hypervisor_switch_program(const topo::ClosTopology& topology,
                                      const P4Options& opt) {
  const auto widths = P4Widths::of(topology);
  P4Writer w;
  w.line("// Elmo hypervisor-switch program (generated, PISCES-style).");
  w.line("// All p-rules are expressed as ONE opaque header blob so the");
  w.line("// software switch encapsulates with a single write (§4.2).");
  w.line("#include <core.p4>");
  w.line("#include <v1model.p4>");
  w.line();
  emit_outer_headers(w);
  w.line();
  const std::size_t blob_bits =
      8 * (opt.hmax_leaf * (widths.leaf_ports + opt.kmax *
                            (widths.leaf_id_bits + 1)) / 8 + 64);
  w.open("header elmo_blob_t");
  w.line("varbit<" + std::to_string(blob_bits) +
         "> rules;  // entire p-rule header, single write");
  w.close();
  w.line();
  w.open("struct headers_t");
  w.line("ethernet_t ethernet;");
  w.line("ipv4_t ipv4;");
  w.line("udp_t udp;");
  w.line("vxlan_t vxlan;");
  w.line("elmo_blob_t elmo;");
  w.close();
  w.line();
  w.open("control HypervisorIngress(inout headers_t hdr,");
  w.line("                          inout standard_metadata_t std_meta)");
  w.close("");
  w.open("");
  w.line("action encap_and_send(bit<24> vni) {");
  w.line("    // push outer Ethernet/IPv4/UDP/VXLAN + the group's Elmo blob");
  w.line("    hdr.vxlan.setValid(); hdr.vxlan.vni = vni; hdr.vxlan.elmo_present = 1;");
  w.line("    hdr.elmo.setValid();  // contents installed by the controller");
  w.line("    std_meta.egress_spec = UPLINK_PORT;");
  w.line("}");
  w.line("action deliver_local(bit<16> vm_port) { std_meta.egress_spec = (bit<9>)vm_port; }");
  w.line("action drop() { mark_to_drop(std_meta); }");
  w.line();
  w.open("table group_flows");
  w.line("key = { hdr.ipv4.dst_addr: exact; }  // tenant multicast address");
  w.line("actions = { encap_and_send; deliver_local; drop; }");
  w.line("default_action = drop();  // non-members discarded");
  w.close();
  w.line();
  w.open("apply");
  w.line("group_flows.apply();");
  w.close();
  w.close();
  return w.str();
}

}  // namespace elmo::p4gen
