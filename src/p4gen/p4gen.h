// P4_16 program generation (paper §2: "The controller relies on a high-level
// language (like P4) to configure the programmable switches at boot time so
// that the switches can parse and process Elmo's multicast packets"; the
// published artifact is the Elmo-MCast/p4-programs repository).
//
// Given a concrete topology and encoder configuration, this module emits the
// P4_16 source for:
//   * the network-switch program — header definitions sized to the fabric
//     (bitmap widths, identifier widths, Hmax p-rule chains), the parser
//     state machine that performs match-and-set over p-rules, the ingress
//     control flow (upstream rule / matched bitmap / s-rule group table /
//     default rule), and the egress invalidation of consumed sections;
//   * the hypervisor-switch program — flow table keyed on the tenant group
//     address whose action pushes the precomputed rule header in one shot.
//
// The generated text is valid-shaped P4_16 targeting a v1model-style
// architecture; tests verify its structural properties (state counts, bit
// widths, table/action presence) rather than compiling it, since no P4
// compiler ships in this environment.
#pragma once

#include <string>

#include "elmo/rules.h"
#include "topology/clos.h"

namespace elmo::p4gen {

struct P4Options {
  // Maximum p-rules the parser unrolls per downstream layer (the parser has
  // no loops; each p-rule slot is an explicit state).
  std::size_t hmax_spine = 6;
  std::size_t hmax_leaf = 30;
  std::size_t kmax = 2;        // id slots per leaf p-rule state chain
  std::size_t kmax_spine = 4;  // id slots per spine p-rule state chain
  std::size_t group_table_size = 10'000;  // s-rule table depth

  static P4Options from_config(const EncoderConfig& cfg,
                               std::size_t derived_hmax_leaf);
};

// Widths derived from the topology, shared by both programs.
struct P4Widths {
  unsigned leaf_ports = 0;
  unsigned leaf_up_ports = 0;
  unsigned spine_ports = 0;
  unsigned spine_up_ports = 0;
  unsigned core_ports = 0;
  unsigned leaf_id_bits = 0;
  unsigned pod_id_bits = 0;

  static P4Widths of(const topo::ClosTopology& topology);
};

// Network-switch program (leaf/spine/core roles are selected by a
// compile-time role constant inside the program, as the paper's artifact
// does with preprocessor switches).
std::string network_switch_program(const topo::ClosTopology& topology,
                                   const P4Options& options);

// Hypervisor-switch (PISCES-style) program.
std::string hypervisor_switch_program(const topo::ClosTopology& topology,
                                      const P4Options& options);

}  // namespace elmo::p4gen
