#include "verify/scenario.h"

#include <algorithm>
#include <unordered_set>

#include "util/rng.h"

namespace elmo::verify {

namespace {

// Small topologies: every structural regime (multi-pod, multi-plane,
// single-core-per-plane, odd sizes) at a size where a scenario runs in
// microseconds and a shrunk repro is readable.
topo::ClosParams topology_ladder(std::size_t rung) {
  switch (rung) {
    case 0:
      return topo::ClosParams{.pods = 2,
                              .leaves_per_pod = 2,
                              .spines_per_pod = 2,
                              .cores_per_plane = 1,
                              .hosts_per_leaf = 3};
    case 1:
      return topo::ClosParams::running_example();
    case 2:
      return topo::ClosParams{.pods = 3,
                              .leaves_per_pod = 3,
                              .spines_per_pod = 3,
                              .cores_per_plane = 2,
                              .hosts_per_leaf = 4};
    default:
      return topo::ClosParams::small_test();
  }
}

MemberRole random_role(util::Rng& rng) {
  const double roll = rng.uniform();
  if (roll < 0.6) return MemberRole::kBoth;
  if (roll < 0.85) return MemberRole::kReceiver;
  return MemberRole::kSender;
}

bool host_on_legacy_leaf(const topo::ClosTopology& topo,
                         const std::vector<bool>& legacy, topo::HostId host) {
  if (legacy.empty()) return false;
  const auto leaf = topo.leaf_of_host(host);
  return leaf < legacy.size() && legacy[leaf];
}

// Hosts that can source the group: a sending member whose leaf switch can
// parse Elmo headers. A sender behind a legacy leaf cannot reach past its
// rack (legacy s-rule bitmaps cover down ports only), so scenarios never
// source from one — mirroring the paper's deployment constraint (§7).
std::vector<topo::HostId> eligible_senders(const topo::ClosTopology& topo,
                                           const std::vector<bool>& legacy,
                                           const std::vector<Member>& members) {
  std::vector<topo::HostId> hosts;
  for (const auto& m : members) {
    if (!can_send(m.role)) continue;
    if (host_on_legacy_leaf(topo, legacy, m.host)) continue;
    if (std::find(hosts.begin(), hosts.end(), m.host) == hosts.end()) {
      hosts.push_back(m.host);
    }
  }
  return hosts;
}

}  // namespace

Scenario generate_scenario(std::uint64_t seed) {
  auto rng = util::Rng::stream(seed, 0);
  Scenario sc;
  sc.seed = seed;
  sc.params = topology_ladder(rng.index(4));
  const topo::ClosTopology topo{sc.params};

  // Encoder knobs: small Hmax/Kmax so the p-rule/s-rule/default interplay
  // triggers even on tiny fabrics; sometimes exhaust Fmax (forcing default
  // rules and legacy denials) or squeeze the header budget.
  sc.config.hmax_spine = 1 + rng.index(3);
  sc.config.hmax_leaf_override = 1 + rng.index(4);
  sc.config.kmax = 1 + rng.index(2);
  sc.config.kmax_spine = 1 + rng.index(3);
  sc.config.redundancy_limit = rng.index(3);
  if (rng.bernoulli(0.35)) sc.config.srule_capacity = rng.index(4);
  if (rng.bernoulli(0.25)) {
    sc.config.header_budget_bytes = 64 + rng.index(128);
  }

  if (rng.bernoulli(0.35)) {
    sc.legacy_leaves.assign(topo.num_leaves(), false);
    for (std::size_t l = 1; l < sc.legacy_leaves.size(); ++l) {
      sc.legacy_leaves[l] = rng.bernoulli(0.3);
    }
    // Leaf 0 stays upgraded so every group can keep at least one sender.
  }

  const std::size_t num_groups = 1 + rng.index(4);
  for (std::size_t gi = 0; gi < num_groups; ++gi) {
    ScenarioGroup grp;
    grp.tenant = static_cast<std::uint32_t>(100 + gi);
    const std::size_t size =
        2 + rng.index(std::min<std::size_t>(10, topo.num_hosts()));
    const bool colocate = rng.bernoulli(0.5);
    for (std::size_t i = 0; i < size; ++i) {
      topo::HostId host;
      if (colocate && !grp.members.empty() && rng.bernoulli(0.35)) {
        host = grp.members[rng.index(grp.members.size())].host;
      } else {
        host = static_cast<topo::HostId>(rng.index(topo.num_hosts()));
      }
      grp.members.push_back(Member{host, static_cast<std::uint32_t>(i),
                                   random_role(rng)});
    }
    if (eligible_senders(topo, sc.legacy_leaves, grp.members).empty()) {
      // Force one sender under leaf 0 (never legacy, see above).
      grp.members.front() =
          Member{topo.host_at(0, rng.index(topo.leaf_down_ports())),
                 grp.members.front().vm, MemberRole::kBoth};
    }
    sc.groups.push_back(std::move(grp));
  }

  // Event script. Generated against a membership/failure mirror so every
  // event is concrete and valid; the runner re-derives nothing from the rng.
  std::vector<std::vector<Member>> mirror;
  std::vector<std::uint32_t> next_vm;
  for (const auto& g : sc.groups) {
    mirror.push_back(g.members);
    std::uint32_t max_vm = 0;
    for (const auto& m : g.members) max_vm = std::max(max_vm, m.vm);
    next_vm.push_back(max_vm + 1);
  }
  std::vector<bool> spine_down(topo.num_spines(), false);
  std::vector<bool> core_down(topo.num_cores(), false);
  auto any_down = [](const std::vector<bool>& v) {
    return std::find(v.begin(), v.end(), true) != v.end();
  };

  auto emit_send = [&](std::size_t gi) -> bool {
    const auto senders =
        eligible_senders(topo, sc.legacy_leaves, mirror[gi]);
    if (senders.empty()) return false;
    Event ev;
    ev.kind = EventKind::kSend;
    ev.group_index = gi;
    ev.sender = senders[rng.index(senders.size())];
    sc.events.push_back(ev);
    return true;
  };

  const std::size_t num_events = 8 + rng.index(24);
  for (std::size_t e = 0; e < num_events; ++e) {
    const std::size_t gi = rng.index(sc.groups.size());
    const double roll = rng.uniform();
    if (roll < 0.18) {  // join
      Event ev;
      ev.kind = EventKind::kJoin;
      ev.group_index = gi;
      topo::HostId host;
      if (rng.bernoulli(0.35) && !mirror[gi].empty()) {
        host = mirror[gi][rng.index(mirror[gi].size())].host;  // co-locate
      } else {
        host = static_cast<topo::HostId>(rng.index(topo.num_hosts()));
      }
      ev.member = Member{host, next_vm[gi]++, random_role(rng)};
      mirror[gi].push_back(ev.member);
      sc.events.push_back(ev);
    } else if (roll < 0.36) {  // leave
      if (mirror[gi].size() < 2) continue;
      const std::size_t victim = rng.index(mirror[gi].size());
      Event ev;
      ev.kind = EventKind::kLeave;
      ev.group_index = gi;
      ev.member = mirror[gi][victim];
      mirror[gi].erase(mirror[gi].begin() + victim);
      sc.events.push_back(ev);
    } else if (roll < 0.46) {  // fail a switch
      Event ev;
      if (rng.bernoulli(0.5)) {
        const auto id = static_cast<std::uint32_t>(rng.index(topo.num_spines()));
        if (spine_down[id]) continue;
        spine_down[id] = true;
        ev.kind = EventKind::kFailSpine;
        ev.switch_id = id;
      } else {
        const auto id = static_cast<std::uint32_t>(rng.index(topo.num_cores()));
        if (core_down[id]) continue;
        core_down[id] = true;
        ev.kind = EventKind::kFailCore;
        ev.switch_id = id;
      }
      sc.events.push_back(ev);
    } else if (roll < 0.54 && (any_down(spine_down) || any_down(core_down))) {
      Event ev;  // restore a failed switch
      std::vector<std::pair<bool, std::uint32_t>> failed;  // (is_spine, id)
      for (std::size_t i = 0; i < spine_down.size(); ++i) {
        if (spine_down[i])
          failed.emplace_back(true, static_cast<std::uint32_t>(i));
      }
      for (std::size_t i = 0; i < core_down.size(); ++i) {
        if (core_down[i])
          failed.emplace_back(false, static_cast<std::uint32_t>(i));
      }
      const auto [is_spine, id] = failed[rng.index(failed.size())];
      ev.kind = is_spine ? EventKind::kRestoreSpine : EventKind::kRestoreCore;
      ev.switch_id = id;
      (is_spine ? spine_down : core_down)[id] = false;
      sc.events.push_back(ev);
    } else {
      emit_send(gi);
    }
  }

  // Final sweep: at least one send per group so latent divergences surface
  // even when the random interleaving skipped a group.
  for (std::size_t gi = 0; gi < sc.groups.size(); ++gi) {
    emit_send(gi);
  }

  // Encoder kind, drawn last so every earlier draw (and therefore every
  // historical seed -> scenario mapping) is unchanged. All kinds must pass
  // the same delivery oracle.
  sc.config.encoder = kAllEncoderKinds[rng.index(std::size(kAllEncoderKinds))];
  if (sc.config.encoder == EncoderKind::kP3fa) {
    sc.config.p3fa_egress_classes = 1 + rng.index(4);
  }
  return sc;
}

void append_churn_events(Scenario& scenario, std::size_t count,
                         std::uint64_t salt) {
  if (scenario.groups.empty() || count == 0) return;
  const topo::ClosTopology topo{scenario.params};
  // Stream 1: stream 0 is generate_scenario's, so appending never perturbs
  // the base seed -> scenario mapping.
  auto rng = util::Rng::stream(scenario.seed ^ salt, 1);

  // Replay the existing script so appended churn starts from the membership
  // state the run will actually be in when it reaches these events.
  std::vector<std::vector<Member>> mirror;
  std::vector<std::uint32_t> next_vm(scenario.groups.size(), 0);
  for (const auto& g : scenario.groups) mirror.push_back(g.members);
  for (const auto& ev : scenario.events) {
    if (ev.kind == EventKind::kHostFail) {
      for (auto& members : mirror) {
        members.erase(std::remove_if(members.begin(), members.end(),
                                     [&](const Member& m) {
                                       return m.host == ev.member.host;
                                     }),
                      members.end());
      }
      continue;
    }
    if (ev.group_index >= mirror.size()) continue;
    auto& members = mirror[ev.group_index];
    if (ev.kind == EventKind::kJoin) {
      members.push_back(ev.member);
    } else if (ev.kind == EventKind::kLeave) {
      const auto it = std::find_if(
          members.begin(), members.end(), [&](const Member& m) {
            return m.host == ev.member.host && m.vm == ev.member.vm;
          });
      if (it != members.end()) members.erase(it);
    }
  }
  for (std::size_t gi = 0; gi < mirror.size(); ++gi) {
    for (const auto& m : mirror[gi]) {
      next_vm[gi] = std::max(next_vm[gi], m.vm + 1);
    }
  }

  auto emit_send = [&](std::size_t gi) {
    const auto senders =
        eligible_senders(topo, scenario.legacy_leaves, mirror[gi]);
    if (senders.empty()) return;
    Event ev;
    ev.kind = EventKind::kSend;
    ev.group_index = gi;
    ev.sender = senders[rng.index(senders.size())];
    scenario.events.push_back(ev);
  };

  for (std::size_t e = 0; e < count; ++e) {
    const std::size_t gi = rng.index(scenario.groups.size());
    const double roll = rng.uniform();
    // Leaves need at least two members to keep the group alive (mirroring
    // generate_scenario); an infeasible leave degrades into a join so the
    // script always grows to the requested length.
    if (roll < 0.44 || mirror[gi].size() < 2) {  // join
      Event ev;
      ev.kind = EventKind::kJoin;
      ev.group_index = gi;
      topo::HostId host;
      if (rng.bernoulli(0.35) && !mirror[gi].empty()) {
        host = mirror[gi][rng.index(mirror[gi].size())].host;  // co-locate
      } else {
        host = static_cast<topo::HostId>(rng.index(topo.num_hosts()));
      }
      ev.member = Member{host, next_vm[gi]++, random_role(rng)};
      mirror[gi].push_back(ev.member);
      scenario.events.push_back(ev);
    } else if (roll < 0.86) {  // leave
      const std::size_t victim = rng.index(mirror[gi].size());
      Event ev;
      ev.kind = EventKind::kLeave;
      ev.group_index = gi;
      ev.member = mirror[gi][victim];
      mirror[gi].erase(mirror[gi].begin() + victim);
      scenario.events.push_back(ev);
    } else if (roll < 0.9) {  // host fail: every VM on one host leaves at once
      const std::size_t victim = rng.index(mirror[gi].size());
      const topo::HostId host = mirror[gi][victim].host;
      // Viable only if every group with members on `host` survives it; an
      // infeasible host-fail degrades into a plain leave of the drawn
      // member so the script still grows to the requested length.
      bool viable = true;
      for (const auto& members : mirror) {
        const auto on_host = static_cast<std::size_t>(
            std::count_if(members.begin(), members.end(),
                          [&](const Member& m) { return m.host == host; }));
        if (on_host > 0 && on_host == members.size()) {
          viable = false;
          break;
        }
      }
      Event ev;
      ev.group_index = gi;
      if (viable) {
        ev.kind = EventKind::kHostFail;
        ev.member = Member{host, 0, MemberRole::kBoth};
        for (auto& members : mirror) {
          members.erase(std::remove_if(members.begin(), members.end(),
                                       [&](const Member& m) {
                                         return m.host == host;
                                       }),
                        members.end());
        }
      } else {
        ev.kind = EventKind::kLeave;
        ev.member = mirror[gi][victim];
        mirror[gi].erase(mirror[gi].begin() + victim);
      }
      scenario.events.push_back(ev);
    } else {  // periodic send: divergences surface mid-churn, not only at end
      emit_send(gi);
    }
  }

  // Closing sweep: one send per group over the post-churn membership.
  for (std::size_t gi = 0; gi < scenario.groups.size(); ++gi) {
    emit_send(gi);
  }
}

void normalize(Scenario& scenario) {
  const topo::ClosTopology topo{scenario.params};
  if (!scenario.legacy_leaves.empty()) {
    scenario.legacy_leaves.resize(topo.num_leaves(), false);
  }
  for (auto& g : scenario.groups) {
    for (auto& m : g.members) {
      m.host = static_cast<topo::HostId>(m.host % topo.num_hosts());
    }
  }

  std::vector<std::vector<Member>> mirror;
  for (const auto& g : scenario.groups) mirror.push_back(g.members);
  std::vector<bool> spine_down(topo.num_spines(), false);
  std::vector<bool> core_down(topo.num_cores(), false);

  auto find_member = [](const std::vector<Member>& members, topo::HostId host,
                        std::uint32_t vm) {
    return std::find_if(members.begin(), members.end(), [&](const Member& m) {
      return m.host == host && m.vm == vm;
    });
  };

  std::vector<Event> kept;
  for (auto ev : scenario.events) {
    switch (ev.kind) {
      case EventKind::kJoin: {
        if (ev.group_index >= mirror.size()) continue;
        auto& members = mirror[ev.group_index];
        ev.member.host =
            static_cast<topo::HostId>(ev.member.host % topo.num_hosts());
        if (find_member(members, ev.member.host, ev.member.vm) !=
            members.end()) {
          continue;
        }
        members.push_back(ev.member);
        break;
      }
      case EventKind::kLeave: {
        if (ev.group_index >= mirror.size()) continue;
        auto& members = mirror[ev.group_index];
        ev.member.host =
            static_cast<topo::HostId>(ev.member.host % topo.num_hosts());
        const auto it = find_member(members, ev.member.host, ev.member.vm);
        if (it == members.end() || members.size() < 2) continue;
        ev.member = *it;  // keep the role consistent with the mirror
        members.erase(it);
        break;
      }
      case EventKind::kFailSpine: {
        ev.switch_id =
            static_cast<std::uint32_t>(ev.switch_id % topo.num_spines());
        if (spine_down[ev.switch_id]) continue;
        spine_down[ev.switch_id] = true;
        break;
      }
      case EventKind::kFailCore: {
        ev.switch_id =
            static_cast<std::uint32_t>(ev.switch_id % topo.num_cores());
        if (core_down[ev.switch_id]) continue;
        core_down[ev.switch_id] = true;
        break;
      }
      case EventKind::kRestoreSpine: {
        ev.switch_id =
            static_cast<std::uint32_t>(ev.switch_id % topo.num_spines());
        if (!spine_down[ev.switch_id]) continue;
        spine_down[ev.switch_id] = false;
        break;
      }
      case EventKind::kRestoreCore: {
        ev.switch_id =
            static_cast<std::uint32_t>(ev.switch_id % topo.num_cores());
        if (!core_down[ev.switch_id]) continue;
        core_down[ev.switch_id] = false;
        break;
      }
      case EventKind::kHostFail: {
        ev.member.host =
            static_cast<topo::HostId>(ev.member.host % topo.num_hosts());
        const topo::HostId host = ev.member.host;
        bool touches = false;
        bool viable = true;
        for (const auto& members : mirror) {
          const auto on_host = static_cast<std::size_t>(
              std::count_if(members.begin(), members.end(),
                            [&](const Member& m) { return m.host == host; }));
          touches = touches || on_host > 0;
          if (on_host > 0 && on_host == members.size()) viable = false;
        }
        if (!touches || !viable) continue;  // no-op or would empty a group
        for (auto& members : mirror) {
          members.erase(std::remove_if(members.begin(), members.end(),
                                       [&](const Member& m) {
                                         return m.host == host;
                                       }),
                        members.end());
        }
        break;
      }
      case EventKind::kSend: {
        if (ev.group_index >= mirror.size()) continue;
        ev.sender = static_cast<topo::HostId>(ev.sender % topo.num_hosts());
        const auto senders = eligible_senders(topo, scenario.legacy_leaves,
                                              mirror[ev.group_index]);
        if (std::find(senders.begin(), senders.end(), ev.sender) ==
            senders.end()) {
          continue;
        }
        break;
      }
    }
    kept.push_back(ev);
  }
  scenario.events = std::move(kept);
}

}  // namespace elmo::verify
