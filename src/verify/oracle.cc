#include "verify/oracle.h"

#include <algorithm>

namespace elmo::verify {

DeliveryOracle::DeliveryOracle(const topo::ClosTopology& topology,
                               std::vector<bool> legacy_leaves)
    : topo_{&topology}, legacy_leaves_{std::move(legacy_leaves)} {
  if (!legacy_leaves_.empty()) {
    legacy_leaves_.resize(topology.num_leaves(), false);
  }
}

void DeliveryOracle::create_group(std::vector<Member> members) {
  groups_.push_back(std::move(members));
}

void DeliveryOracle::join(std::size_t group_index, const Member& member) {
  groups_.at(group_index).push_back(member);
}

bool DeliveryOracle::leave(std::size_t group_index, topo::HostId host,
                           std::uint32_t vm) {
  auto& members = groups_.at(group_index);
  const auto it =
      std::find_if(members.begin(), members.end(), [&](const Member& m) {
        return m.host == host && m.vm == vm;
      });
  if (it == members.end()) return false;
  members.erase(it);
  return true;
}

std::size_t DeliveryOracle::receiving_vms_on(std::size_t group_index,
                                             topo::HostId host) const {
  std::size_t count = 0;
  for (const auto& m : groups_.at(group_index)) {
    if (m.host == host && can_receive(m.role)) ++count;
  }
  return count;
}

bool DeliveryOracle::legacy_covered(const GroupEncoding& encoding,
                                    topo::HostId host) const {
  const auto leaf = topo_->leaf_of_host(host);
  if (legacy_leaves_.empty() || !legacy_leaves_[leaf]) return true;
  for (const auto& [id, bitmap] : encoding.leaf.s_rules) {
    if (id == leaf) return bitmap.test(topo_->host_port_on_leaf(host));
  }
  return false;  // legacy leaf denied its s-rule (Fmax): dark by design
}

bool DeliveryOracle::reachable(topo::HostId sender, topo::HostId member) const {
  const auto& t = *topo_;
  const auto sender_leaf = t.leaf_of_host(sender);
  const auto member_leaf = t.leaf_of_host(member);
  if (sender_leaf == member_leaf) return true;  // served by u_leaf directly

  const auto sender_pod = t.pod_of_leaf(sender_leaf);
  const auto member_pod = t.pod_of_leaf(member_leaf);
  for (std::size_t plane = 0; plane < t.params().spines_per_pod; ++plane) {
    if (failures_.spine_failed(t.spine_at(sender_pod, plane))) continue;
    if (member_pod == sender_pod) return true;  // one alive local spine is enough
    if (failures_.spine_failed(t.spine_at(member_pod, plane))) continue;
    for (std::size_t c = 0; c < t.params().cores_per_plane; ++c) {
      if (!failures_.core_failed(t.core_at(plane, c))) return true;
    }
  }
  return false;
}

DeliveryOracle::Expectation DeliveryOracle::expect(
    std::size_t group_index, const GroupEncoding& encoding,
    topo::HostId sender) const {
  Expectation ex;
  ex.duplicates_allowed = !failures_.empty();
  for (const auto& m : groups_.at(group_index)) {
    if (!can_receive(m.role)) continue;
    if (m.host == sender) continue;  // local VMs never cross the fabric
    if (!legacy_covered(encoding, m.host)) continue;
    if (!reachable(sender, m.host)) continue;
    ++ex.expected_hosts[m.host];
  }
  return ex;
}

}  // namespace elmo::verify
