// The "explain" layer: joins a packet's decision tree (obs::ProvenanceLog)
// against the delivery oracle's ideal receiver set and attributes every host
// copy — and every wasted one — to the encoding decision that caused it
// (DESIGN.md §10).
//
// Attribution is by *proximate cause*: the rule class of the leaf hop that
// emitted the copy toward the host. A copy to a non-member host can only
// exist because the emitting leaf's downstream bitmap over-covered, and that
// bitmap came from exactly one of: the lossy default p-rule, a p-rule merged
// across switches (shared identifier list), or a group-table s-rule whose
// bitmap was OR-ed across groups/legacy coverage. Exact (unshared) p-rules
// never over-cover by construction, so a spurious copy attributed to one is
// flagged kViaExactPRule — an encoding bug, not a modeled trade-off.
//
// The per-cause totals decompose the same excess the analytic
// TrafficEvaluator reports in aggregate: intended == members_reached and
// total_redundant() == duplicate + spurious deliveries. verify::Runner
// cross-checks that identity on every send it diffs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/provenance.h"
#include "topology/clos.h"
#include "verify/oracle.h"

namespace elmo::verify {

// Why one host copy exists, per the decision tree + oracle join.
enum class CopyCause : std::uint8_t {
  kIntended = 0,     // oracle-expected host, first copy to reach it
  kDuplicate,        // oracle-expected host, surplus copy (failure rerouting)
  kViaDefaultPRule,  // non-member host: leaf fell back to the default p-rule
  kViaSharedPRule,   // non-member host: leaf matched a merged (shared) p-rule
  kViaSRule,         // non-member host: leaf forwarded from its group table
  kViaExactPRule,    // non-member host via an exact p-rule — encoding bug
  kUnattributed,     // non-member host, no recorded leaf decision
};

const char* to_string(CopyCause cause);

// One host copy of the send, with its attribution.
struct ExplainedCopy {
  std::size_t hop = 0;  // index of the host hop in the trace
  topo::HostId host = 0;
  CopyCause cause = CopyCause::kUnattributed;
  obs::RuleClass leaf_rule = obs::RuleClass::kNone;  // proximate rule class
};

// Excess-traffic decomposition of one send, by cause.
struct RedundancyBreakdown {
  std::size_t intended = 0;
  std::size_t duplicates = 0;
  std::size_t via_default = 0;
  std::size_t via_shared_prule = 0;
  std::size_t via_srule = 0;
  std::size_t via_exact_prule = 0;
  std::size_t unattributed = 0;

  // Every copy beyond the ideal receiver set — must equal the analytic
  // evaluator's duplicate_deliveries + spurious_deliveries.
  std::size_t total_redundant() const noexcept {
    return duplicates + via_default + via_shared_prule + via_srule +
           via_exact_prule + unattributed;
  }
};

// The annotated decision tree of one send.
struct SendExplanation {
  obs::SendTrace trace;
  std::vector<ExplainedCopy> copies;     // one per host copy, in walk order
  std::vector<topo::HostId> missing;     // expected hosts that got no copy
  RedundancyBreakdown breakdown;

  // Decision tree with each host leaf annotated by its cause, the missing
  // hosts, and the attribution totals.
  std::string render() const;
};

// Joins `trace` against the oracle expectation for the same send.
SendExplanation explain_send(const obs::SendTrace& trace,
                             const DeliveryOracle::Expectation& expectation);

}  // namespace elmo::verify
