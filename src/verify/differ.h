// Differential runner: executes one Scenario through the REAL pipeline
// (Controller encode -> bit-exact header codec -> sim::Fabric event-queue
// walk) and diffs every observable against the set-based DeliveryOracle and
// the analytic TrafficEvaluator:
//
//   * after every membership event: controller member list == oracle mirror;
//   * per send: every oracle-expected host got a copy (exactly one unless
//     failures legitimize duplicates), the sender host got none, per-VM
//     deliveries match copies x mirrored receiving VMs, switch hop count
//     stays within the Clos diameter, and the packet-level fabric agrees
//     with the analytic evaluator on total copies and members reached.
//
// Mutation mode turns the harness on itself: each Mutation seeds one known
// fault into the pipeline (bit-flipped header templates, dropped s-rules or
// flow VMs, stale mirrors, the pre-fix leave-by-host-only churn bug) and a
// run is only useful evidence if the differ CATCHES it (applied && !ok).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "verify/explain.h"
#include "verify/scenario.h"

namespace elmo::obs {
class HealthMonitor;
class MetricsRegistry;
class TimeSeriesStore;
class Tracer;
}
namespace elmo::sim {
class FlightRecorder;
}

namespace elmo::verify {

enum class Mutation : std::uint8_t {
  kNone = 0,
  // Clear a member-host bit in a leaf p-rule of every sender's header
  // template: that member silently stops receiving.
  kClearPRuleBit,
  // Set a spare bit in a leaf p-rule of every sender's header template: an
  // extra copy the analytic evaluator does not predict.
  kSetPRuleBit,
  // Remove an s-rule the encoding spilled to a leaf's group table.
  kDropSRule,
  // Drop one receiving VM from a hypervisor flow: host copies arrive but the
  // per-VM fan-out comes up short.
  kDropLocalVm,
  // Install the header template of a different (other-leaf) member into a
  // sender's flow.
  kWrongSenderHeader,
  // Stop propagating membership changes to the data plane (stale fabric).
  kSkipMirrorUpdate,
  // Process leaves through the legacy leave(group, host) API, which removes
  // the FIRST member on the host — the exact pre-fix ChurnSimulator desync
  // under co-location.
  kLeaveByHostOnly,
};

inline constexpr std::array<Mutation, 7> kAllMutations = {
    Mutation::kClearPRuleBit,   Mutation::kSetPRuleBit,
    Mutation::kDropSRule,       Mutation::kDropLocalVm,
    Mutation::kWrongSenderHeader, Mutation::kSkipMirrorUpdate,
    Mutation::kLeaveByHostOnly,
};

const char* to_string(Mutation mutation);

struct RunReport {
  bool ok = false;
  // Mutation mode: the seeded fault actually fired in this scenario. A
  // mutation is only *validated* by a run with applied && !ok; scan more
  // seeds until one applies.
  bool applied = false;
  std::string failure;  // first divergence, human-readable; empty when ok
  // When the divergence happened during a send check: that send's rendered
  // decision tree with oracle annotations (verify::SendExplanation), so the
  // diff arrives with its own explanation attached. Empty otherwise.
  std::string explanation;
  std::size_t events_run = 0;
  std::size_t sends_checked = 0;
};

// One diffed send's full provenance join, exported via
// RunObservability::captures for tools/explain and artifact dumps.
struct SendCapture {
  std::size_t event_index = 0;  // index into Scenario::events
  std::size_t group_index = 0;
  topo::HostId sender = 0;
  SendExplanation explanation;
  // The analytic evaluator's view of the same send, for cross-checking the
  // attribution totals (members_reached / duplicate / spurious).
  std::size_t evaluator_reached = 0;
  std::size_t evaluator_duplicates = 0;
  std::size_t evaluator_spurious = 0;
};

// Optional telemetry taps for one run (DESIGN.md §9). All may be null.
// `recorder` is attached to the scenario's fabric for the whole run; the
// registry receives the fabric's per-element and walk totals when the run
// finishes (accumulate_fabric_metrics — one shot per run); `captures`
// receives one SendCapture per send the differ checks.
struct RunObservability {
  obs::MetricsRegistry* registry = nullptr;
  sim::FlightRecorder* recorder = nullptr;
  std::vector<SendCapture>* captures = nullptr;
  // Live health taps (DESIGN.md §14): when `timeseries` is set, the runner
  // closes one sampling window per scenario event (fabric counters, the
  // oracle-expected VM-delivery total, and — in delta mode — the streaming
  // plane's install-lag p99) and, when `health` is also set, ticks the
  // monitor after each window. A clean fuzz run thus doubles as a
  // zero-false-positive check for the detectors.
  obs::TimeSeriesStore* timeseries = nullptr;
  obs::HealthMonitor* health = nullptr;
  // Causal tracer (DESIGN.md §15): attached to the fabric and — in delta
  // mode — to the streaming control plane, so churn events, installs, and
  // time-to-effect closures land on the unified timeline.
  obs::Tracer* tracer = nullptr;
};

// Execution knobs for one run. `walk_threads == 0` checks sends through the
// serial Fabric::send() reference; any other value routes them through the
// batched walk (Fabric::send_batch, DESIGN.md §12) with that worker count —
// every oracle diff then doubles as a serial/batched equivalence check.
struct RunOptions {
  std::size_t walk_threads = 0;
  // Route membership churn through the streaming control plane
  // (elmo::stream::ControlPlane): each join/leave is re-encoded
  // incrementally and installed as coalesced rule DELTAS over the p4rt wire
  // channel, instead of uninstall_group + install_group of the whole group
  // per event. After every membership or failure event the installed fabric
  // state is additionally digest-diffed against a freshly batch-installed
  // reference fabric — the continuous churn oracle: streamed deltas must
  // leave the fabric byte-identical to a from-scratch install at every
  // step, not just at the end of the run.
  bool delta_installs = false;
};

RunReport run_scenario(const Scenario& scenario,
                       Mutation mutation = Mutation::kNone,
                       const RunObservability* observability = nullptr,
                       const RunOptions& options = RunOptions{});

}  // namespace elmo::verify
