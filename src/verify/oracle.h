// Set-based delivery oracle for the differential harness.
//
// The oracle mirrors what the controller is *supposed* to know — group
// membership and the set of failed switches — and computes, for one send,
// the ideal receiver set from first principles on the Clos topology: no
// trees, no encodings, no header walks. The real pipeline (Controller
// encode -> header codec -> sim::Fabric walk) must then deliver exactly to
// that set.
//
// Two deliberate exceptions where the oracle consults system state:
//   * Legacy coverage (§7): whether a legacy leaf got its forced s-rule is a
//     capacity *policy* decision (Fmax greedy allocation) the oracle cannot
//     re-derive, so it reads the group encoding's s-rule list. A legacy leaf
//     without one is unreachable BY DESIGN and its members are excluded.
//   * Nothing else. Pod reachability under failures in particular is
//     recomputed independently from the failure mirror, NOT from
//     SenderRoute — that is the point of the differential.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "elmo/controller.h"
#include "elmo/rules.h"
#include "topology/clos.h"

namespace elmo::verify {

class DeliveryOracle {
 public:
  DeliveryOracle(const topo::ClosTopology& topology,
                 std::vector<bool> legacy_leaves);

  // --- membership mirror (group-index keyed, parallel to the scenario) ----
  void create_group(std::vector<Member> members);
  void join(std::size_t group_index, const Member& member);
  // Removes exactly (host, vm); returns false if that pair is not mirrored.
  bool leave(std::size_t group_index, topo::HostId host, std::uint32_t vm);
  const std::vector<Member>& members(std::size_t group_index) const {
    return groups_.at(group_index);
  }
  std::size_t num_groups() const noexcept { return groups_.size(); }

  // --- failure mirror ------------------------------------------------------
  void fail_spine(topo::SpineId spine) { failures_.fail_spine(spine); }
  void fail_core(topo::CoreId core) { failures_.fail_core(core); }
  void restore_spine(topo::SpineId spine) { failures_.restore_spine(spine); }
  void restore_core(topo::CoreId core) { failures_.restore_core(core); }
  const topo::FailureSet& failures() const noexcept { return failures_; }

  // Receiving-member VM count on `host` — what a hypervisor holding this
  // group's flow must deliver per arriving copy, whether or not the host is
  // network-reachable right now.
  std::size_t receiving_vms_on(std::size_t group_index,
                               topo::HostId host) const;

  struct Expectation {
    // Hosts that MUST receive the packet, with the receiving-VM count each
    // copy fans out to. Exactly one copy per host unless duplicates_allowed.
    std::map<topo::HostId, std::size_t> expected_hosts;
    // Failure re-routing picks explicit per-plane routes by greedy set
    // cover, which legitimately duplicates deliveries (§3.3) — so the
    // exactly-once check is waived whenever the failure mirror is non-empty.
    bool duplicates_allowed = false;
  };

  // Ideal receiver set for a send from `sender`: every receiving member's
  // host, except the sender's own host (local delivery bypasses the fabric),
  // members behind uncovered legacy leaves, and members in pods that no
  // alive (spine, core, spine) path can reach under the failure mirror.
  Expectation expect(std::size_t group_index, const GroupEncoding& encoding,
                     topo::HostId sender) const;

 private:
  bool reachable(topo::HostId sender, topo::HostId member) const;
  bool legacy_covered(const GroupEncoding& encoding, topo::HostId host) const;

  const topo::ClosTopology* topo_;
  std::vector<bool> legacy_leaves_;
  std::vector<std::vector<Member>> groups_;
  topo::FailureSet failures_;
};

}  // namespace elmo::verify
