#include "verify/explain.h"

#include <map>
#include <sstream>

namespace elmo::verify {

const char* to_string(CopyCause cause) {
  switch (cause) {
    case CopyCause::kIntended:
      return "intended";
    case CopyCause::kDuplicate:
      return "duplicate";
    case CopyCause::kViaDefaultPRule:
      return "via-default-prule";
    case CopyCause::kViaSharedPRule:
      return "via-shared-prule";
    case CopyCause::kViaSRule:
      return "via-srule";
    case CopyCause::kViaExactPRule:
      return "via-exact-prule";
    case CopyCause::kUnattributed:
      return "unattributed";
  }
  return "?";
}

namespace {

CopyCause spurious_cause(const obs::HopDecision& leaf) {
  switch (leaf.rule) {
    case obs::RuleClass::kDefault:
      return CopyCause::kViaDefaultPRule;
    case obs::RuleClass::kPRule:
      return leaf.prule_shared ? CopyCause::kViaSharedPRule
                               : CopyCause::kViaExactPRule;
    case obs::RuleClass::kSRule:
      return CopyCause::kViaSRule;
    default:
      return CopyCause::kUnattributed;
  }
}

void tally(RedundancyBreakdown& b, CopyCause cause) {
  switch (cause) {
    case CopyCause::kIntended:
      ++b.intended;
      break;
    case CopyCause::kDuplicate:
      ++b.duplicates;
      break;
    case CopyCause::kViaDefaultPRule:
      ++b.via_default;
      break;
    case CopyCause::kViaSharedPRule:
      ++b.via_shared_prule;
      break;
    case CopyCause::kViaSRule:
      ++b.via_srule;
      break;
    case CopyCause::kViaExactPRule:
      ++b.via_exact_prule;
      break;
    case CopyCause::kUnattributed:
      ++b.unattributed;
      break;
  }
}

const char* annotation(CopyCause cause) {
  switch (cause) {
    case CopyCause::kIntended:
      return "<- intended";
    case CopyCause::kDuplicate:
      return "<- REDUNDANT: duplicate copy";
    case CopyCause::kViaDefaultPRule:
      return "<- REDUNDANT: via default p-rule";
    case CopyCause::kViaSharedPRule:
      return "<- REDUNDANT: via shared p-rule";
    case CopyCause::kViaSRule:
      return "<- REDUNDANT: via shared s-rule";
    case CopyCause::kViaExactPRule:
      return "<- REDUNDANT: via exact p-rule (encoding bug?)";
    case CopyCause::kUnattributed:
      return "<- REDUNDANT: unattributed";
  }
  return "";
}

std::string node_name(topo::Layer layer, std::uint32_t node) {
  switch (layer) {
    case topo::Layer::kHost:
      return "host" + std::to_string(node);
    case topo::Layer::kLeaf:
      return "L" + std::to_string(node);
    case topo::Layer::kSpine:
      return "S" + std::to_string(node);
    case topo::Layer::kCore:
      return "C" + std::to_string(node);
  }
  return "?";
}

void render_annotated(const obs::SendTrace& trace,
                      const std::map<std::size_t, const char*>& notes,
                      std::size_t index, std::size_t depth,
                      std::ostringstream& out) {
  const auto& hop = trace.hops[index];
  out << std::string(2 * depth, ' ') << node_name(hop.layer, hop.node);
  if (hop.lost) {
    out << "  [lost in flight]\n";
    return;
  }
  if (index == 0) {
    out << "  [source, " << hop.bytes_in << "B on wire]\n";
  } else {
    out << "  [" << obs::describe(hop.decision) << ", " << hop.bytes_in
        << "B in]";
    if (const auto it = notes.find(index); it != notes.end()) {
      out << "  " << it->second;
    }
    out << "\n";
  }
  for (const auto child : hop.children) {
    render_annotated(trace, notes, child, depth + 1, out);
  }
}

}  // namespace

SendExplanation explain_send(const obs::SendTrace& trace,
                             const DeliveryOracle::Expectation& expectation) {
  SendExplanation ex;
  ex.trace = trace;

  std::map<topo::HostId, std::size_t> copies_seen;
  for (std::size_t i = 1; i < trace.hops.size(); ++i) {
    const auto& hop = trace.hops[i];
    if (hop.layer != topo::Layer::kHost || hop.lost) continue;

    ExplainedCopy copy;
    copy.hop = i;
    copy.host = hop.node;
    const obs::HopDecision* leaf = nullptr;
    if (hop.parent != obs::kNoProvParent) {
      leaf = &trace.hops[hop.parent].decision;
      copy.leaf_rule = leaf->rule;
    }

    const auto seen = ++copies_seen[copy.host];
    if (expectation.expected_hosts.contains(copy.host)) {
      copy.cause = seen == 1 ? CopyCause::kIntended : CopyCause::kDuplicate;
    } else {
      copy.cause = leaf != nullptr ? spurious_cause(*leaf)
                                   : CopyCause::kUnattributed;
    }
    tally(ex.breakdown, copy.cause);
    ex.copies.push_back(copy);
  }

  for (const auto& [host, vms] : expectation.expected_hosts) {
    (void)vms;
    if (!copies_seen.contains(host)) ex.missing.push_back(host);
  }
  return ex;
}

std::string SendExplanation::render() const {
  std::ostringstream out;
  out << "send group=" << trace.group << " from host" << trace.src_host
      << "\n";
  std::map<std::size_t, const char*> notes;
  for (const auto& copy : copies) notes[copy.hop] = annotation(copy.cause);
  if (!trace.hops.empty()) render_annotated(trace, notes, 0, 0, out);
  for (const auto host : missing) {
    out << "MISSING: host" << host << " expected a copy but got none\n";
  }
  const auto& b = breakdown;
  out << "attribution: " << b.intended << " intended";
  const struct {
    std::size_t count;
    const char* label;
  } causes[] = {
      {b.duplicates, "duplicate"},
      {b.via_default, "via default p-rule"},
      {b.via_shared_prule, "via shared p-rule"},
      {b.via_srule, "via s-rule"},
      {b.via_exact_prule, "via exact p-rule"},
      {b.unattributed, "unattributed"},
  };
  for (const auto& c : causes) {
    if (c.count > 0) out << ", " << c.count << " " << c.label;
  }
  out << " (" << b.total_redundant() << " redundant, " << missing.size()
      << " missing)\n";
  return out.str();
}

}  // namespace elmo::verify
