// Randomized end-to-end scenarios for the differential verification harness.
//
// A Scenario is a fully concrete, replayable description of one fuzz run:
// topology parameters, encoder knobs, legacy-leaf placement, initial group
// memberships, and an ordered event script (joins, leaves, switch failures
// and restorations, multicast sends). Everything is derived deterministically
// from a single 64-bit seed, so a CI failure reports one number that
// reproduces the exact run (see README, "Replaying a failing seed").
//
// Scenarios are plain data so the shrinker (shrink.h) can delete groups,
// events, and members and re-run the result; normalize() repairs whatever an
// edit made inconsistent (leaves of departed members, sends from hosts that
// can no longer source the group) instead of forcing every edit to be valid
// by construction.
#pragma once

#include <cstdint>
#include <vector>

#include "elmo/controller.h"
#include "elmo/rules.h"
#include "topology/clos.h"

namespace elmo::verify {

// One scripted event. Fields are interpreted per kind; unused fields stay 0.
enum class EventKind : std::uint8_t {
  kJoin,          // group_index, member
  kLeave,         // group_index, member (host, vm identify the victim)
  kFailSpine,     // switch_id
  kFailCore,      // switch_id
  kRestoreSpine,  // switch_id
  kRestoreCore,   // switch_id
  kSend,          // group_index, sender
  // member.host names the failed host: every VM on it leaves every group at
  // once (stream::ControlPlane::host_fail). Appended last so historical
  // fixture files keep their numeric kind values.
  kHostFail,
};

struct Event {
  EventKind kind = EventKind::kSend;
  std::size_t group_index = 0;  // index into Scenario::groups
  Member member;                // kJoin / kLeave
  std::uint32_t switch_id = 0;  // kFailSpine / kFailCore / kRestore*
  topo::HostId sender = 0;      // kSend
};

struct ScenarioGroup {
  std::uint32_t tenant = 0;
  std::vector<Member> members;
};

struct Scenario {
  std::uint64_t seed = 0;  // provenance only; replay derives from the script
  topo::ClosParams params = topo::ClosParams::small_test();
  EncoderConfig config;
  std::vector<bool> legacy_leaves;  // indexed by global leaf id; may be empty
  std::vector<ScenarioGroup> groups;
  std::vector<Event> events;
};

// Deterministically expands `seed` into a scenario: a topology drawn from a
// small ladder, encoder knobs that sometimes force tight header budgets or
// Fmax exhaustion, sometimes a legacy-leaf mix, co-located members with
// non-trivial probability, and an event script that interleaves churn,
// failures, and sends (ending with a send sweep over every group).
Scenario generate_scenario(std::uint64_t seed);

// Extends `scenario`'s event script with `count` additional churn-heavy
// events (join/leave-biased, with periodic sends and a closing send sweep),
// derived deterministically from the scenario seed xor `salt`. The existing
// script is replayed into a membership mirror first, so every appended
// event is valid against the state the run will actually be in. Used by
// the continuous-churn fuzz campaign (tools/fuzz_pipeline --churn_events=N)
// to stress the streaming control plane's delta installs far beyond the
// handful of churn events generate_scenario emits.
void append_churn_events(Scenario& scenario, std::size_t count,
                         std::uint64_t salt);

// Drops events a prior edit made unexecutable (leave of a non-member, send
// from a host with no sending member, churn on an empty/removed group,
// restore of a never-failed switch) and clamps members/senders to hosts that
// exist under `params`. Idempotent; called by the shrinker after every edit.
void normalize(Scenario& scenario);

}  // namespace elmo::verify
