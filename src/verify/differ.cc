#include "verify/differ.h"

#include <algorithm>
#include <exception>
#include <optional>
#include <string>
#include <vector>

#include "dataplane/common.h"
#include "elmo/evaluator.h"
#include "elmo/stream.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/provenance.h"
#include "obs/timeseries.h"
#include "sim/fabric.h"
#include "sim/flight_recorder.h"
#include "verify/explain.h"
#include "verify/oracle.h"

namespace elmo::verify {

const char* to_string(Mutation mutation) {
  switch (mutation) {
    case Mutation::kNone:
      return "none";
    case Mutation::kClearPRuleBit:
      return "clear-prule-bit";
    case Mutation::kSetPRuleBit:
      return "set-prule-bit";
    case Mutation::kDropSRule:
      return "drop-srule";
    case Mutation::kDropLocalVm:
      return "drop-local-vm";
    case Mutation::kWrongSenderHeader:
      return "wrong-sender-header";
    case Mutation::kSkipMirrorUpdate:
      return "skip-mirror-update";
    case Mutation::kLeaveByHostOnly:
      return "leave-by-host-only";
  }
  return "unknown";
}

namespace {

std::string str(std::uint64_t v) { return std::to_string(v); }

const char* role_name(MemberRole role) {
  switch (role) {
    case MemberRole::kSender:
      return "sender";
    case MemberRole::kReceiver:
      return "receiver";
    case MemberRole::kBoth:
      return "both";
  }
  return "?";
}

std::string describe(const Member& m) {
  return "(host=" + str(m.host) + ", vm=" + str(m.vm) + ", " +
         role_name(m.role) + ")";
}

class Runner {
 public:
  Runner(const Scenario& scenario, Mutation mutation,
         const RunObservability* observability, const RunOptions& options)
      : sc_{scenario},
        mutation_{mutation},
        options_{options},
        topo_{scenario.params},
        controller_{topo_, scenario.config},
        fabric_{topo_},
        legacy_{scenario.legacy_leaves},
        oracle_{topo_, scenario.legacy_leaves} {
    if (!legacy_.empty()) legacy_.resize(topo_.num_leaves(), false);
    if (observability != nullptr) {
      registry_ = observability->registry;
      fabric_.set_recorder(observability->recorder);
      captures_ = observability->captures;
      ts_ = observability->timeseries;
      health_ = observability->health;
      tracer_ = observability->tracer;
      fabric_.set_tracer(tracer_);
    }
    // The runner always walks with provenance attached: every diff it
    // reports carries the send's annotated decision tree (DESIGN.md §10).
    fabric_.set_provenance(&prov_log_);
  }

  RunReport run() {
    try {
      setup();
      if (failed_) return finish();
      for (std::size_t i = 0; i < sc_.events.size(); ++i) {
        step(i, sc_.events[i]);
        ++report_.events_run;
        if (failed_) return finish();
        sample_window();
      }
    } catch (const std::exception& ex) {
      fail(std::string{"exception: "} + ex.what());
      return finish();
    }
    report_.ok = true;
    report_.applied = applied_;
    return finish();
  }

 private:
  // The fabric's totals flow into the registry exactly once, whether the
  // run passed, diverged, or threw.
  RunReport finish() {
    if (registry_ != nullptr) {
      accumulate_fabric_metrics(fabric_, *registry_);
    }
    return report_;
  }

  // One health sampling window per scenario event (DESIGN.md §14).
  void sample_window() {
    if (ts_ == nullptr) return;
    fabric_.sample_into(*ts_);
    ts_->append("elmo_expect_vm_deliveries_total", expected_vm_total_);
    if (plane_.has_value()) {
      ts_->append("elmo_stream_install_lag_p99_seconds",
                  plane_->stats().install_lag_seconds.percentile(0.99));
    }
    ts_->advance();
    if (health_ != nullptr) health_->tick();
  }

  void fail(std::string message) {
    if (failed_) return;
    failed_ = true;
    report_.ok = false;
    report_.applied = applied_;
    report_.failure = std::move(message);
    // Non-empty only while a send is being checked: the diff carries that
    // send's annotated decision tree.
    report_.explanation = std::move(pending_explanation_);
    pending_explanation_.clear();
  }

  void setup() {
    if (!legacy_.empty()) {
      controller_.set_legacy_leaves(legacy_);
      for (topo::LeafId l = 0; l < topo_.num_leaves(); ++l) {
        if (legacy_[l]) fabric_.leaf(l).set_legacy(true);
      }
    }
    for (const auto& g : sc_.groups) {
      ids_.push_back(controller_.create_group(
          g.tenant, std::span<const Member>{g.members}));
      oracle_.create_group(g.members);
    }
    for (std::size_t gi = 0; gi < ids_.size(); ++gi) {
      fabric_.install_group(controller_, ids_[gi]);
    }
    if (options_.delta_installs) {
      // Threshold 1: every event's delta reaches the wire before the next
      // oracle diff, so a divergence is pinned to the event that caused it.
      plane_.emplace(controller_, fabric_,
                     stream::ControlPlaneOptions{/*flush_threshold=*/1});
      if (tracer_ != nullptr) plane_->set_tracer(tracer_);
      for (const auto id : ids_) plane_->track_group(id);
    }
    select_mutation_target();
    apply_fabric_mutation();
    diff_membership("after setup");
    if (failed_) return;
    diff_fabric_state("after setup");
  }

  void step(std::size_t index, const Event& ev) {
    const std::string at = "event #" + str(index);
    switch (ev.kind) {
      case EventKind::kJoin: {
        const auto id = ids_.at(ev.group_index);
        const bool stale = mutation_ == Mutation::kSkipMirrorUpdate;
        if (plane_.has_value()) {
          if (stale) {
            // Behind the plane's back: its mirror (and the fabric) go stale.
            controller_.join(id, ev.member);
            applied_ = true;
          } else {
            plane_->join(id, ev.member);
            plane_->flush();
            apply_fabric_mutation();
          }
        } else {
          if (!stale) fabric_.uninstall_group(controller_, id);
          controller_.join(id, ev.member);
          if (stale) {
            applied_ = true;
          } else {
            fabric_.install_group(controller_, id);
            apply_fabric_mutation();
          }
        }
        oracle_.join(ev.group_index, ev.member);
        diff_membership(at);
        if (failed_) return;
        if (!stale) diff_fabric_state(at);
        break;
      }
      case EventKind::kLeave: {
        const auto id = ids_.at(ev.group_index);
        const bool stale = mutation_ == Mutation::kSkipMirrorUpdate;
        if (!stale && !plane_.has_value()) {
          fabric_.uninstall_group(controller_, id);
        }
        if (mutation_ == Mutation::kLeaveByHostOnly) {
          // The pre-fix churn bug: leave by host alone removes the FIRST
          // member on the host, which under co-location may not be the VM
          // that actually left.
          const auto& members = controller_.group(id).members;
          const auto first = std::find_if(
              members.begin(), members.end(),
              [&](const Member& m) { return m.host == ev.member.host; });
          if (first != members.end() && first->vm != ev.member.vm) {
            applied_ = true;
          }
          controller_.leave(id, ev.member.host);
          // Delta mode: stream whatever the (wrong) controller state now
          // encodes, so the harness fault stays upstream of the plane.
          if (plane_.has_value()) plane_->refresh(id);
        } else if (plane_.has_value() && !stale) {
          plane_->leave(id, ev.member.host, ev.member.vm);
        } else {
          controller_.leave(id, ev.member.host, ev.member.vm);
        }
        if (!oracle_.leave(ev.group_index, ev.member.host, ev.member.vm)) {
          fail(at + ": oracle mirror missing member " + describe(ev.member));
          return;
        }
        if (stale) {
          applied_ = true;
        } else if (plane_.has_value()) {
          plane_->flush();
          apply_fabric_mutation();
        } else {
          fabric_.install_group(controller_, id);
          apply_fabric_mutation();
        }
        diff_membership(at);
        if (failed_) return;
        if (!stale) diff_fabric_state(at);
        break;
      }
      case EventKind::kFailSpine:
        controller_.fail_spine(ev.switch_id);
        oracle_.fail_spine(ev.switch_id);
        fabric_.spine(ev.switch_id).set_down(true);
        resync_headers();
        break;
      case EventKind::kFailCore:
        controller_.fail_core(ev.switch_id);
        oracle_.fail_core(ev.switch_id);
        fabric_.core(ev.switch_id).set_down(true);
        resync_headers();
        break;
      case EventKind::kRestoreSpine:
        controller_.restore_spine(ev.switch_id);
        oracle_.restore_spine(ev.switch_id);
        fabric_.spine(ev.switch_id).set_down(false);
        resync_headers();
        break;
      case EventKind::kRestoreCore:
        controller_.restore_core(ev.switch_id);
        oracle_.restore_core(ev.switch_id);
        fabric_.core(ev.switch_id).set_down(false);
        resync_headers();
        break;
      case EventKind::kSend:
        check_send(index, ev.group_index, ev.sender, at);
        break;
      case EventKind::kHostFail: {
        const auto host = ev.member.host;
        const bool stale = mutation_ == Mutation::kSkipMirrorUpdate;
        // Snapshot the evicted memberships from the oracle mirror first, so
        // the controller/plane mutation and the oracle stay in lockstep.
        std::vector<std::pair<std::size_t, std::vector<Member>>> affected;
        for (std::size_t gi = 0; gi < ids_.size(); ++gi) {
          std::vector<Member> on_host;
          for (const auto& m : oracle_.members(gi)) {
            if (m.host == host) on_host.push_back(m);
          }
          if (!on_host.empty()) affected.emplace_back(gi, std::move(on_host));
        }
        if (plane_.has_value() && !stale) {
          plane_->host_fail(host);
          plane_->flush();
          apply_fabric_mutation();
        } else {
          for (const auto& [gi, members] : affected) {
            const auto id = ids_.at(gi);
            if (!stale) fabric_.uninstall_group(controller_, id);
            for (const auto& m : members) {
              controller_.leave(id, m.host, m.vm);
            }
            if (!stale) fabric_.install_group(controller_, id);
          }
          if (stale) {
            applied_ = !affected.empty() || applied_;
          } else {
            apply_fabric_mutation();
          }
        }
        for (const auto& [gi, members] : affected) {
          for (const auto& m : members) {
            if (!oracle_.leave(gi, m.host, m.vm)) {
              fail(at + ": oracle mirror missing member " + describe(m));
              return;
            }
          }
        }
        diff_membership(at);
        if (failed_) return;
        if (!stale) diff_fabric_state(at);
        break;
      }
    }
  }

  // Failures change only sender headers (upstream re-routing); refresh every
  // hypervisor template but leave switch s-rules alone. Delta mode streams
  // the same resync through the plane: refresh_all re-diffs every tracked
  // group and only the rules the failure actually changed hit the wire.
  void resync_headers() {
    if (plane_.has_value()) {
      plane_->refresh_all();
      plane_->flush();
    } else {
      for (std::size_t gi = 0; gi < ids_.size(); ++gi) {
        fabric_.install_group(controller_, ids_[gi]);
      }
    }
    apply_fabric_mutation();
    diff_fabric_state("after failure resync");
  }

  // Continuous churn oracle (delta mode only): after every membership or
  // failure event, the live fabric's installed state must digest-equal a
  // fresh batch install of the controller's current encodings. Catches
  // stale rules, missed deltas, and leaked state the send-level differ
  // would only notice if a later send happened to traverse them.
  void diff_fabric_state(const std::string& at) {
    if (!options_.delta_installs || failed_) return;
    sim::Fabric reference{topo_};
    if (!legacy_.empty()) {
      for (topo::LeafId l = 0; l < topo_.num_leaves(); ++l) {
        if (legacy_[l]) reference.leaf(l).set_legacy(true);
      }
    }
    for (const auto id : ids_) reference.install_group(controller_, id);
    if (stream::fabric_state_digest(fabric_) !=
        stream::fabric_state_digest(reference)) {
      fail(at + ": delta-installed fabric state diverges from a fresh batch "
                "install of the controller's current encodings");
    }
  }

  void diff_membership(const std::string& at) {
    for (std::size_t gi = 0; gi < ids_.size(); ++gi) {
      auto ctrl = controller_.group(ids_[gi]).members;
      auto mirror = oracle_.members(gi);
      const auto by_host_vm = [](const Member& a, const Member& b) {
        return a.host != b.host ? a.host < b.host : a.vm < b.vm;
      };
      std::sort(ctrl.begin(), ctrl.end(), by_host_vm);
      std::sort(mirror.begin(), mirror.end(), by_host_vm);
      if (ctrl.size() != mirror.size()) {
        fail(at + ": group " + str(gi) + " membership desync: controller has " +
             str(ctrl.size()) + " members, oracle mirror has " +
             str(mirror.size()));
        return;
      }
      for (std::size_t i = 0; i < ctrl.size(); ++i) {
        if (ctrl[i].host != mirror[i].host || ctrl[i].vm != mirror[i].vm ||
            ctrl[i].role != mirror[i].role) {
          fail(at + ": group " + str(gi) +
               " membership desync: controller holds " + describe(ctrl[i]) +
               " where oracle mirror holds " + describe(mirror[i]));
          return;
        }
      }
    }
  }

  void check_send(std::size_t event_index, std::size_t gi,
                  topo::HostId sender, const std::string& at) {
    const auto id = ids_.at(gi);
    const auto& g = controller_.group(id);
    const auto ex = oracle_.expect(gi, g.encoding, sender);
    const std::string ctx =
        at + ": send group " + str(gi) + " from host " + str(sender);

    prov_log_.clear();
    sim::SendResult res;
    if (options_.walk_threads == 0) {
      res = fabric_.send(sender, g.address, std::size_t{64});
    } else {
      // Batched-walk mode: the same send through send_batch, so every oracle
      // diff doubles as a serial/batched equivalence check (DESIGN.md §12).
      const sim::SendRequest request{sender, g.address, std::size_t{64}};
      auto batch = fabric_.send_batch(
          std::span{&request, 1}, sim::BatchOptions{options_.walk_threads});
      res = std::move(batch.front());
    }
    ++report_.sends_checked;

    // The analytic evaluator's view of the same send (same flow hash and
    // failure set), computed up front so the provenance capture can carry it.
    const TrafficEvaluator evaluator{topo_};
    const auto hash = dp::flow_hash(dp::host_address(sender), g.address);
    const auto rep = evaluator.evaluate(
        *g.tree, g.encoding, sender, 64, hash, &controller_.failures(),
        legacy_.empty() ? nullptr : &legacy_);

    // Join the walk's decision tree against the oracle: any failure below
    // attaches this explanation to the report (see fail()).
    SendExplanation expl;
    const bool have_trace = !prov_log_.empty();
    if (have_trace) {
      expl = explain_send(prov_log_.last(), ex);
      pending_explanation_ = expl.render();
      if (captures_ != nullptr) {
        SendCapture capture;
        capture.event_index = event_index;
        capture.group_index = gi;
        capture.sender = sender;
        capture.explanation = expl;
        capture.evaluator_reached = rep.delivery.members_reached;
        capture.evaluator_duplicates = rep.delivery.duplicate_deliveries;
        capture.evaluator_spurious = rep.delivery.spurious_deliveries;
        captures_->push_back(std::move(capture));
      }
    }

    // 1. Ideal receiver set: every expected host got a copy; exactly one,
    //    and none back to the sender, unless failures legitimize duplicates.
    for (const auto& [host, vms] : ex.expected_hosts) {
      const auto it = res.host_copies.find(host);
      const std::size_t copies = it == res.host_copies.end() ? 0 : it->second;
      if (copies == 0) {
        fail(ctx + ": member host " + str(host) + " (" + str(vms) +
             " receiving VMs) got no copy");
        return;
      }
      if (!ex.duplicates_allowed && copies != 1) {
        fail(ctx + ": member host " + str(host) + " got " + str(copies) +
             " copies with no failures active");
        return;
      }
    }
    if (!ex.duplicates_allowed) {
      for (const auto& [host, copies] : res.host_copies) {
        if (copies > 1) {
          fail(ctx + ": host " + str(host) + " got " + str(copies) +
               " copies with no failures active");
          return;
        }
      }
      if (res.host_copies.contains(sender)) {
        fail(ctx + ": sender host received its own packet");
        return;
      }
    }

    // 2. Per-VM fan-out: each copy must reach exactly the receiving VMs the
    //    controller mirror places on that host.
    std::size_t want_vms = 0;
    for (const auto& [host, copies] : res.host_copies) {
      want_vms += copies * oracle_.receiving_vms_on(gi, host);
    }
    expected_vm_total_ += static_cast<double>(want_vms);
    if (res.vm_deliveries != want_vms) {
      fail(ctx + ": " + str(res.vm_deliveries) + " VM deliveries, expected " +
           str(want_vms) + " (copies x mirrored receiving VMs)");
      return;
    }

    // 3. Clos diameter: leaf-spine-core-spine-leaf.
    if (res.max_hops > 5) {
      fail(ctx + ": packet took " + str(res.max_hops) + " switch hops");
      return;
    }

    // 4. Packet-level fabric vs analytic evaluator: total host copies and
    //    distinct members reached must agree bit-for-bit with the
    //    controller's current encoding.
    std::size_t fabric_copies = 0;
    for (const auto& [host, copies] : res.host_copies) fabric_copies += copies;
    const std::size_t evaluator_copies = rep.delivery.members_reached +
                                         rep.delivery.duplicate_deliveries +
                                         rep.delivery.spurious_deliveries;
    if (fabric_copies != evaluator_copies) {
      fail(ctx + ": fabric delivered " + str(fabric_copies) +
           " host copies, analytic evaluator predicts " +
           str(evaluator_copies));
      return;
    }
    if (rep.delivery.members_reached != ex.expected_hosts.size()) {
      fail(ctx + ": evaluator reached " + str(rep.delivery.members_reached) +
           " member hosts, oracle expects " + str(ex.expected_hosts.size()));
      return;
    }

    // 5. Provenance attribution vs analytic evaluator: the per-cause
    //    decomposition of the decision tree must sum to the same intended /
    //    excess split the evaluator predicts.
    if (have_trace) {
      if (expl.breakdown.intended != rep.delivery.members_reached) {
        fail(ctx + ": provenance attributes " + str(expl.breakdown.intended) +
             " intended copies, evaluator reached " +
             str(rep.delivery.members_reached) + " member hosts");
        return;
      }
      const std::size_t evaluator_excess = rep.delivery.duplicate_deliveries +
                                           rep.delivery.spurious_deliveries;
      if (expl.breakdown.total_redundant() != evaluator_excess) {
        fail(ctx + ": provenance attributes " +
             str(expl.breakdown.total_redundant()) +
             " redundant copies, evaluator predicts " + str(evaluator_excess) +
             " (duplicate + spurious)");
        return;
      }
    }

    pending_explanation_.clear();
  }

  // --- mutation machinery --------------------------------------------------

  dp::HypervisorSwitch::GroupFlow build_flow(
      const GroupState& g, topo::HostId host,
      std::vector<std::uint8_t> header) const {
    dp::HypervisorSwitch::GroupFlow flow;
    flow.vni = g.tenant;
    flow.elmo_header = std::move(header);
    for (const auto& m : g.members) {
      if (m.host == host && can_receive(m.role)) flow.local_vms.push_back(m.vm);
    }
    return flow;
  }

  std::vector<topo::HostId> sending_hosts(const GroupState& g) const {
    std::vector<topo::HostId> hosts;
    for (const auto& m : g.members) {
      if (!can_send(m.role)) continue;
      if (std::find(hosts.begin(), hosts.end(), m.host) == hosts.end()) {
        hosts.push_back(m.host);
      }
    }
    return hosts;
  }

  // Picks the concrete fault site once, from the initial encodings. Bounds
  // are re-checked on every application because churn re-encodes groups.
  void select_mutation_target() {
    for (std::size_t gi = 0; gi < ids_.size() && !target_found_; ++gi) {
      const auto& g = controller_.group(ids_[gi]);
      switch (mutation_) {
        case Mutation::kClearPRuleBit: {
          // A set bit that is a real member host port of the matched leaf:
          // clearing it must lose a delivery (a redundancy-only bit would
          // not).
          const auto& rules = g.encoding.leaf.p_rules;
          for (std::size_t ri = 0; ri < rules.size() && !target_found_; ++ri) {
            for (const auto leaf_id : rules[ri].switch_ids) {
              const auto* entry = g.tree->find_leaf(leaf_id);
              if (entry == nullptr) continue;
              for (std::size_t p = 0; p < topo_.leaf_down_ports(); ++p) {
                if (rules[ri].bitmap.test(p) && entry->host_ports.test(p)) {
                  target_found_ = true;
                  target_gi_ = gi;
                  target_rule_ = ri;
                  target_port_ = p;
                  break;
                }
              }
              if (target_found_) break;
            }
          }
          break;
        }
        case Mutation::kSetPRuleBit: {
          const auto& rules = g.encoding.leaf.p_rules;
          for (std::size_t ri = 0; ri < rules.size() && !target_found_; ++ri) {
            for (std::size_t p = 0; p < topo_.leaf_down_ports(); ++p) {
              if (!rules[ri].bitmap.test(p)) {
                target_found_ = true;
                target_gi_ = gi;
                target_rule_ = ri;
                target_port_ = p;
                break;
              }
            }
          }
          break;
        }
        case Mutation::kDropSRule: {
          for (const auto& [leaf_id, bitmap] : g.encoding.leaf.s_rules) {
            if (bitmap.any()) {
              target_found_ = true;
              target_gi_ = gi;
              target_switch_ = leaf_id;
              break;
            }
          }
          break;
        }
        case Mutation::kDropLocalVm: {
          for (const auto& m : g.members) {
            if (can_receive(m.role)) {
              target_found_ = true;
              target_gi_ = gi;
              target_host_ = m.host;
              target_vm_ = m.vm;
              break;
            }
          }
          break;
        }
        case Mutation::kWrongSenderHeader: {
          const auto senders = sending_hosts(g);
          for (const auto s : senders) {
            for (const auto& m : g.members) {
              if (topo_.leaf_of_host(m.host) != topo_.leaf_of_host(s)) {
                target_found_ = true;
                target_gi_ = gi;
                target_host_ = s;        // victim sender
                target_other_ = m.host;  // header borrowed from here
                break;
              }
            }
            if (target_found_) break;
          }
          break;
        }
        default:
          return;  // event-driven mutations have no fabric-side target
      }
    }
  }

  // (Re-)seeds the fabric-side fault. Called after every fabric sync so
  // reinstalls cannot silently heal the mutation.
  void apply_fabric_mutation() {
    if (!target_found_) return;
    const auto id = ids_.at(target_gi_);
    const auto& g = controller_.group(id);
    switch (mutation_) {
      case Mutation::kClearPRuleBit:
      case Mutation::kSetPRuleBit: {
        if (target_rule_ >= g.encoding.leaf.p_rules.size()) return;
        GroupEncoding mutated = g.encoding;
        auto& bitmap = mutated.leaf.p_rules[target_rule_].bitmap;
        if (target_port_ >= bitmap.size()) return;
        bitmap.set(target_port_, mutation_ == Mutation::kSetPRuleBit);
        for (const auto host : sending_hosts(g)) {
          const auto route =
              g.tree->sender_route(host, controller_.failures());
          auto header =
              controller_.encoder().codec().serialize(route.encoding, mutated);
          fabric_.hypervisor(host).install_flow(
              g.address, build_flow(g, host, std::move(header)));
        }
        applied_ = true;
        break;
      }
      case Mutation::kDropSRule:
        fabric_.leaf(target_switch_).remove_srule(g.address);
        applied_ = true;
        break;
      case Mutation::kDropLocalVm: {
        const auto senders = sending_hosts(g);
        const bool sends = std::find(senders.begin(), senders.end(),
                                     target_host_) != senders.end();
        auto flow = build_flow(
            g, target_host_,
            sends ? controller_.header_for(id, target_host_)
                  : std::vector<std::uint8_t>{});
        const auto it =
            std::find(flow.local_vms.begin(), flow.local_vms.end(), target_vm_);
        if (it == flow.local_vms.end()) return;  // churned away; keep prior
        flow.local_vms.erase(it);
        fabric_.hypervisor(target_host_).install_flow(g.address,
                                                      std::move(flow));
        applied_ = true;
        break;
      }
      case Mutation::kWrongSenderHeader: {
        auto flow = build_flow(g, target_host_,
                               controller_.header_for(id, target_other_));
        fabric_.hypervisor(target_host_).install_flow(g.address,
                                                      std::move(flow));
        applied_ = true;
        break;
      }
      default:
        break;
    }
  }

  const Scenario& sc_;
  Mutation mutation_;
  RunOptions options_;
  topo::ClosTopology topo_;
  Controller controller_;
  sim::Fabric fabric_;
  // Engaged only in delta mode (RunOptions::delta_installs); emplaced in
  // setup() once the initial bulk install is in the fabric.
  std::optional<stream::ControlPlane> plane_;
  obs::MetricsRegistry* registry_ = nullptr;
  std::vector<SendCapture>* captures_ = nullptr;
  obs::TimeSeriesStore* ts_ = nullptr;
  obs::HealthMonitor* health_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  double expected_vm_total_ = 0;  // oracle-side VM-delivery running total
  obs::ProvenanceLog prov_log_;
  std::string pending_explanation_;
  std::vector<bool> legacy_;
  DeliveryOracle oracle_;
  std::vector<GroupId> ids_;
  RunReport report_;
  bool failed_ = false;
  bool applied_ = false;

  bool target_found_ = false;
  std::size_t target_gi_ = 0;
  std::size_t target_rule_ = 0;
  std::size_t target_port_ = 0;
  std::uint32_t target_switch_ = 0;
  topo::HostId target_host_ = 0;
  topo::HostId target_other_ = 0;
  std::uint32_t target_vm_ = 0;
};

}  // namespace

RunReport run_scenario(const Scenario& scenario, Mutation mutation,
                       const RunObservability* observability,
                       const RunOptions& options) {
  Runner runner{scenario, mutation, observability, options};
  return runner.run();
}

}  // namespace elmo::verify
