#include "verify/shrink.h"

#include <limits>
#include <sstream>
#include <vector>

namespace elmo::verify {

namespace {

// Smallest-first rungs the topology shrink pass tries to re-map onto.
const std::vector<topo::ClosParams>& shrink_ladder() {
  static const std::vector<topo::ClosParams> ladder = {
      topo::ClosParams{.pods = 1,
                       .leaves_per_pod = 2,
                       .spines_per_pod = 1,
                       .cores_per_plane = 1,
                       .hosts_per_leaf = 2},
      topo::ClosParams{.pods = 2,
                       .leaves_per_pod = 1,
                       .spines_per_pod = 1,
                       .cores_per_plane = 1,
                       .hosts_per_leaf = 2},
      topo::ClosParams{.pods = 2,
                       .leaves_per_pod = 2,
                       .spines_per_pod = 1,
                       .cores_per_plane = 1,
                       .hosts_per_leaf = 2},
      topo::ClosParams{.pods = 2,
                       .leaves_per_pod = 2,
                       .spines_per_pod = 2,
                       .cores_per_plane = 1,
                       .hosts_per_leaf = 2},
      topo::ClosParams::running_example(),
  };
  return ladder;
}

std::size_t hosts_of(const topo::ClosParams& p) {
  return p.pods * p.leaves_per_pod * p.hosts_per_leaf;
}

class Shrinker {
 public:
  Shrinker(Mutation mutation, std::size_t budget, const RunOptions& options)
      : mutation_{mutation}, budget_{budget}, options_{options} {}

  Scenario minimize(Scenario best) {
    normalize(best);
    if (!fails(best)) return best;
    bool progress = true;
    while (progress && budget_ > 0) {
      progress = false;
      progress |= drop_groups(best);
      progress |= drop_events(best);
      progress |= drop_members(best);
      progress |= shrink_topology(best);
    }
    return best;
  }

 private:
  bool fails(const Scenario& candidate) {
    if (budget_ == 0) return false;
    --budget_;
    Scenario copy = candidate;
    normalize(copy);
    return !run_scenario(copy, mutation_, nullptr, options_).ok;
  }

  bool accept(Scenario& best, Scenario candidate) {
    normalize(candidate);
    if (!fails(candidate)) return false;
    best = std::move(candidate);
    return true;
  }

  bool drop_groups(Scenario& best) {
    bool progress = false;
    for (std::size_t gi = best.groups.size(); gi-- > 0;) {
      if (best.groups.size() <= 1) break;
      Scenario candidate = best;
      candidate.groups.erase(candidate.groups.begin() + gi);
      std::vector<Event> events;
      for (auto ev : candidate.events) {
        const bool grouped = ev.kind == EventKind::kJoin ||
                             ev.kind == EventKind::kLeave ||
                             ev.kind == EventKind::kSend;
        if (grouped) {
          if (ev.group_index == gi) continue;
          if (ev.group_index > gi) --ev.group_index;
        }
        events.push_back(ev);
      }
      candidate.events = std::move(events);
      progress |= accept(best, std::move(candidate));
    }
    return progress;
  }

  bool drop_events(Scenario& best) {
    bool progress = false;
    for (std::size_t ei = best.events.size(); ei-- > 0;) {
      Scenario candidate = best;
      candidate.events.erase(candidate.events.begin() + ei);
      progress |= accept(best, std::move(candidate));
    }
    return progress;
  }

  bool drop_members(Scenario& best) {
    bool progress = false;
    for (std::size_t gi = 0; gi < best.groups.size(); ++gi) {
      for (std::size_t mi = best.groups[gi].members.size(); mi-- > 0;) {
        if (best.groups[gi].members.size() <= 1) break;
        Scenario candidate = best;
        candidate.groups[gi].members.erase(
            candidate.groups[gi].members.begin() + mi);
        progress |= accept(best, std::move(candidate));
      }
    }
    return progress;
  }

  bool shrink_topology(Scenario& best) {
    bool progress = false;
    for (const auto& params : shrink_ladder()) {
      if (hosts_of(params) >= hosts_of(best.params)) continue;
      Scenario candidate = best;
      candidate.params = params;  // normalize() re-maps hosts & switch ids
      if (accept(best, std::move(candidate))) {
        progress = true;
        break;  // restart deletion passes on the smaller fabric
      }
    }
    return progress;
  }

  Mutation mutation_;
  std::size_t budget_;
  RunOptions options_;
};

const char* role_token(MemberRole role) {
  switch (role) {
    case MemberRole::kSender:
      return "elmo::MemberRole::kSender";
    case MemberRole::kReceiver:
      return "elmo::MemberRole::kReceiver";
    case MemberRole::kBoth:
      return "elmo::MemberRole::kBoth";
  }
  return "elmo::MemberRole::kBoth";
}

const char* kind_token(EventKind kind) {
  switch (kind) {
    case EventKind::kJoin:
      return "elmo::verify::EventKind::kJoin";
    case EventKind::kLeave:
      return "elmo::verify::EventKind::kLeave";
    case EventKind::kFailSpine:
      return "elmo::verify::EventKind::kFailSpine";
    case EventKind::kFailCore:
      return "elmo::verify::EventKind::kFailCore";
    case EventKind::kRestoreSpine:
      return "elmo::verify::EventKind::kRestoreSpine";
    case EventKind::kRestoreCore:
      return "elmo::verify::EventKind::kRestoreCore";
    case EventKind::kSend:
      return "elmo::verify::EventKind::kSend";
    case EventKind::kHostFail:
      return "elmo::verify::EventKind::kHostFail";
  }
  return "elmo::verify::EventKind::kSend";
}

void emit_member(std::ostringstream& out, const Member& m) {
  out << "{" << m.host << ", " << m.vm << ", " << role_token(m.role) << "}";
}

}  // namespace

Scenario shrink(const Scenario& failing, Mutation mutation,
                std::size_t budget, const RunOptions& options) {
  return Shrinker{mutation, budget, options}.minimize(failing);
}

std::string to_fixture(const Scenario& scenario) {
  std::ostringstream out;
  out << "// Auto-generated by tools/fuzz_pipeline from seed " << scenario.seed
      << ".\n";
  out << "TEST(FuzzRepro, Seed" << scenario.seed << ") {\n";
  out << "  elmo::verify::Scenario sc;\n";
  out << "  sc.seed = " << scenario.seed << "ULL;\n";
  const auto& p = scenario.params;
  out << "  sc.params = {.pods = " << p.pods
      << ", .leaves_per_pod = " << p.leaves_per_pod
      << ", .spines_per_pod = " << p.spines_per_pod
      << ", .cores_per_plane = " << p.cores_per_plane
      << ", .hosts_per_leaf = " << p.hosts_per_leaf << "};\n";
  const auto& c = scenario.config;
  out << "  sc.config.header_budget_bytes = " << c.header_budget_bytes << ";\n";
  out << "  sc.config.hmax_spine = " << c.hmax_spine << ";\n";
  out << "  sc.config.hmax_leaf_override = " << c.hmax_leaf_override << ";\n";
  out << "  sc.config.kmax = " << c.kmax << ";\n";
  out << "  sc.config.kmax_spine = " << c.kmax_spine << ";\n";
  out << "  sc.config.redundancy_limit = " << c.redundancy_limit << ";\n";
  if (c.srule_capacity != std::numeric_limits<std::size_t>::max()) {
    out << "  sc.config.srule_capacity = " << c.srule_capacity << ";\n";
  }
  if (c.encoder != EncoderKind::kElmo) {
    out << "  sc.config.encoder = elmo::EncoderKind::k"
        << (c.encoder == EncoderKind::kBert ? "Bert" : "P3fa") << ";\n";
    if (c.encoder == EncoderKind::kP3fa) {
      out << "  sc.config.p3fa_egress_classes = " << c.p3fa_egress_classes
          << ";\n";
    }
  }
  if (!scenario.legacy_leaves.empty()) {
    out << "  sc.legacy_leaves = {";
    for (std::size_t i = 0; i < scenario.legacy_leaves.size(); ++i) {
      out << (i ? ", " : "") << (scenario.legacy_leaves[i] ? "true" : "false");
    }
    out << "};\n";
  }
  out << "  sc.groups = {\n";
  for (const auto& g : scenario.groups) {
    out << "      {" << g.tenant << ", {";
    for (std::size_t i = 0; i < g.members.size(); ++i) {
      if (i) out << ", ";
      emit_member(out, g.members[i]);
    }
    out << "}},\n";
  }
  out << "  };\n";
  out << "  sc.events = {\n";
  for (const auto& ev : scenario.events) {
    out << "      {" << kind_token(ev.kind) << ", " << ev.group_index << ", ";
    emit_member(out, ev.member);
    out << ", " << ev.switch_id << ", " << ev.sender << "},\n";
  }
  out << "  };\n";
  out << "  const auto report = elmo::verify::run_scenario(sc);\n";
  out << "  EXPECT_TRUE(report.ok) << report.failure;\n";
  out << "}\n";
  return out.str();
}

}  // namespace elmo::verify
