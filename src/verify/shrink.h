// Automatic minimization of failing scenarios.
//
// shrink() greedily deletes whatever it can while the scenario keeps
// failing: whole groups (with their events), individual events, individual
// members, and finally the topology itself (re-mapping hosts onto the
// smaller fabric). The result is the minimal repro the greedy passes reach —
// typically one group, a couple of members, and one or two events.
//
// to_fixture() renders a scenario as a ready-to-paste GoogleTest case against
// the verify API, so a CI fuzz failure turns into a permanent regression
// test by copy-paste.
#pragma once

#include <string>

#include "verify/differ.h"
#include "verify/scenario.h"

namespace elmo::verify {

// Returns the smallest still-failing scenario found within `budget`
// candidate runs. If `failing` does not actually fail under `mutation` and
// `options`, it is returned unchanged. Pass the RunOptions of the failing
// run (e.g. delta_installs) so candidates reproduce the same pipeline.
Scenario shrink(const Scenario& failing, Mutation mutation = Mutation::kNone,
                std::size_t budget = 600,
                const RunOptions& options = RunOptions{});

// Self-contained C++ test fixture reproducing `scenario`.
std::string to_fixture(const Scenario& scenario);

}  // namespace elmo::verify
