#include "cloud/cloud.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "obs/metrics.h"
#include "obs/span.h"

namespace elmo::cloud {
namespace {

// Tenants per speculative placement round. A fixed constant — never derived
// from the thread count — so the round-start snapshots, and therefore the
// placement, are identical no matter how many workers execute a round.
constexpr std::size_t kPlacementRound = 64;

struct CloudMetricIds {
  obs::MetricsRegistry::Id placement_seconds;
  obs::MetricsRegistry::Id tenants_placed;
  CloudMetricIds() {
    auto& reg = obs::MetricsRegistry::global();
    placement_seconds = reg.histogram(
        "elmo_cloud_placement_seconds", obs::latency_bounds(),
        "Full tenant VM placement (speculative rounds + commits)");
    tenants_placed =
        reg.counter("elmo_cloud_tenants_placed_total", "Tenants placed");
  }
};

CloudMetricIds& cloud_metric_ids() {
  static CloudMetricIds ids;
  return ids;
}

}  // namespace

Cloud::Cloud(const topo::ClosTopology& topology, const CloudParams& params,
             util::Rng& rng, util::ThreadPool* pool)
    : topology_{&topology}, params_{params} {
  host_load_.assign(topology.num_hosts(), 0);
  leaf_free_slots_.assign(
      topology.num_leaves(),
      static_cast<std::uint32_t>(topology.params().hosts_per_leaf *
                                 params.max_vms_per_host));

  std::optional<obs::Span> span;
  obs::arm_phase_span(span, "cloud:placement",
                      cloud_metric_ids().placement_seconds);
  ELMO_METRIC(reg.add(cloud_metric_ids().tenants_placed, params.tenants));

  const std::uint64_t seed = rng();
  auto parallel_for = [&](std::size_t begin, std::size_t end, auto&& body) {
    if (pool != nullptr) {
      pool->parallel_for(begin, end, body);
    } else {
      for (std::size_t i = begin; i < end; ++i) body(i);
    }
  };

  // Tenant sizes first (stream per tenant), so placement knows every count.
  std::vector<std::size_t> sizes(params.tenants, 0);
  parallel_for(0, params.tenants, [&](std::size_t t) {
    auto trng = util::Rng::stream(seed, t);
    sizes[t] = sample_tenant_size(trng);
  });

  tenants_.resize(params.tenants);
  for (std::size_t t = 0; t < params.tenants; ++t) {
    tenants_[t].id = static_cast<TenantId>(t);
  }

  // Speculative round placement (see header comment / DESIGN.md §5). The
  // placement stream is salted so it is independent of the size stream.
  constexpr std::uint64_t kPlaceSalt = 0x706c6163656d656eULL;  // "placemen"
  for (std::size_t round = 0; round < params.tenants;
       round += kPlacementRound) {
    const std::size_t round_end =
        std::min(params.tenants, round + kPlacementRound);
    const auto snapshot_hosts = host_load_;
    const auto snapshot_leaves = leaf_free_slots_;

    parallel_for(round, round_end, [&](std::size_t t) {
      auto prng = util::Rng::stream(seed ^ kPlaceSalt, t);
      auto hosts = snapshot_hosts;   // per-tenant mutable view
      auto leaves = snapshot_leaves;
      place_tenant(tenants_[t], sizes[t], prng, hosts, leaves);
    });

    // In-order commit: a tenant's speculative placement is valid iff every
    // chosen host still has a free slot after all earlier commits (the
    // per-tenant constraints — distinct hosts, the co-location cap P — only
    // involve its own choices and hold by construction).
    for (std::size_t t = round; t < round_end; ++t) {
      auto& tenant = tenants_[t];
      const bool fits = std::all_of(
          tenant.vm_hosts.begin(), tenant.vm_hosts.end(),
          [&](topo::HostId h) {
            return host_load_[h] < params_.max_vms_per_host;
          });
      if (fits) {
        for (const auto h : tenant.vm_hosts) {
          ++host_load_[h];
          --leaf_free_slots_[topology.leaf_of_host(h)];
        }
      } else {
        tenant.vm_hosts.clear();
        auto prng = util::Rng::stream(seed ^ kPlaceSalt, t);
        place_tenant(tenant, sizes[t], prng, host_load_, leaf_free_slots_);
      }
      total_vms_ += tenant.size();
    }
  }
}

std::size_t Cloud::sample_tenant_size(util::Rng& rng) const {
  // Shifted exponential: min + Exp(mean - min), truncated at max. Matches the
  // paper's min/mean/max exactly; the median lands near 127 (the paper
  // reports 97 for their draw, which a pure exponential cannot produce
  // jointly with mean 178.77 — we prioritize the mean, which determines
  // total VM load on the fabric).
  const auto lo = static_cast<double>(params_.min_vms_per_tenant);
  const auto hi = static_cast<double>(params_.max_vms_per_tenant);
  const double mean_excess = params_.mean_vms_per_tenant - lo;
  double size = lo + (mean_excess > 0 ? rng.exponential(mean_excess) : 0.0);
  size = std::min(size, hi);
  return static_cast<std::size_t>(std::llround(size));
}

void Cloud::place_tenant(Tenant& tenant, std::size_t vm_count,
                         util::Rng& rng,
                         std::vector<std::uint16_t>& host_load,
                         std::vector<std::uint32_t>& leaf_free_slots) const {
  const auto& topo = *topology_;
  std::unordered_set<topo::HostId> used_hosts;
  used_hosts.reserve(vm_count * 2);
  tenant.vm_hosts.reserve(vm_count);
  std::unordered_map<topo::LeafId, std::uint32_t> tenant_on_leaf;

  // The co-location cap P ("at most P VMs of a tenant per rack") is honored
  // strictly while any rack in the fabric can still take a VM under it;
  // only tenants too large for a strict placement (e.g. 5,000 VMs at P=1 on
  // 576 racks) relax it, as the paper's procedure implies.
  bool strict = true;

  // Hosts under `leaf` that can still take one VM of this tenant.
  auto usable_hosts_under = [&](topo::LeafId leaf) {
    std::vector<topo::HostId> hosts;
    if (strict) {
      const auto it = tenant_on_leaf.find(leaf);
      if (it != tenant_on_leaf.end() && it->second >= params_.colocation) {
        return hosts;
      }
    }
    for (std::size_t port = 0; port < topo.leaf_down_ports(); ++port) {
      const auto host = topo.host_at(leaf, port);
      if (host_load[host] < params_.max_vms_per_host &&
          !used_hosts.contains(host)) {
        hosts.push_back(host);
      }
    }
    return hosts;
  };

  auto place_on = [&](topo::HostId host) {
    ++host_load[host];
    --leaf_free_slots[topo.leaf_of_host(host)];
    ++tenant_on_leaf[topo.leaf_of_host(host)];
    used_hosts.insert(host);
    tenant.vm_hosts.push_back(host);
  };

  std::size_t remaining = vm_count;
  // The paper's procedure: pick a pod uniformly at random and keep packing
  // leaves inside it (up to P VMs of this tenant per leaf visit) until the
  // pod has no usable capacity left, then pick another pod. Tenants
  // therefore stay as pod-local as capacity allows -- the property the
  // spine-layer encoding relies on.
  std::vector<std::uint8_t> pod_exhausted(topo.num_pods(), 0);
  while (remaining > 0) {
    // Pick a pod: random probes first, then a deterministic sweep.
    topo::PodId pod = static_cast<topo::PodId>(topo.num_pods());
    for (std::size_t probe = 0; probe < 2 * topo.num_pods(); ++probe) {
      const auto candidate =
          static_cast<topo::PodId>(rng.index(topo.num_pods()));
      if (!pod_exhausted[candidate]) {
        pod = candidate;
        break;
      }
    }
    if (pod == topo.num_pods()) {
      for (topo::PodId candidate = 0; candidate < topo.num_pods();
           ++candidate) {
        if (!pod_exhausted[candidate]) {
          pod = candidate;
          break;
        }
      }
    }
    if (pod == topo.num_pods()) {
      if (strict) {
        // Every pod is exhausted under the strict per-rack cap: relax it and
        // keep going (large tenants inevitably exceed P per rack).
        strict = false;
        std::fill(pod_exhausted.begin(), pod_exhausted.end(), 0);
        continue;
      }
      throw std::runtime_error{
          "Cloud: out of placement capacity (tenant " +
          std::to_string(tenant.id) + ", " + std::to_string(remaining) +
          " VMs unplaced)"};
    }

    // Fill leaves within this pod until it has nothing usable left.
    bool pod_usable = true;
    while (remaining > 0 && pod_usable) {
      std::vector<topo::HostId> candidates;
      const std::size_t leaf_probes = 3 * topo.params().leaves_per_pod;
      for (std::size_t probe = 0; probe < leaf_probes; ++probe) {
        const auto leaf =
            topo.leaf_at(pod, rng.index(topo.params().leaves_per_pod));
        if (leaf_free_slots[leaf] == 0) continue;
        candidates = usable_hosts_under(leaf);
        if (!candidates.empty()) break;
      }
      if (candidates.empty()) {
        for (std::size_t li = 0;
             li < topo.params().leaves_per_pod && candidates.empty(); ++li) {
          const auto leaf = topo.leaf_at(pod, li);
          if (leaf_free_slots[leaf] == 0) continue;
          candidates = usable_hosts_under(leaf);
        }
      }
      if (candidates.empty()) {
        pod_usable = false;
        pod_exhausted[pod] = 1;
        break;
      }
      rng.shuffle(std::span<topo::HostId>{candidates});
      std::size_t quota = params_.colocation;
      if (strict) {
        const auto leaf = topo.leaf_of_host(candidates.front());
        const auto it = tenant_on_leaf.find(leaf);
        const auto already = it == tenant_on_leaf.end() ? 0u : it->second;
        quota = params_.colocation - std::min<std::uint32_t>(
                                         already, params_.colocation);
      }
      const std::size_t take =
          std::min({candidates.size(), quota, remaining});
      for (std::size_t i = 0; i < take; ++i) place_on(candidates[i]);
      remaining -= take;
    }
    // Exhaustion is per-tenant (distinct-host rule), so recompute lazily.
    if (remaining > 0 && !pod_usable) continue;
  }
}

std::size_t sample_wve_group_size(util::Rng& rng) {
  // Three-segment mixture fitted to the WVE summary statistics the paper
  // reports (avg 60; ~80% of groups <= 61 members; ~0.6% > 700):
  //   0.800  uniform [5, 61]                 (mean 33)
  //   0.194  61 + Exp(78), resampled > 700   (mean ~139)
  //   0.006  uniform [701, 1500]             (mean ~1100)
  // Mixture mean = 0.8*33 + 0.194*139 + 0.006*1100 ~= 60.
  const double r = rng.uniform();
  if (r < 0.800) {
    return static_cast<std::size_t>(rng.uniform_int(5, 61));
  }
  if (r < 0.994) {
    double size;
    do {
      size = 61.0 + rng.exponential(78.0);
    } while (size > 700.0);
    return static_cast<std::size_t>(std::llround(size));
  }
  return static_cast<std::size_t>(rng.uniform_int(701, 1500));
}

GroupWorkload::GroupWorkload(const Cloud& cloud, const WorkloadParams& params,
                             util::Rng& rng, util::ThreadPool* pool)
    : params_{params} {
  const auto tenants = cloud.tenants();
  // Tenants too small to host a minimum-size group get no groups.
  std::size_t eligible_vms = 0;
  for (const auto& tenant : tenants) {
    if (tenant.size() >= params.min_group_size) eligible_vms += tenant.size();
  }
  if (eligible_vms == 0) {
    throw std::runtime_error{"GroupWorkload: no tenant can host a group"};
  }

  // Groups per tenant proportional to tenant size (largest-remainder
  // rounding so counts sum exactly to total_groups).
  std::vector<std::size_t> quota(tenants.size(), 0);
  std::vector<std::pair<double, std::size_t>> remainders;
  std::size_t assigned = 0;
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    if (tenants[t].size() < params.min_group_size) continue;
    const double share = static_cast<double>(params.total_groups) *
                         static_cast<double>(tenants[t].size()) /
                         static_cast<double>(eligible_vms);
    quota[t] = static_cast<std::size_t>(share);
    assigned += quota[t];
    remainders.emplace_back(share - std::floor(share), t);
  }
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (std::size_t i = 0; assigned < params.total_groups && !remainders.empty();
       ++i) {
    ++quota[remainders[i % remainders.size()].second];
    ++assigned;
  }

  // Owner tenant of each group index (quotas are contiguous runs).
  std::vector<TenantId> owner(params.total_groups);
  std::size_t next = 0;
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    std::fill_n(owner.begin() + static_cast<std::ptrdiff_t>(next), quota[t],
                static_cast<TenantId>(t));
    next += quota[t];
  }

  // Each group samples from its own stream — embarrassingly parallel, and
  // bit-identical at any thread count (see the header comment).
  const std::uint64_t seed = rng();
  groups_.resize(params.total_groups);
  auto sample_group = [&](std::size_t g) {
    auto grng = util::Rng::stream(seed, g);
    const auto& tenant = tenants[owner[g]];
    std::size_t size = 0;
    switch (params.size_dist) {
      case GroupSizeDist::kWve:
        size = sample_wve_group_size(grng);
        break;
      case GroupSizeDist::kUniform:
        size = static_cast<std::size_t>(grng.uniform_int(
            static_cast<std::int64_t>(params.min_group_size),
            static_cast<std::int64_t>(tenant.size())));
        break;
    }
    size = std::clamp(size, params.min_group_size, tenant.size());

    Group& group = groups_[g];
    group.tenant = tenant.id;
    group.member_vms.reserve(size);
    group.member_hosts.reserve(size);
    for (const auto vm : grng.sample_indices(tenant.size(), size)) {
      group.member_vms.push_back(static_cast<std::uint32_t>(vm));
      group.member_hosts.push_back(tenant.vm_hosts[vm]);
    }
  };
  if (pool != nullptr) {
    pool->parallel_for(0, params.total_groups, sample_group);
  } else {
    for (std::size_t g = 0; g < params.total_groups; ++g) sample_group(g);
  }
}

}  // namespace elmo::cloud
