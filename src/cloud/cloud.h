// Multi-tenant cloud model: tenants, VM placement, multicast group workloads.
//
// Reproduces the evaluation setup of §5.1.1:
//   * 3,000 tenants; VMs per tenant follow a (truncated, shifted) exponential
//     distribution with min=10, mean=178.77, max=5,000;
//   * at most 20 VMs per host; a tenant's VMs never share a physical host;
//   * placement picks a pod uniformly at random, then a random leaf in that
//     pod, and packs up to P VMs of the tenant under that leaf (P = 1 fully
//     dispersed .. P = 12 clustered), retrying other leaves/pods when full;
//   * one million multicast groups assigned to tenants proportionally to
//     tenant size, with group sizes drawn from the IBM WebSphere Virtual
//     Enterprise (WVE) trace distribution or a Uniform distribution, scaled
//     (capped) by tenant size; minimum group size 5.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "topology/clos.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace elmo::cloud {

using TenantId = std::uint32_t;

struct CloudParams {
  std::size_t tenants = 3000;
  std::size_t min_vms_per_tenant = 10;
  std::size_t max_vms_per_tenant = 5000;
  double mean_vms_per_tenant = 178.77;
  std::size_t max_vms_per_host = 20;
  // P: max VMs of one tenant packed under a single leaf (rack).
  std::size_t colocation = 12;

  // A scaled-down workload for fast tests (same shape, smaller counts).
  static CloudParams small_test() {
    return CloudParams{.tenants = 40,
                       .min_vms_per_tenant = 4,
                       .max_vms_per_tenant = 30,
                       .mean_vms_per_tenant = 8.0,
                       .max_vms_per_host = 20,
                       .colocation = 2};
  }
};

struct Tenant {
  TenantId id = 0;
  // vm index -> physical host; all hosts distinct within a tenant.
  std::vector<topo::HostId> vm_hosts;

  std::size_t size() const noexcept { return vm_hosts.size(); }
};

class Cloud {
 public:
  // Generates tenants and places their VMs. Throws std::runtime_error if the
  // fabric lacks capacity for the requested tenant population.
  //
  // One value is drawn from `rng` as the master seed; every tenant then
  // samples its size and placement from a util::Rng::stream derived from
  // (seed, tenant id). Placement runs in fixed-size rounds: tenants of a
  // round place in parallel on `pool` against an immutable snapshot of the
  // fabric load, then commit in tenant order; a tenant whose speculative
  // hosts conflict with an earlier commit is re-placed serially. Round size
  // is a constant, so the result is bit-identical at any thread count
  // (pool == nullptr included) — see DESIGN.md §5.
  Cloud(const topo::ClosTopology& topology, const CloudParams& params,
        util::Rng& rng, util::ThreadPool* pool = nullptr);

  const topo::ClosTopology& topology() const noexcept { return *topology_; }
  const CloudParams& params() const noexcept { return params_; }
  std::span<const Tenant> tenants() const noexcept { return tenants_; }
  std::size_t total_vms() const noexcept { return total_vms_; }

  // VMs currently placed on a host (for capacity assertions in tests).
  std::size_t vms_on_host(topo::HostId host) const {
    return host_load_.at(host);
  }

 private:
  std::size_t sample_tenant_size(util::Rng& rng) const;
  // Places against the given load view (the authoritative vectors for the
  // serial path, per-tenant copies of a round snapshot for the speculative
  // path); mutates only the view and `tenant`.
  void place_tenant(Tenant& tenant, std::size_t vm_count, util::Rng& rng,
                    std::vector<std::uint16_t>& host_load,
                    std::vector<std::uint32_t>& leaf_free_slots) const;

  const topo::ClosTopology* topology_;
  CloudParams params_;
  std::vector<Tenant> tenants_;
  std::vector<std::uint16_t> host_load_;
  std::vector<std::uint32_t> leaf_free_slots_;
  std::size_t total_vms_ = 0;
};

// ---------------------------------------------------------------------------
// Multicast group workload
// ---------------------------------------------------------------------------

enum class GroupSizeDist : std::uint8_t {
  kWve,      // fitted to the IBM WebSphere Virtual Enterprise trace
  kUniform,  // uniform in [min_size, tenant size]
};

// Samples a group size from the WVE-trace-shaped distribution:
//   ~80% of groups <= 61 members, ~0.6% > 700 members, mean ~= 60, min 5.
std::size_t sample_wve_group_size(util::Rng& rng);

struct Group {
  TenantId tenant = 0;
  // Member VM hosts; hosts are distinct because a tenant's VMs never share a
  // host. Index into the tenant's vm list kept alongside for churn.
  std::vector<topo::HostId> member_hosts;
  std::vector<std::uint32_t> member_vms;  // tenant-local VM indices

  std::size_t size() const noexcept { return member_hosts.size(); }
};

struct WorkloadParams {
  std::size_t total_groups = 1'000'000;
  GroupSizeDist size_dist = GroupSizeDist::kWve;
  std::size_t min_group_size = 5;
};

class GroupWorkload {
 public:
  // One value is drawn from `rng` as the master seed; tenant quotas are
  // computed serially (largest-remainder rounding, deterministic), then
  // each group samples its size and members from util::Rng::stream(seed,
  // group index) — embarrassingly parallel and bit-identical at any thread
  // count.
  GroupWorkload(const Cloud& cloud, const WorkloadParams& params,
                util::Rng& rng, util::ThreadPool* pool = nullptr);

  std::span<const Group> groups() const noexcept { return groups_; }
  const WorkloadParams& params() const noexcept { return params_; }

 private:
  WorkloadParams params_;
  std::vector<Group> groups_;
};

}  // namespace elmo::cloud
