// PISCES-style hypervisor (vswitch) model (paper §4.2).
//
// The hypervisor switch intercepts multicast packets from local VMs, looks
// the group up in its flow table, and encapsulates: outer Ethernet + IPv4 +
// UDP + VXLAN plus the group's precomputed Elmo header template, written as
// ONE contiguous header in a single copy — the paper's key software-switch
// optimization (one DMA write instead of one per p-rule; Figure 7 measures
// exactly this path). On receive it decapsulates and delivers to the local
// member VMs; packets for groups with no local members are discarded.
//
// As a ForwardingElement, a hypervisor consumes fabric-ingress packets and
// emits one zero-copy payload view per local member VM (out_port = VM
// index): decapsulation is a cursor advance past the outer header and any
// surviving Elmo bytes, never a copy.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "dataplane/common.h"
#include "dataplane/forwarding.h"
#include "elmo/header.h"
#include "net/headers.h"
#include "net/packet.h"
#include "net/packet_view.h"
#include "topology/clos.h"

namespace elmo::dp {

struct HypervisorStats {
  std::uint64_t sent = 0;
  std::uint64_t bytes_sent = 0;      // encapsulated bytes handed to the wire
  std::uint64_t received = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t delivered_to_vms = 0;
  std::uint64_t delivered_bytes = 0;  // payload bytes handed to local VMs
  std::uint64_t discarded = 0;  // no local members for the group
  std::uint64_t unicast_fallback = 0;

  HypervisorStats& operator+=(const HypervisorStats& o) noexcept {
    sent += o.sent;
    bytes_sent += o.bytes_sent;
    received += o.received;
    bytes_received += o.bytes_received;
    delivered_to_vms += o.delivered_to_vms;
    delivered_bytes += o.delivered_bytes;
    discarded += o.discarded;
    unicast_fallback += o.unicast_fallback;
    return *this;
  }
};

class HypervisorSwitch : public ForwardingElement {
 public:
  HypervisorSwitch(const topo::ClosTopology& topology, topo::HostId host)
      : topo_{&topology}, codec_{topology}, host_{host} {}

  topo::HostId host() const noexcept { return host_; }

  struct GroupFlow {
    std::uint32_t vni = 0;                   // tenant id
    std::vector<std::uint8_t> elmo_header;   // template; empty for receive-only
    std::vector<std::uint32_t> local_vms;    // tenant-local VM indices here
  };

  void install_flow(net::Ipv4Address group, GroupFlow flow);
  void remove_flow(net::Ipv4Address group);
  bool has_flow(net::Ipv4Address group) const {
    return flows_.contains(group.value);
  }
  std::size_t flow_count() const noexcept { return flows_.size(); }
  // Installed flow for `group`, or nullptr. Read access for state diffing
  // (the verify harness compares fabric contents against its oracle).
  const GroupFlow* flow(net::Ipv4Address group) const {
    const auto it = flows_.find(group.value);
    return it != flows_.end() ? &it->second : nullptr;
  }
  // Full table view, keyed by group address value (iteration order is
  // unspecified — digest builders must sort).
  const std::unordered_map<std::uint32_t, GroupFlow>& flows() const noexcept {
    return flows_;
  }

  // VM -> network: returns the encapsulated packet, or nullopt if this host
  // has no flow for the group (non-members cannot source into a group).
  std::optional<net::Packet> encapsulate(net::Ipv4Address group,
                                         std::span<const std::uint8_t> payload);

  // Network -> VMs (ForwardingElement): decapsulates and emits one payload
  // view per local member VM, out_port = VM index. `ingress_port` is
  // accepted for interface uniformity (always treated as kNetworkPort).
  std::span<Emission> process(const net::PacketView& packet,
                              std::size_t ingress_port,
                              EmissionArena& arena) override;

  // Convenience wrapper over process() for unit tests and tools.
  struct Delivery {
    std::uint32_t vm = 0;
    std::size_t payload_bytes = 0;
  };
  std::vector<Delivery> receive(const net::Packet& packet);

  const HypervisorStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = HypervisorStats{}; }

 private:
  const topo::ClosTopology* topo_;
  elmo::HeaderCodec codec_;  // to skip unstripped p-rules (legacy leaves, §7)
  topo::HostId host_;
  std::unordered_map<std::uint32_t, GroupFlow> flows_;
  HypervisorStats stats_;
  EmissionArena compat_arena_;  // scratch for the receive() wrapper
};

}  // namespace elmo::dp
