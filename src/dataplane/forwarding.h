// The unified forwarding interface of the packet pipeline.
//
// Every element of the fabric — network switches (leaf/spine/core) and host
// hypervisors — is a ForwardingElement: it consumes one PacketView and emits
// zero or more (out_port, PacketView) pairs. Emissions are appended to a
// caller-provided EmissionArena rather than returned as fresh vectors, so a
// fabric walk reuses one arena across every hop and performs no steady-state
// allocation.
//
// Port conventions:
//   * Network switches: out_port indexes the switch's ports (downstream
//     ports first, then uplinks), exactly as the topology wires them;
//     ingress_port is accepted for interface uniformity but unused (Elmo
//     forwarding is ingress-agnostic).
//   * Hypervisors: a packet arriving from the network (ingress_port ==
//     kNetworkPort) is decapsulated and emitted once per local member VM,
//     with out_port = the VM index and the packet cursor advanced to the
//     inner payload (zero-copy).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "net/packet_view.h"

namespace elmo::obs {
class ProvenanceSink;
}

namespace elmo::dp {

struct Emission {
  std::size_t out_port = 0;
  net::PacketView packet;
};

// Append-only scratch space for one fabric walk. The walk clears it before
// each hop; `resize` down keeps capacity, so a long walk allocates only
// until the widest hop has been seen once.
class EmissionArena {
 public:
  std::size_t mark() const noexcept { return emissions_.size(); }

  void emit(std::size_t out_port, net::PacketView packet) {
    emissions_.push_back(Emission{out_port, std::move(packet)});
  }

  // Emissions appended since `mark`. Valid until the next emit/clear/rewind.
  std::span<Emission> since(std::size_t mark) noexcept {
    return {emissions_.data() + mark, emissions_.size() - mark};
  }

  void rewind(std::size_t mark) { emissions_.resize(mark); }
  void clear() { emissions_.clear(); }
  std::size_t size() const noexcept { return emissions_.size(); }

 private:
  std::vector<Emission> emissions_;
};

class ForwardingElement {
 public:
  // Hypervisor ingress designator: "from the fabric, not from a local VM".
  static constexpr std::size_t kNetworkPort = static_cast<std::size_t>(-1);

  virtual ~ForwardingElement() = default;

  // Processes one packet and appends its emissions to `arena`, returning the
  // span it appended. The span is valid until the arena is next mutated.
  virtual std::span<Emission> process(const net::PacketView& packet,
                                      std::size_t ingress_port,
                                      EmissionArena& arena) = 0;

  // Optional decision-provenance sink (nullptr detaches). Not owned; must
  // outlive the packets it observes. A detached element pays one pointer
  // test per process() call (DESIGN.md §10).
  void set_provenance(obs::ProvenanceSink* sink) noexcept { prov_ = sink; }
  obs::ProvenanceSink* provenance() const noexcept { return prov_; }

 protected:
  obs::ProvenanceSink* prov_ = nullptr;
};

}  // namespace elmo::dp
