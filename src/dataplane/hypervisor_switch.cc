#include "dataplane/hypervisor_switch.h"

#include <cstring>

#include "obs/provenance.h"

namespace elmo::dp {

void HypervisorSwitch::install_flow(net::Ipv4Address group, GroupFlow flow) {
  flows_.insert_or_assign(group.value, std::move(flow));
}

void HypervisorSwitch::remove_flow(net::Ipv4Address group) {
  flows_.erase(group.value);
}

std::optional<net::Packet> HypervisorSwitch::encapsulate(
    net::Ipv4Address group, std::span<const std::uint8_t> payload) {
  const auto it = flows_.find(group.value);
  if (it == flows_.end()) return std::nullopt;
  const auto& flow = it->second;

  // Build the full outer header (including the Elmo template) once, then
  // prepend with a single copy — the "one header, one write" fast path.
  net::EthernetHeader eth;
  eth.src = host_mac(host_);
  eth.dst = fabric_mac();

  net::Ipv4Header ip;
  ip.src = host_address(host_);
  ip.dst = group;
  ip.total_length = static_cast<std::uint16_t>(
      net::Ipv4Header::kSize + net::UdpHeader::kSize + net::VxlanHeader::kSize +
      flow.elmo_header.size() + payload.size());

  net::UdpHeader udp;
  udp.src_port = static_cast<std::uint16_t>(0xc000 | (host_ & 0x3fff));
  udp.length = static_cast<std::uint16_t>(
      net::UdpHeader::kSize + net::VxlanHeader::kSize +
      flow.elmo_header.size() + payload.size());

  net::VxlanHeader vxlan;
  vxlan.vni = flow.vni;
  vxlan.elmo_present = !flow.elmo_header.empty();

  std::vector<std::uint8_t> header;
  header.reserve(net::kOuterHeaderBytes + flow.elmo_header.size());
  for (const auto& part :
       {eth.serialize(), ip.serialize(), udp.serialize(), vxlan.serialize()}) {
    header.insert(header.end(), part.begin(), part.end());
  }
  header.insert(header.end(), flow.elmo_header.begin(),
                flow.elmo_header.end());

  net::Packet packet{payload};
  packet.push_front(header);
  ++stats_.sent;
  stats_.bytes_sent += packet.size();
  return packet;
}

std::span<Emission> HypervisorSwitch::process(const net::PacketView& packet,
                                              std::size_t /*ingress_port*/,
                                              EmissionArena& arena) {
  const auto mark = arena.mark();
  ++stats_.received;
  stats_.bytes_received += packet.size();
  const auto outer = packet.front(net::kOuterHeaderBytes);
  const auto ip =
      net::Ipv4Header::parse(outer.subspan(net::EthernetHeader::kSize));
  const auto it = flows_.find(ip.dst.value);
  if (it == flows_.end() || it->second.local_vms.empty()) {
    ++stats_.discarded;
    if (prov_ != nullptr) {
      obs::HopDecision dec;
      dec.rule = obs::RuleClass::kHostDiscard;
      prov_->record_decision(dec);
    }
    return arena.since(mark);
  }
  // Elmo-capable leaves strip all p-rules at egress; behind a legacy leaf
  // (§7) the header survives and the VXLAN flag tells us to skip it.
  const auto vxlan = net::VxlanHeader::parse(
      outer.subspan(net::EthernetHeader::kSize + net::Ipv4Header::kSize +
                    net::UdpHeader::kSize));
  std::size_t elmo_bytes = 0;
  if (vxlan.elmo_present) {
    elmo_bytes = codec_.header_length(packet.from(net::kOuterHeaderBytes));
  }
  // Decapsulation is a cursor advance: one payload view, shared per VM.
  net::PacketView payload = packet;
  payload.pop_front(net::kOuterHeaderBytes + elmo_bytes);
  for (const auto vm : it->second.local_vms) {
    arena.emit(vm, payload);
    ++stats_.delivered_to_vms;
    stats_.delivered_bytes += payload.size();
  }
  const auto out = arena.since(mark);
  if (prov_ != nullptr) {
    obs::HopDecision dec;
    dec.rule = obs::RuleClass::kHostDeliver;
    dec.vm_deliveries = static_cast<std::uint32_t>(out.size());
    dec.popped_bytes = net::kOuterHeaderBytes + elmo_bytes;
    prov_->record_decision(dec);
  }
  return out;
}

std::vector<HypervisorSwitch::Delivery> HypervisorSwitch::receive(
    const net::Packet& packet) {
  compat_arena_.clear();
  const net::PacketView view{packet.bytes()};
  const auto emissions = process(view, kNetworkPort, compat_arena_);
  std::vector<Delivery> deliveries;
  deliveries.reserve(emissions.size());
  for (const auto& e : emissions) {
    deliveries.push_back(Delivery{static_cast<std::uint32_t>(e.out_port),
                                  e.packet.size()});
  }
  compat_arena_.clear();
  return deliveries;
}

}  // namespace elmo::dp
