// Shared data-plane definitions: addressing and the multipath flow hash.
//
// The flow hash is used by both the packet-level switches and the analytic
// TrafficEvaluator; keeping one definition here is what makes the two
// engines byte-for-byte comparable (tests/sim/crosscheck_test.cc).
#pragma once

#include <cstdint>

#include "net/headers.h"
#include "topology/clos.h"
#include "util/rng.h"

namespace elmo::dp {

// Host (hypervisor VTEP) addresses live in 10.0.0.0/8.
inline net::Ipv4Address host_address(topo::HostId host) noexcept {
  return net::Ipv4Address{0x0a000000u + host};
}

// Deterministic ECMP-style hash over the outer 3-tuple surrogate. Leaf
// switches use `flow_hash % leaf_up_ports` to pick a spine plane; spines use
// `(flow_hash >> 8) % spine_up_ports` to pick a core.
inline std::uint64_t flow_hash(net::Ipv4Address outer_src,
                               net::Ipv4Address outer_dst) noexcept {
  std::uint64_t seed = (static_cast<std::uint64_t>(outer_src.value) << 32) |
                       outer_dst.value;
  return util::splitmix64(seed);
}

// Synthetic MAC addresses for the outer Ethernet header.
inline net::MacAddress host_mac(topo::HostId host) noexcept {
  return net::MacAddress{0x02, 0x00,
                         static_cast<std::uint8_t>(host >> 24),
                         static_cast<std::uint8_t>(host >> 16),
                         static_cast<std::uint8_t>(host >> 8),
                         static_cast<std::uint8_t>(host)};
}

inline net::MacAddress fabric_mac() noexcept {
  return net::MacAddress{0x02, 0xfa, 0xb0, 0x00, 0x00, 0x01};
}

}  // namespace elmo::dp
