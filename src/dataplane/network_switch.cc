#include "dataplane/network_switch.h"

#include <stdexcept>

namespace elmo::dp {

NetworkSwitch::NetworkSwitch(const topo::ClosTopology& topology,
                             topo::Layer layer, std::uint32_t id)
    : topo_{&topology}, codec_{topology}, layer_{layer}, id_{id} {
  switch (layer) {
    case topo::Layer::kLeaf:
      match_id_ = id;  // global leaf id
      break;
    case topo::Layer::kSpine:
      match_id_ = topology.pod_of_spine(id);  // logical spine == pod
      break;
    case topo::Layer::kCore:
      match_id_ = 0;  // single logical core, no identifier needed
      break;
    case topo::Layer::kHost:
      throw std::invalid_argument{"NetworkSwitch: host is not a switch"};
  }
  uplink_load_.assign(upstream_ports(), 0);
}

std::size_t NetworkSwitch::pick_uplink(std::uint64_t hash) {
  if (multipath_mode_ == MultipathMode::kEcmp || uplink_load_.empty()) {
    return layer_ == topo::Layer::kLeaf ? hash % upstream_ports()
                                        : (hash >> 8) % upstream_ports();
  }
  // HULA-style: least observed utilization, hash breaks ties.
  std::size_t best = hash % uplink_load_.size();
  for (std::size_t p = 0; p < uplink_load_.size(); ++p) {
    if (uplink_load_[p] < uplink_load_[best]) best = p;
  }
  return best;
}

void NetworkSwitch::install_srule(net::Ipv4Address group,
                                  net::PortBitmap ports) {
  group_table_.insert_or_assign(group.value, std::move(ports));
}

void NetworkSwitch::remove_srule(net::Ipv4Address group) {
  group_table_.erase(group.value);
}

std::size_t NetworkSwitch::downstream_ports() const noexcept {
  switch (layer_) {
    case topo::Layer::kLeaf:
      return topo_->leaf_down_ports();
    case topo::Layer::kSpine:
      return topo_->spine_down_ports();
    default:
      return topo_->core_ports();
  }
}

std::size_t NetworkSwitch::upstream_ports() const noexcept {
  switch (layer_) {
    case topo::Layer::kLeaf:
      return topo_->leaf_up_ports();
    case topo::Layer::kSpine:
      return topo_->spine_up_ports();
    default:
      return 0;
  }
}

NetworkSwitch::ParseResult NetworkSwitch::parse(
    const net::Packet& packet) const {
  const auto bytes = packet.bytes();
  if (bytes.size() < net::kOuterHeaderBytes) {
    throw std::invalid_argument{"NetworkSwitch: runt packet"};
  }
  ParseResult result;

  const auto eth = net::EthernetHeader::parse(bytes);
  if (eth.ether_type != net::kEtherTypeIpv4) {
    throw std::invalid_argument{"NetworkSwitch: not IPv4"};
  }
  const auto ip =
      net::Ipv4Header::parse(bytes.subspan(net::EthernetHeader::kSize));
  result.outer_src = ip.src;
  result.outer_dst = ip.dst;
  // (UDP/VXLAN validated structurally by the offsets below.)

  const auto elmo_span = bytes.subspan(net::kOuterHeaderBytes);
  result.sections = codec_.scan_sections(elmo_span);
  const auto header = codec_.parse(elmo_span);

  switch (layer_) {
    case topo::Layer::kLeaf:
      result.upstream = header.u_leaf;
      result.default_rule = header.leaf_default;
      for (const auto& rule : header.leaf_rules) {
        for (const auto rid : rule.switch_ids) {
          if (rid == match_id_) {
            result.matched = rule.bitmap;
            break;
          }
        }
        if (result.matched) break;  // parser skips remaining p-rules
      }
      break;
    case topo::Layer::kSpine:
      result.upstream = header.u_spine;
      result.default_rule = header.spine_default;
      for (const auto& rule : header.spine_rules) {
        for (const auto rid : rule.switch_ids) {
          if (rid == match_id_) {
            result.matched = rule.bitmap;
            break;
          }
        }
        if (result.matched) break;
      }
      break;
    case topo::Layer::kCore:
      result.core_bitmap = header.core_pods;
      break;
    case topo::Layer::kHost:
      break;
  }
  return result;
}

std::size_t NetworkSwitch::pop_offset(
    const std::vector<elmo::SectionExtent>& sections,
    elmo::SectionTag first_needed) const {
  for (const auto& e : sections) {
    if (e.tag == elmo::SectionTag::kEnd ||
        static_cast<int>(e.tag) >= static_cast<int>(first_needed)) {
      return e.begin;
    }
  }
  return 0;
}

net::Packet NetworkSwitch::make_copy(
    const net::Packet& packet, std::size_t drop_bytes, bool strip_all,
    const std::vector<elmo::SectionExtent>& sections) const {
  net::Packet copy = packet;
  if (strip_all) {
    copy.erase(net::kOuterHeaderBytes, sections.back().end);
    // Deparser also clears the VXLAN "Elmo present" flag (offset 42).
    copy.mutable_bytes()[net::EthernetHeader::kSize + net::Ipv4Header::kSize +
                         net::UdpHeader::kSize] &= ~std::uint8_t{0x01};
  } else if (drop_bytes > 0) {
    copy.erase(net::kOuterHeaderBytes, drop_bytes);
  }
  return copy;
}

std::vector<OutputCopy> NetworkSwitch::process(const net::Packet& packet) {
  ++stats_.packets_in;

  if (legacy_) {
    // A legacy chip: ordinary IP-multicast group-table lookup on the outer
    // destination, no Elmo parsing, no header popping.
    const auto bytes = packet.bytes();
    const auto ip =
        net::Ipv4Header::parse(bytes.subspan(net::EthernetHeader::kSize));
    std::vector<OutputCopy> out;
    if (const auto it = group_table_.find(ip.dst.value);
        it != group_table_.end()) {
      ++stats_.srule_matches;
      it->second.for_each_set([&](std::size_t port) {
        out.push_back(OutputCopy{port, packet});
      });
    } else {
      ++stats_.drops;
    }
    stats_.copies_out += out.size();
    return out;
  }

  const auto pr = parse(packet);
  const auto hash = flow_hash(pr.outer_src, pr.outer_dst);

  std::vector<OutputCopy> out;

  // Where do downstream copies point, and which section does the next hop
  // still need?
  const bool down_to_hosts = layer_ == topo::Layer::kLeaf;
  const auto down_needed = layer_ == topo::Layer::kCore
                               ? elmo::SectionTag::kSpineRules
                               : elmo::SectionTag::kLeafRules;
  auto emit_down = [&](const net::PortBitmap& bitmap) {
    const std::size_t drop = pop_offset(pr.sections, down_needed);
    bitmap.for_each_set([&](std::size_t port) {
      out.push_back(OutputCopy{
          port, make_copy(packet, drop, down_to_hosts, pr.sections)});
    });
  };

  if (pr.upstream) {
    ++stats_.upstream_matches;
    emit_down(pr.upstream->down);
    // Upward copies: everything before the *next layer's* upstream/core
    // section is invalidated.
    const auto up_needed = layer_ == topo::Layer::kLeaf
                               ? elmo::SectionTag::kUSpine
                               : elmo::SectionTag::kCore;
    const std::size_t drop = pop_offset(pr.sections, up_needed);
    const std::size_t base = downstream_ports();
    if (pr.upstream->multipath) {
      const std::size_t pick = pick_uplink(hash);
      uplink_load_[pick] += packet.size();
      out.push_back(
          OutputCopy{base + pick, make_copy(packet, drop, false, pr.sections)});
    } else {
      pr.upstream->up.for_each_set([&](std::size_t port) {
        if (port < uplink_load_.size()) uplink_load_[port] += packet.size();
        out.push_back(OutputCopy{
            base + port, make_copy(packet, drop, false, pr.sections)});
      });
    }
  } else if (layer_ == topo::Layer::kCore && pr.core_bitmap) {
    ++stats_.prule_matches;
    emit_down(*pr.core_bitmap);
  } else if (pr.matched) {
    ++stats_.prule_matches;
    emit_down(*pr.matched);
  } else if (const auto it = group_table_.find(pr.outer_dst.value);
             it != group_table_.end()) {
    ++stats_.srule_matches;
    emit_down(it->second);
  } else if (pr.default_rule) {
    ++stats_.default_matches;
    emit_down(*pr.default_rule);
  } else {
    ++stats_.drops;
  }

  stats_.copies_out += out.size();
  return out;
}

}  // namespace elmo::dp
