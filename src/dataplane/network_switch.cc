#include "dataplane/network_switch.h"

#include <algorithm>
#include <stdexcept>

#include "obs/provenance.h"

namespace elmo::dp {

NetworkSwitch::NetworkSwitch(const topo::ClosTopology& topology,
                             topo::Layer layer, std::uint32_t id)
    : topo_{&topology}, codec_{topology}, layer_{layer}, id_{id} {
  switch (layer) {
    case topo::Layer::kLeaf:
      match_id_ = id;  // global leaf id
      break;
    case topo::Layer::kSpine:
      match_id_ = topology.pod_of_spine(id);  // logical spine == pod
      break;
    case topo::Layer::kCore:
      match_id_ = 0;  // single logical core, no identifier needed
      break;
    case topo::Layer::kHost:
      throw std::invalid_argument{"NetworkSwitch: host is not a switch"};
  }
  uplink_load_.assign(upstream_ports(), 0);
}

std::size_t NetworkSwitch::pick_uplink(std::uint64_t hash) {
  if (multipath_mode_ == MultipathMode::kEcmp || uplink_load_.empty()) {
    return layer_ == topo::Layer::kLeaf ? hash % upstream_ports()
                                        : (hash >> 8) % upstream_ports();
  }
  // HULA-style: least observed utilization, hash breaks ties.
  std::size_t best = hash % uplink_load_.size();
  for (std::size_t p = 0; p < uplink_load_.size(); ++p) {
    if (uplink_load_[p] < uplink_load_[best]) best = p;
  }
  return best;
}

void NetworkSwitch::install_srule(net::Ipv4Address group,
                                  net::PortBitmap ports) {
  group_table_.insert_or_assign(group.value, std::move(ports));
}

void NetworkSwitch::remove_srule(net::Ipv4Address group) {
  group_table_.erase(group.value);
}

std::size_t NetworkSwitch::downstream_ports() const noexcept {
  switch (layer_) {
    case topo::Layer::kLeaf:
      return topo_->leaf_down_ports();
    case topo::Layer::kSpine:
      return topo_->spine_down_ports();
    default:
      return topo_->core_ports();
  }
}

std::size_t NetworkSwitch::upstream_ports() const noexcept {
  switch (layer_) {
    case topo::Layer::kLeaf:
      return topo_->leaf_up_ports();
    case topo::Layer::kSpine:
      return topo_->spine_up_ports();
    default:
      return 0;
  }
}

NetworkSwitch::ParseResult NetworkSwitch::parse(
    const net::PacketView& packet) const {
  if (packet.size() < net::kOuterHeaderBytes) {
    throw std::invalid_argument{"NetworkSwitch: runt packet"};
  }
  ParseResult result;

  // The outer encapsulation is always the contiguous front of the view; the
  // Elmo sections are the contiguous tail behind it (any popped sections are
  // the view's hole in between).
  const auto outer = packet.front(net::kOuterHeaderBytes);
  const auto eth = net::EthernetHeader::parse(outer);
  if (eth.ether_type != net::kEtherTypeIpv4) {
    throw std::invalid_argument{"NetworkSwitch: not IPv4"};
  }
  const auto ip = net::Ipv4Header::parse(outer.subspan(net::EthernetHeader::kSize));
  result.outer_src = ip.src;
  result.outer_dst = ip.dst;
  // (UDP/VXLAN validated structurally by the offsets below.)

  const auto elmo_span = packet.from(net::kOuterHeaderBytes);
  result.sections = codec_.scan_sections(elmo_span);
  const auto header = codec_.parse(elmo_span);

  switch (layer_) {
    case topo::Layer::kLeaf:
      result.upstream = header.u_leaf;
      result.default_rule = header.leaf_default;
      for (std::size_t ri = 0; ri < header.leaf_rules.size(); ++ri) {
        const auto& rule = header.leaf_rules[ri];
        for (const auto rid : rule.switch_ids) {
          if (rid == match_id_) {
            result.matched = rule.bitmap;
            result.matched_index = static_cast<int>(ri);
            result.matched_shared = rule.switch_ids.size() > 1;
            break;
          }
        }
        if (result.matched) break;  // parser skips remaining p-rules
      }
      break;
    case topo::Layer::kSpine:
      result.upstream = header.u_spine;
      result.default_rule = header.spine_default;
      for (std::size_t ri = 0; ri < header.spine_rules.size(); ++ri) {
        const auto& rule = header.spine_rules[ri];
        for (const auto rid : rule.switch_ids) {
          if (rid == match_id_) {
            result.matched = rule.bitmap;
            result.matched_index = static_cast<int>(ri);
            result.matched_shared = rule.switch_ids.size() > 1;
            break;
          }
        }
        if (result.matched) break;
      }
      break;
    case topo::Layer::kCore:
      result.core_bitmap = header.core_pods;
      break;
    case topo::Layer::kHost:
      break;
  }
  return result;
}

std::size_t NetworkSwitch::pop_offset(
    const std::vector<elmo::SectionExtent>& sections,
    elmo::SectionTag first_needed) const {
  for (const auto& e : sections) {
    if (e.tag == elmo::SectionTag::kEnd ||
        static_cast<int>(e.tag) >= static_cast<int>(first_needed)) {
      return e.begin;
    }
  }
  return 0;
}

net::PacketView NetworkSwitch::strip_for_host(
    const net::PacketView& packet,
    const std::vector<elmo::SectionExtent>& sections) const {
  const std::size_t elmo_bytes = sections.back().end;
  const auto outer = packet.front(net::kOuterHeaderBytes);
  const auto payload =
      packet.from(net::kOuterHeaderBytes).subspan(elmo_bytes);

  net::Packet stripped =
      net::Packet::with_size(outer.size() + payload.size(), /*headroom=*/0);
  const auto out = stripped.mutable_bytes();
  std::copy(outer.begin(), outer.end(), out.begin());
  std::copy(payload.begin(), payload.end(), out.begin() + outer.size());
  // Deparser clears the VXLAN "Elmo present" flag.
  out[net::EthernetHeader::kSize + net::Ipv4Header::kSize +
      net::UdpHeader::kSize] &= ~std::uint8_t{0x01};
  net::count_copy(out.size());
  return net::PacketView{std::move(stripped)};
}

std::span<Emission> NetworkSwitch::process(const net::PacketView& packet,
                                           std::size_t /*ingress_port*/,
                                           EmissionArena& arena) {
  const auto mark = arena.mark();
  ++stats_.packets_in;
  stats_.bytes_in += packet.size();
  const std::uint64_t popped_before = stats_.header_pop_bytes;

  // Decision provenance (DESIGN.md §10): one record per process() call,
  // written only when a sink is attached — the detached cost is this null
  // test. `bitmap` is the rule as matched (before masking); the egress set
  // is reconstructed from the emissions (after multipath masking).
  auto record = [&](obs::RuleClass cls, const net::PortBitmap* bitmap,
                    const elmo::UpstreamRule* up, bool shared, int index) {
    if (prov_ == nullptr) return;
    obs::HopDecision dec;
    dec.rule = cls;
    dec.legacy = legacy_;
    dec.prule_index = index;
    dec.prule_shared = shared;
    if (bitmap != nullptr) dec.bitmap = *bitmap;
    if (up != nullptr) {
      dec.multipath = up->multipath;
      dec.up_bitmap = up->up;
    }
    dec.popped_bytes =
        static_cast<std::size_t>(stats_.header_pop_bytes - popped_before);
    const auto out = arena.since(mark);
    if (!out.empty()) {
      dec.egress = net::PortBitmap{downstream_ports() + upstream_ports()};
      for (const auto& e : out) dec.egress.set(e.out_port);
    }
    prov_->record_decision(dec);
  };

  if (down_) {
    ++stats_.drops;
    record(obs::RuleClass::kDrop, nullptr, nullptr, false, -1);
    return arena.since(mark);
  }

  if (legacy_) {
    // A legacy chip: ordinary IP-multicast group-table lookup on the outer
    // destination, no Elmo parsing, no header popping — every copy is the
    // unmodified incoming view.
    const auto ip = net::Ipv4Header::parse(
        packet.front(net::kOuterHeaderBytes).subspan(net::EthernetHeader::kSize));
    const net::PortBitmap* hit = nullptr;
    if (const auto it = group_table_.find(ip.dst.value);
        it != group_table_.end()) {
      ++stats_.srule_matches;
      hit = &it->second;
      hit->for_each_set([&](std::size_t port) { arena.emit(port, packet); });
    } else {
      ++stats_.drops;
    }
    const auto out = arena.since(mark);
    stats_.copies_out += out.size();
    for (const auto& e : out) stats_.bytes_out += e.packet.size();
    record(hit != nullptr ? obs::RuleClass::kSRule : obs::RuleClass::kDrop,
           hit, nullptr, false, -1);
    return out;
  }

  const auto pr = parse(packet);
  const auto hash = flow_hash(pr.outer_src, pr.outer_dst);

  // Where do downstream copies point, and which section does the next hop
  // still need?
  const bool down_to_hosts = layer_ == topo::Layer::kLeaf;
  const auto down_needed = layer_ == topo::Layer::kCore
                               ? elmo::SectionTag::kSpineRules
                               : elmo::SectionTag::kLeafRules;
  auto emit_down = [&](const net::PortBitmap& bitmap) {
    if (down_to_hosts) {
      // One stripped template, shared (refcounted) by every host copy.
      net::PacketView host_copy;
      bool built = false;
      bitmap.for_each_set([&](std::size_t port) {
        if (!built) {
          host_copy = strip_for_host(packet, pr.sections);
          built = true;
          ++stats_.header_pops;
          stats_.header_pop_bytes += pr.sections.back().end;
        }
        arena.emit(port, host_copy);
      });
      return;
    }
    const std::size_t drop = pop_offset(pr.sections, down_needed);
    net::PacketView down_copy = packet;
    if (drop > 0) {
      down_copy.erase(net::kOuterHeaderBytes, drop);
      ++stats_.header_pops;
      stats_.header_pop_bytes += drop;
    }
    bitmap.for_each_set(
        [&](std::size_t port) { arena.emit(port, down_copy); });
  };

  obs::RuleClass cls = obs::RuleClass::kDrop;
  const net::PortBitmap* chosen = nullptr;
  const elmo::UpstreamRule* chosen_up = nullptr;

  if (pr.upstream) {
    ++stats_.upstream_matches;
    cls = obs::RuleClass::kUpstream;
    chosen = &pr.upstream->down;
    chosen_up = &*pr.upstream;
    emit_down(pr.upstream->down);
    // Upward copies: everything before the *next layer's* upstream/core
    // section is invalidated.
    const auto up_needed = layer_ == topo::Layer::kLeaf
                               ? elmo::SectionTag::kUSpine
                               : elmo::SectionTag::kCore;
    const std::size_t drop = pop_offset(pr.sections, up_needed);
    net::PacketView up_copy = packet;
    if (drop > 0) {
      up_copy.erase(net::kOuterHeaderBytes, drop);
      ++stats_.header_pops;
      stats_.header_pop_bytes += drop;
    }
    const std::size_t base = downstream_ports();
    if (pr.upstream->multipath) {
      const std::size_t pick = pick_uplink(hash);
      uplink_load_[pick] += packet.size();
      arena.emit(base + pick, up_copy);
    } else {
      pr.upstream->up.for_each_set([&](std::size_t port) {
        if (port < uplink_load_.size()) uplink_load_[port] += packet.size();
        arena.emit(base + port, up_copy);
      });
    }
  } else if (layer_ == topo::Layer::kCore && pr.core_bitmap) {
    ++stats_.prule_matches;
    cls = obs::RuleClass::kPRule;
    chosen = &*pr.core_bitmap;
    emit_down(*pr.core_bitmap);
  } else if (pr.matched) {
    ++stats_.prule_matches;
    cls = obs::RuleClass::kPRule;
    chosen = &*pr.matched;
    emit_down(*pr.matched);
  } else if (const auto it = group_table_.find(pr.outer_dst.value);
             it != group_table_.end()) {
    ++stats_.srule_matches;
    cls = obs::RuleClass::kSRule;
    chosen = &it->second;
    emit_down(it->second);
  } else if (pr.default_rule) {
    ++stats_.default_matches;
    cls = obs::RuleClass::kDefault;
    chosen = &*pr.default_rule;
    emit_down(*pr.default_rule);
  } else {
    ++stats_.drops;
  }

  const auto out = arena.since(mark);
  stats_.copies_out += out.size();
  for (const auto& e : out) stats_.bytes_out += e.packet.size();
  record(cls, chosen, chosen_up, pr.matched_shared, pr.matched_index);
  return out;
}

std::vector<OutputCopy> NetworkSwitch::process(const net::Packet& packet) {
  compat_arena_.clear();
  const net::PacketView view{packet.bytes()};
  const auto emissions = process(view, 0, compat_arena_);
  std::vector<OutputCopy> out;
  out.reserve(emissions.size());
  for (auto& e : emissions) {
    out.push_back(OutputCopy{e.out_port, e.packet.materialize()});
  }
  compat_arena_.clear();
  return out;
}

}  // namespace elmo::dp
