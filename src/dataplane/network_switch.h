// Software model of an Elmo-capable programmable network switch (paper §4.1).
//
// The pipeline mirrors a PISA chip running the Elmo P4 program:
//
//   1. *Parser* — walks the outer headers, then the Elmo sections, and does
//      match-and-set over p-rules: when it scans this switch's layer section
//      it compares each rule's identifier list against the switch's own id,
//      storing the matched bitmap (and the default bitmap) as metadata. No
//      match-action stage is spent on p-rule lookup (see Appendix A for why
//      that would be prohibitively expensive).
//   2. *Ingress* — control flow: upstream rule if the packet still carries
//      this layer's upstream section; otherwise matched p-rule bitmap;
//      otherwise group-table (s-rule) lookup on the outer destination IP;
//      otherwise the default p-rule; otherwise drop.
//   3. *Queue manager* — `bitmap_port_select`: replicates the packet to the
//      ports set in the chosen bitmap.
//   4. *Egress/deparser* — invalidates consumed sections per output copy:
//      everything before the next hop's layer section is removed; copies
//      headed to hosts lose the entire Elmo header.
//
// Replication is zero-copy: popping consumed sections is PacketView cursor
// arithmetic, so all switch-to-switch copies of one packet share the sender's
// buffer. The only bytes copied per process() call are the single stripped
// host-delivery template (outer header with the Elmo flag cleared + payload),
// which every host-bound emission then shares.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "dataplane/common.h"
#include "dataplane/forwarding.h"
#include "elmo/header.h"
#include "net/bitmap.h"
#include "net/packet.h"
#include "net/packet_view.h"
#include "topology/clos.h"

namespace elmo::dp {

// Materialized emission for the test-facing convenience wrapper.
struct OutputCopy {
  std::size_t out_port = 0;
  net::Packet packet;
};

// Underlying multipath scheme the Elmo multipath flag defers to (paper D2b:
// "the configured underlying multipathing scheme (e.g., ECMP, CONGA, or
// HULA)"). kEcmp hashes the outer flow; kLeastLoaded is a HULA-style local
// choice of the least-utilized uplink.
enum class MultipathMode : std::uint8_t { kEcmp, kLeastLoaded };

struct SwitchStats {
  std::uint64_t packets_in = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t copies_out = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t prule_matches = 0;   // forwarded via parser-matched p-rule
  std::uint64_t upstream_matches = 0;
  std::uint64_t srule_matches = 0;
  std::uint64_t default_matches = 0;
  std::uint64_t drops = 0;
  std::uint64_t header_pops = 0;       // copies whose consumed sections were
                                       // invalidated (incl. host strips)
  std::uint64_t header_pop_bytes = 0;  // Elmo bytes removed by those pops

  SwitchStats& operator+=(const SwitchStats& o) noexcept {
    packets_in += o.packets_in;
    bytes_in += o.bytes_in;
    copies_out += o.copies_out;
    bytes_out += o.bytes_out;
    prule_matches += o.prule_matches;
    upstream_matches += o.upstream_matches;
    srule_matches += o.srule_matches;
    default_matches += o.default_matches;
    drops += o.drops;
    header_pops += o.header_pops;
    header_pop_bytes += o.header_pop_bytes;
    return *this;
  }
};

class NetworkSwitch : public ForwardingElement {
 public:
  // `layer` is kLeaf, kSpine or kCore; `id` the global switch id of that
  // layer. The switch derives its p-rule match identifier (leaf id or pod
  // id) and port geometry from the topology.
  NetworkSwitch(const topo::ClosTopology& topology, topo::Layer layer,
                std::uint32_t id);

  topo::Layer layer() const noexcept { return layer_; }
  std::uint32_t id() const noexcept { return id_; }

  void set_multipath_mode(MultipathMode mode) noexcept { multipath_mode_ = mode; }
  MultipathMode multipath_mode() const noexcept { return multipath_mode_; }
  // Bytes sent up each uplink since reset (HULA-style utilization estimate).
  std::uint64_t uplink_load(std::size_t up_port) const {
    return uplink_load_.at(up_port);
  }

  // Legacy mode (paper §7, incremental deployment): the switch cannot parse
  // Elmo headers. It forwards multicast packets purely from its group table
  // (s-rules installed for every group crossing it) and never pops p-rules.
  void set_legacy(bool legacy) noexcept { legacy_ = legacy; }
  bool is_legacy() const noexcept { return legacy_; }

  // Failed-switch modeling (paper §3.3): a down switch blackholes every
  // packet (counted as drops). The controller routes around failures via
  // sender headers; this flag lets the simulated fabric verify that those
  // headers really avoid the dead switch.
  void set_down(bool down) noexcept { down_ = down; }
  bool is_down() const noexcept { return down_; }

  // Group table (s-rules). Capacity policing is the controller's job
  // (SRuleSpace); the switch itself is a dumb table.
  void install_srule(net::Ipv4Address group, net::PortBitmap ports);
  void remove_srule(net::Ipv4Address group);
  std::size_t srule_count() const noexcept { return group_table_.size(); }
  // Installed s-rule bitmap for `group`, or nullptr. Read access for state
  // diffing (the verify harness compares fabric contents against its oracle).
  const net::PortBitmap* srule(net::Ipv4Address group) const {
    const auto it = group_table_.find(group.value);
    return it != group_table_.end() ? &it->second : nullptr;
  }
  // Full table view, keyed by group address value (iteration order is
  // unspecified — digest builders must sort).
  const std::unordered_map<std::uint32_t, net::PortBitmap>& srules()
      const noexcept {
    return group_table_;
  }

  // Full pipeline for one received packet: emissions are appended to `arena`
  // as refcounted views over the incoming buffer (ForwardingElement).
  std::span<Emission> process(const net::PacketView& packet,
                              std::size_t ingress_port,
                              EmissionArena& arena) override;

  // Convenience wrapper for unit tests and tools: runs the pipeline on a
  // standalone Packet and materializes each emission into its own Packet.
  std::vector<OutputCopy> process(const net::Packet& packet);

  const SwitchStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = SwitchStats{}; }

 private:
  struct ParseResult {
    std::optional<elmo::UpstreamRule> upstream;  // this layer's u-rule
    std::optional<net::PortBitmap> matched;      // p-rule bitmap for this switch
    int matched_index = -1;      // index of the matched p-rule in its section
    bool matched_shared = false;  // matched p-rule lists >1 switch id
    std::optional<net::PortBitmap> default_rule;
    std::optional<net::PortBitmap> core_bitmap;  // core layer only
    std::vector<elmo::SectionExtent> sections;   // relative to elmo offset
    net::Ipv4Address outer_src;
    net::Ipv4Address outer_dst;
  };

  ParseResult parse(const net::PacketView& packet) const;

  // Bytes (from the start of the Elmo header) to drop so the copy starts at
  // the first section the receiver still needs.
  std::size_t pop_offset(const std::vector<elmo::SectionExtent>& sections,
                         elmo::SectionTag first_needed) const;

  // The one deep copy of the pipeline: outer header with the VXLAN
  // "Elmo present" flag cleared + payload, shared by every host-bound copy.
  net::PacketView strip_for_host(
      const net::PacketView& packet,
      const std::vector<elmo::SectionExtent>& sections) const;

  std::size_t downstream_ports() const noexcept;
  std::size_t upstream_ports() const noexcept;

  const topo::ClosTopology* topo_;
  elmo::HeaderCodec codec_;
  topo::Layer layer_;
  std::uint32_t id_;
  std::uint32_t match_id_;  // leaf id at leaves, pod id at spines
  std::size_t pick_uplink(std::uint64_t hash);

  std::unordered_map<std::uint32_t, net::PortBitmap> group_table_;
  SwitchStats stats_;
  bool legacy_ = false;
  bool down_ = false;
  MultipathMode multipath_mode_ = MultipathMode::kEcmp;
  std::vector<std::uint64_t> uplink_load_;
  EmissionArena compat_arena_;  // scratch for the Packet wrapper
};

}  // namespace elmo::dp
