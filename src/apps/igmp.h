// IGMP front-end: tenants keep speaking standard IP multicast.
//
// The paper's design keeps source routing "internal to the provider with
// tenants issuing standard IP multicast data packets" (§1) and joins/leaves
// arriving through a cloud API (§2). This module closes the loop for
// unmodified guests: VMs emit ordinary IGMPv2 Membership Reports / Leave
// Group messages; the hypervisor's IGMP agent intercepts them and translates
// them into Elmo controller calls — no IGMP chatter ever reaches the fabric
// (exactly the "chatty control plane" Elmo eliminates).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "elmo/controller.h"
#include "net/headers.h"

namespace elmo::apps {

// IGMPv2 message (RFC 2236): 8 bytes.
struct IgmpMessage {
  static constexpr std::size_t kSize = 8;

  enum class Type : std::uint8_t {
    kMembershipQuery = 0x11,
    kV2MembershipReport = 0x16,
    kLeaveGroup = 0x17,
  };

  Type type = Type::kV2MembershipReport;
  std::uint8_t max_response_time = 0;  // in 1/10 s, queries only
  net::Ipv4Address group;

  std::vector<std::uint8_t> serialize() const;  // checksum filled in
  // Throws std::invalid_argument on bad checksum or unknown type.
  static IgmpMessage parse(std::span<const std::uint8_t> data);
};

// Shared per-tenant directory: multicast address -> controller group id.
// Groups are created lazily on the first join to an address.
class IgmpDirectory {
 public:
  IgmpDirectory(elmo::Controller& controller, std::uint32_t tenant)
      : controller_{&controller}, tenant_{tenant} {}

  // Group id for `address`, creating an empty group on first use.
  elmo::GroupId group_for(net::Ipv4Address address);
  bool has_group(net::Ipv4Address address) const {
    return groups_.contains(address.value);
  }

  elmo::Controller& controller() noexcept { return *controller_; }
  std::uint32_t tenant() const noexcept { return tenant_; }

 private:
  elmo::Controller* controller_;
  std::uint32_t tenant_;
  std::unordered_map<std::uint32_t, elmo::GroupId> groups_;
};

// Per-host agent living next to the hypervisor switch.
class IgmpAgent {
 public:
  IgmpAgent(IgmpDirectory& directory, topo::HostId host)
      : directory_{&directory}, host_{host} {}

  struct Stats {
    std::size_t reports = 0;
    std::size_t leaves = 0;
    std::size_t duplicate_reports = 0;  // suppressed (already a member)
    std::size_t bad_messages = 0;
  };

  // A local VM handed the hypervisor an IGMP datagram. Returns true if the
  // message changed the controller's membership.
  bool handle_vm_message(std::uint32_t vm, std::span<const std::uint8_t> data);

  // Periodic general query (RFC 2236 §3): host-local only; returns the wire
  // message VMs would answer. Never touches the fabric.
  std::vector<std::uint8_t> general_query() const;

  bool is_member(std::uint32_t vm, net::Ipv4Address group) const;
  const Stats& stats() const noexcept { return stats_; }

 private:
  struct VmGroupKey {
    std::uint64_t value;
    bool operator==(const VmGroupKey&) const = default;
  };
  static std::uint64_t key(std::uint32_t vm, net::Ipv4Address group) {
    return (static_cast<std::uint64_t>(vm) << 32) | group.value;
  }

  IgmpDirectory* directory_;
  topo::HostId host_;
  std::unordered_map<std::uint64_t, bool> memberships_;  // key -> joined
  Stats stats_;
};

}  // namespace elmo::apps
