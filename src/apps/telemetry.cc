#include "apps/telemetry.h"

namespace elmo::apps {

TelemetrySystem::TelemetrySystem(sim::Fabric& fabric,
                                 elmo::Controller& controller,
                                 std::uint32_t tenant, topo::HostId agent,
                                 std::vector<topo::HostId> collectors)
    : fabric_{&fabric},
      controller_{&controller},
      agent_{agent},
      collectors_{std::move(collectors)} {
  std::vector<elmo::Member> members;
  members.push_back(elmo::Member{agent_, 0, elmo::MemberRole::kSender});
  for (std::size_t i = 0; i < collectors_.size(); ++i) {
    members.push_back(elmo::Member{collectors_[i],
                                   static_cast<std::uint32_t>(i + 1),
                                   elmo::MemberRole::kReceiver});
  }
  group_ = controller_->create_group(tenant, members);
  fabric_->install_group(*controller_, group_);
}

TelemetrySystem::~TelemetrySystem() {
  fabric_->uninstall_group(*controller_, group_);
  controller_->remove_group(group_);
}

TelemetryMetrics TelemetrySystem::run(bool use_elmo,
                                      const TelemetryConfig& config,
                                      std::size_t sample_count) {
  TelemetryMetrics metrics;
  metrics.collectors = collectors_.size();
  const auto group_addr = controller_->group(group_).address;
  fabric_->reset_link_stats();  // measure only this run's uplink bytes

  std::uint64_t agent_uplink_bytes = 0;
  for (std::size_t s = 0; s < sample_count; ++s) {
    if (use_elmo) {
      const auto result =
          fabric_->send(agent_, group_addr, config.sample_bytes);
      // One copy leaves the agent regardless of collector count; its size is
      // outer headers + Elmo header + payload.
      const sim::NodeRef agent_node{topo::Layer::kHost, agent_};
      const sim::NodeRef leaf_node{topo::Layer::kLeaf,
                                   fabric_->topology().leaf_of_host(agent_)};
      agent_uplink_bytes = fabric_->links().at({agent_node, leaf_node}).bytes;
      for (const auto collector : collectors_) {
        if (result.host_copies.contains(collector)) {
          ++metrics.datagrams_delivered;
        }
      }
    } else {
      for (const auto collector : collectors_) {
        const auto result =
            fabric_->send_unicast(agent_, collector, config.sample_bytes);
        if (result.host_copies.contains(collector)) {
          ++metrics.datagrams_delivered;
        }
      }
      const sim::NodeRef agent_node{topo::Layer::kHost, agent_};
      const sim::NodeRef leaf_node{topo::Layer::kLeaf,
                                   fabric_->topology().leaf_of_host(agent_)};
      agent_uplink_bytes = fabric_->links().at({agent_node, leaf_node}).bytes;
    }
  }

  if (sample_count > 0) {
    const double bytes_per_sample =
        static_cast<double>(agent_uplink_bytes) /
        static_cast<double>(sample_count);
    metrics.agent_egress_bps =
        bytes_per_sample * 8.0 * config.samples_per_second;
  }
  metrics.per_collector_ingress_bps =
      static_cast<double>(net::kOuterHeaderBytes + config.sample_bytes) * 8.0 *
      config.samples_per_second;
  return metrics;
}

}  // namespace elmo::apps
