#include "apps/reliable.h"

namespace elmo::apps {

ReliableMulticastSession::ReliableMulticastSession(sim::Fabric& fabric,
                                                   elmo::Controller& controller,
                                                   elmo::GroupId group,
                                                   topo::HostId source)
    : fabric_{&fabric},
      controller_{&controller},
      group_{group},
      source_{source} {
  for (const auto host : controller.group(group).receiver_hosts()) {
    if (host != source) receivers_.push_back(host);
  }
}

ReliableReport ReliableMulticastSession::publish(std::size_t messages,
                                                 std::size_t payload_bytes,
                                                 std::size_t max_rounds) {
  ReliableReport report;
  report.messages = messages;
  const auto address = controller_->group(group_).address;

  // received[host] = set of sequence numbers held.
  std::unordered_map<topo::HostId, std::unordered_set<std::size_t>> received;
  for (const auto host : receivers_) received[host] = {};

  // --- original data path: best-effort multicast ---------------------------
  for (std::size_t seq = 0; seq < messages; ++seq) {
    const auto result = fabric_->send(source_, address, payload_bytes);
    report.wire_bytes += result.total_wire_bytes;
    ++report.data_multicasts;
    for (const auto host : receivers_) {
      if (result.host_copies.contains(host)) received[host].insert(seq);
    }
  }

  // --- NAK / repair rounds --------------------------------------------------
  constexpr std::size_t kNakBytes = 32;  // seq-range request
  for (std::size_t round = 0; round < max_rounds; ++round) {
    bool any_missing = false;
    for (const auto host : receivers_) {
      std::vector<std::size_t> missing;
      for (std::size_t seq = 0; seq < messages; ++seq) {
        if (!received[host].contains(seq)) missing.push_back(seq);
      }
      if (missing.empty()) continue;
      any_missing = true;

      // One NAK per receiver per round (PGM aggregates ranges).
      const auto nak = fabric_->send_unicast(host, source_, kNakBytes);
      report.wire_bytes += nak.total_wire_bytes;
      ++report.naks;
      if (!nak.host_copies.contains(source_)) continue;  // NAK itself lost

      for (const auto seq : missing) {
        const auto repair =
            fabric_->send_unicast(source_, host, payload_bytes);
        report.wire_bytes += repair.total_wire_bytes;
        ++report.retransmissions;
        if (repair.host_copies.contains(host)) received[host].insert(seq);
      }
    }
    ++report.repair_rounds;
    if (!any_missing) break;
  }

  report.all_delivered = true;
  for (const auto host : receivers_) {
    if (received[host].size() != messages) report.all_delivered = false;
  }
  return report;
}

}  // namespace elmo::apps
