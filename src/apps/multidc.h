// Multi-datacenter multicast (paper §7): "the source hypervisor switch in
// Elmo can send a unicast packet to a hypervisor in the target datacenter,
// which will then multicast it using the group's p- and s-rules for that
// datacenter."
//
// Each datacenter runs its own fabric and controller; a multi-DC group is a
// collection of per-DC groups plus one designated relay host per DC. A send
// performs the local multicast, one WAN unicast per remote DC, and the
// relay's local re-multicast.
#pragma once

#include <cstdint>
#include <vector>

#include "elmo/controller.h"
#include "sim/fabric.h"

namespace elmo::apps {

struct Datacenter {
  sim::Fabric* fabric = nullptr;
  elmo::Controller* controller = nullptr;
};

class MultiDcGroup {
 public:
  // `members_per_dc[d]` are the member hosts inside datacenter d (every
  // member may send and receive). Each DC with members gets its own group
  // and the first member doubles as the WAN relay.
  MultiDcGroup(std::vector<Datacenter> dcs, std::uint32_t tenant,
               const std::vector<std::vector<topo::HostId>>& members_per_dc);
  ~MultiDcGroup();

  MultiDcGroup(const MultiDcGroup&) = delete;
  MultiDcGroup& operator=(const MultiDcGroup&) = delete;

  struct SendReport {
    std::size_t hosts_reached = 0;     // across all DCs, excluding sender
    std::size_t wan_unicasts = 0;      // inter-DC copies the source emitted
    std::uint64_t intra_dc_wire_bytes = 0;
    std::uint64_t wan_wire_bytes = 0;  // modelled: one WAN hop per copy
  };

  SendReport send(std::size_t src_dc, topo::HostId src,
                  std::size_t payload_bytes);

  std::size_t num_dcs() const noexcept { return dcs_.size(); }
  topo::HostId relay_of(std::size_t dc) const { return relays_.at(dc); }

 private:
  std::vector<Datacenter> dcs_;
  std::vector<std::vector<topo::HostId>> members_;
  std::vector<elmo::GroupId> groups_;   // per DC; kInvalid if no members
  std::vector<topo::HostId> relays_;

  static constexpr elmo::GroupId kInvalid = ~elmo::GroupId{0};
};

}  // namespace elmo::apps
