// PGM-style reliable multicast layered over Elmo (paper §7: "protocols like
// PGM and SRM may be layered on top of Elmo to support applications that
// require reliable delivery").
//
// The source multicasts sequenced data packets best-effort; receivers detect
// gaps and send NAKs (unicast) back to the source, which repairs them with
// unicast retransmissions. The session runs against the packet-level fabric
// with injected loss, so the recovery machinery is exercised end to end.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "elmo/controller.h"
#include "sim/fabric.h"

namespace elmo::apps {

struct ReliableReport {
  std::size_t messages = 0;
  std::size_t data_multicasts = 0;     // original transmissions
  std::size_t naks = 0;                // receiver->source repair requests
  std::size_t retransmissions = 0;     // source->receiver unicast repairs
  std::size_t repair_rounds = 0;
  bool all_delivered = false;
  std::uint64_t wire_bytes = 0;
};

class ReliableMulticastSession {
 public:
  // `group` must already exist in the controller and be installed into the
  // fabric; `source` must be a sending member.
  ReliableMulticastSession(sim::Fabric& fabric, elmo::Controller& controller,
                           elmo::GroupId group, topo::HostId source);

  // Publishes `messages` sequenced packets of `payload_bytes`, then runs
  // NAK/repair rounds until every receiver holds every sequence number or
  // `max_rounds` is exhausted.
  ReliableReport publish(std::size_t messages, std::size_t payload_bytes,
                         std::size_t max_rounds = 16);

 private:
  sim::Fabric* fabric_;
  elmo::Controller* controller_;
  elmo::GroupId group_;
  topo::HostId source_;
  std::vector<topo::HostId> receivers_;
};

}  // namespace elmo::apps
