// sFlow-style host telemetry over the fabric (paper §5.2.2).
//
// An agent exports periodic performance-metric datagrams to N collector
// nodes set up by different tenants/teams. With unicast the agent's egress
// bandwidth grows linearly in N; with Elmo it stays flat at one stream.
// The paper's numbers (370.4 Kbps at 64 collectors unicast vs a constant
// 5.8 Kbps with Elmo) imply a ~5.79 Kbps per-collector stream; the defaults
// below reproduce that stream rate exactly (5 samples/sec of 94-byte sFlow
// records + 50-byte VXLAN outer = 5.76 Kbps on the wire).
#pragma once

#include <cstdint>
#include <vector>

#include "elmo/controller.h"
#include "sim/fabric.h"

namespace elmo::apps {

struct TelemetryConfig {
  double samples_per_second = 5.0;
  std::size_t sample_bytes = 94;  // sFlow counter record payload
};

struct TelemetryMetrics {
  std::size_t collectors = 0;
  double agent_egress_bps = 0.0;
  double per_collector_ingress_bps = 0.0;
  std::size_t datagrams_delivered = 0;  // validated through the simulator
};

class TelemetrySystem {
 public:
  TelemetrySystem(sim::Fabric& fabric, elmo::Controller& controller,
                  std::uint32_t tenant, topo::HostId agent,
                  std::vector<topo::HostId> collectors);
  ~TelemetrySystem();

  TelemetrySystem(const TelemetrySystem&) = delete;
  TelemetrySystem& operator=(const TelemetrySystem&) = delete;

  // Exports `sample_count` datagrams through the fabric; converts the
  // observed per-datagram wire bytes at the agent's uplink into sustained
  // bandwidth at `config.samples_per_second`.
  TelemetryMetrics run(bool use_elmo, const TelemetryConfig& config,
                       std::size_t sample_count);

 private:
  sim::Fabric* fabric_;
  elmo::Controller* controller_;
  topo::HostId agent_;
  std::vector<topo::HostId> collectors_;
  elmo::GroupId group_;
};

}  // namespace elmo::apps
