// ZeroMQ-style publish-subscribe over the fabric (paper §5.2.1, Figure 6).
//
// The application is transport-agnostic: a publisher VM publishes messages
// to a topic backed either by per-subscriber unicast connections (how
// ZeroMQ-over-UDP runs in today's clouds) or by one Elmo multicast group.
// Packets really traverse the simulated fabric; throughput and CPU numbers
// then come from a calibrated host model (per-copy send cost, NIC rate),
// because wall-clock performance of the authors' testbed is not
// reproducible in simulation — the *shape* (unicast throughput collapsing
// as 1/N, Elmo flat; unicast CPU saturating, Elmo constant) is.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "elmo/controller.h"
#include "sim/fabric.h"

namespace elmo::apps {

enum class TransportMode : std::uint8_t { kUnicast, kElmo };

// Calibrated against the paper's testbed: a single-subscriber ZeroMQ
// publisher sustains 185K requests/sec (so ~5.4 us of CPU per unicast
// copy), while Elmo's single multicast send costs 4.9% CPU at the same
// rate (~0.26 us per message).
struct HostModel {
  double nic_bits_per_sec = 10e9;
  double unicast_copy_cost_sec = 1.0 / 185'000.0;
  double multicast_send_cost_sec = 0.049 / 185'000.0;
};

struct PubSubMetrics {
  std::size_t subscribers = 0;
  double throughput_rps = 0.0;          // deliverable request rate
  double publisher_cpu_fraction = 0.0;  // at that rate
  double publisher_egress_bps = 0.0;
  std::size_t copies_per_message = 0;
  std::size_t messages_delivered = 0;   // validated through the simulator
  std::size_t messages_sent = 0;
};

class PubSubSystem {
 public:
  // The publisher and subscribers are VMs of `tenant` on the given hosts.
  PubSubSystem(sim::Fabric& fabric, elmo::Controller& controller,
               std::uint32_t tenant, topo::HostId publisher,
               std::vector<topo::HostId> subscribers);
  ~PubSubSystem();

  PubSubSystem(const PubSubSystem&) = delete;
  PubSubSystem& operator=(const PubSubSystem&) = delete;

  // Publishes `sample_messages` of `message_bytes` through the fabric and
  // projects throughput/CPU with the host model at `offered_rps`.
  PubSubMetrics run(TransportMode mode, std::size_t message_bytes,
                    std::size_t sample_messages, const HostModel& model,
                    double offered_rps);

 private:
  sim::Fabric* fabric_;
  elmo::Controller* controller_;
  topo::HostId publisher_;
  std::vector<topo::HostId> subscribers_;
  elmo::GroupId group_;
};

}  // namespace elmo::apps
