#include "apps/igmp.h"

#include <stdexcept>

namespace elmo::apps {

std::vector<std::uint8_t> IgmpMessage::serialize() const {
  std::vector<std::uint8_t> out(kSize, 0);
  out[0] = static_cast<std::uint8_t>(type);
  out[1] = max_response_time;
  out[4] = static_cast<std::uint8_t>(group.value >> 24);
  out[5] = static_cast<std::uint8_t>(group.value >> 16);
  out[6] = static_cast<std::uint8_t>(group.value >> 8);
  out[7] = static_cast<std::uint8_t>(group.value);
  const auto csum = net::Ipv4Header::checksum(out);
  out[2] = static_cast<std::uint8_t>(csum >> 8);
  out[3] = static_cast<std::uint8_t>(csum & 0xff);
  return out;
}

IgmpMessage IgmpMessage::parse(std::span<const std::uint8_t> data) {
  if (data.size() < kSize) {
    throw std::invalid_argument{"IGMP: truncated message"};
  }
  if (net::Ipv4Header::checksum(data.first(kSize)) != 0) {
    throw std::invalid_argument{"IGMP: bad checksum"};
  }
  IgmpMessage msg;
  switch (data[0]) {
    case 0x11:
      msg.type = Type::kMembershipQuery;
      break;
    case 0x16:
      msg.type = Type::kV2MembershipReport;
      break;
    case 0x17:
      msg.type = Type::kLeaveGroup;
      break;
    default:
      throw std::invalid_argument{"IGMP: unknown type"};
  }
  msg.max_response_time = data[1];
  msg.group.value = (static_cast<std::uint32_t>(data[4]) << 24) |
                    (static_cast<std::uint32_t>(data[5]) << 16) |
                    (static_cast<std::uint32_t>(data[6]) << 8) | data[7];
  return msg;
}

elmo::GroupId IgmpDirectory::group_for(net::Ipv4Address address) {
  const auto it = groups_.find(address.value);
  if (it != groups_.end()) return it->second;
  // Lazily create the group; the tenant-chosen address is recorded in the
  // directory (the controller's internal address provides isolation, so
  // tenants can pick addresses independently of each other — paper Table 3,
  // "address-space isolation").
  const auto id = controller_->create_group(tenant_, {});
  groups_.emplace(address.value, id);
  return id;
}

bool IgmpAgent::handle_vm_message(std::uint32_t vm,
                                  std::span<const std::uint8_t> data) {
  IgmpMessage msg;
  try {
    msg = IgmpMessage::parse(data);
  } catch (const std::invalid_argument&) {
    ++stats_.bad_messages;
    return false;
  }
  if (!msg.group.is_multicast() &&
      msg.type != IgmpMessage::Type::kMembershipQuery) {
    ++stats_.bad_messages;
    return false;
  }

  switch (msg.type) {
    case IgmpMessage::Type::kV2MembershipReport: {
      ++stats_.reports;
      auto& joined = memberships_[key(vm, msg.group)];
      if (joined) {
        ++stats_.duplicate_reports;  // IGMP retransmits; controller sees one
        return false;
      }
      const auto id = directory_->group_for(msg.group);
      directory_->controller().join(
          id, elmo::Member{host_, vm, elmo::MemberRole::kReceiver});
      joined = true;
      return true;
    }
    case IgmpMessage::Type::kLeaveGroup: {
      ++stats_.leaves;
      auto& joined = memberships_[key(vm, msg.group)];
      if (!joined) return false;  // leave without join: ignore
      const auto id = directory_->group_for(msg.group);
      directory_->controller().leave(id, host_);
      joined = false;
      return true;
    }
    case IgmpMessage::Type::kMembershipQuery:
      return false;  // queries come from us, not VMs
  }
  return false;
}

std::vector<std::uint8_t> IgmpAgent::general_query() const {
  IgmpMessage query;
  query.type = IgmpMessage::Type::kMembershipQuery;
  query.max_response_time = 100;  // 10 s
  query.group = net::Ipv4Address{0};
  return query.serialize();
}

bool IgmpAgent::is_member(std::uint32_t vm, net::Ipv4Address group) const {
  const auto it = memberships_.find(key(vm, group));
  return it != memberships_.end() && it->second;
}

}  // namespace elmo::apps
