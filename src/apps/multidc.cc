#include "apps/multidc.h"

#include <stdexcept>

namespace elmo::apps {

MultiDcGroup::MultiDcGroup(
    std::vector<Datacenter> dcs, std::uint32_t tenant,
    const std::vector<std::vector<topo::HostId>>& members_per_dc)
    : dcs_{std::move(dcs)}, members_{members_per_dc} {
  if (dcs_.size() != members_.size()) {
    throw std::invalid_argument{"MultiDcGroup: dcs/members size mismatch"};
  }
  groups_.assign(dcs_.size(), kInvalid);
  relays_.assign(dcs_.size(), 0);
  for (std::size_t d = 0; d < dcs_.size(); ++d) {
    if (members_[d].empty()) continue;
    std::vector<elmo::Member> members;
    std::uint32_t vm = 0;
    for (const auto host : members_[d]) {
      members.push_back(elmo::Member{host, vm++, elmo::MemberRole::kBoth});
    }
    groups_[d] = dcs_[d].controller->create_group(tenant, members);
    dcs_[d].fabric->install_group(*dcs_[d].controller, groups_[d]);
    relays_[d] = members_[d].front();
  }
}

MultiDcGroup::~MultiDcGroup() {
  for (std::size_t d = 0; d < dcs_.size(); ++d) {
    if (groups_[d] == kInvalid) continue;
    dcs_[d].fabric->uninstall_group(*dcs_[d].controller, groups_[d]);
    dcs_[d].controller->remove_group(groups_[d]);
  }
}

MultiDcGroup::SendReport MultiDcGroup::send(std::size_t src_dc,
                                            topo::HostId src,
                                            std::size_t payload_bytes) {
  SendReport report;

  // Local multicast in the source DC.
  if (groups_.at(src_dc) != kInvalid) {
    const auto& controller = *dcs_[src_dc].controller;
    const auto result = dcs_[src_dc].fabric->send(
        src, controller.group(groups_[src_dc]).address, payload_bytes);
    report.intra_dc_wire_bytes += result.total_wire_bytes;
    for (const auto& [host, copies] : result.host_copies) {
      (void)copies;
      if (host != src) ++report.hosts_reached;
    }
  }

  // One WAN unicast per remote DC with members; the relay re-multicasts.
  for (std::size_t d = 0; d < dcs_.size(); ++d) {
    if (d == src_dc || groups_[d] == kInvalid) continue;
    ++report.wan_unicasts;
    report.wan_wire_bytes += net::kOuterHeaderBytes + payload_bytes;

    const auto relay = relays_[d];
    const auto& controller = *dcs_[d].controller;
    const auto result = dcs_[d].fabric->send(
        relay, controller.group(groups_[d]).address, payload_bytes);
    report.intra_dc_wire_bytes += result.total_wire_bytes;
    ++report.hosts_reached;  // the relay itself received the WAN copy
    for (const auto& [host, copies] : result.host_copies) {
      (void)copies;
      if (host != relay) ++report.hosts_reached;
    }
  }
  return report;
}

}  // namespace elmo::apps
