#include "apps/pubsub.h"

#include <algorithm>

#include "net/headers.h"

namespace elmo::apps {

PubSubSystem::PubSubSystem(sim::Fabric& fabric, elmo::Controller& controller,
                           std::uint32_t tenant, topo::HostId publisher,
                           std::vector<topo::HostId> subscribers)
    : fabric_{&fabric},
      controller_{&controller},
      publisher_{publisher},
      subscribers_{std::move(subscribers)} {
  std::vector<elmo::Member> members;
  members.push_back(elmo::Member{publisher_, 0, elmo::MemberRole::kSender});
  for (std::size_t i = 0; i < subscribers_.size(); ++i) {
    members.push_back(elmo::Member{subscribers_[i],
                                   static_cast<std::uint32_t>(i + 1),
                                   elmo::MemberRole::kReceiver});
  }
  group_ = controller_->create_group(tenant, members);
  fabric_->install_group(*controller_, group_);
}

PubSubSystem::~PubSubSystem() {
  fabric_->uninstall_group(*controller_, group_);
  controller_->remove_group(group_);
}

PubSubMetrics PubSubSystem::run(TransportMode mode, std::size_t message_bytes,
                                std::size_t sample_messages,
                                const HostModel& model, double offered_rps) {
  PubSubMetrics metrics;
  metrics.subscribers = subscribers_.size();
  const auto group_addr = controller_->group(group_).address;

  // --- drive real packets through the fabric -------------------------------
  for (std::size_t m = 0; m < sample_messages; ++m) {
    switch (mode) {
      case TransportMode::kElmo: {
        const auto result = fabric_->send(publisher_, group_addr, message_bytes);
        metrics.messages_sent += 1;
        std::size_t reached = 0;
        for (const auto sub : subscribers_) {
          if (result.host_copies.contains(sub)) ++reached;
        }
        metrics.messages_delivered += reached == subscribers_.size() ? 1 : 0;
        break;
      }
      case TransportMode::kUnicast: {
        std::size_t reached = 0;
        for (const auto sub : subscribers_) {
          const auto result =
              fabric_->send_unicast(publisher_, sub, message_bytes);
          ++metrics.messages_sent;
          if (result.host_copies.contains(sub)) ++reached;
        }
        metrics.messages_delivered += reached == subscribers_.size() ? 1 : 0;
        break;
      }
    }
  }

  // --- project rates with the calibrated host model ------------------------
  metrics.copies_per_message =
      mode == TransportMode::kUnicast ? subscribers_.size() : 1;
  const double per_copy_cost = mode == TransportMode::kUnicast
                                   ? model.unicast_copy_cost_sec
                                   : model.multicast_send_cost_sec;
  const double wire_bits =
      static_cast<double>((net::kOuterHeaderBytes + message_bytes) * 8);

  const double copies = static_cast<double>(metrics.copies_per_message);
  const double cpu_bound_rps = 1.0 / (copies * per_copy_cost);
  const double nic_bound_rps = model.nic_bits_per_sec / (copies * wire_bits);
  metrics.throughput_rps =
      std::min({offered_rps, cpu_bound_rps, nic_bound_rps});
  metrics.publisher_cpu_fraction =
      std::min(1.0, metrics.throughput_rps * copies * per_copy_cost);
  metrics.publisher_egress_bps = metrics.throughput_rps * copies * wire_bits;
  return metrics;
}

}  // namespace elmo::apps
