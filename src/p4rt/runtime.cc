#include "p4rt/runtime.h"

#include <limits>
#include <map>
#include <stdexcept>

namespace elmo::p4rt {
namespace {

constexpr std::uint32_t kMagic = 0x5034454c;  // "P4EL"
constexpr std::size_t kU16Max = 0xffff;
constexpr std::size_t kU32Max = 0xffffffff;

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  put_u16(out, static_cast<std::uint16_t>(v >> 16));
  put_u16(out, static_cast<std::uint16_t>(v));
}
// Count field: u16 in standard frames, u32 in extended frames. The caller
// guarantees the value fits (frame selection in encode); the checks here are
// a backstop against silent truncation ever reappearing.
void put_count(std::vector<std::uint8_t>& out, std::size_t v, bool extended) {
  if (extended) {
    if (v > kU32Max) throw std::length_error{"p4rt: count exceeds u32"};
    put_u32(out, static_cast<std::uint32_t>(v));
  } else {
    if (v > kU16Max) throw std::length_error{"p4rt: count exceeds u16"};
    put_u16(out, static_cast<std::uint16_t>(v));
  }
}

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_{data} {}
  std::uint8_t u8() {
    need(1);
    return data_[at_++];
  }
  std::uint16_t u16() {
    need(2);
    const auto v = static_cast<std::uint16_t>((data_[at_] << 8) |
                                              data_[at_ + 1]);
    at_ += 2;
    return v;
  }
  std::uint32_t u32() {
    const auto hi = u16();
    return (static_cast<std::uint32_t>(hi) << 16) | u16();
  }
  std::uint32_t count(bool extended) { return extended ? u32() : u16(); }
  std::span<const std::uint8_t> bytes(std::size_t n) {
    need(n);
    const auto view = data_.subspan(at_, n);
    at_ += n;
    return view;
  }
  bool done() const noexcept { return at_ == data_.size(); }
  std::size_t position() const noexcept { return at_; }
  std::size_t remaining() const noexcept { return data_.size() - at_; }

 private:
  void need(std::size_t n) {
    if (at_ + n > data_.size()) {
      throw std::invalid_argument{"p4rt: truncated message"};
    }
  }
  std::span<const std::uint8_t> data_;
  std::size_t at_ = 0;
};

std::size_t bitmap_bytes(std::size_t ports) { return (ports + 7) / 8; }

void encode_bitmap(std::vector<std::uint8_t>& out, const net::PortBitmap& ports,
                   bool extended) {
  put_count(out, ports.size(), extended);
  std::uint8_t byte = 0;
  for (std::size_t p = 0; p < ports.size(); ++p) {
    if (ports.test(p)) byte |= static_cast<std::uint8_t>(1u << (p % 8));
    if (p % 8 == 7 || p + 1 == ports.size()) {
      out.push_back(byte);
      byte = 0;
    }
  }
}

net::PortBitmap decode_bitmap(Reader& in, bool extended) {
  const std::size_t size = in.count(extended);
  // Validate the advertised width against the actual payload BEFORE sizing
  // the bitmap, so a hostile count cannot trigger a huge allocation.
  if (bitmap_bytes(size) > in.remaining()) {
    throw std::invalid_argument{"p4rt: truncated message"};
  }
  net::PortBitmap ports{size};
  const auto bytes = in.bytes(bitmap_bytes(size));
  for (std::size_t p = 0; p < size; ++p) {
    if ((bytes[p / 8] >> (p % 8)) & 1) ports.set(p);
  }
  return ports;
}

// Exact body size of `u` when encoded, and whether it needs the extended
// frame (any count beyond u16, or a body beyond the u16 length field).
struct FrameChoice {
  std::size_t body_size = 0;
  bool extended = false;
};

FrameChoice choose_frame(const Update& u) {
  auto body_size = [](const Update& upd, bool ext) -> std::size_t {
    const std::size_t c = ext ? 4 : 2;  // width of one count field
    switch (upd.kind) {
      case UpdateKind::kHypervisorFlowAdd:
        return 12 + c + 4 * upd.local_vms.size() + c + upd.elmo_header.size();
      case UpdateKind::kHypervisorFlowDel:
        return 8;
      case UpdateKind::kSRuleAdd:
        return 9 + c + bitmap_bytes(upd.ports.size());
      case UpdateKind::kSRuleDel:
        return 9;
    }
    throw std::invalid_argument{"p4rt: unknown update kind"};
  };
  FrameChoice choice;
  choice.body_size = body_size(u, /*ext=*/false);
  const bool counts_overflow = u.local_vms.size() > kU16Max ||
                               u.elmo_header.size() > kU16Max ||
                               u.ports.size() > kU16Max;
  if (counts_overflow || choice.body_size > kU16Max) {
    choice.extended = true;
    choice.body_size = body_size(u, /*ext=*/true);
    if (u.local_vms.size() > kU32Max || u.elmo_header.size() > kU32Max ||
        u.ports.size() > kU32Max || choice.body_size > kU32Max) {
      throw std::length_error{"p4rt: message too large"};
    }
  }
  return choice;
}

}  // namespace

std::vector<Update> compile_install(const Controller& controller,
                                    elmo::GroupId group) {
  const auto& g = controller.group(group);
  std::vector<Update> updates;

  // One flow per host, merged across co-located members (mirrors
  // Fabric::install_group): a per-member update stream would overwrite the
  // host's flow on apply, dropping the earlier member's local VM (and its
  // header template) whenever two VMs of the group share a host.
  std::map<topo::HostId, Update> flows;
  for (const auto& member : g.members) {
    const auto [it, inserted] = flows.try_emplace(member.host);
    auto& u = it->second;
    if (inserted) {
      u.kind = UpdateKind::kHypervisorFlowAdd;
      u.host = member.host;
      u.group = g.address;
      u.vni = g.tenant;
    }
    if (can_receive(member.role)) u.local_vms.push_back(member.vm);
    if (can_send(member.role) && u.elmo_header.empty()) {
      u.elmo_header = controller.header_for(group, member.host);
    }
  }
  for (auto& [host, u] : flows) {
    (void)host;
    updates.push_back(std::move(u));
  }
  for (const auto& [leaf, bitmap] : g.encoding.leaf.s_rules) {
    Update u;
    u.kind = UpdateKind::kSRuleAdd;
    u.layer = topo::Layer::kLeaf;
    u.switch_id = leaf;
    u.group = g.address;
    u.ports = bitmap;
    updates.push_back(std::move(u));
  }
  const auto& t = controller.topology();
  for (const auto& [pod, bitmap] : g.encoding.spine.s_rules) {
    for (std::size_t plane = 0; plane < t.params().spines_per_pod; ++plane) {
      Update u;
      u.kind = UpdateKind::kSRuleAdd;
      u.layer = topo::Layer::kSpine;
      u.switch_id = t.spine_at(pod, plane);
      u.group = g.address;
      u.ports = bitmap;
      updates.push_back(std::move(u));
    }
  }
  return updates;
}

std::vector<Update> compile_uninstall(const Controller& controller,
                                      elmo::GroupId group) {
  auto updates = compile_install(controller, group);
  for (auto& u : updates) {
    switch (u.kind) {
      case UpdateKind::kHypervisorFlowAdd:
        u.kind = UpdateKind::kHypervisorFlowDel;
        u.local_vms.clear();
        u.elmo_header.clear();
        break;
      case UpdateKind::kSRuleAdd:
        u.kind = UpdateKind::kSRuleDel;
        u.ports = net::PortBitmap{};
        break;
      default:
        break;
    }
  }
  return updates;
}

std::vector<std::uint8_t> encode(std::span<const Update> updates) {
  std::vector<std::uint8_t> out;
  put_u32(out, kMagic);
  put_u32(out, static_cast<std::uint32_t>(updates.size()));
  std::vector<std::uint8_t> body;
  for (const auto& u : updates) {
    const auto frame = choose_frame(u);
    body.clear();
    body.reserve(frame.body_size);
    switch (u.kind) {
      case UpdateKind::kHypervisorFlowAdd:
        put_u32(body, u.host);
        put_u32(body, u.group.value);
        put_u32(body, u.vni);
        put_count(body, u.local_vms.size(), frame.extended);
        for (const auto vm : u.local_vms) put_u32(body, vm);
        put_count(body, u.elmo_header.size(), frame.extended);
        body.insert(body.end(), u.elmo_header.begin(), u.elmo_header.end());
        break;
      case UpdateKind::kHypervisorFlowDel:
        put_u32(body, u.host);
        put_u32(body, u.group.value);
        break;
      case UpdateKind::kSRuleAdd:
        body.push_back(static_cast<std::uint8_t>(u.layer));
        put_u32(body, u.switch_id);
        put_u32(body, u.group.value);
        encode_bitmap(body, u.ports, frame.extended);
        break;
      case UpdateKind::kSRuleDel:
        body.push_back(static_cast<std::uint8_t>(u.layer));
        put_u32(body, u.switch_id);
        put_u32(body, u.group.value);
        break;
    }
    if (body.size() != frame.body_size) {
      throw std::logic_error{"p4rt: frame size accounting bug"};
    }
    out.push_back(static_cast<std::uint8_t>(u.kind) |
                  (frame.extended ? kExtendedFrameBit : 0));
    if (frame.extended) {
      put_u32(out, static_cast<std::uint32_t>(body.size()));
    } else {
      put_u16(out, static_cast<std::uint16_t>(body.size()));
    }
    out.insert(out.end(), body.begin(), body.end());
  }
  return out;
}

std::vector<Update> decode(std::span<const std::uint8_t> wire) {
  Reader in{wire};
  if (in.u32() != kMagic) throw std::invalid_argument{"p4rt: bad magic"};
  const auto count = in.u32();
  // Every message occupies at least 3 bytes (kind + u16 length), so an
  // advertised count beyond remaining/3 cannot be honest; reject it before
  // reserving storage for it.
  if (count > in.remaining() / 3) {
    throw std::invalid_argument{"p4rt: implausible batch count"};
  }
  std::vector<Update> updates;
  updates.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto wire_kind = in.u8();
    const bool extended = (wire_kind & kExtendedFrameBit) != 0;
    const auto kind = static_cast<std::uint8_t>(wire_kind & ~kExtendedFrameBit);
    const std::size_t length = extended ? in.u32() : in.u16();
    if (length > in.remaining()) {
      throw std::invalid_argument{"p4rt: truncated message"};
    }
    const auto body_start = in.position();
    Update u;
    switch (kind) {
      case 1: {
        u.kind = UpdateKind::kHypervisorFlowAdd;
        u.host = in.u32();
        u.group.value = in.u32();
        u.vni = in.u32();
        const std::uint32_t vm_count = in.count(extended);
        if (static_cast<std::size_t>(vm_count) * 4 > in.remaining()) {
          throw std::invalid_argument{"p4rt: truncated message"};
        }
        u.local_vms.reserve(vm_count);
        for (std::uint32_t v = 0; v < vm_count; ++v) {
          u.local_vms.push_back(in.u32());
        }
        const std::uint32_t header_len = in.count(extended);
        const auto view = in.bytes(header_len);
        u.elmo_header.assign(view.begin(), view.end());
        break;
      }
      case 2:
        u.kind = UpdateKind::kHypervisorFlowDel;
        u.host = in.u32();
        u.group.value = in.u32();
        break;
      case 3:
        u.kind = UpdateKind::kSRuleAdd;
        u.layer = static_cast<topo::Layer>(in.u8());
        u.switch_id = in.u32();
        u.group.value = in.u32();
        u.ports = decode_bitmap(in, extended);
        break;
      case 4:
        u.kind = UpdateKind::kSRuleDel;
        u.layer = static_cast<topo::Layer>(in.u8());
        u.switch_id = in.u32();
        u.group.value = in.u32();
        break;
      default:
        throw std::invalid_argument{"p4rt: unknown message kind"};
    }
    if (in.position() - body_start != length) {
      throw std::invalid_argument{"p4rt: length mismatch"};
    }
    updates.push_back(std::move(u));
  }
  if (!in.done()) throw std::invalid_argument{"p4rt: trailing bytes"};
  return updates;
}

void apply_update(sim::Fabric& fabric, const Update& u) {
  switch (u.kind) {
    case UpdateKind::kHypervisorFlowAdd: {
      dp::HypervisorSwitch::GroupFlow flow;
      flow.vni = u.vni;
      flow.local_vms = u.local_vms;
      flow.elmo_header = u.elmo_header;
      fabric.hypervisor(u.host).install_flow(u.group, std::move(flow));
      break;
    }
    case UpdateKind::kHypervisorFlowDel:
      fabric.hypervisor(u.host).remove_flow(u.group);
      break;
    case UpdateKind::kSRuleAdd:
      if (u.layer == topo::Layer::kLeaf) {
        fabric.leaf(u.switch_id).install_srule(u.group, u.ports);
      } else if (u.layer == topo::Layer::kSpine) {
        fabric.spine(u.switch_id).install_srule(u.group, u.ports);
      } else {
        throw std::invalid_argument{"p4rt: s-rule at unsupported layer"};
      }
      break;
    case UpdateKind::kSRuleDel:
      if (u.layer == topo::Layer::kLeaf) {
        fabric.leaf(u.switch_id).remove_srule(u.group);
      } else if (u.layer == topo::Layer::kSpine) {
        fabric.spine(u.switch_id).remove_srule(u.group);
      } else {
        throw std::invalid_argument{"p4rt: s-rule at unsupported layer"};
      }
      break;
  }
}

void apply_updates(sim::Fabric& fabric, std::span<const Update> updates) {
  for (const auto& u : updates) apply_update(fabric, u);
}

std::size_t install_via_channel(const Controller& controller,
                                elmo::GroupId group, sim::Fabric& fabric) {
  const auto wire = encode(compile_install(controller, group));
  apply_updates(fabric, decode(wire));
  return wire.size();
}

}  // namespace elmo::p4rt
