#include "p4rt/runtime.h"

#include <stdexcept>

namespace elmo::p4rt {
namespace {

constexpr std::uint32_t kMagic = 0x5034454c;  // "P4EL"

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  put_u16(out, static_cast<std::uint16_t>(v >> 16));
  put_u16(out, static_cast<std::uint16_t>(v));
}

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_{data} {}
  std::uint8_t u8() {
    need(1);
    return data_[at_++];
  }
  std::uint16_t u16() {
    need(2);
    const auto v = static_cast<std::uint16_t>((data_[at_] << 8) |
                                              data_[at_ + 1]);
    at_ += 2;
    return v;
  }
  std::uint32_t u32() {
    const auto hi = u16();
    return (static_cast<std::uint32_t>(hi) << 16) | u16();
  }
  std::span<const std::uint8_t> bytes(std::size_t n) {
    need(n);
    const auto view = data_.subspan(at_, n);
    at_ += n;
    return view;
  }
  bool done() const noexcept { return at_ == data_.size(); }
  std::size_t position() const noexcept { return at_; }

 private:
  void need(std::size_t n) {
    if (at_ + n > data_.size()) {
      throw std::invalid_argument{"p4rt: truncated message"};
    }
  }
  std::span<const std::uint8_t> data_;
  std::size_t at_ = 0;
};

void encode_bitmap(std::vector<std::uint8_t>& out,
                   const net::PortBitmap& ports) {
  put_u16(out, static_cast<std::uint16_t>(ports.size()));
  std::uint8_t byte = 0;
  for (std::size_t p = 0; p < ports.size(); ++p) {
    if (ports.test(p)) byte |= static_cast<std::uint8_t>(1u << (p % 8));
    if (p % 8 == 7 || p + 1 == ports.size()) {
      out.push_back(byte);
      byte = 0;
    }
  }
}

net::PortBitmap decode_bitmap(Reader& in) {
  const auto size = in.u16();
  net::PortBitmap ports{size};
  const auto bytes = in.bytes((size + 7) / 8);
  for (std::size_t p = 0; p < size; ++p) {
    if ((bytes[p / 8] >> (p % 8)) & 1) ports.set(p);
  }
  return ports;
}

}  // namespace

std::vector<Update> compile_install(const Controller& controller,
                                    elmo::GroupId group) {
  const auto& g = controller.group(group);
  std::vector<Update> updates;

  for (const auto& member : g.members) {
    Update u;
    u.kind = UpdateKind::kHypervisorFlowAdd;
    u.host = member.host;
    u.group = g.address;
    u.vni = g.tenant;
    if (can_receive(member.role)) u.local_vms.push_back(member.vm);
    if (can_send(member.role)) {
      u.elmo_header = controller.header_for(group, member.host);
    }
    updates.push_back(std::move(u));
  }
  for (const auto& [leaf, bitmap] : g.encoding.leaf.s_rules) {
    Update u;
    u.kind = UpdateKind::kSRuleAdd;
    u.layer = topo::Layer::kLeaf;
    u.switch_id = leaf;
    u.group = g.address;
    u.ports = bitmap;
    updates.push_back(std::move(u));
  }
  const auto& t = controller.topology();
  for (const auto& [pod, bitmap] : g.encoding.spine.s_rules) {
    for (std::size_t plane = 0; plane < t.params().spines_per_pod; ++plane) {
      Update u;
      u.kind = UpdateKind::kSRuleAdd;
      u.layer = topo::Layer::kSpine;
      u.switch_id = t.spine_at(pod, plane);
      u.group = g.address;
      u.ports = bitmap;
      updates.push_back(std::move(u));
    }
  }
  return updates;
}

std::vector<Update> compile_uninstall(const Controller& controller,
                                      elmo::GroupId group) {
  auto updates = compile_install(controller, group);
  for (auto& u : updates) {
    switch (u.kind) {
      case UpdateKind::kHypervisorFlowAdd:
        u.kind = UpdateKind::kHypervisorFlowDel;
        u.local_vms.clear();
        u.elmo_header.clear();
        break;
      case UpdateKind::kSRuleAdd:
        u.kind = UpdateKind::kSRuleDel;
        u.ports = net::PortBitmap{};
        break;
      default:
        break;
    }
  }
  return updates;
}

std::vector<std::uint8_t> encode(std::span<const Update> updates) {
  std::vector<std::uint8_t> out;
  put_u32(out, kMagic);
  put_u32(out, static_cast<std::uint32_t>(updates.size()));
  for (const auto& u : updates) {
    std::vector<std::uint8_t> body;
    switch (u.kind) {
      case UpdateKind::kHypervisorFlowAdd:
        put_u32(body, u.host);
        put_u32(body, u.group.value);
        put_u32(body, u.vni);
        put_u16(body, static_cast<std::uint16_t>(u.local_vms.size()));
        for (const auto vm : u.local_vms) put_u32(body, vm);
        put_u16(body, static_cast<std::uint16_t>(u.elmo_header.size()));
        body.insert(body.end(), u.elmo_header.begin(), u.elmo_header.end());
        break;
      case UpdateKind::kHypervisorFlowDel:
        put_u32(body, u.host);
        put_u32(body, u.group.value);
        break;
      case UpdateKind::kSRuleAdd:
        body.push_back(static_cast<std::uint8_t>(u.layer));
        put_u32(body, u.switch_id);
        put_u32(body, u.group.value);
        encode_bitmap(body, u.ports);
        break;
      case UpdateKind::kSRuleDel:
        body.push_back(static_cast<std::uint8_t>(u.layer));
        put_u32(body, u.switch_id);
        put_u32(body, u.group.value);
        break;
    }
    out.push_back(static_cast<std::uint8_t>(u.kind));
    if (body.size() > 0xffff) {
      throw std::length_error{"p4rt: message too large"};
    }
    put_u16(out, static_cast<std::uint16_t>(body.size()));
    out.insert(out.end(), body.begin(), body.end());
  }
  return out;
}

std::vector<Update> decode(std::span<const std::uint8_t> wire) {
  Reader in{wire};
  if (in.u32() != kMagic) throw std::invalid_argument{"p4rt: bad magic"};
  const auto count = in.u32();
  std::vector<Update> updates;
  updates.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto kind = in.u8();
    const auto length = in.u16();
    const auto body_start = in.position();
    Update u;
    switch (kind) {
      case 1: {
        u.kind = UpdateKind::kHypervisorFlowAdd;
        u.host = in.u32();
        u.group.value = in.u32();
        u.vni = in.u32();
        const auto vm_count = in.u16();
        for (std::uint16_t v = 0; v < vm_count; ++v) {
          u.local_vms.push_back(in.u32());
        }
        const auto header_len = in.u16();
        const auto view = in.bytes(header_len);
        u.elmo_header.assign(view.begin(), view.end());
        break;
      }
      case 2:
        u.kind = UpdateKind::kHypervisorFlowDel;
        u.host = in.u32();
        u.group.value = in.u32();
        break;
      case 3:
        u.kind = UpdateKind::kSRuleAdd;
        u.layer = static_cast<topo::Layer>(in.u8());
        u.switch_id = in.u32();
        u.group.value = in.u32();
        u.ports = decode_bitmap(in);
        break;
      case 4:
        u.kind = UpdateKind::kSRuleDel;
        u.layer = static_cast<topo::Layer>(in.u8());
        u.switch_id = in.u32();
        u.group.value = in.u32();
        break;
      default:
        throw std::invalid_argument{"p4rt: unknown message kind"};
    }
    if (in.position() - body_start != length) {
      throw std::invalid_argument{"p4rt: length mismatch"};
    }
    updates.push_back(std::move(u));
  }
  if (!in.done()) throw std::invalid_argument{"p4rt: trailing bytes"};
  return updates;
}

void apply_updates(sim::Fabric& fabric, std::span<const Update> updates) {
  for (const auto& u : updates) {
    switch (u.kind) {
      case UpdateKind::kHypervisorFlowAdd: {
        dp::HypervisorSwitch::GroupFlow flow;
        flow.vni = u.vni;
        flow.local_vms = u.local_vms;
        flow.elmo_header = u.elmo_header;
        fabric.hypervisor(u.host).install_flow(u.group, std::move(flow));
        break;
      }
      case UpdateKind::kHypervisorFlowDel:
        fabric.hypervisor(u.host).remove_flow(u.group);
        break;
      case UpdateKind::kSRuleAdd:
        if (u.layer == topo::Layer::kLeaf) {
          fabric.leaf(u.switch_id).install_srule(u.group, u.ports);
        } else if (u.layer == topo::Layer::kSpine) {
          fabric.spine(u.switch_id).install_srule(u.group, u.ports);
        } else {
          throw std::invalid_argument{"p4rt: s-rule at unsupported layer"};
        }
        break;
      case UpdateKind::kSRuleDel:
        if (u.layer == topo::Layer::kLeaf) {
          fabric.leaf(u.switch_id).remove_srule(u.group);
        } else if (u.layer == topo::Layer::kSpine) {
          fabric.spine(u.switch_id).remove_srule(u.group);
        } else {
          throw std::invalid_argument{"p4rt: s-rule at unsupported layer"};
        }
        break;
    }
  }
}

std::size_t install_via_channel(const Controller& controller,
                                elmo::GroupId group, sim::Fabric& fabric) {
  const auto wire = encode(compile_install(controller, group));
  apply_updates(fabric, decode(wire));
  return wire.size();
}

}  // namespace elmo::p4rt
