// P4Runtime-style control channel (paper §2: the controller "uses a control
// interface (like P4Runtime) to install match-action rules in the switches
// at run time").
//
// Rule updates are serialized into framed, self-describing binary messages
// so that the controller and the switches can live in different processes
// (as they do in a real deployment). A RuleChannel decodes the stream and
// applies it to the packet-level fabric; tests verify that driving the data
// plane exclusively through the wire protocol reproduces direct
// installation byte-for-byte.
//
// Message framing (big-endian):
//   batch   := magic(u32 "P4EL") count(u32) message*
//   message := kind(u8) length(u16) body
//   kinds:
//     1 HYPERVISOR_FLOW_ADD    host(u32) group(u32) vni(u32)
//                              vm_count(u16) vm*u32
//                              header_len(u16) header bytes
//     2 HYPERVISOR_FLOW_DEL    host(u32) group(u32)
//     3 SRULE_ADD              layer(u8) switch(u32) group(u32)
//                              port_count(u16) bitmap bytes (LSB-first words)
//     4 SRULE_DEL              layer(u8) switch(u32) group(u32)
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "elmo/controller.h"
#include "sim/fabric.h"

namespace elmo::p4rt {

enum class UpdateKind : std::uint8_t {
  kHypervisorFlowAdd = 1,
  kHypervisorFlowDel = 2,
  kSRuleAdd = 3,
  kSRuleDel = 4,
};

struct Update {
  UpdateKind kind = UpdateKind::kHypervisorFlowAdd;
  // Hypervisor fields.
  topo::HostId host = 0;
  std::uint32_t vni = 0;
  std::vector<std::uint32_t> local_vms;
  std::vector<std::uint8_t> elmo_header;
  // Network-switch fields.
  topo::Layer layer = topo::Layer::kLeaf;
  std::uint32_t switch_id = 0;
  net::PortBitmap ports;
  // Common.
  net::Ipv4Address group;

  bool operator==(const Update&) const = default;
};

// Compiles the full installation of `group` into an update batch (what the
// controller would push when the group is created or refreshed).
std::vector<Update> compile_install(const Controller& controller,
                                    elmo::GroupId group);
std::vector<Update> compile_uninstall(const Controller& controller,
                                      elmo::GroupId group);

// Wire codec.
std::vector<std::uint8_t> encode(std::span<const Update> updates);
// Throws std::invalid_argument on malformed input.
std::vector<Update> decode(std::span<const std::uint8_t> wire);

// Applies a decoded batch to the fabric (the "switch side" of the channel).
// (Named apply_updates to avoid ADL collisions with std::apply.)
void apply_updates(sim::Fabric& fabric, std::span<const Update> updates);

// Convenience: controller -> wire -> fabric in one call, returning the
// number of wire bytes that crossed the channel.
std::size_t install_via_channel(const Controller& controller,
                                elmo::GroupId group, sim::Fabric& fabric);

}  // namespace elmo::p4rt
