// P4Runtime-style control channel (paper §2: the controller "uses a control
// interface (like P4Runtime) to install match-action rules in the switches
// at run time").
//
// Rule updates are serialized into framed, self-describing binary messages
// so that the controller and the switches can live in different processes
// (as they do in a real deployment). A RuleChannel decodes the stream and
// applies it to the packet-level fabric; tests verify that driving the data
// plane exclusively through the wire protocol reproduces direct
// installation byte-for-byte.
//
// Message framing (big-endian):
//   batch   := magic(u32 "P4EL") count(u32) message*
//   message := kind(u8) length(u16) body            -- standard frame
//            | kind|0x80(u8) length(u32) body       -- extended frame (v2)
//   kinds:
//     1 HYPERVISOR_FLOW_ADD    host(u32) group(u32) vni(u32)
//                              vm_count(u16) vm*u32
//                              header_len(u16) header bytes
//     2 HYPERVISOR_FLOW_DEL    host(u32) group(u32)
//     3 SRULE_ADD              layer(u8) switch(u32) group(u32)
//                              port_count(u16) bitmap bytes (LSB-first words)
//     4 SRULE_DEL              layer(u8) switch(u32) group(u32)
//
// Extended frames (v2): a message whose body or embedded counts exceed the
// 16-bit fields — e.g. a HYPERVISOR_FLOW_ADD for a host running more than
// ~16K member VMs of one group — sets the high bit of the kind byte, carries
// a u32 length, and widens every count field in the body (vm_count,
// header_len, port_count) to u32. The encoder picks the extended frame only
// when the standard one cannot represent the message, so v1 streams are
// byte-identical to before and any v1 stream remains decodable; counts are
// validated before narrowing casts instead of silently truncated.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "elmo/controller.h"
#include "sim/fabric.h"

namespace elmo::p4rt {

enum class UpdateKind : std::uint8_t {
  kHypervisorFlowAdd = 1,
  kHypervisorFlowDel = 2,
  kSRuleAdd = 3,
  kSRuleDel = 4,
};

// High bit of the wire kind byte: the frame carries a u32 length and u32
// count fields (see file header).
inline constexpr std::uint8_t kExtendedFrameBit = 0x80;

struct Update {
  UpdateKind kind = UpdateKind::kHypervisorFlowAdd;
  // Hypervisor fields.
  topo::HostId host = 0;
  std::uint32_t vni = 0;
  std::vector<std::uint32_t> local_vms;
  std::vector<std::uint8_t> elmo_header;
  // Network-switch fields.
  topo::Layer layer = topo::Layer::kLeaf;
  std::uint32_t switch_id = 0;
  net::PortBitmap ports;
  // Common.
  net::Ipv4Address group;

  bool operator==(const Update&) const = default;
};

// Compiles the full installation of `group` into an update batch (what the
// controller would push when the group is created or refreshed). Flows are
// merged per host across co-located members — one HYPERVISOR_FLOW_ADD per
// distinct member host, exactly mirroring Fabric::install_group (a
// per-member update stream would overwrite the host's flow and drop the
// earlier members' local VMs).
std::vector<Update> compile_install(const Controller& controller,
                                    elmo::GroupId group);
std::vector<Update> compile_uninstall(const Controller& controller,
                                      elmo::GroupId group);

// Wire codec. encode throws std::length_error only if a single count cannot
// fit even the extended u32 fields.
std::vector<std::uint8_t> encode(std::span<const Update> updates);
// Throws std::invalid_argument on malformed input.
std::vector<Update> decode(std::span<const std::uint8_t> wire);

// Applies a decoded batch to the fabric (the "switch side" of the channel).
// (Named apply_updates to avoid ADL collisions with std::apply.)
void apply_updates(sim::Fabric& fabric, std::span<const Update> updates);
// Single-update variant, for callers that wrap each install in its own
// trace span (stream::ControlPlane::flush, DESIGN.md §15). Semantically
// identical to one iteration of apply_updates.
void apply_update(sim::Fabric& fabric, const Update& update);

// Convenience: controller -> wire -> fabric in one call, returning the
// number of wire bytes that crossed the channel.
std::size_t install_via_channel(const Controller& controller,
                                elmo::GroupId group, sim::Fabric& fabric);

}  // namespace elmo::p4rt
