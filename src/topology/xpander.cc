#include "topology/xpander.h"

#include <algorithm>
#include <deque>
#include <numeric>
#include <set>
#include <stdexcept>

#include "net/bitio.h"

namespace elmo::topo {

XpanderTopology::XpanderTopology(std::size_t switches, std::size_t degree,
                                 std::size_t hosts_per_switch, util::Rng& rng)
    : degree_{degree}, hosts_per_switch_{hosts_per_switch} {
  if (switches < 2 || degree == 0 || degree >= switches) {
    throw std::invalid_argument{"XpanderTopology: bad parameters"};
  }
  if (switches % 2 != 0) {
    throw std::invalid_argument{"XpanderTopology: switches must be even"};
  }
  adjacency_.assign(switches, {});
  // Union of `degree` random perfect matchings. Parallel edges are retried a
  // few times and then tolerated (they only waste a port, as in practice).
  std::vector<std::uint32_t> perm(switches);
  std::iota(perm.begin(), perm.end(), 0);
  for (std::size_t m = 0; m < degree; ++m) {
    rng.shuffle(std::span<std::uint32_t>{perm});
    for (std::size_t i = 0; i + 1 < switches; i += 2) {
      std::uint32_t a = perm[i];
      std::uint32_t b = perm[i + 1];
      if (a == b) continue;
      adjacency_[a].push_back(b);
      adjacency_[b].push_back(a);
    }
  }
}

std::vector<std::uint32_t> XpanderTopology::bfs_parents(std::size_t root) const {
  constexpr std::uint32_t kUnvisited = ~0u;
  std::vector<std::uint32_t> parent(num_switches(), kUnvisited);
  std::deque<std::uint32_t> frontier;
  parent[root] = static_cast<std::uint32_t>(root);
  frontier.push_back(static_cast<std::uint32_t>(root));
  while (!frontier.empty()) {
    const auto node = frontier.front();
    frontier.pop_front();
    for (const auto next : adjacency_[node]) {
      if (parent[next] == kUnvisited) {
        parent[next] = node;
        frontier.push_back(next);
      }
    }
  }
  return parent;
}

std::vector<XpanderTopology::TreeSwitch> XpanderTopology::multicast_tree(
    std::size_t sender_host, const std::vector<std::size_t>& member_hosts) const {
  const std::size_t root = switch_of_host(sender_host);
  const auto parent = bfs_parents(root);

  // tree edges (downstream direction) + host ports per switch
  std::set<std::pair<std::uint32_t, std::uint32_t>> edges;  // (parent, child)
  std::vector<std::size_t> host_ports(num_switches(), 0);
  for (const auto member : member_hosts) {
    if (member == sender_host) continue;
    auto sw = static_cast<std::uint32_t>(switch_of_host(member));
    ++host_ports[sw];
    while (sw != root) {
      const auto up = parent[sw];
      if (!edges.insert({up, sw}).second) break;  // rest of path present
      sw = up;
    }
  }

  std::vector<std::size_t> link_ports(num_switches(), 0);
  for (const auto& [up, down] : edges) ++link_ports[up];

  std::vector<TreeSwitch> tree;
  for (std::size_t sw = 0; sw < num_switches(); ++sw) {
    const std::size_t used = link_ports[sw] + host_ports[sw];
    if (used > 0 || sw == root) {
      tree.push_back(TreeSwitch{static_cast<std::uint32_t>(sw), used});
    }
  }
  return tree;
}

std::size_t XpanderTopology::header_bits_for_tree(
    std::size_t sender_host, const std::vector<std::size_t>& member_hosts) const {
  const auto tree = multicast_tree(sender_host, member_hosts);
  const unsigned id_bits = net::bits_for(num_switches());
  const std::size_t bitmap_bits = degree_ + hosts_per_switch_;
  // Per tree switch: next flag + switch id + port bitmap.
  return tree.size() * (1 + id_bits + bitmap_bits);
}

}  // namespace elmo::topo
