#include "topology/clos.h"

#include <algorithm>

#include "net/bitio.h"

namespace elmo::topo {

std::string to_string(Layer layer) {
  switch (layer) {
    case Layer::kHost:
      return "host";
    case Layer::kLeaf:
      return "leaf";
    case Layer::kSpine:
      return "spine";
    case Layer::kCore:
      return "core";
  }
  return "?";
}

ClosTopology::ClosTopology(const ClosParams& params) : params_{params} {
  check(params.pods > 0, "pods must be > 0");
  check(params.leaves_per_pod > 0, "leaves_per_pod must be > 0");
  check(params.spines_per_pod > 0, "spines_per_pod must be > 0");
  check(params.cores_per_plane > 0, "cores_per_plane must be > 0");
  check(params.hosts_per_leaf > 0, "hosts_per_leaf must be > 0");
}

LeafId ClosTopology::leaf_of_host(HostId host) const {
  check(host < num_hosts(), "host id out of range");
  return static_cast<LeafId>(host / params_.hosts_per_leaf);
}

std::size_t ClosTopology::host_port_on_leaf(HostId host) const {
  check(host < num_hosts(), "host id out of range");
  return host % params_.hosts_per_leaf;
}

HostId ClosTopology::host_at(LeafId leaf, std::size_t port) const {
  check(leaf < num_leaves(), "leaf id out of range");
  check(port < params_.hosts_per_leaf, "host port out of range");
  return static_cast<HostId>(leaf * params_.hosts_per_leaf + port);
}

PodId ClosTopology::pod_of_leaf(LeafId leaf) const {
  check(leaf < num_leaves(), "leaf id out of range");
  return static_cast<PodId>(leaf / params_.leaves_per_pod);
}

std::size_t ClosTopology::leaf_index_in_pod(LeafId leaf) const {
  check(leaf < num_leaves(), "leaf id out of range");
  return leaf % params_.leaves_per_pod;
}

LeafId ClosTopology::leaf_at(PodId pod, std::size_t index) const {
  check(pod < num_pods(), "pod id out of range");
  check(index < params_.leaves_per_pod, "leaf index out of range");
  return static_cast<LeafId>(pod * params_.leaves_per_pod + index);
}

PodId ClosTopology::pod_of_spine(SpineId spine) const {
  check(spine < num_spines(), "spine id out of range");
  return static_cast<PodId>(spine / params_.spines_per_pod);
}

std::size_t ClosTopology::plane_of_spine(SpineId spine) const {
  check(spine < num_spines(), "spine id out of range");
  return spine % params_.spines_per_pod;
}

SpineId ClosTopology::spine_at(PodId pod, std::size_t plane) const {
  check(pod < num_pods(), "pod id out of range");
  check(plane < params_.spines_per_pod, "spine plane out of range");
  return static_cast<SpineId>(pod * params_.spines_per_pod + plane);
}

std::size_t ClosTopology::plane_of_core(CoreId core) const {
  check(core < num_cores(), "core id out of range");
  return core / params_.cores_per_plane;
}

std::size_t ClosTopology::core_index_in_plane(CoreId core) const {
  check(core < num_cores(), "core id out of range");
  return core % params_.cores_per_plane;
}

CoreId ClosTopology::core_at(std::size_t plane, std::size_t index) const {
  check(plane < params_.spines_per_pod, "core plane out of range");
  check(index < params_.cores_per_plane, "core index out of range");
  return static_cast<CoreId>(plane * params_.cores_per_plane + index);
}

CoreId ClosTopology::core_behind_spine_port(SpineId spine,
                                            std::size_t up_port) const {
  check(up_port < spine_up_ports(), "spine uplink out of range");
  return core_at(plane_of_spine(spine), up_port);
}

SpineId ClosTopology::spine_behind_core_port(CoreId core, PodId pod) const {
  return spine_at(pod, plane_of_core(core));
}

unsigned ClosTopology::leaf_id_bits() const noexcept {
  return net::bits_for(num_leaves());
}

unsigned ClosTopology::pod_id_bits() const noexcept {
  return net::bits_for(num_pods());
}

void FailureSet::set(std::vector<std::uint32_t>& v, std::uint32_t id) {
  if (!has(v, id)) v.push_back(id);
}

void FailureSet::unset(std::vector<std::uint32_t>& v, std::uint32_t id) {
  v.erase(std::remove(v.begin(), v.end(), id), v.end());
}

bool FailureSet::has(const std::vector<std::uint32_t>& v, std::uint32_t id) {
  return std::find(v.begin(), v.end(), id) != v.end();
}

}  // namespace elmo::topo
