// Three-tier multi-rooted Clos fabric (Facebook-Fabric style).
//
// Structure and port-numbering conventions (used by every other module):
//
//   * `pods` pods, each with `leaves_per_pod` leaf switches and
//     `spines_per_pod` spine switches; every leaf connects to every spine in
//     its pod.
//   * Each leaf connects `hosts_per_leaf` hosts on its downstream ports.
//   * Spines are organized in planes: spine index s (within its pod) belongs
//     to plane s, which contains `cores_per_plane` core switches. Spine s of
//     every pod connects to all cores of plane s; a core therefore has
//     exactly one downstream port per pod.
//
//   Leaf ports : [0, hosts_per_leaf)                    -> hosts
//                [hosts_per_leaf, +spines_per_pod)      -> pod spines
//   Spine ports: [0, leaves_per_pod)                    -> pod leaves
//                [leaves_per_pod, +cores_per_plane)     -> plane cores
//   Core ports : [0, pods)                              -> pod spines
//
// Elmo's logical view collapses each pod's spines into one logical spine and
// all cores into one logical core (paper §3.1 D2); helpers below expose both
// the physical and the logical coordinates.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace elmo::topo {

using HostId = std::uint32_t;
using LeafId = std::uint32_t;   // global leaf index
using SpineId = std::uint32_t;  // global spine index
using CoreId = std::uint32_t;
using PodId = std::uint32_t;

// Layer of a switch (or host) in the fabric.
enum class Layer : std::uint8_t { kHost, kLeaf, kSpine, kCore };

std::string to_string(Layer layer);

struct ClosParams {
  std::size_t pods = 12;
  std::size_t leaves_per_pod = 48;
  std::size_t spines_per_pod = 4;
  std::size_t cores_per_plane = 12;
  std::size_t hosts_per_leaf = 48;

  // The paper's running example (Fig. 3): 4 pods x 2 spines x 2 leaves,
  // 2 hosts per leaf, 4 cores in one plane... the figure wires 4 cores; we
  // model them as 2 planes x 2 cores so each spine has 2 uplinks.
  static ClosParams running_example() {
    return ClosParams{.pods = 4,
                      .leaves_per_pod = 2,
                      .spines_per_pod = 2,
                      .cores_per_plane = 2,
                      .hosts_per_leaf = 2};
  }

  // Facebook-Fabric scale used in the paper's evaluation: 12 pods, 48 leaves
  // per pod, 48 hosts per leaf => 27,648 hosts.
  static ClosParams facebook_fabric() { return ClosParams{}; }

  // Two-tier leaf-spine (CONGA-style): a single "pod" whose spines are the
  // top tier; no core layer is ever used (groups never span pods), so the
  // encoder emits no core section and multipath happens at the leaf only.
  static ClosParams two_tier_leaf_spine() {
    return ClosParams{.pods = 1,
                      .leaves_per_pod = 32,
                      .spines_per_pod = 8,
                      .cores_per_plane = 1,
                      .hosts_per_leaf = 32};
  }

  // Small fabric for fast tests: 4 pods x 4 leaves x 2 spines, 4 hosts/leaf.
  static ClosParams small_test() {
    return ClosParams{.pods = 4,
                      .leaves_per_pod = 4,
                      .spines_per_pod = 2,
                      .cores_per_plane = 2,
                      .hosts_per_leaf = 4};
  }
};

class ClosTopology {
 public:
  explicit ClosTopology(const ClosParams& params);

  const ClosParams& params() const noexcept { return params_; }

  // ---- entity counts -------------------------------------------------
  std::size_t num_pods() const noexcept { return params_.pods; }
  std::size_t num_leaves() const noexcept {
    return params_.pods * params_.leaves_per_pod;
  }
  std::size_t num_spines() const noexcept {
    return params_.pods * params_.spines_per_pod;
  }
  std::size_t num_cores() const noexcept {
    return params_.spines_per_pod * params_.cores_per_plane;
  }
  std::size_t num_hosts() const noexcept {
    return num_leaves() * params_.hosts_per_leaf;
  }
  std::size_t num_switches() const noexcept {
    return num_leaves() + num_spines() + num_cores();
  }

  // ---- port counts per switch role ------------------------------------
  std::size_t leaf_down_ports() const noexcept { return params_.hosts_per_leaf; }
  std::size_t leaf_up_ports() const noexcept { return params_.spines_per_pod; }
  std::size_t spine_down_ports() const noexcept {
    return params_.leaves_per_pod;
  }
  std::size_t spine_up_ports() const noexcept {
    return params_.cores_per_plane;
  }
  std::size_t core_ports() const noexcept { return params_.pods; }

  // ---- coordinate mappings --------------------------------------------
  LeafId leaf_of_host(HostId host) const;
  std::size_t host_port_on_leaf(HostId host) const;  // leaf downstream port
  HostId host_at(LeafId leaf, std::size_t port) const;

  PodId pod_of_leaf(LeafId leaf) const;
  std::size_t leaf_index_in_pod(LeafId leaf) const;  // == spine downstream port
  LeafId leaf_at(PodId pod, std::size_t index) const;

  PodId pod_of_host(HostId host) const { return pod_of_leaf(leaf_of_host(host)); }

  PodId pod_of_spine(SpineId spine) const;
  std::size_t plane_of_spine(SpineId spine) const;  // index within pod
  SpineId spine_at(PodId pod, std::size_t plane) const;

  std::size_t plane_of_core(CoreId core) const;
  std::size_t core_index_in_plane(CoreId core) const;
  CoreId core_at(std::size_t plane, std::size_t index) const;

  // Spine upstream port `p` of spine in plane `plane` reaches this core.
  CoreId core_behind_spine_port(SpineId spine, std::size_t up_port) const;
  // Core downstream port `pod` reaches this spine.
  SpineId spine_behind_core_port(CoreId core, PodId pod) const;

  // ---- identifier widths (for header encoding) -------------------------
  unsigned leaf_id_bits() const noexcept;
  unsigned pod_id_bits() const noexcept;

 private:
  void check(bool cond, const char* what) const {
    if (!cond) throw std::out_of_range{std::string{"ClosTopology: "} + what};
  }

  ClosParams params_;
};

// Set of failed switches, consulted when computing upstream rules. Leaf
// failures disconnect their hosts (paper §5.1.3b) and are not modelled as
// recoverable.
class FailureSet {
 public:
  void fail_spine(SpineId spine) { set(failed_spines_, spine); }
  void fail_core(CoreId core) { set(failed_cores_, core); }
  void restore_spine(SpineId spine) { unset(failed_spines_, spine); }
  void restore_core(CoreId core) { unset(failed_cores_, core); }

  bool spine_failed(SpineId spine) const { return has(failed_spines_, spine); }
  bool core_failed(CoreId core) const { return has(failed_cores_, core); }
  bool empty() const noexcept {
    return failed_spines_.empty() && failed_cores_.empty();
  }

  const std::vector<SpineId>& failed_spines() const noexcept {
    return failed_spines_;
  }
  const std::vector<CoreId>& failed_cores() const noexcept {
    return failed_cores_;
  }

 private:
  static void set(std::vector<std::uint32_t>& v, std::uint32_t id);
  static void unset(std::vector<std::uint32_t>& v, std::uint32_t id);
  static bool has(const std::vector<std::uint32_t>& v, std::uint32_t id);

  std::vector<SpineId> failed_spines_;
  std::vector<CoreId> failed_cores_;
};

}  // namespace elmo::topo
