// Xpander-style expander topology (paper §5.1.2, non-Clos discussion).
//
// An Xpander datacenter is a near-regular expander graph over top-of-rack
// switches. Elmo can still encode multicast trees on such a topology — one
// p-rule per tree switch, no logical collapsing — and the paper claims a
// million groups still fit a 325-byte budget for 27,000 hosts. This module
// builds a random d-regular graph (union of random perfect matchings, the
// standard Xpander construction), computes BFS trees, and measures the
// header bits Elmo needs per group so `bench/text_sensitivity` can
// reproduce that claim.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace elmo::topo {

class XpanderTopology {
 public:
  // `switches` d-regular ToR switches, `hosts_per_switch` hosts each.
  // `switches * degree` must be even and degree < switches.
  XpanderTopology(std::size_t switches, std::size_t degree,
                  std::size_t hosts_per_switch, util::Rng& rng);

  std::size_t num_switches() const noexcept { return adjacency_.size(); }
  std::size_t degree() const noexcept { return degree_; }
  std::size_t hosts_per_switch() const noexcept { return hosts_per_switch_; }
  std::size_t num_hosts() const noexcept {
    return num_switches() * hosts_per_switch_;
  }

  std::size_t switch_of_host(std::size_t host) const {
    return host / hosts_per_switch_;
  }

  const std::vector<std::uint32_t>& neighbors(std::size_t sw) const {
    return adjacency_.at(sw);
  }

  // BFS parent array rooted at `root` (parent[root] == root).
  std::vector<std::uint32_t> bfs_parents(std::size_t root) const;

  // Steiner-ish multicast tree: union of BFS root->member paths.
  // Returns, per tree switch, the set of output ports used downstream.
  struct TreeSwitch {
    std::uint32_t switch_id;
    std::size_t ports_used;   // neighbor links + local host ports
  };
  std::vector<TreeSwitch> multicast_tree(
      std::size_t sender_host, const std::vector<std::size_t>& member_hosts) const;

  // Exact header bits Elmo needs to source-route this tree: one p-rule per
  // tree switch (no logical layers to collapse), each with a switch id and a
  // (degree + hosts_per_switch)-bit port bitmap.
  std::size_t header_bits_for_tree(
      std::size_t sender_host,
      const std::vector<std::size_t>& member_hosts) const;

 private:
  std::size_t degree_;
  std::size_t hosts_per_switch_;
  std::vector<std::vector<std::uint32_t>> adjacency_;
};

}  // namespace elmo::topo
