// Host-based replication baselines (paper §5.1.2, Figures 4/5 right panels).
//
// * Unicast: the source hypervisor sends one VXLAN copy per receiver; every
//   copy travels the full unicast path (2 hops within a rack, 4 within a
//   pod, 6 across pods).
// * Overlay multicast: the source hypervisor sends one copy to a relay host
//   under each participating leaf; the relay re-unicasts to the remaining
//   member hosts under that leaf (2 hops each). Members under the source's
//   own leaf are served directly.
#pragma once

#include <cstdint>
#include <span>

#include "topology/clos.h"

namespace elmo::baselines {

struct HostcastReport {
  std::uint64_t wire_bytes = 0;
  std::uint64_t link_transmissions = 0;
  std::uint64_t sender_copies = 0;  // packets the source host must emit
};

// Hop count of the unicast path between two hosts (0 if same host).
std::size_t unicast_hops(const topo::ClosTopology& topology, topo::HostId a,
                         topo::HostId b);

// `packet_bytes` is the full on-wire packet (outer headers + payload).
HostcastReport unicast_traffic(const topo::ClosTopology& topology,
                               std::span<const topo::HostId> members,
                               topo::HostId sender, std::size_t packet_bytes);

HostcastReport overlay_traffic(const topo::ClosTopology& topology,
                               std::span<const topo::HostId> members,
                               topo::HostId sender, std::size_t packet_bytes);

}  // namespace elmo::baselines
