#include "baselines/hostcast.h"

#include <map>
#include <vector>

namespace elmo::baselines {

std::size_t unicast_hops(const topo::ClosTopology& topology, topo::HostId a,
                         topo::HostId b) {
  if (a == b) return 0;
  if (topology.leaf_of_host(a) == topology.leaf_of_host(b)) return 2;
  if (topology.pod_of_host(a) == topology.pod_of_host(b)) return 4;
  return 6;
}

HostcastReport unicast_traffic(const topo::ClosTopology& topology,
                               std::span<const topo::HostId> members,
                               topo::HostId sender, std::size_t packet_bytes) {
  HostcastReport report;
  for (const auto member : members) {
    if (member == sender) continue;
    const auto hops = unicast_hops(topology, sender, member);
    report.link_transmissions += hops;
    report.wire_bytes += hops * packet_bytes;
    ++report.sender_copies;
  }
  return report;
}

HostcastReport overlay_traffic(const topo::ClosTopology& topology,
                               std::span<const topo::HostId> members,
                               topo::HostId sender, std::size_t packet_bytes) {
  // Group members by leaf.
  std::map<topo::LeafId, std::vector<topo::HostId>> by_leaf;
  for (const auto member : members) {
    if (member == sender) continue;
    by_leaf[topology.leaf_of_host(member)].push_back(member);
  }

  HostcastReport report;
  const auto sender_leaf = topology.leaf_of_host(sender);
  auto copy = [&](std::size_t hops) {
    report.link_transmissions += hops;
    report.wire_bytes += hops * packet_bytes;
  };

  for (const auto& [leaf, hosts] : by_leaf) {
    if (leaf == sender_leaf) {
      // The source hypervisor serves its own rack directly.
      for (const auto host : hosts) {
        copy(unicast_hops(topology, sender, host));
        ++report.sender_copies;
      }
      continue;
    }
    // One copy to the relay, then rack-local fan-out by the relay.
    const auto relay = hosts.front();
    copy(unicast_hops(topology, sender, relay));
    ++report.sender_copies;
    for (std::size_t i = 1; i < hosts.size(); ++i) {
      copy(2);  // relay -> leaf -> member
    }
  }
  return report;
}

}  // namespace elmo::baselines
