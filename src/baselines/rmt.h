// Appendix A strawman: cost of matching p-rules with match-action stages on
// an RMT-like chip, versus Elmo's parser-based match-and-set.
//
// RMT per-stage resources (Bosshart et al., SIGCOMM'13):
//   106 SRAM blocks of 1000 entries x 112 bits,
//   16 TCAM blocks of 2000 entries x 40 bits.
// Matching N p-rules in a table means matching on the concatenation of all
// N p-rule identifiers with wildcards (TCAM) or one rule per stage (SRAM);
// both waste essentially the whole table. These calculators reproduce the
// appendix's 99.5% / 99.9% waste numbers.
#pragma once

#include <cstddef>

namespace elmo::baselines {

struct RmtParams {
  std::size_t sram_blocks = 106;
  std::size_t sram_entries = 1000;
  std::size_t sram_width_bits = 112;
  std::size_t tcam_blocks = 16;
  std::size_t tcam_entries = 2000;
  std::size_t tcam_width_bits = 40;
  std::size_t ingress_stages = 16;
};

struct TcamCost {
  std::size_t blocks_needed = 0;    // TCAM blocks ganged for the match width
  std::size_t entries_provided = 0; // entries the ganged table holds
  std::size_t entries_used = 0;     // == number of p-rules
  double waste_fraction = 0.0;      // unused entries / provided
};

// Match N p-rules, each `prule_id_bits` wide, in one wildcard table.
TcamCost tcam_prule_lookup_cost(std::size_t num_prules,
                                std::size_t prule_id_bits,
                                const RmtParams& params = {});

struct SramCost {
  std::size_t stages_needed = 0;  // one exact-match stage per p-rule
  bool feasible = false;          // fits the chip's ingress stages?
  double waste_fraction = 0.0;    // 1 used entry per 1000-entry block
};

SramCost sram_prule_lookup_cost(std::size_t num_prules,
                                const RmtParams& params = {});

}  // namespace elmo::baselines
