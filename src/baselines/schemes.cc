#include "baselines/schemes.h"

#include "util/table.h"

namespace elmo::baselines {

std::size_t ip_multicast_max_groups(const ComparisonBudget& b) {
  // One group-table entry per group in every switch the tree crosses; the
  // bottleneck switch caps the fabric at its table size.
  return b.group_table_entries;
}

std::size_t li_et_al_max_groups(const ComparisonBudget& b) {
  // Li et al. aggregate ~30 similar groups per shared tree entry (CoNEXT'13
  // reports 5K entries serving 150K groups at ~30% bandwidth overhead).
  return b.group_table_entries * 30;
}

std::size_t rule_aggregation_max_groups(const ComparisonBudget& b) {
  // Aggressive aggregation (their most lossy configuration): ~100x, at the
  // cost of significant leaked traffic.
  return b.group_table_entries * 100;
}

std::size_t bier_max_hosts(const ComparisonBudget& b) {
  // BIER identifies each destination with one bit of the in-packet bit
  // string: network size is capped by the header budget in bits.
  return b.header_budget_bytes * 8;
}

std::size_t sgm_max_group_size(const ComparisonBudget& b) {
  // SGM carries an explicit list of IPv4 member addresses.
  return b.header_budget_bytes / 4;
}

std::vector<SchemeRow> comparison_table(const ComparisonBudget& b) {
  using util::TextTable;
  std::vector<SchemeRow> rows;

  rows.push_back(SchemeRow{
      .name = "IP Multicast",
      .groups = TextTable::fmt_si(static_cast<double>(ip_multicast_max_groups(b)), 0),
      .group_table_usage = "high",
      .flow_table_usage = "none",
      .group_size_limit = "none",
      .network_size_limit = "none",
      .unorthodox_switch = false,
      .line_rate = true,
      .address_space_isolation = false,
      .multipath = "no",
      .control_overhead = "high",
      .traffic_overhead = "none",
      .end_host_replication = false,
  });
  rows.push_back(SchemeRow{
      .name = "Li et al.",
      .groups = TextTable::fmt_si(static_cast<double>(li_et_al_max_groups(b)), 0),
      .group_table_usage = "high",
      .flow_table_usage = "mod",
      .group_size_limit = "none",
      .network_size_limit = "none",
      .unorthodox_switch = false,
      .line_rate = true,
      .address_space_isolation = false,
      .multipath = "lim",
      .control_overhead = "low",
      .traffic_overhead = "none",
      .end_host_replication = false,
  });
  rows.push_back(SchemeRow{
      .name = "Rule aggr.",
      .groups = TextTable::fmt_si(
          static_cast<double>(rule_aggregation_max_groups(b)), 0),
      .group_table_usage = "mod",
      .flow_table_usage = "high",
      .group_size_limit = "none",
      .network_size_limit = "none",
      .unorthodox_switch = false,
      .line_rate = true,
      .address_space_isolation = false,
      .multipath = "lim",
      .control_overhead = "mod",
      .traffic_overhead = "low",
      .end_host_replication = false,
  });
  rows.push_back(SchemeRow{
      .name = "App. Layer",
      .groups = "1M+",
      .group_table_usage = "none",
      .flow_table_usage = "none",
      .group_size_limit = "none",
      .network_size_limit = "none",
      .unorthodox_switch = false,
      .line_rate = false,
      .address_space_isolation = true,
      .multipath = "yes",
      .control_overhead = "none",
      .traffic_overhead = "high",
      .end_host_replication = true,
  });
  rows.push_back(SchemeRow{
      .name = "BIER",
      .groups = "1M+",
      .group_table_usage = "low",
      .flow_table_usage = "none",
      .group_size_limit =
          TextTable::fmt_si(static_cast<double>(bier_max_hosts(b)), 1),
      .network_size_limit =
          TextTable::fmt_si(static_cast<double>(bier_max_hosts(b)), 1),
      .unorthodox_switch = true,
      .line_rate = true,
      .address_space_isolation = true,
      .multipath = "yes",
      .control_overhead = "low",
      .traffic_overhead = "low",
      .end_host_replication = false,
  });
  rows.push_back(SchemeRow{
      .name = "SGM",
      .groups = "1M+",
      .group_table_usage = "none",
      .flow_table_usage = "none",
      // 81 addresses fit 325 bytes; the paper rounds this to "<100".
      .group_size_limit = "<=" + std::to_string(sgm_max_group_size(b)),
      .network_size_limit = "none",
      .unorthodox_switch = true,
      .line_rate = false,
      .address_space_isolation = true,
      .multipath = "yes",
      .control_overhead = "low",
      .traffic_overhead = "none",
      .end_host_replication = false,
  });
  rows.push_back(SchemeRow{
      .name = "Elmo",
      .groups = TextTable::fmt_si(
                    static_cast<double>(b.elmo_groups_supported), 0) + "+",
      .group_table_usage = "low",
      .flow_table_usage = "none",
      .group_size_limit = "none",
      .network_size_limit = "none",
      .unorthodox_switch = false,
      .line_rate = true,
      .address_space_isolation = true,
      .multipath = "yes",
      .control_overhead = "low",
      .traffic_overhead = "low",
      .end_host_replication = false,
  });
  return rows;
}

}  // namespace elmo::baselines
