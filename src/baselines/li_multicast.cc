#include "baselines/li_multicast.h"

#include <algorithm>
#include <set>

namespace elmo::baselines {

LiMulticast::LiMulticast(const topo::ClosTopology& topology)
    : topo_{&topology},
      leaf_entries_(topology.num_leaves(), 0),
      spine_entries_(topology.num_spines(), 0),
      core_entries_(topology.num_cores(), 0) {}

LiTree LiMulticast::build_tree(const elmo::MulticastTree& tree,
                               std::uint64_t hash) const {
  LiTree out;
  for (const auto& leaf : tree.leaves()) out.leaves.push_back(leaf.leaf);
  const auto plane = hash % topo_->params().spines_per_pod;
  for (const auto& pod : tree.pods()) {
    out.spines.push_back(topo_->spine_at(pod.pod, plane));
  }
  if (tree.spans_multiple_pods()) {
    out.core = topo_->core_at(plane, (hash >> 8) % topo_->spine_up_ports());
  }
  return out;
}

void LiMulticast::install(const LiTree& tree) {
  for (const auto leaf : tree.leaves) ++leaf_entries_.at(leaf);
  for (const auto spine : tree.spines) ++spine_entries_.at(spine);
  if (tree.core) ++core_entries_.at(*tree.core);
}

void LiMulticast::remove(const LiTree& tree) {
  for (const auto leaf : tree.leaves) --leaf_entries_.at(leaf);
  for (const auto spine : tree.spines) --spine_entries_.at(spine);
  if (tree.core) --core_entries_.at(*tree.core);
}

namespace {
util::OnlineStats stats_of(std::span<const std::uint32_t> entries) {
  util::OnlineStats stats;
  for (const auto e : entries) stats.add(e);
  return stats;
}
}  // namespace

util::OnlineStats LiMulticast::leaf_entries() const {
  return stats_of(leaf_entries_);
}
util::OnlineStats LiMulticast::spine_entries() const {
  return stats_of(spine_entries_);
}
util::OnlineStats LiMulticast::core_entries() const {
  return stats_of(core_entries_);
}

LiMulticast::UpdateCounts LiMulticast::updates_for_change(
    const LiTree& before, const LiTree& after) {
  UpdateCounts updates;
  auto union_of = [](std::span<const std::uint32_t> a,
                     std::span<const std::uint32_t> b) {
    std::set<std::uint32_t> all{a.begin(), a.end()};
    all.insert(b.begin(), b.end());
    return std::vector<std::uint32_t>{all.begin(), all.end()};
  };
  updates.leaves = union_of(before.leaves, after.leaves);
  updates.spines = union_of(before.spines, after.spines);
  std::set<std::uint32_t> cores;
  if (before.core) cores.insert(*before.core);
  if (after.core) cores.insert(*after.core);
  updates.cores.assign(cores.begin(), cores.end());
  return updates;
}

}  // namespace elmo::baselines
