#include "baselines/rmt.h"

namespace elmo::baselines {

TcamCost tcam_prule_lookup_cost(std::size_t num_prules,
                                std::size_t prule_id_bits,
                                const RmtParams& params) {
  TcamCost cost;
  const std::size_t match_width = num_prules * prule_id_bits;
  cost.blocks_needed =
      (match_width + params.tcam_width_bits - 1) / params.tcam_width_bits;
  cost.entries_provided = params.tcam_entries;  // ganging widens, not deepens
  cost.entries_used = num_prules;
  if (cost.entries_provided > 0) {
    cost.waste_fraction =
        1.0 - static_cast<double>(cost.entries_used) /
                  static_cast<double>(cost.entries_provided);
  }
  return cost;
}

SramCost sram_prule_lookup_cost(std::size_t num_prules,
                                const RmtParams& params) {
  SramCost cost;
  cost.stages_needed = num_prules;  // one exact-match lookup per stage
  cost.feasible = cost.stages_needed <= params.ingress_stages;
  cost.waste_fraction =
      1.0 - 1.0 / static_cast<double>(params.sram_entries);
  return cost;
}

}  // namespace elmo::baselines
