// Feasibility models behind Table 3: how many groups / members / hosts each
// multicast scheme supports under a fixed switch group-table size and packet
// header budget, plus the qualitative properties the table lists.
//
// Where a limit is arithmetic we derive it from the actual budgets (e.g.
// BIER's bit-string bound and SGM's address-list bound come straight from
// the header budget); where it reflects a published design constant (rule
// aggregation ratios) we encode the constant with its provenance.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace elmo::baselines {

struct ComparisonBudget {
  std::size_t group_table_entries = 5000;  // per switch
  std::size_t header_budget_bytes = 325;
  std::size_t hosts = 27'648;
  // Measured by the Fig. 4/5 benches: groups Elmo supports at this scale.
  std::size_t elmo_groups_supported = 1'000'000;
};

struct SchemeRow {
  std::string name;
  std::string groups;            // e.g. "5K", "1M+"
  std::string group_table_usage; // none / low / mod / high
  std::string flow_table_usage;
  std::string group_size_limit;  // none or a number
  std::string network_size_limit;
  bool unorthodox_switch = false;
  bool line_rate = false;
  bool address_space_isolation = false;
  std::string multipath;  // yes / lim / no
  std::string control_overhead;
  std::string traffic_overhead;
  bool end_host_replication = false;
};

// Derived limits, exposed for unit tests.
std::size_t ip_multicast_max_groups(const ComparisonBudget& b);
std::size_t li_et_al_max_groups(const ComparisonBudget& b);      // ~30x aggregation
std::size_t rule_aggregation_max_groups(const ComparisonBudget& b);  // ~100x
std::size_t bier_max_hosts(const ComparisonBudget& b);   // bit-string bits
std::size_t sgm_max_group_size(const ComparisonBudget& b);  // IPv4 list

std::vector<SchemeRow> comparison_table(const ComparisonBudget& budget);

}  // namespace elmo::baselines
