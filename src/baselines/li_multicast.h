// Baseline: Li & Freedman, "Scaling IP Multicast on Datacenter Topologies"
// (CoNEXT'13) — the SDN multicast scheme the paper compares against.
//
// Model: every group gets a physical multicast tree (member leaves, one
// hash-chosen spine per member pod, one hash-chosen core for multi-pod
// groups) and a group-table entry in every tree switch. A membership change
// recomputes the tree and reinstalls state on every switch whose ports
// changed — plus, because the scheme aggregates similar groups to fit the
// limited group tables, an update to one group can cascade to the switches
// of every group sharing the aggregated entry. The aggregation factor is the
// knob Table 3 cites (~30x for Li et al., ~100x for aggressive rule
// aggregation, both trading traffic leakage for state).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "elmo/tree.h"
#include "topology/clos.h"
#include "util/stats.h"

namespace elmo::baselines {

struct LiTree {
  std::vector<topo::LeafId> leaves;
  std::vector<topo::SpineId> spines;  // one per member pod
  std::optional<topo::CoreId> core;   // multi-pod groups only

  std::size_t switch_count() const noexcept {
    return leaves.size() + spines.size() + (core ? 1 : 0);
  }
};

class LiMulticast {
 public:
  explicit LiMulticast(const topo::ClosTopology& topology);

  // Physical tree for a group (hash picks the spine plane and core index).
  LiTree build_tree(const elmo::MulticastTree& tree, std::uint64_t hash) const;

  // Installs group-table entries for the tree (one per tree switch).
  void install(const LiTree& tree);
  void remove(const LiTree& tree);

  // Group-table occupancy across switches.
  util::OnlineStats leaf_entries() const;
  util::OnlineStats spine_entries() const;
  util::OnlineStats core_entries() const;

  // Per-event switch updates for a membership change: the scheme reinstalls
  // the group's tree, touching every switch in old-tree union new-tree.
  struct UpdateCounts {
    std::vector<std::uint32_t> leaves;
    std::vector<std::uint32_t> spines;
    std::vector<std::uint32_t> cores;
  };
  static UpdateCounts updates_for_change(const LiTree& before,
                                         const LiTree& after);

 private:
  const topo::ClosTopology* topo_;
  std::vector<std::uint32_t> leaf_entries_;
  std::vector<std::uint32_t> spine_entries_;
  std::vector<std::uint32_t> core_entries_;
};

}  // namespace elmo::baselines
