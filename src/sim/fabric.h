// Packet-level fabric simulator: instantiates one HypervisorSwitch per host
// and one NetworkSwitch per leaf/spine/core, wires ports per the Clos
// topology, and walks packets hop by hop with per-link byte accounting.
//
// This is the "testbed" of the reproduction: applications (§5.2) and the
// end-to-end examples run on it, and it cross-validates the analytic
// TrafficEvaluator used by the large-scale benches.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "dataplane/hypervisor_switch.h"
#include "dataplane/network_switch.h"
#include "util/rng.h"
#include "elmo/controller.h"
#include "net/headers.h"
#include "net/packet.h"
#include "topology/clos.h"

namespace elmo::sim {

// One endpoint of the walk: either a network switch or a host hypervisor.
struct NodeRef {
  topo::Layer layer = topo::Layer::kHost;
  std::uint32_t id = 0;

  auto operator<=>(const NodeRef&) const = default;
};

struct LinkStats {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
};

struct SendResult {
  // Hosts that received the packet, with the number of copies each saw.
  std::map<topo::HostId, std::size_t> host_copies;
  // Per-VM deliveries performed by receiving hypervisors.
  std::size_t vm_deliveries = 0;
  std::uint64_t total_wire_bytes = 0;
  std::uint64_t total_link_transmissions = 0;
  std::size_t max_hops = 0;  // longest switch path the packet took
};

class Fabric {
 public:
  explicit Fabric(const topo::ClosTopology& topology);

  dp::HypervisorSwitch& hypervisor(topo::HostId host) {
    return *hypervisors_.at(host);
  }
  dp::NetworkSwitch& leaf(topo::LeafId leaf) { return *leaves_.at(leaf); }
  dp::NetworkSwitch& spine(topo::SpineId spine) { return *spines_.at(spine); }
  dp::NetworkSwitch& core(topo::CoreId core) { return *cores_.at(core); }

  const topo::ClosTopology& topology() const noexcept { return *topo_; }

  // Installs a controller-managed group into the data plane: flow rules (with
  // header templates for senders) at member hypervisors, s-rules at network
  // switches. Re-invoking refreshes existing state.
  void install_group(const elmo::Controller& controller, elmo::GroupId group);
  void uninstall_group(const elmo::Controller& controller,
                       elmo::GroupId group);

  // A VM on `src` sends `payload` to `group`; the packet is encapsulated by
  // the source hypervisor and walked through the fabric.
  SendResult send(topo::HostId src, net::Ipv4Address group,
                  std::span<const std::uint8_t> payload);

  SendResult send(topo::HostId src, net::Ipv4Address group,
                  std::size_t payload_bytes);

  // Unicast VXLAN path between two hosts (baseline traffic and app-layer
  // replication). Standard IP routing is not the system under test, so this
  // walks the ECMP path directly and accounts bytes per link.
  SendResult send_unicast(topo::HostId src, topo::HostId dst,
                          std::size_t payload_bytes);

  const std::map<std::pair<NodeRef, NodeRef>, LinkStats>& links() const {
    return links_;
  }
  void reset_link_stats() { links_.clear(); }

  // Random per-link loss (for reliability-layer experiments, paper §7):
  // each transmitted copy is independently dropped with probability `rate`
  // after being accounted on the wire.
  void set_loss(double rate, std::uint64_t seed = 1) {
    loss_rate_ = rate;
    loss_rng_.reseed(seed);
  }

 private:
  struct InFlight {
    NodeRef at;
    net::Packet packet;
    std::size_t hops = 0;
  };

  void account(const NodeRef& from, const NodeRef& to,
               const net::Packet& packet, SendResult& result);
  bool lost() { return loss_rate_ > 0.0 && loss_rng_.bernoulli(loss_rate_); }
  NodeRef neighbor_of(const NodeRef& node, std::size_t out_port) const;

  const topo::ClosTopology* topo_;
  std::vector<std::unique_ptr<dp::HypervisorSwitch>> hypervisors_;
  std::vector<std::unique_ptr<dp::NetworkSwitch>> leaves_;
  std::vector<std::unique_ptr<dp::NetworkSwitch>> spines_;
  std::vector<std::unique_ptr<dp::NetworkSwitch>> cores_;
  std::map<std::pair<NodeRef, NodeRef>, LinkStats> links_;
  double loss_rate_ = 0.0;
  util::Rng loss_rng_{1};
};

}  // namespace elmo::sim
