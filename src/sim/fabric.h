// Packet-level fabric simulator: instantiates one HypervisorSwitch per host
// and one NetworkSwitch per leaf/spine/core, wires ports per the Clos
// topology, and walks packets through an explicit FIFO event queue of
// (node, PacketView) work items with per-link byte accounting.
//
// This is the "testbed" of the reproduction: applications (§5.2) and the
// end-to-end examples run on it, and it cross-validates the analytic
// TrafficEvaluator used by the large-scale benches.
//
// The walk is a zero-copy pipeline: every node is a dp::ForwardingElement,
// work items carry refcounted PacketViews, and emissions land in one
// per-fabric EmissionArena that is reused across hops and sends — the walk
// performs no steady-state allocation and no per-link deep copies (see
// DESIGN.md, "Forwarding pipeline").
//
// Two walk modes share that pipeline (DESIGN.md §12):
//   * send() — the serial reference: one FIFO drain per send.
//   * send_batch() — batched + sharded: many sends advance together in
//     level-synchronous waves; within a wave, elements are sharded across a
//     util::ThreadPool and their emissions merged back serially in global
//     wave order, so results (deliveries, link bytes, element counters,
//     provenance traces, loss draws) are bit-identical to looping send() at
//     any thread count.
//
// Per-node and per-link state is flat and index-addressed: elements live in
// one contiguous table and link counters in one contiguous array indexed by
// (node, out-port), so the hot walk does array arithmetic, not tree lookups.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "dataplane/forwarding.h"
#include "dataplane/hypervisor_switch.h"
#include "dataplane/network_switch.h"
#include "obs/metrics.h"
#include "obs/provenance.h"
#include "obs/trace.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "elmo/controller.h"
#include "net/headers.h"
#include "net/packet.h"
#include "net/packet_view.h"
#include "topology/clos.h"

namespace elmo::obs {
class TimeSeriesStore;
}  // namespace elmo::obs

namespace elmo::sim {

class FlightRecorder;

// One endpoint of the walk: either a network switch or a host hypervisor.
struct NodeRef {
  topo::Layer layer = topo::Layer::kHost;
  std::uint32_t id = 0;

  auto operator<=>(const NodeRef&) const = default;
};

struct LinkStats {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;

  auto operator<=>(const LinkStats&) const = default;
};

struct SendResult {
  // Hosts that received the packet, with the number of copies each saw.
  std::map<topo::HostId, std::size_t> host_copies;
  // Per-VM deliveries performed by receiving hypervisors.
  std::size_t vm_deliveries = 0;
  std::uint64_t total_wire_bytes = 0;
  std::uint64_t total_link_transmissions = 0;
  std::size_t max_hops = 0;  // longest switch path the packet took
};

// Aggregate event-queue activity across every send since construction (or
// reset_walk_stats()). Complements per-element SwitchStats/HypervisorStats
// with walk-level totals the queue itself observes. All fields except
// max_queue_depth are identical between the serial and batched walk modes;
// max_queue_depth is mode-specific (FIFO high-water vs widest wave).
struct FabricWalkStats {
  std::uint64_t sends = 0;              // multicast walks started
  std::uint64_t unicast_sends = 0;
  std::uint64_t work_items = 0;         // queue entries processed
  std::uint64_t enqueues = 0;
  std::uint64_t max_queue_depth = 0;    // high-water mark of pending items
  std::uint64_t vm_deliveries = 0;
  std::uint64_t host_copies = 0;
  std::uint64_t link_transmissions = 0;
  std::uint64_t wire_bytes = 0;
  std::uint64_t lost_copies = 0;        // dropped by the loss model
  std::uint64_t batch_walks = 0;        // send_batch invocations
  std::uint64_t batch_waves = 0;        // level-synchronous passes run
};

// One multicast send for Fabric::send_batch.
struct SendRequest {
  topo::HostId src = 0;
  net::Ipv4Address group;
  std::size_t payload_bytes = 0;
};

// Knobs for the batched walk. `threads == 1` runs the wave pipeline inline
// (no worker threads); `0` means util::default_thread_count(). Output is
// bit-identical at any value (DESIGN.md §12).
struct BatchOptions {
  std::size_t threads = 1;
};

class Fabric {
 public:
  explicit Fabric(const topo::ClosTopology& topology);

  dp::HypervisorSwitch& hypervisor(topo::HostId host) {
    return *hypervisors_.at(host);
  }
  dp::NetworkSwitch& leaf(topo::LeafId leaf) { return *leaves_.at(leaf); }
  dp::NetworkSwitch& spine(topo::SpineId spine) { return *spines_.at(spine); }
  dp::NetworkSwitch& core(topo::CoreId core) { return *cores_.at(core); }
  const dp::HypervisorSwitch& hypervisor(topo::HostId host) const {
    return *hypervisors_.at(host);
  }
  const dp::NetworkSwitch& leaf(topo::LeafId leaf) const {
    return *leaves_.at(leaf);
  }
  const dp::NetworkSwitch& spine(topo::SpineId spine) const {
    return *spines_.at(spine);
  }
  const dp::NetworkSwitch& core(topo::CoreId core) const {
    return *cores_.at(core);
  }

  // The uniform forwarding view of any node (switch or hypervisor).
  dp::ForwardingElement& element(const NodeRef& node) {
    return *elements_[node_index(node)];
  }

  const topo::ClosTopology& topology() const noexcept { return *topo_; }

  // Installs a controller-managed group into the data plane: flow rules (with
  // header templates for senders) at member hypervisors, s-rules at network
  // switches. Re-invoking refreshes existing state.
  void install_group(const elmo::Controller& controller, elmo::GroupId group);
  void uninstall_group(const elmo::Controller& controller,
                       elmo::GroupId group);

  // A VM on `src` sends `payload` to `group`; the packet is encapsulated by
  // the source hypervisor and walked through the fabric.
  SendResult send(topo::HostId src, net::Ipv4Address group,
                  std::span<const std::uint8_t> payload);

  SendResult send(topo::HostId src, net::Ipv4Address group,
                  std::size_t payload_bytes);

  // Walks a batch of sends together in level-synchronous waves, sharding
  // each wave's elements across `options.threads` workers with per-shard
  // emission arenas and a deterministic in-order merge. One result per
  // request, bit-identical to calling send() per request in order — at any
  // thread count (DESIGN.md §12).
  std::vector<SendResult> send_batch(std::span<const SendRequest> requests,
                                     const BatchOptions& options);
  std::vector<SendResult> send_batch(std::span<const SendRequest> requests) {
    return send_batch(requests, BatchOptions{});
  }

  // Unicast VXLAN path between two hosts (baseline traffic and app-layer
  // replication). Standard IP routing is not the system under test, so this
  // walks the ECMP path directly and accounts bytes per link.
  SendResult send_unicast(topo::HostId src, topo::HostId dst,
                          std::size_t payload_bytes);

  // Per-link counters, materialized from the flat per-(node, out-port)
  // array; links that never carried a packet are omitted.
  std::map<std::pair<NodeRef, NodeRef>, LinkStats> links() const;
  void reset_link_stats() {
    for (auto& l : link_stats_) l = LinkStats{};
  }

  // Random per-link loss (for reliability-layer experiments, paper §7):
  // each transmitted copy is independently dropped with probability `rate`
  // after being accounted on the wire. Draws come from a per-send stream
  // Rng::stream(seed, ordinal) — ordinal counts sends since set_loss — so a
  // batched walk draws exactly what the serial walk would (DESIGN.md §12).
  void set_loss(double rate, std::uint64_t seed = 1) {
    loss_rate_ = rate;
    loss_seed_ = seed;
    send_ordinal_ = 0;
  }

  // Directed per-link loss override for gray-failure injection: copies
  // transmitted from `from` towards `to` are dropped with probability
  // max(rate, global loss rate). Draws share the global loss stream, so the
  // serial/batched equivalence of DESIGN.md §12 still holds (the draw order
  // is identical; only the acceptance threshold differs per link). Does NOT
  // reset the send ordinal — injection mid-run keeps the stream aligned.
  void set_link_loss(const NodeRef& from, const NodeRef& to, double rate);
  void clear_link_loss();

  // Appends the fabric's aggregate health series — per-layer dataplane
  // counters, walk totals, and directed per-layer-pair link transmission
  // sums (elmo_link_<from>_<to>_tx_total) — into `store` under its current
  // sampling window. Does not advance the window; the driver decides when a
  // window closes. Allocation-free after the first call (DESIGN.md §14).
  void sample_into(obs::TimeSeriesStore& store) const;

  // Optional flight recorder (nullptr detaches). Not owned; must outlive the
  // sends it observes. A detached fabric pays one pointer test per work item.
  void set_recorder(FlightRecorder* recorder) noexcept {
    recorder_ = recorder;
  }
  FlightRecorder* recorder() const noexcept { return recorder_; }

  // Optional decision-provenance log (nullptr detaches). Attaches the log to
  // every forwarding element so each send() grows one decision tree in it
  // (DESIGN.md §10). Not owned; must outlive the sends it observes.
  void set_provenance(obs::ProvenanceLog* log);
  obs::ProvenanceLog* provenance() const noexcept { return prov_; }

  // --- Causal tracing & time-to-effect (DESIGN.md §15) ---------------------
  // Optional tracer (nullptr detaches; not owned, must outlive the fabric's
  // use of it). The tracer itself is passive here; it powers the TTE watches
  // below. With no watches armed the walk pays one empty() test per
  // host-copy delivery.
  void set_tracer(obs::Tracer* tracer) noexcept { tracer_ = tracer; }
  obs::Tracer* tracer() const noexcept { return tracer_; }

  // Registers a time-to-effect watch for (group address, host) on behalf of
  // the churn event `event_root` (ingest time = now). A join watch arms when
  // its flow install lands (trace_rule_installed) and closes at the first
  // host-copy delivery after that — join-to-first-delivery. A leave watch
  // tracks stale deliveries while open and closes when the flow removal
  // lands — leave-to-last-stale-delivery (0 if no stale copy was seen).
  // A newer watch for the same key replaces the older one (coalescing), and
  // an install of the opposite polarity cancels the watch. No-op without a
  // tracer.
  void trace_watch(net::Ipv4Address group, topo::HostId host,
                   const obs::TraceContext& event_root, bool leave);
  // Called by the install path when a hypervisor flow add/remove for
  // (group, host) has been applied; `install_span` is the install's span
  // (flow-linked from the TTE instant when the watch closes).
  void trace_rule_installed(net::Ipv4Address group, topo::HostId host,
                            const obs::TraceContext& install_span,
                            bool removed);
  std::size_t open_trace_watches() const noexcept {
    return tte_watches_.size();
  }
  const std::vector<obs::TteRecord>& tte_records() const noexcept {
    return tte_records_;
  }
  void clear_tte_records() { tte_records_.clear(); }

  const FabricWalkStats& walk_stats() const noexcept { return walk_stats_; }
  void reset_walk_stats() noexcept { walk_stats_ = FabricWalkStats{}; }

  // Sums per-element stats over every switch of `layer` (kLeaf/kSpine/kCore)
  // or every hypervisor.
  dp::SwitchStats aggregate_switch_stats(topo::Layer layer) const;
  dp::HypervisorStats aggregate_hypervisor_stats() const;

 private:
  // FIFO event-queue entry: a packet replica arriving at a node. `hops`
  // counts switch traversals (host deliveries keep the emitting switch's
  // count, so max_hops reports the longest switch path).
  struct WorkItem {
    NodeRef at;
    net::PacketView packet;
    std::size_t hops = 0;
    std::size_t prov = obs::kNoProvParent;  // parent hop in the decision tree
  };

  // Batched-walk wave entry: a WorkItem tagged with its request index.
  struct BatchItem {
    NodeRef at;
    net::PacketView packet;
    std::size_t hops = 0;
    std::size_t prov = obs::kNoProvParent;
    std::uint32_t send = 0;  // index into the request batch
  };

  // Captures the one HopDecision each process() call records, in shard-local
  // processing order (== global wave order restricted to the shard).
  struct DecisionCapture final : obs::ProvenanceSink {
    std::vector<obs::HopDecision> decisions;
    void record_decision(const obs::HopDecision& decision) override {
      decisions.push_back(decision);
    }
  };

  // Per-shard scratch for one wave's parallel phase. Arenas persist across
  // waves and batches so steady state allocates nothing.
  struct ShardScratch {
    dp::EmissionArena arena;
    DecisionCapture capture;
    std::vector<std::uint32_t> items;  // wave indices owned by this shard
    // Per owned item: (arena mark, emission count).
    std::vector<std::pair<std::uint32_t, std::uint32_t>> spans;
  };

  // Contiguous node numbering: hosts, then leaves, spines, cores.
  std::size_t node_index(const NodeRef& node) const noexcept {
    return layer_base_[static_cast<std::size_t>(node.layer)] + node.id;
  }

  void account(const NodeRef& from, const NodeRef& to, std::size_t bytes,
               SendResult& result);
  // Fast path: the emitting node and its out-port are already known.
  void account_port(std::size_t from_index, std::size_t port,
                    std::size_t bytes, SendResult& result);
  // Loss draw for one copy leaving `from_index` on `port`. The effective
  // rate is max(global, per-link override); with both zero no random draw
  // happens (the loss stream stays untouched, preserving seed stability).
  bool lost_on(util::Rng& rng, std::size_t from_index, std::size_t port) {
    double rate = loss_rate_;
    if (has_link_loss_) {
      rate = std::max(rate, link_loss_[link_base_[from_index] + port]);
    }
    return rate > 0.0 && rng.bernoulli(rate);
  }
  NodeRef neighbor_of(const NodeRef& node, std::size_t out_port) const;
  // Out-port of `from` that reaches the adjacent node `to`.
  std::size_t port_towards(const NodeRef& from, const NodeRef& to) const;

  const topo::ClosTopology* topo_;
  std::vector<std::unique_ptr<dp::HypervisorSwitch>> hypervisors_;
  std::vector<std::unique_ptr<dp::NetworkSwitch>> leaves_;
  std::vector<std::unique_ptr<dp::NetworkSwitch>> spines_;
  std::vector<std::unique_ptr<dp::NetworkSwitch>> cores_;

  // Flat element table indexed by node_index(), and per-(node, out-port)
  // link counters: slot = link_base_[node_index] + out_port.
  std::vector<dp::ForwardingElement*> elements_;
  std::size_t layer_base_[4] = {0, 0, 0, 0};
  std::vector<std::size_t> link_base_;
  std::vector<LinkStats> link_stats_;

  double loss_rate_ = 0.0;
  std::uint64_t loss_seed_ = 1;
  std::uint64_t send_ordinal_ = 0;  // per-send loss-stream counter
  bool has_link_loss_ = false;
  std::vector<double> link_loss_;  // per (node, out-port); lazily sized

  // Directed layer-pair class of every link slot (kLinkClasses values),
  // built lazily on the first sample_into() call.
  void ensure_link_classes() const;
  mutable std::vector<std::uint8_t> link_class_;
  FabricWalkStats walk_stats_;
  FlightRecorder* recorder_ = nullptr;
  obs::ProvenanceLog* prov_ = nullptr;

  // Time-to-effect watches keyed by (group address, host). Non-empty only
  // while a tracer is attached and churn is in flight.
  struct TteWatch {
    bool leave = false;
    bool installed = false;      // join: its flow install has landed
    obs::TraceContext event_root;
    obs::TraceContext install_span;
    double t0_us = 0;            // churn-event ingest time
    double last_stale_us = -1;   // leave: newest delivery while open
  };
  void tte_on_delivery(std::uint32_t group, std::uint32_t host);
  obs::Tracer* tracer_ = nullptr;
  std::map<std::pair<std::uint32_t, std::uint32_t>, TteWatch> tte_watches_;
  std::vector<obs::TteRecord> tte_records_;

  // Walk state, reused across sends (capacity persists, contents do not).
  std::deque<WorkItem> queue_;
  dp::EmissionArena arena_;

  // Batched-walk state (lazily sized; capacity persists across batches).
  std::unique_ptr<util::ThreadPool> pool_;
  std::vector<ShardScratch> shards_;
  std::vector<BatchItem> wave_;
  std::vector<BatchItem> next_wave_;
};

// One-shot export: registers the telemetry names (idempotent) and adds the
// fabric's *current* per-element and walk totals into `reg`. Call once per
// fabric at the end of a run — calling again adds the totals again. Suits
// short-lived fabrics (bench iterations, fuzz scenarios) where a live
// pull-model collector would dangle after the fabric dies.
void accumulate_fabric_metrics(const Fabric& fabric, obs::MetricsRegistry& reg);

}  // namespace elmo::sim
