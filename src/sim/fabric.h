// Packet-level fabric simulator: instantiates one HypervisorSwitch per host
// and one NetworkSwitch per leaf/spine/core, wires ports per the Clos
// topology, and walks packets through an explicit FIFO event queue of
// (node, PacketView) work items with per-link byte accounting.
//
// This is the "testbed" of the reproduction: applications (§5.2) and the
// end-to-end examples run on it, and it cross-validates the analytic
// TrafficEvaluator used by the large-scale benches.
//
// The walk is a zero-copy pipeline: every node is a dp::ForwardingElement,
// work items carry refcounted PacketViews, and emissions land in one
// per-fabric EmissionArena that is reused across hops and sends — the walk
// performs no steady-state allocation and no per-link deep copies (see
// DESIGN.md, "Forwarding pipeline").
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "dataplane/forwarding.h"
#include "dataplane/hypervisor_switch.h"
#include "dataplane/network_switch.h"
#include "obs/metrics.h"
#include "obs/provenance.h"
#include "util/rng.h"
#include "elmo/controller.h"
#include "net/headers.h"
#include "net/packet.h"
#include "net/packet_view.h"
#include "topology/clos.h"

namespace elmo::sim {

class FlightRecorder;

// One endpoint of the walk: either a network switch or a host hypervisor.
struct NodeRef {
  topo::Layer layer = topo::Layer::kHost;
  std::uint32_t id = 0;

  auto operator<=>(const NodeRef&) const = default;
};

struct LinkStats {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
};

struct SendResult {
  // Hosts that received the packet, with the number of copies each saw.
  std::map<topo::HostId, std::size_t> host_copies;
  // Per-VM deliveries performed by receiving hypervisors.
  std::size_t vm_deliveries = 0;
  std::uint64_t total_wire_bytes = 0;
  std::uint64_t total_link_transmissions = 0;
  std::size_t max_hops = 0;  // longest switch path the packet took
};

// Aggregate event-queue activity across every send since construction (or
// reset_walk_stats()). Complements per-element SwitchStats/HypervisorStats
// with walk-level totals the queue itself observes.
struct FabricWalkStats {
  std::uint64_t sends = 0;              // multicast walks started
  std::uint64_t unicast_sends = 0;
  std::uint64_t work_items = 0;         // queue entries processed
  std::uint64_t enqueues = 0;
  std::uint64_t max_queue_depth = 0;    // high-water mark of pending items
  std::uint64_t vm_deliveries = 0;
  std::uint64_t host_copies = 0;
  std::uint64_t link_transmissions = 0;
  std::uint64_t wire_bytes = 0;
  std::uint64_t lost_copies = 0;        // dropped by the loss model
};

// One multicast send for Fabric::send_batch.
struct SendRequest {
  topo::HostId src = 0;
  net::Ipv4Address group;
  std::size_t payload_bytes = 0;
};

class Fabric {
 public:
  explicit Fabric(const topo::ClosTopology& topology);

  dp::HypervisorSwitch& hypervisor(topo::HostId host) {
    return *hypervisors_.at(host);
  }
  dp::NetworkSwitch& leaf(topo::LeafId leaf) { return *leaves_.at(leaf); }
  dp::NetworkSwitch& spine(topo::SpineId spine) { return *spines_.at(spine); }
  dp::NetworkSwitch& core(topo::CoreId core) { return *cores_.at(core); }

  // The uniform forwarding view of any node (switch or hypervisor).
  dp::ForwardingElement& element(const NodeRef& node);

  const topo::ClosTopology& topology() const noexcept { return *topo_; }

  // Installs a controller-managed group into the data plane: flow rules (with
  // header templates for senders) at member hypervisors, s-rules at network
  // switches. Re-invoking refreshes existing state.
  void install_group(const elmo::Controller& controller, elmo::GroupId group);
  void uninstall_group(const elmo::Controller& controller,
                       elmo::GroupId group);

  // A VM on `src` sends `payload` to `group`; the packet is encapsulated by
  // the source hypervisor and walked through the fabric.
  SendResult send(topo::HostId src, net::Ipv4Address group,
                  std::span<const std::uint8_t> payload);

  SendResult send(topo::HostId src, net::Ipv4Address group,
                  std::size_t payload_bytes);

  // Walks a batch of sends back-to-back over the shared event queue and
  // emission arena (no per-send allocation churn); one result per request.
  std::vector<SendResult> send_batch(std::span<const SendRequest> requests);

  // Unicast VXLAN path between two hosts (baseline traffic and app-layer
  // replication). Standard IP routing is not the system under test, so this
  // walks the ECMP path directly and accounts bytes per link.
  SendResult send_unicast(topo::HostId src, topo::HostId dst,
                          std::size_t payload_bytes);

  const std::map<std::pair<NodeRef, NodeRef>, LinkStats>& links() const {
    return links_;
  }
  void reset_link_stats() { links_.clear(); }

  // Random per-link loss (for reliability-layer experiments, paper §7):
  // each transmitted copy is independently dropped with probability `rate`
  // after being accounted on the wire.
  void set_loss(double rate, std::uint64_t seed = 1) {
    loss_rate_ = rate;
    loss_rng_.reseed(seed);
  }

  // Optional flight recorder (nullptr detaches). Not owned; must outlive the
  // sends it observes. A detached fabric pays one pointer test per work item.
  void set_recorder(FlightRecorder* recorder) noexcept {
    recorder_ = recorder;
  }
  FlightRecorder* recorder() const noexcept { return recorder_; }

  // Optional decision-provenance log (nullptr detaches). Attaches the log to
  // every forwarding element so each send() grows one decision tree in it
  // (DESIGN.md §10). Not owned; must outlive the sends it observes.
  void set_provenance(obs::ProvenanceLog* log);
  obs::ProvenanceLog* provenance() const noexcept { return prov_; }

  const FabricWalkStats& walk_stats() const noexcept { return walk_stats_; }
  void reset_walk_stats() noexcept { walk_stats_ = FabricWalkStats{}; }

  // Sums per-element stats over every switch of `layer` (kLeaf/kSpine/kCore)
  // or every hypervisor.
  dp::SwitchStats aggregate_switch_stats(topo::Layer layer) const;
  dp::HypervisorStats aggregate_hypervisor_stats() const;

 private:
  // FIFO event-queue entry: a packet replica arriving at a node. `hops`
  // counts switch traversals (host deliveries keep the emitting switch's
  // count, so max_hops reports the longest switch path).
  struct WorkItem {
    NodeRef at;
    net::PacketView packet;
    std::size_t hops = 0;
    std::size_t prov = obs::kNoProvParent;  // parent hop in the decision tree
  };

  void account(const NodeRef& from, const NodeRef& to, std::size_t bytes,
               SendResult& result);
  bool lost() { return loss_rate_ > 0.0 && loss_rng_.bernoulli(loss_rate_); }
  NodeRef neighbor_of(const NodeRef& node, std::size_t out_port) const;

  const topo::ClosTopology* topo_;
  std::vector<std::unique_ptr<dp::HypervisorSwitch>> hypervisors_;
  std::vector<std::unique_ptr<dp::NetworkSwitch>> leaves_;
  std::vector<std::unique_ptr<dp::NetworkSwitch>> spines_;
  std::vector<std::unique_ptr<dp::NetworkSwitch>> cores_;
  std::map<std::pair<NodeRef, NodeRef>, LinkStats> links_;
  double loss_rate_ = 0.0;
  util::Rng loss_rng_{1};
  FabricWalkStats walk_stats_;
  FlightRecorder* recorder_ = nullptr;
  obs::ProvenanceLog* prov_ = nullptr;

  // Walk state, reused across sends (capacity persists, contents do not).
  std::deque<WorkItem> queue_;
  dp::EmissionArena arena_;
};

// One-shot export: registers the telemetry names (idempotent) and adds the
// fabric's *current* per-element and walk totals into `reg`. Call once per
// fabric at the end of a run — calling again adds the totals again. Suits
// short-lived fabrics (bench iterations, fuzz scenarios) where a live
// pull-model collector would dangle after the fabric dies.
void accumulate_fabric_metrics(const Fabric& fabric, obs::MetricsRegistry& reg);

}  // namespace elmo::sim
