// Fabric flight recorder: an optional, bounded in-memory log of event-queue
// activity (per-node processing spans, queue depth, per-hop fan-out, send
// boundaries) that exports chrome://tracing JSON — load the file at
// chrome://tracing or https://ui.perfetto.dev to see the walk on a timeline.
//
// Recording is strictly opt-in: a Fabric with no recorder attached pays one
// null-pointer test per work item. Timestamps are microseconds relative to
// recorder construction (or the last clear()), taken from steady_clock.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "sim/fabric.h"

namespace elmo::sim {

class FlightRecorder {
 public:
  // `max_events` bounds memory; past it new events are counted in dropped()
  // and discarded.
  explicit FlightRecorder(std::size_t max_events = std::size_t{1} << 20);

  // Microseconds since construction / last clear(). Callers sample this
  // before a unit of work and hand it back to process().
  double now_us() const;
  std::chrono::steady_clock::time_point origin() const { return origin_; }

  // A new multicast send enters the fabric.
  void send_begin(std::uint64_t send_index, std::uint32_t group,
                  std::uint32_t src_host);
  // One work item was processed at `node`: started at `start_us` (from
  // now_us()), emitted `fanout` copies, with `queue_depth` items still
  // pending and `hop` switch traversals so far.
  void process(const NodeRef& node, double start_us, std::uint32_t fanout,
               std::uint32_t queue_depth, std::uint32_t hop);

  void clear();
  std::size_t size() const { return events_.size(); }
  std::uint64_t dropped() const { return dropped_; }

  // Chrome trace-event JSON ("X" duration events per work item with
  // fanout/queue-depth/hop args, "C" counter track for queue depth, "i"
  // instants at send boundaries).
  std::string chrome_trace_json() const;
  // Appends this recorder's metadata + events (pid 1) to an in-progress
  // chrome JSON event array; `ts_offset_us` shifts every timestamp so a
  // merged export can align this clock with an obs::Tracer's.
  void append_chrome_events(std::string& out, bool& first,
                            double ts_offset_us) const;

  bool write(const std::string& path) const;

 private:
  struct Event {
    enum class Type : std::uint8_t { kSend, kProcess };
    Type type = Type::kProcess;
    NodeRef node;
    double ts_us = 0;
    double dur_us = 0;
    std::uint32_t a = 0;  // send: group      | process: fanout
    std::uint32_t b = 0;  // send: src host   | process: queue depth
    std::uint64_t c = 0;  // send: send index | process: hop
  };

  bool full() {
    if (events_.size() < max_events_) return false;
    ++dropped_;
    return true;
  }

  std::size_t max_events_;
  std::vector<Event> events_;
  std::uint64_t dropped_ = 0;
  std::chrono::steady_clock::time_point origin_;
};

// Unified timeline (DESIGN.md §15): the control-plane tracer (pid 2) and the
// data-plane flight recorder (pid 1) merged into one chrome://tracing
// document on a shared clock. Both stores timestamp relative to their own
// steady-clock origin; the merge shifts whichever origin is younger so every
// exported timestamp is non-negative and per-lane order is preserved.
// (Lives in sim because elmo_sim links elmo_obs, never the reverse.)
std::string unified_trace_json(const obs::Tracer& tracer,
                               const FlightRecorder& recorder);
bool write_unified_trace(const std::string& path, const obs::Tracer& tracer,
                         const FlightRecorder& recorder);

}  // namespace elmo::sim
