#include "sim/mtrace.h"

#include <deque>
#include <sstream>

namespace elmo::sim {

std::string to_string(const NodeRef& node) {
  switch (node.layer) {
    case topo::Layer::kHost:
      return "host" + std::to_string(node.id);
    case topo::Layer::kLeaf:
      return "L" + std::to_string(node.id);
    case topo::Layer::kSpine:
      return "S" + std::to_string(node.id);
    case topo::Layer::kCore:
      return "C" + std::to_string(node.id);
  }
  return "?";
}

MtraceReport mtrace(Fabric& fabric, const elmo::Controller& controller,
                    elmo::GroupId group, topo::HostId sender,
                    std::size_t payload_bytes) {
  const auto& g = controller.group(group);
  fabric.reset_link_stats();
  const auto result = fabric.send(sender, g.address, payload_bytes);

  MtraceReport report;
  report.total_wire_bytes = result.total_wire_bytes;
  report.max_depth = result.max_hops + 1;
  for (const auto& [host, copies] : result.host_copies) {
    (void)copies;
    if (g.tree != nullptr && g.tree->is_member(host)) {
      ++report.members_reached;
    } else {
      ++report.redundant_copies;
    }
  }

  // Reconstruct the tree breadth-first from the per-link counters.
  const auto& links = fabric.links();
  std::map<NodeRef, std::size_t> depth;
  const NodeRef root{topo::Layer::kHost, sender};
  depth[root] = 0;
  std::deque<NodeRef> frontier{root};
  while (!frontier.empty()) {
    const auto node = frontier.front();
    frontier.pop_front();
    for (const auto& [edge, stats] : links) {
      if (!(edge.first == node)) continue;
      MtraceHop hop;
      hop.from = edge.first;
      hop.to = edge.second;
      hop.bytes = stats.bytes / stats.packets;  // per-copy size on this link
      hop.depth = depth[node] + 1;
      report.hops.push_back(hop);
      if (!depth.contains(edge.second)) {
        depth[edge.second] = hop.depth;
        if (edge.second.layer != topo::Layer::kHost) {
          frontier.push_back(edge.second);
        }
      }
    }
  }
  return report;
}

std::string MtraceReport::render() const {
  std::ostringstream out;
  out << "mtrace: " << hops.size() << " link transmissions, "
      << members_reached << " members reached, " << redundant_copies
      << " redundant copies, " << total_wire_bytes << " wire bytes\n";
  for (const auto& hop : hops) {
    out << std::string(2 * hop.depth, ' ') << to_string(hop.from) << " -> "
        << to_string(hop.to) << "  (" << hop.bytes << "B on wire)\n";
  }
  return out.str();
}

}  // namespace elmo::sim
