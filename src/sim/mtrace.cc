#include "sim/mtrace.h"

#include <deque>
#include <sstream>

namespace elmo::sim {

std::string to_string(const NodeRef& node) {
  switch (node.layer) {
    case topo::Layer::kHost:
      return "host" + std::to_string(node.id);
    case topo::Layer::kLeaf:
      return "L" + std::to_string(node.id);
    case topo::Layer::kSpine:
      return "S" + std::to_string(node.id);
    case topo::Layer::kCore:
      return "C" + std::to_string(node.id);
  }
  return "?";
}

MtraceReport mtrace(Fabric& fabric, const elmo::Controller& controller,
                    elmo::GroupId group, topo::HostId sender,
                    std::size_t payload_bytes) {
  const auto& g = controller.group(group);
  fabric.reset_link_stats();

  // Per-element counter snapshot before the probe; the report carries the
  // delta, i.e. what this one packet did.
  const auto leaves_before = fabric.aggregate_switch_stats(topo::Layer::kLeaf);
  const auto spines_before =
      fabric.aggregate_switch_stats(topo::Layer::kSpine);
  const auto cores_before = fabric.aggregate_switch_stats(topo::Layer::kCore);
  const auto hosts_before = fabric.aggregate_hypervisor_stats();

  const auto result = fabric.send(sender, g.address, payload_bytes);

  auto switch_delta = [](dp::SwitchStats after, const dp::SwitchStats& before) {
    after.packets_in -= before.packets_in;
    after.bytes_in -= before.bytes_in;
    after.copies_out -= before.copies_out;
    after.bytes_out -= before.bytes_out;
    after.prule_matches -= before.prule_matches;
    after.upstream_matches -= before.upstream_matches;
    after.srule_matches -= before.srule_matches;
    after.default_matches -= before.default_matches;
    after.drops -= before.drops;
    after.header_pops -= before.header_pops;
    after.header_pop_bytes -= before.header_pop_bytes;
    return after;
  };

  MtraceReport report;
  report.counters.leaves = switch_delta(
      fabric.aggregate_switch_stats(topo::Layer::kLeaf), leaves_before);
  report.counters.spines = switch_delta(
      fabric.aggregate_switch_stats(topo::Layer::kSpine), spines_before);
  report.counters.cores = switch_delta(
      fabric.aggregate_switch_stats(topo::Layer::kCore), cores_before);
  {
    auto h = fabric.aggregate_hypervisor_stats();
    h.sent -= hosts_before.sent;
    h.bytes_sent -= hosts_before.bytes_sent;
    h.received -= hosts_before.received;
    h.bytes_received -= hosts_before.bytes_received;
    h.delivered_to_vms -= hosts_before.delivered_to_vms;
    h.delivered_bytes -= hosts_before.delivered_bytes;
    h.discarded -= hosts_before.discarded;
    h.unicast_fallback -= hosts_before.unicast_fallback;
    report.counters.hypervisors = h;
  }
  report.total_wire_bytes = result.total_wire_bytes;
  report.max_depth = result.max_hops + 1;
  for (const auto& [host, copies] : result.host_copies) {
    (void)copies;
    if (g.tree != nullptr && g.tree->is_member(host)) {
      ++report.members_reached;
    } else {
      ++report.redundant_copies;
    }
  }

  // Reconstruct the tree breadth-first from the per-link counters.
  const auto& links = fabric.links();
  std::map<NodeRef, std::size_t> depth;
  const NodeRef root{topo::Layer::kHost, sender};
  depth[root] = 0;
  std::deque<NodeRef> frontier{root};
  while (!frontier.empty()) {
    const auto node = frontier.front();
    frontier.pop_front();
    for (const auto& [edge, stats] : links) {
      if (!(edge.first == node)) continue;
      MtraceHop hop;
      hop.from = edge.first;
      hop.to = edge.second;
      hop.bytes = stats.bytes / stats.packets;  // per-copy size on this link
      hop.depth = depth[node] + 1;
      report.hops.push_back(hop);
      if (!depth.contains(edge.second)) {
        depth[edge.second] = hop.depth;
        if (edge.second.layer != topo::Layer::kHost) {
          frontier.push_back(edge.second);
        }
      }
    }
  }
  return report;
}

std::string MtraceReport::render() const {
  std::ostringstream out;
  out << "mtrace: " << hops.size() << " link transmissions, "
      << members_reached << " members reached, " << redundant_copies
      << " redundant copies, " << total_wire_bytes << " wire bytes\n";
  for (const auto& hop : hops) {
    out << std::string(2 * hop.depth, ' ') << to_string(hop.from) << " -> "
        << to_string(hop.to) << "  (" << hop.bytes << "B on wire)\n";
  }
  auto layer_line = [&out](const char* name, const dp::SwitchStats& s) {
    if (s.packets_in == 0) return;
    out << "  " << name << ": " << s.packets_in << " in, " << s.copies_out
        << " out, " << s.prule_matches << " p-rule, " << s.upstream_matches
        << " upstream, " << s.srule_matches << " s-rule, "
        << s.default_matches << " default, " << s.drops << " drops, "
        << s.header_pops << " pops (" << s.header_pop_bytes << "B)\n";
  };
  out << "counters (probe delta):\n";
  layer_line("leaf ", counters.leaves);
  layer_line("spine", counters.spines);
  layer_line("core ", counters.cores);
  const auto& h = counters.hypervisors;
  out << "  host : " << h.received << " received, " << h.delivered_to_vms
      << " VM deliveries, " << h.discarded << " discarded\n";
  return out.str();
}

}  // namespace elmo::sim
