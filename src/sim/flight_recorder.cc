#include "sim/flight_recorder.h"

#include <cstdio>

#include "sim/mtrace.h"

namespace elmo::sim {
namespace {

std::string fmt_us(double us) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", us);
  return buf;
}

// Track ids: one synthetic "thread" per fabric layer keeps the timeline
// readable (hosts, leaves, spines, cores stack as separate rows).
int tid_of(const NodeRef& node) { return static_cast<int>(node.layer); }

}  // namespace

FlightRecorder::FlightRecorder(std::size_t max_events)
    : max_events_{max_events}, origin_{std::chrono::steady_clock::now()} {
  events_.reserve(std::min<std::size_t>(max_events_, 4096));
}

double FlightRecorder::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - origin_)
      .count();
}

void FlightRecorder::send_begin(std::uint64_t send_index, std::uint32_t group,
                                std::uint32_t src_host) {
  if (full()) return;
  Event e;
  e.type = Event::Type::kSend;
  e.ts_us = now_us();
  e.a = group;
  e.b = src_host;
  e.c = send_index;
  events_.push_back(e);
}

void FlightRecorder::process(const NodeRef& node, double start_us,
                             std::uint32_t fanout, std::uint32_t queue_depth,
                             std::uint32_t hop) {
  if (full()) return;
  Event e;
  e.type = Event::Type::kProcess;
  e.node = node;
  e.ts_us = start_us;
  e.dur_us = now_us() - start_us;
  e.a = fanout;
  e.b = queue_depth;
  e.c = hop;
  events_.push_back(e);
}

void FlightRecorder::clear() {
  events_.clear();
  dropped_ = 0;
  origin_ = std::chrono::steady_clock::now();
}

void FlightRecorder::append_chrome_events(std::string& out, bool& first,
                                          double ts_offset_us) const {
  auto emit = [&out, &first](const std::string& obj) {
    if (!first) out += ",\n";
    first = false;
    out += obj;
  };
  auto ts_of = [ts_offset_us](double us) { return fmt_us(us + ts_offset_us); };
  emit(R"({"name": "process_name", "ph": "M", "pid": 1, )"
       R"("args": {"name": "elmo fabric walk"}})");
  // Recorder accounting, for consumers (scripts/lint_trace.py) to check the
  // trace is complete: how many events the buffer holds, how many were
  // dropped past the bound, and the bound itself.
  emit(R"({"name": "elmo_recorder_stats", "ph": "M", "pid": 1, )"
       R"("args": {"events": )" +
       std::to_string(events_.size()) + R"(, "dropped": )" +
       std::to_string(dropped_) + R"(, "max_events": )" +
       std::to_string(max_events_) + "}}");
  const char* layer_names[] = {"hosts", "leaves", "spines", "cores"};
  for (int t = 0; t < 4; ++t) {
    emit(R"({"name": "thread_name", "ph": "M", "pid": 1, "tid": )" +
         std::to_string(t) + R"(, "args": {"name": ")" + layer_names[t] +
         "\"}}");
  }
  for (const auto& e : events_) {
    if (e.type == Event::Type::kSend) {
      emit(R"({"name": "send", "ph": "i", "s": "g", "pid": 1, "tid": 0, )"
           R"("ts": )" +
           ts_of(e.ts_us) + R"(, "args": {"send_index": )" +
           std::to_string(e.c) + R"(, "group": )" + std::to_string(e.a) +
           R"(, "src_host": )" + std::to_string(e.b) + "}}");
      continue;
    }
    emit(R"({"name": ")" + to_string(e.node) +
         R"(", "ph": "X", "pid": 1, "tid": )" +
         std::to_string(tid_of(e.node)) + R"(, "ts": )" + ts_of(e.ts_us) +
         R"(, "dur": )" + fmt_us(e.dur_us) + R"(, "args": {"fanout": )" +
         std::to_string(e.a) + R"(, "queue_depth": )" + std::to_string(e.b) +
         R"(, "hop": )" + std::to_string(e.c) + "}}");
    emit(R"({"name": "queue_depth", "ph": "C", "pid": 1, "ts": )" +
         ts_of(e.ts_us + e.dur_us) + R"(, "args": {"depth": )" +
         std::to_string(e.b) + "}}");
  }
}

std::string FlightRecorder::chrome_trace_json() const {
  std::string out = "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [\n";
  bool first = true;
  append_chrome_events(out, first, 0.0);
  out += "\n]}\n";
  return out;
}

std::string unified_trace_json(const obs::Tracer& tracer,
                               const FlightRecorder& recorder) {
  // Align the two steady-clock origins: shift the store whose origin is
  // younger forward so both offsets are non-negative.
  const double delta_us =
      std::chrono::duration<double, std::micro>(recorder.origin() -
                                                tracer.origin())
          .count();
  const double recorder_offset = delta_us > 0 ? delta_us : 0.0;
  const double tracer_offset = delta_us < 0 ? -delta_us : 0.0;

  std::string out = "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [\n";
  bool first = true;
  recorder.append_chrome_events(out, first, recorder_offset);
  tracer.append_chrome_events(out, first, tracer_offset);
  out += "\n]}\n";
  return out;
}

bool write_unified_trace(const std::string& path, const obs::Tracer& tracer,
                         const FlightRecorder& recorder) {
  const auto text = unified_trace_json(tracer, recorder);
  if (path == "-") {
    std::fwrite(text.data(), 1, text.size(), stderr);
    return true;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "write_unified_trace: cannot open %s\n",
                 path.c_str());
    return false;
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return true;
}

bool FlightRecorder::write(const std::string& path) const {
  const auto text = chrome_trace_json();
  if (path == "-") {
    std::fwrite(text.data(), 1, text.size(), stderr);
    return true;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FlightRecorder: cannot open %s\n", path.c_str());
    return false;
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace elmo::sim
