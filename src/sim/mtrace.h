// Multicast traceroute (paper §7, Monitoring: "Debugging multicast traffic
// has been an issue, with difficulties troubleshooting copies of a multicast
// packet and the lack of tools (like traceroute and ping)").
//
// Mtrace sends one probe through the packet-level data plane and
// reconstructs the replication tree the fabric actually executed — per-hop
// switches, per-link header sizes (showing the p-rule popping), and the
// final per-host outcomes (member delivery, redundant copy, loss).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "elmo/controller.h"
#include "sim/fabric.h"

namespace elmo::sim {

struct MtraceHop {
  NodeRef from;
  NodeRef to;
  std::uint64_t bytes = 0;    // on-the-wire size of this copy
  std::size_t depth = 0;      // hops from the sender
};

// What the probe alone did to the per-element counters: fleet-wide
// SwitchStats summed over each switch layer, plus hypervisor deltas. The
// delta view turns the aggregate telemetry (DESIGN.md §9) into a per-probe
// diagnosis — e.g. default_matches > 0 means this group's header did not
// cover some switch and the probe fell back to the default p-rule there.
struct MtraceCounters {
  dp::SwitchStats leaves;
  dp::SwitchStats spines;
  dp::SwitchStats cores;
  dp::HypervisorStats hypervisors;
};

struct MtraceReport {
  std::vector<MtraceHop> hops;        // breadth-first order
  std::size_t members_reached = 0;
  std::size_t redundant_copies = 0;   // non-member hosts hit
  std::size_t max_depth = 0;
  std::uint64_t total_wire_bytes = 0;
  MtraceCounters counters;            // probe-only deltas

  // Human-readable tree rendering.
  std::string render() const;
};

// Probes `group` from `sender` (payload_bytes of filler) and reconstructs the
// replication tree from the fabric's per-link counters.
MtraceReport mtrace(Fabric& fabric, const elmo::Controller& controller,
                    elmo::GroupId group, topo::HostId sender,
                    std::size_t payload_bytes = 64);

std::string to_string(const NodeRef& node);

}  // namespace elmo::sim
