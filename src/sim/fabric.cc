#include "sim/fabric.h"

#include <stdexcept>

namespace elmo::sim {

Fabric::Fabric(const topo::ClosTopology& topology) : topo_{&topology} {
  hypervisors_.reserve(topology.num_hosts());
  for (topo::HostId h = 0; h < topology.num_hosts(); ++h) {
    hypervisors_.push_back(
        std::make_unique<dp::HypervisorSwitch>(topology, h));
  }
  leaves_.reserve(topology.num_leaves());
  for (topo::LeafId l = 0; l < topology.num_leaves(); ++l) {
    leaves_.push_back(
        std::make_unique<dp::NetworkSwitch>(topology, topo::Layer::kLeaf, l));
  }
  spines_.reserve(topology.num_spines());
  for (topo::SpineId s = 0; s < topology.num_spines(); ++s) {
    spines_.push_back(
        std::make_unique<dp::NetworkSwitch>(topology, topo::Layer::kSpine, s));
  }
  cores_.reserve(topology.num_cores());
  for (topo::CoreId c = 0; c < topology.num_cores(); ++c) {
    cores_.push_back(
        std::make_unique<dp::NetworkSwitch>(topology, topo::Layer::kCore, c));
  }
}

dp::ForwardingElement& Fabric::element(const NodeRef& node) {
  switch (node.layer) {
    case topo::Layer::kHost:
      return *hypervisors_.at(node.id);
    case topo::Layer::kLeaf:
      return *leaves_.at(node.id);
    case topo::Layer::kSpine:
      return *spines_.at(node.id);
    case topo::Layer::kCore:
      return *cores_.at(node.id);
  }
  throw std::logic_error{"Fabric: unknown node layer"};
}

void Fabric::install_group(const elmo::Controller& controller,
                           elmo::GroupId group) {
  const auto& g = controller.group(group);

  // One flow per host, merged across co-located members: installing per
  // member would overwrite the host's flow, dropping the earlier member's
  // local VM (and its header template) whenever two VMs of the group share
  // a host.
  std::map<topo::HostId, dp::HypervisorSwitch::GroupFlow> flows;
  for (const auto& member : g.members) {
    auto& flow = flows[member.host];
    flow.vni = g.tenant;
    if (elmo::can_receive(member.role)) flow.local_vms.push_back(member.vm);
    if (elmo::can_send(member.role) && flow.elmo_header.empty()) {
      flow.elmo_header = controller.header_for(group, member.host);
    }
  }
  for (auto& [host, flow] : flows) {
    hypervisor(host).install_flow(g.address, std::move(flow));
  }

  for (const auto& [leaf_id, bitmap] : g.encoding.leaf.s_rules) {
    leaf(leaf_id).install_srule(g.address, bitmap);
  }
  for (const auto& [pod, bitmap] : g.encoding.spine.s_rules) {
    for (std::size_t plane = 0; plane < topo_->params().spines_per_pod;
         ++plane) {
      spine(topo_->spine_at(pod, plane)).install_srule(g.address, bitmap);
    }
  }
}

void Fabric::uninstall_group(const elmo::Controller& controller,
                             elmo::GroupId group) {
  const auto& g = controller.group(group);
  for (const auto& member : g.members) {
    hypervisor(member.host).remove_flow(g.address);
  }
  for (const auto& [leaf_id, bitmap] : g.encoding.leaf.s_rules) {
    (void)bitmap;
    leaf(leaf_id).remove_srule(g.address);
  }
  for (const auto& [pod, bitmap] : g.encoding.spine.s_rules) {
    (void)bitmap;
    for (std::size_t plane = 0; plane < topo_->params().spines_per_pod;
         ++plane) {
      spine(topo_->spine_at(pod, plane)).remove_srule(g.address);
    }
  }
}

void Fabric::account(const NodeRef& from, const NodeRef& to, std::size_t bytes,
                     SendResult& result) {
  auto& link = links_[{from, to}];
  ++link.packets;
  link.bytes += bytes;
  ++result.total_link_transmissions;
  result.total_wire_bytes += bytes;
}

NodeRef Fabric::neighbor_of(const NodeRef& node, std::size_t out_port) const {
  const auto& t = *topo_;
  switch (node.layer) {
    case topo::Layer::kLeaf: {
      if (out_port < t.leaf_down_ports()) {
        return NodeRef{topo::Layer::kHost, t.host_at(node.id, out_port)};
      }
      const auto plane = out_port - t.leaf_down_ports();
      return NodeRef{topo::Layer::kSpine,
                     t.spine_at(t.pod_of_leaf(node.id), plane)};
    }
    case topo::Layer::kSpine: {
      if (out_port < t.spine_down_ports()) {
        return NodeRef{topo::Layer::kLeaf,
                       t.leaf_at(t.pod_of_spine(node.id), out_port)};
      }
      const auto core_index = out_port - t.spine_down_ports();
      return NodeRef{topo::Layer::kCore,
                     t.core_behind_spine_port(node.id, core_index)};
    }
    case topo::Layer::kCore:
      return NodeRef{topo::Layer::kSpine,
                     t.spine_behind_core_port(
                         node.id, static_cast<topo::PodId>(out_port))};
    case topo::Layer::kHost:
      break;
  }
  throw std::logic_error{"Fabric: hosts have no switch ports"};
}

SendResult Fabric::send(topo::HostId src, net::Ipv4Address group,
                        std::span<const std::uint8_t> payload) {
  SendResult result;
  auto encapsulated = hypervisor(src).encapsulate(group, payload);
  if (!encapsulated) return result;
  net::PacketView packet{std::move(*encapsulated)};

  constexpr std::size_t kMaxHops = 8;  // > any Clos path; catches loops
  const NodeRef src_node{topo::Layer::kHost, src};
  const NodeRef first_leaf{topo::Layer::kLeaf, topo_->leaf_of_host(src)};
  account(src_node, first_leaf, packet.size(), result);

  queue_.clear();
  if (!lost()) {
    queue_.push_back(WorkItem{first_leaf, std::move(packet), 1});
  }

  while (!queue_.empty()) {
    auto item = std::move(queue_.front());
    queue_.pop_front();
    const bool at_host = item.at.layer == topo::Layer::kHost;
    if (!at_host) {
      result.max_hops = std::max(result.max_hops, item.hops);
      if (item.hops > kMaxHops) {
        throw std::runtime_error{"Fabric: packet exceeded max hops (loop?)"};
      }
    }

    arena_.clear();
    const auto emissions = element(item.at).process(item.packet, 0, arena_);

    if (at_host) {
      // Hypervisor emissions are per-VM payload deliveries, not wire hops.
      result.vm_deliveries += emissions.size();
      continue;
    }
    for (auto& emission : emissions) {
      const auto next = neighbor_of(item.at, emission.out_port);
      account(item.at, next, emission.packet.size(), result);
      if (lost()) continue;
      if (next.layer == topo::Layer::kHost) {
        ++result.host_copies[next.id];
        queue_.push_back(
            WorkItem{next, std::move(emission.packet), item.hops});
      } else {
        queue_.push_back(
            WorkItem{next, std::move(emission.packet), item.hops + 1});
      }
    }
  }
  return result;
}

SendResult Fabric::send(topo::HostId src, net::Ipv4Address group,
                        std::size_t payload_bytes) {
  const std::vector<std::uint8_t> payload(payload_bytes, 0xab);
  return send(src, group, payload);
}

std::vector<SendResult> Fabric::send_batch(
    std::span<const SendRequest> requests) {
  std::vector<SendResult> results;
  results.reserve(requests.size());
  std::vector<std::uint8_t> payload;  // reused scratch across the batch
  for (const auto& request : requests) {
    payload.assign(request.payload_bytes, 0xab);
    results.push_back(send(request.src, request.group, payload));
  }
  return results;
}

SendResult Fabric::send_unicast(topo::HostId src, topo::HostId dst,
                                std::size_t payload_bytes) {
  SendResult result;
  if (src == dst) return result;
  const auto& t = *topo_;
  const auto wire_bytes = net::kOuterHeaderBytes + payload_bytes;

  const auto hash =
      dp::flow_hash(dp::host_address(src), dp::host_address(dst));
  const auto src_leaf = t.leaf_of_host(src);
  const auto dst_leaf = t.leaf_of_host(dst);

  std::vector<NodeRef> path;
  path.push_back(NodeRef{topo::Layer::kHost, src});
  path.push_back(NodeRef{topo::Layer::kLeaf, src_leaf});
  if (src_leaf != dst_leaf) {
    const auto plane = hash % t.leaf_up_ports();
    if (t.pod_of_leaf(src_leaf) == t.pod_of_leaf(dst_leaf)) {
      path.push_back(NodeRef{topo::Layer::kSpine,
                             t.spine_at(t.pod_of_leaf(src_leaf), plane)});
    } else {
      path.push_back(NodeRef{topo::Layer::kSpine,
                             t.spine_at(t.pod_of_leaf(src_leaf), plane)});
      path.push_back(NodeRef{
          topo::Layer::kCore,
          t.core_at(plane, (hash >> 8) % t.spine_up_ports())});
      path.push_back(NodeRef{topo::Layer::kSpine,
                             t.spine_at(t.pod_of_leaf(dst_leaf), plane)});
    }
    path.push_back(NodeRef{topo::Layer::kLeaf, dst_leaf});
  }
  path.push_back(NodeRef{topo::Layer::kHost, dst});

  bool delivered = true;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    account(path[i], path[i + 1], wire_bytes, result);
    if (lost()) {
      delivered = false;
      break;
    }
  }
  result.max_hops = path.size() - 2;
  if (delivered) ++result.host_copies[dst];
  return result;
}

}  // namespace elmo::sim
