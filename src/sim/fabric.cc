#include "sim/fabric.h"

#include <algorithm>
#include <optional>
#include <stdexcept>

#include "obs/span.h"
#include "obs/timeseries.h"
#include "sim/flight_recorder.h"

namespace elmo::sim {

namespace {

// Global-registry ids, registered once on first use (registration takes the
// registry lock; the per-send hot path must not).
struct FabricMetricIds {
  obs::MetricsRegistry::Id send_seconds;
  obs::MetricsRegistry::Id batch_seconds;
  obs::MetricsRegistry::Id tte_join_seconds;
  obs::MetricsRegistry::Id tte_leave_seconds;
  FabricMetricIds() {
    auto& reg = obs::MetricsRegistry::global();
    send_seconds = reg.histogram(
        "elmo_fabric_send_seconds", obs::latency_bounds(),
        "Wall-clock time of one multicast fabric walk (event-queue drain)");
    batch_seconds = reg.histogram(
        "elmo_fabric_batch_seconds", obs::latency_bounds(),
        "Wall-clock time of one batched fabric walk (all waves of one "
        "send_batch call)");
    tte_join_seconds = reg.histogram(
        "elmo_tte_join_seconds", obs::latency_bounds(),
        "Time-to-effect of a join: churn-event ingest to the first "
        "host-copy delivered over the freshly installed flow (DESIGN.md "
        "S15)");
    tte_leave_seconds = reg.histogram(
        "elmo_tte_leave_stale_seconds", obs::latency_bounds(),
        "Time-to-effect of a leave: churn-event ingest to the last stale "
        "host-copy delivered before the flow removal landed (0 when no "
        "stale copy was seen)");
  }
};

FabricMetricIds& fabric_metric_ids() {
  static FabricMetricIds ids;
  return ids;
}

constexpr std::size_t kMaxHops = 8;  // > any Clos path; catches loops

}  // namespace

Fabric::Fabric(const topo::ClosTopology& topology) : topo_{&topology} {
  hypervisors_.reserve(topology.num_hosts());
  for (topo::HostId h = 0; h < topology.num_hosts(); ++h) {
    hypervisors_.push_back(
        std::make_unique<dp::HypervisorSwitch>(topology, h));
  }
  leaves_.reserve(topology.num_leaves());
  for (topo::LeafId l = 0; l < topology.num_leaves(); ++l) {
    leaves_.push_back(
        std::make_unique<dp::NetworkSwitch>(topology, topo::Layer::kLeaf, l));
  }
  spines_.reserve(topology.num_spines());
  for (topo::SpineId s = 0; s < topology.num_spines(); ++s) {
    spines_.push_back(
        std::make_unique<dp::NetworkSwitch>(topology, topo::Layer::kSpine, s));
  }
  cores_.reserve(topology.num_cores());
  for (topo::CoreId c = 0; c < topology.num_cores(); ++c) {
    cores_.push_back(
        std::make_unique<dp::NetworkSwitch>(topology, topo::Layer::kCore, c));
  }

  // Flat, index-addressed node and link state: hosts, leaves, spines, cores
  // in one contiguous table, and one LinkStats slot per (node, out-port).
  const std::size_t hosts = topology.num_hosts();
  const std::size_t leaves = topology.num_leaves();
  const std::size_t spines = topology.num_spines();
  const std::size_t cores = topology.num_cores();
  layer_base_[static_cast<std::size_t>(topo::Layer::kHost)] = 0;
  layer_base_[static_cast<std::size_t>(topo::Layer::kLeaf)] = hosts;
  layer_base_[static_cast<std::size_t>(topo::Layer::kSpine)] = hosts + leaves;
  layer_base_[static_cast<std::size_t>(topo::Layer::kCore)] =
      hosts + leaves + spines;

  const std::size_t nodes = hosts + leaves + spines + cores;
  elements_.resize(nodes);
  for (std::size_t h = 0; h < hosts; ++h) elements_[h] = hypervisors_[h].get();
  for (std::size_t l = 0; l < leaves; ++l) {
    elements_[hosts + l] = leaves_[l].get();
  }
  for (std::size_t s = 0; s < spines; ++s) {
    elements_[hosts + leaves + s] = spines_[s].get();
  }
  for (std::size_t c = 0; c < cores; ++c) {
    elements_[hosts + leaves + spines + c] = cores_[c].get();
  }

  auto out_degree = [&](std::size_t node) {
    if (node < hosts) return std::size_t{1};  // host uplink to its leaf
    if (node < hosts + leaves) {
      return topology.leaf_down_ports() + topology.leaf_up_ports();
    }
    if (node < hosts + leaves + spines) {
      return topology.spine_down_ports() + topology.spine_up_ports();
    }
    return topology.core_ports();
  };
  link_base_.resize(nodes + 1);
  link_base_[0] = 0;
  for (std::size_t n = 0; n < nodes; ++n) {
    link_base_[n + 1] = link_base_[n] + out_degree(n);
  }
  link_stats_.assign(link_base_.back(), LinkStats{});
}

void Fabric::set_provenance(obs::ProvenanceLog* log) {
  prov_ = log;
  for (auto* e : elements_) e->set_provenance(log);
}

void Fabric::trace_watch(net::Ipv4Address group, topo::HostId host,
                         const obs::TraceContext& event_root, bool leave) {
  if (tracer_ == nullptr) return;
  TteWatch w;
  w.leave = leave;
  w.event_root = event_root;
  w.t0_us = tracer_->now_us();
  // Newest event for the key wins — matches the control plane's coalescing.
  tte_watches_[{group.value, host}] = w;
}

void Fabric::trace_rule_installed(net::Ipv4Address group, topo::HostId host,
                                  const obs::TraceContext& install_span,
                                  bool removed) {
  if (tracer_ == nullptr || tte_watches_.empty()) return;
  const auto it = tte_watches_.find({group.value, host});
  if (it == tte_watches_.end()) return;
  auto& w = it->second;
  if (!removed) {
    if (w.leave) {
      // A flow install landed while a leave watch was open: the host
      // re-joined before the removal hit the fabric — nothing to measure.
      tte_watches_.erase(it);
      return;
    }
    w.installed = true;
    w.install_span = install_span;
    return;
  }
  if (!w.leave) {
    // A removal landed on a join watch: the join was superseded.
    tte_watches_.erase(it);
    return;
  }
  // The flow removal is live: the leave's time-to-effect is the time the
  // stale tree kept delivering after ingest (0 if it never did).
  obs::TteRecord rec;
  rec.trace_id = w.event_root.trace_id;
  rec.leave = true;
  rec.group = group.value;
  rec.host = host;
  rec.stale_seen = w.last_stale_us >= 0;
  rec.tte_seconds =
      rec.stale_seen ? std::max(0.0, (w.last_stale_us - w.t0_us) / 1e6) : 0.0;
  ELMO_METRIC(
      reg.observe(fabric_metric_ids().tte_leave_seconds, rec.tte_seconds));
  const auto inst = tracer_->instant(
      "tte:leave_closed", obs::TraceLane::kData, w.event_root,
      {{"group", static_cast<double>(group.value)},
       {"host", static_cast<double>(host)},
       {"tte_us", rec.tte_seconds * 1e6},
       {"stale_seen", rec.stale_seen ? 1.0 : 0.0}});
  tracer_->flow(install_span, obs::TraceLane::kInstall, inst,
                obs::TraceLane::kData);
  tte_records_.push_back(rec);
  tte_watches_.erase(it);
}

void Fabric::tte_on_delivery(std::uint32_t group, std::uint32_t host) {
  const auto it = tte_watches_.find({group, host});
  if (it == tte_watches_.end()) return;
  auto& w = it->second;
  const double now = tracer_->now_us();
  if (w.leave) {
    w.last_stale_us = now;  // still delivering over the stale tree
    return;
  }
  if (!w.installed) return;  // pre-install tree; not the new rule's effect
  // First delivery over the freshly installed flow: the join is live.
  obs::TteRecord rec;
  rec.trace_id = w.event_root.trace_id;
  rec.leave = false;
  rec.group = group;
  rec.host = host;
  rec.tte_seconds = std::max(0.0, (now - w.t0_us) / 1e6);
  ELMO_METRIC(
      reg.observe(fabric_metric_ids().tte_join_seconds, rec.tte_seconds));
  const auto inst = tracer_->instant(
      "tte:first_delivery", obs::TraceLane::kData, w.event_root,
      {{"group", static_cast<double>(group)},
       {"host", static_cast<double>(host)},
       {"tte_us", rec.tte_seconds * 1e6}});
  tracer_->flow(w.install_span, obs::TraceLane::kInstall, inst,
                obs::TraceLane::kData);
  tte_records_.push_back(rec);
  tte_watches_.erase(it);
}

void Fabric::install_group(const elmo::Controller& controller,
                           elmo::GroupId group) {
  const auto& g = controller.group(group);

  // One flow per host, merged across co-located members: installing per
  // member would overwrite the host's flow, dropping the earlier member's
  // local VM (and its header template) whenever two VMs of the group share
  // a host.
  std::map<topo::HostId, dp::HypervisorSwitch::GroupFlow> flows;
  for (const auto& member : g.members) {
    auto& flow = flows[member.host];
    flow.vni = g.tenant;
    if (elmo::can_receive(member.role)) flow.local_vms.push_back(member.vm);
    if (elmo::can_send(member.role) && flow.elmo_header.empty()) {
      flow.elmo_header = controller.header_for(group, member.host);
    }
  }
  for (auto& [host, flow] : flows) {
    hypervisor(host).install_flow(g.address, std::move(flow));
  }

  for (const auto& [leaf_id, bitmap] : g.encoding.leaf.s_rules) {
    leaf(leaf_id).install_srule(g.address, bitmap);
  }
  for (const auto& [pod, bitmap] : g.encoding.spine.s_rules) {
    for (std::size_t plane = 0; plane < topo_->params().spines_per_pod;
         ++plane) {
      spine(topo_->spine_at(pod, plane)).install_srule(g.address, bitmap);
    }
  }
}

void Fabric::uninstall_group(const elmo::Controller& controller,
                             elmo::GroupId group) {
  const auto& g = controller.group(group);
  for (const auto& member : g.members) {
    hypervisor(member.host).remove_flow(g.address);
  }
  for (const auto& [leaf_id, bitmap] : g.encoding.leaf.s_rules) {
    (void)bitmap;
    leaf(leaf_id).remove_srule(g.address);
  }
  for (const auto& [pod, bitmap] : g.encoding.spine.s_rules) {
    (void)bitmap;
    for (std::size_t plane = 0; plane < topo_->params().spines_per_pod;
         ++plane) {
      spine(topo_->spine_at(pod, plane)).remove_srule(g.address);
    }
  }
}

std::size_t Fabric::port_towards(const NodeRef& from, const NodeRef& to) const {
  const auto& t = *topo_;
  switch (from.layer) {
    case topo::Layer::kHost:
      return 0;  // a host's only port is its leaf uplink
    case topo::Layer::kLeaf:
      if (to.layer == topo::Layer::kHost) return t.host_port_on_leaf(to.id);
      return t.leaf_down_ports() + t.plane_of_spine(to.id);
    case topo::Layer::kSpine:
      if (to.layer == topo::Layer::kLeaf) return t.leaf_index_in_pod(to.id);
      return t.spine_down_ports() + t.core_index_in_plane(to.id);
    case topo::Layer::kCore:
      return t.pod_of_spine(to.id);
  }
  throw std::logic_error{"Fabric: unknown node layer"};
}

void Fabric::account(const NodeRef& from, const NodeRef& to, std::size_t bytes,
                     SendResult& result) {
  account_port(node_index(from), port_towards(from, to), bytes, result);
}

void Fabric::account_port(std::size_t from_index, std::size_t port,
                          std::size_t bytes, SendResult& result) {
  auto& link = link_stats_[link_base_[from_index] + port];
  ++link.packets;
  link.bytes += bytes;
  ++result.total_link_transmissions;
  result.total_wire_bytes += bytes;
  ++walk_stats_.link_transmissions;
  walk_stats_.wire_bytes += bytes;
}

std::map<std::pair<NodeRef, NodeRef>, LinkStats> Fabric::links() const {
  std::map<std::pair<NodeRef, NodeRef>, LinkStats> out;
  auto emit = [&](const NodeRef& node) {
    const auto idx = node_index(node);
    for (std::size_t port = 0; port < link_base_[idx + 1] - link_base_[idx];
         ++port) {
      const auto& stats = link_stats_[link_base_[idx] + port];
      if (stats.packets == 0) continue;
      const auto to = node.layer == topo::Layer::kHost
                          ? NodeRef{topo::Layer::kLeaf,
                                    topo_->leaf_of_host(node.id)}
                          : neighbor_of(node, port);
      out.emplace(std::pair{node, to}, stats);
    }
  };
  for (topo::HostId h = 0; h < topo_->num_hosts(); ++h) {
    emit(NodeRef{topo::Layer::kHost, h});
  }
  for (topo::LeafId l = 0; l < topo_->num_leaves(); ++l) {
    emit(NodeRef{topo::Layer::kLeaf, l});
  }
  for (topo::SpineId s = 0; s < topo_->num_spines(); ++s) {
    emit(NodeRef{topo::Layer::kSpine, s});
  }
  for (topo::CoreId c = 0; c < topo_->num_cores(); ++c) {
    emit(NodeRef{topo::Layer::kCore, c});
  }
  return out;
}

NodeRef Fabric::neighbor_of(const NodeRef& node, std::size_t out_port) const {
  const auto& t = *topo_;
  switch (node.layer) {
    case topo::Layer::kLeaf: {
      if (out_port < t.leaf_down_ports()) {
        return NodeRef{topo::Layer::kHost, t.host_at(node.id, out_port)};
      }
      const auto plane = out_port - t.leaf_down_ports();
      return NodeRef{topo::Layer::kSpine,
                     t.spine_at(t.pod_of_leaf(node.id), plane)};
    }
    case topo::Layer::kSpine: {
      if (out_port < t.spine_down_ports()) {
        return NodeRef{topo::Layer::kLeaf,
                       t.leaf_at(t.pod_of_spine(node.id), out_port)};
      }
      const auto core_index = out_port - t.spine_down_ports();
      return NodeRef{topo::Layer::kCore,
                     t.core_behind_spine_port(node.id, core_index)};
    }
    case topo::Layer::kCore:
      return NodeRef{topo::Layer::kSpine,
                     t.spine_behind_core_port(
                         node.id, static_cast<topo::PodId>(out_port))};
    case topo::Layer::kHost:
      break;
  }
  throw std::logic_error{"Fabric: hosts have no switch ports"};
}

SendResult Fabric::send(topo::HostId src, net::Ipv4Address group,
                        std::span<const std::uint8_t> payload) {
  SendResult result;
  auto encapsulated = hypervisor(src).encapsulate(group, payload);
  if (!encapsulated) return result;
  net::PacketView packet{std::move(*encapsulated)};

  std::optional<obs::Span> span;
  ELMO_METRIC(span.emplace(reg, fabric_metric_ids().send_seconds));
  if (recorder_ != nullptr) {
    recorder_->send_begin(walk_stats_.sends, group.value, src);
  }
  ++walk_stats_.sends;
  auto loss_rng = util::Rng::stream(loss_seed_, send_ordinal_++);

  const NodeRef src_node{topo::Layer::kHost, src};
  const NodeRef first_leaf{topo::Layer::kLeaf, topo_->leaf_of_host(src)};
  account(src_node, first_leaf, packet.size(), result);

  std::size_t prov_root = obs::kNoProvParent;
  if (prov_ != nullptr) {
    prov_root = prov_->begin_send(group.value, src, packet.size());
  }

  queue_.clear();
  if (!lost_on(loss_rng, node_index(src_node), 0)) {
    queue_.push_back(WorkItem{first_leaf, std::move(packet), 1, prov_root});
    ++walk_stats_.enqueues;
    walk_stats_.max_queue_depth = std::max<std::uint64_t>(
        walk_stats_.max_queue_depth, queue_.size());
  } else {
    ++walk_stats_.lost_copies;
    if (prov_ != nullptr) {
      prov_->lost_copy(first_leaf.layer, first_leaf.id, prov_root);
    }
  }

  while (!queue_.empty()) {
    auto item = std::move(queue_.front());
    queue_.pop_front();
    ++walk_stats_.work_items;
    const bool at_host = item.at.layer == topo::Layer::kHost;
    if (!at_host) {
      result.max_hops = std::max(result.max_hops, item.hops);
      if (item.hops > kMaxHops) {
        throw std::runtime_error{"Fabric: packet exceeded max hops (loop?)"};
      }
    }

    double item_start_us = 0;
    if (recorder_ != nullptr) item_start_us = recorder_->now_us();

    std::size_t prov_hop = obs::kNoProvParent;
    if (prov_ != nullptr) {
      prov_hop = prov_->begin_hop(item.at.layer, item.at.id, item.prov,
                                  item.packet.size());
    }

    arena_.clear();
    const auto emissions = element(item.at).process(item.packet, 0, arena_);

    if (at_host) {
      // Hypervisor emissions are per-VM payload deliveries, not wire hops.
      result.vm_deliveries += emissions.size();
      walk_stats_.vm_deliveries += emissions.size();
      if (recorder_ != nullptr) {
        recorder_->process(item.at, item_start_us,
                           static_cast<std::uint32_t>(emissions.size()),
                           static_cast<std::uint32_t>(queue_.size()),
                           static_cast<std::uint32_t>(item.hops));
      }
      continue;
    }
    const auto from_index = node_index(item.at);
    for (auto& emission : emissions) {
      const auto next = neighbor_of(item.at, emission.out_port);
      account_port(from_index, emission.out_port, emission.packet.size(),
                   result);
      if (lost_on(loss_rng, from_index, emission.out_port)) {
        ++walk_stats_.lost_copies;
        if (prov_ != nullptr) {
          prov_->lost_copy(next.layer, next.id, prov_hop);
        }
        continue;
      }
      if (next.layer == topo::Layer::kHost) {
        ++result.host_copies[next.id];
        ++walk_stats_.host_copies;
        if (!tte_watches_.empty()) tte_on_delivery(group.value, next.id);
        queue_.push_back(
            WorkItem{next, std::move(emission.packet), item.hops, prov_hop});
      } else {
        queue_.push_back(WorkItem{next, std::move(emission.packet),
                                  item.hops + 1, prov_hop});
      }
      ++walk_stats_.enqueues;
    }
    walk_stats_.max_queue_depth = std::max<std::uint64_t>(
        walk_stats_.max_queue_depth, queue_.size());
    if (recorder_ != nullptr) {
      recorder_->process(item.at, item_start_us,
                         static_cast<std::uint32_t>(emissions.size()),
                         static_cast<std::uint32_t>(queue_.size()),
                         static_cast<std::uint32_t>(item.hops));
    }
  }
  return result;
}

SendResult Fabric::send(topo::HostId src, net::Ipv4Address group,
                        std::size_t payload_bytes) {
  const std::vector<std::uint8_t> payload(payload_bytes, 0xab);
  return send(src, group, payload);
}

std::vector<SendResult> Fabric::send_batch(std::span<const SendRequest> requests,
                                           const BatchOptions& options) {
  std::vector<SendResult> results(requests.size());
  if (requests.empty()) return results;

  const std::size_t threads =
      options.threads == 0 ? util::default_thread_count() : options.threads;
  if (pool_ == nullptr || pool_->threads() != threads) {
    pool_ = std::make_unique<util::ThreadPool>(threads);
  }
  const std::size_t nshards = pool_->threads();
  if (shards_.size() < nshards) shards_.resize(nshards);

  std::optional<obs::Span> span;
  ELMO_METRIC(span.emplace(reg, fabric_metric_ids().batch_seconds));
  ++walk_stats_.batch_walks;

  // Per-send scratch: loss stream and (when a log is attached) the decision
  // trace, assembled locally and committed in send order at the end.
  std::vector<util::Rng> rngs(requests.size(), util::Rng{0});
  std::vector<obs::SendTrace> traces;
  if (prov_ != nullptr) traces.resize(requests.size());

  wave_.clear();
  next_wave_.clear();

  // Phase A (serial): encapsulate every request and seed wave 0 with the
  // exact effects a serial send() would produce up to its first enqueue.
  std::vector<std::uint8_t> payload;  // reused scratch across requests
  for (std::size_t r = 0; r < requests.size(); ++r) {
    const auto& request = requests[r];
    payload.assign(request.payload_bytes, 0xab);
    auto encapsulated =
        hypervisor(request.src).encapsulate(request.group, payload);
    if (!encapsulated) continue;
    net::PacketView packet{std::move(*encapsulated)};

    if (recorder_ != nullptr) {
      recorder_->send_begin(walk_stats_.sends, request.group.value,
                            request.src);
    }
    ++walk_stats_.sends;
    rngs[r] = util::Rng::stream(loss_seed_, send_ordinal_++);

    const NodeRef src_node{topo::Layer::kHost, request.src};
    const NodeRef first_leaf{topo::Layer::kLeaf,
                             topo_->leaf_of_host(request.src)};
    account(src_node, first_leaf, packet.size(), results[r]);

    std::size_t prov_root = obs::kNoProvParent;
    if (prov_ != nullptr) {
      traces[r] =
          obs::make_trace(request.group.value, request.src, packet.size());
      prov_root = 0;
    }
    if (!lost_on(rngs[r], node_index(src_node), 0)) {
      wave_.push_back(BatchItem{first_leaf, std::move(packet), 1, prov_root,
                                static_cast<std::uint32_t>(r)});
      ++walk_stats_.enqueues;
    } else {
      ++walk_stats_.lost_copies;
      if (prov_ != nullptr) {
        obs::add_lost(traces[r], first_leaf.layer, first_leaf.id, prov_root);
      }
    }
  }

  // While a log is attached, elements must write decisions into the shard
  // that processes them; remember which elements were re-pointed so their
  // sinks can be restored afterwards.
  std::vector<dp::ForwardingElement*> swapped_elements;
  std::vector<std::uint8_t> sink_swapped;
  if (prov_ != nullptr) sink_swapped.assign(elements_.size(), 0);
  auto restore_sinks = [&] {
    for (auto* e : swapped_elements) e->set_provenance(prov_);
    swapped_elements.clear();
  };

  std::vector<std::uint32_t> item_shard;
  std::vector<std::uint32_t> item_local;

  try {
    while (!wave_.empty()) {
      ++walk_stats_.batch_waves;
      walk_stats_.max_queue_depth = std::max<std::uint64_t>(
          walk_stats_.max_queue_depth, wave_.size());

      for (std::size_t s = 0; s < nshards; ++s) {
        shards_[s].arena.clear();
        shards_[s].capture.decisions.clear();
        shards_[s].items.clear();
        shards_[s].spans.clear();
      }
      item_shard.resize(wave_.size());
      item_local.resize(wave_.size());

      // Shard by node: every element is processed by exactly one shard, and
      // within it in global wave order — so per-element effect order (and
      // with it every counter and multipath decision) does not depend on the
      // thread count.
      for (std::size_t i = 0; i < wave_.size(); ++i) {
        const auto idx = node_index(wave_[i].at);
        const auto s = static_cast<std::uint32_t>(idx % nshards);
        item_shard[i] = s;
        item_local[i] = static_cast<std::uint32_t>(shards_[s].items.size());
        shards_[s].items.push_back(static_cast<std::uint32_t>(i));
        if (prov_ != nullptr) {
          if (!sink_swapped[idx]) {
            sink_swapped[idx] = 1;
            swapped_elements.push_back(elements_[idx]);
          }
          elements_[idx]->set_provenance(&shards_[s].capture);
        }
      }

      // Parallel phase: run process() for every item into its shard's arena.
      // Nothing shared is mutated: per-element counters belong to one shard,
      // packet buffers are atomically refcounted, copy stats are atomic.
      pool_->parallel_for(0, nshards, [&](std::size_t s) {
        auto& shard = shards_[s];
        for (const auto wi : shard.items) {
          auto& item = wave_[wi];
          if (item.at.layer != topo::Layer::kHost && item.hops > kMaxHops) {
            throw std::runtime_error{
                "Fabric: packet exceeded max hops (loop?)"};
          }
          const auto mark = shard.arena.mark();
          (void)element(item.at).process(item.packet, 0, shard.arena);
          shard.spans.emplace_back(
              static_cast<std::uint32_t>(mark),
              static_cast<std::uint32_t>(shard.arena.mark() - mark));
        }
      });

      // Merge phase (serial, global wave order): apply accounting, loss
      // draws, host deliveries, provenance and recorder effects exactly as
      // the serial walk would, and build the next wave in order.
      next_wave_.clear();
      for (std::size_t i = 0; i < wave_.size(); ++i) {
        auto& item = wave_[i];
        auto& shard = shards_[item_shard[i]];
        const auto [mark, count] = shard.spans[item_local[i]];
        const auto emissions = shard.arena.since(mark).first(count);
        auto& result = results[item.send];
        auto& loss_rng = rngs[item.send];

        ++walk_stats_.work_items;
        const bool at_host = item.at.layer == topo::Layer::kHost;
        if (!at_host) result.max_hops = std::max(result.max_hops, item.hops);

        double item_start_us = 0;
        if (recorder_ != nullptr) item_start_us = recorder_->now_us();

        std::size_t prov_hop = obs::kNoProvParent;
        if (prov_ != nullptr) {
          auto& trace = traces[item.send];
          prov_hop = obs::add_hop(trace, item.at.layer, item.at.id, item.prov,
                                  item.packet.size());
          trace.hops[prov_hop].decision =
              shard.capture.decisions[item_local[i]];
        }

        auto pending = [&] {
          return static_cast<std::uint32_t>(wave_.size() - i - 1 +
                                            next_wave_.size());
        };
        if (at_host) {
          result.vm_deliveries += emissions.size();
          walk_stats_.vm_deliveries += emissions.size();
          if (recorder_ != nullptr) {
            recorder_->process(item.at, item_start_us,
                               static_cast<std::uint32_t>(emissions.size()),
                               pending(), static_cast<std::uint32_t>(item.hops));
          }
          continue;
        }
        const auto from_index = node_index(item.at);
        for (auto& emission : emissions) {
          const auto next = neighbor_of(item.at, emission.out_port);
          account_port(from_index, emission.out_port, emission.packet.size(),
                       result);
          if (lost_on(loss_rng, from_index, emission.out_port)) {
            ++walk_stats_.lost_copies;
            if (prov_ != nullptr) {
              obs::add_lost(traces[item.send], next.layer, next.id, prov_hop);
            }
            continue;
          }
          if (next.layer == topo::Layer::kHost) {
            ++result.host_copies[next.id];
            ++walk_stats_.host_copies;
            if (!tte_watches_.empty()) {
              tte_on_delivery(requests[item.send].group.value, next.id);
            }
            next_wave_.push_back(BatchItem{next, std::move(emission.packet),
                                           item.hops, prov_hop, item.send});
          } else {
            next_wave_.push_back(BatchItem{next, std::move(emission.packet),
                                           item.hops + 1, prov_hop,
                                           item.send});
          }
          ++walk_stats_.enqueues;
        }
        if (recorder_ != nullptr) {
          recorder_->process(item.at, item_start_us,
                             static_cast<std::uint32_t>(emissions.size()),
                             pending(), static_cast<std::uint32_t>(item.hops));
        }
      }
      std::swap(wave_, next_wave_);
    }
  } catch (...) {
    restore_sinks();
    throw;
  }
  restore_sinks();

  if (prov_ != nullptr) {
    for (auto& trace : traces) {
      if (!trace.hops.empty()) prov_->append_trace(std::move(trace));
    }
  }
  return results;
}

SendResult Fabric::send_unicast(topo::HostId src, topo::HostId dst,
                                std::size_t payload_bytes) {
  SendResult result;
  if (src == dst) return result;
  ++walk_stats_.unicast_sends;
  auto loss_rng = util::Rng::stream(loss_seed_, send_ordinal_++);
  const auto& t = *topo_;
  const auto wire_bytes = net::kOuterHeaderBytes + payload_bytes;

  const auto hash =
      dp::flow_hash(dp::host_address(src), dp::host_address(dst));
  const auto src_leaf = t.leaf_of_host(src);
  const auto dst_leaf = t.leaf_of_host(dst);

  std::vector<NodeRef> path;
  path.push_back(NodeRef{topo::Layer::kHost, src});
  path.push_back(NodeRef{topo::Layer::kLeaf, src_leaf});
  if (src_leaf != dst_leaf) {
    const auto plane = hash % t.leaf_up_ports();
    if (t.pod_of_leaf(src_leaf) == t.pod_of_leaf(dst_leaf)) {
      path.push_back(NodeRef{topo::Layer::kSpine,
                             t.spine_at(t.pod_of_leaf(src_leaf), plane)});
    } else {
      path.push_back(NodeRef{topo::Layer::kSpine,
                             t.spine_at(t.pod_of_leaf(src_leaf), plane)});
      path.push_back(NodeRef{
          topo::Layer::kCore,
          t.core_at(plane, (hash >> 8) % t.spine_up_ports())});
      path.push_back(NodeRef{topo::Layer::kSpine,
                             t.spine_at(t.pod_of_leaf(dst_leaf), plane)});
    }
    path.push_back(NodeRef{topo::Layer::kLeaf, dst_leaf});
  }
  path.push_back(NodeRef{topo::Layer::kHost, dst});

  bool delivered = true;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const auto from_index = node_index(path[i]);
    const auto port = port_towards(path[i], path[i + 1]);
    account_port(from_index, port, wire_bytes, result);
    if (lost_on(loss_rng, from_index, port)) {
      delivered = false;
      break;
    }
  }
  result.max_hops = path.size() - 2;
  if (delivered) {
    ++result.host_copies[dst];
  } else {
    ++walk_stats_.lost_copies;
  }
  return result;
}

void Fabric::set_link_loss(const NodeRef& from, const NodeRef& to,
                           double rate) {
  if (link_loss_.size() != link_stats_.size()) {
    link_loss_.assign(link_stats_.size(), 0.0);
  }
  const auto from_index = node_index(from);
  link_loss_[link_base_[from_index] + port_towards(from, to)] = rate;
  has_link_loss_ = true;
}

void Fabric::clear_link_loss() {
  has_link_loss_ = false;
  link_loss_.clear();
}

void Fabric::ensure_link_classes() const {
  if (!link_class_.empty()) return;
  // A link slot's directed class follows from its owner's layer and port
  // range alone — no topology walk needed.
  link_class_.resize(link_stats_.size());
  const std::size_t hosts = topo_->num_hosts();
  const std::size_t leaves = topo_->num_leaves();
  const std::size_t spines = topo_->num_spines();
  const std::size_t cores = topo_->num_cores();
  const std::size_t nodes = hosts + leaves + spines + cores;
  for (std::size_t n = 0; n < nodes; ++n) {
    const std::size_t degree = link_base_[n + 1] - link_base_[n];
    for (std::size_t port = 0; port < degree; ++port) {
      std::uint8_t klass;
      if (n < hosts) {
        klass = 0;  // host -> leaf
      } else if (n < hosts + leaves) {
        klass = port < topo_->leaf_down_ports() ? 1 : 2;  // ->host / ->spine
      } else if (n < hosts + leaves + spines) {
        klass = port < topo_->spine_down_ports() ? 3 : 4;  // ->leaf / ->core
      } else {
        klass = 5;  // core -> spine
      }
      link_class_[link_base_[n] + port] = klass;
    }
  }
}

void Fabric::sample_into(obs::TimeSeriesStore& store) const {
  struct LayerSample {
    topo::Layer layer;
    const char* packets_in;
    const char* copies_out;
    const char* drops;
  };
  static constexpr LayerSample kLayerSamples[] = {
      {topo::Layer::kLeaf, "elmo_dp_leaf_packets_in_total",
       "elmo_dp_leaf_copies_out_total", "elmo_dp_leaf_drops_total"},
      {topo::Layer::kSpine, "elmo_dp_spine_packets_in_total",
       "elmo_dp_spine_copies_out_total", "elmo_dp_spine_drops_total"},
      {topo::Layer::kCore, "elmo_dp_core_packets_in_total",
       "elmo_dp_core_copies_out_total", "elmo_dp_core_drops_total"},
  };
  for (const auto& ls : kLayerSamples) {
    const auto s = aggregate_switch_stats(ls.layer);
    store.append(ls.packets_in, static_cast<double>(s.packets_in));
    store.append(ls.copies_out, static_cast<double>(s.copies_out));
    store.append(ls.drops, static_cast<double>(s.drops));
  }

  const auto h = aggregate_hypervisor_stats();
  store.append("elmo_dp_host_sent_total", static_cast<double>(h.sent));
  store.append("elmo_dp_host_received_total", static_cast<double>(h.received));
  store.append("elmo_dp_host_vm_deliveries_total",
               static_cast<double>(h.delivered_to_vms));

  store.append("elmo_fabric_sends_total", static_cast<double>(walk_stats_.sends));
  store.append("elmo_fabric_lost_copies_total",
               static_cast<double>(walk_stats_.lost_copies));
  store.append("elmo_fabric_link_transmissions_total",
               static_cast<double>(walk_stats_.link_transmissions));
  store.append("elmo_fabric_wire_bytes_total",
               static_cast<double>(walk_stats_.wire_bytes));

  // Directed per-layer-pair transmission sums: the "copies put on the wire
  // towards layer X" side of the conservation law the loss-rate detector
  // checks against layer X's own arrival counters.
  ensure_link_classes();
  std::uint64_t tx[6] = {0, 0, 0, 0, 0, 0};
  for (std::size_t i = 0; i < link_stats_.size(); ++i) {
    tx[link_class_[i]] += link_stats_[i].packets;
  }
  static constexpr const char* kClassSeries[6] = {
      "elmo_link_host_leaf_tx_total",  "elmo_link_leaf_host_tx_total",
      "elmo_link_leaf_spine_tx_total", "elmo_link_spine_leaf_tx_total",
      "elmo_link_spine_core_tx_total", "elmo_link_core_spine_tx_total",
  };
  for (std::size_t k = 0; k < 6; ++k) {
    store.append(kClassSeries[k], static_cast<double>(tx[k]));
  }
}

dp::SwitchStats Fabric::aggregate_switch_stats(topo::Layer layer) const {
  dp::SwitchStats total;
  const auto* pool = layer == topo::Layer::kLeaf    ? &leaves_
                     : layer == topo::Layer::kSpine ? &spines_
                                                    : &cores_;
  for (const auto& sw : *pool) total += sw->stats();
  return total;
}

dp::HypervisorStats Fabric::aggregate_hypervisor_stats() const {
  dp::HypervisorStats total;
  for (const auto& hv : hypervisors_) total += hv->stats();
  return total;
}

void accumulate_fabric_metrics(const Fabric& fabric,
                               obs::MetricsRegistry& reg) {
  auto add = [&reg](std::string_view name, std::uint64_t value,
                    std::string_view help) {
    const auto id = reg.counter(name, help);
    if (value > 0) reg.add(id, value);
  };

  struct LayerName {
    topo::Layer layer;
    const char* tag;
  };
  for (const auto& [layer, tag] : {LayerName{topo::Layer::kLeaf, "leaf"},
                                   LayerName{topo::Layer::kSpine, "spine"},
                                   LayerName{topo::Layer::kCore, "core"}}) {
    const auto s = fabric.aggregate_switch_stats(layer);
    const std::string p = std::string{"elmo_dp_"} + tag + "_";
    add(p + "packets_in_total", s.packets_in, "Packets entering the pipeline");
    add(p + "bytes_in_total", s.bytes_in, "Bytes entering the pipeline");
    add(p + "copies_out_total", s.copies_out, "Replicated copies emitted");
    add(p + "bytes_out_total", s.bytes_out, "Bytes emitted across all copies");
    add(p + "prule_matches_total", s.prule_matches,
        "Packets forwarded via a parser-matched p-rule bitmap");
    add(p + "upstream_matches_total", s.upstream_matches,
        "Packets forwarded via the layer's upstream rule");
    add(p + "srule_matches_total", s.srule_matches,
        "Packets forwarded via a group-table s-rule");
    add(p + "default_matches_total", s.default_matches,
        "Packets that fell back to the default p-rule");
    add(p + "drops_total", s.drops, "Packets dropped (no rule, or switch down)");
    add(p + "header_pops_total", s.header_pops,
        "Copies whose consumed Elmo sections were invalidated");
    add(p + "header_pop_bytes_total", s.header_pop_bytes,
        "Elmo header bytes removed by pops");
  }

  const auto h = fabric.aggregate_hypervisor_stats();
  add("elmo_dp_host_sent_total", h.sent, "Multicast packets encapsulated");
  add("elmo_dp_host_bytes_sent_total", h.bytes_sent,
      "Encapsulated bytes handed to the wire");
  add("elmo_dp_host_received_total", h.received,
      "Fabric packets received by hypervisors");
  add("elmo_dp_host_bytes_received_total", h.bytes_received,
      "Bytes received by hypervisors");
  add("elmo_dp_host_vm_deliveries_total", h.delivered_to_vms,
      "Per-VM payload deliveries");
  add("elmo_dp_host_delivered_bytes_total", h.delivered_bytes,
      "Payload bytes handed to local VMs");
  add("elmo_dp_host_redundant_copies_total", h.discarded,
      "Copies received by hosts with no local members (redundancy)");
  add("elmo_dp_host_unicast_fallback_total", h.unicast_fallback,
      "Sends that fell back to per-member unicast");

  const auto& w = fabric.walk_stats();
  add("elmo_fabric_sends_total", w.sends, "Multicast walks started");
  add("elmo_fabric_unicast_sends_total", w.unicast_sends,
      "Unicast path walks");
  add("elmo_fabric_work_items_total", w.work_items,
      "Event-queue entries processed");
  add("elmo_fabric_enqueues_total", w.enqueues, "Event-queue entries pushed");
  add("elmo_fabric_vm_deliveries_total", w.vm_deliveries,
      "VM deliveries observed by the walk");
  add("elmo_fabric_host_copies_total", w.host_copies,
      "Copies delivered to host ports");
  add("elmo_fabric_link_transmissions_total", w.link_transmissions,
      "Per-link transmissions accounted");
  add("elmo_fabric_wire_bytes_total", w.wire_bytes,
      "Bytes placed on the wire");
  add("elmo_fabric_lost_copies_total", w.lost_copies,
      "Copies dropped by the loss model");
  add("elmo_fabric_batch_walks_total", w.batch_walks,
      "Batched walk passes (send_batch calls)");
  add("elmo_fabric_batch_waves_total", w.batch_waves,
      "Level-synchronous waves run by batched walks");
  const auto depth_id = reg.gauge(
      "elmo_fabric_max_queue_depth",
      "High-water mark of pending event-queue items");
  reg.gauge_max(depth_id, static_cast<double>(w.max_queue_depth));
}

}  // namespace elmo::sim
