#include "sim/fabric.h"

#include <optional>
#include <stdexcept>

#include "obs/span.h"
#include "sim/flight_recorder.h"

namespace elmo::sim {

namespace {

// Global-registry ids, registered once on first use (registration takes the
// registry lock; the per-send hot path must not).
struct FabricMetricIds {
  obs::MetricsRegistry::Id send_seconds;
  FabricMetricIds() {
    auto& reg = obs::MetricsRegistry::global();
    send_seconds = reg.histogram(
        "elmo_fabric_send_seconds", obs::latency_bounds(),
        "Wall-clock time of one multicast fabric walk (event-queue drain)");
  }
};

FabricMetricIds& fabric_metric_ids() {
  static FabricMetricIds ids;
  return ids;
}

}  // namespace

Fabric::Fabric(const topo::ClosTopology& topology) : topo_{&topology} {
  hypervisors_.reserve(topology.num_hosts());
  for (topo::HostId h = 0; h < topology.num_hosts(); ++h) {
    hypervisors_.push_back(
        std::make_unique<dp::HypervisorSwitch>(topology, h));
  }
  leaves_.reserve(topology.num_leaves());
  for (topo::LeafId l = 0; l < topology.num_leaves(); ++l) {
    leaves_.push_back(
        std::make_unique<dp::NetworkSwitch>(topology, topo::Layer::kLeaf, l));
  }
  spines_.reserve(topology.num_spines());
  for (topo::SpineId s = 0; s < topology.num_spines(); ++s) {
    spines_.push_back(
        std::make_unique<dp::NetworkSwitch>(topology, topo::Layer::kSpine, s));
  }
  cores_.reserve(topology.num_cores());
  for (topo::CoreId c = 0; c < topology.num_cores(); ++c) {
    cores_.push_back(
        std::make_unique<dp::NetworkSwitch>(topology, topo::Layer::kCore, c));
  }
}

void Fabric::set_provenance(obs::ProvenanceLog* log) {
  prov_ = log;
  for (auto& hv : hypervisors_) hv->set_provenance(log);
  for (auto& sw : leaves_) sw->set_provenance(log);
  for (auto& sw : spines_) sw->set_provenance(log);
  for (auto& sw : cores_) sw->set_provenance(log);
}

dp::ForwardingElement& Fabric::element(const NodeRef& node) {
  switch (node.layer) {
    case topo::Layer::kHost:
      return *hypervisors_.at(node.id);
    case topo::Layer::kLeaf:
      return *leaves_.at(node.id);
    case topo::Layer::kSpine:
      return *spines_.at(node.id);
    case topo::Layer::kCore:
      return *cores_.at(node.id);
  }
  throw std::logic_error{"Fabric: unknown node layer"};
}

void Fabric::install_group(const elmo::Controller& controller,
                           elmo::GroupId group) {
  const auto& g = controller.group(group);

  // One flow per host, merged across co-located members: installing per
  // member would overwrite the host's flow, dropping the earlier member's
  // local VM (and its header template) whenever two VMs of the group share
  // a host.
  std::map<topo::HostId, dp::HypervisorSwitch::GroupFlow> flows;
  for (const auto& member : g.members) {
    auto& flow = flows[member.host];
    flow.vni = g.tenant;
    if (elmo::can_receive(member.role)) flow.local_vms.push_back(member.vm);
    if (elmo::can_send(member.role) && flow.elmo_header.empty()) {
      flow.elmo_header = controller.header_for(group, member.host);
    }
  }
  for (auto& [host, flow] : flows) {
    hypervisor(host).install_flow(g.address, std::move(flow));
  }

  for (const auto& [leaf_id, bitmap] : g.encoding.leaf.s_rules) {
    leaf(leaf_id).install_srule(g.address, bitmap);
  }
  for (const auto& [pod, bitmap] : g.encoding.spine.s_rules) {
    for (std::size_t plane = 0; plane < topo_->params().spines_per_pod;
         ++plane) {
      spine(topo_->spine_at(pod, plane)).install_srule(g.address, bitmap);
    }
  }
}

void Fabric::uninstall_group(const elmo::Controller& controller,
                             elmo::GroupId group) {
  const auto& g = controller.group(group);
  for (const auto& member : g.members) {
    hypervisor(member.host).remove_flow(g.address);
  }
  for (const auto& [leaf_id, bitmap] : g.encoding.leaf.s_rules) {
    (void)bitmap;
    leaf(leaf_id).remove_srule(g.address);
  }
  for (const auto& [pod, bitmap] : g.encoding.spine.s_rules) {
    (void)bitmap;
    for (std::size_t plane = 0; plane < topo_->params().spines_per_pod;
         ++plane) {
      spine(topo_->spine_at(pod, plane)).remove_srule(g.address);
    }
  }
}

void Fabric::account(const NodeRef& from, const NodeRef& to, std::size_t bytes,
                     SendResult& result) {
  auto& link = links_[{from, to}];
  ++link.packets;
  link.bytes += bytes;
  ++result.total_link_transmissions;
  result.total_wire_bytes += bytes;
  ++walk_stats_.link_transmissions;
  walk_stats_.wire_bytes += bytes;
}

NodeRef Fabric::neighbor_of(const NodeRef& node, std::size_t out_port) const {
  const auto& t = *topo_;
  switch (node.layer) {
    case topo::Layer::kLeaf: {
      if (out_port < t.leaf_down_ports()) {
        return NodeRef{topo::Layer::kHost, t.host_at(node.id, out_port)};
      }
      const auto plane = out_port - t.leaf_down_ports();
      return NodeRef{topo::Layer::kSpine,
                     t.spine_at(t.pod_of_leaf(node.id), plane)};
    }
    case topo::Layer::kSpine: {
      if (out_port < t.spine_down_ports()) {
        return NodeRef{topo::Layer::kLeaf,
                       t.leaf_at(t.pod_of_spine(node.id), out_port)};
      }
      const auto core_index = out_port - t.spine_down_ports();
      return NodeRef{topo::Layer::kCore,
                     t.core_behind_spine_port(node.id, core_index)};
    }
    case topo::Layer::kCore:
      return NodeRef{topo::Layer::kSpine,
                     t.spine_behind_core_port(
                         node.id, static_cast<topo::PodId>(out_port))};
    case topo::Layer::kHost:
      break;
  }
  throw std::logic_error{"Fabric: hosts have no switch ports"};
}

SendResult Fabric::send(topo::HostId src, net::Ipv4Address group,
                        std::span<const std::uint8_t> payload) {
  SendResult result;
  auto encapsulated = hypervisor(src).encapsulate(group, payload);
  if (!encapsulated) return result;
  net::PacketView packet{std::move(*encapsulated)};

  std::optional<obs::Span> span;
  ELMO_METRIC(span.emplace(reg, fabric_metric_ids().send_seconds));
  if (recorder_ != nullptr) {
    recorder_->send_begin(walk_stats_.sends, group.value, src);
  }
  ++walk_stats_.sends;

  constexpr std::size_t kMaxHops = 8;  // > any Clos path; catches loops
  const NodeRef src_node{topo::Layer::kHost, src};
  const NodeRef first_leaf{topo::Layer::kLeaf, topo_->leaf_of_host(src)};
  account(src_node, first_leaf, packet.size(), result);

  std::size_t prov_root = obs::kNoProvParent;
  if (prov_ != nullptr) {
    prov_root = prov_->begin_send(group.value, src, packet.size());
  }

  queue_.clear();
  if (!lost()) {
    queue_.push_back(WorkItem{first_leaf, std::move(packet), 1, prov_root});
    ++walk_stats_.enqueues;
    walk_stats_.max_queue_depth = std::max<std::uint64_t>(
        walk_stats_.max_queue_depth, queue_.size());
  } else {
    ++walk_stats_.lost_copies;
    if (prov_ != nullptr) {
      prov_->lost_copy(first_leaf.layer, first_leaf.id, prov_root);
    }
  }

  while (!queue_.empty()) {
    auto item = std::move(queue_.front());
    queue_.pop_front();
    ++walk_stats_.work_items;
    const bool at_host = item.at.layer == topo::Layer::kHost;
    if (!at_host) {
      result.max_hops = std::max(result.max_hops, item.hops);
      if (item.hops > kMaxHops) {
        throw std::runtime_error{"Fabric: packet exceeded max hops (loop?)"};
      }
    }

    double item_start_us = 0;
    if (recorder_ != nullptr) item_start_us = recorder_->now_us();

    std::size_t prov_hop = obs::kNoProvParent;
    if (prov_ != nullptr) {
      prov_hop = prov_->begin_hop(item.at.layer, item.at.id, item.prov,
                                  item.packet.size());
    }

    arena_.clear();
    const auto emissions = element(item.at).process(item.packet, 0, arena_);

    if (at_host) {
      // Hypervisor emissions are per-VM payload deliveries, not wire hops.
      result.vm_deliveries += emissions.size();
      walk_stats_.vm_deliveries += emissions.size();
      if (recorder_ != nullptr) {
        recorder_->process(item.at, item_start_us,
                           static_cast<std::uint32_t>(emissions.size()),
                           static_cast<std::uint32_t>(queue_.size()),
                           static_cast<std::uint32_t>(item.hops));
      }
      continue;
    }
    for (auto& emission : emissions) {
      const auto next = neighbor_of(item.at, emission.out_port);
      account(item.at, next, emission.packet.size(), result);
      if (lost()) {
        ++walk_stats_.lost_copies;
        if (prov_ != nullptr) {
          prov_->lost_copy(next.layer, next.id, prov_hop);
        }
        continue;
      }
      if (next.layer == topo::Layer::kHost) {
        ++result.host_copies[next.id];
        ++walk_stats_.host_copies;
        queue_.push_back(
            WorkItem{next, std::move(emission.packet), item.hops, prov_hop});
      } else {
        queue_.push_back(WorkItem{next, std::move(emission.packet),
                                  item.hops + 1, prov_hop});
      }
      ++walk_stats_.enqueues;
    }
    walk_stats_.max_queue_depth = std::max<std::uint64_t>(
        walk_stats_.max_queue_depth, queue_.size());
    if (recorder_ != nullptr) {
      recorder_->process(item.at, item_start_us,
                         static_cast<std::uint32_t>(emissions.size()),
                         static_cast<std::uint32_t>(queue_.size()),
                         static_cast<std::uint32_t>(item.hops));
    }
  }
  return result;
}

SendResult Fabric::send(topo::HostId src, net::Ipv4Address group,
                        std::size_t payload_bytes) {
  const std::vector<std::uint8_t> payload(payload_bytes, 0xab);
  return send(src, group, payload);
}

std::vector<SendResult> Fabric::send_batch(
    std::span<const SendRequest> requests) {
  std::vector<SendResult> results;
  results.reserve(requests.size());
  std::vector<std::uint8_t> payload;  // reused scratch across the batch
  for (const auto& request : requests) {
    payload.assign(request.payload_bytes, 0xab);
    results.push_back(send(request.src, request.group, payload));
  }
  return results;
}

SendResult Fabric::send_unicast(topo::HostId src, topo::HostId dst,
                                std::size_t payload_bytes) {
  SendResult result;
  if (src == dst) return result;
  ++walk_stats_.unicast_sends;
  const auto& t = *topo_;
  const auto wire_bytes = net::kOuterHeaderBytes + payload_bytes;

  const auto hash =
      dp::flow_hash(dp::host_address(src), dp::host_address(dst));
  const auto src_leaf = t.leaf_of_host(src);
  const auto dst_leaf = t.leaf_of_host(dst);

  std::vector<NodeRef> path;
  path.push_back(NodeRef{topo::Layer::kHost, src});
  path.push_back(NodeRef{topo::Layer::kLeaf, src_leaf});
  if (src_leaf != dst_leaf) {
    const auto plane = hash % t.leaf_up_ports();
    if (t.pod_of_leaf(src_leaf) == t.pod_of_leaf(dst_leaf)) {
      path.push_back(NodeRef{topo::Layer::kSpine,
                             t.spine_at(t.pod_of_leaf(src_leaf), plane)});
    } else {
      path.push_back(NodeRef{topo::Layer::kSpine,
                             t.spine_at(t.pod_of_leaf(src_leaf), plane)});
      path.push_back(NodeRef{
          topo::Layer::kCore,
          t.core_at(plane, (hash >> 8) % t.spine_up_ports())});
      path.push_back(NodeRef{topo::Layer::kSpine,
                             t.spine_at(t.pod_of_leaf(dst_leaf), plane)});
    }
    path.push_back(NodeRef{topo::Layer::kLeaf, dst_leaf});
  }
  path.push_back(NodeRef{topo::Layer::kHost, dst});

  bool delivered = true;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    account(path[i], path[i + 1], wire_bytes, result);
    if (lost()) {
      delivered = false;
      break;
    }
  }
  result.max_hops = path.size() - 2;
  if (delivered) {
    ++result.host_copies[dst];
  } else {
    ++walk_stats_.lost_copies;
  }
  return result;
}

dp::SwitchStats Fabric::aggregate_switch_stats(topo::Layer layer) const {
  dp::SwitchStats total;
  const auto* pool = layer == topo::Layer::kLeaf    ? &leaves_
                     : layer == topo::Layer::kSpine ? &spines_
                                                    : &cores_;
  for (const auto& sw : *pool) total += sw->stats();
  return total;
}

dp::HypervisorStats Fabric::aggregate_hypervisor_stats() const {
  dp::HypervisorStats total;
  for (const auto& hv : hypervisors_) total += hv->stats();
  return total;
}

void accumulate_fabric_metrics(const Fabric& fabric,
                               obs::MetricsRegistry& reg) {
  auto add = [&reg](std::string_view name, std::uint64_t value,
                    std::string_view help) {
    const auto id = reg.counter(name, help);
    if (value > 0) reg.add(id, value);
  };

  struct LayerName {
    topo::Layer layer;
    const char* tag;
  };
  for (const auto& [layer, tag] : {LayerName{topo::Layer::kLeaf, "leaf"},
                                   LayerName{topo::Layer::kSpine, "spine"},
                                   LayerName{topo::Layer::kCore, "core"}}) {
    const auto s = fabric.aggregate_switch_stats(layer);
    const std::string p = std::string{"elmo_dp_"} + tag + "_";
    add(p + "packets_in_total", s.packets_in, "Packets entering the pipeline");
    add(p + "bytes_in_total", s.bytes_in, "Bytes entering the pipeline");
    add(p + "copies_out_total", s.copies_out, "Replicated copies emitted");
    add(p + "bytes_out_total", s.bytes_out, "Bytes emitted across all copies");
    add(p + "prule_matches_total", s.prule_matches,
        "Packets forwarded via a parser-matched p-rule bitmap");
    add(p + "upstream_matches_total", s.upstream_matches,
        "Packets forwarded via the layer's upstream rule");
    add(p + "srule_matches_total", s.srule_matches,
        "Packets forwarded via a group-table s-rule");
    add(p + "default_matches_total", s.default_matches,
        "Packets that fell back to the default p-rule");
    add(p + "drops_total", s.drops, "Packets dropped (no rule, or switch down)");
    add(p + "header_pops_total", s.header_pops,
        "Copies whose consumed Elmo sections were invalidated");
    add(p + "header_pop_bytes_total", s.header_pop_bytes,
        "Elmo header bytes removed by pops");
  }

  const auto h = fabric.aggregate_hypervisor_stats();
  add("elmo_dp_host_sent_total", h.sent, "Multicast packets encapsulated");
  add("elmo_dp_host_bytes_sent_total", h.bytes_sent,
      "Encapsulated bytes handed to the wire");
  add("elmo_dp_host_received_total", h.received,
      "Fabric packets received by hypervisors");
  add("elmo_dp_host_bytes_received_total", h.bytes_received,
      "Bytes received by hypervisors");
  add("elmo_dp_host_vm_deliveries_total", h.delivered_to_vms,
      "Per-VM payload deliveries");
  add("elmo_dp_host_delivered_bytes_total", h.delivered_bytes,
      "Payload bytes handed to local VMs");
  add("elmo_dp_host_redundant_copies_total", h.discarded,
      "Copies received by hosts with no local members (redundancy)");
  add("elmo_dp_host_unicast_fallback_total", h.unicast_fallback,
      "Sends that fell back to per-member unicast");

  const auto& w = fabric.walk_stats();
  add("elmo_fabric_sends_total", w.sends, "Multicast walks started");
  add("elmo_fabric_unicast_sends_total", w.unicast_sends,
      "Unicast path walks");
  add("elmo_fabric_work_items_total", w.work_items,
      "Event-queue entries processed");
  add("elmo_fabric_enqueues_total", w.enqueues, "Event-queue entries pushed");
  add("elmo_fabric_vm_deliveries_total", w.vm_deliveries,
      "VM deliveries observed by the walk");
  add("elmo_fabric_host_copies_total", w.host_copies,
      "Copies delivered to host ports");
  add("elmo_fabric_link_transmissions_total", w.link_transmissions,
      "Per-link transmissions accounted");
  add("elmo_fabric_wire_bytes_total", w.wire_bytes,
      "Bytes placed on the wire");
  add("elmo_fabric_lost_copies_total", w.lost_copies,
      "Copies dropped by the loss model");
  const auto depth_id = reg.gauge(
      "elmo_fabric_max_queue_depth",
      "High-water mark of pending event-queue items");
  reg.gauge_max(depth_id, static_cast<double>(w.max_queue_depth));
}

}  // namespace elmo::sim
