// Zero-copy packet views for the forwarding pipeline.
//
// PacketBuffer is a refcounted, immutable byte buffer: once a Packet enters
// the fabric its bytes are frozen and every replica of it on the wire is a
// PacketView — a (buffer, cursor) pair that costs a refcount bump to copy.
//
// A PacketView describes its logical bytes as the buffer range [head, end)
// minus at most one *hole* [skip_at, skip_at + skip_len) expressed in logical
// (post-head) offsets:
//
//     logical bytes = buf[head, head+skip_at) ++ buf[head+skip_at+skip_len, end)
//
// The hole is how Elmo's per-hop p-rule popping becomes cursor arithmetic:
// every hop removes bytes at the same logical offset (right behind the outer
// encapsulation), so consecutive pops extend one hole and never copy. An
// `erase` that cannot be expressed by the hole falls back to copy-on-write:
// the view gathers into a fresh buffer (counted in net::copy_stats()) and
// detaches from its siblings — views sharing the old buffer are untouched.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "net/packet.h"

namespace elmo::net {

class PacketBuffer {
 public:
  explicit PacketBuffer(std::vector<std::uint8_t> data)
      : data_{std::move(data)} {}

  std::span<const std::uint8_t> bytes() const noexcept { return data_; }
  std::size_t size() const noexcept { return data_.size(); }

 private:
  std::vector<std::uint8_t> data_;
};

class PacketView {
 public:
  PacketView() = default;

  // Adopts the packet's storage without copying; the packet is left empty.
  explicit PacketView(Packet&& packet);

  // Copies `data` into a fresh buffer (counted as a deep copy).
  explicit PacketView(std::span<const std::uint8_t> data);

  // Wraps an already-shared buffer range (no hole).
  PacketView(std::shared_ptr<const PacketBuffer> buffer, std::size_t head,
             std::size_t end);

  // Copies/moves are cheap: a shared_ptr refcount bump plus four integers.

  std::size_t size() const noexcept {
    return (end_ - head_) - skip_len_;
  }
  bool empty() const noexcept { return size() == 0; }

  // True when the logical bytes are one contiguous range of the buffer.
  bool contiguous() const noexcept { return skip_len_ == 0; }

  // Whole logical contents; requires contiguous().
  std::span<const std::uint8_t> bytes() const;

  // The first `n` logical bytes as one span; requires that the hole does not
  // start before `n`.
  std::span<const std::uint8_t> front(std::size_t n) const;

  // Logical bytes [offset, size()) as one span; requires that `offset` is at
  // or past the hole (or that there is no hole).
  std::span<const std::uint8_t> from(std::size_t offset) const;

  std::uint8_t at(std::size_t logical_offset) const;

  // Consumes `n` logical bytes at the front — pure cursor arithmetic.
  void pop_front(std::size_t n);

  // Removes `count` logical bytes at `offset`. Cursor arithmetic when the
  // range touches the existing hole (or there is none); otherwise CoW.
  void erase(std::size_t offset, std::size_t count);

  // Gathers the logical bytes into `out` (out.size() must equal size()).
  void copy_to(std::span<std::uint8_t> out) const;

  // Gathers into a fresh mutable Packet (a deep copy, counted).
  Packet materialize(std::size_t headroom = Packet::kDefaultHeadroom) const;

  // How many views (including this one) share the underlying buffer.
  long use_count() const noexcept { return buffer_.use_count(); }

 private:
  void check_range(std::size_t offset, std::size_t count,
                   const char* what) const;

  std::shared_ptr<const PacketBuffer> buffer_;
  std::size_t head_ = 0;      // first valid byte in buffer_
  std::size_t end_ = 0;       // one past the last valid byte
  std::size_t skip_at_ = 0;   // logical offset where the hole begins
  std::size_t skip_len_ = 0;  // buffer bytes hidden by the hole
};

}  // namespace elmo::net
