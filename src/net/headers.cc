#include "net/headers.h"

#include <sstream>
#include <stdexcept>

namespace elmo::net {
namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  put_u16(out, static_cast<std::uint16_t>(v >> 16));
  put_u16(out, static_cast<std::uint16_t>(v & 0xffff));
}

std::uint16_t get_u16(std::span<const std::uint8_t> data, std::size_t at) {
  return static_cast<std::uint16_t>((data[at] << 8) | data[at + 1]);
}

std::uint32_t get_u32(std::span<const std::uint8_t> data, std::size_t at) {
  return (static_cast<std::uint32_t>(get_u16(data, at)) << 16) |
         get_u16(data, at + 2);
}

void require_size(std::span<const std::uint8_t> data, std::size_t need,
                  const char* what) {
  if (data.size() < need) {
    throw std::out_of_range{std::string{"truncated "} + what};
  }
}

}  // namespace

std::vector<std::uint8_t> EthernetHeader::serialize() const {
  std::vector<std::uint8_t> out;
  out.reserve(kSize);
  out.insert(out.end(), dst.begin(), dst.end());
  out.insert(out.end(), src.begin(), src.end());
  put_u16(out, ether_type);
  return out;
}

EthernetHeader EthernetHeader::parse(std::span<const std::uint8_t> data) {
  require_size(data, kSize, "Ethernet header");
  EthernetHeader h;
  std::copy(data.begin(), data.begin() + 6, h.dst.begin());
  std::copy(data.begin() + 6, data.begin() + 12, h.src.begin());
  h.ether_type = get_u16(data, 12);
  return h;
}

std::string Ipv4Address::to_string() const {
  std::ostringstream out;
  out << ((value >> 24) & 0xff) << '.' << ((value >> 16) & 0xff) << '.'
      << ((value >> 8) & 0xff) << '.' << (value & 0xff);
  return out.str();
}

Ipv4Address Ipv4Address::from_string(const std::string& dotted) {
  std::istringstream in{dotted};
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    unsigned octet = 0;
    char dot = 0;
    if (!(in >> octet) || octet > 255 || (i < 3 && !(in >> dot) && true) ||
        (i < 3 && dot != '.')) {
      throw std::invalid_argument{"bad IPv4 address: " + dotted};
    }
    value = (value << 8) | octet;
  }
  return Ipv4Address{value};
}

std::uint16_t Ipv4Header::checksum(std::span<const std::uint8_t> header) {
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i + 1 < header.size(); i += 2) {
    sum += get_u16(header, i);
  }
  if (header.size() % 2 != 0) {
    sum += static_cast<std::uint32_t>(header.back()) << 8;
  }
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

std::vector<std::uint8_t> Ipv4Header::serialize() const {
  std::vector<std::uint8_t> out;
  out.reserve(kSize);
  out.push_back(0x45);  // version 4, IHL 5
  out.push_back(dscp);
  put_u16(out, total_length);
  put_u16(out, 0);       // identification
  put_u16(out, 0x4000);  // flags: don't fragment
  out.push_back(ttl);
  out.push_back(protocol);
  put_u16(out, 0);  // checksum placeholder
  put_u32(out, src.value);
  put_u32(out, dst.value);
  const std::uint16_t csum = checksum(out);
  out[10] = static_cast<std::uint8_t>(csum >> 8);
  out[11] = static_cast<std::uint8_t>(csum & 0xff);
  return out;
}

Ipv4Header Ipv4Header::parse(std::span<const std::uint8_t> data) {
  require_size(data, kSize, "IPv4 header");
  if ((data[0] >> 4) != 4) throw std::invalid_argument{"not IPv4"};
  Ipv4Header h;
  h.dscp = data[1];
  h.total_length = get_u16(data, 2);
  h.ttl = data[8];
  h.protocol = data[9];
  h.src.value = get_u32(data, 12);
  h.dst.value = get_u32(data, 16);
  return h;
}

std::vector<std::uint8_t> UdpHeader::serialize() const {
  std::vector<std::uint8_t> out;
  out.reserve(kSize);
  put_u16(out, src_port);
  put_u16(out, dst_port);
  put_u16(out, length);
  put_u16(out, 0);  // checksum optional over IPv4
  return out;
}

UdpHeader UdpHeader::parse(std::span<const std::uint8_t> data) {
  require_size(data, kSize, "UDP header");
  UdpHeader h;
  h.src_port = get_u16(data, 0);
  h.dst_port = get_u16(data, 2);
  h.length = get_u16(data, 4);
  return h;
}

std::vector<std::uint8_t> VxlanHeader::serialize() const {
  std::vector<std::uint8_t> out;
  out.reserve(kSize);
  out.push_back(static_cast<std::uint8_t>(0x08 | (elmo_present ? 0x01 : 0)));
  out.push_back(0);
  out.push_back(0);
  out.push_back(0);
  put_u32(out, (vni & 0x00ffffffu) << 8);
  return out;
}

VxlanHeader VxlanHeader::parse(std::span<const std::uint8_t> data) {
  require_size(data, kSize, "VXLAN header");
  if ((data[0] & 0x08) == 0) {
    throw std::invalid_argument{"VXLAN I flag not set"};
  }
  VxlanHeader h;
  h.vni = get_u32(data, 4) >> 8;
  h.elmo_present = (data[0] & 0x01) != 0;
  return h;
}

}  // namespace elmo::net
