#include "net/bitmap.h"

#include <bit>
#include <stdexcept>

namespace elmo::net {

void PortBitmap::check_port(std::size_t port) const {
  if (port >= num_ports_) {
    throw std::out_of_range{"PortBitmap: port " + std::to_string(port) +
                            " out of range (" + std::to_string(num_ports_) +
                            " ports)"};
  }
}

void PortBitmap::check_domain(const PortBitmap& other) const {
  if (num_ports_ != other.num_ports_) {
    throw std::invalid_argument{"PortBitmap: mismatched port counts"};
  }
}

void PortBitmap::set(std::size_t port, bool value) {
  check_port(port);
  const std::uint64_t mask = 1ULL << (port % 64);
  if (value) {
    data()[port / 64] |= mask;
  } else {
    data()[port / 64] &= ~mask;
  }
}

bool PortBitmap::test(std::size_t port) const {
  check_port(port);
  return (data()[port / 64] >> (port % 64)) & 1;
}

std::size_t PortBitmap::popcount() const noexcept {
  const auto* w = data();
  std::size_t total = 0;
  for (std::size_t i = 0; i < num_words_; ++i) {
    total += static_cast<std::size_t>(std::popcount(w[i]));
  }
  return total;
}

bool PortBitmap::any() const noexcept {
  const auto* w = data();
  for (std::size_t i = 0; i < num_words_; ++i) {
    if (w[i] != 0) return true;
  }
  return false;
}

PortBitmap& PortBitmap::operator|=(const PortBitmap& other) {
  check_domain(other);
  auto* w = data();
  const auto* o = other.data();
  for (std::size_t i = 0; i < num_words_; ++i) w[i] |= o[i];
  return *this;
}

PortBitmap& PortBitmap::operator&=(const PortBitmap& other) {
  check_domain(other);
  auto* w = data();
  const auto* o = other.data();
  for (std::size_t i = 0; i < num_words_; ++i) w[i] &= o[i];
  return *this;
}

std::size_t PortBitmap::hamming_distance(const PortBitmap& other) const {
  check_domain(other);
  const auto* w = data();
  const auto* o = other.data();
  std::size_t total = 0;
  for (std::size_t i = 0; i < num_words_; ++i) {
    total += static_cast<std::size_t>(std::popcount(w[i] ^ o[i]));
  }
  return total;
}

std::size_t PortBitmap::extra_bits_in(const PortBitmap& other) const {
  check_domain(other);
  const auto* w = data();
  const auto* o = other.data();
  std::size_t total = 0;
  for (std::size_t i = 0; i < num_words_; ++i) {
    total += static_cast<std::size_t>(std::popcount(o[i] & ~w[i]));
  }
  return total;
}

bool PortBitmap::is_subset_of(const PortBitmap& other) const {
  check_domain(other);
  const auto* w = data();
  const auto* o = other.data();
  for (std::size_t i = 0; i < num_words_; ++i) {
    if ((w[i] & ~o[i]) != 0) return false;
  }
  return true;
}

std::vector<std::size_t> PortBitmap::set_ports() const {
  std::vector<std::size_t> ports;
  ports.reserve(popcount());
  for_each_set([&](std::size_t p) { ports.push_back(p); });
  return ports;
}

std::string PortBitmap::to_string() const {
  std::string out(num_ports_, '0');
  for_each_set([&](std::size_t p) { out[p] = '1'; });
  return out;
}

std::uint64_t PortBitmap::hash() const noexcept {
  // FNV-1a over the words plus the domain size.
  std::uint64_t h = 14695981039346656037ULL;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  mix(num_ports_);
  const auto* w = data();
  for (std::size_t i = 0; i < num_words_; ++i) mix(w[i]);
  return h;
}

}  // namespace elmo::net
