#include "net/bitmap.h"

#include <bit>
#include <stdexcept>

namespace elmo::net {

void PortBitmap::check_port(std::size_t port) const {
  if (port >= num_ports_) {
    throw std::out_of_range{"PortBitmap: port " + std::to_string(port) +
                            " out of range (" + std::to_string(num_ports_) +
                            " ports)"};
  }
}

void PortBitmap::check_domain(const PortBitmap& other) const {
  if (num_ports_ != other.num_ports_) {
    throw std::invalid_argument{"PortBitmap: mismatched port counts"};
  }
}

void PortBitmap::set(std::size_t port, bool value) {
  check_port(port);
  const std::uint64_t mask = 1ULL << (port % 64);
  if (value) {
    words_[port / 64] |= mask;
  } else {
    words_[port / 64] &= ~mask;
  }
}

bool PortBitmap::test(std::size_t port) const {
  check_port(port);
  return (words_[port / 64] >> (port % 64)) & 1;
}

std::size_t PortBitmap::popcount() const noexcept {
  std::size_t total = 0;
  for (const auto w : words_) total += static_cast<std::size_t>(std::popcount(w));
  return total;
}

bool PortBitmap::any() const noexcept {
  for (const auto w : words_) {
    if (w != 0) return true;
  }
  return false;
}

PortBitmap& PortBitmap::operator|=(const PortBitmap& other) {
  check_domain(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

PortBitmap& PortBitmap::operator&=(const PortBitmap& other) {
  check_domain(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

std::size_t PortBitmap::hamming_distance(const PortBitmap& other) const {
  check_domain(other);
  std::size_t total = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    total += static_cast<std::size_t>(std::popcount(words_[i] ^ other.words_[i]));
  }
  return total;
}

std::size_t PortBitmap::extra_bits_in(const PortBitmap& other) const {
  check_domain(other);
  std::size_t total = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    total += static_cast<std::size_t>(
        std::popcount(other.words_[i] & ~words_[i]));
  }
  return total;
}

bool PortBitmap::is_subset_of(const PortBitmap& other) const {
  check_domain(other);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & ~other.words_[i]) != 0) return false;
  }
  return true;
}

std::vector<std::size_t> PortBitmap::set_ports() const {
  std::vector<std::size_t> ports;
  ports.reserve(popcount());
  for_each_set([&](std::size_t p) { ports.push_back(p); });
  return ports;
}

std::string PortBitmap::to_string() const {
  std::string out(num_ports_, '0');
  for_each_set([&](std::size_t p) { out[p] = '1'; });
  return out;
}

std::uint64_t PortBitmap::hash() const noexcept {
  // FNV-1a over the words plus the domain size.
  std::uint64_t h = 14695981039346656037ULL;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  mix(num_ports_);
  for (const auto w : words_) mix(w);
  return h;
}

}  // namespace elmo::net
