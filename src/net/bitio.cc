#include "net/bitio.h"

namespace elmo::net {

void BitWriter::write(std::uint64_t value, unsigned bits) {
  if (bits > 64) throw std::invalid_argument{"BitWriter: bits > 64"};
  for (unsigned i = bits; i-- > 0;) {
    const bool bit = (value >> i) & 1;
    const std::size_t byte = bit_count_ / 8;
    if (byte == buffer_.size()) buffer_.push_back(0);
    if (bit) {
      buffer_[byte] |= static_cast<std::uint8_t>(1u << (7 - bit_count_ % 8));
    }
    ++bit_count_;
  }
}

void BitWriter::align_to_byte() {
  while (bit_count_ % 8 != 0) write(0, 1);
}

std::vector<std::uint8_t> BitWriter::take() {
  align_to_byte();
  bit_count_ = 0;
  return std::move(buffer_);
}

std::uint64_t BitReader::read(unsigned bits) {
  if (bits > 64) throw std::invalid_argument{"BitReader: bits > 64"};
  if (bits > bits_remaining()) {
    throw std::out_of_range{"BitReader: read past end"};
  }
  std::uint64_t value = 0;
  for (unsigned i = 0; i < bits; ++i) {
    const std::size_t byte = position_ / 8;
    const bool bit = (data_[byte] >> (7 - position_ % 8)) & 1;
    value = (value << 1) | static_cast<std::uint64_t>(bit);
    ++position_;
  }
  return value;
}

}  // namespace elmo::net
