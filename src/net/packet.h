// Packet buffer used by the software data plane.
//
// A Packet is a contiguous byte buffer with cheap header prepend/consume at
// the front (network switches pop Elmo p-rule layers hop by hop). The buffer
// keeps headroom at the front, mirroring how real packet buffers (skb, rte_mbuf)
// avoid memmove on encap/decap.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace elmo::net {

class Packet {
 public:
  static constexpr std::size_t kDefaultHeadroom = 512;

  Packet() : Packet(std::span<const std::uint8_t>{}) {}

  explicit Packet(std::span<const std::uint8_t> payload,
                  std::size_t headroom = kDefaultHeadroom)
      : buffer_(headroom + payload.size()), head_{headroom} {
    std::copy(payload.begin(), payload.end(), buffer_.begin() + headroom);
  }

  // A packet of `size` zero bytes (payload placeholder for simulations).
  static Packet of_size(std::size_t size) {
    Packet p;
    p.buffer_.assign(kDefaultHeadroom + size, 0);
    p.head_ = kDefaultHeadroom;
    return p;
  }

  std::size_t size() const noexcept { return buffer_.size() - head_; }

  std::span<const std::uint8_t> bytes() const noexcept {
    return {buffer_.data() + head_, size()};
  }
  std::span<std::uint8_t> mutable_bytes() noexcept {
    return {buffer_.data() + head_, size()};
  }

  // Prepends a header; grows headroom if exhausted.
  void push_front(std::span<const std::uint8_t> header);

  // Removes `count` bytes from the front (header consumed by a hop).
  void pop_front(std::size_t count);

  // Removes `count` bytes starting at `offset` (a deparser dropping
  // invalidated headers that sit behind the outer encapsulation).
  void erase(std::size_t offset, std::size_t count);

  // Reads without consuming.
  std::span<const std::uint8_t> peek(std::size_t count) const;

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t head_ = 0;
};

}  // namespace elmo::net
