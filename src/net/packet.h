// Packet buffer used by the software data plane.
//
// A Packet is a contiguous, uniquely-owned byte buffer with cheap header
// prepend/consume at the front. The buffer keeps headroom at the front,
// mirroring how real packet buffers (skb, rte_mbuf) avoid memmove on
// encap/decap. Packets are the *builder* type: the hypervisor assembles the
// outer header + Elmo template into one, then the forwarding pipeline adopts
// the bytes into a refcounted immutable PacketBuffer and hands out cheap
// PacketViews (see packet_view.h) — a Packet is never deep-copied on the
// forwarding path.
//
// Deep copies of packet bytes are globally accounted (copy_stats()) so the
// benches can report bytes-copied-per-send; see bench/packet_walk.cc.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace elmo::net {

// Global accounting of deep packet-byte copies (copy construction/assignment
// of Packet, PacketView materialization). Counted with relaxed atomics so the
// sharded fabric walk (DESIGN.md §12) can deep-copy from worker threads;
// benches reset the counters around a measured section and read a snapshot.
struct CopyStats {
  std::uint64_t copies = 0;
  std::uint64_t bytes = 0;
};

CopyStats copy_stats() noexcept;
void reset_copy_stats() noexcept;
void count_copy(std::size_t bytes) noexcept;

class Packet {
 public:
  static constexpr std::size_t kDefaultHeadroom = 512;

  Packet() : Packet(std::span<const std::uint8_t>{}) {}

  explicit Packet(std::span<const std::uint8_t> payload,
                  std::size_t headroom = kDefaultHeadroom)
      : buffer_(headroom + payload.size()), head_{headroom} {
    std::copy(payload.begin(), payload.end(), buffer_.begin() + headroom);
  }

  Packet(const Packet& other) : buffer_{other.buffer_}, head_{other.head_} {
    count_copy(size());
  }
  Packet& operator=(const Packet& other) {
    if (this != &other) {
      buffer_ = other.buffer_;
      head_ = other.head_;
      count_copy(size());
    }
    return *this;
  }
  Packet(Packet&&) noexcept = default;
  Packet& operator=(Packet&&) noexcept = default;

  // A packet of `size` zero bytes (payload placeholder for simulations).
  static Packet of_size(std::size_t size) {
    Packet p;
    p.buffer_.assign(kDefaultHeadroom + size, 0);
    p.head_ = kDefaultHeadroom;
    return p;
  }

  // A packet of `size` zero bytes with explicit headroom; the caller fills
  // the contents via mutable_bytes() (PacketView::materialize gather target).
  static Packet with_size(std::size_t size, std::size_t headroom) {
    Packet p;
    p.buffer_.assign(headroom + size, 0);
    p.head_ = headroom;
    return p;
  }

  std::size_t size() const noexcept { return buffer_.size() - head_; }

  std::span<const std::uint8_t> bytes() const noexcept {
    return {buffer_.data() + head_, size()};
  }
  std::span<std::uint8_t> mutable_bytes() noexcept {
    return {buffer_.data() + head_, size()};
  }

  // Prepends a header; grows headroom if exhausted.
  void push_front(std::span<const std::uint8_t> header);

  // Removes `count` bytes from the front (header consumed by a hop).
  void pop_front(std::size_t count);

  // Removes `count` bytes starting at `offset` (a deparser dropping
  // invalidated headers that sit behind the outer encapsulation).
  void erase(std::size_t offset, std::size_t count);

  // Reads without consuming.
  std::span<const std::uint8_t> peek(std::size_t count) const;

  // Releases the underlying storage (full buffer plus the offset of the
  // first live byte) so PacketView can adopt it without a copy. The packet
  // is left empty.
  struct ReleasedBuffer {
    std::vector<std::uint8_t> storage;
    std::size_t head = 0;
  };
  ReleasedBuffer release() && {
    ReleasedBuffer out{std::move(buffer_), head_};
    buffer_.clear();
    head_ = 0;
    return out;
  }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t head_ = 0;
};

}  // namespace elmo::net
