#include "net/packet.h"

#include <algorithm>
#include <atomic>

namespace elmo::net {

namespace {
std::atomic<std::uint64_t> g_copy_count{0};
std::atomic<std::uint64_t> g_copy_bytes{0};
}  // namespace

CopyStats copy_stats() noexcept {
  return CopyStats{g_copy_count.load(std::memory_order_relaxed),
                   g_copy_bytes.load(std::memory_order_relaxed)};
}

void reset_copy_stats() noexcept {
  g_copy_count.store(0, std::memory_order_relaxed);
  g_copy_bytes.store(0, std::memory_order_relaxed);
}

void count_copy(std::size_t bytes) noexcept {
  g_copy_count.fetch_add(1, std::memory_order_relaxed);
  g_copy_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

void Packet::push_front(std::span<const std::uint8_t> header) {
  if (header.size() > head_) {
    const std::size_t extra =
        std::max(header.size() - head_, kDefaultHeadroom);
    buffer_.insert(buffer_.begin(), extra, 0);
    head_ += extra;
  }
  head_ -= header.size();
  std::copy(header.begin(), header.end(), buffer_.begin() + head_);
}

void Packet::pop_front(std::size_t count) {
  if (count > size()) {
    throw std::out_of_range{"Packet::pop_front beyond packet size"};
  }
  head_ += count;
}

void Packet::erase(std::size_t offset, std::size_t count) {
  // Checked as two comparisons so a huge `count` cannot overflow
  // `offset + count` and slip past the bound.
  if (offset > size() || count > size() - offset) {
    throw std::out_of_range{"Packet::erase beyond packet size"};
  }
  const auto first = buffer_.begin() + static_cast<std::ptrdiff_t>(head_ + offset);
  buffer_.erase(first, first + static_cast<std::ptrdiff_t>(count));
}

std::span<const std::uint8_t> Packet::peek(std::size_t count) const {
  if (count > size()) {
    throw std::out_of_range{"Packet::peek beyond packet size"};
  }
  return {buffer_.data() + head_, count};
}

}  // namespace elmo::net
