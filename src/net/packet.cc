#include "net/packet.h"

#include <algorithm>

namespace elmo::net {

namespace {
CopyStats g_copy_stats;
}  // namespace

const CopyStats& copy_stats() noexcept { return g_copy_stats; }

void reset_copy_stats() noexcept { g_copy_stats = CopyStats{}; }

void count_copy(std::size_t bytes) noexcept {
  ++g_copy_stats.copies;
  g_copy_stats.bytes += bytes;
}

void Packet::push_front(std::span<const std::uint8_t> header) {
  if (header.size() > head_) {
    const std::size_t extra =
        std::max(header.size() - head_, kDefaultHeadroom);
    buffer_.insert(buffer_.begin(), extra, 0);
    head_ += extra;
  }
  head_ -= header.size();
  std::copy(header.begin(), header.end(), buffer_.begin() + head_);
}

void Packet::pop_front(std::size_t count) {
  if (count > size()) {
    throw std::out_of_range{"Packet::pop_front beyond packet size"};
  }
  head_ += count;
}

void Packet::erase(std::size_t offset, std::size_t count) {
  // Checked as two comparisons so a huge `count` cannot overflow
  // `offset + count` and slip past the bound.
  if (offset > size() || count > size() - offset) {
    throw std::out_of_range{"Packet::erase beyond packet size"};
  }
  const auto first = buffer_.begin() + static_cast<std::ptrdiff_t>(head_ + offset);
  buffer_.erase(first, first + static_cast<std::ptrdiff_t>(count));
}

std::span<const std::uint8_t> Packet::peek(std::size_t count) const {
  if (count > size()) {
    throw std::out_of_range{"Packet::peek beyond packet size"};
  }
  return {buffer_.data() + head_, count};
}

}  // namespace elmo::net
