// MSB-first bit-level serialization.
//
// Elmo's p-rule header is specified at bit granularity (flags, variable-width
// switch identifiers, port bitmaps), so header sizes reported by the benches
// must come from an exact bit-packing codec rather than struct sizeof().
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace elmo::net {

// Appends fields MSB-first into a byte vector; the final byte is zero-padded.
class BitWriter {
 public:
  // value's low `bits` bits are written, most significant first.
  void write(std::uint64_t value, unsigned bits);
  void write_bool(bool value) { write(value ? 1 : 0, 1); }

  // Pads to a byte boundary with zero bits.
  void align_to_byte();

  std::size_t bit_count() const noexcept { return bit_count_; }
  std::size_t byte_count() const noexcept { return (bit_count_ + 7) / 8; }

  // Finishes the stream (pads to a byte) and returns the buffer.
  std::vector<std::uint8_t> take();
  std::span<const std::uint8_t> bytes() const noexcept { return buffer_; }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t bit_count_ = 0;
};

// Reads fields MSB-first from a byte span.
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> data) noexcept
      : data_{data} {}

  std::uint64_t read(unsigned bits);
  bool read_bool() { return read(1) != 0; }
  void align_to_byte() noexcept { position_ = (position_ + 7) / 8 * 8; }

  std::size_t bit_position() const noexcept { return position_; }
  std::size_t bits_remaining() const noexcept {
    return data_.size() * 8 - position_;
  }
  // Byte offset of the next unread bit, rounded up.
  std::size_t byte_position() const noexcept { return (position_ + 7) / 8; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t position_ = 0;  // in bits
};

// Number of bits needed to represent values in [0, n); at least 1.
constexpr unsigned bits_for(std::uint64_t n) noexcept {
  unsigned bits = 1;
  while ((1ULL << bits) < n) ++bits;
  return bits;
}

}  // namespace elmo::net
