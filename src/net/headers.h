// Outer protocol headers used to tunnel Elmo packets.
//
// Elmo rides over VXLAN (outer Ethernet + IPv4 + UDP + VXLAN), so traffic
// accounting must include real outer-header bytes. These codecs are
// byte-exact, with a correct IPv4 header checksum.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace elmo::net {

using MacAddress = std::array<std::uint8_t, 6>;

constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;
constexpr std::uint16_t kVxlanUdpPort = 4789;
constexpr std::uint8_t kIpProtoUdp = 17;

struct EthernetHeader {
  static constexpr std::size_t kSize = 14;

  MacAddress dst{};
  MacAddress src{};
  std::uint16_t ether_type = kEtherTypeIpv4;

  std::vector<std::uint8_t> serialize() const;
  static EthernetHeader parse(std::span<const std::uint8_t> data);
};

// IPv4 addresses are kept as host-order u32; 224.0.0.0/4 is multicast.
struct Ipv4Address {
  std::uint32_t value = 0;

  constexpr bool is_multicast() const noexcept {
    return (value & 0xf0000000u) == 0xe0000000u;
  }
  std::string to_string() const;
  static Ipv4Address from_string(const std::string& dotted);
  static constexpr Ipv4Address multicast_group(std::uint32_t group_index) {
    // Administratively-scoped block 239.0.0.0/8 gives 2^24 tenant-visible
    // group addresses; larger indices roll into 232/8 (SSM) then 235/8 so a
    // million-group simulation never aliases.
    const std::uint32_t block = group_index >> 24;
    const std::uint32_t low = group_index & 0x00ffffffu;
    constexpr std::uint32_t bases[] = {0xef000000u, 0xe8000000u, 0xeb000000u,
                                       0xe5000000u};
    return Ipv4Address{bases[block & 3] | low};
  }
  auto operator<=>(const Ipv4Address&) const = default;
};

struct Ipv4Header {
  static constexpr std::size_t kSize = 20;  // no options

  std::uint8_t dscp = 0;
  std::uint16_t total_length = 0;  // includes this header
  std::uint8_t ttl = 64;
  std::uint8_t protocol = kIpProtoUdp;
  Ipv4Address src{};
  Ipv4Address dst{};

  std::vector<std::uint8_t> serialize() const;
  static Ipv4Header parse(std::span<const std::uint8_t> data);

  static std::uint16_t checksum(std::span<const std::uint8_t> header);
};

struct UdpHeader {
  static constexpr std::size_t kSize = 8;

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = kVxlanUdpPort;
  std::uint16_t length = 0;  // header + payload

  std::vector<std::uint8_t> serialize() const;
  static UdpHeader parse(std::span<const std::uint8_t> data);
};

// VXLAN (RFC 7348): flags byte with the I bit, 24-bit VNI. We use one
// reserved flag bit (0x01) as the "Elmo header present" indicator so
// receivers behind legacy switches (which cannot strip p-rules at egress,
// paper §7) can skip the source-routing header when decapsulating.
struct VxlanHeader {
  static constexpr std::size_t kSize = 8;

  std::uint32_t vni = 0;    // 24 bits used; identifies the tenant
  bool elmo_present = false;  // reserved-bit 0x01

  std::vector<std::uint8_t> serialize() const;
  static VxlanHeader parse(std::span<const std::uint8_t> data);
};

// Total outer encapsulation in front of the Elmo header.
constexpr std::size_t kOuterHeaderBytes = EthernetHeader::kSize +
                                          Ipv4Header::kSize + UdpHeader::kSize +
                                          VxlanHeader::kSize;

}  // namespace elmo::net
