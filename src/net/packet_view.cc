#include "net/packet_view.h"

#include <algorithm>
#include <stdexcept>

namespace elmo::net {

PacketView::PacketView(Packet&& packet) {
  auto released = std::move(packet).release();
  head_ = released.head;
  auto buffer = std::make_shared<PacketBuffer>(std::move(released.storage));
  end_ = buffer->size();
  buffer_ = std::move(buffer);
}

PacketView::PacketView(std::span<const std::uint8_t> data) {
  count_copy(data.size());
  buffer_ = std::make_shared<PacketBuffer>(
      std::vector<std::uint8_t>{data.begin(), data.end()});
  head_ = 0;
  end_ = buffer_->size();
}

PacketView::PacketView(std::shared_ptr<const PacketBuffer> buffer,
                       std::size_t head, std::size_t end)
    : buffer_{std::move(buffer)}, head_{head}, end_{end} {
  if (end_ < head_ || (buffer_ && end_ > buffer_->size())) {
    throw std::out_of_range{"PacketView: range outside buffer"};
  }
}

void PacketView::check_range(std::size_t offset, std::size_t count,
                             const char* what) const {
  if (offset > size() || count > size() - offset) {
    throw std::out_of_range{what};
  }
}

std::span<const std::uint8_t> PacketView::bytes() const {
  if (!contiguous()) {
    throw std::logic_error{"PacketView::bytes on a non-contiguous view"};
  }
  return {buffer_ ? buffer_->bytes().data() + head_ : nullptr, size()};
}

std::span<const std::uint8_t> PacketView::front(std::size_t n) const {
  check_range(0, n, "PacketView::front beyond view size");
  if (skip_len_ > 0 && n > skip_at_) {
    throw std::logic_error{"PacketView::front spans the popped hole"};
  }
  return {buffer_->bytes().data() + head_, n};
}

std::span<const std::uint8_t> PacketView::from(std::size_t offset) const {
  check_range(offset, 0, "PacketView::from beyond view size");
  if (empty() && offset == 0) return {};
  if (skip_len_ > 0 && offset < skip_at_) {
    throw std::logic_error{"PacketView::from spans the popped hole"};
  }
  const std::size_t phys = head_ + offset + (skip_len_ > 0 ? skip_len_ : 0);
  return {buffer_->bytes().data() + phys, size() - offset};
}

std::uint8_t PacketView::at(std::size_t logical_offset) const {
  check_range(logical_offset, 1, "PacketView::at beyond view size");
  const std::size_t phys = (skip_len_ > 0 && logical_offset >= skip_at_)
                               ? head_ + logical_offset + skip_len_
                               : head_ + logical_offset;
  return buffer_->bytes()[phys];
}

void PacketView::pop_front(std::size_t n) {
  check_range(0, n, "PacketView::pop_front beyond view size");
  if (skip_len_ == 0) {
    head_ += n;
    return;
  }
  if (n < skip_at_) {
    head_ += n;
    skip_at_ -= n;
    return;
  }
  // Consumed up to or through the hole: the hole's hidden bytes go too.
  head_ += n + skip_len_;
  skip_at_ = 0;
  skip_len_ = 0;
}

void PacketView::erase(std::size_t offset, std::size_t count) {
  check_range(offset, count, "PacketView::erase beyond view size");
  if (count == 0) return;

  if (offset == 0) {  // front erase == pop
    pop_front(count);
    return;
  }
  if (offset + count == size()) {  // trailing erase == truncation
    if (skip_len_ > 0 && offset <= skip_at_) {
      // The hole falls inside the truncated tail.
      end_ = head_ + offset;
      skip_at_ = 0;
      skip_len_ = 0;
    } else {
      end_ = head_ + offset + skip_len_;
    }
    return;
  }
  if (skip_len_ == 0) {
    skip_at_ = offset;
    skip_len_ = count;
    return;
  }
  if (offset <= skip_at_ && skip_at_ <= offset + count) {
    // The erased range touches the existing hole; merge into one hole.
    skip_at_ = offset;
    skip_len_ += count;
    return;
  }
  // A second disjoint hole cannot be represented: copy-on-write. Views
  // sharing the old buffer are unaffected.
  Packet flat = materialize();
  flat.erase(offset, count);
  *this = PacketView{std::move(flat)};
}

void PacketView::copy_to(std::span<std::uint8_t> out) const {
  if (out.size() != size()) {
    throw std::invalid_argument{"PacketView::copy_to size mismatch"};
  }
  const auto src = buffer_ ? buffer_->bytes() : std::span<const std::uint8_t>{};
  const std::size_t first = skip_len_ > 0 ? skip_at_ : size();
  std::copy_n(src.data() + head_, first, out.data());
  if (skip_len_ > 0) {
    std::copy_n(src.data() + head_ + skip_at_ + skip_len_, size() - skip_at_,
                out.data() + first);
  }
}

Packet PacketView::materialize(std::size_t headroom) const {
  Packet out = Packet::with_size(size(), headroom);
  copy_to(out.mutable_bytes());
  count_copy(size());
  return out;
}

}  // namespace elmo::net
