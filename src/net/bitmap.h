// Port bitmaps: the unit of forwarding state in Elmo.
//
// Every p-rule and s-rule carries a bitmap of switch output ports. The
// clustering algorithm (Algorithm 1) reduces to popcount / OR / Hamming
// distance over these, so the representation is word-packed and those
// operations are branch-light word loops over 64-bit lanes.
//
// Storage is a two-word small-buffer: up to 128 ports (every switch role in
// every topology this repo instantiates — the widest is a 48-port leaf plus
// uplinks) live inline with no heap allocation, so the per-packet bitmaps the
// data-plane parser builds are allocation-free; wider domains fall back to a
// heap block transparently.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace elmo::net {

class PortBitmap {
 public:
  PortBitmap() = default;
  explicit PortBitmap(std::size_t num_ports)
      : num_ports_{num_ports}, num_words_{(num_ports + 63) / 64} {
    if (num_words_ > kInlineWords) {
      heap_ = std::make_unique<std::uint64_t[]>(num_words_);
      for (std::size_t i = 0; i < num_words_; ++i) heap_[i] = 0;
    }
  }

  PortBitmap(const PortBitmap& other)
      : num_ports_{other.num_ports_}, num_words_{other.num_words_} {
    if (num_words_ > kInlineWords) {
      heap_ = std::make_unique<std::uint64_t[]>(num_words_);
    }
    const auto* src = other.data();
    auto* dst = data();
    for (std::size_t i = 0; i < num_words_; ++i) dst[i] = src[i];
  }
  PortBitmap& operator=(const PortBitmap& other) {
    if (this == &other) return *this;
    if (other.num_words_ > kInlineWords) {
      if (num_words_ != other.num_words_ || heap_ == nullptr) {
        heap_ = std::make_unique<std::uint64_t[]>(other.num_words_);
      }
    } else {
      heap_.reset();
    }
    num_ports_ = other.num_ports_;
    num_words_ = other.num_words_;
    const auto* src = other.data();
    auto* dst = data();
    for (std::size_t i = 0; i < num_words_; ++i) dst[i] = src[i];
    return *this;
  }
  PortBitmap(PortBitmap&& other) noexcept
      : num_ports_{other.num_ports_},
        num_words_{other.num_words_},
        heap_{std::move(other.heap_)} {
    inline_[0] = other.inline_[0];
    inline_[1] = other.inline_[1];
    other.num_ports_ = 0;
    other.num_words_ = 0;
  }
  PortBitmap& operator=(PortBitmap&& other) noexcept {
    if (this == &other) return *this;
    num_ports_ = other.num_ports_;
    num_words_ = other.num_words_;
    heap_ = std::move(other.heap_);
    inline_[0] = other.inline_[0];
    inline_[1] = other.inline_[1];
    other.num_ports_ = 0;
    other.num_words_ = 0;
    return *this;
  }

  std::size_t size() const noexcept { return num_ports_; }
  bool empty_domain() const noexcept { return num_ports_ == 0; }

  void set(std::size_t port, bool value = true);
  bool test(std::size_t port) const;

  std::size_t popcount() const noexcept;
  bool any() const noexcept;
  bool none() const noexcept { return !any(); }

  PortBitmap& operator|=(const PortBitmap& other);
  PortBitmap& operator&=(const PortBitmap& other);
  friend PortBitmap operator|(PortBitmap lhs, const PortBitmap& rhs) {
    lhs |= rhs;
    return lhs;
  }
  friend PortBitmap operator&(PortBitmap lhs, const PortBitmap& rhs) {
    lhs &= rhs;
    return lhs;
  }

  bool operator==(const PortBitmap& other) const noexcept {
    if (num_ports_ != other.num_ports_) return false;
    const auto* a = data();
    const auto* b = other.data();
    for (std::size_t i = 0; i < num_words_; ++i) {
      if (a[i] != b[i]) return false;
    }
    return true;
  }

  // |this XOR other|: the redundancy metric of Algorithm 1.
  std::size_t hamming_distance(const PortBitmap& other) const;

  // Number of bits set in `other` but not in this (extra transmissions a
  // shared output bitmap causes for a switch whose input bitmap is `this`).
  std::size_t extra_bits_in(const PortBitmap& other) const;

  bool is_subset_of(const PortBitmap& other) const;

  void clear() noexcept {
    auto* w = data();
    for (std::size_t i = 0; i < num_words_; ++i) w[i] = 0;
  }

  // Invokes fn(port) for every set port in ascending order.
  template <typename Fn>
  void for_each_set(Fn&& fn) const {
    const auto* words = data();
    for (std::size_t wi = 0; wi < num_words_; ++wi) {
      std::uint64_t w = words[wi];
      while (w != 0) {
        const auto bit =
            static_cast<std::size_t>(__builtin_ctzll(w));
        fn(wi * 64 + bit);
        w &= w - 1;
      }
    }
  }

  std::vector<std::size_t> set_ports() const;

  // "10110..." — MSB is port 0, matching the paper's figures.
  std::string to_string() const;

  std::uint64_t hash() const noexcept;

  // Raw word access for serialization (word 0 holds ports 0..63).
  std::span<const std::uint64_t> words() const noexcept {
    return {data(), num_words_};
  }

 private:
  static constexpr std::size_t kInlineWords = 2;

  std::uint64_t* data() noexcept {
    return heap_ != nullptr ? heap_.get() : inline_;
  }
  const std::uint64_t* data() const noexcept {
    return heap_ != nullptr ? heap_.get() : inline_;
  }

  void check_port(std::size_t port) const;
  void check_domain(const PortBitmap& other) const;

  std::size_t num_ports_ = 0;
  std::size_t num_words_ = 0;
  std::uint64_t inline_[kInlineWords] = {0, 0};
  std::unique_ptr<std::uint64_t[]> heap_;  // engaged iff num_words_ > 2
};

struct PortBitmapHash {
  std::size_t operator()(const PortBitmap& b) const noexcept {
    return static_cast<std::size_t>(b.hash());
  }
};

}  // namespace elmo::net
