// Port bitmaps: the unit of forwarding state in Elmo.
//
// Every p-rule and s-rule carries a bitmap of switch output ports. The
// clustering algorithm (Algorithm 1) reduces to popcount / OR / Hamming
// distance over these, so the representation is word-packed and those
// operations are branch-light.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace elmo::net {

class PortBitmap {
 public:
  PortBitmap() = default;
  explicit PortBitmap(std::size_t num_ports)
      : num_ports_{num_ports}, words_((num_ports + 63) / 64, 0) {}

  std::size_t size() const noexcept { return num_ports_; }
  bool empty_domain() const noexcept { return num_ports_ == 0; }

  void set(std::size_t port, bool value = true);
  bool test(std::size_t port) const;

  std::size_t popcount() const noexcept;
  bool any() const noexcept;
  bool none() const noexcept { return !any(); }

  PortBitmap& operator|=(const PortBitmap& other);
  PortBitmap& operator&=(const PortBitmap& other);
  friend PortBitmap operator|(PortBitmap lhs, const PortBitmap& rhs) {
    lhs |= rhs;
    return lhs;
  }
  friend PortBitmap operator&(PortBitmap lhs, const PortBitmap& rhs) {
    lhs &= rhs;
    return lhs;
  }

  bool operator==(const PortBitmap& other) const noexcept {
    return num_ports_ == other.num_ports_ && words_ == other.words_;
  }

  // |this XOR other|: the redundancy metric of Algorithm 1.
  std::size_t hamming_distance(const PortBitmap& other) const;

  // Number of bits set in `other` but not in this (extra transmissions a
  // shared output bitmap causes for a switch whose input bitmap is `this`).
  std::size_t extra_bits_in(const PortBitmap& other) const;

  bool is_subset_of(const PortBitmap& other) const;

  void clear() noexcept {
    for (auto& w : words_) w = 0;
  }

  // Invokes fn(port) for every set port in ascending order.
  template <typename Fn>
  void for_each_set(Fn&& fn) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t w = words_[wi];
      while (w != 0) {
        const auto bit =
            static_cast<std::size_t>(__builtin_ctzll(w));
        fn(wi * 64 + bit);
        w &= w - 1;
      }
    }
  }

  std::vector<std::size_t> set_ports() const;

  // "10110..." — MSB is port 0, matching the paper's figures.
  std::string to_string() const;

  std::uint64_t hash() const noexcept;

  // Raw word access for serialization (word 0 holds ports 0..63).
  const std::vector<std::uint64_t>& words() const noexcept { return words_; }

 private:
  void check_port(std::size_t port) const;
  void check_domain(const PortBitmap& other) const;

  std::size_t num_ports_ = 0;
  std::vector<std::uint64_t> words_;
};

struct PortBitmapHash {
  std::size_t operator()(const PortBitmap& b) const noexcept {
    return static_cast<std::size_t>(b.hash());
  }
};

}  // namespace elmo::net
