// Minimal experiment-parameter reader.
//
// Bench binaries are parameterized through environment variables (so the
// standard `for b in build/bench/*; do $b; done` loop still works) with an
// optional `KEY=VALUE` argv override. Example: ELMO_GROUPS=1000000.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace elmo::util {

class Flags {
 public:
  Flags() = default;
  // Parses KEY=VALUE and --key=value arguments (keys case-insensitive).
  // `--benchmark*` flags pass through silently for google-benchmark; any
  // other token that is not a KEY=VALUE pair earns a stderr warning instead
  // of being silently dropped.
  Flags(int argc, char** argv);

  // Lookup order: argv override, then environment "ELMO_<KEY>", then fallback.
  std::int64_t get_int(std::string_view key, std::int64_t fallback) const;
  double get_double(std::string_view key, double fallback) const;
  std::string get_string(std::string_view key, std::string_view fallback) const;
  bool get_bool(std::string_view key, bool fallback) const;

 private:
  std::optional<std::string> raw(std::string_view key) const;

  std::string overrides_;  // newline-separated KEY=VALUE pairs from argv
};

}  // namespace elmo::util
