// Streaming and batch statistics used by every experiment harness.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace elmo::util {

// Welford online accumulator: mean/variance/min/max without storing samples.
class OnlineStats {
 public:
  void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  void merge(const OnlineStats& other) noexcept;

  std::size_t count() const noexcept { return count_; }
  double sum() const noexcept { return sum_; }
  double mean() const noexcept { return count_ ? mean_ : 0.0; }
  double variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const noexcept { return std::sqrt(variance()); }
  double min() const noexcept { return count_ ? min_ : 0.0; }
  double max() const noexcept { return count_ ? max_ : 0.0; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Batch percentile over a copy of the samples (nearest-rank definition).
double percentile(std::span<const double> samples, double p);

// Sample container that keeps values for percentile queries.
class Distribution {
 public:
  void add(double x) {
    values_.push_back(x);
    stats_.add(x);
  }
  const OnlineStats& stats() const noexcept { return stats_; }
  double percentile(double p) const;
  std::size_t count() const noexcept { return values_.size(); }
  std::span<const double> values() const noexcept { return values_; }

 private:
  std::vector<double> values_;
  OnlineStats stats_;
};

// Fixed-bucket histogram over [lo, hi); finite out-of-range samples clamp to
// the edge buckets, non-finite samples (NaN, ±inf) land in a separate
// overflow counter. Used for s-rule and header-size distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x) noexcept;
  std::size_t bucket_count() const noexcept { return counts_.size(); }
  std::size_t count(std::size_t bucket) const { return counts_.at(bucket); }
  // Samples seen, including non-finite ones; bucket counts sum to
  // total() - non_finite().
  std::size_t total() const noexcept { return total_; }
  std::size_t non_finite() const noexcept { return non_finite_; }
  double bucket_lo(std::size_t bucket) const noexcept;
  double bucket_hi(std::size_t bucket) const noexcept;

  // Rendered as one line per non-empty bucket with a proportional bar.
  std::string render(std::size_t bar_width = 40) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t non_finite_ = 0;
};

}  // namespace elmo::util
