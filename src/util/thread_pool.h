// Work-stealing thread pool for deterministic parallel pipelines.
//
// The pool exists to parallelize per-group/per-tenant work whose *results*
// are index-addressed: parallel_for(begin, end, body) guarantees body(i) runs
// exactly once for every i, but in no particular order and on no particular
// thread. Determinism is therefore a contract on the callers, not the pool:
// every body must (a) write only to slot i of pre-sized output, (b) draw
// randomness only from a stream derived from (seed, i) — see
// util::stream_rng — and (c) touch shared state only through commutative
// atomics whose effect is reconciled in a later, serial, in-order merge pass
// (see DESIGN.md §5). Under that contract the output is bit-identical at any
// thread count, including 1.
//
// Scheduling is classic range stealing (TBB/rayon style): the iteration
// space is split into one contiguous slice per executor; each executor pops
// from the front of its own slice and, when empty, steals the upper half of
// the largest remaining slice. The calling thread participates as executor 0,
// so ThreadPool(1) spawns no threads and runs strictly inline.
#pragma once

#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace elmo::util {

// Worker count for benches and tools: ELMO_THREADS env if set (clamped to
// >= 1), else std::thread::hardware_concurrency().
std::size_t default_thread_count();

class ThreadPool {
 public:
  // `threads` counts executors including the caller; 0 means
  // default_thread_count(). ThreadPool(1) is a strictly-serial pool.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t threads() const noexcept { return executors_; }

  // Runs body(i) exactly once for every i in [begin, end). Blocks until all
  // iterations finished. The first exception thrown by any body is rethrown
  // here (remaining iterations may be skipped). Nested calls — body itself
  // calling parallel_for on the same or another pool — execute the inner
  // loop inline on the calling worker; correct, never deadlocks, and the
  // outer loop already saturates the pool.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

 private:
  struct Loop;

  void worker_main(std::size_t executor);
  static void run_loop(Loop& loop, std::size_t executor);

  std::size_t executors_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;                 // guards current_/generation_/stop_
  std::condition_variable work_cv_;  // workers wait for a new loop
  std::condition_variable done_cv_;  // caller waits for loop completion
  Loop* current_ = nullptr;
  std::uint64_t generation_ = 0;
  bool stop_ = false;

  std::mutex submit_mutex_;  // one top-level loop at a time
};

}  // namespace elmo::util
