#include "util/flags.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <iostream>
#include <stdexcept>

namespace elmo::util {
namespace {

std::string upper(std::string_view s) {
  std::string out{s};
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return out;
}

}  // namespace

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg{argv[i]};
    // google-benchmark's own flags pass through untouched (bench binaries
    // hand the same argv to benchmark::Initialize).
    if (arg.rfind("--benchmark", 0) == 0) continue;
    if (arg.rfind("--", 0) == 0) arg.remove_prefix(2);
    const auto eq = arg.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      std::cerr << "Flags: ignoring unrecognized argument '" << argv[i]
                << "' (expected KEY=VALUE or --key=value)\n";
      continue;
    }
    // Keys are normalized to upper case on capture so every documented
    // spelling (THREADS=4, threads=4, --threads=4) resolves identically.
    overrides_ += upper(arg.substr(0, eq));
    overrides_ += arg.substr(eq);
    overrides_ += '\n';
  }
}

std::optional<std::string> Flags::raw(std::string_view key) const {
  const std::string needle = upper(key) + "=";
  // argv overrides win over the environment.
  std::size_t pos = 0;
  while (pos < overrides_.size()) {
    const auto end = overrides_.find('\n', pos);
    const std::string_view line{overrides_.data() + pos, end - pos};
    if (line.rfind(needle, 0) == 0) {
      return std::string{line.substr(needle.size())};
    }
    pos = end + 1;
  }
  const std::string env_key = "ELMO_" + upper(key);
  if (const char* env = std::getenv(env_key.c_str())) {
    return std::string{env};
  }
  return std::nullopt;
}

std::int64_t Flags::get_int(std::string_view key, std::int64_t fallback) const {
  const auto value = raw(key);
  if (!value) return fallback;
  return std::stoll(*value);
}

double Flags::get_double(std::string_view key, double fallback) const {
  const auto value = raw(key);
  if (!value) return fallback;
  return std::stod(*value);
}

std::string Flags::get_string(std::string_view key,
                              std::string_view fallback) const {
  const auto value = raw(key);
  return value ? *value : std::string{fallback};
}

bool Flags::get_bool(std::string_view key, bool fallback) const {
  const auto value = raw(key);
  if (!value) return fallback;
  const std::string v = upper(*value);
  return v == "1" || v == "TRUE" || v == "YES" || v == "ON";
}

}  // namespace elmo::util
