#include "util/table.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace elmo::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_{std::move(header)}, aligns_(header_.size(), Align::kLeft) {
  if (header_.empty()) throw std::invalid_argument{"TextTable: empty header"};
}

void TextTable::set_align(std::size_t column, Align align) {
  if (column >= header_.size()) {
    throw std::out_of_range{"TextTable::set_align: no such column"};
  }
  aligns_[column] = align;
}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row, bool is_header) {
    out << "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const bool right = !is_header && aligns_[c] == Align::kRight;
      out << " " << (right ? std::right : std::left)
          << std::setw(static_cast<int>(widths[c]))
          << (c < row.size() ? row[c] : "") << " |";
    }
    out << "\n";
  };
  auto emit_rule = [&] {
    out << "+";
    for (const auto w : widths) out << std::string(w + 2, '-') << "+";
    out << "\n";
  };
  emit_rule();
  emit_row(header_, /*is_header=*/true);
  emit_rule();
  for (const auto& row : rows_) emit_row(row, /*is_header=*/false);
  emit_rule();
  return out.str();
}

std::string TextTable::fmt(double v, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << v;
  return out.str();
}

std::string TextTable::fmt_count(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out += ',';
    out += digits[i];
  }
  return out;
}

std::string TextTable::fmt_si(double v, int precision) {
  const char* suffix = "";
  double scaled = v;
  if (std::abs(v) >= 1e9) {
    scaled = v / 1e9;
    suffix = "G";
  } else if (std::abs(v) >= 1e6) {
    scaled = v / 1e6;
    suffix = "M";
  } else if (std::abs(v) >= 1e3) {
    scaled = v / 1e3;
    suffix = "K";
  }
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << scaled << suffix;
  return out.str();
}

std::string TextTable::fmt_pct(double fraction, int precision) {
  return fmt(fraction * 100.0, precision) + "%";
}

std::string TextTable::fmt_rate(double per_sec, int precision) {
  return fmt_si(per_sec, precision) + "/s";
}

}  // namespace elmo::util
