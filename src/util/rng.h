// Deterministic pseudo-random number generation for simulations.
//
// Every experiment in this repository must be reproducible run-to-run, so we
// avoid std::random_device and the unspecified distributions of the standard
// library (their output differs across standard-library implementations).
// Rng is a xoshiro256** generator with explicit, portable distribution
// helpers on top.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace elmo::util {

// SplitMix64: used to expand a single 64-bit seed into generator state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x243f6a8885a308d3ULL) noexcept {
    reseed(seed);
  }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Unbiased integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Integer uniform in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_below(span));
  }

  std::size_t index(std::size_t size) noexcept {
    return static_cast<std::size_t>(next_below(size));
  }

  // Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  // Exponential with the given mean (mean = 1 / rate).
  double exponential(double mean) noexcept {
    double u;
    do {
      u = uniform();
    } while (u <= 0.0);
    return -mean * std::log(u);
  }

  bool bernoulli(double p) noexcept { return uniform() < p; }

  template <typename T>
  void shuffle(std::span<T> items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::swap(items[i - 1], items[index(i)]);
    }
  }

  template <typename T>
  const T& pick(std::span<const T> items) noexcept {
    return items[index(items.size())];
  }

  // k distinct indices sampled uniformly from [0, n), in random order.
  // Uses Floyd's algorithm; O(k) expected work.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  // Deterministic per-task stream: an Rng whose state depends only on
  // (seed, stream), never on call order or thread count. This is the
  // determinism primitive of every parallel pipeline (DESIGN.md §5): task i
  // draws from Rng::stream(seed, i) and produces bit-identical output no
  // matter which thread runs it. Two SplitMix64 rounds decorrelate
  // neighbouring stream ids.
  static Rng stream(std::uint64_t seed, std::uint64_t stream) noexcept {
    std::uint64_t s = seed;
    const std::uint64_t a = splitmix64(s);
    s = a ^ (stream + 0x9e3779b97f4a7c15ULL);
    const std::uint64_t b = splitmix64(s);
    return Rng{b};
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace elmo::util
