// Plain-text table renderer so bench binaries print paper-style rows.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace elmo::util {

class TextTable {
 public:
  enum class Align : std::uint8_t { kLeft, kRight };

  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  // Alignment of one column's cells (default kLeft). Numeric/rate columns
  // read best right-aligned so magnitudes line up.
  void set_align(std::size_t column, Align align);
  std::string render() const;

  // Formatting helpers shared by benches.
  static std::string fmt(double v, int precision = 2);
  static std::string fmt_count(std::uint64_t v);      // 12,345,678
  static std::string fmt_si(double v, int precision = 1);  // 1.2M, 3.4K
  static std::string fmt_pct(double fraction, int precision = 1);
  static std::string fmt_rate(double per_sec, int precision = 1);  // 1.2M/s

 private:
  std::vector<std::string> header_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace elmo::util
