#include "util/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <optional>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/span.h"

namespace elmo::util {
namespace {

struct PoolMetricIds {
  obs::MetricsRegistry::Id loops;
  obs::MetricsRegistry::Id iterations;
  obs::MetricsRegistry::Id steals;
  obs::MetricsRegistry::Id loop_seconds;
  obs::MetricsRegistry::Id executors;
  obs::MetricsRegistry::Id max_pending;
  PoolMetricIds() {
    auto& reg = obs::MetricsRegistry::global();
    loops = reg.counter("elmo_threadpool_loops_total",
                        "parallel_for invocations dispatched to workers");
    iterations = reg.counter("elmo_threadpool_iterations_total",
                             "Loop iterations executed across all workers");
    steals = reg.counter("elmo_threadpool_steals_total",
                         "Range halves stolen from other executors");
    loop_seconds = reg.histogram(
        "elmo_threadpool_loop_seconds", obs::latency_bounds(),
        "Wall-clock time of one parallel_for (submit to drain)");
    executors = reg.gauge("elmo_threadpool_executors",
                          "Executors (workers + caller) of the pool");
    max_pending = reg.gauge(
        "elmo_threadpool_max_pending_iterations",
        "High-water mark of iterations pending at loop submission");
  }
};

PoolMetricIds& pool_metric_ids() {
  static PoolMetricIds ids;
  return ids;
}

// Each executor's pending slice, packed (lo << 32) | hi so pop and steal are
// single CAS operations. Iteration spaces are therefore capped at 2^32.
using PackedRange = std::uint64_t;

constexpr PackedRange pack(std::uint32_t lo, std::uint32_t hi) noexcept {
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}
constexpr std::uint32_t range_lo(PackedRange r) noexcept {
  return static_cast<std::uint32_t>(r >> 32);
}
constexpr std::uint32_t range_hi(PackedRange r) noexcept {
  return static_cast<std::uint32_t>(r);
}

thread_local bool tl_inside_loop = false;

}  // namespace

std::size_t default_thread_count() {
  if (const char* env = std::getenv("ELMO_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

struct ThreadPool::Loop {
  const std::function<void(std::size_t)>* body = nullptr;
  std::vector<std::atomic<PackedRange>> ranges;
  std::atomic<std::size_t> active{0};   // workers currently inside run_loop
  std::atomic<bool> cancelled{false};   // set on first exception
  std::mutex error_mutex;
  std::exception_ptr error;             // guarded by error_mutex

  explicit Loop(std::size_t executors) : ranges(executors) {}

  bool drained() const noexcept {
    for (const auto& r : ranges) {
      const auto v = r.load(std::memory_order_acquire);
      if (range_lo(v) < range_hi(v)) return false;
    }
    return true;
  }
};

ThreadPool::ThreadPool(std::size_t threads)
    : executors_{threads == 0 ? default_thread_count() : threads} {
  workers_.reserve(executors_ - 1);
  for (std::size_t e = 1; e < executors_; ++e) {
    workers_.emplace_back([this, e] { worker_main(e); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk{mutex_};
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_loop(Loop& loop, std::size_t executor) {
  auto& own = loop.ranges[executor];
  while (!loop.cancelled.load(std::memory_order_relaxed)) {
    // Pop the front of our own slice.
    PackedRange cur = own.load(std::memory_order_acquire);
    std::size_t index;
    bool have = false;
    while (range_lo(cur) < range_hi(cur)) {
      if (own.compare_exchange_weak(
              cur, pack(range_lo(cur) + 1, range_hi(cur)),
              std::memory_order_acq_rel)) {
        index = range_lo(cur);
        have = true;
        break;
      }
    }
    if (!have) {
      // Steal the upper half of the largest remaining slice.
      std::size_t victim = loop.ranges.size();
      std::uint32_t best = 0;
      for (std::size_t j = 0; j < loop.ranges.size(); ++j) {
        if (j == executor) continue;
        const auto v = loop.ranges[j].load(std::memory_order_acquire);
        const auto left = range_hi(v) - range_lo(v);
        if (range_lo(v) < range_hi(v) && left > best) {
          best = left;
          victim = j;
        }
      }
      if (victim == loop.ranges.size()) break;  // nothing left anywhere
      PackedRange v = loop.ranges[victim].load(std::memory_order_acquire);
      while (range_lo(v) < range_hi(v)) {
        const std::uint32_t mid =
            range_lo(v) + (range_hi(v) - range_lo(v)) / 2;
        if (loop.ranges[victim].compare_exchange_weak(
                v, pack(range_lo(v), mid), std::memory_order_acq_rel)) {
          // [mid, hi) is ours now; only this executor stores to its slot.
          own.store(pack(mid, range_hi(v)), std::memory_order_release);
          ELMO_METRIC(reg.add(pool_metric_ids().steals));
          break;
        }
      }
      continue;
    }
    try {
      (*loop.body)(index);
    } catch (...) {
      std::lock_guard elk{loop.error_mutex};
      if (!loop.error) loop.error = std::current_exception();
      loop.cancelled.store(true, std::memory_order_release);
    }
  }
  if (loop.cancelled.load(std::memory_order_relaxed)) {
    // Drain every slice so waiters observe an empty loop.
    for (auto& r : loop.ranges) {
      r.store(pack(0, 0), std::memory_order_release);
    }
  }
}

void ThreadPool::worker_main(std::size_t executor) {
  std::unique_lock lk{mutex_};
  std::uint64_t seen = 0;
  for (;;) {
    work_cv_.wait(lk, [&] {
      return stop_ || (current_ != nullptr && generation_ != seen);
    });
    if (stop_) return;
    Loop* loop = current_;
    seen = generation_;
    loop->active.fetch_add(1, std::memory_order_relaxed);
    lk.unlock();
    tl_inside_loop = true;
    run_loop(*loop, executor);  // body exceptions are captured inside
    tl_inside_loop = false;
    lk.lock();
    loop->active.fetch_sub(1, std::memory_order_relaxed);
    done_cv_.notify_all();
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body) {
  if (end <= begin) return;
  const std::size_t count = end - begin;
  if (end > 0xffffffffULL) {
    throw std::invalid_argument{"ThreadPool::parallel_for: range > 2^32"};
  }
  // Nested calls and the serial pool run inline: same iterations, same
  // thread, exceptions surface directly.
  if (tl_inside_loop || executors_ == 1 || count == 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }

  std::lock_guard submit{submit_mutex_};
  std::optional<obs::Span> span;
  ELMO_METRIC({
    const auto& m = pool_metric_ids();
    reg.add(m.loops);
    reg.add(m.iterations, count);
    reg.gauge_set(m.executors, static_cast<double>(executors_));
    reg.gauge_max(m.max_pending, static_cast<double>(count));
  });
  obs::arm_phase_span(span, "pool:parallel_for", pool_metric_ids().loop_seconds);
  Loop loop{executors_};
  loop.body = &body;
  for (std::size_t e = 0; e < executors_; ++e) {
    const auto lo = begin + count * e / executors_;
    const auto hi = begin + count * (e + 1) / executors_;
    loop.ranges[e].store(pack(static_cast<std::uint32_t>(lo),
                              static_cast<std::uint32_t>(hi)),
                         std::memory_order_relaxed);
  }
  {
    std::lock_guard lk{mutex_};
    current_ = &loop;
    ++generation_;
  }
  work_cv_.notify_all();

  tl_inside_loop = true;
  run_loop(loop, /*executor=*/0);  // body exceptions are captured inside
  tl_inside_loop = false;

  std::unique_lock lk{mutex_};
  done_cv_.wait(lk, [&] {
    return loop.active.load(std::memory_order_relaxed) == 0 && loop.drained();
  });
  current_ = nullptr;
  const auto error = loop.error;
  lk.unlock();
  if (error) std::rethrow_exception(error);
}

}  // namespace elmo::util
