#include "util/stats.h"

#include <sstream>
#include <stdexcept>

namespace elmo::util {

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile(std::span<const double> samples, double p) {
  if (samples.empty()) throw std::invalid_argument{"percentile of empty set"};
  if (p < 0.0 || p > 100.0) throw std::invalid_argument{"percentile range"};
  std::vector<double> sorted{samples.begin(), samples.end()};
  std::sort(sorted.begin(), sorted.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

double Distribution::percentile(double p) const {
  return util::percentile(values_, p);
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_{lo}, hi_{hi}, counts_(buckets, 0) {
  if (buckets == 0 || hi <= lo) {
    throw std::invalid_argument{"Histogram: bad range"};
  }
  width_ = (hi - lo) / static_cast<double>(buckets);
}

void Histogram::add(double x) noexcept {
  // Casting a NaN or ±inf scaled sample to an integer is UB, so non-finite
  // samples are diverted to their own counter before any cast happens.
  if (!std::isfinite(x)) {
    ++non_finite_;
    ++total_;
    return;
  }
  const double scaled = (x - lo_) / width_;
  // Clamp in floating point first: a huge finite sample can still overflow
  // ptrdiff_t, which would be UB at the cast below.
  const double max_bucket = static_cast<double>(counts_.size() - 1);
  const auto bucket =
      static_cast<std::size_t>(std::clamp(scaled, 0.0, max_bucket));
  ++counts_[bucket];
  ++total_;
}

double Histogram::bucket_lo(std::size_t bucket) const noexcept {
  return lo_ + width_ * static_cast<double>(bucket);
}

double Histogram::bucket_hi(std::size_t bucket) const noexcept {
  return lo_ + width_ * static_cast<double>(bucket + 1);
}

std::string Histogram::render(std::size_t bar_width) const {
  std::ostringstream out;
  std::size_t peak = 0;
  for (const auto c : counts_) peak = std::max(peak, c);
  if (peak == 0) return "(empty histogram)\n";
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0) continue;
    const auto bar = counts_[b] * bar_width / peak;
    out << "[" << bucket_lo(b) << ", " << bucket_hi(b) << ") "
        << std::string(bar, '#') << " " << counts_[b] << "\n";
  }
  return out.str();
}

}  // namespace elmo::util
