#include "util/rng.h"

#include <unordered_set>

namespace elmo::util {

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  if (k > n) throw std::invalid_argument{"sample_indices: k > n"};
  // Floyd's algorithm yields a uniform k-subset; we then shuffle so callers
  // can also rely on a uniformly random *order*.
  std::unordered_set<std::size_t> chosen;
  chosen.reserve(k * 2);
  std::vector<std::size_t> out;
  out.reserve(k);
  for (std::size_t j = n - k; j < n; ++j) {
    const std::size_t t = index(j + 1);
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  shuffle(std::span<std::size_t>{out});
  return out;
}

}  // namespace elmo::util
