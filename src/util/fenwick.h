// Fenwick (binary indexed) tree over non-negative integer weights, with
// O(log n) point update, prefix sum, and weighted sampling via binary
// lifting. Backs ChurnSimulator's size-proportional group sampling: weights
// change on every join/leave, so a static cumulative array would drift from
// the live size distribution over a long campaign.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace elmo::util {

class FenwickTree {
 public:
  FenwickTree() : tree_(1, 0) {}
  explicit FenwickTree(std::size_t size) : tree_(size + 1, 0) {
    log_ = 0;
    while ((std::size_t{1} << (log_ + 1)) <= size) ++log_;
  }

  std::size_t size() const noexcept { return tree_.size() - 1; }

  // Adds `delta` to the weight at `index`; the result must stay >= 0.
  void add(std::size_t index, std::int64_t delta) {
    if (index >= size()) throw std::out_of_range{"FenwickTree: index"};
    for (std::size_t i = index + 1; i < tree_.size(); i += i & (~i + 1)) {
      tree_[i] += delta;
    }
    total_ = static_cast<std::uint64_t>(static_cast<std::int64_t>(total_) +
                                        delta);
  }

  // Sum of weights in [0, index).
  std::uint64_t prefix(std::size_t index) const {
    if (index > size()) throw std::out_of_range{"FenwickTree: index"};
    std::int64_t sum = 0;
    for (std::size_t i = index; i > 0; i -= i & (~i + 1)) sum += tree_[i];
    return static_cast<std::uint64_t>(sum);
  }

  std::uint64_t total() const noexcept { return total_; }

  std::uint64_t weight(std::size_t index) const {
    return prefix(index + 1) - prefix(index);
  }

  // Smallest index such that prefix(index + 1) > target, i.e. the entry a
  // uniform draw in [0, total()) lands on under size-proportional sampling.
  std::size_t upper_bound(std::uint64_t target) const {
    if (target >= total_) {
      throw std::out_of_range{"FenwickTree: target beyond total"};
    }
    std::size_t pos = 0;
    auto remaining = static_cast<std::int64_t>(target);
    for (std::size_t step = std::size_t{1} << log_; step > 0; step >>= 1) {
      const auto next = pos + step;
      if (next < tree_.size() && tree_[next] <= remaining) {
        remaining -= tree_[next];
        pos = next;
      }
    }
    return pos;  // tree_ is 1-based; pos is the 0-based entry index
  }

 private:
  std::vector<std::int64_t> tree_;  // 1-based
  std::uint64_t total_ = 0;
  std::size_t log_ = 0;
};

}  // namespace elmo::util
