// §5.1.2 text experiments and design ablations:
//   (a) Uniform group-size distribution (P=12 and P=1);
//   (b) s-rule capacity capped at 10,000 entries/switch;
//   (c) reduced header budget (10 leaf p-rules, ~125 bytes);
//   (d) non-Clos topologies: Elmo on an Xpander expander;
//   (e) ablation: per-switch vs sum-over-rule redundancy bound;
//   (f) ablation: Kmax (switch ids shared per p-rule).
#include <iostream>

#include "figlib.h"
#include "topology/xpander.h"

namespace {

using namespace elmo;
using util::TextTable;

void row(TextTable& table, const std::string& label,
         const benchx::FigureResult& r) {
  table.add_row(
      {label,
       TextTable::fmt_pct(static_cast<double>(r.covered_p_rules_only) /
                          static_cast<double>(r.groups_total)),
       TextTable::fmt(r.leaf_srules.mean(), 1),
       TextTable::fmt(r.overhead(1500), 3), TextTable::fmt(r.overhead(64), 3),
       TextTable::fmt(r.header_bytes.mean(), 1)});
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags{argc, argv};
  auto scale = benchx::Scale::from_flags(flags);
  scale.groups = static_cast<std::size_t>(
      flags.get_int("groups", 20'000));  // smaller default: many configs
  scale.tenants = std::max<std::size_t>(
      20, static_cast<std::size_t>(3000.0 * scale.groups / 1e6));

  const topo::ClosTopology topology{scale.topo_params()};
  std::cout << "sensitivity sweeps on " << topology.num_hosts()
            << " hosts, " << scale.groups << " groups per config\n\n";

  TextTable table{{"configuration", "p-rule-only", "s-rules/leaf mean",
                   "overhead 1500B", "overhead 64B", "hdr bytes mean"}};

  elmo::util::ThreadPool pool{scale.threads};
  benchx::PhaseTimer phases;
  phases.start("sweeps");

  auto run_config = [&](const std::string& label, std::size_t colocation,
                        cloud::GroupSizeDist dist, EncoderConfig config,
                        std::vector<std::size_t> rs) {
    util::Rng rng{scale.seed};
    const cloud::Cloud cloud{topology, scale.cloud_params(colocation), rng,
                             &pool};
    cloud::WorkloadParams wp;
    wp.total_groups = scale.groups;
    wp.size_dist = dist;
    const cloud::GroupWorkload workload{cloud, wp, rng, &pool};
    for (const auto r : rs) {
      auto cfg = config;
      cfg.redundancy_limit = r;
      const auto result = benchx::run_figure(
          benchx::FigureInputs{topology, workload, cfg, nullptr, 7, &pool});
      row(table, label + " R=" + std::to_string(r), result);
    }
  };

  // (a) Uniform group sizes.
  run_config("uniform P=12", 12, cloud::GroupSizeDist::kUniform,
             EncoderConfig{}, {0, 12});
  run_config("uniform P=1", 1, cloud::GroupSizeDist::kUniform,
             EncoderConfig{}, {0, 12});

  // (b) Fmax = 10,000 s-rules per switch, dispersed placement.
  {
    EncoderConfig cfg;
    cfg.srule_capacity = 10'000;
    run_config("WVE P=1 Fmax=10K", 1, cloud::GroupSizeDist::kWve, cfg,
               {0, 6, 12});
    run_config("uniform P=1 Fmax=10K", 1, cloud::GroupSizeDist::kUniform, cfg,
               {12});
  }

  // (c) Reduced header: 10 leaf p-rules (~125 bytes), Fmax = 10K, P=1.
  {
    EncoderConfig cfg;
    cfg.hmax_leaf_override = 10;
    cfg.srule_capacity = 10'000;
    run_config("WVE P=1 hdr=10 rules", 1, cloud::GroupSizeDist::kWve, cfg,
               {0, 12});
    run_config("uniform P=1 hdr=10 rules", 1, cloud::GroupSizeDist::kUniform,
               cfg, {12});
  }

  // (e) Redundancy-bound ablation: §3.2 prose sum (default) vs Algorithm-1
  // per-switch reading, which admits far more sharing (and spurious bytes).
  {
    EncoderConfig cfg;
    cfg.redundancy_mode = RedundancyMode::kPerSwitch;
    run_config("WVE P=1 per-switch-R mode", 1, cloud::GroupSizeDist::kWve,
               cfg, {12});
  }

  // (f) Kmax ablation.
  for (const std::size_t kmax : {1u, 2u, 4u}) {
    EncoderConfig cfg;
    cfg.kmax = kmax;
    run_config("WVE P=1 kmax=" + std::to_string(kmax), 1,
               cloud::GroupSizeDist::kWve, cfg, {12});
  }

  std::cout << table.render() << "\n";

  // (g) Two-tier leaf-spine (paper: "qualitatively similar results while
  // running experiments for a two-tier leaf-spine topology like CONGA").
  {
    const topo::ClosTopology two_tier{topo::ClosParams::two_tier_leaf_spine()};
    util::Rng rng{scale.seed};
    cloud::CloudParams cp;
    cp.tenants = 20;  // 1,024-host fabric
    cp.colocation = 4;
    const cloud::Cloud cloud{two_tier, cp, rng, &pool};
    cloud::WorkloadParams wp;
    wp.total_groups = 4000;
    const cloud::GroupWorkload workload{cloud, wp, rng, &pool};
    TextTable tt{{"two-tier leaf-spine", "p-rule-only", "s-rules/leaf mean",
                  "overhead 1500B", "overhead 64B", "hdr bytes mean"}};
    for (const std::size_t r : {0u, 12u}) {
      EncoderConfig cfg;
      cfg.redundancy_limit = r;
      const auto result = benchx::run_figure(
          benchx::FigureInputs{two_tier, workload, cfg, nullptr, 7, &pool});
      tt.add_row({"WVE R=" + std::to_string(r),
                  TextTable::fmt_pct(
                      static_cast<double>(result.covered_p_rules_only) /
                      static_cast<double>(result.groups_total)),
                  TextTable::fmt(result.leaf_srules.mean(), 1),
                  TextTable::fmt(result.overhead(1500), 3),
                  TextTable::fmt(result.overhead(64), 3),
                  TextTable::fmt(result.header_bytes.mean(), 1)});
    }
    std::cout << tt.render() << "\n";
  }

  // (d) Non-Clos: Xpander with 48-port switches, degree 24 (~27K hosts).
  {
    util::Rng rng{scale.seed};
    const topo::XpanderTopology xpander{576, 24, 48, rng};
    util::OnlineStats bits;
    std::size_t within_budget = 0;
    const std::size_t samples = 2000;
    for (std::size_t i = 0; i < samples; ++i) {
      const auto size = cloud::sample_wve_group_size(rng);
      std::vector<std::size_t> members;
      members.reserve(size);
      for (const auto m : rng.sample_indices(xpander.num_hosts(), size)) {
        members.push_back(m);
      }
      const auto header_bits =
          xpander.header_bits_for_tree(members[0], members);
      bits.add(static_cast<double>(header_bits));
      if (header_bits <= 325 * 8) ++within_budget;
    }
    std::cout << "Xpander (576 switches, d=24, " << xpander.num_hosts()
              << " hosts): header bits mean="
              << TextTable::fmt(bits.mean(), 0)
              << " max=" << TextTable::fmt(bits.max(), 0) << "; "
              << TextTable::fmt_pct(static_cast<double>(within_budget) /
                                    samples)
              << " of WVE groups fit the 325-byte budget without any\n"
                 "  s-rules (no logical layers to collapse on an expander; "
                 "the rest spill to group tables, as the paper's note "
                 "anticipates for non-Clos fabrics)\n";
  }
  benchx::emit_run_json("text_sensitivity", scale, phases);
  return 0;
}
