// Forwarding-pipeline microbench: full fabric walks (hypervisor encap ->
// leaf/spine/core replication -> hypervisor decap) at group fanouts 8, 64
// and 512, reporting sends/sec and deep-copied bytes per send.
//
// Bytes-copied accounting comes from net::copy_stats(): every deep copy of
// packet bytes (Packet copy construction, PacketView materialization) is
// counted globally. The zero-copy pipeline claim (ISSUE 1 / paper §4: "at
// hardware speed", no per-copy allocation) is exactly a claim about this
// number, so the bench records it per send alongside throughput.
//
// This bench is also the telemetry-overhead referee (DESIGN.md §9): every
// fanout is timed twice — global registry disabled, then enabled — and the
// JSON reports both throughputs plus the relative overhead. The budget is
// <= 2% metrics-off vs a build without the telemetry layer, <= 8% on.
//
// Walk-mode knobs (DESIGN.md §12): --batch=N drains sends through the
// batched, sharded walk (sim::Fabric::send_batch) N at a time instead of
// the serial send() loop, and --threads=T shards each wave across T
// workers. Every batched run self-checks one batch against the serial
// reference ("matches_serial") — the batched walk is bit-identical at any
// thread count, so on a 1-core host the determinism check is the result
// (see hardware_threads in the output header and RUN line).
//
// --sample=1 (DESIGN.md §14) additionally ticks Fabric::sample_into into a
// health TimeSeriesStore once per batch (or per 64 serial sends) during the
// metrics-on leg, so metrics_on_overhead_pct doubles as the live-sampling
// overhead referee; bench/health_sweep measures the same path in isolation.
//
// Output is JSON on stdout, one object per fanout, closed by a `RUN {...}`
// metadata line; recorded snapshots live in bench/results/
// (BENCH_packet_walk_baseline.json = the seed deep-copy walk,
// BENCH_packet_walk.json = the CoW PacketView pipeline).
// --metrics=<path> writes the metrics-on exposition ("-" = stderr);
// --trace=<path> records one probe send per fanout into a chrome://tracing
// JSON file.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "elmo/controller.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "sim/fabric.h"
#include "sim/flight_recorder.h"
#include "topology/clos.h"
#include "util/flags.h"

namespace {

using namespace elmo;

struct RunResult {
  double sends_per_sec = 0;           // telemetry disabled
  double sends_per_sec_metrics_on = 0;
  double metrics_on_overhead_pct = 0;
  double bytes_copied_per_send = 0;
  double copies_per_send = 0;
  std::uint64_t wire_bytes_per_send = 0;
  std::uint64_t link_transmissions_per_send = 0;
  std::size_t hosts_reached = 0;
  bool matches_serial = true;  // batched mode: one batch vs serial reference
  std::uint64_t sampled_windows = 0;  // --sample=1: health windows closed
  std::size_t sampled_series = 0;     //             distinct series stored
};

bool same_send(const sim::SendResult& a, const sim::SendResult& b) {
  return a.host_copies == b.host_copies && a.vm_deliveries == b.vm_deliveries &&
         a.total_wire_bytes == b.total_wire_bytes &&
         a.total_link_transmissions == b.total_link_transmissions &&
         a.max_hops == b.max_hops;
}

RunResult run_fanout(std::size_t fanout, std::size_t payload_bytes,
                     std::size_t iterations, std::size_t batch,
                     std::size_t threads, bool sample,
                     sim::FlightRecorder* recorder) {
  // Two-tier leaf-spine: 32 leaves x 32 hosts = 1,024 hosts, enough for the
  // widest fanout while keeping fabric construction cheap.
  const topo::ClosTopology topology{topo::ClosParams::two_tier_leaf_spine()};
  Controller controller{topology, EncoderConfig{}};
  sim::Fabric fabric{topology};

  // Sender is host 0; receivers spread evenly over the whole fabric so the
  // walk exercises every replication layer.
  std::vector<Member> members;
  members.push_back(Member{0, 0, MemberRole::kBoth});
  const std::size_t stride = (topology.num_hosts() - 1) / fanout;
  for (std::size_t i = 0; i < fanout; ++i) {
    const auto host = static_cast<topo::HostId>(1 + i * stride);
    members.push_back(
        Member{host, static_cast<std::uint32_t>(i + 1), MemberRole::kReceiver});
  }
  const auto id = controller.create_group(0, members);
  fabric.install_group(controller, id);
  const auto group = controller.group(id).address;
  const std::vector<std::uint8_t> payload(payload_bytes, 0xab);

  // Warmup (and one accounted result for the static per-send numbers).
  const auto probe = fabric.send(0, group, payload);
  for (int i = 0; i < 3; ++i) (void)fabric.send(0, group, payload);

  RunResult r;
  const std::vector<sim::SendRequest> requests(
      std::max<std::size_t>(batch, 1),
      sim::SendRequest{0, group, payload_bytes});
  const sim::BatchOptions options{threads};
  std::size_t loop_sends = iterations;
  if (batch > 0) {
    // Self-check: the batched walk must reproduce the serial reference
    // bit-exactly (DESIGN.md §12) — also warms the shard scratch.
    for (const auto& result :
         fabric.send_batch(std::span{requests}, options)) {
      r.matches_serial = r.matches_serial && same_send(result, probe);
    }
    loop_sends = (iterations + batch - 1) / batch * batch;
  }

  auto& reg = obs::MetricsRegistry::global();
  const bool metrics_requested = reg.enabled();
  // Health sampling cadence: one window per batch, or per 64 serial sends
  // (a "wave" of the serial loop). Only the metrics-on leg samples.
  obs::TimeSeriesStore store{64};
  constexpr std::size_t kSerialWave = 64;
  auto timed_loop = [&](obs::TimeSeriesStore* ts) {
    const auto start = std::chrono::steady_clock::now();
    if (batch == 0) {
      for (std::size_t i = 0; i < iterations; ++i) {
        (void)fabric.send(0, group, payload);
        if (ts != nullptr && (i + 1) % kSerialWave == 0) {
          fabric.sample_into(*ts);
          ts->advance();
        }
      }
    } else {
      for (std::size_t done = 0; done < loop_sends; done += batch) {
        (void)fabric.send_batch(std::span{requests}, options);
        if (ts != nullptr) {
          fabric.sample_into(*ts);
          ts->advance();
        }
      }
    }
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  // Leg 1: telemetry disabled — the number the zero-copy pipeline is judged
  // by, and the metrics-off overhead reference.
  reg.set_enabled(false);
  net::reset_copy_stats();
  const double off_elapsed = timed_loop(nullptr);
  const auto copies = net::copy_stats();
  const double bytes_copied =
      static_cast<double>(copies.bytes) / static_cast<double>(loop_sends);
  const double copy_count =
      static_cast<double>(copies.copies) / static_cast<double>(loop_sends);

  // Leg 2: telemetry enabled — same loop, counters and spans live, plus the
  // per-wave health sampling tick when --sample=1.
  reg.set_enabled(true);
  const double on_elapsed = timed_loop(sample ? &store : nullptr);
  if (metrics_requested) {
    accumulate_fabric_metrics(fabric, reg);
  }
  reg.set_enabled(metrics_requested);

  // One recorded probe per fanout for the flight-recorder trace.
  if (recorder != nullptr) {
    fabric.set_recorder(recorder);
    (void)fabric.send(0, group, payload);
    fabric.set_recorder(nullptr);
  }

  r.sends_per_sec = static_cast<double>(loop_sends) / off_elapsed;
  r.sends_per_sec_metrics_on = static_cast<double>(loop_sends) / on_elapsed;
  r.metrics_on_overhead_pct =
      (off_elapsed > 0 ? (on_elapsed / off_elapsed - 1.0) * 100.0 : 0.0);
  r.bytes_copied_per_send = bytes_copied;
  r.copies_per_send = copy_count;
  r.wire_bytes_per_send = probe.total_wire_bytes;
  r.link_transmissions_per_send = probe.total_link_transmissions;
  r.hosts_reached = probe.host_copies.size();
  r.sampled_windows = store.window();
  r.sampled_series = store.series_count();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const elmo::util::Flags flags{argc, argv};
  const auto payload = static_cast<std::size_t>(std::max<std::int64_t>(
      0, flags.get_int("PAYLOAD", 256)));  // ELMO_PAYLOAD / PAYLOAD=...
  const auto scale = static_cast<std::size_t>(
      std::max<std::int64_t>(1, flags.get_int("SCALE", 1)));
  const auto batch = static_cast<std::size_t>(
      std::max<std::int64_t>(0, flags.get_int("BATCH", 0)));
  const auto threads = static_cast<std::size_t>(
      std::max<std::int64_t>(1, flags.get_int("THREADS", 1)));
  const bool sample = flags.get_bool("SAMPLE", false);
  const auto metrics_path = flags.get_string("METRICS", "");
  const auto trace_path = flags.get_string("TRACE", "");
  const auto hardware_threads = std::thread::hardware_concurrency();

  auto& reg = elmo::obs::MetricsRegistry::global();
  if (!metrics_path.empty()) reg.set_enabled(true);
  elmo::sim::FlightRecorder recorder;

  std::printf("{\n  \"bench\": \"packet_walk\",\n  \"payload_bytes\": %zu,\n"
              "  \"batch\": %zu,\n  \"threads\": %zu,\n"
              "  \"hardware_threads\": %u,\n  \"results\": [\n",
              payload, batch, threads, hardware_threads);
  const std::size_t fanouts[] = {8, 64, 512};
  const std::size_t iters[] = {4000 * scale, 1000 * scale, 200 * scale};
  bool all_match = true;
  for (std::size_t i = 0; i < 3; ++i) {
    const auto r =
        run_fanout(fanouts[i], payload, iters[i], batch, threads, sample,
                   trace_path.empty() ? nullptr : &recorder);
    all_match = all_match && r.matches_serial;
    std::printf(
        "    {\"fanout\": %zu, \"sends_per_sec\": %.0f, "
        "\"sends_per_sec_metrics_on\": %.0f, "
        "\"metrics_on_overhead_pct\": %.1f, "
        "\"bytes_copied_per_send\": %.1f, \"copies_per_send\": %.2f, "
        "\"wire_bytes_per_send\": %llu, \"link_transmissions_per_send\": "
        "%llu, \"hosts_reached\": %zu, \"matches_serial\": %s, "
        "\"sampled_windows\": %llu, \"sampled_series\": %zu}%s\n",
        fanouts[i], r.sends_per_sec, r.sends_per_sec_metrics_on,
        r.metrics_on_overhead_pct, r.bytes_copied_per_send, r.copies_per_send,
        static_cast<unsigned long long>(r.wire_bytes_per_send),
        static_cast<unsigned long long>(r.link_transmissions_per_send),
        r.hosts_reached, r.matches_serial ? "true" : "false",
        static_cast<unsigned long long>(r.sampled_windows), r.sampled_series,
        i + 1 < 3 ? "," : "");
  }
  std::printf("  ]\n}\n");
  std::printf("RUN {\"bench\": \"packet_walk\", \"payload_bytes\": %zu, "
              "\"scale\": %zu, \"batch\": %zu, \"threads\": %zu, "
              "\"hardware_threads\": %u}\n",
              payload, scale, batch, threads, hardware_threads);

  if (!metrics_path.empty()) {
    elmo::obs::write_metrics(metrics_path, reg.snapshot());
  }
  if (!trace_path.empty()) {
    recorder.write(trace_path);
  }
  return all_match ? 0 : 1;
}
