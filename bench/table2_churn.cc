// Table 2: average (max) switch updates per second under membership churn at
// 1,000 events/sec, P=1 placement, WVE group sizes — Elmo vs Li et al.
//
// Elmo updates are counted by the controller through an UpdateSink (header
// templates to hypervisors, s-rule diffs to leaf/spine switches, nothing to
// cores). The Li et al. baseline reinstalls the group's physical tree on
// every change, touching every switch in old-tree U new-tree.
//
// Scale via env: ELMO_CHURN_GROUPS (default 20,000), ELMO_EVENTS (default
// 100,000; paper: 1,000,000), ELMO_PODS.
#include <iostream>

#include "baselines/li_multicast.h"
#include "elmo/churn.h"
#include "figlib.h"

namespace {

using namespace elmo;

struct LiChurnRates {
  CountingSink::Rates leaf;
  CountingSink::Rates spine;
  CountingSink::Rates core;
};

// Replays the same kind of join/leave stream against the Li et al. model.
LiChurnRates li_churn(const topo::ClosTopology& topology,
                      const cloud::Cloud& cloud,
                      const cloud::GroupWorkload& workload,
                      std::size_t events, double events_per_second,
                      util::Rng& rng) {
  baselines::LiMulticast li{topology};

  struct LiGroup {
    cloud::TenantId tenant;
    std::vector<topo::HostId> members;
    baselines::LiTree tree;
    std::uint64_t hash;
  };
  std::vector<LiGroup> groups;
  groups.reserve(workload.groups().size());
  std::vector<double> weights;
  double cumulative = 0;
  for (const auto& g : workload.groups()) {
    LiGroup lg;
    lg.tenant = g.tenant;
    lg.members = g.member_hosts;
    lg.hash = rng();
    lg.tree = li.build_tree(MulticastTree{topology, lg.members}, lg.hash);
    li.install(lg.tree);
    groups.push_back(std::move(lg));
    cumulative += static_cast<double>(g.size());
    weights.push_back(cumulative);
  }

  std::vector<std::uint64_t> leaf_updates(topology.num_leaves(), 0);
  std::vector<std::uint64_t> spine_updates(topology.num_spines(), 0);
  std::vector<std::uint64_t> core_updates(topology.num_cores(), 0);

  for (std::size_t e = 0; e < events; ++e) {
    const double target = rng.uniform(0.0, cumulative);
    const auto gi = static_cast<std::size_t>(
        std::lower_bound(weights.begin(), weights.end(), target) -
        weights.begin());
    auto& group = groups[gi];
    const auto& tenant = cloud.tenants()[group.tenant];

    if (group.members.size() <= 5 || rng.bernoulli(0.5)) {
      // join: a random tenant VM host (duplicates skipped cheaply)
      const auto host = tenant.vm_hosts[rng.index(tenant.size())];
      if (std::find(group.members.begin(), group.members.end(), host) !=
          group.members.end()) {
        continue;
      }
      group.members.push_back(host);
    } else {
      group.members.erase(group.members.begin() +
                          static_cast<std::ptrdiff_t>(
                              rng.index(group.members.size())));
    }
    const auto new_tree =
        li.build_tree(MulticastTree{topology, group.members}, group.hash);
    const auto updates =
        baselines::LiMulticast::updates_for_change(group.tree, new_tree);
    for (const auto l : updates.leaves) ++leaf_updates[l];
    for (const auto s : updates.spines) ++spine_updates[s];
    for (const auto c : updates.cores) ++core_updates[c];
    li.remove(group.tree);
    li.install(new_tree);
    group.tree = new_tree;
  }

  const double seconds = static_cast<double>(events) / events_per_second;
  auto rates = [&](std::span<const std::uint64_t> counts) {
    CountingSink::Rates r;
    std::uint64_t peak = 0;
    for (const auto c : counts) {
      r.total += c;
      peak = std::max(peak, c);
    }
    r.avg = static_cast<double>(r.total) /
            static_cast<double>(counts.size()) / seconds;
    r.max = static_cast<double>(peak) / seconds;
    return r;
  };
  return LiChurnRates{rates(leaf_updates), rates(spine_updates),
                      rates(core_updates)};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace elmo;
  using util::TextTable;
  const util::Flags flags{argc, argv};
  auto scale = benchx::Scale::from_flags(flags);
  const auto churn_groups =
      static_cast<std::size_t>(flags.get_int("churn_groups", 20'000));
  const auto events =
      static_cast<std::size_t>(flags.get_int("events", 100'000));

  util::ThreadPool pool{scale.threads};
  benchx::PhaseTimer phases;

  const topo::ClosTopology topology{scale.topo_params()};
  util::Rng rng{scale.seed};
  scale.tenants = std::max<std::size_t>(
      20, static_cast<std::size_t>(3000.0 * churn_groups / 1e6));
  phases.start("workload");
  const cloud::Cloud cloud{topology, scale.cloud_params(/*P=*/1), rng, &pool};
  cloud::WorkloadParams wp;
  wp.total_groups = churn_groups;
  const cloud::GroupWorkload workload{cloud, wp, rng, &pool};
  phases.stop();

  std::cout << "churn: " << churn_groups << " groups, " << events
            << " join/leave events @1000/s, P=1, WVE sizes\n";

  // --- Elmo ----------------------------------------------------------------
  EncoderConfig config;
  config.redundancy_limit = 12;  // the paper's operating point: most state
                                 // in p-rules, few s-rules to churn
  Controller controller{topology, config};
  phases.start("bulk load");
  std::vector<GroupId> ids;
  {
    const auto groups = workload.groups();
    const std::uint64_t role_seed = rng();
    std::vector<std::vector<Member>> member_lists(groups.size());
    auto fill = [&](std::size_t gi) {
      const auto& g = groups[gi];
      auto role_rng = util::Rng::stream(role_seed, gi);
      auto& members = member_lists[gi];
      members.reserve(g.size());
      for (std::size_t i = 0; i < g.size(); ++i) {
        members.push_back(Member{g.member_hosts[i], g.member_vms[i],
                                 static_cast<MemberRole>(role_rng.index(3))});
      }
    };
    pool.parallel_for(0, groups.size(), fill);
    std::vector<Controller::GroupSpec> specs(groups.size());
    for (std::size_t gi = 0; gi < groups.size(); ++gi) {
      specs[gi] = {groups[gi].tenant, member_lists[gi]};
    }
    Controller::BulkLoadStats stats;
    ids = controller.create_groups(specs, &pool, &stats);
    phases.add("bulk load encode", stats.encode_seconds);
    phases.add("bulk load merge", stats.merge_seconds);
  }
  phases.stop();

  phases.start("elmo churn");
  CountingSink sink{topology};
  controller.set_sink(&sink);
  ChurnSimulator churn{controller, cloud, ids};
  ChurnParams params;
  params.events = events;
  const double seconds = churn.run(params, rng);
  std::cout << "executed " << churn.joins() << " joins, " << churn.leaves()
            << " leaves over " << seconds << " simulated seconds\n\n";
  phases.stop();

  // --- Li et al. -----------------------------------------------------------
  phases.start("li churn");
  const auto li = li_churn(topology, cloud, workload, events, 1000.0, rng);
  phases.stop();

  auto cell = [](const CountingSink::Rates& r) {
    return TextTable::fmt(r.avg, 1) + " (" + TextTable::fmt(r.max, 0) + ")";
  };
  TextTable table{{"switch", "Elmo avg (max) upd/s", "Li et al. avg (max)",
                   "paper Elmo", "paper Li"}};
  table.add_row({"hypervisor", cell(sink.hypervisor_rates(seconds)),
                 "NE (NE)", "21 (46)", "NE (NE)"});
  table.add_row({"leaf", cell(sink.leaf_rates(seconds)),
                 cell(li.leaf), "5 (13)", "42 (42)"});
  table.add_row({"spine", cell(sink.spine_rates(seconds)),
                 cell(li.spine), "4 (7)", "78 (81)"});
  table.add_row({"core", cell(sink.core_rates(seconds)),
                 cell(li.core), "0 (0)", "133 (203)"});
  std::cout << table.render();
  std::cout << "Table 2 shape: Elmo absorbs churn at hypervisors; cores need "
               "zero updates; Li et al. loads every layer.\n";
  auto json_scale = scale;
  json_scale.groups = churn_groups;
  benchx::emit_run_json("table2_churn", json_scale, phases);
  return 0;
}
