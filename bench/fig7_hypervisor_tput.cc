// Figure 7: hypervisor-switch throughput (Mpps and Gbps) while encapsulating
// different numbers of p-rules as a single header.
//
// Two components, mirroring the paper's PISCES measurement:
//   * the measured software encap rate of our hypervisor switch (the
//     "one header, one write" fast path), via google-benchmark;
//   * the 20 Gbps line-rate projection: with the NIC as the bottleneck,
//     pps = 20 Gbps / packet size, so pps falls as p-rules are added while
//     Gbps stays flat — the paper's shape.
#include <benchmark/benchmark.h>

#include <iostream>

#include "dataplane/hypervisor_switch.h"
#include "elmo/encoder.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace elmo;

const topo::ClosTopology& fabric() {
  static const topo::ClosTopology t{topo::ClosParams::facebook_fabric()};
  return t;
}

// An Elmo header whose leaf layer holds exactly `rules` p-rules.
std::vector<std::uint8_t> header_with_rules(std::size_t rules) {
  const HeaderCodec codec{fabric()};
  SenderEncoding sender;
  sender.u_leaf.down = net::PortBitmap{fabric().leaf_down_ports()};
  sender.u_leaf.up = net::PortBitmap{fabric().leaf_up_ports()};
  sender.u_leaf.multipath = true;
  UpstreamRule u_spine;
  u_spine.down = net::PortBitmap{fabric().spine_down_ports()};
  u_spine.up = net::PortBitmap{fabric().spine_up_ports()};
  u_spine.multipath = true;
  sender.u_spine = u_spine;
  sender.core_pods = net::PortBitmap{fabric().core_ports()};

  GroupEncoding group;
  util::Rng rng{rules + 1};
  for (std::size_t r = 0; r < rules; ++r) {
    PRule rule;
    rule.bitmap = net::PortBitmap{fabric().leaf_down_ports()};
    for (int b = 0; b < 8; ++b) rule.bitmap.set(rng.index(48));
    rule.switch_ids = {static_cast<std::uint32_t>(rng.index(576)),
                       static_cast<std::uint32_t>(rng.index(576))};
    group.leaf.p_rules.push_back(std::move(rule));
  }
  return codec.serialize(sender, group);
}

constexpr std::size_t kPayloadBytes = 114;  // the paper's mean header + data

void BM_HypervisorEncap(benchmark::State& state) {
  const auto rules = static_cast<std::size_t>(state.range(0));
  dp::HypervisorSwitch hv{fabric(), 0};
  const auto group = net::Ipv4Address::multicast_group(1);
  dp::HypervisorSwitch::GroupFlow flow;
  flow.vni = 1;
  flow.elmo_header = header_with_rules(rules);
  hv.install_flow(group, flow);
  const std::vector<std::uint8_t> payload(kPayloadBytes, 0x42);

  std::uint64_t bytes = 0;
  for (auto _ : state) {
    auto packet = hv.encapsulate(group, payload);
    bytes += packet->size();
    benchmark::DoNotOptimize(packet->bytes().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_HypervisorEncap)->Arg(0)->Arg(5)->Arg(10)->Arg(20)->Arg(30);

void print_line_rate_projection() {
  using util::TextTable;
  std::cout << "\nFigure 7 projection at a 20 Gbps host link (paper's "
               "testbed):\n";
  TextTable table{{"p-rules", "header bytes", "packet bytes", "Mpps @20Gbps",
                   "Gbps"}};
  for (const std::size_t rules : {0u, 5u, 10u, 15u, 20u, 25u, 30u}) {
    const auto header = header_with_rules(rules);
    const std::size_t packet =
        net::kOuterHeaderBytes + header.size() + kPayloadBytes;
    const double mpps = 20e9 / (static_cast<double>(packet) * 8.0) / 1e6;
    table.add_row({std::to_string(rules), std::to_string(header.size()),
                   std::to_string(packet), TextTable::fmt(mpps, 2),
                   TextTable::fmt(20.0, 1)});
  }
  std::cout << table.render();
  std::cout << "shape: pps falls with header size, bps stays at line rate "
               "(paper Fig. 7); the measured encap rate above exceeds the "
               "NIC-limited rate, so the link, not the vswitch, is the "
               "bottleneck.\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_line_rate_projection();
  return 0;
}
