// §5.1.3: "Elmo's controller computes p- and s-rules for a group within a
// millisecond" (their Python: 0.20 ms avg). This bench measures the full
// per-group pipeline (tree construction + Algorithm 1 for both layers) and
// its pieces on the Facebook-Fabric topology, across group sizes.
#include <benchmark/benchmark.h>

#include "dataplane/hypervisor_switch.h"
#include "elmo/controller.h"
#include "elmo/encoder.h"
#include "util/rng.h"

namespace {

using namespace elmo;

const topo::ClosTopology& fabric() {
  static const topo::ClosTopology t{topo::ClosParams::facebook_fabric()};
  return t;
}

std::vector<topo::HostId> members_of_size(std::size_t size,
                                          std::uint64_t seed) {
  util::Rng rng{seed};
  std::vector<topo::HostId> hosts;
  hosts.reserve(size);
  for (const auto h : rng.sample_indices(fabric().num_hosts(), size)) {
    hosts.push_back(static_cast<topo::HostId>(h));
  }
  return hosts;
}

void BM_TreeBuild(benchmark::State& state) {
  const auto members =
      members_of_size(static_cast<std::size_t>(state.range(0)), 99);
  for (auto _ : state) {
    MulticastTree tree{fabric(), members};
    benchmark::DoNotOptimize(tree.num_leaves());
  }
}
BENCHMARK(BM_TreeBuild)->Arg(5)->Arg(60)->Arg(700)->Arg(5000);

void BM_EncodeGroup(benchmark::State& state) {
  // Tree + Algorithm 1 for both layers + s-rule reservations: the
  // controller's whole per-group computation.
  const auto members =
      members_of_size(static_cast<std::size_t>(state.range(0)), 7);
  EncoderConfig cfg;
  cfg.redundancy_limit = 12;
  const GroupEncoder encoder{fabric(), cfg};
  SRuleSpace space{fabric(), 1 << 20};
  for (auto _ : state) {
    const MulticastTree tree{fabric(), members};
    auto encoding = encoder.encode(tree, &space);
    benchmark::DoNotOptimize(encoding.p_rule_count());
    encoder.release(encoding, tree, space);
  }
  state.SetLabel("paper budget: < 1 ms per group");
}
BENCHMARK(BM_EncodeGroup)->Arg(5)->Arg(60)->Arg(178)->Arg(700)->Arg(5000);

void BM_SenderRoute(benchmark::State& state) {
  const auto members = members_of_size(60, 3);
  const MulticastTree tree{fabric(), members};
  for (auto _ : state) {
    auto enc = tree.sender_encoding(members[0]);
    benchmark::DoNotOptimize(enc.u_leaf.multipath);
  }
}
BENCHMARK(BM_SenderRoute);

void BM_HeaderSerialize(benchmark::State& state) {
  const auto members =
      members_of_size(static_cast<std::size_t>(state.range(0)), 5);
  const MulticastTree tree{fabric(), members};
  EncoderConfig cfg;
  cfg.redundancy_limit = 12;
  const GroupEncoder encoder{fabric(), cfg};
  const auto encoding = encoder.encode(tree, nullptr);
  const auto sender_enc = tree.sender_encoding(members[0]);
  for (auto _ : state) {
    auto bytes = encoder.codec().serialize(sender_enc, encoding);
    benchmark::DoNotOptimize(bytes.data());
  }
}
BENCHMARK(BM_HeaderSerialize)->Arg(60)->Arg(700);

void BM_HeaderParse(benchmark::State& state) {
  const auto members =
      members_of_size(static_cast<std::size_t>(state.range(0)), 5);
  const MulticastTree tree{fabric(), members};
  EncoderConfig cfg;
  cfg.redundancy_limit = 12;
  const GroupEncoder encoder{fabric(), cfg};
  const auto encoding = encoder.encode(tree, nullptr);
  const auto bytes =
      encoder.codec().serialize(tree.sender_encoding(members[0]), encoding);
  for (auto _ : state) {
    auto parsed = encoder.codec().parse(bytes);
    benchmark::DoNotOptimize(parsed.leaf_rules.size());
  }
}
BENCHMARK(BM_HeaderParse)->Arg(60)->Arg(700);

void BM_ChurnEvent(benchmark::State& state) {
  // One join + one leave through the controller (re-encode + diff).
  Controller controller{fabric(), EncoderConfig{}};
  const auto members = members_of_size(60, 11);
  std::vector<Member> ms;
  for (std::size_t i = 0; i < members.size(); ++i) {
    ms.push_back(Member{members[i], static_cast<std::uint32_t>(i),
                        MemberRole::kBoth});
  }
  const auto id = controller.create_group(0, ms);
  const Member extra{members_of_size(1, 1234)[0], 9999, MemberRole::kBoth};
  for (auto _ : state) {
    controller.join(id, extra);
    controller.leave(id, extra.host);
  }
}
BENCHMARK(BM_ChurnEvent);

void BM_HypervisorFlowInstall(benchmark::State& state) {
  // Hypervisor switches absorb Elmo's reconfiguration load; the paper cites
  // 40K updates/sec as the budget [76, 97]. Measure our install path.
  dp::HypervisorSwitch hv{fabric(), 0};
  dp::HypervisorSwitch::GroupFlow flow;
  flow.vni = 1;
  flow.elmo_header.assign(114, 0x55);
  flow.local_vms = {1, 2, 3};
  std::uint32_t next = 0;
  for (auto _ : state) {
    hv.install_flow(net::Ipv4Address::multicast_group(next++ & 0xfffff),
                    flow);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel("paper budget: 40K updates/s per hypervisor");
}
BENCHMARK(BM_HypervisorFlowInstall);

}  // namespace

BENCHMARK_MAIN();
