// §5.2.2: sFlow host telemetry — agent egress bandwidth vs collector count.
// Paper: unicast grows linearly to 370.4 Kbps at 64 collectors; Elmo stays
// ~5.8 Kbps (one stream) regardless of collector count.
#include <iostream>

#include "apps/telemetry.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace elmo;
  using util::TextTable;
  const util::Flags flags{argc, argv};

  const topo::ClosTopology topology{topo::ClosParams{.pods = 4,
                                                     .leaves_per_pod = 8,
                                                     .spines_per_pod = 2,
                                                     .cores_per_plane = 4,
                                                     .hosts_per_leaf = 12}};
  Controller controller{topology, EncoderConfig{}};
  sim::Fabric fabric{topology};
  util::Rng rng{static_cast<std::uint64_t>(flags.get_int("seed", 11))};

  const apps::TelemetryConfig config;  // 5 samples/s x 94 B ~ 5.76 Kbps/stream

  TextTable table{{"collectors", "unicast egress Kbps", "Elmo egress Kbps",
                   "delivered (sim)"}};
  for (const std::size_t n : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    std::vector<topo::HostId> collectors;
    for (const auto h : rng.sample_indices(topology.num_hosts() - 1, n)) {
      collectors.push_back(static_cast<topo::HostId>(h + 1));
    }
    apps::TelemetrySystem system{fabric, controller, /*tenant=*/1,
                                 /*agent=*/0, collectors};
    const auto uni = system.run(/*use_elmo=*/false, config, 2);
    const auto elmo_metrics = system.run(/*use_elmo=*/true, config, 2);
    table.add_row({std::to_string(n),
                   TextTable::fmt(uni.agent_egress_bps / 1000.0, 1),
                   TextTable::fmt(elmo_metrics.agent_egress_bps / 1000.0, 1),
                   std::to_string(uni.datagrams_delivered) + "+" +
                       std::to_string(elmo_metrics.datagrams_delivered)});
  }
  std::cout << "sFlow telemetry egress at the agent host\n"
            << table.render()
            << "paper: 370.4 Kbps @64 collectors unicast vs ~5.8 Kbps "
               "constant with Elmo.\n";
  return 0;
}
