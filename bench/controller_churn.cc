// Streaming control plane under sustained churn: events are ingested by
// elmo::stream::ControlPlane, each one incrementally re-encoded and
// installed as coalesced rule DELTAS over the p4rt wire channel into a live
// sim::Fabric. Reports sustained updates/sec (wall clock), per-layer update
// counts, coalescing efficiency, wire bytes, and the ingest-to-install lag
// distribution (p50/p99) — the paper's §5.1.3a churn story, measured at the
// installed-state level instead of the controller-update level (table2).
//
// Scale via env/flags: ELMO_PODS (default 12 = 27,648 hosts),
// ELMO_CHURN_GROUPS (default 20,000; paper: 1,000,000), ELMO_EVENTS
// (default 50,000; paper: 1,000,000), ELMO_FLUSH (batch threshold,
// default 64), ELMO_CHECK=1 digest-diffs the churned fabric against a
// fresh batch install of the final membership (the equivalence oracle;
// intended for reduced-scale CI smoke runs).
#include <chrono>
#include <fstream>
#include <iostream>

#include "elmo/churn.h"
#include "elmo/stream.h"
#include "figlib.h"
#include "sim/fabric.h"

int main(int argc, char** argv) {
  using namespace elmo;
  using util::TextTable;
  const util::Flags flags{argc, argv};
  auto scale = benchx::Scale::from_flags(flags);
  const auto churn_groups =
      static_cast<std::size_t>(flags.get_int("churn_groups", 20'000));
  const auto events =
      static_cast<std::size_t>(flags.get_int("events", 50'000));
  const auto flush_threshold =
      static_cast<std::size_t>(flags.get_int("flush", 64));
  const bool check = flags.get_bool("check", false);
  // --out=<path>: also record the run as a bench/results-style JSON
  // snapshot (docs/BENCH_SCHEMA.md §5).
  const auto out = flags.get_string("out", "");

  util::ThreadPool pool{scale.threads};
  benchx::PhaseTimer phases;

  const topo::ClosTopology topology{scale.topo_params()};
  util::Rng rng{scale.seed};
  scale.tenants = std::max<std::size_t>(
      20, static_cast<std::size_t>(3000.0 * churn_groups / 1e6));
  phases.start("workload");
  const cloud::Cloud cloud{topology, scale.cloud_params(/*P=*/1), rng, &pool};
  cloud::WorkloadParams wp;
  wp.total_groups = churn_groups;
  const cloud::GroupWorkload workload{cloud, wp, rng, &pool};
  phases.stop();

  std::cout << "controller_churn: " << topology.num_hosts() << " hosts, "
            << churn_groups << " groups, " << events
            << " streamed events, flush threshold " << flush_threshold
            << "\n";

  EncoderConfig config;
  config.encoder = scale.encoder_kind;
  config.redundancy_limit = 12;  // paper operating point (see table2)
  Controller controller{topology, config};
  phases.start("bulk load");
  std::vector<GroupId> ids;
  {
    const auto groups = workload.groups();
    const std::uint64_t role_seed = rng();
    std::vector<std::vector<Member>> member_lists(groups.size());
    auto fill = [&](std::size_t gi) {
      const auto& g = groups[gi];
      auto role_rng = util::Rng::stream(role_seed, gi);
      auto& members = member_lists[gi];
      members.reserve(g.size());
      for (std::size_t i = 0; i < g.size(); ++i) {
        members.push_back(Member{g.member_hosts[i], g.member_vms[i],
                                 static_cast<MemberRole>(role_rng.index(3))});
      }
    };
    pool.parallel_for(0, groups.size(), fill);
    std::vector<Controller::GroupSpec> specs(groups.size());
    for (std::size_t gi = 0; gi < groups.size(); ++gi) {
      specs[gi] = {groups[gi].tenant, member_lists[gi]};
    }
    ids = controller.create_groups(specs, &pool);
  }
  phases.stop();

  phases.start("fabric install");
  sim::Fabric fabric{topology};
  for (const auto id : ids) fabric.install_group(controller, id);
  phases.stop();

  phases.start("churn");
  stream::ControlPlane plane{controller, fabric,
                             stream::ControlPlaneOptions{flush_threshold}};
  for (const auto id : ids) plane.track_group(id);

  ChurnSimulator churn{controller, cloud, ids};
  churn.set_driver(&plane);
  ChurnParams params;
  params.events = events;
  const auto t0 = std::chrono::steady_clock::now();
  const double simulated = churn.run(params, rng);
  plane.flush();  // drain the tail so every event's lag is recorded
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  phases.stop();

  const auto& st = plane.stats();
  std::cout << "executed " << churn.joins() << " joins, " << churn.leaves()
            << " leaves (" << churn.noop_events() << " no-op attempts), "
            << simulated << " simulated seconds\n\n";

  TextTable table{{"metric", "value"}};
  auto row = [&](const std::string& k, const std::string& v) {
    table.add_row({k, v});
  };
  const double upd_rate = wall > 0 ? st.updates_applied / wall : 0.0;
  const double ev_rate = wall > 0 ? st.events / wall : 0.0;
  row("events ingested", std::to_string(st.events));
  row("clean events (no rule changed)", std::to_string(st.clean_events));
  row("rule updates applied", std::to_string(st.updates_applied));
  row("updates coalesced away", std::to_string(st.updates_coalesced));
  row("flow adds / dels",
      std::to_string(st.flow_adds) + " / " + std::to_string(st.flow_dels));
  row("leaf s-rule adds / dels", std::to_string(st.leaf_srule_adds) + " / " +
                                     std::to_string(st.leaf_srule_dels));
  row("spine s-rule adds / dels", std::to_string(st.spine_srule_adds) +
                                      " / " +
                                      std::to_string(st.spine_srule_dels));
  row("wire batches / bytes", std::to_string(st.batches_encoded) + " / " +
                                  std::to_string(st.wire_bytes));
  row("wall seconds", TextTable::fmt(wall, 3));
  row("sustained events/sec", TextTable::fmt(ev_rate, 0));
  row("sustained updates/sec", TextTable::fmt(upd_rate, 0));
  row("install lag p50 (ms)",
      TextTable::fmt(st.install_lag_seconds.percentile(50) * 1e3, 3));
  row("install lag p99 (ms)",
      TextTable::fmt(st.install_lag_seconds.percentile(99) * 1e3, 3));
  std::cout << table.render();

  if (check) {
    phases.start("equivalence check");
    sim::Fabric reference{topology};
    for (const auto id : ids) reference.install_group(controller, id);
    const bool same = stream::fabric_state_digest(fabric) ==
                      stream::fabric_state_digest(reference);
    phases.stop();
    std::cout << (same ? "equivalence: churned fabric digest-equal to fresh "
                         "batch install\n"
                       : "equivalence: DIVERGED from fresh batch install\n");
    if (!same) return 1;
  }

  if (!out.empty()) {
    std::ofstream file{out};
    file << "{\"bench\": \"controller_churn\", \"pods\": " << scale.pods
         << ", \"hosts\": " << topology.num_hosts()
         << ", \"groups\": " << churn_groups << ", \"events\": " << events
         << ", \"flush_threshold\": " << flush_threshold
         << ", \"encoder\": \"" << scale.encoder << "\", \"seed\": "
         << scale.seed << ",\n \"results\": {"
         << "\"events_ingested\": " << st.events
         << ", \"clean_events\": " << st.clean_events
         << ", \"updates_applied\": " << st.updates_applied
         << ", \"updates_coalesced\": " << st.updates_coalesced
         << ", \"flow_adds\": " << st.flow_adds
         << ", \"flow_dels\": " << st.flow_dels
         << ", \"leaf_srule_adds\": " << st.leaf_srule_adds
         << ", \"leaf_srule_dels\": " << st.leaf_srule_dels
         << ", \"spine_srule_adds\": " << st.spine_srule_adds
         << ", \"spine_srule_dels\": " << st.spine_srule_dels
         << ", \"wire_batches\": " << st.batches_encoded
         << ", \"wire_bytes\": " << st.wire_bytes
         << ", \"wall_seconds\": " << TextTable::fmt(wall, 3)
         << ", \"events_per_sec\": " << TextTable::fmt(ev_rate, 0)
         << ", \"updates_per_sec\": " << TextTable::fmt(upd_rate, 0)
         << ", \"install_lag_p50_ms\": "
         << TextTable::fmt(st.install_lag_seconds.percentile(50) * 1e3, 3)
         << ", \"install_lag_p99_ms\": "
         << TextTable::fmt(st.install_lag_seconds.percentile(99) * 1e3, 3)
         << "}}\n";
  }

  auto json_scale = scale;
  json_scale.groups = churn_groups;
  benchx::emit_run_json("controller_churn", json_scale, phases);
  return 0;
}
