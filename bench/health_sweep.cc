// Gray-failure detection-latency bench (DESIGN.md §14): for each failure
// class, inject the failure mid-run across a seed sweep and measure how many
// sampling windows the HealthMonitor needs to raise the matching incident,
// plus the false-positive rate on clean runs.
//
// Arms (all on the two-tier 1,024-host fabric at fanout 512, the widest
// packet_walk configuration):
//   clean        no injection — ANY incident is a false positive
//   loss_1pct    global gray loss 1% (per-seed loss stream)
//   loss_3pct    global gray loss 3%
//   fail_link    one leaf<->spine link black-holed (100% directed loss)
//   stuck_spine  every spine silently downed: ingress continues, egress zero
//   churn_lag    synthetic install-lag p99 series stepping past its budget
//
// The sweep also times the sampling hot path itself: a batched fanout-512
// walk with and without a per-batch Fabric::sample_into + advance, reported
// as sampling_overhead_pct against the existing ±8% telemetry budget.
//
// Output is JSON on stdout (recorded as bench/results/BENCH_health_sweep.json)
// closed by a `RUN {...}` metadata line on stderr so a stdout redirect
// captures clean JSON.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "elmo/controller.h"
#include "obs/health.h"
#include "obs/timeseries.h"
#include "sim/fabric.h"
#include "topology/clos.h"
#include "util/flags.h"

namespace {

using namespace elmo;

enum class Arm { kClean, kLoss1, kLoss3, kFailLink, kStuckSpine, kChurnLag };

struct ArmSpec {
  Arm arm;
  const char* name;
  const char* expected_class;  // empty for the clean arm
};

constexpr ArmSpec kArms[] = {
    {Arm::kClean, "clean", ""},
    {Arm::kLoss1, "loss_1pct", "link-loss"},
    {Arm::kLoss3, "loss_3pct", "link-loss"},
    {Arm::kFailLink, "fail_link", "link-loss"},
    {Arm::kStuckSpine, "stuck_spine", "stuck-element"},
    {Arm::kChurnLag, "churn_lag", "churn-lag"},
};

struct SeedOutcome {
  bool detected = false;
  std::size_t windows_to_detect = 0;  // first post-injection window == 1
  std::size_t false_positives = 0;    // incidents opened before injection
};

struct Bench {
  topo::ClosTopology topology{topo::ClosParams::two_tier_leaf_spine()};
  Controller controller;
  sim::Fabric fabric;
  net::Ipv4Address group;
  double expected_per_send = 0;

  explicit Bench(std::size_t fanout)
      : controller{topology, EncoderConfig{}}, fabric{topology} {
    std::vector<Member> members;
    members.push_back(Member{0, 0, MemberRole::kBoth});
    const std::size_t stride = (topology.num_hosts() - 1) / fanout;
    for (std::size_t i = 0; i < fanout; ++i) {
      members.push_back(Member{static_cast<topo::HostId>(1 + i * stride),
                               static_cast<std::uint32_t>(i + 1),
                               MemberRole::kReceiver});
    }
    const auto id = controller.create_group(0, members);
    fabric.install_group(controller, id);
    group = controller.group(id).address;
    // The clean fabric's per-send delivery count IS the analytic expectation
    // for this static group (cross-validated by the differ's evaluator diff).
    expected_per_send =
        static_cast<double>(fabric.send(0, group, std::size_t{64}).vm_deliveries);
  }
};

SeedOutcome run_seed(Arm arm, std::uint64_t seed, std::size_t fanout,
                     std::size_t windows, std::size_t sends_per_window,
                     std::size_t inject_at) {
  Bench b{fanout};
  obs::TimeSeriesStore store{64};
  obs::HealthMonitor monitor{store};
  obs::add_default_detectors(monitor);
  const char* expected_class = "";
  for (const auto& spec : kArms) {
    if (spec.arm == arm) expected_class = spec.expected_class;
  }

  SeedOutcome out;
  double expected_total = 0;
  double lag_p99 = 0.010;  // within the 50ms budget
  bool injected = false;
  for (std::size_t w = 0; w < windows; ++w) {
    if (!injected && w >= inject_at) {
      injected = true;
      switch (arm) {
        case Arm::kClean:
          break;
        case Arm::kLoss1:
          b.fabric.set_loss(0.01, seed);
          break;
        case Arm::kLoss3:
          b.fabric.set_loss(0.03, seed);
          break;
        case Arm::kFailLink: {
          // Black-hole every spine's link into one seed-rotated leaf (the
          // single flow rides exactly one spine, so downing one specific
          // spine->leaf pair would usually miss the data path). At fanout
          // 512 every leaf hosts receivers, so the deficit is guaranteed.
          const auto leaf = static_cast<topo::LeafId>(
              1 + seed % (b.topology.num_leaves() - 1));
          const sim::NodeRef l{topo::Layer::kLeaf, leaf};
          for (topo::SpineId sp = 0; sp < b.topology.num_spines(); ++sp) {
            b.fabric.set_link_loss(sim::NodeRef{topo::Layer::kSpine, sp}, l,
                                   1.0);
          }
          break;
        }
        case Arm::kStuckSpine:
          for (topo::SpineId s = 0; s < b.topology.num_spines(); ++s) {
            b.fabric.spine(s).set_down(true);
          }
          break;
        case Arm::kChurnLag:
          lag_p99 = 0.120;  // > 2x the 50ms budget: critical regression
          break;
      }
    }
    for (std::size_t i = 0; i < sends_per_window; ++i) {
      (void)b.fabric.send(0, b.group, std::size_t{64});
      expected_total += b.expected_per_send;
    }
    b.fabric.sample_into(store);
    store.append("elmo_expect_vm_deliveries_total", expected_total);
    store.append("elmo_stream_install_lag_p99_seconds", lag_p99);
    store.advance();
    const auto opened = monitor.tick();
    if (w < inject_at) {
      out.false_positives += opened.size();
    } else if (arm == Arm::kClean) {
      out.false_positives += opened.size();
    } else if (!out.detected && monitor.has_incident(expected_class)) {
      out.detected = true;
      out.windows_to_detect = w - inject_at + 1;
    }
  }
  return out;
}

// Sampling-overhead referee: the batched fanout-512 walk with a per-batch
// sample_into + advance versus without. Must stay within the ±8% budget the
// metrics-on walk already honors.
double sampling_overhead_pct(std::size_t iterations, std::size_t batch) {
  Bench b{512};
  const std::vector<sim::SendRequest> requests(
      batch, sim::SendRequest{0, b.group, 64});
  const sim::BatchOptions options{1};
  obs::TimeSeriesStore store{64};

  auto timed = [&](bool sample) {
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t done = 0; done < iterations; done += batch) {
      (void)b.fabric.send_batch(std::span{requests}, options);
      if (sample) {
        b.fabric.sample_into(store);
        store.advance();
      }
    }
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  (void)timed(true);  // warm caches and the store's series map
  const double off = timed(false);
  const double on = timed(true);
  return off > 0 ? (on / off - 1.0) * 100.0 : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags{argc, argv};
  const auto seeds = static_cast<std::size_t>(
      std::max<std::int64_t>(1, flags.get_int("SEEDS", 5)));
  const auto windows = static_cast<std::size_t>(
      std::max<std::int64_t>(6, flags.get_int("WINDOWS", 10)));
  const auto sends_per_window = static_cast<std::size_t>(
      std::max<std::int64_t>(1, flags.get_int("SENDS", 8)));
  const auto inject_at = static_cast<std::size_t>(
      std::max<std::int64_t>(1, flags.get_int("INJECT_AT", 3)));
  const auto fanout = static_cast<std::size_t>(
      std::max<std::int64_t>(8, flags.get_int("FANOUT", 512)));
  const auto overhead_iters = static_cast<std::size_t>(
      std::max<std::int64_t>(64, flags.get_int("OVERHEAD_ITERS", 192)));

  std::printf("{\n  \"bench\": \"health_sweep\",\n  \"fanout\": %zu,\n"
              "  \"seeds\": %zu,\n  \"windows\": %zu,\n"
              "  \"sends_per_window\": %zu,\n  \"inject_at\": %zu,\n"
              "  \"arms\": [\n",
              fanout, seeds, windows, sends_per_window, inject_at);

  bool ok = true;
  for (std::size_t a = 0; a < std::size(kArms); ++a) {
    const auto& spec = kArms[a];
    std::size_t detected = 0;
    std::size_t fp = 0;
    std::size_t detect_sum = 0;
    std::size_t detect_max = 0;
    for (std::uint64_t s = 0; s < seeds; ++s) {
      const auto o = run_seed(spec.arm, 1000 + s, fanout, windows,
                              sends_per_window, inject_at);
      fp += o.false_positives;
      if (o.detected) {
        ++detected;
        detect_sum += o.windows_to_detect;
        detect_max = std::max(detect_max, o.windows_to_detect);
      }
    }
    const bool is_clean = spec.arm == Arm::kClean;
    const double fp_rate =
        static_cast<double>(fp) / static_cast<double>(seeds);
    const double mean_detect =
        detected > 0 ? static_cast<double>(detect_sum) /
                           static_cast<double>(detected)
                     : 0.0;
    // Acceptance: clean arm raises nothing; every failure arm detects the
    // expected class on every seed within 5 windows of injection.
    if (is_clean) {
      ok = ok && fp == 0;
    } else {
      ok = ok && detected == seeds && fp == 0 && detect_max <= 5;
    }
    std::printf(
        "    {\"arm\": \"%s\", \"expected_class\": \"%s\", "
        "\"seeds\": %zu, \"detected\": %zu, "
        "\"mean_windows_to_detect\": %.2f, \"max_windows_to_detect\": %zu, "
        "\"false_positives\": %zu, \"false_positive_rate\": %.3f}%s\n",
        spec.name, spec.expected_class, seeds, detected, mean_detect,
        detect_max, fp, fp_rate, a + 1 < std::size(kArms) ? "," : ",");
  }

  const double overhead = sampling_overhead_pct(overhead_iters, 64);
  const bool overhead_ok = overhead <= 8.0;
  ok = ok && overhead_ok;
  std::printf("    {\"arm\": \"sampling_overhead\", "
              "\"sampling_overhead_pct\": %.2f, \"budget_pct\": 8.0, "
              "\"within_budget\": %s}\n  ],\n  \"ok\": %s\n}\n",
              overhead, overhead_ok ? "true" : "false",
              ok ? "true" : "false");
  std::fprintf(stderr,
               "RUN {\"bench\": \"health_sweep\", \"fanout\": %zu, "
               "\"seeds\": %zu, \"windows\": %zu, \"ok\": %s}\n",
               fanout, seeds, windows, ok ? "true" : "false");
  return ok ? 0 : 1;
}
