// Figure 6: ZeroMQ-style publish-subscribe, unicast vs Elmo.
// Left panel: requests/sec at subscribers vs number of subscribers.
// Right panel: publisher CPU utilization.
// Messages really flow through the packet-level fabric; rates come from the
// calibrated host model (see apps/pubsub.h).
#include <iostream>

#include "apps/pubsub.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/table.h"

#include <algorithm>

int main(int argc, char** argv) {
  using namespace elmo;
  using util::TextTable;
  const util::Flags flags{argc, argv};

  // 384-host pod fabric: enough for 256 subscribers on distinct hosts.
  const topo::ClosTopology topology{topo::ClosParams{.pods = 4,
                                                     .leaves_per_pod = 8,
                                                     .spines_per_pod = 2,
                                                     .cores_per_plane = 4,
                                                     .hosts_per_leaf = 12}};
  Controller controller{topology, EncoderConfig{}};
  sim::Fabric fabric{topology};
  util::Rng rng{static_cast<std::uint64_t>(flags.get_int("seed", 6))};

  const std::size_t message_bytes = 100;  // the paper's message size
  const apps::HostModel model;
  const double offered_rps = 185'000.0;

  // The CPU panel uses a fixed 3K rps offered load (the paper's publisher
  // serves a constant application rate while subscribers are added): unicast
  // CPU grows linearly in N and saturates, Elmo stays flat.
  const double cpu_panel_rps = 3000.0;
  TextTable table{{"subscribers", "unicast rps", "Elmo rps",
                   "unicast CPU % @3Krps", "Elmo CPU % @max",
                   "delivered (sim)"}};

  for (const std::size_t n : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
    std::vector<topo::HostId> subscribers;
    subscribers.reserve(n);
    for (const auto h : rng.sample_indices(topology.num_hosts() - 1, n)) {
      subscribers.push_back(static_cast<topo::HostId>(h + 1));  // skip pub
    }
    apps::PubSubSystem pubsub{fabric, controller, /*tenant=*/3,
                              /*publisher=*/0, subscribers};
    const auto uni = pubsub.run(apps::TransportMode::kUnicast, message_bytes,
                                /*sample_messages=*/2, model, offered_rps);
    const auto elmo_metrics =
        pubsub.run(apps::TransportMode::kElmo, message_bytes, 2, model,
                   offered_rps);
    const double unicast_cpu_fixed = std::min(
        1.0, cpu_panel_rps * static_cast<double>(n) *
                 model.unicast_copy_cost_sec);
    table.add_row(
        {std::to_string(n), TextTable::fmt_si(uni.throughput_rps, 1),
         TextTable::fmt_si(elmo_metrics.throughput_rps, 1),
         TextTable::fmt(unicast_cpu_fixed * 100, 1),
         TextTable::fmt(elmo_metrics.publisher_cpu_fraction * 100, 1),
         std::to_string(uni.messages_delivered) + "+" +
             std::to_string(elmo_metrics.messages_delivered) + "/2+2"});
  }
  std::cout << "Figure 6: pub-sub over " << topology.num_hosts()
            << "-host fabric, 100-byte messages\n"
            << table.render()
            << "paper shape: unicast collapses ~1/N (185K -> ~0.3K @256) and "
               "saturates CPU; Elmo holds 185K rps at ~4.9% CPU.\n";
  return 0;
}
