// Where does the multicast state live? (the paper's core scalability claim:
// "source routing takes state away from the switches")
//
// For one workload this bench accounts every byte of forwarding state each
// scheme stores, split by location: network-switch group tables (the scarce
// resource), hypervisor flow tables (software, plentiful), and in-flight
// packet headers (pay-per-packet).
#include <iostream>

#include "figlib.h"

int main(int argc, char** argv) {
  using namespace elmo;
  using util::TextTable;
  const util::Flags flags{argc, argv};
  auto scale = benchx::Scale::from_flags(flags);
  scale.groups = static_cast<std::size_t>(flags.get_int("groups", 20'000));
  scale.tenants = std::max<std::size_t>(
      20, static_cast<std::size_t>(3000.0 * scale.groups / 1e6));

  util::ThreadPool pool{scale.threads};
  benchx::PhaseTimer phases;

  const topo::ClosTopology topology{scale.topo_params()};
  util::Rng rng{scale.seed};
  phases.start("workload");
  const cloud::Cloud cloud{topology, scale.cloud_params(/*P=*/1), rng, &pool};
  cloud::WorkloadParams wp;
  wp.total_groups = scale.groups;
  const cloud::GroupWorkload workload{cloud, wp, rng, &pool};
  phases.stop();

  // Per-entry byte costs (typical ASIC/software table models).
  constexpr double kGroupTableEntryBytes = 16;  // addr + port-vector handle
  constexpr double kHypervisorFlowBytes = 64;   // OVS-style megaflow entry

  EncoderConfig cfg;
  cfg.redundancy_limit = 12;
  baselines::LiMulticast li{topology};
  phases.start("figure pass");
  benchx::FigureInputs inputs{topology, workload, cfg, &li, 7, &pool};
  const auto result = benchx::run_figure(inputs);
  phases.stop();

  // Elmo state.
  const double elmo_network_entries =
      result.leaf_srules.sum() + result.spine_srules.sum();
  double member_links = 0;  // hypervisor flow entries = member VMs
  double sender_headers = 0;
  for (const auto& g : workload.groups()) {
    member_links += static_cast<double>(g.size());
    sender_headers += static_cast<double>(g.size());  // all-sender worst case
  }
  const double elmo_hypervisor_bytes =
      member_links * kHypervisorFlowBytes +
      sender_headers * result.header_bytes.mean();
  const double elmo_network_bytes =
      elmo_network_entries * kGroupTableEntryBytes;

  // Li et al.: a group-table entry in every tree switch.
  const double li_entries = li.leaf_entries().sum() +
                            li.spine_entries().sum() +
                            li.core_entries().sum();
  const double li_network_bytes = li_entries * kGroupTableEntryBytes;

  // Native IP multicast: same tree state as Li, but no aggregation headroom
  // and a bottleneck at the per-switch table cap.
  const double ip_network_bytes = li_network_bytes;

  TextTable table{{"scheme", "network-switch state", "hypervisor state",
                   "per-packet header (mean)"}};
  table.add_row({"Elmo (R=12)",
                 TextTable::fmt_si(elmo_network_bytes, 1) + "B (" +
                     TextTable::fmt_si(elmo_network_entries, 1) + " entries)",
                 TextTable::fmt_si(elmo_hypervisor_bytes, 1) + "B",
                 TextTable::fmt(result.header_bytes.mean(), 0) + "B"});
  table.add_row({"Li et al.",
                 TextTable::fmt_si(li_network_bytes, 1) + "B (" +
                     TextTable::fmt_si(li_entries, 1) + " entries)",
                 "n/a", "0B"});
  table.add_row({"IP multicast",
                 TextTable::fmt_si(ip_network_bytes, 1) + "B (capped at 5K "
                 "entries/switch => " +
                     TextTable::fmt_si(5000.0 * topology.num_switches(), 1) +
                     " max)",
                 "n/a", "0B"});
  table.add_row({"unicast/overlay", "0B",
                 TextTable::fmt_si(member_links * kHypervisorFlowBytes, 1) +
                     "B + per-receiver connection state",
                 "0B (but N copies per packet)"});

  std::cout << "State accounting, " << scale.groups << " groups, P=1, WVE\n"
            << table.render()
            << "Elmo keeps "
            << TextTable::fmt(100.0 * (1.0 - elmo_network_bytes /
                                                 li_network_bytes),
                              1)
            << "% of Li et al.'s network-switch state out of the fabric by "
               "moving it into packets and hypervisors.\n";
  benchx::emit_run_json("state_accounting", scale, phases);
  return 0;
}
