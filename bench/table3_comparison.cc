// Table 3: comparison between Elmo and related multicast approaches under a
// group-table budget of 5,000 rules and a header budget of 325 bytes.
// Arithmetic limits (BIER bit-string, SGM address list, table-derived group
// counts) are computed from the budgets; see baselines/schemes.cc.
#include <iostream>

#include "baselines/schemes.h"
#include "util/flags.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace elmo;
  using util::TextTable;
  const util::Flags flags{argc, argv};

  baselines::ComparisonBudget budget;
  budget.group_table_entries =
      static_cast<std::size_t>(flags.get_int("group_table", 5000));
  budget.header_budget_bytes =
      static_cast<std::size_t>(flags.get_int("budget", 325));

  const auto rows = baselines::comparison_table(budget);
  TextTable table{{"scheme", "#groups", "group-table", "flow-table",
                   "group-size limit", "network-size limit", "unorthodox sw",
                   "line rate", "addr isolation", "multipath",
                   "control ovh", "traffic ovh", "host replication"}};
  auto yn = [](bool b) { return b ? std::string{"yes"} : std::string{"no"}; };
  for (const auto& row : rows) {
    table.add_row({row.name, row.groups, row.group_table_usage,
                   row.flow_table_usage, row.group_size_limit,
                   row.network_size_limit, yn(row.unorthodox_switch),
                   yn(row.line_rate), yn(row.address_space_isolation),
                   row.multipath, row.control_overhead, row.traffic_overhead,
                   yn(row.end_host_replication)});
  }
  std::cout << "Table 3: schemes at " << budget.group_table_entries
            << " group-table entries and " << budget.header_budget_bytes
            << "-byte headers, " << budget.hosts << " hosts\n"
            << table.render();
  std::cout << "derived: BIER bit-string caps the network at "
            << baselines::bier_max_hosts(budget)
            << " hosts; SGM fits "
            << baselines::sgm_max_group_size(budget)
            << " IPv4 members per header.\n";
  return 0;
}
