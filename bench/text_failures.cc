// §5.1.3b: network failures. For sampled spine and core switches, fail the
// switch, count the groups whose upstream rules must be recomputed and the
// hypervisor updates the controller issues, then restore.
// Paper: up to 12.3% of groups affected by one spine failure, up to 25.8% by
// a core failure; hypervisor updates avg (max) 176.9 (1712) and 674.9 (1852)
// per failure event; hypervisors reconfigure within ~25 ms.
#include <iostream>

#include "elmo/churn.h"
#include "elmo/controller.h"
#include "figlib.h"

int main(int argc, char** argv) {
  using namespace elmo;
  using util::TextTable;
  const util::Flags flags{argc, argv};
  auto scale = benchx::Scale::from_flags(flags);
  const auto group_count =
      static_cast<std::size_t>(flags.get_int("churn_groups", 20'000));
  scale.tenants = std::max<std::size_t>(
      20, static_cast<std::size_t>(3000.0 * group_count / 1e6));

  const topo::ClosTopology topology{scale.topo_params()};
  util::Rng rng{scale.seed};
  const cloud::Cloud cloud{topology, scale.cloud_params(/*P=*/1), rng};
  cloud::WorkloadParams wp;
  wp.total_groups = group_count;
  const cloud::GroupWorkload workload{cloud, wp, rng};

  EncoderConfig config;
  config.redundancy_limit = 12;  // the paper's operating point: most state
                                 // in p-rules, few s-rules to churn
  Controller controller{topology, config};
  for (const auto& g : workload.groups()) {
    std::vector<Member> members;
    members.reserve(g.size());
    for (std::size_t i = 0; i < g.size(); ++i) {
      members.push_back(Member{g.member_hosts[i], g.member_vms[i],
                               static_cast<MemberRole>(rng.index(3))});
    }
    controller.create_group(g.tenant, members);
  }
  std::cout << "loaded " << controller.num_groups() << " groups on "
            << topology.num_hosts() << " hosts\n";

  // Per-hypervisor update counts per failure event (the paper's metric:
  // each hypervisor batches its own re-issued upstream rules; 80K updates/s
  // per server -> the max determines the reconfiguration window).
  CountingSink sink{topology};
  controller.set_sink(&sink);

  util::OnlineStats spine_affected_pct;
  util::OnlineStats spine_avg_per_hv;
  util::OnlineStats spine_max_per_hv;
  const std::size_t spine_samples =
      std::min<std::size_t>(topology.num_spines(), 16);
  for (std::size_t i = 0; i < spine_samples; ++i) {
    const auto spine = static_cast<topo::SpineId>(
        i * topology.num_spines() / spine_samples);
    sink.reset();
    const auto impact = controller.fail_spine(spine);
    controller.restore_spine(spine);
    spine_affected_pct.add(100.0 *
                           static_cast<double>(impact.groups_affected) /
                           static_cast<double>(controller.num_groups()));
    const auto rates = sink.hypervisor_rates(1.0);
    spine_avg_per_hv.add(rates.avg);
    spine_max_per_hv.add(rates.max);
  }

  util::OnlineStats core_affected_pct;
  util::OnlineStats core_avg_per_hv;
  util::OnlineStats core_max_per_hv;
  const std::size_t core_samples =
      std::min<std::size_t>(topology.num_cores(), 16);
  for (std::size_t i = 0; i < core_samples; ++i) {
    const auto core =
        static_cast<topo::CoreId>(i * topology.num_cores() / core_samples);
    sink.reset();
    const auto impact = controller.fail_core(core);
    controller.restore_core(core);
    core_affected_pct.add(100.0 *
                          static_cast<double>(impact.groups_affected) /
                          static_cast<double>(controller.num_groups()));
    const auto rates = sink.hypervisor_rates(1.0);
    core_avg_per_hv.add(rates.avg);
    core_max_per_hv.add(rates.max);
  }

  TextTable table{{"failure", "% groups affected avg (max)",
                   "updates per hypervisor/event avg (max)", "paper: % groups",
                   "paper: updates"}};
  table.add_row({"spine switch",
                 TextTable::fmt(spine_affected_pct.mean(), 1) + " (" +
                     TextTable::fmt(spine_affected_pct.max(), 1) + ")",
                 TextTable::fmt(spine_avg_per_hv.mean(), 2) + " (" +
                     TextTable::fmt(spine_max_per_hv.max(), 0) + ")",
                 "up to 12.3%", "176.9 (1712)"});
  table.add_row({"core switch",
                 TextTable::fmt(core_affected_pct.mean(), 1) + " (" +
                     TextTable::fmt(core_affected_pct.max(), 1) + ")",
                 TextTable::fmt(core_avg_per_hv.mean(), 2) + " (" +
                     TextTable::fmt(core_max_per_hv.max(), 0) + ")",
                 "up to 25.8%", "674.9 (1852)"});
  std::cout << table.render();
  std::cout << "shape: core failures affect more groups than spine failures; "
               "all recovery lands on hypervisors (network switches are "
               "untouched).\nAt 80K batched updates/s per hypervisor server, "
               "the measured update counts reconfigure within tens of ms.\n";
  return 0;
}
