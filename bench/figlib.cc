#include "figlib.h"

#include <iostream>

#include "net/headers.h"
#include "util/rng.h"

namespace elmo::benchx {

Scale Scale::from_flags(const util::Flags& flags) {
  Scale scale;
  scale.pods = static_cast<std::size_t>(flags.get_int("pods", 12));
  scale.groups = static_cast<std::size_t>(flags.get_int("groups", 50'000));
  scale.tenants = static_cast<std::size_t>(flags.get_int(
      "tenants",
      std::max<std::int64_t>(
          20, static_cast<std::int64_t>(3000.0 * scale.groups / 1e6))));
  scale.seed = static_cast<std::uint64_t>(flags.get_int("seed", 2019));
  return scale;
}

cloud::CloudParams Scale::cloud_params(std::size_t colocation) const {
  cloud::CloudParams params;  // the paper's tenant distribution
  params.tenants = tenants;
  params.colocation = colocation;
  return params;
}

topo::ClosParams Scale::topo_params() const {
  auto params = topo::ClosParams::facebook_fabric();
  params.pods = pods;
  return params;
}

double FigureResult::overhead(std::size_t payload) const {
  const auto per_hop = net::kOuterHeaderBytes + payload;
  const double elmo_bytes =
      static_cast<double>(elmo_transmissions * per_hop +
                          elmo_header_wire_bytes);
  const double ideal_bytes =
      static_cast<double>(ideal_transmissions * per_hop);
  return ideal_bytes > 0 ? elmo_bytes / ideal_bytes : 1.0;
}

double FigureResult::unicast_ratio(std::size_t payload) const {
  (void)payload;  // unicast and ideal carry the same per-packet bytes
  return ideal_transmissions > 0
             ? static_cast<double>(unicast_transmissions) /
                   static_cast<double>(ideal_transmissions)
             : 1.0;
}

double FigureResult::overlay_ratio(std::size_t payload) const {
  (void)payload;
  return ideal_transmissions > 0
             ? static_cast<double>(overlay_transmissions) /
                   static_cast<double>(ideal_transmissions)
             : 1.0;
}

double FigureResult::overhead_without_popping(std::size_t payload) const {
  // Every hop would carry the full source header (mean over groups is a
  // fair stand-in because transmissions dominate large groups either way).
  const auto per_hop = net::kOuterHeaderBytes + payload;
  const double full_header = header_bytes.mean();
  const double elmo_bytes = static_cast<double>(elmo_transmissions) *
                            (static_cast<double>(per_hop) + full_header);
  const double ideal_bytes =
      static_cast<double>(ideal_transmissions * per_hop);
  return ideal_bytes > 0 ? elmo_bytes / ideal_bytes : 1.0;
}

FigureResult run_figure(const FigureInputs& inputs) {
  const auto& topology = inputs.topology;
  const elmo::GroupEncoder encoder{topology, inputs.config};
  elmo::SRuleSpace space{topology, inputs.config.srule_capacity};
  const elmo::TrafficEvaluator evaluator{topology};
  util::Rng rng{inputs.seed};

  FigureResult result;
  result.groups_total = inputs.workload.groups().size();

  for (const auto& group : inputs.workload.groups()) {
    const elmo::MulticastTree tree{topology, group.member_hosts};
    const auto encoding = encoder.encode(tree, &space);

    if (!encoding.uses_default() && encoding.s_rule_count() == 0) {
      ++result.covered_p_rules_only;  // the Fig. 4/5 left-panel metric
    }
    if (!encoding.uses_default()) ++result.covered_without_default;
    if (encoding.s_rule_count() > 0) ++result.groups_with_srules;

    const auto sender =
        group.member_hosts[rng.index(group.member_hosts.size())];
    // payload 0: report factors as transmissions + header bytes, so any
    // packet size can be derived afterwards.
    const auto report =
        evaluator.evaluate(tree, encoding, sender, /*payload=*/0, rng());
    if (!report.delivery.exactly_once()) ++result.delivery_failures;

    result.elmo_transmissions += report.elmo_link_transmissions;
    result.elmo_header_wire_bytes +=
        report.elmo_wire_bytes -
        report.elmo_link_transmissions * net::kOuterHeaderBytes;
    result.ideal_transmissions += report.ideal_link_transmissions;
    result.header_bytes.add(
        static_cast<double>(report.header_bytes_at_source));

    const auto unicast = baselines::unicast_traffic(
        topology, group.member_hosts, sender, 1);
    const auto overlay = baselines::overlay_traffic(
        topology, group.member_hosts, sender, 1);
    result.unicast_transmissions += unicast.link_transmissions;
    result.overlay_transmissions += overlay.link_transmissions;

    if (inputs.li != nullptr) {
      inputs.li->install(inputs.li->build_tree(tree, rng()));
    }
    // Keep the s-rule reservations: the occupancy after all groups is the
    // figure's center panel. (Encodings themselves are discarded.)
  }

  result.leaf_srules = space.leaf_stats();
  result.spine_srules = space.spine_stats();
  {
    std::vector<double> leaf_occ;
    leaf_occ.reserve(space.leaf_occupancies().size());
    for (const auto o : space.leaf_occupancies()) {
      leaf_occ.push_back(static_cast<double>(o));
    }
    result.leaf_srule_p95 = util::percentile(leaf_occ, 95);
  }
  return result;
}

void print_figure(const std::string& title,
                  const topo::ClosTopology& topology,
                  const cloud::GroupWorkload& workload,
                  const elmo::EncoderConfig& base_config,
                  const std::vector<std::size_t>& redundancy_values) {
  using util::TextTable;
  std::cout << "=== " << title << " ===\n";

  baselines::LiMulticast li{topology};
  bool li_done = false;

  TextTable table{{"R", "groups p-rule-only", "s-rules/leaf mean (p95,max)",
                   "s-rules/spine mean (max)", "hdr bytes mean (min,max)",
                   "overhead 1500B", "overhead 64B"}};

  for (const auto r : redundancy_values) {
    auto config = base_config;
    config.redundancy_limit = r;
    FigureInputs inputs{topology, workload, config,
                        li_done ? nullptr : &li, /*seed=*/7};
    const auto result = run_figure(inputs);
    li_done = true;

    if (result.delivery_failures > 0) {
      std::cout << "!! delivery failures: " << result.delivery_failures
                << "\n";
    }
    table.add_row(
        {std::to_string(r),
         TextTable::fmt_count(result.covered_p_rules_only) + " (" +
             TextTable::fmt_pct(
                 static_cast<double>(result.covered_p_rules_only) /
                 static_cast<double>(result.groups_total)) +
             "), no-dflt " +
             TextTable::fmt_pct(
                 static_cast<double>(result.covered_without_default) /
                 static_cast<double>(result.groups_total)),
         TextTable::fmt(result.leaf_srules.mean(), 1) + " (" +
             TextTable::fmt(result.leaf_srule_p95, 0) + ", " +
             TextTable::fmt(result.leaf_srules.max(), 0) + ")",
         TextTable::fmt(result.spine_srules.mean(), 1) + " (" +
             TextTable::fmt(result.spine_srules.max(), 0) + ")",
         TextTable::fmt(result.header_bytes.mean(), 1) + " (" +
             TextTable::fmt(result.header_bytes.min(), 0) + ", " +
             TextTable::fmt(result.header_bytes.max(), 0) + ")",
         TextTable::fmt(result.overhead(1500), 3),
         TextTable::fmt(result.overhead(64), 3)});

    if (r == redundancy_values.back()) {
      std::cout << table.render();
      std::cout << "baselines (transmission ratio vs ideal): unicast="
                << TextTable::fmt(result.unicast_ratio(64), 2)
                << "  overlay=" << TextTable::fmt(result.overlay_ratio(64), 2)
                << "\n";
      std::cout << "Li et al. group-table entries/leaf: mean="
                << TextTable::fmt(li.leaf_entries().mean(), 1)
                << " max=" << TextTable::fmt(li.leaf_entries().max(), 0)
                << " | /spine mean="
                << TextTable::fmt(li.spine_entries().mean(), 1)
                << " | /core mean="
                << TextTable::fmt(li.core_entries().mean(), 1) << "\n";
      std::cout << "D2d ablation, no per-hop popping: overhead(1500B)="
                << TextTable::fmt(result.overhead_without_popping(1500), 3)
                << " vs with popping "
                << TextTable::fmt(result.overhead(1500), 3) << "\n\n";
    }
  }
}

}  // namespace elmo::benchx
