#include "figlib.h"

#include <cstdio>
#include <iostream>
#include <memory>

#include "net/headers.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace elmo::benchx {

Scale Scale::from_flags(const util::Flags& flags) {
  Scale scale;
  scale.pods = static_cast<std::size_t>(flags.get_int("pods", 12));
  scale.groups = static_cast<std::size_t>(flags.get_int("groups", 50'000));
  scale.tenants = static_cast<std::size_t>(flags.get_int(
      "tenants",
      std::max<std::int64_t>(
          20, static_cast<std::int64_t>(3000.0 * scale.groups / 1e6))));
  scale.seed = static_cast<std::uint64_t>(flags.get_int("seed", 2019));
  scale.threads = static_cast<std::size_t>(std::max<std::int64_t>(
      1, flags.get_int("threads",
                       static_cast<std::int64_t>(util::default_thread_count()))));
  scale.metrics = flags.get_string("metrics", "");
  if (!scale.metrics.empty()) {
    obs::MetricsRegistry::global().set_enabled(true);
  }
  scale.encoder = flags.get_string("encoder", "elmo");
  scale.encoder_kind = parse_encoder_kind(scale.encoder);
  return scale;
}

cloud::CloudParams Scale::cloud_params(std::size_t colocation) const {
  cloud::CloudParams params;  // the paper's tenant distribution
  params.tenants = tenants;
  params.colocation = colocation;
  return params;
}

topo::ClosParams Scale::topo_params() const {
  auto params = topo::ClosParams::facebook_fabric();
  params.pods = pods;
  return params;
}

double FigureResult::overhead(std::size_t payload) const {
  const auto per_hop = net::kOuterHeaderBytes + payload;
  const double elmo_bytes =
      static_cast<double>(elmo_transmissions * per_hop +
                          elmo_header_wire_bytes);
  const double ideal_bytes =
      static_cast<double>(ideal_transmissions * per_hop);
  return ideal_bytes > 0 ? elmo_bytes / ideal_bytes : 1.0;
}

double FigureResult::unicast_ratio(std::size_t payload) const {
  (void)payload;  // unicast and ideal carry the same per-packet bytes
  return ideal_transmissions > 0
             ? static_cast<double>(unicast_transmissions) /
                   static_cast<double>(ideal_transmissions)
             : 1.0;
}

double FigureResult::overlay_ratio(std::size_t payload) const {
  (void)payload;
  return ideal_transmissions > 0
             ? static_cast<double>(overlay_transmissions) /
                   static_cast<double>(ideal_transmissions)
             : 1.0;
}

double FigureResult::overhead_without_popping(std::size_t payload) const {
  // Every hop would carry the full source header (mean over groups is a
  // fair stand-in because transmissions dominate large groups either way).
  const auto per_hop = net::kOuterHeaderBytes + payload;
  const double full_header = header_bytes.mean();
  const double elmo_bytes = static_cast<double>(elmo_transmissions) *
                            (static_cast<double>(per_hop) + full_header);
  const double ideal_bytes =
      static_cast<double>(ideal_transmissions * per_hop);
  return ideal_bytes > 0 ? elmo_bytes / ideal_bytes : 1.0;
}

namespace {

// Per-group state carried from the parallel phase into the merge pass.
struct StagedGroup {
  std::unique_ptr<elmo::MulticastTree> tree;
  elmo::GroupEncoding encoding;
  bool denied = false;  // a speculative s-rule reservation was refused
  topo::HostId sender = 0;
  std::uint64_t eval_seed = 0;
  elmo::TrafficReport report;
  std::uint64_t unicast_tx = 0;
  std::uint64_t overlay_tx = 0;
  std::optional<baselines::LiTree> li_tree;
};

// Groups per speculative chunk. Like cloud::kPlacementRound this is a fixed
// constant, never derived from the thread count, so the merge sees the same
// chunk boundaries (and produces the same output) at any parallelism.
constexpr std::size_t kFigureChunk = 4096;

}  // namespace

FigureResult run_figure(const FigureInputs& inputs) {
  const auto& topology = inputs.topology;
  const auto encoder_impl = elmo::make_encoder(topology, inputs.config);
  const elmo::TreeEncoder& encoder = *encoder_impl;
  elmo::SRuleSpace space{topology, inputs.config.srule_capacity};
  const elmo::TrafficEvaluator evaluator{topology};

  FigureResult result;
  const auto groups = inputs.workload.groups();
  result.groups_total = groups.size();
  const bool report_progress = groups.size() >= 200'000;
  std::size_t next_progress = groups.size() / 10;

  auto parallel_for = [&](std::size_t begin, std::size_t end, auto&& body) {
    if (inputs.pool != nullptr) {
      inputs.pool->parallel_for(begin, end, body);
    } else {
      for (std::size_t i = begin; i < end; ++i) body(i);
    }
  };

  // Accumulates one group's contribution; called in group order only.
  auto accumulate = [&](const StagedGroup& sg) {
    if (!sg.encoding.uses_default() && sg.encoding.s_rule_count() == 0) {
      ++result.covered_p_rules_only;  // the Fig. 4/5 left-panel metric
    }
    if (!sg.encoding.uses_default()) ++result.covered_without_default;
    if (sg.encoding.s_rule_count() > 0) ++result.groups_with_srules;
    if (!sg.report.delivery.exactly_once()) ++result.delivery_failures;

    const auto& d = sg.report.delivery;
    result.duplicate_deliveries += d.duplicate_deliveries;
    result.spurious_deliveries += d.spurious_deliveries;
    result.excess_via_default += d.excess_via_default;
    result.excess_via_shared_prule += d.excess_via_shared_prule;
    result.excess_via_srule += d.excess_via_srule;
    result.excess_via_exact += d.excess_via_exact;
    {
      // Distinct leaf-layer egress bitmaps (p-rules + default).
      std::vector<const net::PortBitmap*> distinct;
      auto note = [&](const net::PortBitmap& bm) {
        for (const auto* seen : distinct) {
          if (*seen == bm) return;
        }
        distinct.push_back(&bm);
      };
      for (const auto& rule : sg.encoding.leaf.p_rules) note(rule.bitmap);
      if (sg.encoding.leaf.default_rule) note(*sg.encoding.leaf.default_rule);
      result.leaf_egress_diversity.add(static_cast<double>(distinct.size()));
    }

    result.elmo_transmissions += sg.report.elmo_link_transmissions;
    result.elmo_header_wire_bytes +=
        sg.report.elmo_wire_bytes -
        sg.report.elmo_link_transmissions * net::kOuterHeaderBytes;
    result.ideal_transmissions += sg.report.ideal_link_transmissions;
    result.header_bytes.add(
        static_cast<double>(sg.report.header_bytes_at_source));
    result.unicast_transmissions += sg.unicast_tx;
    result.overlay_transmissions += sg.overlay_tx;
  };

  // Replays an encoding's s-rule reservations against the authoritative
  // space; on failure rolls back and reports false.
  auto try_apply = [&](const elmo::GroupEncoding& enc) {
    std::size_t spines = 0;
    for (const auto& [pod, bitmap] : enc.spine.s_rules) {
      (void)bitmap;
      if (!space.try_reserve_pod_spines(pod)) break;
      ++spines;
    }
    std::size_t leaves = 0;
    if (spines == enc.spine.s_rules.size()) {
      for (const auto& [leaf, bitmap] : enc.leaf.s_rules) {
        (void)bitmap;
        if (!space.try_reserve_leaf(leaf)) break;
        ++leaves;
      }
      if (leaves == enc.leaf.s_rules.size()) return true;
    }
    for (std::size_t i = 0; i < leaves; ++i) {
      space.release_leaf(enc.leaf.s_rules[i].first);
    }
    for (std::size_t i = 0; i < spines; ++i) {
      space.release_pod_spines(enc.spine.s_rules[i].first);
    }
    return false;
  };

  std::vector<StagedGroup> staged;
  for (std::size_t chunk = 0; chunk < groups.size(); chunk += kFigureChunk) {
    const std::size_t chunk_end =
        std::min(groups.size(), chunk + kFigureChunk);
    staged.clear();
    staged.resize(chunk_end - chunk);

    // --- parallel phase: tree build, Algorithm 1 against speculative Fmax
    // counters, traffic walk, baselines -----------------------------------
    const auto t0 = std::chrono::steady_clock::now();
    elmo::ConcurrentSRuleCounters speculative{space};
    parallel_for(chunk, chunk_end, [&](std::size_t g) {
      const auto& group = groups[g];
      auto& sg = staged[g - chunk];
      auto rng = util::Rng::stream(inputs.seed, g);

      sg.tree =
          std::make_unique<elmo::MulticastTree>(topology, group.member_hosts);
      elmo::TreeEncoder::SRuleReservers reservers;
      reservers.leaf = [&](std::uint32_t leaf) {
        if (speculative.try_reserve_leaf(leaf)) return true;
        sg.denied = true;
        return false;
      };
      reservers.pod_spines = [&](std::uint32_t pod) {
        if (speculative.try_reserve_pod_spines(pod)) return true;
        sg.denied = true;
        return false;
      };
      sg.encoding = encoder.encode_with(*sg.tree, reservers);

      sg.sender = group.member_hosts[rng.index(group.member_hosts.size())];
      sg.eval_seed = rng();
      // payload 0: report factors as transmissions + header bytes, so any
      // packet size can be derived afterwards.
      sg.report = evaluator.evaluate(*sg.tree, sg.encoding, sg.sender,
                                     /*payload=*/0, sg.eval_seed);
      sg.unicast_tx =
          baselines::unicast_traffic(topology, group.member_hosts, sg.sender,
                                     1)
              .link_transmissions;
      sg.overlay_tx =
          baselines::overlay_traffic(topology, group.member_hosts, sg.sender,
                                     1)
              .link_transmissions;
      if (inputs.li != nullptr) {
        sg.li_tree = inputs.li->build_tree(*sg.tree, rng());
      }
    });
    const auto t1 = std::chrono::steady_clock::now();

    // --- serial in-order merge: commit reservations against the
    // authoritative space, re-encode on speculative disagreement ----------
    for (std::size_t g = chunk; g < chunk_end; ++g) {
      auto& sg = staged[g - chunk];
      if (!sg.denied && try_apply(sg.encoding)) {
        ++result.speculative_commits;
      } else {
        ++result.serial_reencodes;
        sg.encoding = encoder.encode(*sg.tree, &space);
        sg.report = evaluator.evaluate(*sg.tree, sg.encoding, sg.sender,
                                       /*payload=*/0, sg.eval_seed);
      }
      accumulate(sg);
      if (sg.li_tree) inputs.li->install(*sg.li_tree);
      // Keep the s-rule reservations: the occupancy after all groups is the
      // figure's center panel. (Encodings themselves are discarded.)
    }
    const auto t2 = std::chrono::steady_clock::now();
    result.parallel_seconds += std::chrono::duration<double>(t1 - t0).count();
    result.merge_seconds += std::chrono::duration<double>(t2 - t1).count();

    if (report_progress && chunk_end >= next_progress) {
      std::fprintf(stderr, "  [run_figure] %zu/%zu groups (%.0f%%)\n",
                   chunk_end, groups.size(),
                   100.0 * static_cast<double>(chunk_end) /
                       static_cast<double>(groups.size()));
      next_progress += groups.size() / 10;
    }
  }

  result.leaf_srules = space.leaf_stats();
  result.spine_srules = space.spine_stats();
  {
    std::vector<double> leaf_occ;
    leaf_occ.reserve(space.leaf_occupancies().size());
    for (const auto o : space.leaf_occupancies()) {
      leaf_occ.push_back(static_cast<double>(o));
    }
    result.leaf_srule_p95 = util::percentile(leaf_occ, 95);
  }
  return result;
}

void PhaseTimer::start(const std::string& name) {
  stop();
  running_ = name;
  started_ = std::chrono::steady_clock::now();
}

void PhaseTimer::stop() {
  if (running_.empty()) return;
  add(running_, std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - started_)
                    .count());
  running_.clear();
}

void PhaseTimer::add(const std::string& name, double seconds) {
  for (auto& [n, s] : phases_) {
    if (n == name) {
      s += seconds;
      return;
    }
  }
  phases_.emplace_back(name, seconds);
}

std::string PhaseTimer::json() const {
  std::string out = "{";
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%s\"%s\": %.3f", i ? ", " : "",
                  phases_[i].first.c_str(), phases_[i].second);
    out += buf;
  }
  out += "}";
  return out;
}

void emit_run_json(const std::string& bench, const Scale& scale,
                   PhaseTimer& phases) {
  phases.stop();
  std::printf(
      "RUN {\"bench\": \"%s\", \"pods\": %zu, \"groups\": %zu, "
      "\"tenants\": %zu, \"seed\": %llu, \"threads\": %zu, "
      "\"encoder\": \"%s\", \"phases\": %s}\n",
      bench.c_str(), scale.pods, scale.groups, scale.tenants,
      static_cast<unsigned long long>(scale.seed), scale.threads,
      scale.encoder.c_str(), phases.json().c_str());
  // The metrics exposition goes to its own sink ("-" = stderr) so the
  // RUN-line/stdout contract of docs/BENCH_SCHEMA.md is untouched.
  if (!scale.metrics.empty()) {
    obs::write_metrics(scale.metrics,
                       obs::MetricsRegistry::global().snapshot());
  }
}

void print_figure(const std::string& title,
                  const topo::ClosTopology& topology,
                  const cloud::GroupWorkload& workload,
                  const elmo::EncoderConfig& base_config,
                  const std::vector<std::size_t>& redundancy_values,
                  util::ThreadPool* pool, PhaseTimer* phases) {
  using util::TextTable;
  std::cout << "=== " << title << " ===\n";

  baselines::LiMulticast li{topology};
  bool li_done = false;

  TextTable table{{"R", "groups p-rule-only", "s-rules/leaf mean (p95,max)",
                   "s-rules/spine mean (max)", "hdr bytes mean (min,max)",
                   "overhead 1500B", "overhead 64B"}};

  for (const auto r : redundancy_values) {
    auto config = base_config;
    config.redundancy_limit = r;
    FigureInputs inputs{topology, workload, config,
                        li_done ? nullptr : &li, /*seed=*/7, pool};
    const auto result = run_figure(inputs);
    li_done = true;
    if (phases != nullptr) {
      phases->add("R=" + std::to_string(r) + " encode+evaluate",
                  result.parallel_seconds);
      phases->add("R=" + std::to_string(r) + " merge",
                  result.merge_seconds);
    }

    if (result.delivery_failures > 0) {
      std::cout << "!! delivery failures: " << result.delivery_failures
                << "\n";
    }
    table.add_row(
        {std::to_string(r),
         TextTable::fmt_count(result.covered_p_rules_only) + " (" +
             TextTable::fmt_pct(
                 static_cast<double>(result.covered_p_rules_only) /
                 static_cast<double>(result.groups_total)) +
             "), no-dflt " +
             TextTable::fmt_pct(
                 static_cast<double>(result.covered_without_default) /
                 static_cast<double>(result.groups_total)),
         TextTable::fmt(result.leaf_srules.mean(), 1) + " (" +
             TextTable::fmt(result.leaf_srule_p95, 0) + ", " +
             TextTable::fmt(result.leaf_srules.max(), 0) + ")",
         TextTable::fmt(result.spine_srules.mean(), 1) + " (" +
             TextTable::fmt(result.spine_srules.max(), 0) + ")",
         TextTable::fmt(result.header_bytes.mean(), 1) + " (" +
             TextTable::fmt(result.header_bytes.min(), 0) + ", " +
             TextTable::fmt(result.header_bytes.max(), 0) + ")",
         TextTable::fmt(result.overhead(1500), 3),
         TextTable::fmt(result.overhead(64), 3)});

    if (r == redundancy_values.back()) {
      std::cout << table.render();
      std::cout << "baselines (transmission ratio vs ideal): unicast="
                << TextTable::fmt(result.unicast_ratio(64), 2)
                << "  overlay=" << TextTable::fmt(result.overlay_ratio(64), 2)
                << "\n";
      std::cout << "Li et al. group-table entries/leaf: mean="
                << TextTable::fmt(li.leaf_entries().mean(), 1)
                << " max=" << TextTable::fmt(li.leaf_entries().max(), 0)
                << " | /spine mean="
                << TextTable::fmt(li.spine_entries().mean(), 1)
                << " | /core mean="
                << TextTable::fmt(li.core_entries().mean(), 1) << "\n";
      std::cout << "D2d ablation, no per-hop popping: overhead(1500B)="
                << TextTable::fmt(result.overhead_without_popping(1500), 3)
                << " vs with popping "
                << TextTable::fmt(result.overhead(1500), 3) << "\n\n";
    }
  }
}

}  // namespace elmo::benchx
