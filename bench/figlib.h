// Shared experiment harness for the paper's evaluation figures/tables.
//
// One pass over a group workload computes, per encoder configuration:
//   * how many groups are covered by non-default p-rules (Fig. 4/5 left),
//   * s-rule usage across leaf and spine switches (Fig. 4/5 center),
//   * traffic overhead vs ideal multicast for any packet size (Fig. 4/5
//     right) — the evaluator walk is payload-independent (transmissions +
//     header bytes), so 64 B and 1,500 B numbers come from the same walk,
//   * unicast / overlay baselines and the Li et al. group-table baseline,
//   * header-size distribution at the source.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "baselines/hostcast.h"
#include "baselines/li_multicast.h"
#include "cloud/cloud.h"
#include "elmo/evaluator.h"
#include "elmo/tree_encoder.h"
#include "util/flags.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace elmo::benchx {

// Scale knobs (env ELMO_* overrides; see README).
struct Scale {
  std::size_t pods = 12;
  std::size_t groups = 50'000;
  std::size_t tenants = 3000;
  std::uint64_t seed = 2019;
  // Worker threads for workload generation and the encode/evaluate pass
  // (ELMO_THREADS / --threads; defaults to the hardware concurrency).
  // Results are bit-identical at any value — see DESIGN.md §5.
  std::size_t threads = 1;
  // --metrics=<path> (or ELMO_METRICS): when non-empty, from_flags enables
  // the global MetricsRegistry and emit_run_json writes the exposition there
  // ("-" = stderr, ".json" suffix = JSON dump). Empty = telemetry disabled.
  std::string metrics;
  // --encoder={elmo,bert,p3fa} (or ELMO_ENCODER): which TreeEncoder the
  // bench's EncoderConfig selects. Parsed strictly; unknown names throw.
  std::string encoder = "elmo";
  EncoderKind encoder_kind = EncoderKind::kElmo;

  static Scale from_flags(const util::Flags& flags);
  // Tenant population scaled to the group count so reduced runs stay
  // representative (1M groups <-> 3000 tenants in the paper).
  cloud::CloudParams cloud_params(std::size_t colocation) const;
  topo::ClosParams topo_params() const;
};

struct FigureResult {
  std::size_t groups_total = 0;
  std::size_t covered_p_rules_only = 0;   // no s-rules, no default (Fig. 4 left)
  std::size_t covered_without_default = 0;
  std::size_t groups_with_srules = 0;

  util::OnlineStats leaf_srules;   // per-switch occupancy after all groups
  util::OnlineStats spine_srules;
  double leaf_srule_p95 = 0;

  util::OnlineStats header_bytes;  // serialized size at the source

  // Payload-independent accounting (summed over one sender per group).
  std::uint64_t elmo_transmissions = 0;
  std::uint64_t elmo_header_wire_bytes = 0;  // sum of per-hop Elmo bytes
  std::uint64_t ideal_transmissions = 0;
  std::uint64_t unicast_transmissions = 0;
  std::uint64_t overlay_transmissions = 0;
  std::size_t delivery_failures = 0;  // must stay 0

  // Delivery-precision accounting (summed over one sender per group):
  // excess copies and their cause split, from the evaluator walk.
  std::uint64_t duplicate_deliveries = 0;
  std::uint64_t spurious_deliveries = 0;
  std::uint64_t excess_via_default = 0;
  std::uint64_t excess_via_shared_prule = 0;
  std::uint64_t excess_via_srule = 0;
  std::uint64_t excess_via_exact = 0;

  // Distinct egress bitmaps in the leaf layer per group (p-rules plus the
  // default rule) — the diversity P3FA-style encoders bound.
  util::OnlineStats leaf_egress_diversity;

  double overhead(std::size_t payload) const;
  double unicast_ratio(std::size_t payload) const;
  double overlay_ratio(std::size_t payload) const;
  // D2d ablation: traffic overhead if p-rules were NOT popped hop by hop.
  double overhead_without_popping(std::size_t payload) const;

  // Wall-time breakdown of the pass (parallel encode+evaluate vs the
  // serial in-order merge) and how the merge resolved each group.
  double parallel_seconds = 0;
  double merge_seconds = 0;
  std::size_t speculative_commits = 0;
  std::size_t serial_reencodes = 0;
};

struct FigureInputs {
  const topo::ClosTopology& topology;
  const cloud::GroupWorkload& workload;
  elmo::EncoderConfig config;
  // When set, also feed every group's tree into the Li et al. baseline.
  baselines::LiMulticast* li = nullptr;
  std::uint64_t seed = 1;
  // Runs the per-group encode/evaluate work on this pool (nullptr =
  // serial). Output is bit-identical either way: every group draws from
  // util::Rng::stream(seed, group index) and s-rule reservations are
  // committed by a serial in-order merge (DESIGN.md §5).
  util::ThreadPool* pool = nullptr;
};

FigureResult run_figure(const FigureInputs& inputs);

// Wall-clock phase breakdown every bench reports in its trailing run JSON
// (docs/BENCH_SCHEMA.md). Phases appear in insertion order; repeated names
// accumulate.
class PhaseTimer {
 public:
  // Starts timing `name`, closing any running phase.
  void start(const std::string& name);
  void stop();
  // Records an externally measured duration.
  void add(const std::string& name, double seconds);
  // {"workload": 1.23, "encode": 4.56, ...}
  std::string json() const;

 private:
  std::vector<std::pair<std::string, double>> phases_;
  std::string running_;
  std::chrono::steady_clock::time_point started_;
};

// Prints the one-line run-metadata JSON ("RUN {...}") every bench emits
// last on stdout; see docs/BENCH_SCHEMA.md for the format.
void emit_run_json(const std::string& bench, const Scale& scale,
                   PhaseTimer& phases);

// Renders the three Fig. 4/5 panels for a set of R values. When `phases`
// is given, each R value's pass is recorded as a phase ("R=12").
void print_figure(const std::string& title, const topo::ClosTopology& topology,
                  const cloud::GroupWorkload& workload,
                  const elmo::EncoderConfig& base_config,
                  const std::vector<std::size_t>& redundancy_values,
                  util::ThreadPool* pool = nullptr,
                  PhaseTimer* phases = nullptr);

}  // namespace elmo::benchx
