// Appendix A: why p-rule lookup must happen in the parser, not in
// match-action stages. Reproduces the RMT resource-waste arithmetic.
#include <iostream>

#include "baselines/rmt.h"
#include "util/table.h"

int main() {
  using namespace elmo;
  using util::TextTable;

  std::cout << "Appendix A strawman: p-rule lookup via match-action stages "
               "on an RMT chip\n\n";

  TextTable tcam{{"p-rules", "id bits", "TCAM blocks", "entries used/provided",
                  "waste"}};
  for (const auto& [rules, bits] :
       std::vector<std::pair<std::size_t, std::size_t>>{
           {10, 11}, {30, 11}, {10, 14}, {30, 14}}) {
    const auto cost = baselines::tcam_prule_lookup_cost(rules, bits);
    tcam.add_row({std::to_string(rules), std::to_string(bits),
                  std::to_string(cost.blocks_needed),
                  std::to_string(cost.entries_used) + "/" +
                      std::to_string(cost.entries_provided),
                  TextTable::fmt_pct(cost.waste_fraction, 2)});
  }
  std::cout << "TCAM (wildcard) variant:\n" << tcam.render();

  TextTable sram{{"p-rules", "stages needed", "fits 16-stage ingress?",
                  "per-block waste"}};
  for (const std::size_t rules : {5u, 10u, 16u, 30u}) {
    const auto cost = baselines::sram_prule_lookup_cost(rules);
    sram.add_row({std::to_string(rules), std::to_string(cost.stages_needed),
                  cost.feasible ? "yes" : "NO",
                  TextTable::fmt_pct(cost.waste_fraction, 2)});
  }
  std::cout << "\nSRAM (exact-match, one rule per stage) variant:\n"
            << sram.render();
  std::cout << "paper: 10 p-rules burn 3 TCAM blocks at 99.5% waste; the "
               "SRAM variant wastes 99.9% and cannot fit 30 rules in 16 "
               "stages. Elmo's parser match-and-set uses zero match-action "
               "resources.\n";
  return 0;
}
