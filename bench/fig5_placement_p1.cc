// Figure 5: fully dispersed placement (P = 1 VM of a tenant per rack).
// Same three panels as Figure 4; dispersal makes trees wider, shifting
// coverage from p-rules to s-rules at low R.
#include <iostream>

#include "figlib.h"

int main(int argc, char** argv) {
  using namespace elmo;
  const util::Flags flags{argc, argv};
  const auto scale = benchx::Scale::from_flags(flags);
  util::ThreadPool pool{scale.threads};
  benchx::PhaseTimer phases;

  const topo::ClosTopology topology{scale.topo_params()};
  util::Rng rng{scale.seed};
  phases.start("workload");
  const cloud::Cloud cloud{topology, scale.cloud_params(/*P=*/1), rng, &pool};
  cloud::WorkloadParams wp;
  wp.total_groups = scale.groups;
  const cloud::GroupWorkload workload{cloud, wp, rng, &pool};
  phases.stop();

  std::cout << "fabric: " << topology.num_hosts() << " hosts, "
            << topology.num_leaves() << " leaves, " << cloud.tenants().size()
            << " tenants, " << workload.groups().size()
            << " groups (WVE sizes), placement P=1, " << pool.threads()
            << " threads\n";

  EncoderConfig config;
  config.encoder = scale.encoder_kind;
  benchx::print_figure("Figure 5: P=1 placement, WVE group sizes", topology,
                       workload, config, {0, 6, 12}, &pool, &phases);
  benchx::emit_run_json("fig5_placement_p1", scale, phases);
  return 0;
}
