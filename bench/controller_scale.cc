// Controller bulk-encoding throughput vs thread count.
//
// Loads one workload into a fresh controller once per thread count and
// reports groups/sec for the whole create_groups pass (tree build +
// Algorithm 1 + s-rule merge), plus the encode/merge split from
// Controller::BulkLoadStats. Every parallel run's p/s-rule output is
// compared against the serial run's encodings — the determinism contract
// (DESIGN.md §5) says they must be byte-identical, and the bench fails
// loudly if they are not.
//
// Output is JSON on stdout (docs/BENCH_SCHEMA.md); the recorded snapshot is
// bench/results/BENCH_controller_scale.json.
//
// Scale via env: ELMO_GROUPS (default 50,000; paper: 1,000,000), ELMO_PODS,
// ELMO_SEED, ELMO_THREAD_LIST (comma list, default "1,4,8").
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "elmo/controller.h"
#include "figlib.h"

namespace {

using namespace elmo;

std::vector<std::size_t> parse_thread_list(const std::string& raw) {
  std::vector<std::size_t> counts;
  std::size_t value = 0;
  bool have = false;
  for (const char c : raw) {
    if (c >= '0' && c <= '9') {
      value = value * 10 + static_cast<std::size_t>(c - '0');
      have = true;
    } else if (have) {
      counts.push_back(std::max<std::size_t>(1, value));
      value = 0;
      have = false;
    }
  }
  if (have) counts.push_back(std::max<std::size_t>(1, value));
  if (counts.empty()) counts = {1, 4, 8};
  return counts;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags{argc, argv};
  auto scale = benchx::Scale::from_flags(flags);
  const auto thread_list =
      parse_thread_list(flags.get_string("THREAD_LIST", "1,4,8"));

  const topo::ClosTopology topology{scale.topo_params()};
  util::Rng rng{scale.seed};
  util::ThreadPool workload_pool{scale.threads};
  const cloud::Cloud cloud{topology, scale.cloud_params(/*P=*/12), rng,
                           &workload_pool};
  cloud::WorkloadParams wp;
  wp.total_groups = scale.groups;
  const cloud::GroupWorkload workload{cloud, wp, rng, &workload_pool};

  // Member lists (roles from per-group streams) shared by every run.
  const auto groups = workload.groups();
  const std::uint64_t role_seed = rng();
  std::vector<std::vector<Member>> member_lists(groups.size());
  workload_pool.parallel_for(0, groups.size(), [&](std::size_t gi) {
    const auto& g = groups[gi];
    auto role_rng = util::Rng::stream(role_seed, gi);
    auto& members = member_lists[gi];
    members.reserve(g.size());
    for (std::size_t i = 0; i < g.size(); ++i) {
      members.push_back(Member{g.member_hosts[i], g.member_vms[i],
                               static_cast<MemberRole>(role_rng.index(3))});
    }
  });
  std::vector<Controller::GroupSpec> specs(groups.size());
  for (std::size_t gi = 0; gi < groups.size(); ++gi) {
    specs[gi] = {groups[gi].tenant, member_lists[gi]};
  }

  struct Run {
    std::size_t threads = 0;
    double seconds = 0;
    double encode_seconds = 0;
    double merge_seconds = 0;
    std::size_t serial_reencodes = 0;
    bool matches_serial = true;
  };
  std::vector<Run> runs;

  // Serial reference first; its controller stays alive for the comparisons.
  Controller reference{topology, EncoderConfig{}};
  std::vector<GroupId> reference_ids;
  {
    Run run;
    run.threads = 1;
    Controller::BulkLoadStats stats;
    const auto t0 = std::chrono::steady_clock::now();
    reference_ids = reference.create_groups(specs, /*pool=*/nullptr, &stats);
    run.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    run.encode_seconds = stats.encode_seconds;
    run.merge_seconds = stats.merge_seconds;
    run.serial_reencodes = stats.serial_reencodes;
    runs.push_back(run);
    std::fprintf(stderr, "serial: %.2fs (%.0f groups/s)\n", run.seconds,
                 static_cast<double>(groups.size()) / run.seconds);
  }

  for (const auto threads : thread_list) {
    if (threads <= 1) continue;  // the serial reference covers 1
    Run run;
    run.threads = threads;
    util::ThreadPool pool{threads};
    Controller controller{topology, EncoderConfig{}};
    Controller::BulkLoadStats stats;
    const auto t0 = std::chrono::steady_clock::now();
    const auto ids = controller.create_groups(specs, &pool, &stats);
    run.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    run.encode_seconds = stats.encode_seconds;
    run.merge_seconds = stats.merge_seconds;
    run.serial_reencodes = stats.serial_reencodes;

    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (!(controller.group(ids[i]).encoding ==
            reference.group(reference_ids[i]).encoding)) {
        run.matches_serial = false;
        break;
      }
    }
    if (!run.matches_serial) {
      std::fprintf(stderr,
                   "FATAL: %zu-thread encodings differ from serial\n",
                   threads);
      return 1;
    }
    runs.push_back(run);
    std::fprintf(stderr, "%zu threads: %.2fs (%.0f groups/s)\n", threads,
                 run.seconds,
                 static_cast<double>(groups.size()) / run.seconds);
  }

  const double serial_seconds = runs.front().seconds;
  std::printf("{\n  \"bench\": \"controller_scale\",\n"
              "  \"groups\": %zu,\n  \"pods\": %zu,\n  \"seed\": %llu,\n"
              "  \"hardware_threads\": %u,\n  \"results\": [\n",
              groups.size(), scale.pods,
              static_cast<unsigned long long>(scale.seed),
              std::thread::hardware_concurrency());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& r = runs[i];
    std::printf(
        "    {\"threads\": %zu, \"seconds\": %.3f, \"groups_per_sec\": "
        "%.0f, \"speedup_vs_serial\": %.2f, \"encode_seconds\": %.3f, "
        "\"merge_seconds\": %.3f, \"serial_reencodes\": %zu, "
        "\"matches_serial\": %s}%s\n",
        r.threads, r.seconds,
        static_cast<double>(groups.size()) / r.seconds,
        serial_seconds / r.seconds, r.encode_seconds, r.merge_seconds,
        r.serial_reencodes, r.matches_serial ? "true" : "false",
        i + 1 < runs.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
  return 0;
}
