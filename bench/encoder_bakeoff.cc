// Encoder bake-off (ISSUE 6): the same workload pushed through every
// TreeEncoder scheme — Elmo's Algorithm 1, the Bert-style member-clustering
// encoder, and the P3FA-style egress-diversity encoder — at full fabric
// scale, comparing four metric families per scheme:
//   1. header bytes per sender at the source (mean / min / max),
//   2. s-rule spill against the per-switch Fmax group-table budget,
//   3. delivery precision: duplicate + spurious copies and their cause
//      split (default p-rule / shared p-rule / shared s-rule),
//   4. encode throughput (groups/sec) over a shared pre-built tree sample.
//
// Human-readable tables go to stderr; the comparison lands as one JSON
// object on stdout (or in --out=PATH), followed by the usual RUN line —
// the recorded snapshot is bench/results/BENCH_encoder_bakeoff.json
// (docs/BENCH_SCHEMA.md):
//   ./build/bench/encoder_bakeoff --out=bench/results/BENCH_encoder_bakeoff.json
//
// Scale via env/flags: ELMO_GROUPS (default 50,000), ELMO_PODS (default 12
// = 27,648 hosts), ELMO_TENANTS, ELMO_SEED, ELMO_THREADS, plus
//   --fmax=N           per-switch group-table capacity (default 10,000)
//   --redundancy=R     R for schemes that honor it (default 12)
//   --encode_sample=N  trees in the throughput pass (default 10,000)
//   --out=PATH         write the JSON snapshot here instead of stdout
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "elmo/tree.h"
#include "figlib.h"

namespace {

using namespace elmo;

struct SchemeRun {
  EncoderKind kind = EncoderKind::kElmo;
  benchx::FigureResult figure;
  double encode_seconds = 0;
  std::size_t encode_sample = 0;
  double encode_groups_per_sec = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using util::TextTable;
  const util::Flags flags{argc, argv};
  const auto scale = benchx::Scale::from_flags(flags);
  const auto fmax =
      static_cast<std::size_t>(flags.get_int("FMAX", 10'000));
  const auto redundancy =
      static_cast<std::size_t>(flags.get_int("REDUNDANCY", 12));
  const auto encode_sample =
      static_cast<std::size_t>(flags.get_int("ENCODE_SAMPLE", 10'000));
  const auto out_path = flags.get_string("OUT", "");

  util::ThreadPool pool{scale.threads};
  benchx::PhaseTimer phases;

  const topo::ClosTopology topology{scale.topo_params()};
  util::Rng rng{scale.seed};
  phases.start("workload");
  const cloud::Cloud cloud{topology, scale.cloud_params(/*P=*/12), rng, &pool};
  cloud::WorkloadParams wp;
  wp.total_groups = scale.groups;
  const cloud::GroupWorkload workload{cloud, wp, rng, &pool};
  phases.stop();

  std::fprintf(stderr,
               "bake-off fabric: %zu hosts, %zu leaves, %zu groups, "
               "Fmax=%zu, R=%zu, %zu threads\n",
               topology.num_hosts(), topology.num_leaves(),
               workload.groups().size(), fmax, redundancy, pool.threads());

  // Shared tree sample for the encode-throughput pass: built once so every
  // scheme times pure encoding, not tree construction.
  phases.start("tree sample");
  const auto& groups = workload.groups();
  const std::size_t sample_n = std::min(encode_sample, groups.size());
  std::vector<std::unique_ptr<MulticastTree>> sample(sample_n);
  pool.parallel_for(0, sample_n, [&](std::size_t gi) {
    sample[gi] =
        std::make_unique<MulticastTree>(topology, groups[gi].member_hosts);
  });
  phases.stop();

  std::vector<SchemeRun> runs;
  for (const auto kind : kAllEncoderKinds) {
    SchemeRun run;
    run.kind = kind;

    EncoderConfig config;
    config.encoder = kind;
    config.redundancy_limit = redundancy;  // ignored by bert/p3fa
    config.srule_capacity = fmax;

    phases.start(std::string{to_string(kind)} + " figure");
    benchx::FigureInputs inputs{topology, workload, config, nullptr,
                                scale.seed, &pool};
    run.figure = benchx::run_figure(inputs);
    phases.stop();

    // Encode-only throughput over the shared sample (serial, no s-rule
    // space: measures the clustering algorithm itself).
    const auto encoder = make_encoder(topology, config);
    phases.start(std::string{to_string(kind)} + " encode");
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto& tree : sample) {
      const auto encoding = encoder->encode(*tree, /*space=*/nullptr);
      (void)encoding;
    }
    run.encode_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    phases.stop();
    run.encode_sample = sample_n;
    run.encode_groups_per_sec =
        run.encode_seconds > 0
            ? static_cast<double>(sample_n) / run.encode_seconds
            : 0;

    if (run.figure.delivery_failures != 0) {
      std::fprintf(stderr, "FATAL: %s dropped %zu member deliveries\n",
                   to_string(kind), run.figure.delivery_failures);
      return 1;
    }
    std::fprintf(stderr, "%s: figure pass done, %.0f groups/s encode\n",
                 to_string(kind), run.encode_groups_per_sec);
    runs.push_back(std::move(run));
  }

  const double n = static_cast<double>(groups.size());
  TextTable table{{"scheme", "header B mean (min,max)", "p-rule-only %",
                   "leaf s-rules mean/max vs Fmax", "excess/group (dup+spur)",
                   "leaf egress classes", "encode kgroups/s"}};
  for (const auto& run : runs) {
    const auto& f = run.figure;
    table.add_row(
        {to_string(run.kind),
         TextTable::fmt(f.header_bytes.mean(), 1) + " (" +
             TextTable::fmt(f.header_bytes.min(), 0) + "," +
             TextTable::fmt(f.header_bytes.max(), 0) + ")",
         TextTable::fmt(100.0 * static_cast<double>(f.covered_p_rules_only) /
                            n,
                        1),
         TextTable::fmt(f.leaf_srules.mean(), 1) + "/" +
             TextTable::fmt(f.leaf_srules.max(), 0) + " of " +
             std::to_string(fmax),
         TextTable::fmt(static_cast<double>(f.duplicate_deliveries +
                                            f.spurious_deliveries) /
                            n,
                        3) +
             " (" + std::to_string(f.duplicate_deliveries) + "+" +
             std::to_string(f.spurious_deliveries) + ")",
         TextTable::fmt(f.leaf_egress_diversity.mean(), 2),
         TextTable::fmt(run.encode_groups_per_sec / 1000.0, 1)});
  }
  std::fputs(table.render().c_str(), stderr);

  // Machine-readable snapshot (stdout, or the --out file).
  FILE* out = stdout;
  if (!out_path.empty()) {
    out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "FATAL: cannot open --out=%s\n", out_path.c_str());
      return 1;
    }
  }
  std::fprintf(out, "{\n  \"bench\": \"encoder_bakeoff\",\n"
              "  \"pods\": %zu,\n  \"hosts\": %zu,\n  \"groups\": %zu,\n"
              "  \"tenants\": %zu,\n  \"seed\": %llu,\n  \"fmax\": %zu,\n"
              "  \"redundancy\": %zu,\n  \"encode_sample\": %zu,\n"
              "  \"results\": [\n",
              scale.pods, topology.num_hosts(), groups.size(), scale.tenants,
              static_cast<unsigned long long>(scale.seed), fmax, redundancy,
              sample_n);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& run = runs[i];
    const auto& f = run.figure;
    std::fprintf(out,
        "    {\"encoder\": \"%s\",\n", to_string(run.kind));
    std::fprintf(out,
        "     \"header_bytes\": {\"mean\": %.2f, \"min\": %.0f, "
                "\"max\": %.0f},\n",
                f.header_bytes.mean(), f.header_bytes.min(),
                f.header_bytes.max());
    std::fprintf(out,
        
        "     \"srules\": {\"leaf_mean\": %.2f, \"leaf_max\": %.0f, "
        "\"leaf_p95\": %.1f, \"spine_mean\": %.2f, \"spine_max\": %.0f, "
        "\"groups_with_srules\": %zu, \"leaf_fmax_utilization\": %.4f},\n",
        f.leaf_srules.mean(), f.leaf_srules.max(), f.leaf_srule_p95,
        f.spine_srules.mean(), f.spine_srules.max(), f.groups_with_srules,
        f.leaf_srules.max() / static_cast<double>(fmax));
    std::fprintf(out,
        
        "     \"delivery\": {\"duplicates\": %llu, \"spurious\": %llu, "
        "\"via_default\": %llu, \"via_shared_prule\": %llu, "
        "\"via_srule\": %llu, \"via_exact\": %llu, \"failures\": %zu, "
        "\"excess_per_group\": %.4f},\n",
        static_cast<unsigned long long>(f.duplicate_deliveries),
        static_cast<unsigned long long>(f.spurious_deliveries),
        static_cast<unsigned long long>(f.excess_via_default),
        static_cast<unsigned long long>(f.excess_via_shared_prule),
        static_cast<unsigned long long>(f.excess_via_srule),
        static_cast<unsigned long long>(f.excess_via_exact),
        f.delivery_failures,
        static_cast<double>(f.duplicate_deliveries + f.spurious_deliveries) /
            n);
    std::fprintf(out,
        
        "     \"coverage\": {\"groups_total\": %zu, \"p_rules_only\": %zu, "
        "\"without_default\": %zu},\n",
        f.groups_total, f.covered_p_rules_only, f.covered_without_default);
    std::fprintf(out,
        "     \"leaf_egress_diversity\": {\"mean\": %.2f, "
                "\"max\": %.0f},\n",
                f.leaf_egress_diversity.mean(), f.leaf_egress_diversity.max());
    std::fprintf(out,
        "     \"encode\": {\"seconds\": %.3f, \"sample\": %zu, "
                "\"groups_per_sec\": %.0f}}%s\n",
                run.encode_seconds, run.encode_sample,
                run.encode_groups_per_sec, i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  if (out != stdout) {
    std::fclose(out);
    std::fprintf(stderr, "snapshot written to %s\n", out_path.c_str());
  }
  benchx::emit_run_json("encoder_bakeoff", scale, phases);
  return 0;
}
