// Table 1: summary of results — re-derives each headline claim from the
// other experiments at a reduced default scale (ELMO_GROUPS to change).
#include <iostream>

#include "elmo/churn.h"
#include "figlib.h"

int main(int argc, char** argv) {
  using namespace elmo;
  using util::TextTable;
  const util::Flags flags{argc, argv};
  auto scale = benchx::Scale::from_flags(flags);
  scale.groups = static_cast<std::size_t>(flags.get_int("groups", 20'000));
  scale.tenants = std::max<std::size_t>(
      20, static_cast<std::size_t>(3000.0 * scale.groups / 1e6));

  util::ThreadPool pool{scale.threads};
  benchx::PhaseTimer phases;

  const topo::ClosTopology topology{scale.topo_params()};
  util::Rng rng{scale.seed};
  phases.start("workload");
  const cloud::Cloud cloud{topology, scale.cloud_params(/*P=*/12), rng,
                           &pool};
  cloud::WorkloadParams wp;
  wp.total_groups = scale.groups;
  const cloud::GroupWorkload workload{cloud, wp, rng, &pool};
  phases.stop();

  phases.start("figures");
  EncoderConfig cfg0;
  cfg0.redundancy_limit = 0;
  const auto r0 =
      benchx::run_figure({topology, workload, cfg0, nullptr, 7, &pool});
  EncoderConfig cfg12;
  cfg12.redundancy_limit = 12;
  const auto r12 =
      benchx::run_figure({topology, workload, cfg12, nullptr, 7, &pool});
  phases.stop();

  // A quick churn slice for the update claim, bulk-loaded through the
  // parallel controller path.
  phases.start("churn");
  Controller controller{topology, EncoderConfig{}};
  std::vector<GroupId> ids;
  {
    const std::size_t slice =
        std::min<std::size_t>(5000, workload.groups().size());
    std::vector<std::vector<Member>> member_lists(slice);
    for (std::size_t gi = 0; gi < slice; ++gi) {
      const auto& g = workload.groups()[gi];
      auto load_rng = util::Rng::stream(scale.seed + 1, gi);
      auto& members = member_lists[gi];
      members.reserve(g.size());
      for (std::size_t i = 0; i < g.size(); ++i) {
        members.push_back(Member{g.member_hosts[i], g.member_vms[i],
                                 static_cast<MemberRole>(load_rng.index(3))});
      }
    }
    std::vector<Controller::GroupSpec> specs(slice);
    for (std::size_t gi = 0; gi < slice; ++gi) {
      specs[gi] = {workload.groups()[gi].tenant, member_lists[gi]};
    }
    ids = controller.create_groups(specs, &pool);
  }
  CountingSink sink{topology};
  controller.set_sink(&sink);
  ChurnSimulator churn{controller, cloud, ids};
  ChurnParams cp;
  cp.events = 20'000;
  const double seconds = churn.run(cp, rng);
  phases.stop();

  TextTable table{{"claim (paper, 1M groups)", "measured here"}};
  table.add_row(
      {"95-99% of groups encoded with p-rules alone",
       TextTable::fmt_pct(static_cast<double>(r0.covered_p_rules_only) /
                          r0.groups_total) +
           " (R=0) .. " +
           TextTable::fmt_pct(static_cast<double>(r12.covered_p_rules_only) /
                              r12.groups_total) +
           " (R=12)"});
  table.add_row(
      {"avg p-rule header 114 B (min 15, max 325)",
       TextTable::fmt(r12.header_bytes.mean(), 0) + " B (min " +
           TextTable::fmt(r12.header_bytes.min(), 0) + ", max " +
           TextTable::fmt(r12.header_bytes.max(), 0) + ")"});
  table.add_row(
      {"leaf s-rules mean 1,100 (max 2,900); spine mean 3,800 (max 11,000)",
       "leaf " + TextTable::fmt(r0.leaf_srules.mean(), 0) + " (max " +
           TextTable::fmt(r0.leaf_srules.max(), 0) + "); spine " +
           TextTable::fmt(r0.spine_srules.mean(), 0) + " (max " +
           TextTable::fmt(r0.spine_srules.max(), 0) + ") at R=0"});
  table.add_row(
      {"traffic overhead within 5% (1500 B) and 34% (64 B) of ideal",
       TextTable::fmt_pct(r12.overhead(1500) - 1.0) + " / " +
           TextTable::fmt_pct(r12.overhead(64) - 1.0)});
  table.add_row(
      {"hypervisor updates avg 21 (max 46) per sec at 1000 events/s",
       TextTable::fmt(sink.hypervisor_rates(seconds).avg, 1) + " (max " +
           TextTable::fmt(sink.hypervisor_rates(seconds).max, 0) + ")"});
  table.add_row({"core switches need zero updates",
                 std::to_string(sink.core_rates(seconds).total) +
                     " core updates observed"});
  table.add_row({"apps unmodified: pub-sub flat rps/CPU, sFlow flat egress",
                 "see fig6_pubsub and fig_sflow_telemetry"});
  table.add_row({"hypervisor encap at line rate regardless of p-rules",
                 "see fig7_hypervisor_tput"});

  std::cout << "Table 1 summary at " << scale.groups << " groups, "
            << topology.num_hosts() << " hosts (paper scale: 1M groups)\n"
            << table.render();
  benchx::emit_run_json("table1_summary", scale, phases);
  return 0;
}
