// Figure 4: clustered placement (P = 12 VMs of a tenant per rack).
// Left: groups covered with non-default p-rules vs R.
// Center: s-rules installed per switch (+ Li et al. baseline).
// Right: traffic overhead vs ideal multicast (+ unicast/overlay baselines).
//
// Scale via env: ELMO_GROUPS (default 50,000; paper: 1,000,000),
// ELMO_PODS (default 12 = 27,648 hosts), ELMO_TENANTS, ELMO_SEED.
#include <iostream>

#include "figlib.h"

int main(int argc, char** argv) {
  using namespace elmo;
  const util::Flags flags{argc, argv};
  const auto scale = benchx::Scale::from_flags(flags);

  const topo::ClosTopology topology{scale.topo_params()};
  util::Rng rng{scale.seed};
  const cloud::Cloud cloud{topology, scale.cloud_params(/*P=*/12), rng};
  cloud::WorkloadParams wp;
  wp.total_groups = scale.groups;
  const cloud::GroupWorkload workload{cloud, wp, rng};

  std::cout << "fabric: " << topology.num_hosts() << " hosts, "
            << topology.num_leaves() << " leaves, " << cloud.tenants().size()
            << " tenants, " << workload.groups().size()
            << " groups (WVE sizes), placement P=12\n";

  EncoderConfig config;  // 325-byte budget, Hmax derived (~30 leaf p-rules)
  benchx::print_figure("Figure 4: P=12 placement, WVE group sizes", topology,
                       workload, config, {0, 6, 12});
  return 0;
}
