// Figure 4: clustered placement (P = 12 VMs of a tenant per rack).
// Left: groups covered with non-default p-rules vs R.
// Center: s-rules installed per switch (+ Li et al. baseline).
// Right: traffic overhead vs ideal multicast (+ unicast/overlay baselines).
//
// Scale via env: ELMO_GROUPS (default 50,000; paper: 1,000,000),
// ELMO_PODS (default 12 = 27,648 hosts), ELMO_TENANTS, ELMO_SEED,
// ELMO_THREADS (worker threads; results are thread-count-invariant).
#include <iostream>

#include "figlib.h"

int main(int argc, char** argv) {
  using namespace elmo;
  const util::Flags flags{argc, argv};
  const auto scale = benchx::Scale::from_flags(flags);
  util::ThreadPool pool{scale.threads};
  benchx::PhaseTimer phases;

  const topo::ClosTopology topology{scale.topo_params()};
  util::Rng rng{scale.seed};
  phases.start("workload");
  const cloud::Cloud cloud{topology, scale.cloud_params(/*P=*/12), rng, &pool};
  cloud::WorkloadParams wp;
  wp.total_groups = scale.groups;
  const cloud::GroupWorkload workload{cloud, wp, rng, &pool};
  phases.stop();

  std::cout << "fabric: " << topology.num_hosts() << " hosts, "
            << topology.num_leaves() << " leaves, " << cloud.tenants().size()
            << " tenants, " << workload.groups().size()
            << " groups (WVE sizes), placement P=12, " << pool.threads()
            << " threads\n";

  EncoderConfig config;  // 325-byte budget, Hmax derived (~30 leaf p-rules)
  config.encoder = scale.encoder_kind;
  benchx::print_figure("Figure 4: P=12 placement, WVE group sizes", topology,
                       workload, config, {0, 6, 12}, &pool, &phases);
  benchx::emit_run_json("fig4_placement_p12", scale, phases);
  return 0;
}
