// Ablation: how Elmo's encoding scales with group size (not a paper figure,
// but the mechanism behind Fig. 4/5: which groups fit p-rules, when s-rules
// kick in, what the header costs).
//
// For controlled group sizes on the full fabric, reports header bytes,
// p-/s-rule counts and traffic overhead, for clustered and dispersed
// members, at R = 0 and R = 12.
#include <iostream>

#include "figlib.h"

namespace {

using namespace elmo;
using util::TextTable;

std::vector<topo::HostId> make_members(const topo::ClosTopology& t,
                                       std::size_t size, bool clustered,
                                       util::Rng& rng) {
  std::vector<topo::HostId> hosts;
  if (clustered) {
    // Fill racks sequentially from a random leaf (P=12-like).
    const auto start_leaf = rng.index(t.num_leaves());
    std::size_t leaf = start_leaf;
    while (hosts.size() < size) {
      for (std::size_t port = 0;
           port < std::min<std::size_t>(12, t.leaf_down_ports()) &&
           hosts.size() < size;
           ++port) {
        hosts.push_back(t.host_at(leaf % t.num_leaves(), port));
      }
      ++leaf;
    }
  } else {
    for (const auto h : rng.sample_indices(t.num_hosts(), size)) {
      hosts.push_back(static_cast<topo::HostId>(h));
    }
  }
  return hosts;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags{argc, argv};
  const auto scale = benchx::Scale::from_flags(flags);
  const topo::ClosTopology topology{scale.topo_params()};
  const TrafficEvaluator evaluator{topology};

  TextTable table{{"members", "placement", "R", "leaves", "pods",
                   "hdr bytes", "p-rules", "s-rules", "overhead 1500B"}};

  for (const bool clustered : {true, false}) {
    for (const std::size_t size : {5u, 20u, 60u, 178u, 700u, 2000u, 5000u}) {
      for (const std::size_t r : {0u, 12u}) {
        util::Rng rng{scale.seed + size};
        EncoderConfig cfg;
        cfg.redundancy_limit = r;
        const GroupEncoder encoder{topology, cfg};
        SRuleSpace space{topology, 1 << 20};

        util::OnlineStats hdr, prules, srules, overhead;
        std::size_t leaves = 0, pods = 0;
        constexpr int kSamples = 20;
        for (int i = 0; i < kSamples; ++i) {
          const auto members = make_members(topology, size, clustered, rng);
          const MulticastTree tree{topology, members};
          const auto enc = encoder.encode(tree, &space);
          hdr.add(static_cast<double>(
              encoder.header_bytes(tree, enc, members[0])));
          prules.add(static_cast<double>(enc.p_rule_count()));
          srules.add(static_cast<double>(enc.s_rule_count()));
          const auto report =
              evaluator.evaluate(tree, enc, members[0], 1500, rng());
          overhead.add(report.overhead_ratio());
          leaves = tree.num_leaves();
          pods = tree.num_pods();
          encoder.release(enc, tree, space);
        }
        table.add_row({std::to_string(size),
                       clustered ? "clustered" : "dispersed",
                       std::to_string(r), std::to_string(leaves),
                       std::to_string(pods), TextTable::fmt(hdr.mean(), 0),
                       TextTable::fmt(prules.mean(), 1),
                       TextTable::fmt(srules.mean(), 1),
                       TextTable::fmt(overhead.mean(), 3)});
      }
    }
  }
  std::cout << "Encoding vs group size on " << topology.num_hosts()
            << " hosts (mean of 20 random groups per row)\n"
            << table.render()
            << "reading: clustered groups fit p-rules at any size; dispersed "
               "groups cross into s-rules once they span more leaves than "
               "the header budget holds, and R=12 pulls them back into the "
               "header at bounded redundancy.\n";
  return 0;
}
