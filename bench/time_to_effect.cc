// Time-to-effect under churn: how long after a membership event does the
// data plane actually behave differently? (DESIGN.md §15)
//
// For each encoder, a paper-scale workload is bulk-installed and then a
// churn loop streams joins and leaves through a traced stream::ControlPlane
// while multicast sends probe the fabric. The fabric's time-to-effect
// watches close the loop end to end:
//
//   join:  ingest -> re-encode -> delta -> p4rt -> install -> FIRST packet
//          delivered to the joiner ("join-to-first-packet"),
//   leave: ingest -> ... -> install, with the LAST stale copy the leaver
//          received in between ("leave-to-last-stale").
//
// Each event runs { ingest; probe send; flush; probe send }: the first send
// lands while the delta is still pending (delivering the leave's stale
// copies), the flush installs it, the second send is the joiner's first
// chance at a delivery. Reported per encoder: closed-watch counts and
// p50/p99/max in microseconds.
//
// Scale via env/flags: ELMO_PODS (default 12 = 27,648 hosts),
// ELMO_TTE_GROUPS (default 256), ELMO_EVENTS (default 4,000), --out=<path>
// records a bench/results-style JSON snapshot (docs/BENCH_SCHEMA.md).
#include <algorithm>
#include <fstream>
#include <iostream>
#include <limits>

#include "elmo/stream.h"
#include "figlib.h"
#include "obs/trace.h"
#include "sim/fabric.h"

namespace {

using namespace elmo;

struct TteSummary {
  std::vector<double> join_us;
  std::vector<double> leave_us;
  std::size_t stale_seen = 0;
  std::size_t open_watches = 0;  // never closed (no probe reached them)
};

double pct(const std::vector<double>& v, double p) {
  return v.empty() ? 0 : util::percentile(v, p);
}
double vmax(const std::vector<double>& v) {
  return v.empty() ? 0 : *std::max_element(v.begin(), v.end());
}

void append_side(std::string& out, const char* key,
                 const std::vector<double>& us, std::size_t stale,
                 bool leave) {
  char buf[224];
  std::snprintf(buf, sizeof(buf),
                "\"%s\": {\"closed\": %zu, \"p50_us\": %.3f, \"p99_us\": "
                "%.3f, \"max_us\": %.3f",
                key, us.size(), pct(us, 50), pct(us, 99), vmax(us));
  out += buf;
  if (leave) {
    std::snprintf(buf, sizeof(buf), ", \"stale_seen\": %zu", stale);
    out += buf;
  }
  out += "}";
}

}  // namespace

int main(int argc, char** argv) {
  using util::TextTable;
  const util::Flags flags{argc, argv};
  auto scale = benchx::Scale::from_flags(flags);
  const auto tte_groups =
      static_cast<std::size_t>(flags.get_int("tte_groups", 256));
  const auto events =
      static_cast<std::size_t>(flags.get_int("events", 4'000));
  const auto out_path = flags.get_string("out", "");

  util::ThreadPool pool{scale.threads};
  benchx::PhaseTimer phases;

  const topo::ClosTopology topology{scale.topo_params()};
  util::Rng rng{scale.seed};
  scale.tenants = std::max<std::size_t>(
      20, static_cast<std::size_t>(3000.0 * tte_groups / 1e6));
  phases.start("workload");
  const cloud::Cloud cloud{topology, scale.cloud_params(/*P=*/1), rng, &pool};
  cloud::WorkloadParams wp;
  wp.total_groups = tte_groups;
  const cloud::GroupWorkload workload{cloud, wp, rng, &pool};

  // One shared membership draw so every encoder churns the same groups.
  // Member 0 of each group is pinned to kBoth: it is the probe sender and
  // never leaves, so every group stays probeable for the whole run.
  const auto groups = workload.groups();
  const std::uint64_t role_seed = rng();
  std::vector<std::vector<Member>> base_members(groups.size());
  pool.parallel_for(0, groups.size(), [&](std::size_t gi) {
    const auto& g = groups[gi];
    auto role_rng = util::Rng::stream(role_seed, gi);
    auto& members = base_members[gi];
    members.reserve(g.size());
    for (std::size_t i = 0; i < g.size(); ++i) {
      members.push_back(Member{g.member_hosts[i], g.member_vms[i],
                               i == 0 ? MemberRole::kBoth
                                      : static_cast<MemberRole>(
                                            role_rng.index(3))});
    }
  });
  phases.stop();

  std::cout << "time_to_effect: " << topology.num_hosts() << " hosts, "
            << tte_groups << " groups, " << events
            << " churn events per encoder\n\n";

  std::string results_json;
  TextTable table{{"encoder", "join closed", "join p50 (us)", "join p99 (us)",
                   "leave closed", "stale seen", "leave p99 (us)"}};

  for (const auto kind : kAllEncoderKinds) {
    const char* name = to_string(kind);
    phases.start(name);

    EncoderConfig config;
    config.encoder = kind;
    config.redundancy_limit = 12;  // paper operating point
    Controller controller{topology, config};
    std::vector<Controller::GroupSpec> specs(groups.size());
    for (std::size_t gi = 0; gi < groups.size(); ++gi) {
      specs[gi] = {groups[gi].tenant, base_members[gi]};
    }
    const auto ids = controller.create_groups(specs, &pool);

    sim::Fabric fabric{topology};
    for (const auto id : ids) fabric.install_group(controller, id);

    obs::Tracer tracer;
    // Flushes are explicit: the probe pattern needs one send in the
    // pending-delta window, so auto-flush must never fire.
    stream::ControlPlane plane{
        controller, fabric,
        stream::ControlPlaneOptions{std::numeric_limits<std::size_t>::max()}};
    for (const auto id : ids) plane.track_group(id);
    plane.set_tracer(&tracer);

    auto members = base_members;  // churned copy, per encoder
    util::Rng churn_rng{scale.seed ^ 0x7e};
    for (std::size_t e = 0; e < events; ++e) {
      const auto gi = churn_rng.index(ids.size());
      const auto id = ids[gi];
      const bool do_leave = (e % 2 == 1) && members[gi].size() > 1;
      if (do_leave) {
        const auto j = 1 + churn_rng.index(members[gi].size() - 1);
        const auto victim = members[gi][j];
        plane.leave(id, victim.host, victim.vm);
        members[gi].erase(members[gi].begin() +
                          static_cast<std::ptrdiff_t>(j));
      } else {
        Member m;
        do {
          m.host = static_cast<topo::HostId>(
              churn_rng.index(topology.num_hosts()));
        } while (m.host == members[gi][0].host);
        m.vm = static_cast<std::uint32_t>(10'000 + e);
        m.role = MemberRole::kReceiver;
        plane.join(id, m);
        members[gi].push_back(m);
      }
      const auto sender = members[gi][0].host;
      const auto address = controller.group(id).address;
      (void)fabric.send(sender, address, std::size_t{64});  // stale window
      plane.flush();
      (void)fabric.send(sender, address, std::size_t{64});  // first chance
      if ((e & 1023) == 1023) tracer.clear();  // bound span memory; watches
                                               // and TTE records are kept
    }
    plane.flush();
    phases.stop();

    TteSummary sum;
    for (const auto& rec : fabric.tte_records()) {
      if (rec.leave) {
        sum.leave_us.push_back(rec.tte_seconds * 1e6);
        if (rec.stale_seen) ++sum.stale_seen;
      } else {
        sum.join_us.push_back(rec.tte_seconds * 1e6);
      }
    }
    sum.open_watches = fabric.open_trace_watches();

    table.add_row({name, std::to_string(sum.join_us.size()),
                   TextTable::fmt(pct(sum.join_us, 50), 1),
                   TextTable::fmt(pct(sum.join_us, 99), 1),
                   std::to_string(sum.leave_us.size()),
                   std::to_string(sum.stale_seen),
                   TextTable::fmt(pct(sum.leave_us, 99), 1)});

    if (!results_json.empty()) results_json += ",\n  ";
    results_json += std::string{"\""} + name + "\": {";
    append_side(results_json, "join", sum.join_us, 0, false);
    results_json += ", ";
    append_side(results_json, "leave", sum.leave_us, sum.stale_seen, true);
    char buf[64];
    std::snprintf(buf, sizeof(buf), ", \"open_watches\": %zu}",
                  sum.open_watches);
    results_json += buf;
  }

  std::cout << table.render();

  if (!out_path.empty()) {
    std::ofstream file{out_path};
    file << "{\"bench\": \"time_to_effect\", \"pods\": " << scale.pods
         << ", \"hosts\": " << topology.num_hosts()
         << ", \"groups\": " << tte_groups << ", \"events\": " << events
         << ", \"seed\": " << scale.seed << ",\n \"results\": {\n  "
         << results_json << "\n}}\n";
  }

  auto json_scale = scale;
  json_scale.groups = tte_groups;
  benchx::emit_run_json("time_to_effect", json_scale, phases);
  return 0;
}
