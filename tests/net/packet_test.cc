#include "net/packet.h"

#include <gtest/gtest.h>

namespace elmo::net {
namespace {

std::vector<std::uint8_t> bytes_of(const Packet& p) {
  const auto view = p.bytes();
  return {view.begin(), view.end()};
}

TEST(Packet, PayloadConstruction) {
  const std::vector<std::uint8_t> payload{1, 2, 3};
  Packet p{payload};
  EXPECT_EQ(p.size(), 3u);
  EXPECT_EQ(bytes_of(p), payload);
}

TEST(Packet, OfSizeIsZeroFilled) {
  const auto p = Packet::of_size(10);
  EXPECT_EQ(p.size(), 10u);
  for (const auto b : p.bytes()) EXPECT_EQ(b, 0);
}

TEST(Packet, PushFrontPrepends) {
  Packet p{std::vector<std::uint8_t>{9, 9}};
  const std::vector<std::uint8_t> header{1, 2, 3};
  p.push_front(header);
  EXPECT_EQ(bytes_of(p), (std::vector<std::uint8_t>{1, 2, 3, 9, 9}));
}

TEST(Packet, PushFrontGrowsHeadroom) {
  Packet p{std::vector<std::uint8_t>{7}, /*headroom=*/2};
  const std::vector<std::uint8_t> big(100, 0x5a);
  p.push_front(big);
  EXPECT_EQ(p.size(), 101u);
  EXPECT_EQ(p.bytes()[0], 0x5a);
  EXPECT_EQ(p.bytes()[100], 7);
}

TEST(Packet, PopFrontConsumes) {
  Packet p{std::vector<std::uint8_t>{1, 2, 3, 4}};
  p.pop_front(2);
  EXPECT_EQ(bytes_of(p), (std::vector<std::uint8_t>{3, 4}));
  EXPECT_THROW(p.pop_front(3), std::out_of_range);
}

TEST(Packet, EraseMiddle) {
  Packet p{std::vector<std::uint8_t>{0, 1, 2, 3, 4, 5}};
  p.erase(2, 3);
  EXPECT_EQ(bytes_of(p), (std::vector<std::uint8_t>{0, 1, 5}));
}

TEST(Packet, EraseBoundsChecked) {
  Packet p{std::vector<std::uint8_t>{0, 1, 2}};
  EXPECT_THROW(p.erase(2, 2), std::out_of_range);
  EXPECT_NO_THROW(p.erase(1, 2));
  EXPECT_EQ(p.size(), 1u);
}

TEST(Packet, PeekDoesNotConsume) {
  Packet p{std::vector<std::uint8_t>{8, 9}};
  const auto view = p.peek(1);
  EXPECT_EQ(view[0], 8);
  EXPECT_EQ(p.size(), 2u);
  EXPECT_THROW((void)p.peek(3), std::out_of_range);
}

TEST(Packet, PushAfterPopReusesHeadroom) {
  Packet p{std::vector<std::uint8_t>{1, 2, 3}};
  p.pop_front(1);
  p.push_front(std::vector<std::uint8_t>{7});
  EXPECT_EQ(bytes_of(p), (std::vector<std::uint8_t>{7, 2, 3}));
}

TEST(Packet, MutableBytesWriteThrough) {
  Packet p{std::vector<std::uint8_t>{0, 0}};
  p.mutable_bytes()[1] = 0xee;
  EXPECT_EQ(p.bytes()[1], 0xee);
}

}  // namespace
}  // namespace elmo::net
