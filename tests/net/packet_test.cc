#include "net/packet.h"

#include <gtest/gtest.h>

namespace elmo::net {
namespace {

std::vector<std::uint8_t> bytes_of(const Packet& p) {
  const auto view = p.bytes();
  return {view.begin(), view.end()};
}

TEST(Packet, PayloadConstruction) {
  const std::vector<std::uint8_t> payload{1, 2, 3};
  Packet p{payload};
  EXPECT_EQ(p.size(), 3u);
  EXPECT_EQ(bytes_of(p), payload);
}

TEST(Packet, OfSizeIsZeroFilled) {
  const auto p = Packet::of_size(10);
  EXPECT_EQ(p.size(), 10u);
  for (const auto b : p.bytes()) EXPECT_EQ(b, 0);
}

TEST(Packet, PushFrontPrepends) {
  Packet p{std::vector<std::uint8_t>{9, 9}};
  const std::vector<std::uint8_t> header{1, 2, 3};
  p.push_front(header);
  EXPECT_EQ(bytes_of(p), (std::vector<std::uint8_t>{1, 2, 3, 9, 9}));
}

TEST(Packet, PushFrontGrowsHeadroom) {
  Packet p{std::vector<std::uint8_t>{7}, /*headroom=*/2};
  const std::vector<std::uint8_t> big(100, 0x5a);
  p.push_front(big);
  EXPECT_EQ(p.size(), 101u);
  EXPECT_EQ(p.bytes()[0], 0x5a);
  EXPECT_EQ(p.bytes()[100], 7);
}

TEST(Packet, PopFrontConsumes) {
  Packet p{std::vector<std::uint8_t>{1, 2, 3, 4}};
  p.pop_front(2);
  EXPECT_EQ(bytes_of(p), (std::vector<std::uint8_t>{3, 4}));
  EXPECT_THROW(p.pop_front(3), std::out_of_range);
}

TEST(Packet, EraseMiddle) {
  Packet p{std::vector<std::uint8_t>{0, 1, 2, 3, 4, 5}};
  p.erase(2, 3);
  EXPECT_EQ(bytes_of(p), (std::vector<std::uint8_t>{0, 1, 5}));
}

TEST(Packet, EraseBoundsChecked) {
  Packet p{std::vector<std::uint8_t>{0, 1, 2}};
  EXPECT_THROW(p.erase(2, 2), std::out_of_range);
  EXPECT_NO_THROW(p.erase(1, 2));
  EXPECT_EQ(p.size(), 1u);
}

TEST(Packet, PeekDoesNotConsume) {
  Packet p{std::vector<std::uint8_t>{8, 9}};
  const auto view = p.peek(1);
  EXPECT_EQ(view[0], 8);
  EXPECT_EQ(p.size(), 2u);
  EXPECT_THROW((void)p.peek(3), std::out_of_range);
}

TEST(Packet, PushAfterPopReusesHeadroom) {
  Packet p{std::vector<std::uint8_t>{1, 2, 3}};
  p.pop_front(1);
  p.push_front(std::vector<std::uint8_t>{7});
  EXPECT_EQ(bytes_of(p), (std::vector<std::uint8_t>{7, 2, 3}));
}

TEST(Packet, MutableBytesWriteThrough) {
  Packet p{std::vector<std::uint8_t>{0, 0}};
  p.mutable_bytes()[1] = 0xee;
  EXPECT_EQ(p.bytes()[1], 0xee);
}

TEST(Packet, EraseOverflowProofBounds) {
  // offset + count can overflow size_t; the check must not wrap around.
  Packet p{std::vector<std::uint8_t>{0, 1, 2, 3}};
  EXPECT_THROW(p.erase(2, static_cast<std::size_t>(-1)), std::out_of_range);
  EXPECT_THROW(p.erase(5, 0), std::out_of_range);
  EXPECT_NO_THROW(p.erase(4, 0));  // no-op at the end is legal
  EXPECT_EQ(p.size(), 4u);
}

TEST(Packet, PushFrontAfterHeadroomExhaustedRepeatedly) {
  Packet p{std::vector<std::uint8_t>{42}, /*headroom=*/0};
  for (int i = 0; i < 8; ++i) {
    p.push_front(std::vector<std::uint8_t>(64, static_cast<std::uint8_t>(i)));
  }
  EXPECT_EQ(p.size(), 1u + 8 * 64);
  EXPECT_EQ(p.bytes().front(), 7);
  EXPECT_EQ(p.bytes().back(), 42);
}

TEST(Packet, WithSizeLeavesHeadroomForPrepends) {
  auto p = Packet::with_size(4, /*headroom=*/16);
  EXPECT_EQ(p.size(), 4u);
  for (const auto b : p.bytes()) EXPECT_EQ(b, 0);
  p.mutable_bytes()[0] = 9;
  p.push_front(std::vector<std::uint8_t>{1, 2});
  EXPECT_EQ(bytes_of(p), (std::vector<std::uint8_t>{1, 2, 9, 0, 0, 0}));
}

TEST(Packet, CopiesAreCounted) {
  Packet p{std::vector<std::uint8_t>(100, 0x11)};
  reset_copy_stats();
  Packet q = p;          // copy construction
  Packet r;
  r = q;                 // copy assignment
  EXPECT_EQ(copy_stats().copies, 2u);
  EXPECT_EQ(copy_stats().bytes, 200u);
  Packet moved = std::move(q);  // moves are free
  EXPECT_EQ(copy_stats().copies, 2u);
  EXPECT_EQ(moved.size(), 100u);
}

TEST(Packet, ReleaseHandsOverStorageAndEmptiesThePacket) {
  Packet p{std::vector<std::uint8_t>{5, 6, 7}, /*headroom=*/8};
  auto released = std::move(p).release();
  EXPECT_EQ(released.head, 8u);
  ASSERT_EQ(released.storage.size(), 11u);
  EXPECT_EQ(released.storage[8], 5);
  EXPECT_EQ(p.size(), 0u);
}

}  // namespace
}  // namespace elmo::net
