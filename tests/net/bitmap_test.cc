#include "net/bitmap.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace elmo::net {
namespace {

TEST(PortBitmap, SetTestClear) {
  PortBitmap b{48};
  EXPECT_FALSE(b.any());
  b.set(0);
  b.set(47);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(47));
  EXPECT_FALSE(b.test(1));
  b.set(0, false);
  EXPECT_FALSE(b.test(0));
  b.clear();
  EXPECT_TRUE(b.none());
}

TEST(PortBitmap, OutOfRangeThrows) {
  PortBitmap b{8};
  EXPECT_THROW(b.set(8), std::out_of_range);
  EXPECT_THROW((void)b.test(100), std::out_of_range);
}

TEST(PortBitmap, MultiWordDomains) {
  PortBitmap b{576};
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(575);
  EXPECT_EQ(b.popcount(), 4u);
  EXPECT_TRUE(b.test(575));
  EXPECT_FALSE(b.test(574));
}

TEST(PortBitmap, OrAndOperations) {
  PortBitmap a{10};
  a.set(1);
  a.set(3);
  PortBitmap b{10};
  b.set(3);
  b.set(5);
  const auto u = a | b;
  EXPECT_EQ(u.popcount(), 3u);
  EXPECT_TRUE(u.test(1) && u.test(3) && u.test(5));
  const auto i = a & b;
  EXPECT_EQ(i.popcount(), 1u);
  EXPECT_TRUE(i.test(3));
}

TEST(PortBitmap, DomainMismatchThrows) {
  PortBitmap a{8};
  PortBitmap b{9};
  EXPECT_THROW(a |= b, std::invalid_argument);
  EXPECT_THROW((void)a.hamming_distance(b), std::invalid_argument);
}

TEST(PortBitmap, HammingDistance) {
  PortBitmap a{16};
  a.set(1);
  a.set(2);
  PortBitmap b{16};
  b.set(2);
  b.set(9);
  b.set(10);
  EXPECT_EQ(a.hamming_distance(b), 3u);
  EXPECT_EQ(a.hamming_distance(a), 0u);
}

TEST(PortBitmap, ExtraBitsIn) {
  PortBitmap mine{8};
  mine.set(1);
  PortBitmap shared{8};
  shared.set(1);
  shared.set(2);
  shared.set(3);
  EXPECT_EQ(mine.extra_bits_in(shared), 2u);
  EXPECT_EQ(shared.extra_bits_in(mine), 0u);
}

TEST(PortBitmap, SubsetRelation) {
  PortBitmap small{8};
  small.set(2);
  PortBitmap big{8};
  big.set(2);
  big.set(5);
  EXPECT_TRUE(small.is_subset_of(big));
  EXPECT_FALSE(big.is_subset_of(small));
  EXPECT_TRUE(small.is_subset_of(small));
}

TEST(PortBitmap, ForEachSetAscending) {
  PortBitmap b{128};
  for (const auto p : {5u, 64u, 66u, 127u}) b.set(p);
  std::vector<std::size_t> seen;
  b.for_each_set([&](std::size_t p) { seen.push_back(p); });
  EXPECT_EQ(seen, (std::vector<std::size_t>{5, 64, 66, 127}));
  EXPECT_EQ(b.set_ports(), seen);
}

TEST(PortBitmap, ToStringMsbIsPortZero) {
  PortBitmap b{4};
  b.set(0);
  b.set(2);
  EXPECT_EQ(b.to_string(), "1010");
}

TEST(PortBitmap, EqualityAndHash) {
  PortBitmap a{32};
  a.set(7);
  PortBitmap b{32};
  b.set(7);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  b.set(8);
  EXPECT_FALSE(a == b);
  // Same bits but different domain size -> different bitmaps.
  PortBitmap c{33};
  c.set(7);
  EXPECT_FALSE(a == c);
}

TEST(PortBitmap, HashRarelyCollidesOnRandomBitmaps) {
  util::Rng rng{99};
  std::vector<PortBitmap> maps;
  for (int i = 0; i < 500; ++i) {
    PortBitmap b{48};
    for (int j = 0; j < 6; ++j) b.set(rng.index(48));
    maps.push_back(std::move(b));
  }
  int collisions = 0;
  for (std::size_t i = 0; i < maps.size(); ++i) {
    for (std::size_t j = i + 1; j < maps.size(); ++j) {
      if (maps[i].hash() == maps[j].hash() && !(maps[i] == maps[j])) {
        ++collisions;
      }
    }
  }
  EXPECT_EQ(collisions, 0);
}

}  // namespace
}  // namespace elmo::net
