#include "net/packet_view.h"

#include <gtest/gtest.h>

#include <numeric>

namespace elmo::net {
namespace {

std::vector<std::uint8_t> iota_bytes(std::size_t n) {
  std::vector<std::uint8_t> v(n);
  std::iota(v.begin(), v.end(), std::uint8_t{0});
  return v;
}

std::vector<std::uint8_t> gather(const PacketView& v) {
  std::vector<std::uint8_t> out(v.size());
  v.copy_to(out);
  return out;
}

TEST(PacketView, AdoptsPacketWithoutCopying) {
  Packet p{iota_bytes(16)};
  reset_copy_stats();
  PacketView view{std::move(p)};
  EXPECT_EQ(copy_stats().copies, 0u);
  EXPECT_EQ(view.size(), 16u);
  EXPECT_TRUE(view.contiguous());
  EXPECT_EQ(gather(view), iota_bytes(16));
  EXPECT_EQ(view.bytes()[3], 3);
}

TEST(PacketView, CopiesAreRefcountBumps) {
  PacketView a{Packet{iota_bytes(8)}};
  reset_copy_stats();
  PacketView b = a;
  PacketView c = b;
  EXPECT_EQ(copy_stats().copies, 0u);
  EXPECT_EQ(a.use_count(), 3);
  EXPECT_EQ(gather(c), iota_bytes(8));
}

TEST(PacketView, PopFrontIsCursorArithmetic) {
  PacketView v{Packet{iota_bytes(10)}};
  reset_copy_stats();
  v.pop_front(4);
  EXPECT_EQ(copy_stats().copies, 0u);
  EXPECT_EQ(v.size(), 6u);
  EXPECT_EQ(v.bytes()[0], 4);
  EXPECT_THROW(v.pop_front(7), std::out_of_range);
}

TEST(PacketView, EraseMakesHoleWithoutCopying) {
  PacketView v{Packet{iota_bytes(10)}};
  reset_copy_stats();
  v.erase(3, 4);  // logical bytes 3..6 disappear
  EXPECT_EQ(copy_stats().copies, 0u);
  EXPECT_EQ(v.size(), 6u);
  EXPECT_FALSE(v.contiguous());
  EXPECT_EQ(gather(v), (std::vector<std::uint8_t>{0, 1, 2, 7, 8, 9}));
  EXPECT_EQ(v.at(2), 2);
  EXPECT_EQ(v.at(3), 7);
}

TEST(PacketView, RepeatedEraseAtSameOffsetExtendsHole) {
  // The pipeline's hot pattern: every hop pops more bytes at the same
  // logical offset (right behind the outer encapsulation).
  PacketView v{Packet{iota_bytes(20)}};
  reset_copy_stats();
  v.erase(5, 3);
  v.erase(5, 4);  // extends the same hole
  EXPECT_EQ(copy_stats().copies, 0u);
  EXPECT_EQ(v.size(), 13u);
  std::vector<std::uint8_t> expect{0, 1, 2, 3, 4, 12, 13, 14, 15, 16, 17, 18, 19};
  EXPECT_EQ(gather(v), expect);
}

TEST(PacketView, SharedBufferUntouchedAfterMutatingHop) {
  // CoW: a second disjoint hole forces a private copy; the sibling view
  // sharing the original buffer must observe unchanged bytes.
  PacketView original{Packet{iota_bytes(12)}};
  PacketView sibling = original;
  original.erase(2, 2);
  reset_copy_stats();
  original.erase(7, 2);  // disjoint from the hole at 2 -> CoW
  EXPECT_GT(copy_stats().copies, 0u);
  EXPECT_EQ(original.size(), 8u);
  EXPECT_EQ(sibling.size(), 12u);
  EXPECT_EQ(gather(sibling), iota_bytes(12));
  EXPECT_EQ(sibling.use_count(), 1);  // original detached onto its own buffer
}

TEST(PacketView, FrontAndFromRespectTheHole) {
  PacketView v{Packet{iota_bytes(10)}};
  v.erase(4, 3);
  EXPECT_EQ(v.front(4).back(), 3);
  EXPECT_EQ(v.from(4).front(), 7);
  EXPECT_EQ(v.from(4).size(), 3u);
  EXPECT_THROW((void)v.front(5), std::logic_error);
  EXPECT_THROW((void)v.from(3), std::logic_error);
  EXPECT_THROW((void)v.bytes(), std::logic_error);
}

TEST(PacketView, PopThroughHoleCollapsesIt) {
  PacketView v{Packet{iota_bytes(10)}};
  v.erase(2, 3);  // logical: 0 1 5 6 7 8 9
  v.pop_front(4); // consume 0 1 5 6
  EXPECT_TRUE(v.contiguous());
  EXPECT_EQ(gather(v), (std::vector<std::uint8_t>{7, 8, 9}));
}

TEST(PacketView, TrailingEraseTruncates) {
  PacketView v{Packet{iota_bytes(10)}};
  v.erase(6, 4);
  EXPECT_TRUE(v.contiguous());
  EXPECT_EQ(v.size(), 6u);
  // Truncation past an existing hole also stays cursor-only.
  PacketView w{Packet{iota_bytes(10)}};
  w.erase(2, 2);
  w.erase(5, 3);  // logical tail [5,8) of {0,1,4,5,6,7,8,9}
  EXPECT_EQ(gather(w), (std::vector<std::uint8_t>{0, 1, 4, 5, 6}));
}

TEST(PacketView, MaterializeGathersAndCounts) {
  PacketView v{Packet{iota_bytes(10)}};
  v.erase(3, 4);
  reset_copy_stats();
  Packet flat = v.materialize();
  EXPECT_EQ(copy_stats().copies, 1u);
  EXPECT_EQ(copy_stats().bytes, 6u);
  EXPECT_EQ(flat.size(), 6u);
  const auto bytes = flat.bytes();
  EXPECT_EQ(bytes[2], 2);
  EXPECT_EQ(bytes[3], 7);
}

TEST(PacketView, BoundsChecked) {
  PacketView v{Packet{iota_bytes(5)}};
  EXPECT_THROW(v.erase(3, 3), std::out_of_range);
  EXPECT_THROW(v.erase(6, 0), std::out_of_range);
  // A count large enough to overflow offset+count must still throw.
  EXPECT_THROW(v.erase(1, static_cast<std::size_t>(-1)), std::out_of_range);
  EXPECT_THROW((void)v.at(5), std::out_of_range);
  EXPECT_NO_THROW(v.erase(1, 4));
  EXPECT_EQ(v.size(), 1u);
}

TEST(PacketView, DefaultViewIsEmpty) {
  PacketView v;
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.contiguous());
  EXPECT_TRUE(v.bytes().empty());
}

}  // namespace
}  // namespace elmo::net
