#include "net/bitio.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace elmo::net {
namespace {

TEST(BitWriter, MsbFirstLayout) {
  BitWriter out;
  out.write(0b101, 3);
  out.write(0b1, 1);
  out.write(0b0000, 4);
  const auto bytes = out.take();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0b10110000);
}

TEST(BitWriter, PadsFinalByteWithZeros) {
  BitWriter out;
  out.write(0b11, 2);
  const auto bytes = out.take();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0b11000000);
}

TEST(BitWriter, AlignToByte) {
  BitWriter out;
  out.write(1, 1);
  out.align_to_byte();
  EXPECT_EQ(out.bit_count(), 8u);
  out.write(0xff, 8);
  const auto bytes = out.take();
  ASSERT_EQ(bytes.size(), 2u);
  EXPECT_EQ(bytes[0], 0x80);
  EXPECT_EQ(bytes[1], 0xff);
}

TEST(BitWriter, RejectsOver64Bits) {
  BitWriter out;
  EXPECT_THROW(out.write(0, 65), std::invalid_argument);
}

TEST(BitReader, ReadsBackWriterOutput) {
  BitWriter out;
  out.write(0x2a, 7);
  out.write_bool(true);
  out.write(0xdeadbeef, 32);
  const auto bytes = out.take();

  BitReader in{bytes};
  EXPECT_EQ(in.read(7), 0x2au);
  EXPECT_TRUE(in.read_bool());
  EXPECT_EQ(in.read(32), 0xdeadbeefu);
}

TEST(BitReader, ThrowsPastEnd) {
  const std::vector<std::uint8_t> one{0xff};
  BitReader in{one};
  in.read(8);
  EXPECT_THROW(in.read(1), std::out_of_range);
}

TEST(BitReader, PositionTracking) {
  const std::vector<std::uint8_t> data{0x00, 0x00, 0x00};
  BitReader in{data};
  in.read(3);
  EXPECT_EQ(in.bit_position(), 3u);
  EXPECT_EQ(in.byte_position(), 1u);  // rounds up
  in.align_to_byte();
  EXPECT_EQ(in.bit_position(), 8u);
  EXPECT_EQ(in.bits_remaining(), 16u);
}

// Property: random field sequences round-trip for all widths.
class BitIoRoundTrip : public ::testing::TestWithParam<unsigned> {};

TEST_P(BitIoRoundTrip, RandomValuesSurvive) {
  const unsigned width = GetParam();
  util::Rng rng{width * 7919u};
  std::vector<std::uint64_t> values;
  BitWriter out;
  for (int i = 0; i < 300; ++i) {
    const std::uint64_t mask =
        width == 64 ? ~0ULL : ((1ULL << width) - 1);
    const auto v = rng() & mask;
    values.push_back(v);
    out.write(v, width);
  }
  const auto bytes = out.take();
  BitReader in{bytes};
  for (const auto v : values) {
    EXPECT_EQ(in.read(width), v);
  }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, BitIoRoundTrip,
                         ::testing::Values(1u, 2u, 3u, 5u, 7u, 8u, 11u, 13u,
                                           16u, 24u, 31u, 32u, 48u, 63u, 64u));

TEST(BitsFor, KnownValues) {
  EXPECT_EQ(bits_for(1), 1u);
  EXPECT_EQ(bits_for(2), 1u);
  EXPECT_EQ(bits_for(3), 2u);
  EXPECT_EQ(bits_for(4), 2u);
  EXPECT_EQ(bits_for(5), 3u);
  EXPECT_EQ(bits_for(12), 4u);
  EXPECT_EQ(bits_for(576), 10u);
  EXPECT_EQ(bits_for(1024), 10u);
  EXPECT_EQ(bits_for(1025), 11u);
}

}  // namespace
}  // namespace elmo::net
