#include "net/headers.h"

#include <gtest/gtest.h>

#include <set>

namespace elmo::net {
namespace {

TEST(Ethernet, RoundTrip) {
  EthernetHeader h;
  h.dst = {1, 2, 3, 4, 5, 6};
  h.src = {7, 8, 9, 10, 11, 12};
  h.ether_type = kEtherTypeIpv4;
  const auto bytes = h.serialize();
  ASSERT_EQ(bytes.size(), EthernetHeader::kSize);
  const auto parsed = EthernetHeader::parse(bytes);
  EXPECT_EQ(parsed.dst, h.dst);
  EXPECT_EQ(parsed.src, h.src);
  EXPECT_EQ(parsed.ether_type, h.ether_type);
}

TEST(Ethernet, TruncatedThrows) {
  const std::vector<std::uint8_t> runt(13, 0);
  EXPECT_THROW(EthernetHeader::parse(runt), std::out_of_range);
}

TEST(Ipv4Address, StringConversion) {
  const auto a = Ipv4Address::from_string("239.1.2.3");
  EXPECT_EQ(a.value, 0xef010203u);
  EXPECT_EQ(a.to_string(), "239.1.2.3");
  EXPECT_THROW(Ipv4Address::from_string("1.2.3.999"), std::invalid_argument);
}

TEST(Ipv4Address, MulticastRange) {
  EXPECT_TRUE(Ipv4Address::from_string("224.0.0.1").is_multicast());
  EXPECT_TRUE(Ipv4Address::from_string("239.255.255.255").is_multicast());
  EXPECT_FALSE(Ipv4Address::from_string("223.255.255.255").is_multicast());
  EXPECT_FALSE(Ipv4Address::from_string("10.0.0.1").is_multicast());
}

TEST(Ipv4Address, GroupAddressesAreMulticastAndUnique) {
  std::set<std::uint32_t> seen;
  for (std::uint32_t g = 0; g < 100'000; g += 97) {
    const auto a = Ipv4Address::multicast_group(g);
    EXPECT_TRUE(a.is_multicast()) << a.to_string();
    EXPECT_TRUE(seen.insert(a.value).second) << "collision at " << g;
  }
  // Distinct across the 16M-boundary roll-over too.
  EXPECT_NE(Ipv4Address::multicast_group(0).value,
            Ipv4Address::multicast_group(1u << 24).value);
}

TEST(Ipv4, RoundTripAndChecksum) {
  Ipv4Header h;
  h.src = Ipv4Address::from_string("10.0.0.1");
  h.dst = Ipv4Address::from_string("239.0.0.5");
  h.total_length = 1234;
  h.ttl = 17;
  const auto bytes = h.serialize();
  ASSERT_EQ(bytes.size(), Ipv4Header::kSize);
  // Checksum over the serialized header (including the stored checksum)
  // must be zero-sum, i.e. recomputing yields 0.
  EXPECT_EQ(Ipv4Header::checksum(bytes), 0);
  const auto parsed = Ipv4Header::parse(bytes);
  EXPECT_EQ(parsed.src, h.src);
  EXPECT_EQ(parsed.dst, h.dst);
  EXPECT_EQ(parsed.total_length, 1234);
  EXPECT_EQ(parsed.ttl, 17);
  EXPECT_EQ(parsed.protocol, kIpProtoUdp);
}

TEST(Ipv4, RejectsNonIpv4) {
  std::vector<std::uint8_t> bytes(20, 0);
  bytes[0] = 0x65;  // version 6
  EXPECT_THROW(Ipv4Header::parse(bytes), std::invalid_argument);
}

TEST(Udp, RoundTrip) {
  UdpHeader h;
  h.src_port = 49152;
  h.dst_port = kVxlanUdpPort;
  h.length = 77;
  const auto bytes = h.serialize();
  ASSERT_EQ(bytes.size(), UdpHeader::kSize);
  const auto parsed = UdpHeader::parse(bytes);
  EXPECT_EQ(parsed.src_port, h.src_port);
  EXPECT_EQ(parsed.dst_port, kVxlanUdpPort);
  EXPECT_EQ(parsed.length, 77);
}

TEST(Vxlan, RoundTripVni) {
  VxlanHeader h;
  h.vni = 0x00abcdef;
  const auto bytes = h.serialize();
  ASSERT_EQ(bytes.size(), VxlanHeader::kSize);
  EXPECT_EQ(VxlanHeader::parse(bytes).vni, 0x00abcdefu);
}

TEST(Vxlan, RejectsMissingIFlag) {
  std::vector<std::uint8_t> bytes(8, 0);
  EXPECT_THROW(VxlanHeader::parse(bytes), std::invalid_argument);
}

TEST(OuterHeaders, TotalSizeIsFifty) {
  EXPECT_EQ(kOuterHeaderBytes, 50u);
}

}  // namespace
}  // namespace elmo::net
