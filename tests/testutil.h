// Shared helpers for the test suite.
#pragma once

#include <algorithm>
#include <vector>

#include "topology/clos.h"
#include "util/rng.h"

namespace elmo::test {

// `n` distinct hosts drawn uniformly from the fabric.
inline std::vector<topo::HostId> random_hosts(
    const topo::ClosTopology& topology, std::size_t n, util::Rng& rng) {
  std::vector<topo::HostId> hosts;
  hosts.reserve(n);
  for (const auto index : rng.sample_indices(topology.num_hosts(), n)) {
    hosts.push_back(static_cast<topo::HostId>(index));
  }
  return hosts;
}

}  // namespace elmo::test
