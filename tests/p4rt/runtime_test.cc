#include "p4rt/runtime.h"

#include <gtest/gtest.h>

#include "testutil.h"
#include "util/rng.h"

namespace elmo::p4rt {
namespace {

struct P4rtFixture : ::testing::Test {
  P4rtFixture()
      : topology{topo::ClosParams::small_test()},
        controller{topology, make_config()},
        fabric{topology} {}

  static EncoderConfig make_config() {
    EncoderConfig cfg;
    cfg.hmax_leaf_override = 2;  // force s-rules so every kind appears
    return cfg;
  }

  elmo::GroupId make_group(std::size_t size, std::uint64_t seed) {
    util::Rng rng{seed};
    const auto hosts = test::random_hosts(topology, size, rng);
    std::vector<Member> members;
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      members.push_back(Member{hosts[i], static_cast<std::uint32_t>(i),
                               MemberRole::kBoth});
    }
    return controller.create_group(0, members);
  }

  topo::ClosTopology topology;
  Controller controller;
  sim::Fabric fabric;
};

TEST_F(P4rtFixture, CompileCoversEveryRule) {
  const auto id = make_group(16, 5);
  const auto& g = controller.group(id);
  const auto updates = compile_install(controller, id);

  std::size_t flows = 0, srules = 0;
  for (const auto& u : updates) {
    if (u.kind == UpdateKind::kHypervisorFlowAdd) ++flows;
    if (u.kind == UpdateKind::kSRuleAdd) ++srules;
  }
  EXPECT_EQ(flows, g.members.size());
  EXPECT_EQ(srules, g.encoding.leaf.s_rules.size() +
                        g.encoding.spine.s_rules.size() *
                            topology.params().spines_per_pod);
}

TEST_F(P4rtFixture, WireRoundTripIsExact) {
  const auto id = make_group(16, 7);
  const auto updates = compile_install(controller, id);
  const auto wire = encode(updates);
  const auto decoded = decode(wire);
  ASSERT_EQ(decoded.size(), updates.size());
  for (std::size_t i = 0; i < updates.size(); ++i) {
    EXPECT_EQ(decoded[i], updates[i]) << "update " << i;
  }
}

TEST_F(P4rtFixture, ChannelInstallEqualsDirectInstall) {
  const auto id = make_group(14, 9);
  const auto& g = controller.group(id);

  // Install exclusively through the wire protocol.
  const auto wire_bytes = install_via_channel(controller, id, fabric);
  EXPECT_GT(wire_bytes, 0u);

  // A second fabric installed directly must behave identically.
  sim::Fabric direct{topology};
  direct.install_group(controller, id);

  for (const auto& m : g.members) {
    fabric.reset_link_stats();
    direct.reset_link_stats();
    const auto via_channel = fabric.send(m.host, g.address, 256);
    const auto via_direct = direct.send(m.host, g.address, 256);
    EXPECT_EQ(via_channel.total_wire_bytes, via_direct.total_wire_bytes);
    EXPECT_EQ(via_channel.host_copies, via_direct.host_copies);
    EXPECT_EQ(via_channel.vm_deliveries, via_direct.vm_deliveries);
  }
}

TEST_F(P4rtFixture, UninstallRemovesEverything) {
  const auto id = make_group(12, 11);
  const auto& g = controller.group(id);
  install_via_channel(controller, id, fabric);
  apply_updates(fabric, decode(encode(compile_uninstall(controller, id))));

  const auto result = fabric.send(g.members[0].host, g.address, 64);
  EXPECT_TRUE(result.host_copies.empty());
  for (topo::LeafId l = 0; l < topology.num_leaves(); ++l) {
    EXPECT_EQ(fabric.leaf(l).srule_count(), 0u);
  }
}

TEST_F(P4rtFixture, DecodeRejectsMalformedStreams) {
  const auto id = make_group(8, 13);
  auto wire = encode(compile_install(controller, id));

  {
    auto bad = wire;
    bad[0] ^= 0xff;
    EXPECT_THROW(decode(bad), std::invalid_argument);
  }
  {
    auto bad = wire;
    bad.resize(bad.size() - 3);
    EXPECT_THROW(decode(bad), std::invalid_argument);
  }
  {
    auto bad = wire;
    bad.push_back(0x00);
    EXPECT_THROW(decode(bad), std::invalid_argument);
  }
  {
    auto bad = wire;
    bad[8] = 99;  // first message kind
    EXPECT_THROW(decode(bad), std::invalid_argument);
  }
}

TEST(P4rtCodec, EmptyBatch) {
  const auto wire = encode({});
  EXPECT_EQ(wire.size(), 8u);  // magic + count
  EXPECT_TRUE(decode(wire).empty());
}

}  // namespace
}  // namespace elmo::p4rt
