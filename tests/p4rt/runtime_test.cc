#include "p4rt/runtime.h"

#include <gtest/gtest.h>

#include <set>

#include "testutil.h"
#include "util/rng.h"

namespace elmo::p4rt {
namespace {

struct P4rtFixture : ::testing::Test {
  P4rtFixture()
      : topology{topo::ClosParams::small_test()},
        controller{topology, make_config()},
        fabric{topology} {}

  static EncoderConfig make_config() {
    EncoderConfig cfg;
    cfg.hmax_leaf_override = 2;  // force s-rules so every kind appears
    return cfg;
  }

  elmo::GroupId make_group(std::size_t size, std::uint64_t seed) {
    util::Rng rng{seed};
    const auto hosts = test::random_hosts(topology, size, rng);
    std::vector<Member> members;
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      members.push_back(Member{hosts[i], static_cast<std::uint32_t>(i),
                               MemberRole::kBoth});
    }
    return controller.create_group(0, members);
  }

  topo::ClosTopology topology;
  Controller controller;
  sim::Fabric fabric;
};

TEST_F(P4rtFixture, CompileCoversEveryRule) {
  const auto id = make_group(16, 5);
  const auto& g = controller.group(id);
  const auto updates = compile_install(controller, id);

  // Flows are merged per host, so the update count tracks distinct member
  // hosts, not members.
  std::set<topo::HostId> hosts;
  std::size_t member_vms = 0;
  for (const auto& m : g.members) {
    hosts.insert(m.host);
    if (can_receive(m.role)) ++member_vms;
  }
  std::size_t flows = 0, srules = 0, flow_vms = 0;
  for (const auto& u : updates) {
    if (u.kind == UpdateKind::kHypervisorFlowAdd) {
      ++flows;
      flow_vms += u.local_vms.size();
    }
    if (u.kind == UpdateKind::kSRuleAdd) ++srules;
  }
  EXPECT_EQ(flows, hosts.size());
  EXPECT_EQ(flow_vms, member_vms);
  EXPECT_EQ(srules, g.encoding.leaf.s_rules.size() +
                        g.encoding.spine.s_rules.size() *
                            topology.params().spines_per_pod);
}

TEST_F(P4rtFixture, ColocatedMembersShareOneFlowUpdate) {
  // Two members of the same group on the same host must not clobber each
  // other when the batch is applied through the channel.
  const auto host = topology.host_at(0, 0);
  const auto remote = topology.host_at(1, 0);
  std::vector<Member> members{Member{host, 1, MemberRole::kBoth},
                              Member{host, 2, MemberRole::kBoth},
                              Member{remote, 3, MemberRole::kBoth}};
  const auto id = controller.create_group(0, members);

  const auto updates = compile_install(controller, id);
  std::size_t flow_adds = 0;
  for (const auto& u : updates) {
    if (u.kind == UpdateKind::kHypervisorFlowAdd) ++flow_adds;
  }
  EXPECT_EQ(flow_adds, 2u);  // one per distinct host, not one per member

  apply_updates(fabric, decode(encode(updates)));
  sim::Fabric direct{topology};
  direct.install_group(controller, id);

  // A packet from the remote host must reach BOTH co-located VMs; with
  // per-member updates the second FLOW_ADD used to clobber the first.
  const auto& g = controller.group(id);
  const auto via_channel = fabric.send(remote, g.address, 128);
  const auto via_direct = direct.send(remote, g.address, 128);
  EXPECT_EQ(via_channel.vm_deliveries, via_direct.vm_deliveries);
  EXPECT_EQ(via_channel.host_copies, via_direct.host_copies);
  EXPECT_EQ(via_channel.vm_deliveries, 2u);
}

TEST_F(P4rtFixture, WireRoundTripIsExact) {
  const auto id = make_group(16, 7);
  const auto updates = compile_install(controller, id);
  const auto wire = encode(updates);
  const auto decoded = decode(wire);
  ASSERT_EQ(decoded.size(), updates.size());
  for (std::size_t i = 0; i < updates.size(); ++i) {
    EXPECT_EQ(decoded[i], updates[i]) << "update " << i;
  }
}

TEST_F(P4rtFixture, ChannelInstallEqualsDirectInstall) {
  const auto id = make_group(14, 9);
  const auto& g = controller.group(id);

  // Install exclusively through the wire protocol.
  const auto wire_bytes = install_via_channel(controller, id, fabric);
  EXPECT_GT(wire_bytes, 0u);

  // A second fabric installed directly must behave identically.
  sim::Fabric direct{topology};
  direct.install_group(controller, id);

  for (const auto& m : g.members) {
    fabric.reset_link_stats();
    direct.reset_link_stats();
    const auto via_channel = fabric.send(m.host, g.address, 256);
    const auto via_direct = direct.send(m.host, g.address, 256);
    EXPECT_EQ(via_channel.total_wire_bytes, via_direct.total_wire_bytes);
    EXPECT_EQ(via_channel.host_copies, via_direct.host_copies);
    EXPECT_EQ(via_channel.vm_deliveries, via_direct.vm_deliveries);
  }
}

TEST_F(P4rtFixture, UninstallRemovesEverything) {
  const auto id = make_group(12, 11);
  const auto& g = controller.group(id);
  install_via_channel(controller, id, fabric);
  apply_updates(fabric, decode(encode(compile_uninstall(controller, id))));

  const auto result = fabric.send(g.members[0].host, g.address, 64);
  EXPECT_TRUE(result.host_copies.empty());
  for (topo::LeafId l = 0; l < topology.num_leaves(); ++l) {
    EXPECT_EQ(fabric.leaf(l).srule_count(), 0u);
  }
}

TEST_F(P4rtFixture, DecodeRejectsMalformedStreams) {
  const auto id = make_group(8, 13);
  auto wire = encode(compile_install(controller, id));

  {
    auto bad = wire;
    bad[0] ^= 0xff;
    EXPECT_THROW(decode(bad), std::invalid_argument);
  }
  {
    auto bad = wire;
    bad.resize(bad.size() - 3);
    EXPECT_THROW(decode(bad), std::invalid_argument);
  }
  {
    auto bad = wire;
    bad.push_back(0x00);
    EXPECT_THROW(decode(bad), std::invalid_argument);
  }
  {
    auto bad = wire;
    bad[8] = 99;  // first message kind
    EXPECT_THROW(decode(bad), std::invalid_argument);
  }
}

TEST(P4rtCodec, EmptyBatch) {
  const auto wire = encode({});
  EXPECT_EQ(wire.size(), 8u);  // magic + count
  EXPECT_TRUE(decode(wire).empty());
}

TEST(P4rtCodec, OversizedFlowAddRoundTripsViaExtendedFrame) {
  // A flow whose body exceeds the u16 frame (≈16K local VMs) used to throw
  // std::length_error; it must now cross the channel via an extended frame.
  Update u;
  u.kind = UpdateKind::kHypervisorFlowAdd;
  u.host = 42;
  u.group.value = 0xe1000001;
  u.vni = 7;
  u.local_vms.resize(20'000);
  for (std::size_t i = 0; i < u.local_vms.size(); ++i) {
    u.local_vms[i] = static_cast<std::uint32_t>(i);
  }
  u.elmo_header.assign(123, 0xab);

  std::vector<Update> updates{u};
  const auto wire = encode(updates);
  // Body alone is > 65,535 bytes: 12 fixed + 4 + 4*20000 + 4 + 123.
  EXPECT_GT(wire.size(), 65'535u);
  EXPECT_EQ(wire[8] & kExtendedFrameBit, kExtendedFrameBit);

  const auto decoded = decode(wire);
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0], u);
}

TEST(P4rtCodec, OversizedSRuleRoundTripsViaExtendedFrame) {
  Update u;
  u.kind = UpdateKind::kSRuleAdd;
  u.layer = topo::Layer::kLeaf;
  u.switch_id = 3;
  u.group.value = 0xe1000002;
  u.ports = net::PortBitmap{70'000};
  u.ports.set(0);
  u.ports.set(65'536);
  u.ports.set(69'999);

  std::vector<Update> updates{u};
  const auto decoded = decode(encode(updates));
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0], u);
}

TEST(P4rtCodec, StandardFramesAreByteIdenticalToLegacyWire) {
  // Small messages must keep the v1 layout so old decoders stay compatible:
  // kind byte without the extension bit, u16 length, u16 counts.
  Update u;
  u.kind = UpdateKind::kHypervisorFlowAdd;
  u.host = 1;
  u.group.value = 0xe0000009;
  u.vni = 2;
  u.local_vms = {10, 11};
  u.elmo_header = {0xde, 0xad};

  std::vector<Update> updates{u};
  const auto wire = encode(updates);
  ASSERT_GT(wire.size(), 11u);
  EXPECT_EQ(wire[8], 0x01);  // kind, high bit clear
  const std::size_t body = 12 + 2 + 4 * 2 + 2 + 2;
  EXPECT_EQ(wire.size(), 8 + 3 + body);
  EXPECT_EQ((wire[9] << 8) | wire[10], static_cast<int>(body));
}

TEST(P4rtCodec, DecodeRejectsImplausibleBatchCount) {
  // A batch advertising far more messages than the payload could hold must
  // be rejected before any storage is reserved for it.
  std::vector<std::uint8_t> wire = encode({});
  wire[4] = 0xff;  // count := 0xff000000
  EXPECT_THROW(decode(wire), std::invalid_argument);
}

TEST(P4rtCodec, DecodeRejectsOversizedEmbeddedCounts) {
  Update u;
  u.kind = UpdateKind::kSRuleAdd;
  u.layer = topo::Layer::kLeaf;
  u.switch_id = 1;
  u.group.value = 0xe0000001;
  u.ports = net::PortBitmap{8};
  std::vector<Update> updates{u};
  auto wire = encode(updates);
  // Corrupt the port_count field (last 3 bytes are count(u16) + 1 bitmap
  // byte) to advertise a bitmap far larger than the remaining payload.
  wire[wire.size() - 3] = 0xff;
  wire[wire.size() - 2] = 0xff;
  EXPECT_THROW(decode(wire), std::invalid_argument);
}

TEST(P4rtCodec, DecodeFuzzNeverCrashesAndRoundTripsSurvivors) {
  // Mutational fuzz over valid wires: truncations, bit flips, and random
  // splices must either decode cleanly or throw std::invalid_argument —
  // never crash, hang, or allocate absurdly. Survivors must re-encode.
  util::Rng rng{0xf00dULL};
  std::vector<Update> base;
  for (int i = 0; i < 6; ++i) {
    Update u;
    switch (i % 4) {
      case 0:
        u.kind = UpdateKind::kHypervisorFlowAdd;
        u.host = rng.index(1000);
        u.vni = rng.index(1 << 20);
        u.local_vms.resize(rng.index(8));
        u.elmo_header.resize(rng.index(64));
        break;
      case 1:
        u.kind = UpdateKind::kHypervisorFlowDel;
        u.host = rng.index(1000);
        break;
      case 2:
        u.kind = UpdateKind::kSRuleAdd;
        u.layer = topo::Layer::kSpine;
        u.switch_id = rng.index(512);
        u.ports = net::PortBitmap{1 + rng.index(128)};
        break;
      case 3:
        u.kind = UpdateKind::kSRuleDel;
        u.layer = topo::Layer::kLeaf;
        u.switch_id = rng.index(512);
        break;
    }
    u.group.value = 0xe0000000u | static_cast<std::uint32_t>(rng.index(1 << 24));
    base.push_back(std::move(u));
  }
  const auto wire = encode(base);
  ASSERT_EQ(decode(wire), base);

  for (int trial = 0; trial < 2000; ++trial) {
    auto fuzzed = wire;
    switch (rng.index(3)) {
      case 0:  // truncate
        fuzzed.resize(rng.index(fuzzed.size() + 1));
        break;
      case 1:  // flip a byte
        fuzzed[rng.index(fuzzed.size())] ^= static_cast<std::uint8_t>(
            1 + rng.index(255));
        break;
      case 2: {  // splice a random chunk
        const auto at = rng.index(fuzzed.size());
        const auto len = rng.index(16);
        std::vector<std::uint8_t> chunk(len);
        for (auto& b : chunk) b = static_cast<std::uint8_t>(rng.index(256));
        fuzzed.insert(fuzzed.begin() + static_cast<std::ptrdiff_t>(at),
                      chunk.begin(), chunk.end());
        break;
      }
    }
    try {
      const auto survivors = decode(fuzzed);
      // Anything that decodes must round-trip through encode/decode.
      EXPECT_EQ(decode(encode(survivors)), survivors);
    } catch (const std::invalid_argument&) {
      // expected for malformed input
    }
  }
}

}  // namespace
}  // namespace elmo::p4rt
