#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

namespace elmo::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng rng{7};
  const auto first = rng();
  rng.reseed(7);
  EXPECT_EQ(rng(), first);
}

TEST(Rng, NextBelowStaysInBounds) {
  Rng rng{3};
  for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng rng{3};
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng{11};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all six values hit
}

TEST(Rng, UniformDoubleInHalfOpenUnit) {
  Rng rng{13};
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng{17};
  double sum = 0;
  constexpr int kSamples = 200'000;
  for (int i = 0; i < kSamples; ++i) sum += rng.exponential(50.0);
  EXPECT_NEAR(sum / kSamples, 50.0, 1.0);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng{19};
  int hits = 0;
  constexpr int kSamples = 100'000;
  for (int i = 0; i < kSamples; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.01);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng{23};
  std::vector<int> values(100);
  std::iota(values.begin(), values.end(), 0);
  auto shuffled = values;
  rng.shuffle(std::span<int>{shuffled});
  EXPECT_NE(shuffled, values);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  Rng rng{29};
  for (std::size_t n : {5u, 100u, 1000u}) {
    for (std::size_t k : {std::size_t{1}, n / 2, n}) {
      const auto sample = rng.sample_indices(n, k);
      ASSERT_EQ(sample.size(), k);
      std::set<std::size_t> unique{sample.begin(), sample.end()};
      EXPECT_EQ(unique.size(), k);
      for (const auto v : sample) EXPECT_LT(v, n);
    }
  }
}

TEST(Rng, SampleIndicesFullRangeIsPermutation) {
  Rng rng{31};
  auto sample = rng.sample_indices(50, 50);
  std::sort(sample.begin(), sample.end());
  for (std::size_t i = 0; i < 50; ++i) EXPECT_EQ(sample[i], i);
}

TEST(Rng, SampleIndicesRejectsOversizedK) {
  Rng rng{37};
  EXPECT_THROW(rng.sample_indices(3, 4), std::invalid_argument);
}

TEST(Rng, SampleIndicesApproximatelyUniform) {
  Rng rng{41};
  std::vector<int> counts(10, 0);
  for (int trial = 0; trial < 20'000; ++trial) {
    for (const auto v : rng.sample_indices(10, 3)) ++counts[v];
  }
  // Each index should be chosen ~ 20000 * 3/10 = 6000 times.
  for (const auto c : counts) EXPECT_NEAR(c, 6000, 400);
}

}  // namespace
}  // namespace elmo::util
