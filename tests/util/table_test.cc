#include "util/table.h"

#include <gtest/gtest.h>

namespace elmo::util {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable table{{"name", "value"}};
  table.add_row({"alpha", "1"});
  table.add_row({"bb", "22"});
  const auto out = table.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  // Borders present.
  EXPECT_NE(out.find("+--"), std::string::npos);
}

TEST(TextTable, PadsShortRows) {
  TextTable table{{"a", "b", "c"}};
  table.add_row({"only"});
  EXPECT_NO_THROW(table.render());
}

TEST(TextTable, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable{std::vector<std::string>{}}, std::invalid_argument);
}

TEST(TextTable, FmtFixedPrecision) {
  EXPECT_EQ(TextTable::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::fmt(2.0, 0), "2");
}

TEST(TextTable, FmtCountInsertsSeparators) {
  EXPECT_EQ(TextTable::fmt_count(0), "0");
  EXPECT_EQ(TextTable::fmt_count(999), "999");
  EXPECT_EQ(TextTable::fmt_count(1000), "1,000");
  EXPECT_EQ(TextTable::fmt_count(1234567), "1,234,567");
  EXPECT_EQ(TextTable::fmt_count(27648), "27,648");
}

TEST(TextTable, FmtSiScalesUnits) {
  EXPECT_EQ(TextTable::fmt_si(950, 0), "950");
  EXPECT_EQ(TextTable::fmt_si(1500, 1), "1.5K");
  EXPECT_EQ(TextTable::fmt_si(2'000'000, 0), "2M");
  EXPECT_EQ(TextTable::fmt_si(3.2e9, 1), "3.2G");
}

TEST(TextTable, FmtPct) {
  EXPECT_EQ(TextTable::fmt_pct(0.345, 1), "34.5%");
  EXPECT_EQ(TextTable::fmt_pct(1.0, 0), "100%");
}

TEST(TextTable, FmtRateAppendsPerSecond) {
  EXPECT_EQ(TextTable::fmt_rate(950, 0), "950/s");
  EXPECT_EQ(TextTable::fmt_rate(1500), "1.5K/s");
  EXPECT_EQ(TextTable::fmt_rate(2.5e6, 1), "2.5M/s");
  EXPECT_EQ(TextTable::fmt_rate(3.2e9, 1), "3.2G/s");
}

TEST(TextTable, RightAlignedColumns) {
  TextTable table{{"name", "rate"}};
  table.set_align(1, TextTable::Align::kRight);
  table.add_row({"sends", "1.5K/s"});
  table.add_row({"walks", "950/s"});
  const auto out = table.render();
  // Right-aligned data cells get their padding on the left; the shorter rate
  // must therefore appear with leading spaces before the closing separator.
  EXPECT_NE(out.find("| sends | 1.5K/s |"), std::string::npos);
  EXPECT_NE(out.find("| walks |  950/s |"), std::string::npos);
  // Header row stays left-aligned.
  EXPECT_NE(out.find("| rate   |"), std::string::npos);
}

TEST(TextTable, SetAlignRejectsBadColumn) {
  TextTable table{{"a"}};
  EXPECT_THROW(table.set_align(1, TextTable::Align::kRight),
               std::out_of_range);
}

}  // namespace
}  // namespace elmo::util
