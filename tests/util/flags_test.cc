#include "util/flags.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace elmo::util {
namespace {

TEST(Flags, FallbackWhenUnset) {
  unsetenv("ELMO_NOSUCH");
  Flags flags;
  EXPECT_EQ(flags.get_int("nosuch", 42), 42);
  EXPECT_DOUBLE_EQ(flags.get_double("nosuch", 1.5), 1.5);
  EXPECT_EQ(flags.get_string("nosuch", "dflt"), "dflt");
  EXPECT_TRUE(flags.get_bool("nosuch", true));
}

TEST(Flags, ReadsEnvironment) {
  setenv("ELMO_GROUPS", "12345", 1);
  Flags flags;
  EXPECT_EQ(flags.get_int("groups", 1), 12345);
  unsetenv("ELMO_GROUPS");
}

TEST(Flags, ArgvOverridesEnvironment) {
  setenv("ELMO_SCALE", "1", 1);
  const char* argv[] = {"prog", "SCALE=9"};
  Flags flags{2, const_cast<char**>(argv)};
  EXPECT_EQ(flags.get_int("scale", 0), 9);
  unsetenv("ELMO_SCALE");
}

TEST(Flags, KeysAreCaseInsensitive) {
  setenv("ELMO_PODS", "6", 1);
  Flags flags;
  EXPECT_EQ(flags.get_int("Pods", 0), 6);
  EXPECT_EQ(flags.get_int("PODS", 0), 6);
  unsetenv("ELMO_PODS");
}

TEST(Flags, BoolParsing) {
  for (const char* truthy : {"1", "true", "YES", "on"}) {
    setenv("ELMO_FLAGB", truthy, 1);
    Flags flags;
    EXPECT_TRUE(flags.get_bool("flagb", false)) << truthy;
  }
  setenv("ELMO_FLAGB", "0", 1);
  Flags flags;
  EXPECT_FALSE(flags.get_bool("flagb", true));
  unsetenv("ELMO_FLAGB");
}

TEST(Flags, IgnoresDashDashArguments) {
  const char* argv[] = {"prog", "--benchmark_filter=all", "R=3"};
  Flags flags{3, const_cast<char**>(argv)};
  EXPECT_EQ(flags.get_int("r", 0), 3);
  EXPECT_EQ(flags.get_string("benchmark_filter", "none"), "none");
}

TEST(Flags, DashDashKeyValuePairs) {
  const char* argv[] = {"prog", "--threads=4", "--Ratio=0.5"};
  Flags flags{3, const_cast<char**>(argv)};
  EXPECT_EQ(flags.get_int("threads", 0), 4);
  EXPECT_EQ(flags.get_int("THREADS", 0), 4);
  EXPECT_DOUBLE_EQ(flags.get_double("ratio", 0.0), 0.5);
}

TEST(Flags, LowercaseArgvKeysMatch) {
  unsetenv("ELMO_THREADS");
  const char* argv[] = {"prog", "threads=7"};
  Flags flags{2, const_cast<char**>(argv)};
  EXPECT_EQ(flags.get_int("threads", 0), 7);
  EXPECT_EQ(flags.get_int("Threads", 0), 7);
}

TEST(Flags, WarnsButKeepsGoingOnMalformedTokens) {
  // Tokens without '=' warn on stderr instead of being silently dropped;
  // later valid pairs still take effect.
  const char* argv[] = {"prog", "not-a-flag", "--also-bad", "OK=1"};
  Flags flags{4, const_cast<char**>(argv)};
  EXPECT_EQ(flags.get_int("ok", 0), 1);
  EXPECT_EQ(flags.get_string("not-a-flag", "unset"), "unset");
}

TEST(Flags, DoubleParsing) {
  const char* argv[] = {"prog", "RATIO=0.25"};
  Flags flags{2, const_cast<char**>(argv)};
  EXPECT_DOUBLE_EQ(flags.get_double("ratio", 0.0), 0.25);
}

}  // namespace
}  // namespace elmo::util
