#include "util/fenwick.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.h"

namespace elmo::util {
namespace {

TEST(FenwickTree, PrefixSumsMatchNaive) {
  FenwickTree tree{10};
  std::vector<std::int64_t> naive(10, 0);
  util::Rng rng{17};
  for (int round = 0; round < 500; ++round) {
    const auto i = rng.index(10);
    // Keep weights non-negative: add in [0, 5), subtract at most the current.
    const auto delta = static_cast<std::int64_t>(rng.index(5)) -
                       std::min<std::int64_t>(naive[i], 2);
    tree.add(i, delta);
    naive[i] += delta;

    std::int64_t prefix = 0;
    for (std::size_t k = 0; k < naive.size(); ++k) {
      EXPECT_EQ(tree.prefix(k), static_cast<std::uint64_t>(prefix));
      prefix += naive[k];
    }
    EXPECT_EQ(tree.total(), static_cast<std::uint64_t>(prefix));
  }
}

TEST(FenwickTree, UpperBoundSelectsByWeight) {
  FenwickTree tree{4};
  tree.add(0, 2);
  tree.add(1, 0);
  tree.add(2, 3);
  tree.add(3, 1);
  // Weights [2, 0, 3, 1]: targets map to entries 0,0,2,2,2,3.
  const std::size_t expected[] = {0, 0, 2, 2, 2, 3};
  for (std::uint64_t t = 0; t < 6; ++t) {
    EXPECT_EQ(tree.upper_bound(t), expected[t]) << "target " << t;
  }
  EXPECT_THROW(tree.upper_bound(6), std::out_of_range);
}

TEST(FenwickTree, ZeroWeightEntriesAreNeverSelected) {
  FenwickTree tree{5};
  tree.add(1, 4);
  tree.add(3, 4);
  for (std::uint64_t t = 0; t < tree.total(); ++t) {
    const auto i = tree.upper_bound(t);
    EXPECT_TRUE(i == 1 || i == 3) << "target " << t;
  }
}

TEST(FenwickTree, WeightReadsBack) {
  FenwickTree tree{3};
  tree.add(0, 7);
  tree.add(2, 1);
  tree.add(0, -3);
  EXPECT_EQ(tree.weight(0), 4u);
  EXPECT_EQ(tree.weight(1), 0u);
  EXPECT_EQ(tree.weight(2), 1u);
  EXPECT_EQ(tree.total(), 5u);
}

TEST(FenwickTree, BoundsChecked) {
  FenwickTree tree{3};
  EXPECT_THROW(tree.add(3, 1), std::out_of_range);
  EXPECT_THROW(tree.prefix(4), std::out_of_range);
}

}  // namespace
}  // namespace elmo::util
