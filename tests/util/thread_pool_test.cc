// ThreadPool: the determinism-friendly work-stealing pool (DESIGN.md §5).
#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/rng.h"

namespace elmo::util {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool{4};
  constexpr std::size_t n = 10'000;
  std::vector<std::atomic<std::uint32_t>> hits(n);
  pool.parallel_for(0, n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1u) << "index " << i;
  }
}

TEST(ThreadPool, HonorsNonZeroBegin) {
  ThreadPool pool{3};
  std::vector<std::atomic<std::uint32_t>> hits(100);
  pool.parallel_for(40, 100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < 100; ++i) {
    ASSERT_EQ(hits[i].load(), i >= 40 ? 1u : 0u) << "index " << i;
  }
}

TEST(ThreadPool, EmptyAndSingletonRanges) {
  ThreadPool pool{4};
  std::atomic<std::size_t> count{0};
  pool.parallel_for(5, 5, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 0u);
  pool.parallel_for(7, 8, [&](std::size_t i) {
    EXPECT_EQ(i, 7u);
    count.fetch_add(1);
  });
  EXPECT_EQ(count.load(), 1u);
}

TEST(ThreadPool, SingleThreadPoolRunsInline) {
  ThreadPool pool{1};
  EXPECT_EQ(pool.threads(), 1u);
  const auto caller = std::this_thread::get_id();
  pool.parallel_for(0, 64, [&](std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(ThreadPool, ExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool{4};
  EXPECT_THROW(
      pool.parallel_for(0, 1000,
                        [](std::size_t i) {
                          if (i == 617) throw std::runtime_error{"boom"};
                        }),
      std::runtime_error);
  // The pool must be reusable after a failed loop.
  std::atomic<std::size_t> count{0};
  pool.parallel_for(0, 500, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 500u);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadPool pool{4};
  std::vector<std::atomic<std::uint32_t>> hits(32 * 32);
  pool.parallel_for(0, 32, [&](std::size_t outer) {
    // A nested loop on the same pool must not deadlock; it runs inline on
    // the calling worker.
    pool.parallel_for(0, 32, [&](std::size_t inner) {
      hits[outer * 32 + inner].fetch_add(1);
    });
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1u) << "slot " << i;
  }
}

TEST(ThreadPool, ManySmallLoopsUnderContention) {
  // Shutdown/startup race check: loops much smaller than the worker count,
  // fired back to back, then immediate destruction.
  for (int round = 0; round < 20; ++round) {
    ThreadPool pool{8};
    std::atomic<std::size_t> total{0};
    for (std::size_t loop = 0; loop < 50; ++loop) {
      pool.parallel_for(0, 3, [&](std::size_t) { total.fetch_add(1); });
    }
    EXPECT_EQ(total.load(), 150u);
  }
}

TEST(ThreadPool, RejectsRangesBeyond32Bits) {
  ThreadPool pool{2};
  EXPECT_THROW(pool.parallel_for(0, (1ull << 32) + 1, [](std::size_t) {}),
               std::invalid_argument);
}

TEST(ThreadPool, DefaultThreadCountIsPositive) {
  EXPECT_GE(default_thread_count(), 1u);
}

TEST(ThreadPool, IndexSumMatchesSerialAtAnyWidth) {
  constexpr std::size_t n = 4096;
  const std::uint64_t expected = static_cast<std::uint64_t>(n) * (n - 1) / 2;
  for (const std::size_t width : {1u, 2u, 4u, 8u}) {
    ThreadPool pool{width};
    std::atomic<std::uint64_t> sum{0};
    pool.parallel_for(0, n, [&](std::size_t i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), expected) << width << " threads";
  }
}

// Per-task RNG streams: the determinism contract's randomness rule.
TEST(RngStream, IndependentOfDrawOrder) {
  constexpr std::uint64_t seed = 0xfeedbeef;
  std::vector<std::uint64_t> forward(64), backward(64);
  for (std::size_t i = 0; i < 64; ++i) {
    forward[i] = Rng::stream(seed, i)();
  }
  for (std::size_t i = 64; i-- > 0;) {
    backward[i] = Rng::stream(seed, i)();
  }
  EXPECT_EQ(forward, backward);
}

TEST(RngStream, DistinctStreamsDiffer) {
  constexpr std::uint64_t seed = 7;
  auto a = Rng::stream(seed, 0);
  auto b = Rng::stream(seed, 1);
  // Not a statistical test — just catches the "stream id ignored" bug.
  EXPECT_NE(a(), b());
  EXPECT_NE(Rng::stream(seed, 2)(), Rng::stream(seed + 1, 2)());
}

}  // namespace
}  // namespace elmo::util
