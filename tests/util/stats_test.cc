#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace elmo::util {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(OnlineStats, MatchesDirectComputation) {
  OnlineStats s;
  const std::vector<double> xs{1.0, 4.0, 9.0, 16.0, 25.0};
  double sum = 0;
  for (const auto x : xs) {
    s.add(x);
    sum += x;
  }
  const double mean = sum / xs.size();
  double var = 0;
  for (const auto x : xs) var += (x - mean) * (x - mean);
  var /= (xs.size() - 1);

  EXPECT_EQ(s.count(), xs.size());
  EXPECT_DOUBLE_EQ(s.mean(), mean);
  EXPECT_NEAR(s.variance(), var, 1e-9);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 25.0);
  EXPECT_DOUBLE_EQ(s.sum(), sum);
}

TEST(OnlineStats, MergeEqualsSingleStream) {
  OnlineStats merged_a;
  OnlineStats merged_b;
  OnlineStats whole;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10 + i;
    whole.add(x);
    (i % 2 == 0 ? merged_a : merged_b).add(x);
  }
  merged_a.merge(merged_b);
  EXPECT_EQ(merged_a.count(), whole.count());
  EXPECT_NEAR(merged_a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(merged_a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(merged_a.min(), whole.min());
  EXPECT_DOUBLE_EQ(merged_a.max(), whole.max());
}

TEST(OnlineStats, MergeWithEmptyIsIdentity) {
  OnlineStats a;
  a.add(3.0);
  a.add(5.0);
  OnlineStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);

  OnlineStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 4.0);
}

TEST(Percentile, NearestRankSemantics) {
  const std::vector<double> xs{15.0, 20.0, 35.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 30), 20.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 40), 20.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 35.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 50.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 15.0);
}

TEST(Percentile, SingleSamplePinsEveryRank) {
  const std::vector<double> one{7.5};
  EXPECT_DOUBLE_EQ(percentile(one, 0), 7.5);
  EXPECT_DOUBLE_EQ(percentile(one, 50), 7.5);
  EXPECT_DOUBLE_EQ(percentile(one, 100), 7.5);
}

TEST(Histogram, NonFiniteSamplesGoToOverflowCounter) {
  Histogram h{0.0, 10.0, 10};
  h.add(std::nan(""));
  h.add(std::numeric_limits<double>::infinity());
  h.add(-std::numeric_limits<double>::infinity());
  h.add(5.0);
  EXPECT_EQ(h.non_finite(), 3u);
  EXPECT_EQ(h.total(), 4u);
  std::size_t in_buckets = 0;
  for (std::size_t b = 0; b < h.bucket_count(); ++b) in_buckets += h.count(b);
  EXPECT_EQ(in_buckets, h.total() - h.non_finite());
}

TEST(Histogram, HugeFiniteSamplesClampToEdgeBuckets) {
  Histogram h{0.0, 10.0, 4};
  h.add(std::numeric_limits<double>::max());
  h.add(std::numeric_limits<double>::lowest());
  EXPECT_EQ(h.count(3), 1u);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.non_finite(), 0u);
  EXPECT_EQ(h.total(), 2u);
}

TEST(Percentile, RejectsBadInput) {
  EXPECT_THROW(percentile({}, 50), std::invalid_argument);
  const std::vector<double> xs{1.0};
  EXPECT_THROW(percentile(xs, -1), std::invalid_argument);
  EXPECT_THROW(percentile(xs, 101), std::invalid_argument);
}

TEST(Distribution, TracksValuesAndStats) {
  Distribution d;
  for (int i = 1; i <= 100; ++i) d.add(i);
  EXPECT_EQ(d.count(), 100u);
  EXPECT_DOUBLE_EQ(d.stats().mean(), 50.5);
  EXPECT_DOUBLE_EQ(d.percentile(95), 95.0);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h{0.0, 10.0, 5};
  h.add(0.5);    // bucket 0
  h.add(3.0);    // bucket 1
  h.add(9.99);   // bucket 4
  h.add(-5.0);   // clamps to bucket 0
  h.add(100.0);  // clamps to bucket 4
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(2), 0u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(1), 4.0);
}

TEST(Histogram, RejectsBadRange) {
  EXPECT_THROW(Histogram(0.0, 0.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, RenderMentionsCounts) {
  Histogram h{0.0, 4.0, 2};
  h.add(1.0);
  h.add(1.5);
  h.add(3.0);
  const auto text = h.render(10);
  EXPECT_NE(text.find("2"), std::string::npos);
  EXPECT_NE(text.find("#"), std::string::npos);
}

}  // namespace
}  // namespace elmo::util
