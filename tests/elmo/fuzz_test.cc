// Robustness fuzzing: the header codec and the switch parser must never
// crash or read out of bounds on malformed input — they throw typed
// exceptions instead (a hostile tenant cannot source Elmo sections, but the
// parser still must be total over byte strings).
#include <gtest/gtest.h>

#include "dataplane/hypervisor_switch.h"
#include "dataplane/network_switch.h"
#include "elmo/controller.h"
#include "elmo/header.h"
#include "net/packet.h"
#include "util/rng.h"

namespace elmo {
namespace {

topo::ClosTopology small() {
  return topo::ClosTopology{topo::ClosParams::small_test()};
}

TEST(Fuzz, HeaderParseIsTotalOverRandomBytes) {
  const auto t = small();
  const HeaderCodec codec{t};
  util::Rng rng{0xfadedace};
  int parsed_ok = 0;
  for (int trial = 0; trial < 5000; ++trial) {
    std::vector<std::uint8_t> bytes(rng.index(64));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
    try {
      (void)codec.parse(bytes);
      ++parsed_ok;
    } catch (const std::out_of_range&) {
    } catch (const std::invalid_argument&) {
    } catch (const std::length_error&) {
    }
    try {
      (void)codec.scan_sections(bytes);
    } catch (const std::out_of_range&) {
    } catch (const std::invalid_argument&) {
    }
  }
  // Some random strings do decode (e.g. an immediate END tag) — that is
  // fine; what matters is that nothing escaped the typed exceptions above.
  EXPECT_GT(parsed_ok, 0);
}

TEST(Fuzz, TruncatedValidHeadersThrowCleanly) {
  const auto t = small();
  const HeaderCodec codec{t};
  // A real header, truncated at every possible byte length.
  SenderEncoding sender;
  sender.u_leaf.down = net::PortBitmap{t.leaf_down_ports()};
  sender.u_leaf.down.set(1);
  sender.u_leaf.up = net::PortBitmap{t.leaf_up_ports()};
  sender.u_leaf.multipath = true;
  UpstreamRule u_spine;
  u_spine.down = net::PortBitmap{t.spine_down_ports()};
  u_spine.up = net::PortBitmap{t.spine_up_ports()};
  u_spine.multipath = true;
  sender.u_spine = u_spine;
  sender.core_pods = net::PortBitmap{t.core_ports()};
  sender.core_pods->set(2);
  GroupEncoding group;
  group.leaf.p_rules.push_back(PRule{sender.u_leaf.down, {3, 9}});
  const auto full = codec.serialize(sender, group);

  for (std::size_t len = 0; len < full.size(); ++len) {
    const std::vector<std::uint8_t> cut{full.begin(), full.begin() + len};
    EXPECT_THROW((void)codec.parse(cut), std::out_of_range) << "len " << len;
  }
  EXPECT_NO_THROW((void)codec.parse(full));
}

TEST(Fuzz, BitflippedHeadersNeverCrashTheSwitchParser) {
  const auto t = small();
  Controller controller{t, EncoderConfig{}};
  const std::vector<Member> members{{0, 0, MemberRole::kBoth},
                                    {17, 1, MemberRole::kBoth}};
  const auto id = controller.create_group(0, members);
  const auto& g = controller.group(id);

  dp::HypervisorSwitch hv{t, 0};
  dp::HypervisorSwitch::GroupFlow flow;
  flow.elmo_header = controller.header_for(id, 0);
  hv.install_flow(g.address, flow);
  const auto clean =
      *hv.encapsulate(g.address, std::vector<std::uint8_t>(32, 0));

  dp::NetworkSwitch leaf{t, topo::Layer::kLeaf, 0};
  util::Rng rng{4242};
  int survived = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    net::Packet mutated = clean;
    // Flip 1-4 bits anywhere beyond the outer Ethernet/IP version bytes.
    const auto flips = 1 + rng.index(4);
    for (std::size_t f = 0; f < flips; ++f) {
      const auto at = 34 + rng.index(mutated.size() - 34);
      mutated.mutable_bytes()[at] ^=
          static_cast<std::uint8_t>(1u << rng.index(8));
    }
    try {
      const auto copies = leaf.process(mutated);
      ++survived;
      // Fan-out is physically bounded by the port count.
      EXPECT_LE(copies.size(), t.leaf_down_ports() + t.leaf_up_ports());
    } catch (const std::out_of_range&) {
    } catch (const std::invalid_argument&) {
    } catch (const std::length_error&) {
    }
  }
  EXPECT_GT(survived, 0);
}

}  // namespace
}  // namespace elmo
