// System-level invariants across random controller operation sequences:
// s-rule accounting never leaks, every sender's header always delivers
// exactly once, and the control plane is deterministic.
#include <gtest/gtest.h>

#include "dataplane/common.h"
#include "elmo/churn.h"
#include "elmo/evaluator.h"
#include "sim/fabric.h"
#include "testutil.h"

namespace elmo {
namespace {

struct RandomOps : ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomOps, SRuleAccountingMatchesLiveGroups) {
  const topo::ClosTopology t{topo::ClosParams::small_test()};
  EncoderConfig cfg;
  cfg.hmax_leaf_override = 2;  // force frequent s-rule traffic
  cfg.hmax_spine = 1;
  Controller controller{t, cfg};
  util::Rng rng{GetParam()};

  std::vector<GroupId> live;
  std::uint32_t next_vm = 0;
  for (int op = 0; op < 300; ++op) {
    const auto dice = rng.index(4);
    if (dice == 0 || live.empty()) {
      const auto hosts = test::random_hosts(t, 2 + rng.index(20), rng);
      std::vector<Member> members;
      for (const auto h : hosts) {
        members.push_back(Member{h, next_vm++, MemberRole::kBoth});
      }
      live.push_back(controller.create_group(0, members));
    } else if (dice == 1) {
      const auto at = rng.index(live.size());
      controller.remove_group(live[at]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(at));
    } else if (dice == 2) {
      const auto id = live[rng.index(live.size())];
      // Join a host not already in the group.
      const auto& g = controller.group(id);
      for (int attempt = 0; attempt < 20; ++attempt) {
        const auto host =
            static_cast<topo::HostId>(rng.index(t.num_hosts()));
        const bool present = std::any_of(
            g.members.begin(), g.members.end(),
            [&](const Member& m) { return m.host == host; });
        if (!present) {
          controller.join(id, Member{host, next_vm++, MemberRole::kBoth});
          break;
        }
      }
    } else {
      const auto id = live[rng.index(live.size())];
      const auto& g = controller.group(id);
      if (g.members.size() > 2) {
        controller.leave(id, g.members[rng.index(g.members.size())].host);
      }
    }

    // Invariant: fabric-wide occupancy equals the sum over live groups.
    double expected_leaf = 0;
    double expected_spine_pods = 0;
    for (const auto id : live) {
      const auto& g = controller.group(id);
      expected_leaf += static_cast<double>(g.encoding.leaf.s_rules.size());
      expected_spine_pods +=
          static_cast<double>(g.encoding.spine.s_rules.size());
    }
    ASSERT_DOUBLE_EQ(controller.srule_space().leaf_stats().sum(),
                     expected_leaf);
    ASSERT_DOUBLE_EQ(
        controller.srule_space().spine_stats().sum(),
        expected_spine_pods * t.params().spines_per_pod);
  }

  for (const auto id : live) controller.remove_group(id);
  EXPECT_DOUBLE_EQ(controller.srule_space().leaf_stats().sum(), 0.0);
  EXPECT_DOUBLE_EQ(controller.srule_space().spine_stats().sum(), 0.0);
}

TEST_P(RandomOps, EverySenderDeliversExactlyOnceAfterMutations) {
  const topo::ClosTopology t{topo::ClosParams::small_test()};
  Controller controller{t, EncoderConfig{}};
  const TrafficEvaluator evaluator{t};
  util::Rng rng{GetParam() ^ 0xabcdef};

  const auto hosts = test::random_hosts(t, 10, rng);
  std::vector<Member> members;
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    members.push_back(
        Member{hosts[i], static_cast<std::uint32_t>(i), MemberRole::kBoth});
  }
  const auto id = controller.create_group(0, members);

  std::uint32_t next_vm = 100;
  for (int round = 0; round < 25; ++round) {
    // Mutate.
    const auto& g = controller.group(id);
    if (rng.bernoulli(0.5) && g.members.size() > 3) {
      controller.leave(id, g.members[rng.index(g.members.size())].host);
    } else {
      for (int attempt = 0; attempt < 20; ++attempt) {
        const auto host =
            static_cast<topo::HostId>(rng.index(t.num_hosts()));
        const bool present = std::any_of(
            g.members.begin(), g.members.end(),
            [&](const Member& m) { return m.host == host; });
        if (!present) {
          controller.join(id, Member{host, next_vm++, MemberRole::kBoth});
          break;
        }
      }
    }
    // Verify from every sender.
    const auto& state = controller.group(id);
    for (const auto& m : state.members) {
      if (!can_send(m.role)) continue;
      const auto report = evaluator.evaluate(
          *state.tree, state.encoding, m.host, 100,
          dp::flow_hash(dp::host_address(m.host), state.address));
      ASSERT_TRUE(report.delivery.exactly_once())
          << "round " << round << " sender " << m.host;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomOps, ::testing::Values(1u, 2u, 3u));

TEST(Determinism, IdenticalRunsProduceIdenticalHeaders) {
  auto run = [] {
    const topo::ClosTopology t{topo::ClosParams::small_test()};
    util::Rng rng{424242};
    const cloud::Cloud cloud{t, cloud::CloudParams::small_test(), rng};
    cloud::WorkloadParams wp;
    wp.total_groups = 50;
    wp.min_group_size = 3;
    const cloud::GroupWorkload workload{cloud, wp, rng};
    Controller controller{t, EncoderConfig{}};
    std::vector<std::uint8_t> digest;
    for (const auto& g : workload.groups()) {
      std::vector<Member> members;
      for (std::size_t i = 0; i < g.size(); ++i) {
        members.push_back(
            Member{g.member_hosts[i], g.member_vms[i], MemberRole::kBoth});
      }
      const auto id = controller.create_group(g.tenant, members);
      const auto header = controller.header_for(id, g.member_hosts[0]);
      digest.insert(digest.end(), header.begin(), header.end());
    }
    return digest;
  };
  EXPECT_EQ(run(), run());
}

TEST(Integration, ChurnThenReinstallKeepsDataPlaneConsistent) {
  // Controller mutations followed by a data-plane refresh must keep the
  // packet-level fabric delivering exactly what the controller thinks.
  const topo::ClosTopology t{topo::ClosParams::small_test()};
  Controller controller{t, EncoderConfig{}};
  sim::Fabric fabric{t};
  util::Rng rng{777};

  const auto hosts = test::random_hosts(t, 8, rng);
  std::vector<Member> members;
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    members.push_back(
        Member{hosts[i], static_cast<std::uint32_t>(i), MemberRole::kBoth});
  }
  const auto id = controller.create_group(0, members);
  fabric.install_group(controller, id);

  std::uint32_t next_vm = 50;
  for (int round = 0; round < 10; ++round) {
    const auto& before = controller.group(id);
    const auto victim = before.members[rng.index(before.members.size())].host;
    fabric.uninstall_group(controller, id);  // uninstall with OLD state
    controller.leave(id, victim);
    for (int attempt = 0; attempt < 30; ++attempt) {
      const auto host = static_cast<topo::HostId>(rng.index(t.num_hosts()));
      const auto& g = controller.group(id);
      const bool present =
          std::any_of(g.members.begin(), g.members.end(),
                      [&](const Member& m) { return m.host == host; });
      if (!present) {
        controller.join(id, Member{host, next_vm++, MemberRole::kBoth});
        break;
      }
    }
    fabric.install_group(controller, id);

    const auto& g = controller.group(id);
    const auto sender = g.members[rng.index(g.members.size())].host;
    const auto result = fabric.send(sender, g.address, 128);
    for (const auto& m : g.members) {
      if (m.host == sender) continue;
      ASSERT_EQ(result.host_copies.count(m.host), 1u)
          << "round " << round << " member " << m.host;
    }
  }
}

}  // namespace
}  // namespace elmo
