#include "elmo/clustering.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "util/rng.h"

namespace elmo {
namespace {

net::PortBitmap bm(std::size_t ports, std::initializer_list<std::size_t> set) {
  net::PortBitmap b{ports};
  for (const auto p : set) b.set(p);
  return b;
}

SRuleReserver always() {
  return [](std::uint32_t) { return true; };
}
SRuleReserver never() {
  return [](std::uint32_t) { return false; };
}

// Checks the core invariant of Algorithm 1's output: every input switch is
// covered exactly once, with a superset bitmap, within the limits.
void check_invariants(std::span<const LayerInput> inputs,
                      const ClusteringLimits& limits,
                      const LayerEncoding& out) {
  std::map<std::uint32_t, const net::PortBitmap*> covering;
  for (const auto& rule : out.p_rules) {
    EXPECT_LE(rule.switch_ids.size(), limits.kmax);
    EXPECT_FALSE(rule.switch_ids.empty());
    for (const auto id : rule.switch_ids) {
      EXPECT_FALSE(covering.contains(id)) << "switch covered twice";
      covering[id] = &rule.bitmap;
    }
  }
  EXPECT_LE(out.p_rules.size(), limits.hmax);
  if (limits.mode == RedundancyMode::kSumOverRule) {
    for (const auto& rule : out.p_rules) {
      std::size_t sum = 0;
      for (const auto id : rule.switch_ids) {
        const auto it = std::find_if(
            inputs.begin(), inputs.end(),
            [&](const LayerInput& in) { return in.switch_id == id; });
        ASSERT_NE(it, inputs.end());
        sum += it->bitmap.hamming_distance(rule.bitmap);
      }
      EXPECT_LE(sum, limits.redundancy_limit)
          << "rule exceeds sum-over-rule redundancy bound";
    }
  }
  std::set<std::uint32_t> sruled;
  for (const auto& [id, bitmap] : out.s_rules) {
    EXPECT_FALSE(covering.contains(id));
    EXPECT_TRUE(sruled.insert(id).second);
  }

  for (const auto& input : inputs) {
    if (const auto it = covering.find(input.switch_id); it != covering.end()) {
      EXPECT_TRUE(input.bitmap.is_subset_of(*it->second));
      if (limits.mode == RedundancyMode::kPerSwitch) {
        EXPECT_LE(input.bitmap.hamming_distance(*it->second),
                  limits.redundancy_limit);
      }  // (sum-mode bound checked per rule below)
    } else if (sruled.contains(input.switch_id)) {
      // s-rules are exact.
      const auto sit =
          std::find_if(out.s_rules.begin(), out.s_rules.end(),
                       [&](const auto& s) { return s.first == input.switch_id; });
      EXPECT_EQ(sit->second, input.bitmap);
    } else {
      ASSERT_TRUE(out.default_rule.has_value())
          << "switch " << input.switch_id << " uncovered";
      EXPECT_TRUE(input.bitmap.is_subset_of(*out.default_rule));
    }
  }
}

TEST(ApproxMinKUnion, PrefersOverlappingSets) {
  const std::vector<net::PortBitmap> bitmaps{
      bm(8, {0, 1}), bm(8, {0, 1, 2}), bm(8, {5, 6}), bm(8, {0, 1})};
  const auto chosen = approx_min_k_union(bitmaps, 0, 2);
  ASSERT_EQ(chosen.size(), 2u);
  EXPECT_EQ(chosen[0], 0u);
  EXPECT_EQ(chosen[1], 3u);  // the identical bitmap, union size 2
}

TEST(ApproxMinKUnion, CapsAtAvailableItems) {
  const std::vector<net::PortBitmap> bitmaps{bm(4, {0}), bm(4, {1})};
  EXPECT_EQ(approx_min_k_union(bitmaps, 0, 5).size(), 2u);
  EXPECT_THROW(approx_min_k_union(bitmaps, 7, 2), std::out_of_range);
}

TEST(ClusterLayer, EmptyInputEmptyOutput) {
  const auto out = cluster_layer({}, ClusteringLimits{}, never());
  EXPECT_TRUE(out.p_rules.empty());
  EXPECT_TRUE(out.s_rules.empty());
  EXPECT_FALSE(out.default_rule);
}

TEST(ClusterLayer, ZeroKmaxThrows) {
  const std::vector<LayerInput> inputs{{0, bm(4, {0})}};
  ClusteringLimits limits;
  limits.kmax = 0;
  EXPECT_THROW(cluster_layer(inputs, limits, never()), std::invalid_argument);
}

TEST(ClusterLayer, RZeroSharesOnlyIdenticalBitmaps) {
  const std::vector<LayerInput> inputs{
      {0, bm(8, {0, 1})}, {1, bm(8, {0, 1})}, {2, bm(8, {0, 2})},
      {3, bm(8, {0, 1})},
  };
  ClusteringLimits limits;
  limits.hmax = 10;
  limits.kmax = 4;
  limits.redundancy_limit = 0;
  const auto out = cluster_layer(inputs, limits, never());
  check_invariants(inputs, limits, out);
  ASSERT_EQ(out.p_rules.size(), 2u);
  // The identical trio shares one rule; switch 2 gets its own.
  EXPECT_EQ(out.p_rules[0].switch_ids.size(), 3u);
  EXPECT_EQ(out.p_rules[0].bitmap, bm(8, {0, 1}));
  EXPECT_EQ(out.p_rules[1].switch_ids, std::vector<std::uint32_t>{2});
}

TEST(ClusterLayer, KmaxSplitsIdenticalGroups) {
  std::vector<LayerInput> inputs;
  for (std::uint32_t i = 0; i < 5; ++i) inputs.push_back({i, bm(8, {3})});
  ClusteringLimits limits;
  limits.hmax = 10;
  limits.kmax = 2;
  limits.redundancy_limit = 0;
  const auto out = cluster_layer(inputs, limits, never());
  check_invariants(inputs, limits, out);
  EXPECT_EQ(out.p_rules.size(), 3u);  // 2 + 2 + 1
}

TEST(ClusterLayer, PositiveRMergesSimilarBitmapsOnDemand) {
  const std::vector<LayerInput> inputs{
      {0, bm(8, {0, 1})}, {1, bm(8, {0, 2})},  // distance 2 via union {0,1,2}
  };
  ClusteringLimits limits;
  limits.hmax = 1;  // force an overflow so sharing kicks in (design D3)
  limits.kmax = 2;
  limits.redundancy_limit = 1;
  limits.mode = RedundancyMode::kPerSwitch;
  const auto merged = cluster_layer(inputs, limits, never());
  check_invariants(inputs, limits, merged);
  ASSERT_EQ(merged.p_rules.size(), 1u);
  EXPECT_EQ(merged.p_rules[0].bitmap, bm(8, {0, 1, 2}));
  EXPECT_EQ(merged.p_rules[0].switch_ids.size(), 2u);

  // R=0 forbids the merge: one rule kept, the other falls to the default.
  limits.redundancy_limit = 0;
  const auto split = cluster_layer(inputs, limits, never());
  check_invariants(inputs, limits, split);
  EXPECT_EQ(split.p_rules.size(), 1u);
  EXPECT_TRUE(split.default_rule.has_value());

  // With header room for both, no sharing happens at all: rules stay exact.
  limits.hmax = 10;
  limits.redundancy_limit = 12;
  const auto roomy = cluster_layer(inputs, limits, never());
  EXPECT_EQ(roomy.p_rules.size(), 2u);
  for (const auto& rule : roomy.p_rules) {
    EXPECT_EQ(rule.bitmap.popcount(), 2u);  // exact, no OR-ed extras
  }
}

TEST(ClusterLayer, HmaxSpillsToSRules) {
  std::vector<LayerInput> inputs;
  for (std::uint32_t i = 0; i < 6; ++i) inputs.push_back({i, bm(8, {i})});
  ClusteringLimits limits;
  limits.hmax = 2;
  limits.kmax = 1;
  limits.redundancy_limit = 0;
  const auto out = cluster_layer(inputs, limits, always());
  check_invariants(inputs, limits, out);
  EXPECT_EQ(out.p_rules.size(), 2u);
  EXPECT_EQ(out.s_rules.size(), 4u);
  EXPECT_FALSE(out.default_rule);
}

TEST(ClusterLayer, ExhaustedSRulesFallToDefault) {
  std::vector<LayerInput> inputs;
  for (std::uint32_t i = 0; i < 6; ++i) inputs.push_back({i, bm(8, {i})});
  ClusteringLimits limits;
  limits.hmax = 2;
  limits.kmax = 1;
  // Only switches with even ids have s-rule capacity left.
  const auto out = cluster_layer(
      inputs, limits, [](std::uint32_t id) { return id % 2 == 0; });
  check_invariants(inputs, limits, out);
  EXPECT_EQ(out.p_rules.size(), 2u);
  ASSERT_TRUE(out.default_rule);
  // Defaults are the OR of the uncovered odd switches' bitmaps.
  for (const auto& [id, bitmap] : out.s_rules) {
    EXPECT_EQ(id % 2, 0u);
  }
}

TEST(ClusterLayer, DefaultIsOrOfUncovered) {
  std::vector<LayerInput> inputs{
      {0, bm(8, {0})}, {1, bm(8, {3})}, {2, bm(8, {5})}};
  ClusteringLimits limits;
  limits.hmax = 1;
  limits.kmax = 1;
  const auto out = cluster_layer(inputs, limits, never());
  ASSERT_EQ(out.p_rules.size(), 1u);
  ASSERT_TRUE(out.default_rule);
  // Two uncovered switches; default = OR of their bitmaps.
  EXPECT_EQ(out.default_rule->popcount(), 2u);
}

TEST(ClusterLayer, SumModeBoundsTotalRedundancy) {
  const std::vector<LayerInput> inputs{
      {0, bm(8, {0})}, {1, bm(8, {1})}, {2, bm(8, {2})}};
  ClusteringLimits limits;
  limits.hmax = 10;
  limits.kmax = 3;
  limits.redundancy_limit = 4;
  limits.mode = RedundancyMode::kSumOverRule;
  const auto out = cluster_layer(inputs, limits, never());
  // Verify: for each rule, sum of distances <= R.
  for (const auto& rule : out.p_rules) {
    std::size_t sum = 0;
    for (const auto id : rule.switch_ids) {
      sum += inputs[id].bitmap.hamming_distance(rule.bitmap);
    }
    EXPECT_LE(sum, limits.redundancy_limit);
  }
}

// Property sweep: random inputs, every (R, kmax, hmax) combination keeps the
// coverage invariant.
struct ClusterParam {
  std::size_t r;
  std::size_t kmax;
  std::size_t hmax;
  RedundancyMode mode = RedundancyMode::kSumOverRule;
};

class ClusterProperty : public ::testing::TestWithParam<ClusterParam> {};

TEST_P(ClusterProperty, CoverageInvariantHolds) {
  const auto param = GetParam();
  util::Rng rng{param.r * 1000 + param.kmax * 100 + param.hmax};
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<LayerInput> inputs;
    const auto n = 1 + rng.index(40);
    for (std::uint32_t i = 0; i < n; ++i) {
      net::PortBitmap b{48};
      const auto bits = 1 + rng.index(6);
      for (std::size_t j = 0; j < bits; ++j) b.set(rng.index(48));
      inputs.push_back({i, std::move(b)});
    }
    ClusteringLimits limits;
    limits.hmax = param.hmax;
    limits.kmax = param.kmax;
    limits.redundancy_limit = param.r;
    limits.mode = param.mode;
    // Half the switches have s-rule space.
    const auto out = cluster_layer(
        inputs, limits, [](std::uint32_t id) { return id % 2 == 0; });
    check_invariants(inputs, limits, out);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ClusterProperty,
    ::testing::Values(ClusterParam{0, 1, 4}, ClusterParam{0, 2, 30},
                      ClusterParam{6, 2, 30}, ClusterParam{12, 2, 30},
                      ClusterParam{12, 4, 8}, ClusterParam{2, 3, 2},
                      ClusterParam{6, 2, 30, RedundancyMode::kPerSwitch},
                      ClusterParam{12, 4, 8, RedundancyMode::kPerSwitch}));

}  // namespace
}  // namespace elmo
