#include "elmo/controller.h"

#include <gtest/gtest.h>

#include "elmo/churn.h"

namespace elmo {
namespace {

topo::ClosTopology small() {
  return topo::ClosTopology{topo::ClosParams::small_test()};
}

std::vector<Member> members_of(std::initializer_list<topo::HostId> hosts) {
  std::vector<Member> out;
  std::uint32_t vm = 0;
  for (const auto h : hosts) {
    out.push_back(Member{h, vm++, MemberRole::kBoth});
  }
  return out;
}

TEST(Controller, CreateAndQueryGroup) {
  const auto t = small();
  Controller controller{t, EncoderConfig{}};
  const auto id = controller.create_group(7, members_of({0, 5, 17}));
  EXPECT_TRUE(controller.has_group(id));
  EXPECT_EQ(controller.num_groups(), 1u);
  const auto& g = controller.group(id);
  EXPECT_EQ(g.tenant, 7u);
  EXPECT_EQ(g.members.size(), 3u);
  EXPECT_TRUE(g.address.is_multicast());
  ASSERT_NE(g.tree, nullptr);
  EXPECT_EQ(g.tree->num_members(), 3u);
}

TEST(Controller, UnknownGroupThrows) {
  const auto t = small();
  Controller controller{t, EncoderConfig{}};
  EXPECT_THROW(controller.group(5), std::out_of_range);
  EXPECT_FALSE(controller.has_group(5));
}

TEST(Controller, RemoveGroupReleasesSRules) {
  const auto t = small();
  EncoderConfig cfg;
  cfg.hmax_leaf_override = 1;  // force s-rule usage
  Controller controller{t, cfg};
  std::vector<Member> members;
  for (std::uint32_t i = 0; i < 16; ++i) {
    members.push_back(Member{static_cast<topo::HostId>(i * 4), i,
                             MemberRole::kBoth});
  }
  const auto id = controller.create_group(0, members);
  EXPECT_GT(controller.group(id).encoding.s_rule_count(), 0u);
  controller.remove_group(id);
  EXPECT_FALSE(controller.has_group(id));
  EXPECT_DOUBLE_EQ(controller.srule_space().leaf_stats().sum(), 0.0);
  EXPECT_DOUBLE_EQ(controller.srule_space().spine_stats().sum(), 0.0);
}

TEST(Controller, JoinExtendsTreeAndLeaveShrinksIt) {
  const auto t = small();
  Controller controller{t, EncoderConfig{}};
  const auto id = controller.create_group(0, members_of({0, 1}));
  EXPECT_EQ(controller.group(id).tree->num_leaves(), 1u);

  controller.join(id, Member{20, 9, MemberRole::kReceiver});
  EXPECT_EQ(controller.group(id).tree->num_members(), 3u);
  EXPECT_GT(controller.group(id).tree->num_leaves(), 1u);

  controller.leave(id, 20);
  EXPECT_EQ(controller.group(id).tree->num_members(), 2u);
  EXPECT_EQ(controller.group(id).tree->num_leaves(), 1u);
}

TEST(Controller, LeaveUnknownMemberThrows) {
  const auto t = small();
  Controller controller{t, EncoderConfig{}};
  const auto id = controller.create_group(0, members_of({0, 1}));
  EXPECT_THROW(controller.leave(id, 42), std::invalid_argument);
}

TEST(Controller, SenderOnlyJoinUpdatesOneHypervisor) {
  // Paper §5.1.3a: "If a member is a sender, the controller only updates the
  // source hypervisor switch."
  const auto t = small();
  CountingSink sink{t};
  Controller controller{t, EncoderConfig{}};
  const auto id = controller.create_group(0, members_of({0, 1, 8}));
  controller.set_sink(&sink);

  controller.join(id, Member{33, 9, MemberRole::kSender});
  const auto rates = sink.hypervisor_rates(1.0);
  EXPECT_EQ(rates.total, 1u);
  EXPECT_EQ(sink.leaf_rates(1.0).total, 0u);
  EXPECT_EQ(sink.spine_rates(1.0).total, 0u);
  EXPECT_EQ(sink.core_rates(1.0).total, 0u);
}

TEST(Controller, ReceiverJoinUpdatesSenderHypervisors) {
  const auto t = small();
  CountingSink sink{t};
  Controller controller{t, EncoderConfig{}};
  std::vector<Member> members{
      Member{0, 0, MemberRole::kSender},
      Member{4, 1, MemberRole::kReceiver},
      Member{8, 2, MemberRole::kBoth},
  };
  const auto id = controller.create_group(0, members);
  controller.set_sink(&sink);

  controller.join(id, Member{12, 3, MemberRole::kReceiver});
  // Touched: the joining host (12) + the senders (0 and 8).
  EXPECT_EQ(sink.hypervisor_rates(1.0).total, 3u);
}

TEST(Controller, CoreSwitchesNeverUpdated) {
  const auto t = small();
  CountingSink sink{t};
  EncoderConfig cfg;
  cfg.hmax_leaf_override = 1;
  cfg.hmax_spine = 1;
  Controller controller{t, cfg, &sink};
  std::vector<Member> members;
  for (std::uint32_t i = 0; i < 14; ++i) {
    members.push_back(Member{static_cast<topo::HostId>(i * 4 + 1), i,
                             MemberRole::kBoth});
  }
  const auto id = controller.create_group(0, members);
  for (std::uint32_t vm = 20; vm < 28; ++vm) {
    controller.join(id, Member{(vm * 4 + 2) % static_cast<std::uint32_t>(
                                   t.num_hosts()),
                               vm, MemberRole::kReceiver});
  }
  EXPECT_GT(sink.hypervisor_rates(1.0).total, 0u);
  EXPECT_EQ(sink.core_rates(1.0).total, 0u);  // the headline property
}

TEST(Controller, SRuleChangesReachNetworkSwitches) {
  const auto t = small();
  CountingSink sink{t};
  EncoderConfig cfg;
  cfg.hmax_leaf_override = 1;  // most leaves spill to s-rules
  Controller controller{t, cfg, &sink};
  std::vector<Member> members;
  for (std::uint32_t i = 0; i < 16; ++i) {
    members.push_back(
        Member{static_cast<topo::HostId>(i * 4), i, MemberRole::kBoth});
  }
  controller.create_group(0, members);
  EXPECT_GT(sink.leaf_rates(1.0).total, 0u);
}

TEST(Controller, HeaderForParsesBack) {
  const auto t = small();
  Controller controller{t, EncoderConfig{}};
  const auto id = controller.create_group(3, members_of({0, 17, 33, 49}));
  const auto header = controller.header_for(id, 0);
  EXPECT_FALSE(header.empty());
  const HeaderCodec codec{t};
  const auto parsed = codec.parse(header);
  EXPECT_TRUE(parsed.u_leaf.has_value());
  EXPECT_TRUE(parsed.core_pods.has_value());
}

TEST(Controller, FailureImpactCountsAffectedGroups) {
  const auto t = small();
  Controller controller{t, EncoderConfig{}};
  // 40 multi-pod groups.
  for (std::uint32_t g = 0; g < 40; ++g) {
    std::vector<Member> members{
        Member{(g * 3) % 16, 0, MemberRole::kBoth},
        Member{16 + (g * 5) % 16, 1, MemberRole::kBoth},
        Member{32 + (g * 7) % 16, 2, MemberRole::kBoth},
    };
    controller.create_group(g, members);
  }
  const auto spine_impact = controller.fail_spine(t.spine_at(0, 0));
  EXPECT_GT(spine_impact.groups_affected, 0u);
  EXPECT_LT(spine_impact.groups_affected, 40u);
  EXPECT_GE(spine_impact.hypervisor_updates, spine_impact.groups_affected);
  controller.restore_spine(t.spine_at(0, 0));

  const auto core_impact = controller.fail_core(t.core_at(0, 0));
  EXPECT_GT(core_impact.groups_affected, 0u);
  // Core failures affect more groups than a single-pod spine failure
  // (every multi-pod group using that plane, regardless of pod).
  EXPECT_GE(core_impact.groups_affected, spine_impact.groups_affected);
}

TEST(Controller, FailureChangesIssuedHeaders) {
  const auto t = small();
  Controller controller{t, EncoderConfig{}};
  const auto id = controller.create_group(0, members_of({0, 16}));
  const auto before = controller.header_for(id, 0);
  controller.fail_spine(t.spine_at(0, 0));
  const auto after = controller.header_for(id, 0);
  const HeaderCodec codec{t};
  EXPECT_TRUE(codec.parse(before).u_leaf->multipath);
  EXPECT_FALSE(codec.parse(after).u_leaf->multipath);
}

}  // namespace
}  // namespace elmo
