#include "elmo/header.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace elmo {
namespace {

topo::ClosTopology example_topo() {
  return topo::ClosTopology{topo::ClosParams::running_example()};
}

net::PortBitmap bitmap_of(std::size_t ports,
                          std::initializer_list<std::size_t> set) {
  net::PortBitmap b{ports};
  for (const auto p : set) b.set(p);
  return b;
}

SenderEncoding simple_sender(const topo::ClosTopology& t) {
  SenderEncoding s;
  s.u_leaf.down = bitmap_of(t.leaf_down_ports(), {1});
  s.u_leaf.up = net::PortBitmap{t.leaf_up_ports()};
  s.u_leaf.multipath = true;
  UpstreamRule u_spine;
  u_spine.down = net::PortBitmap{t.spine_down_ports()};
  u_spine.up = net::PortBitmap{t.spine_up_ports()};
  u_spine.multipath = true;
  s.u_spine = u_spine;
  s.core_pods = bitmap_of(t.core_ports(), {2, 3});
  return s;
}

GroupEncoding simple_group(const topo::ClosTopology& t) {
  GroupEncoding g;
  g.spine.p_rules.push_back(
      PRule{bitmap_of(t.spine_down_ports(), {1}), {2}});
  g.spine.p_rules.push_back(
      PRule{bitmap_of(t.spine_down_ports(), {0, 1}), {3, 0}});
  g.leaf.p_rules.push_back(
      PRule{bitmap_of(t.leaf_down_ports(), {0, 1}), {0, 6}});
  g.leaf.p_rules.push_back(PRule{bitmap_of(t.leaf_down_ports(), {1}), {5}});
  g.leaf.default_rule = bitmap_of(t.leaf_down_ports(), {0});
  return g;
}

TEST(HeaderCodec, RoundTripFullHeader) {
  const auto t = example_topo();
  const HeaderCodec codec{t};
  const auto sender = simple_sender(t);
  const auto group = simple_group(t);
  const auto bytes = codec.serialize(sender, group);

  const auto parsed = codec.parse(bytes);
  ASSERT_TRUE(parsed.u_leaf);
  EXPECT_EQ(parsed.u_leaf->down, sender.u_leaf.down);
  EXPECT_EQ(parsed.u_leaf->multipath, true);
  ASSERT_TRUE(parsed.u_spine);
  EXPECT_EQ(parsed.u_spine->multipath, true);
  ASSERT_TRUE(parsed.core_pods);
  EXPECT_EQ(*parsed.core_pods, *sender.core_pods);
  ASSERT_EQ(parsed.spine_rules.size(), 2u);
  EXPECT_EQ(parsed.spine_rules[0], group.spine.p_rules[0]);
  EXPECT_EQ(parsed.spine_rules[1], group.spine.p_rules[1]);
  EXPECT_FALSE(parsed.spine_default);
  ASSERT_EQ(parsed.leaf_rules.size(), 2u);
  EXPECT_EQ(parsed.leaf_rules[0], group.leaf.p_rules[0]);
  ASSERT_TRUE(parsed.leaf_default);
  EXPECT_EQ(*parsed.leaf_default, *group.leaf.default_rule);
}

TEST(HeaderCodec, MinimalHeaderIsTiny) {
  // Single-rack group: only the u-leaf section plus END.
  const auto t = example_topo();
  const HeaderCodec codec{t};
  SenderEncoding sender;
  sender.u_leaf.down = bitmap_of(t.leaf_down_ports(), {0});
  sender.u_leaf.up = net::PortBitmap{t.leaf_up_ports()};
  const auto bytes = codec.serialize(sender, GroupEncoding{});
  // u-leaf: 3 tag + 1 mp + 2 up + 2 down = 8 bits = 1 byte; END = 1 byte.
  EXPECT_EQ(bytes.size(), 2u);
  const auto parsed = codec.parse(bytes);
  EXPECT_TRUE(parsed.u_leaf);
  EXPECT_FALSE(parsed.u_spine);
  EXPECT_FALSE(parsed.core_pods);
  EXPECT_TRUE(parsed.spine_rules.empty());
  EXPECT_TRUE(parsed.leaf_rules.empty());
}

TEST(HeaderCodec, SectionsAreByteAlignedAndOrdered) {
  const auto t = example_topo();
  const HeaderCodec codec{t};
  const auto bytes = codec.serialize(simple_sender(t), simple_group(t));
  const auto sections = codec.scan_sections(bytes);
  ASSERT_GE(sections.size(), 2u);
  EXPECT_EQ(sections.front().begin, 0u);
  int prev_tag = -1;
  for (std::size_t i = 0; i < sections.size(); ++i) {
    const auto& s = sections[i];
    EXPECT_EQ(s.begin % 1, 0u);
    if (i > 0) {
      EXPECT_EQ(s.begin, sections[i - 1].end);
    }
    if (s.tag != SectionTag::kEnd) {
      EXPECT_GT(static_cast<int>(s.tag), prev_tag);
      prev_tag = static_cast<int>(s.tag);
    } else {
      EXPECT_EQ(i, sections.size() - 1);
    }
  }
  EXPECT_EQ(codec.header_length(bytes), sections.back().end);
  EXPECT_EQ(codec.header_length(bytes), bytes.size());
}

TEST(HeaderCodec, ScanToleratesTrailingPayload) {
  const auto t = example_topo();
  const HeaderCodec codec{t};
  auto bytes = codec.serialize(simple_sender(t), simple_group(t));
  const auto clean_len = bytes.size();
  bytes.insert(bytes.end(), {0xde, 0xad, 0xbe, 0xef});  // payload after END
  EXPECT_EQ(codec.header_length(bytes), clean_len);
}

TEST(HeaderCodec, MissingEndThrows) {
  const auto t = example_topo();
  const HeaderCodec codec{t};
  SenderEncoding sender;
  sender.u_leaf.down = net::PortBitmap{t.leaf_down_ports()};
  sender.u_leaf.up = net::PortBitmap{t.leaf_up_ports()};
  auto bytes = codec.serialize(sender, GroupEncoding{});
  bytes.pop_back();  // drop the END byte
  EXPECT_THROW(codec.parse(bytes), std::out_of_range);
}

TEST(HeaderCodec, RejectsRuleWithoutIds) {
  const auto t = example_topo();
  const HeaderCodec codec{t};
  GroupEncoding g;
  g.leaf.p_rules.push_back(PRule{bitmap_of(t.leaf_down_ports(), {0}), {}});
  SenderEncoding sender;
  sender.u_leaf.down = net::PortBitmap{t.leaf_down_ports()};
  sender.u_leaf.up = net::PortBitmap{t.leaf_up_ports()};
  EXPECT_THROW(codec.serialize(sender, g), std::invalid_argument);
}

TEST(HeaderCodec, RejectsTooManyRules) {
  const auto t = example_topo();
  const HeaderCodec codec{t};
  GroupEncoding g;
  for (int i = 0; i < 128; ++i) {
    g.leaf.p_rules.push_back(
        PRule{bitmap_of(t.leaf_down_ports(), {0}), {0}});
  }
  SenderEncoding sender;
  sender.u_leaf.down = net::PortBitmap{t.leaf_down_ports()};
  sender.u_leaf.up = net::PortBitmap{t.leaf_up_ports()};
  EXPECT_THROW(codec.serialize(sender, g), std::length_error);
}

TEST(HeaderCodec, MaxHeaderBytesMonotoneInRules) {
  const auto t = example_topo();
  const HeaderCodec codec{t};
  const auto small = codec.max_header_bytes(2, 5, 2, 2);
  const auto bigger = codec.max_header_bytes(2, 10, 2, 2);
  const auto wider = codec.max_header_bytes(2, 5, 2, 4);
  EXPECT_LT(small, bigger);
  EXPECT_LT(small, wider);
}

TEST(HeaderCodec, DeriveHmaxRespectsBudget) {
  const topo::ClosTopology fabric{topo::ClosParams::facebook_fabric()};
  const HeaderCodec codec{fabric};
  EncoderConfig cfg;
  cfg.header_budget_bytes = 325;
  const auto hmax = codec.derive_hmax_leaf(cfg);
  EXPECT_LE(codec.max_header_bytes(cfg.hmax_spine, hmax, cfg.kmax_spine,
                                   cfg.kmax),
            325u);
  EXPECT_GT(codec.max_header_bytes(cfg.hmax_spine, hmax + 1, cfg.kmax_spine,
                                   cfg.kmax),
            325u);
  // The paper's configuration: ~30 leaf p-rules within 325 bytes.
  EXPECT_GE(hmax, 25u);
  EXPECT_LE(hmax, 35u);
}

TEST(HeaderCodec, DeriveHmaxHonorsOverride) {
  const topo::ClosTopology fabric{topo::ClosParams::facebook_fabric()};
  const HeaderCodec codec{fabric};
  EncoderConfig cfg;
  cfg.hmax_leaf_override = 10;
  EXPECT_EQ(codec.derive_hmax_leaf(cfg), 10u);
}

TEST(HeaderCodec, RandomEncodingsRoundTrip) {
  const topo::ClosTopology fabric{topo::ClosParams::small_test()};
  const HeaderCodec codec{fabric};
  util::Rng rng{404};
  for (int trial = 0; trial < 200; ++trial) {
    SenderEncoding sender;
    sender.u_leaf.down = net::PortBitmap{fabric.leaf_down_ports()};
    sender.u_leaf.up = net::PortBitmap{fabric.leaf_up_ports()};
    for (std::size_t p = 0; p < fabric.leaf_down_ports(); ++p) {
      if (rng.bernoulli(0.3)) sender.u_leaf.down.set(p);
    }
    sender.u_leaf.multipath = rng.bernoulli(0.5);

    GroupEncoding group;
    const auto nrules = rng.index(5);
    for (std::size_t r = 0; r < nrules; ++r) {
      PRule rule;
      rule.bitmap = net::PortBitmap{fabric.leaf_down_ports()};
      for (std::size_t p = 0; p < fabric.leaf_down_ports(); ++p) {
        if (rng.bernoulli(0.4)) rule.bitmap.set(p);
      }
      const auto nids = 1 + rng.index(3);
      for (std::size_t i = 0; i < nids; ++i) {
        rule.switch_ids.push_back(
            static_cast<std::uint32_t>(rng.index(fabric.num_leaves())));
      }
      group.leaf.p_rules.push_back(std::move(rule));
    }
    const auto bytes = codec.serialize(sender, group);
    const auto parsed = codec.parse(bytes);
    ASSERT_TRUE(parsed.u_leaf);
    EXPECT_EQ(parsed.u_leaf->down, sender.u_leaf.down);
    EXPECT_EQ(parsed.u_leaf->multipath, sender.u_leaf.multipath);
    ASSERT_EQ(parsed.leaf_rules.size(), group.leaf.p_rules.size());
    for (std::size_t r = 0; r < nrules; ++r) {
      EXPECT_EQ(parsed.leaf_rules[r], group.leaf.p_rules[r]);
    }
  }
}

}  // namespace
}  // namespace elmo
